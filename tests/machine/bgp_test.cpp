#include "machine/bgp.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bgckpt::machine {
namespace {

TEST(Machine, IntrepidPartitionSizes) {
  for (int ranks : {16384, 32768, 65536}) {
    Machine m = intrepidMachine(ranks);
    EXPECT_EQ(m.numRanks(), ranks);
    EXPECT_EQ(m.numNodes(), ranks / 4);
    EXPECT_EQ(m.ranksPerNode(), 4);
    EXPECT_EQ(m.numPsets(), ranks / 4 / 64);
    EXPECT_EQ(m.ranksPerPset(), 256);
  }
}

TEST(Machine, IntrepidRejectsOddSizes) {
  EXPECT_THROW(intrepidMachine(1000), std::invalid_argument);
  EXPECT_THROW(intrepidMachine(3), std::invalid_argument);
  EXPECT_THROW(intrepidMachine(7 * 4 * 64), std::invalid_argument);
}

TEST(Machine, RankToNodeMapping_TxyzOrder) {
  Machine m = intrepidMachine(256);  // 64 nodes, 4x4x4
  // Cores vary fastest: ranks 0..3 on node 0, 4..7 on node 1.
  EXPECT_EQ(m.nodeOfRank(0), 0);
  EXPECT_EQ(m.nodeOfRank(3), 0);
  EXPECT_EQ(m.nodeOfRank(4), 1);
  EXPECT_EQ(m.coreOfRank(0), 0);
  EXPECT_EQ(m.coreOfRank(3), 3);
  EXPECT_EQ(m.coreOfRank(6), 2);
  EXPECT_THROW(m.nodeOfRank(256), std::out_of_range);
  EXPECT_THROW(m.nodeOfRank(-1), std::out_of_range);
}

TEST(Machine, CoordRoundTrip) {
  Machine m = intrepidMachine(2048);  // 512 nodes, 8x8x8
  for (int n = 0; n < m.numNodes(); ++n) {
    NodeCoord c = m.coordOfNode(n);
    EXPECT_EQ(m.nodeOfCoord(c), n);
  }
}

TEST(Machine, CoordXVariesFastest) {
  Machine m = intrepidMachine(256);  // 4x4x4
  EXPECT_EQ(m.coordOfNode(0), (NodeCoord{0, 0, 0}));
  EXPECT_EQ(m.coordOfNode(1), (NodeCoord{1, 0, 0}));
  EXPECT_EQ(m.coordOfNode(4), (NodeCoord{0, 1, 0}));
  EXPECT_EQ(m.coordOfNode(16), (NodeCoord{0, 0, 1}));
}

TEST(Machine, TorusHopsSymmetricAndZeroOnSelf) {
  Machine m = intrepidMachine(2048);
  for (int a = 0; a < m.numNodes(); a += 37) {
    EXPECT_EQ(m.torusHops(a, a), 0);
    for (int b = 0; b < m.numNodes(); b += 53)
      EXPECT_EQ(m.torusHops(a, b), m.torusHops(b, a));
  }
}

TEST(Machine, TorusHopsUsesWraparound) {
  Machine m = intrepidMachine(256);  // 4x4x4
  // (0,0,0) to (3,0,0) is one hop through the wraparound link, not three.
  int a = m.nodeOfCoord({0, 0, 0});
  int b = m.nodeOfCoord({3, 0, 0});
  EXPECT_EQ(m.torusHops(a, b), 1);
  // (0,0,0) to (2,2,2) is 2+2+2 = 6 (max distance in each dim of size 4).
  int c = m.nodeOfCoord({2, 2, 2});
  EXPECT_EQ(m.torusHops(a, c), 6);
}

TEST(Machine, TorusHopsTriangleInequality) {
  Machine m = intrepidMachine(1024);
  for (int a = 0; a < m.numNodes(); a += 41)
    for (int b = 0; b < m.numNodes(); b += 67)
      for (int c = 0; c < m.numNodes(); c += 97)
        EXPECT_LE(m.torusHops(a, c), m.torusHops(a, b) + m.torusHops(b, c));
}

TEST(Machine, PsetsPartitionNodesContiguously) {
  Machine m = intrepidMachine(16384);  // 4096 nodes, 64 psets
  EXPECT_EQ(m.numPsets(), 64);
  std::set<int> psets;
  for (int n = 0; n < m.numNodes(); ++n) {
    int p = m.psetOfNode(n);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, m.numPsets());
    psets.insert(p);
    if (n > 0) {
      EXPECT_GE(p, m.psetOfNode(n - 1));  // monotone
    }
  }
  EXPECT_EQ(psets.size(), static_cast<size_t>(m.numPsets()));
}

TEST(Machine, PsetOfRankConsistentWithNode) {
  Machine m = intrepidMachine(16384);
  for (int r = 0; r < m.numRanks(); r += 997)
    EXPECT_EQ(m.psetOfRank(r), m.psetOfNode(m.nodeOfRank(r)));
}

TEST(Machine, InvalidShapesThrow) {
  EXPECT_THROW(Machine({0, 4, 4}, NodeMode::kVn, {}, {}),
               std::invalid_argument);
  // 4x4x4 = 64 nodes is one pset exactly; 4x4x2 = 32 is not a multiple.
  EXPECT_THROW(Machine({4, 4, 2}, NodeMode::kVn, {}, {}),
               std::invalid_argument);
}

TEST(Machine, DescribeMentionsKeyFacts) {
  Machine m = intrepidMachine(65536);
  std::string d = describe(m);
  EXPECT_NE(d.find("65536 ranks"), std::string::npos);
  EXPECT_NE(d.find("16384 nodes"), std::string::npos);
  EXPECT_NE(d.find("VN"), std::string::npos);
  EXPECT_NE(d.find("256 psets"), std::string::npos);
}

TEST(Machine, IntrepidDefaultsMatchPublishedNumbers) {
  Machine m = intrepidMachine(16384);
  EXPECT_DOUBLE_EQ(m.compute().coreFrequencyHz, 850e6);
  EXPECT_DOUBLE_EQ(m.compute().torusLinkBandwidth, 425e6);
  EXPECT_EQ(m.io().numFileServers, 128);
  EXPECT_EQ(m.io().numDdnArrays, 16);
  // Aggregate write bandwidth of the server tier ~= 47 GB/s published peak.
  double aggregate = m.io().serverWriteBandwidth * m.io().numFileServers;
  EXPECT_NEAR(aggregate, 47e9, 1e9);
}

}  // namespace
}  // namespace bgckpt::machine
