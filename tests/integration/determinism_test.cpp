// Old-vs-new event queue determinism: the tiered queue must be an exact
// drop-in for the legacy std::priority_queue — same dispatch order, so the
// full figure-5 stack produces bit-identical results at scale. Any drift
// here means the tiered queue reordered equal-time events and every figure
// in the paper reproduction silently changed.
#include <gtest/gtest.h>

#include "iolib/stack.hpp"
#include "iolib/strategies.hpp"

namespace bgckpt {
namespace {

struct StackOutcome {
  std::uint64_t events;
  double finalTime;
  double bandwidth;
  double makespan;
};

StackOutcome runFig5Stack(bool legacyQueue) {
  constexpr int kNp = 16384;
  iolib::SimStackOptions opt;  // default options == the figure benches
  opt.scheduler.legacyQueue = legacyQueue;
  iolib::SimStack stack(kNp, opt);
  const auto spec = iolib::CheckpointSpec::nekcemWeakScaling(kNp);
  const auto r =
      runCheckpoint(stack, spec, iolib::StrategyConfig::rbIo(64, true));
  return {stack.sched.eventsProcessed(), stack.sched.now(), r.bandwidth,
          r.makespan};
}

TEST(Determinism, TieredQueueReproducesLegacyFig5StackExactly) {
  const auto tiered = runFig5Stack(false);
  const auto legacy = runFig5Stack(true);
  EXPECT_EQ(tiered.events, legacy.events);
  EXPECT_EQ(tiered.finalTime, legacy.finalTime);  // bit-identical, no EQ_NEAR
  EXPECT_EQ(tiered.bandwidth, legacy.bandwidth);
  EXPECT_EQ(tiered.makespan, legacy.makespan);
}

TEST(Determinism, RepeatedTieredRunsAreBitIdentical) {
  const auto a = runFig5Stack(false);
  const auto b = runFig5Stack(false);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.finalTime, b.finalTime);
  EXPECT_EQ(a.bandwidth, b.bandwidth);
}

}  // namespace
}  // namespace bgckpt
