// Failure injection: the system must stay correct (not merely fast) under
// degraded conditions — noise storms, lock-revocation storms, partially
// written checkpoints, and generation fallback on restart.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>

#include "hostio/solver_io.hpp"
#include "iolib/layout.hpp"
#include "iolib/strategies.hpp"

namespace bgckpt {
namespace {

TEST(FailureInjection, ExtremeNoiseSlowsButNeverCorrupts) {
  iolib::SimStackOptions opt;
  opt.noise.slowProbability = 0.5;
  opt.noise.slowFactorMedian = 12.0;
  opt.noise.severeProbability = 1e-3;
  iolib::SimStack noisy(256, opt);
  iolib::SimStackOptions quiet;
  quiet.noise = stor::NoiseModel::none();
  iolib::SimStack calm(256, quiet);

  iolib::CheckpointSpec spec;
  spec.fieldBytesPerRank = 4096;
  spec.numFields = 4;
  spec.carryPayload = true;
  const auto cfg = iolib::StrategyConfig::coIo(4);
  const auto slow = runCheckpoint(noisy, spec, cfg);
  const auto fast = runCheckpoint(calm, spec, cfg);
  EXPECT_GT(slow.makespan, 2.0 * fast.makespan);  // the storm hurt
  // ... but content is byte-identical.
  for (int part = 0; part < 4; ++part) {
    const auto* a = noisy.fsys.image().find(iolib::checkpointPath(spec, part));
    const auto* b = calm.fsys.image().find(iolib::checkpointPath(spec, part));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->contentHash(), b->contentHash());
  }
}

TEST(FailureInjection, RevocationStormFromUnalignedWritersStaysCorrect) {
  // Force false sharing: many clients write interleaved sub-block extents
  // of one file. Slower (token ping-pong) but still exact.
  iolib::SimStackOptions opt;
  opt.noise = stor::NoiseModel::none();
  iolib::SimStack stack(256, opt);
  constexpr std::uint64_t kPiece = 64 * 1024;  // far below the 4 MiB block

  auto program = [](iolib::SimStack& s, int rank) -> sim::Task<> {
    if (rank == 0) {
      auto fh = co_await s.fsys.create(0, "storm");
      co_await s.fsys.close(0, fh);
    }
    co_await s.sched.delay(1e-3 * (rank + 1));
    auto fh = co_await s.fsys.open(rank, "storm");
    for (int round = 0; round < 4; ++round) {
      const std::uint64_t offset =
          (static_cast<std::uint64_t>(round) * 256 +
           static_cast<std::uint64_t>(rank)) *
          kPiece;
      co_await s.fsys.write(rank, fh, offset, kPiece);
    }
    co_await s.fsys.close(rank, fh);
  };
  for (int r = 0; r < 256; ++r) stack.sched.spawn(program(stack, r));
  stack.sched.run();
  ASSERT_EQ(stack.sched.liveRoots(), 0u);
  EXPECT_GT(stack.fsys.totalRevocations(), 100u);  // the storm happened
  const auto* img = stack.fsys.image().find("storm");
  ASSERT_NE(img, nullptr);
  EXPECT_TRUE(img->coversExactly(4ull * 256 * kPiece));  // and no data lost
}

class CrashRestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bgckpt_crash_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CrashRestartTest, TruncatedCheckpointDetectedAndOlderGenerationUsed) {
  nekcem::BoxMesh mesh(2, 2, 2, 1, 1, 1, nekcem::Boundary::kPeriodic);
  nekcem::MaxwellSolver solver(mesh, 4);
  solver.setSolution(nekcem::planeWaveX(1.0), 0.0);
  const double dt = solver.stableDt();

  // Two checkpoint generations: step 10 (good) and step 20 (to be damaged).
  solver.run(10, dt);
  auto spec10 = hostio::solverSpec(solver, 8, dir_, 10);
  hostio::writeCheckpoint(spec10, {hostio::HostStrategy::kRbIo, 2},
                          hostio::snapshotSolver(solver, 8));
  solver.run(10, dt);
  auto spec20 = hostio::solverSpec(solver, 8, dir_, 20);
  hostio::writeCheckpoint(spec20, {hostio::HostStrategy::kRbIo, 2},
                          hostio::snapshotSolver(solver, 8));

  // Crash mid-write of generation 20: corrupt a byte in part 1's data.
  {
    const auto victim = hostio::hostCheckpointPath(spec20, 1);
    int fd = ::open(victim.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    char junk = 0x7F;
    ASSERT_EQ(::pwrite(fd, &junk, 1, 8000), 1);  // inside section data
    ::close(fd);
  }

  // Restart logic: prefer the newest generation whose checksums verify.
  hostio::HostSpec probe20;
  probe20.directory = dir_;
  probe20.step = 20;
  EXPECT_FALSE(hostio::verifyCheckpoint(probe20));
  hostio::HostSpec probe10;
  probe10.directory = dir_;
  probe10.step = 10;
  EXPECT_TRUE(hostio::verifyCheckpoint(probe10));

  const auto data = hostio::readCheckpoint(probe10, 8);
  nekcem::MaxwellSolver resumed(mesh, 4);
  hostio::restoreSolver(resumed, data, probe10);
  EXPECT_EQ(resumed.stepsTaken(), 10u);
  // Resume and meet the reference trajectory bitwise at step 20.
  resumed.run(10, dt);
  nekcem::MaxwellSolver reference(mesh, 4);
  reference.setSolution(nekcem::planeWaveX(1.0), 0.0);
  reference.run(20, dt);
  for (int f = 0; f < 6; ++f)
    EXPECT_EQ(resumed.fields().comp[static_cast<std::size_t>(f)],
              reference.fields().comp[static_cast<std::size_t>(f)]);
}

TEST_F(CrashRestartTest, MissingPartFileDetected) {
  hostio::HostSpec spec;
  spec.directory = dir_;
  spec.fieldNames = {"Ex"};
  spec.fieldBytesPerRank = 64;
  std::vector<hostio::HostRankData> data(4);
  for (auto& r : data) r.fields.assign(1, std::vector<std::byte>(64));
  hostio::writeCheckpoint(spec, {hostio::HostStrategy::kCoIo, 2}, data);
  std::filesystem::remove(hostio::hostCheckpointPath(spec, 1));
  hostio::HostSpec probe;
  probe.directory = dir_;
  EXPECT_THROW(hostio::readCheckpoint(probe, 4), std::runtime_error);
}

TEST(FailureInjection, WriterBufferSmallerThanGroupStillCompletes) {
  // rbIO writers flush whenever the buffer fills; a tiny buffer forces many
  // flushes but must not change the result.
  iolib::SimStackOptions opt;
  opt.noise = stor::NoiseModel::none();
  iolib::CheckpointSpec spec;
  spec.fieldBytesPerRank = 8192;
  spec.numFields = 4;
  spec.carryPayload = true;

  auto run = [&](sim::Bytes buffer) {
    iolib::SimStack stack(256, opt);
    auto cfg = iolib::StrategyConfig::rbIo(64, true);
    cfg.writerBuffer = buffer;
    runCheckpoint(stack, spec, cfg);
    return stack.fsys.image().find(iolib::checkpointPath(spec, 0))
        ->contentHash();
  };
  EXPECT_EQ(run(16 * 1024), run(64 * sim::MiB));
}

}  // namespace
}  // namespace bgckpt
