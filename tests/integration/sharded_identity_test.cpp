// Byte-identity gate for the parallel simulation core: the figure benches
// must produce the SAME bytes — stdout and every --telemetry/--attr export —
// whether the simulation points run serially or prefetched on 8 threads.
// This is the determinism contract of bench/common.cpp's prefetch cache
// (FIFO consumption in program order, pre-assigned artifact ordinals,
// replayed perf records) and of sim::ShardGroup's deterministic merge.
//
// Manifest sidecars (*.manifest.json) are excluded from the comparison:
// they record the exact argv of the run, which legitimately differs by the
// --threads flag itself.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exitCode = -1;
  std::string output;
};

/// Runs a bench binary and captures stdout only. stderr is discarded: with
/// --threads > 1 the obs announce lines move there and their interleaving
/// with worker progress is not deterministic (documented in bench/common).
RunResult run(const std::string& cmd) {
  RunResult r;
  FILE* pipe = popen((cmd + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string readFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::string s((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  return s;
}

bool isManifest(const fs::path& p) {
  return p.filename().string().find(".manifest.") != std::string::npos;
}

/// Comparable artifact filenames under dir, sorted.
std::vector<std::string> artifactNames(const fs::path& dir) {
  std::vector<std::string> names;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && !isManifest(e.path()))
      names.push_back(e.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/bgckpt_identity_XXXXXX";
    root_ = mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  fs::path path() const { return root_; }

 private:
  fs::path root_;
};

/// Runs `bench` twice (serial, then 8 worker threads) with telemetry and
/// attribution exports into separate directories, then requires stdout and
/// every exported artifact to be byte-identical. BOTH runs carry
/// --runtime-profile: the wall-clock profiler must not perturb stdout or
/// any simulated-time artifact. Its own JSON is wall-clock by nature, so
/// it is written OUTSIDE the compared directories (it is documented as
/// excluded from identity comparisons) — but it must exist and be
/// non-empty for both runs.
void expectByteIdentical(const std::string& bench, const std::string& args) {
  const TempDir tmp;
  ASSERT_FALSE(tmp.path().empty());
  const fs::path serialDir = tmp.path() / "serial";
  const fs::path threadedDir = tmp.path() / "threaded";
  fs::create_directories(serialDir);
  fs::create_directories(threadedDir);

  const std::string bin = std::string(BENCH_BIN_DIR) + "/" + bench;
  const auto cmd = [&](const fs::path& dir, const char* threads) {
    return bin + " " + args + " --threads=" + threads + " --telemetry " +
           (dir / "telemetry.json").string() + " --attr " +
           (dir / "attr.json").string() + " --runtime-profile=" +
           (tmp.path() / (std::string("runtimeprof.") + threads + ".json"))
               .string();
  };

  const RunResult serial = run(cmd(serialDir, "1"));
  ASSERT_EQ(serial.exitCode, 0) << serial.output;
  const RunResult threaded = run(cmd(threadedDir, "8"));
  ASSERT_EQ(threaded.exitCode, 0) << threaded.output;

  EXPECT_EQ(serial.output, threaded.output)
      << bench << ": stdout differs between --threads=1 and --threads=8";

  const auto serialNames = artifactNames(serialDir);
  const auto threadedNames = artifactNames(threadedDir);
  ASSERT_EQ(serialNames, threadedNames)
      << bench << ": exported artifact sets differ";
  EXPECT_FALSE(serialNames.empty()) << bench << ": no artifacts exported";
  for (const auto& name : serialNames) {
    EXPECT_EQ(readFile(serialDir / name), readFile(threadedDir / name))
        << bench << ": artifact " << name << " differs between thread counts";
  }

  // The runtime profiles themselves were written (with manifests), just
  // not compared byte-for-byte: wall times differ run to run by design.
  for (const char* threads : {"1", "8"}) {
    const fs::path prof =
        tmp.path() / (std::string("runtimeprof.") + threads + ".json");
    EXPECT_FALSE(readFile(prof).empty())
        << bench << ": missing runtime profile for --threads=" << threads;
    EXPECT_FALSE(readFile(fs::path(prof.string() + ".manifest.json")).empty())
        << bench << ": missing runtime profile manifest";
  }
}

}  // namespace

TEST(ShardedIdentity, Fig5StdoutAndExportsMatchSerial) {
  expectByteIdentical("fig5_write_bandwidth", "--max-np 16384");
}

TEST(ShardedIdentity, Fig9StdoutAndExportsMatchSerial) {
  expectByteIdentical("fig9_dist_1pfpp", "");
}
