// Cross-module integration: the simulated strategies, the host backend and
// the solver agree on the logical checkpoint content; campaigns behave
// sanely end to end.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>

#include "hostio/solver_io.hpp"
#include "iofmt/file_io.hpp"
#include "iolib/layout.hpp"
#include "iolib/strategies.hpp"

namespace bgckpt {
namespace {

iolib::SimStackOptions quiet() {
  iolib::SimStackOptions opt;
  opt.noise = stor::NoiseModel::none();
  return opt;
}

iolib::CheckpointSpec tinySpec() {
  iolib::CheckpointSpec spec;
  spec.fieldBytesPerRank = 1024;
  spec.numFields = 6;
  spec.headerBytes = 256;
  spec.carryPayload = true;
  return spec;
}

TEST(EndToEnd, SimulatedAndHostBackendsAgreeOnLogicalContent) {
  // The same logical state (the shared deterministic pattern) written by
  // the simulated rbIO strategy and by the host rbIO strategy must contain
  // identical field blocks, fetched through completely different code
  // paths (FsImage extents vs. real pread through the container format).
  constexpr int kNp = 256;
  constexpr int kGroup = 64;
  const auto spec = tinySpec();

  iolib::SimStack stack(kNp, quiet());
  runCheckpoint(stack, spec, iolib::StrategyConfig::rbIo(kGroup, true));

  hostio::HostSpec hostSpec;
  hostSpec.directory = (std::filesystem::temp_directory_path() /
                        ("bgckpt_e2e_" + std::to_string(::getpid())))
                           .string();
  hostSpec.fieldNames = {"f0", "f1", "f2", "f3", "f4", "f5"};
  hostSpec.fieldBytesPerRank = spec.fieldBytesPerRank;
  std::vector<hostio::HostRankData> data(kNp);
  for (int r = 0; r < kNp; ++r) {
    auto payload = iolib::makeRankPayload(spec, r);
    auto& rank = data[static_cast<std::size_t>(r)];
    rank.fields.resize(6);
    for (int f = 0; f < 6; ++f)
      rank.fields[static_cast<std::size_t>(f)] = std::vector<std::byte>(
          payload.begin() + f * static_cast<long>(spec.fieldBytesPerRank),
          payload.begin() +
              (f + 1) * static_cast<long>(spec.fieldBytesPerRank));
  }
  hostio::writeCheckpoint(
      hostSpec, {hostio::HostStrategy::kRbIo, kNp / kGroup}, data);

  iolib::GroupFileLayout layout(spec, kGroup);
  for (int part = 0; part < kNp / kGroup; ++part) {
    const auto* img =
        stack.fsys.image().find(iolib::checkpointPath(spec, part));
    ASSERT_NE(img, nullptr);
    iofmt::CheckpointReader reader(hostio::hostCheckpointPath(hostSpec, part));
    for (int f = 0; f < 6; ++f)
      for (int local = 0; local < kGroup; ++local) {
        const auto simBytes = img->readBytes(
            {layout.fieldOffset(f, local), spec.fieldBytesPerRank});
        const auto hostBytes = reader.readBlock(f, local);
        ASSERT_EQ(simBytes, hostBytes)
            << "part " << part << " field " << f << " rank " << local;
      }
  }
  std::filesystem::remove_all(hostSpec.directory);
}

TEST(EndToEnd, AllStrategiesCoverAllFilesAtMultipleGroupSizes) {
  const auto spec = tinySpec();
  for (int np : {256, 1024}) {
    for (int groupSize : {8, 32, 64}) {
      iolib::SimStack stack(np, quiet());
      runCheckpoint(stack, spec,
                    iolib::StrategyConfig::rbIo(groupSize, true));
      iolib::GroupFileLayout layout(spec, groupSize);
      for (int part = 0; part < np / groupSize; ++part) {
        const auto* img =
            stack.fsys.image().find(iolib::checkpointPath(spec, part));
        ASSERT_NE(img, nullptr) << np << "/" << groupSize << "/" << part;
        EXPECT_TRUE(img->coversExactly(layout.fileBytes()))
            << np << "/" << groupSize << "/" << part;
      }
    }
  }
}

TEST(EndToEnd, MultiStepCampaignAccumulatesDistinctFiles) {
  constexpr int kNp = 256;
  iolib::SimStack stack(kNp, quiet());
  auto spec = tinySpec();
  spec.carryPayload = false;
  for (int step = 0; step < 3; ++step) {
    spec.step = step;
    runCheckpoint(stack, spec, iolib::StrategyConfig::rbIo(64, true));
  }
  EXPECT_EQ(stack.fsys.image().fileCount(), 3u * 4u);
  EXPECT_TRUE(stack.fsys.image().exists("ckpt/s2.part3"));
}

TEST(EndToEnd, SolverCheckpointsThroughEveryHostStrategyIdentically) {
  nekcem::BoxMesh mesh(2, 2, 2, 1, 1, 1, nekcem::Boundary::kPeriodic);
  nekcem::MaxwellSolver solver(mesh, 4);
  solver.setSolution(nekcem::planeWaveX(1.0), 0.0);
  solver.run(3, solver.stableDt());

  const auto base = std::filesystem::temp_directory_path() /
                    ("bgckpt_e2e_solver_" + std::to_string(::getpid()));
  std::vector<std::uint64_t> hashes;
  for (auto strategy :
       {hostio::HostStrategy::k1Pfpp, hostio::HostStrategy::kCoIo,
        hostio::HostStrategy::kRbIo}) {
    auto spec = hostio::solverSpec(
        solver, 8, (base / std::to_string(static_cast<int>(strategy))).string(),
        0);
    hostio::writeCheckpoint(spec, {strategy, 2},
                            hostio::snapshotSolver(solver, 8));
    // Restore through the generic reader and hash the state.
    hostio::HostSpec readSpec;
    readSpec.directory = spec.directory;
    const auto data = hostio::readCheckpoint(readSpec, 8);
    nekcem::MaxwellSolver restored(mesh, 4);
    hostio::restoreSolver(restored, data, readSpec);
    std::uint64_t h = 1469598103934665603ull;
    for (int f = 0; f < 6; ++f)
      for (double v : restored.fields().comp[static_cast<std::size_t>(f)]) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        h = (h ^ bits) * 1099511628211ull;
      }
    hashes.push_back(h);
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[1], hashes[2]);
  std::filesystem::remove_all(base);
}

TEST(EndToEnd, NoisyRunsAreSeedDeterministic) {
  auto once = [](std::uint64_t seed) {
    iolib::SimStackOptions opt;
    opt.seed = seed;  // default (noisy) NoiseModel
    iolib::SimStack stack(1024, opt);
    auto spec = iolib::CheckpointSpec::nekcemWeakScaling(1024);
    return runCheckpoint(stack, spec, iolib::StrategyConfig::coIo(16))
        .makespan;
  };
  EXPECT_DOUBLE_EQ(once(7), once(7));
  EXPECT_NE(once(7), once(8));
}

}  // namespace
}  // namespace bgckpt
