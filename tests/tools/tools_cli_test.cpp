// End-to-end coverage for the offline CLIs (tools/trace_report,
// tools/perf_compare, tools/sweep) against small committed fixtures: exit
// codes and the key output lines each mode must produce. The binaries and
// fixture directory come in as compile definitions from CMake.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#ifndef TOOLS_BIN_DIR
#error "TOOLS_BIN_DIR must be defined by the build"
#endif
#ifndef TOOLS_FIXTURE_DIR
#error "TOOLS_FIXTURE_DIR must be defined by the build"
#endif
#ifndef BENCH_BIN_DIR
#error "BENCH_BIN_DIR must be defined by the build"
#endif

namespace {

struct RunResult {
  int exitCode = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run(const std::string& cmd) {
  RunResult r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string traceReport() {
  return std::string(TOOLS_BIN_DIR) + "/trace_report";
}
std::string perfCompare() {
  return std::string(TOOLS_BIN_DIR) + "/perf_compare";
}
std::string fixture(const char* name) {
  return std::string(TOOLS_FIXTURE_DIR) + "/" + name;
}
std::string sweepBin() { return std::string(TOOLS_BIN_DIR) + "/sweep"; }

/// Fresh scratch ledger directory per test, removed on destruction.
struct TempLedger {
  std::filesystem::path path;
  TempLedger() {
    path = std::filesystem::temp_directory_path() /
           ("tools_cli_ledger_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
  }
  ~TempLedger() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

TEST(TraceReportCli, SummaryModeReportsLayersAndBalance) {
  const auto r = run(traceReport() + " " + fixture("trace_coio.jsonl"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("span balance: OK"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("io"), std::string::npos);
  EXPECT_NE(r.output.find("mpi"), std::string::npos);
  EXPECT_NE(r.output.find("horizon 1.800 s"), std::string::npos) << r.output;
}

TEST(TraceReportCli, AttrModePartitionsPhases) {
  const auto r = run(traceReport() + " --attr " + fixture("trace_coio.jsonl"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("blocked-time attribution"), std::string::npos);
  // rank0 collective 0.6 minus the 0.1 token wait, plus rank1's 0.7.
  EXPECT_NE(r.output.find("barrier"), std::string::npos);
  EXPECT_NE(r.output.find("1.200"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("token_wait"), std::string::npos);
  EXPECT_NE(r.output.find("blocked"), std::string::npos);
}

TEST(TraceReportCli, AttrDiffComparesTwoRuns) {
  const auto r = run(traceReport() + " --attr " + fixture("trace_coio.jsonl") +
                     " --diff " + fixture("trace_rbio.jsonl"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("diff against"), std::string::npos);
  EXPECT_NE(r.output.find("A-B"), std::string::npos);
  EXPECT_NE(r.output.find("blocked-time ratio A/B"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("handoff_send"), std::string::npos);
}

TEST(TraceReportCli, CritPathModeRendersBuckets) {
  const auto r =
      run(traceReport() + " --critpath " + fixture("critpath_coio.json"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("critical path"), std::string::npos);
  EXPECT_NE(r.output.find("path 1.800 s"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("delay"), std::string::npos);
  EXPECT_NE(r.output.find("fabric.cpp"), std::string::npos);
}

TEST(TraceReportCli, CritPathDiffComparesTwoRuns) {
  const auto r =
      run(traceReport() + " --critpath " + fixture("critpath_coio.json") +
          " --diff " + fixture("critpath_rbio.json"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("A seconds"), std::string::npos);
  EXPECT_NE(r.output.find("fabric.cpp"), std::string::npos);
  EXPECT_NE(r.output.find("resource_grant"), std::string::npos) << r.output;
}

TEST(TraceReportCli, ErrorsAreUsageExitCode) {
  EXPECT_EQ(run(traceReport()).exitCode, 2);
  EXPECT_EQ(run(traceReport() + " --attr /nonexistent.jsonl").exitCode, 2);
  // --diff only makes sense with --attr/--critpath.
  EXPECT_EQ(run(traceReport() + " " + fixture("trace_coio.jsonl") +
                " --diff " + fixture("trace_rbio.jsonl"))
                .exitCode,
            2);
}

TEST(TraceReportCli, TimelineModeRendersHeatmapAndImbalance) {
  const auto r =
      run(traceReport() + " --timeline " + fixture("telemetry_1pfpp.json"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("telemetry timeline"), std::string::npos);
  EXPECT_NE(r.output.find("horizon 2.000 s, 4 buckets of 0.5 s, 2 series"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("stor.server.bytes (rate, 4 instances"),
            std::string::npos)
      << r.output;
  // Loads [6,2,1,1]: Jain = 100/168, skew = 6/2.5, share = 60%.
  EXPECT_NE(r.output.find("jain=0.595"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("max/mean=2.40"), std::string::npos);
  EXPECT_NE(r.output.find("max-share=60.0%"), std::string::npos);
  EXPECT_NE(r.output.find("busiest #0"), std::string::npos);
  // Instance 0's row saturates the shade scale somewhere.
  EXPECT_NE(r.output.find("@"), std::string::npos) << r.output;
}

TEST(TraceReportCli, TimelineDiffComparesImbalance) {
  const auto r =
      run(traceReport() + " --timeline " + fixture("telemetry_1pfpp.json") +
          " --diff " + fixture("telemetry_rbio.json"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("diff against"), std::string::npos);
  EXPECT_NE(r.output.find("A jain"), std::string::npos);
  EXPECT_NE(r.output.find("0.595"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("0.962"), std::string::npos) << r.output;
}

TEST(TraceReportCli, TimelineRejectsWrongSchemaVersion) {
  const auto r =
      run(traceReport() + " --timeline " + fixture("telemetry_badschema.json"));
  EXPECT_EQ(r.exitCode, 2) << r.output;
  EXPECT_NE(r.output.find("not supported"), std::string::npos) << r.output;
}

TEST(TraceReportCli, TimelineRejectsWrongManifestVersion) {
  const auto r = run(traceReport() + " --timeline " +
                     fixture("telemetry_badmanifest.json"));
  EXPECT_EQ(r.exitCode, 2) << r.output;
  EXPECT_NE(r.output.find("manifest schema"), std::string::npos) << r.output;
}

TEST(TraceReportCli, WaterfallModeRendersHopTableAndLineage) {
  const auto r =
      run(traceReport() + " --waterfall " + fixture("optrace_rbio.json"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("op trace:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("66560 requests minted, 66560 completed "
                          "(0 unfinished)"),
            std::string::npos)
      << r.output;
  // fig11 at np=65536, nf=1024: every writer aggregates exactly 64 blocks.
  EXPECT_NE(r.output.find("fan-in min/p50/max = 64/64/64"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("server_queue"), std::string::npos);
  EXPECT_NE(r.output.find("ddn_commit"), std::string::npos);
  EXPECT_NE(r.output.find("tail waterfalls"), std::string::npos) << r.output;
}

// Acceptance: the hop table must localize >= 80% of the commit path's p99
// end-to-end latency to the handoff / fs-server hops the paper blames.
TEST(TraceReportCli, WaterfallLocalizesTailToPaperHops) {
  const auto r =
      run(traceReport() + " --waterfall " + fixture("optrace_rbio.json"));
  ASSERT_EQ(r.exitCode, 0) << r.output;
  const std::string key = "p99 localization (op commit): ";
  const auto at = r.output.find(key);
  ASSERT_NE(at, std::string::npos) << r.output;
  const auto eq = r.output.find(" = ", at);
  const auto pct = r.output.find("% of e2e p99", at);
  ASSERT_NE(eq, std::string::npos) << r.output;
  ASSERT_NE(pct, std::string::npos) << r.output;
  EXPECT_GE(std::stod(r.output.substr(eq + 3, pct - eq - 3)), 80.0)
      << r.output;
  // Every hop named in the localization must be one the paper blames.
  std::string hops = r.output.substr(at + key.size(), eq - at - key.size());
  std::size_t pos = 0;
  while (pos <= hops.size()) {
    const auto plus = hops.find(" + ", pos);
    const std::string hop = hops.substr(
        pos, plus == std::string::npos ? std::string::npos : plus - pos);
    EXPECT_TRUE(hop == "handoff_recv" || hop == "server_queue" ||
                hop == "server_service")
        << "unexpected hop in localization: " << hop;
    if (plus == std::string::npos) break;
    pos = plus + 3;
  }
}

TEST(TraceReportCli, WaterfallReqRendersChosenRequest) {
  const auto r = run(traceReport() + " --waterfall " +
                     fixture("optrace_rbio.json") + " --req 36864");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("request 36864: op=handoff"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("handoff_send"), std::string::npos);
  EXPECT_NE(r.output.find("net_inject"), std::string::npos);
}

TEST(TraceReportCli, WaterfallReqNotRetainedExitsOne) {
  const auto r = run(traceReport() + " --waterfall " +
                     fixture("optrace_rbio.json") + " --req 99999999");
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("request 99999999 not retained"), std::string::npos)
      << r.output;
}

TEST(TraceReportCli, WaterfallDiffComparesHopTables) {
  const auto r =
      run(traceReport() + " --waterfall " + fixture("optrace_rbio.json") +
          " --diff " + fixture("optrace_coio.json"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("diff against"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("A p99"), std::string::npos);
  EXPECT_NE(r.output.find("(e2e)"), std::string::npos);
  EXPECT_NE(r.output.find("server_queue"), std::string::npos);
}

TEST(TraceReportCli, WaterfallRejectsWrongSchemaVersion) {
  const auto r =
      run(traceReport() + " --waterfall " + fixture("optrace_badschema.json"));
  EXPECT_EQ(r.exitCode, 2) << r.output;
  EXPECT_NE(r.output.find("not supported"), std::string::npos) << r.output;
}

TEST(TraceReportCli, WaterfallRejectsWrongManifestVersion) {
  const auto r = run(traceReport() + " --waterfall " +
                     fixture("optrace_badmanifest.json"));
  EXPECT_EQ(r.exitCode, 2) << r.output;
  EXPECT_NE(r.output.find("manifest schema"), std::string::npos) << r.output;
}

TEST(TraceReportCli, WaterfallReqUsageErrors) {
  // --req only makes sense with --waterfall, and not alongside --diff.
  EXPECT_EQ(run(traceReport() + " " + fixture("trace_coio.jsonl") + " --req 3")
                .exitCode,
            2);
  EXPECT_EQ(run(traceReport() + " --waterfall " + fixture("optrace_rbio.json") +
                " --diff " + fixture("optrace_coio.json") + " --req 3")
                .exitCode,
            2);
}

TEST(TraceReportCli, RuntimeModeRendersPhaseTableAndCriticalShard) {
  const auto r =
      run(traceReport() + " --runtime " + fixture("runtimeprof_ring.json"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("shard group [shards=4 threads=4]"),
            std::string::npos)
      << r.output;
  // The four phase shares must sum to 100% (barrier' = barrier - reduce).
  EXPECT_NE(r.output.find("drain 10.0% + reduce 10.0% + barrier-wait 40.0% "
                          "+ execute 40.0% = 100%"),
            std::string::npos)
      << r.output;
  // The acceptance-shaped summary line: who sets the horizon, at what cost.
  EXPECT_NE(r.output.find("critical shard: shard 3 critical in 72% of "
                          "windows; barrier wait = 40% of worker wall"),
            std::string::npos)
      << r.output;
}

TEST(TraceReportCli, RuntimeModeDecomposesParallelRegion) {
  const auto r =
      run(traceReport() + " --runtime " + fixture("runtimeprof_ring.json"));
  ASSERT_EQ(r.exitCode, 0) << r.output;
  // The slowest point is named as the cap on the region.
  EXPECT_NE(r.output.find("critical point: np=65536 coIO nf=1 (3.500 s"),
            std::string::npos)
      << r.output;
  // speedup = 10s of work / 4s wall; ceiling = 10 / max(3.5, 10/8).
  EXPECT_NE(r.output.find("parallel efficiency: speedup 2.50x of 8 threads "
                          "(31.2%); serial fraction 0.35 -> Amdahl ceiling "
                          "2.86x"),
            std::string::npos)
      << r.output;
}

TEST(TraceReportCli, RuntimeDiffComparesPointsAndPhaseShares) {
  const auto r =
      run(traceReport() + " --runtime " + fixture("runtimeprof_ring.json") +
          " --diff " + fixture("runtimeprof_ring.json"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("diff against"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("np=65536 coIO nf=1"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1.00x"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("barrier-wait   40.0% ->   40.0%"),
            std::string::npos)
      << r.output;
}

TEST(TraceReportCli, RuntimeRejectsWrongSchemaVersion) {
  const auto r = run(traceReport() + " --runtime " +
                     fixture("runtimeprof_badschema.json"));
  EXPECT_EQ(r.exitCode, 2) << r.output;
  EXPECT_NE(r.output.find("not supported"), std::string::npos) << r.output;
}

TEST(TraceReportCli, RuntimeRejectsWrongManifestVersion) {
  const auto r = run(traceReport() + " --runtime " +
                     fixture("runtimeprof_badmanifest.json"));
  EXPECT_EQ(r.exitCode, 2) << r.output;
  EXPECT_NE(r.output.find("manifest schema"), std::string::npos) << r.output;
}

// ---------------------------------------------------------------------------
// tools/sweep + trace_report --campaign: the campaign ledger loop. The
// committed campaign_a / campaign_b fixtures are two-revision mini-ledgers
// produced by the real sweep tool (rev-a / rev-b) over the committed
// sweep_smoke.json spec.
// ---------------------------------------------------------------------------

TEST(SweepCli, SecondPassIsAllCacheHits) {
  TempLedger ledger;
  const std::string cmd = sweepBin() + " " + fixture("sweep_smoke.json") +
                          " --ledger " + ledger.str() + " --bench-dir " +
                          BENCH_BIN_DIR + " --git-rev test-rev --jobs 2";
  const auto first = run(cmd);
  EXPECT_EQ(first.exitCode, 0) << first.output;
  EXPECT_NE(first.output.find("(2 run, 0 cached, 0 failed)"),
            std::string::npos)
      << first.output;
  const auto second = run(cmd);
  EXPECT_EQ(second.exitCode, 0) << second.output;
  EXPECT_NE(second.output.find("(0 run, 2 cached, 0 failed)"),
            std::string::npos)
      << second.output;
  // A different revision derives different keys: everything re-runs.
  const auto newRev = run(sweepBin() + " " + fixture("sweep_smoke.json") +
                          " --ledger " + ledger.str() + " --bench-dir " +
                          BENCH_BIN_DIR + " --git-rev other-rev --jobs 2");
  EXPECT_EQ(newRev.exitCode, 0) << newRev.output;
  EXPECT_NE(newRev.output.find("(2 run, 0 cached, 0 failed)"),
            std::string::npos)
      << newRev.output;
}

TEST(SweepCli, LedgerFeedsCampaignRollup) {
  TempLedger ledger;
  const auto sweep = run(sweepBin() + " " + fixture("sweep_smoke.json") +
                         " --ledger " + ledger.str() + " --bench-dir " +
                         BENCH_BIN_DIR + " --git-rev test-rev --jobs 1");
  ASSERT_EQ(sweep.exitCode, 0) << sweep.output;
  const auto r = run(traceReport() + " --campaign " + ledger.str());
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("2 run(s), 2 distinct config(s)"),
            std::string::npos)
      << r.output;
  // The roll-up re-derives the bandwidth strings the bench printed,
  // byte-identically (the ledger stores the exact "%.2f GB/s" text).
  EXPECT_NE(r.output.find("0.26 GB/s"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("0.15 GB/s"), std::string::npos) << r.output;
}

TEST(SweepCli, RejectsUnknownSpecSchema) {
  TempLedger ledger;
  const auto r = run(sweepBin() + " " + fixture("telemetry_badschema.json") +
                     " --ledger " + ledger.str());
  EXPECT_EQ(r.exitCode, 2) << r.output;
  EXPECT_NE(r.output.find("not supported"), std::string::npos) << r.output;
}

TEST(CampaignCli, RendersBandwidthTableAndBestStrategyMatrix) {
  const auto r = run(traceReport() + " --campaign " + fixture("campaign_a"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("revision(s): rev-a"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("per-strategy bandwidth vs np"), std::string::npos)
      << r.output;
  // Byte-identical to the bench's own stdout at np=256: coIO nf=4 printed
  // "BW_coIO=0.26 GB/s", rbIO "BW_rbIO=0.15 GB/s".
  EXPECT_NE(r.output.find("0.26 GB/s"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("0.15 GB/s"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("best strategy per (np, nf)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("coIO"), std::string::npos);
  EXPECT_NE(r.output.find("rbIO"), std::string::npos);
}

TEST(CampaignCli, DiffMatchesConfigsAcrossRevisions) {
  const auto r = run(traceReport() + " --campaign " + fixture("campaign_a") +
                     " --diff " + fixture("campaign_b"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("diff against"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("revision(s): rev-b"), std::string::npos)
      << r.output;
  // Same configs at both revisions pair up by config hash; the simulation
  // is deterministic, so event counts match exactly.
  EXPECT_NE(r.output.find("eq7_measured_vs_model --np 256"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("+0.00%"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("only in"), std::string::npos) << r.output;
}

TEST(CampaignCli, BaselineGatePassesOnIdenticalEventCounts) {
  const auto r = run(traceReport() + " --campaign " + fixture("campaign_b") +
                     " --baseline " + fixture("campaign_a"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("gating against"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("campaign gate [OK]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("2 gated: 2 ok, 0 failed, 0 skipped"),
            std::string::npos)
      << r.output;
}

TEST(CampaignCli, MissingLedgerAndUsageErrorsExitTwo) {
  EXPECT_EQ(run(traceReport() + " --campaign /nonexistent-ledger").exitCode,
            2);
  // --baseline only makes sense with --campaign, and not alongside --diff.
  EXPECT_EQ(run(traceReport() + " " + fixture("trace_coio.jsonl") +
                " --baseline " + fixture("campaign_a"))
                .exitCode,
            2);
  EXPECT_EQ(run(traceReport() + " --campaign " + fixture("campaign_a") +
                " --diff " + fixture("campaign_b") + " --baseline " +
                fixture("campaign_a"))
                .exitCode,
            2);
}

TEST(CampaignCli, AcceptsManifestV2Sidecar) {
  // The v2 sidecar (git_rev + config_hash provenance) gates clean; the
  // existing telemetry fixtures cover v1-read compat and the rejection of
  // unknown manifest versions.
  const auto r = run(traceReport() + " --timeline " +
                     fixture("telemetry_v2manifest.json"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("telemetry timeline"), std::string::npos)
      << r.output;
}

TEST(PerfCompareCli, PassesWhenEventsMatch) {
  const auto r = run(perfCompare() + " " + fixture("perf_base.json") + " " +
                     fixture("perf_same.json") + " --no-wall");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("PERF CHECK [PASS]: events"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("PERF CHECK [SKIP]: wall-clock"), std::string::npos);
}

TEST(PerfCompareCli, FailsOnEventRegression) {
  const auto r = run(perfCompare() + " " + fixture("perf_base.json") + " " +
                     fixture("perf_regressed.json") + " --no-wall");
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("PERF CHECK [FAIL]: events"), std::string::npos)
      << r.output;
}

TEST(PerfCompareCli, ComparesMatchingThreadGroupsOnly) {
  // Baseline holds serial and 8-thread groups; the current report is
  // serial-only, so only the threads=1 group gates and the 8-thread group
  // is skipped.
  const auto r = run(perfCompare() + " " + fixture("perf_base_threads.json") +
                     " " + fixture("perf_same.json") + " --no-wall");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("PERF CHECK [PASS]: events"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[threads=1]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("PERF CHECK [SKIP]: no [threads=8]"),
            std::string::npos)
      << r.output;
}

TEST(PerfCompareCli, MinSpeedupPassesWhenParallelIsFaster) {
  const auto r = run(perfCompare() + " " + fixture("perf_base.json") + " " +
                     fixture("perf_parallel.json") + " --min-speedup 3");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("PERF CHECK [PASS]: speedup 4.00x"),
            std::string::npos)
      << r.output;
}

TEST(PerfCompareCli, MinSpeedupFailsWhenParallelIsNotFasterEnough) {
  const auto r = run(perfCompare() + " " + fixture("perf_base.json") + " " +
                     fixture("perf_same.json") + " --min-speedup 3");
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("PERF CHECK [FAIL]: speedup"), std::string::npos)
      << r.output;
}

TEST(PerfCompareCli, UsageAndMissingFilesExitTwo) {
  EXPECT_EQ(run(perfCompare()).exitCode, 2);
  EXPECT_EQ(run(perfCompare() + " " + fixture("perf_base.json") +
                " /nonexistent.json")
                .exitCode,
            2);
}

}  // namespace
