// Fixture: minimized repro of the PR 3 fssim use-after-free — co_await in
// both branches of a conditional expression. GCC destroys the awaited
// temporary before the ?: result is copied out; ASan reports a UAF on the
// returned handle.
struct FileHandle { int fd; };
struct Fs {
  auto create(int rank, const char* path);
  auto open(int rank, const char* path);
  auto close(int rank, FileHandle fh);
};
template <class T = void> struct Task {};

Task<> writer(Fs& fs, int rank) {
  FileHandle fh = rank == 0 ? co_await fs.create(0, "f")
                            : co_await fs.open(rank, "f");
  co_await fs.close(rank, fh);
}
