// Fixture: cross-shard sends whose delay is not provably >= the lookahead —
// a bare constant, and a bound-breaking subtraction.
struct Group {
  template <class F> void send(unsigned from, unsigned to, double delay, F fn);
};
struct Config {
  double lookahead = 1.0;
};

void emitEvents(Group& group, const Config& cfg) {
  group.send(0, 1, 0.25, [] {});                  // shard-send-lookahead
  group.send(0, 1, cfg.lookahead - 0.1, [] {});   // shard-send-lookahead:
  (void)cfg;                                      // subtraction breaks bound
}
