// Fixture: suppression misuse — a bare allow with no justification (which
// also leaves the underlying finding live) and an allow naming a rule that
// does not exist.
int seedA() {
  return rand();  // srclint:allow(wall-clock)
}
int seedB() {
  return rand();  // srclint:allow(wall-clok): typo'd rule name
}
