// Fixture: wall-clock, assert (call and include), obs-emit,
// telemetry-probe, and optrace-mint positives in one sim-layer file.
#include <cassert>

struct Event {};
struct Sink {
  void emit(const Event&) {}
};
struct Registry {
  int probe(const char*) { return 0; }
};
int mintOpTrace();

double jitter() {
  return static_cast<double>(rand());  // wall-clock: libc randomness
}

void record(Sink& sink, Registry& reg) {
  assert(jitter() >= 0.0);  // assert: vanishes under NDEBUG
  Event ev;
  sink.emit(ev);            // obs-emit: direct sink emit outside src/obs
  (void)reg.probe("fs.queue_depth");  // telemetry-probe: not via telemetry()
  (void)mintOpTrace();      // optrace-mint: below the strategy layer
}
