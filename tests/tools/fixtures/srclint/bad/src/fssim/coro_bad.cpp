// Fixture: range-for over an awaited temporary, an immediately-invoked
// capturing coroutine lambda, and a spawned coroutine binding a reference
// parameter to a temporary.
template <class T = void> struct Task {};
struct Chunk {};
struct Stack {
  auto fetchChunks();
};
struct Sched {
  void spawn(Task<> t);
  void run();
};
Stack makeStack();

Task<> consume(Stack& st) {
  for (const Chunk& c : co_await st.fetchChunks()) {  // ternary-co-await:
    (void)c;  // the range temporary dies before the loop body resumes
  }
}

Task<> writer(Stack& s, int n) {
  (void)n;
  co_return;
}

void detachAll(Sched& sched, int x) {
  auto t = [&x]() -> Task<> { co_return; }();  // coro-lambda-capture: the
  // temporary closure dies at the ';' while the lazy Task resumes later
  sched.spawn(static_cast<Task<>&&>(t));
  sched.spawn(writer(makeStack(), 3));  // coro-spawn-dangling: Stack& bound
  sched.run();                          // to a temporary
}
