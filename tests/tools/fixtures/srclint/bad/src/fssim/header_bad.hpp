// Fixture: include-hygiene — missing #pragma once, a "../" relative
// include, and a libstdc++ internal header.
#include "../simcore/scheduler.hpp"
#include <bits/stdc++.h>

inline int fixtureValue() { return 1; }
