// Fixture: shard-global-read across files — a simcore function body reads a
// mutable namespace-scope global declared in another translation unit.
int readBudget() {
  return gSharedBudget;  // shard-global-read: cross-file gName convention
}
