// Fixture: raw-new, priority-queue, static-mutable (namespace-scope and
// function-local), and a same-file shard-global-read.
#include <queue>

namespace sim {

int gTicksTotal = 0;            // static-mutable: namespace scope, no keyword

namespace {
double gScaleFactor = 1.0;      // static-mutable: anonymous namespace
}  // namespace

int bumpTicks() {
  static int callCount = 0;     // static-mutable: function-local static
  ++callCount;
  gTicksTotal += callCount;     // shard-global-read: same-file mutable global
  return gTicksTotal;
}

void queues() {
  std::priority_queue<int> backlog;  // priority-queue: outside scheduler.cpp
  backlog.push(bumpTicks());
  int* scratch = new int[4];    // raw-new: simcore allocations use the arena
  delete[] scratch;             // raw-new: and the matching delete
  (void)gScaleFactor;
}

}  // namespace sim
