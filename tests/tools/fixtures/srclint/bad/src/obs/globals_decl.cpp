// Fixture: declares a mutable gName-convention global outside simcore (so
// static-mutable stays quiet here) that a simcore file reads cross-file.
int gSharedBudget = 0;

void resetBudget() { gSharedBudget = 0; }
