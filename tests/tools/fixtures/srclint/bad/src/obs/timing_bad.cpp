// Fixture: the wall-clock carve-out must not leak past its allowlisted
// paths. This file sits in src/obs *next to* runtimeprof.cpp but is not on
// the allowlist, so both host-clock identifiers are findings.
#include <chrono>

double tick() {
  const auto t0 = std::chrono::steady_clock::now();  // wall-clock
  const auto t1 = std::chrono::system_clock::now();  // wall-clock
  return std::chrono::duration<double>(t0.time_since_epoch()).count() +
         std::chrono::duration<double>(t1.time_since_epoch()).count();
}
