// Fixture: unordered-container iteration feeding ordered sinks — a printf
// in hash order, a float accumulation, and a begin()-drain loop.
#include <cstdio>
#include <unordered_map>

struct Exporter {
  std::unordered_map<int, double> byId_;
  double totalSeconds = 0.0;

  void dump() {
    for (const auto& [id, v] : byId_)    // det-unordered-iteration: printf
      std::printf("%d %f\n", id, v);     // emits rows in hash-table order
  }
  void accumulate() {
    double total = 0.0;
    for (const auto& [id, v] : byId_) {  // det-unordered-iteration: float
      (void)id;                          // addition does not commute
      total += v;
    }
    totalSeconds = total;
  }
  void consume(int id) { byId_.erase(id); }
  void drain() {
    while (!byId_.empty())               // det-unordered-iteration: drains
      consume(byId_.begin()->first);     // in hash-table order
  }
};
