// Fixture: manifest sidecars must be written through the shared stamping
// helper. This file sits in src/obs *next to* runstore.cpp but is not on
// the allowlist, so both hand-rolled sidecar paths are findings.
#include <string>

std::string sidecarPath(const std::string& artifact) {
  return artifact + ".manifest.json";  // manifest-stamp
}

std::string legacySidecar() {
  return std::string("trace.json.manifest.json");  // manifest-stamp
}
