// Fixture: wall-clock now covers bench/ too — harnesses must time through
// bench::WallTimer (bench/common), not ad-hoc host clocks. This file is in
// bench/ but not on the allowlist, so the identifier is a finding.
#include <chrono>

double wallSeconds() {
  const auto t0 = std::chrono::steady_clock::now();  // wall-clock
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
