// Fixture: a hygienic header — #pragma once and module-qualified includes.
#pragma once

#include <cstdint>

inline std::uint32_t fixtureValue() { return 1; }
