// Fixture: compliant cross-shard sends — delays visibly derived from the
// lookahead / hop-latency constants, and a 3-argument mpisim-style send
// that the rule must not confuse with ShardGroup::send.
struct Group {
  template <class F> void send(unsigned from, unsigned to, double delay, F fn);
};
struct Comm {
  void send(int dst, int tag, unsigned long bytes);
};
struct Config {
  double lookahead = 1.0;
  double hopLatency = 0.5;
};

void emitEvents(Group& group, Comm& comm, const Config& cfg) {
  group.send(0, 1, cfg.lookahead, [] {});
  group.send(0, 1, cfg.hopLatency * 2.0 + 1.0, [] {});
  comm.send(3, 7, 4096ul);
}
