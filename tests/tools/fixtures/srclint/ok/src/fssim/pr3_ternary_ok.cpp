// Fixture: the corrected PR 3 pattern — the conditional spelled as if/else
// so each co_await is a full statement, plus safe co_await positions (call
// argument, await of a grouped call result).
struct FileHandle { int fd; };
struct Fs {
  auto create(int rank, const char* path);
  auto open(int rank, const char* path);
  auto close(int rank, FileHandle fh);
};
template <class T = void> struct Task {};
void use(FileHandle fh);

Task<> writer(Fs& fs, int rank) {
  FileHandle fh;
  if (rank == 0)
    fh = co_await fs.create(0, "f");
  else
    fh = co_await fs.open(rank, "f");
  use(co_await fs.open(rank, "g"));  // call argument: full-expression
  co_await fs.close(rank, fh);       // lifetime covers the suspension
}
