// Fixture: the safe coroutine idioms — a named closure spawned under a
// same-scope run(), a directly-awaited immediately-invoked lambda, lvalue
// spawn arguments, and a lambda handed straight to spawnAll (pinned by the
// Runtime).
template <class T = void> struct Task {};
struct Comm {};
struct Stack {
  int depth;
};
struct Sched {
  void spawn(Task<> t);
  void run();
};
struct Runtime {
  template <class F> void spawnAll(F f);
};

Task<> writer(Stack& s, int n) {
  (void)n;
  co_return;
}

Task<> outer(Sched& sched, int x) {
  // Immediately invoked, but directly awaited: the enclosing coroutine's
  // frame keeps the closure temporary alive across the suspension.
  co_await [&x]() -> Task<> { co_return; }();
}

void runAll(Sched& sched, Runtime& rt, Stack& st, int x) {
  auto body = [&x]() -> Task<> { co_return; };  // named: outlives run()
  sched.spawn(body());
  sched.spawn(writer(st, 3));  // lvalue argument: no dangling reference
  rt.spawnAll([&st](Comm world) -> Task<> {
    (void)world;
    (void)st.depth;
    co_return;
  });
  sched.run();
}
