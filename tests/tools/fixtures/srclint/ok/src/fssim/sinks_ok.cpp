// Fixture: seeded RNG instead of libc randomness, SIM_CHECK instead of
// assert, and the probe resolved from the Telemetry registry on one line.
struct Rng {
  double next();
};
struct Telemetry {
  int probe(const char*) { return 0; }
};
struct Obs {
  Telemetry& telemetry();
};

double jitter(Rng& rng) { return rng.next(); }

void record(Obs* obs) {
  (void)obs->telemetry().probe("fs.queue_depth");
}
