// Fixture: a justified allow naming a known rule suppresses the finding —
// on the same line and from a comment line directly above.
unsigned seedA() {
  return rand();  // srclint:allow(wall-clock): fixture exercises the
                  // justified same-line allow path
}
unsigned seedB() {
  // srclint:allow(wall-clock): fixture exercises the comment-line-above
  // allow path
  return rand();
}
