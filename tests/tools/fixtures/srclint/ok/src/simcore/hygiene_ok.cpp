// Fixture: the compliant counterparts — arena operator-new plumbing,
// exempt namespace-scope declarations, and no hidden mutable state.
#include <atomic>
#include <cstddef>

namespace sim {

constexpr int kMaxShards = 64;             // exempt: constexpr
const double kDefaultScale = 1.0;          // exempt: const
std::atomic<int> gLiveTasks{0};            // exempt: self-synchronized
thread_local int tlsScratch = 0;           // exempt: per-thread

struct FrameArena {
  // operator-new plumbing IS the designated allocator: exempt from raw-new.
  static void* operator new(std::size_t n);
  static void operator delete(void* p) noexcept;
  FrameArena(const FrameArena&) = delete;  // `= delete` is not a delete-expr
};

int nextShard(int s) { return (s + 1) % kMaxShards; }

}  // namespace sim
