// Fixture: std::priority_queue is sanctioned inside simcore/scheduler.cpp
// (the legacy A/B reference queue lives here).
#include <queue>

namespace sim {

int drainReference() {
  std::priority_queue<int> reference;
  reference.push(1);
  const int top = reference.top();
  reference.pop();
  return top;
}

}  // namespace sim
