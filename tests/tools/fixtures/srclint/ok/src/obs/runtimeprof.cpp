// Fixture: the wall-clock rule's scoped carve-out. This path matches the
// built-in allowlist entry "src/obs/runtimeprof." — the runtime execution
// profiler measures real worker wall time by definition — so host-clock
// identifiers here are clean without any srclint:allow marker.
#include <chrono>
#include <cstdint>

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double spanSeconds(std::uint64_t beginNs, std::uint64_t endNs) {
  return static_cast<double>(endNs - beginNs) * 1e-9;
}
