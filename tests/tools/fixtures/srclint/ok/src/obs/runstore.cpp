// Fixture: src/obs/runstore.* is the manifest-stamp rule's allowlisted
// writer — the literal sidecar suffix here is the sanctioned stamping
// site, not a finding.
#include <string>

std::string manifestPathFor(const std::string& artifact) {
  return artifact + ".manifest.json";
}
