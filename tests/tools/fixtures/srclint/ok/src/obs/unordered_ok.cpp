// Fixture: order-independent bodies over unordered containers — integer
// accumulation, and keys collected then sorted before the ordered sink.
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

struct Exporter {
  std::unordered_map<int, long> byId_;

  long countAll() {
    long n = 0;
    for (const auto& [id, v] : byId_) {  // integer sums commute
      (void)id;
      n += v;
    }
    return n;
  }
  void dumpSorted() {
    std::vector<int> keys;
    keys.reserve(byId_.size());
    for (const auto& [id, v] : byId_) {  // key collection only
      (void)v;
      keys.push_back(id);
    }
    std::sort(keys.begin(), keys.end());
    for (int k : keys) std::printf("%d %ld\n", k, byId_.at(k));
  }
};
