// Fixture: the second wall-clock allowlist entry, "bench/common." — the
// shared harness plumbing owns the one sanctioned stopwatch (WallTimer),
// so its host-clock use is clean without srclint:allow markers.
#include <chrono>

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

double measure() { return WallTimer().seconds(); }
