// End-to-end coverage for tools/srclint against the committed fixture tree
// (tests/tools/fixtures/srclint): one positive and one negative fixture per
// rule family, the minimized PR 3 ternary-co_await repro, the SARIF 2.1.0
// shape, and the baseline add/expire round trip. The binary and fixture
// directory come in as compile definitions from CMake.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

#ifndef TOOLS_BIN_DIR
#error "TOOLS_BIN_DIR must be defined by the build"
#endif
#ifndef TOOLS_FIXTURE_DIR
#error "TOOLS_FIXTURE_DIR must be defined by the build"
#endif

namespace {

namespace json = bgckpt::obs::json;

struct RunResult {
  int exitCode = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run(const std::string& cmd) {
  RunResult r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string srclint() { return std::string(TOOLS_BIN_DIR) + "/srclint"; }
std::string fx(const char* rel) {
  return std::string(TOOLS_FIXTURE_DIR) + "/srclint/" + rel;
}
std::string tmpPath(const char* name) {
  const char* t = std::getenv("TMPDIR");
  return std::string(t != nullptr ? t : "/tmp") + "/" + name;
}

bool has(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

int countOf(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t p = hay.find(needle); p != std::string::npos;
       p = hay.find(needle, p + needle.size()))
    ++n;
  return n;
}

// ---------------------------------------------------------------------------
// Rule positives and negatives, per family.
// ---------------------------------------------------------------------------

TEST(SrclintRules, HygieneFamilyPositives) {
  const auto r = run(srclint() + " " + fx("bad/src/simcore/hygiene_bad.cpp"));
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_EQ(countOf(r.output, "[raw-new]"), 2) << r.output;
  EXPECT_TRUE(has(r.output, "[priority-queue]")) << r.output;
  EXPECT_EQ(countOf(r.output, "[static-mutable]"), 3) << r.output;
  EXPECT_TRUE(has(r.output, "[shard-global-read]")) << r.output;
}

TEST(SrclintRules, HygieneFamilyNegatives) {
  const auto r = run(srclint() + " " + fx("ok/src/simcore/hygiene_ok.cpp") +
                     " " + fx("ok/src/simcore/scheduler.cpp"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST(SrclintRules, SinkAndClockPositives) {
  const auto r = run(srclint() + " " + fx("bad/src/fssim/sinks_bad.cpp"));
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_TRUE(has(r.output, "[wall-clock]")) << r.output;
  // One for the call, one for the <cassert> include.
  EXPECT_EQ(countOf(r.output, "[assert]"), 2) << r.output;
  EXPECT_TRUE(has(r.output, "[obs-emit]")) << r.output;
  EXPECT_TRUE(has(r.output, "[telemetry-probe]")) << r.output;
  EXPECT_TRUE(has(r.output, "[optrace-mint]")) << r.output;
}

TEST(SrclintRules, SinkAndClockNegatives) {
  const auto r = run(srclint() + " " + fx("ok/src/fssim/sinks_ok.cpp"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

// The wall-clock rule's scoped allowlist (src/obs/runtimeprof.*,
// bench/common.*): sanctioned paths are clean with host clocks and no
// srclint:allow markers, and the carve-out does not leak to sibling files
// in the same directories or the rest of bench/.
TEST(SrclintRules, WallClockAllowlistedPathsAreClean) {
  const auto r = run(srclint() + " " + fx("ok/src/obs/runtimeprof.cpp") +
                     " " + fx("ok/bench/common.cpp"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_EQ(countOf(r.output, "[wall-clock]"), 0) << r.output;
}

TEST(SrclintRules, WallClockCarveOutDoesNotLeak) {
  // A src/obs neighbor of runtimeprof.cpp: both clock identifiers flagged.
  const auto obs = run(srclint() + " " + fx("bad/src/obs/timing_bad.cpp"));
  EXPECT_EQ(obs.exitCode, 1) << obs.output;
  EXPECT_EQ(countOf(obs.output, "[wall-clock]"), 2) << obs.output;
  // bench/ outside bench/common.*: flagged too (the rule now covers bench).
  const auto bench = run(srclint() + " " + fx("bad/bench/harness_bad.cpp"));
  EXPECT_EQ(bench.exitCode, 1) << bench.output;
  EXPECT_EQ(countOf(bench.output, "[wall-clock]"), 1) << bench.output;
  // Running the allowlisted and non-allowlisted files together changes
  // nothing: the carve-out is per-path, not per-invocation.
  const auto both = run(srclint() + " " + fx("ok/src/obs/runtimeprof.cpp") +
                        " " + fx("bad/src/obs/timing_bad.cpp"));
  EXPECT_EQ(both.exitCode, 1) << both.output;
  EXPECT_EQ(countOf(both.output, "[wall-clock]"), 2) << both.output;
  EXPECT_FALSE(has(both.output, "runtimeprof.cpp")) << both.output;
}

// manifest-stamp: the ".manifest.json" sidecar suffix is reserved for the
// shared stamping helper (src/obs/runstore.*); hand-rolled sidecar paths
// anywhere else in src/ or bench/ are findings.
TEST(SrclintRules, ManifestStampAllowlistedWriterIsClean) {
  const auto r = run(srclint() + " " + fx("ok/src/obs/runstore.cpp"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_EQ(countOf(r.output, "[manifest-stamp]"), 0) << r.output;
}

TEST(SrclintRules, ManifestStampCarveOutDoesNotLeak) {
  // A src/obs neighbor of runstore.cpp: both literal sidecar paths flagged.
  const auto obs = run(srclint() + " " + fx("bad/src/obs/manifest_bad.cpp"));
  EXPECT_EQ(obs.exitCode, 1) << obs.output;
  EXPECT_EQ(countOf(obs.output, "[manifest-stamp]"), 2) << obs.output;
  // Running the allowlisted writer alongside changes nothing: the
  // carve-out is per-path, not per-invocation.
  const auto both = run(srclint() + " " + fx("ok/src/obs/runstore.cpp") +
                        " " + fx("bad/src/obs/manifest_bad.cpp"));
  EXPECT_EQ(both.exitCode, 1) << both.output;
  EXPECT_EQ(countOf(both.output, "[manifest-stamp]"), 2) << both.output;
  EXPECT_FALSE(has(both.output, "runstore.cpp")) << both.output;
}

TEST(SrclintRules, Pr3TernaryCoAwaitReproIsFlagged) {
  const auto r =
      run(srclint() + " " + fx("bad/src/fssim/pr3_ternary_bad.cpp"));
  EXPECT_EQ(r.exitCode, 1) << r.output;
  // Both branches of the conditional carry a co_await.
  EXPECT_EQ(countOf(r.output, "[ternary-co-await]"), 2) << r.output;
}

TEST(SrclintRules, Pr3TernaryCorrectedVersionPasses) {
  const auto r = run(srclint() + " " + fx("ok/src/fssim/pr3_ternary_ok.cpp"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST(SrclintRules, CoroutineLifetimePositives) {
  const auto r = run(srclint() + " " + fx("bad/src/fssim/coro_bad.cpp"));
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_TRUE(has(r.output, "[ternary-co-await]")) << r.output;  // range-for
  EXPECT_TRUE(has(r.output, "[coro-lambda-capture]")) << r.output;
  EXPECT_TRUE(has(r.output, "[coro-spawn-dangling]")) << r.output;
}

TEST(SrclintRules, CoroutineLifetimeNegatives) {
  const auto r = run(srclint() + " " + fx("ok/src/fssim/coro_ok.cpp"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST(SrclintRules, DeterminismPositives) {
  const auto r = run(srclint() + " " + fx("bad/src/obs/unordered_bad.cpp"));
  EXPECT_EQ(r.exitCode, 1) << r.output;
  // printf loop, float accumulation, and the begin()-drain.
  EXPECT_EQ(countOf(r.output, "[det-unordered-iteration]"), 3) << r.output;
}

TEST(SrclintRules, DeterminismNegatives) {
  const auto r = run(srclint() + " " + fx("ok/src/obs/unordered_ok.cpp"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST(SrclintRules, ShardSafetyPositives) {
  const auto r =
      run(srclint() + " " + fx("bad/src/fssim/shard_send_bad.cpp"));
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_EQ(countOf(r.output, "[shard-send-lookahead]"), 2) << r.output;
}

TEST(SrclintRules, ShardSafetyNegatives) {
  const auto r = run(srclint() + " " + fx("ok/src/fssim/shard_send_ok.cpp"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST(SrclintRules, ShardGlobalReadResolvesAcrossFiles) {
  const auto r = run(srclint() + " " + fx("bad/src/obs/globals_decl.cpp") +
                     " " + fx("bad/src/simcore/reader_bad.cpp"));
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_TRUE(has(r.output, "[shard-global-read]")) << r.output;
  EXPECT_TRUE(has(r.output, "globals_decl.cpp")) << r.output;  // decl site
}

TEST(SrclintRules, IncludeHygienePositivesAndNegatives) {
  const auto bad = run(srclint() + " " + fx("bad/src/fssim/header_bad.hpp"));
  EXPECT_EQ(bad.exitCode, 1) << bad.output;
  EXPECT_EQ(countOf(bad.output, "[include-hygiene]"), 3) << bad.output;
  const auto ok = run(srclint() + " " + fx("ok/src/fssim/header_ok.hpp"));
  EXPECT_EQ(ok.exitCode, 0) << ok.output;
}

// ---------------------------------------------------------------------------
// Suppression semantics.
// ---------------------------------------------------------------------------

TEST(SrclintAllow, BareAllowAndUnknownRuleAreFindings) {
  const auto r = run(srclint() + " " + fx("bad/src/fssim/allow_bad.cpp"));
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_TRUE(has(r.output, "[allow-needs-justification]")) << r.output;
  EXPECT_TRUE(has(r.output, "[allow-unknown-rule]")) << r.output;
  // Neither malformed allow suppresses the underlying finding.
  EXPECT_EQ(countOf(r.output, "[wall-clock]"), 2) << r.output;
}

TEST(SrclintAllow, JustifiedKnownAllowSuppresses) {
  const auto r = run(srclint() + " " + fx("ok/src/fssim/allow_ok.cpp"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

// ---------------------------------------------------------------------------
// Whole-tree fixture sweeps: the ok tree is clean, the bad tree is not.
// ---------------------------------------------------------------------------

TEST(SrclintTree, OkTreeIsClean) {
  const auto r = run(srclint() + " " + fx("ok"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_TRUE(has(r.output, "clean")) << r.output;
}

TEST(SrclintTree, BadTreeFailsWithCounts) {
  const auto r = run(srclint() + " --counts " + fx("bad"));
  EXPECT_EQ(r.exitCode, 1) << r.output;
  // The markdown count table lists every rule and a non-zero total.
  EXPECT_TRUE(has(r.output, "| rule | family | findings |")) << r.output;
  EXPECT_TRUE(has(r.output, "| `ternary-co-await` | coroutine-lifetime |"))
      << r.output;
  EXPECT_TRUE(has(r.output, "| **total** |")) << r.output;
  EXPECT_FALSE(has(r.output, "| **total** | | **0** |")) << r.output;
}

// ---------------------------------------------------------------------------
// CLI surface: --list-rules, --explain, usage.
// ---------------------------------------------------------------------------

TEST(SrclintCli, ListRulesNamesEveryFamily) {
  const auto r = run(srclint() + " --list-rules");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  for (const char* rule :
       {"ternary-co-await", "coro-lambda-capture", "coro-spawn-dangling",
        "det-unordered-iteration", "shard-send-lookahead",
        "shard-global-read", "static-mutable", "wall-clock",
        "manifest-stamp", "allow-unknown-rule", "baseline-stale"})
    EXPECT_TRUE(has(r.output, rule)) << rule << "\n" << r.output;
}

TEST(SrclintCli, ExplainKnownAndUnknownRule) {
  const auto known = run(srclint() + " --explain ternary-co-await");
  EXPECT_EQ(known.exitCode, 0) << known.output;
  EXPECT_TRUE(has(known.output, "GCC")) << known.output;
  const auto unknown = run(srclint() + " --explain no-such-rule");
  EXPECT_EQ(unknown.exitCode, 2) << unknown.output;
  const auto noArgs = run(srclint());
  EXPECT_EQ(noArgs.exitCode, 2) << noArgs.output;
}

// ---------------------------------------------------------------------------
// SARIF 2.1.0 shape.
// ---------------------------------------------------------------------------

TEST(SrclintSarif, ReportHasSarif210Shape) {
  const std::string sarifPath = tmpPath("srclint_shape.sarif");
  const auto r = run(srclint() + " --sarif " + sarifPath + " --root " +
                     fx("bad") + " " + fx("bad"));
  EXPECT_EQ(r.exitCode, 1) << r.output;

  std::ifstream in(sarifPath);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string parseError;
  const auto doc = json::parse(ss.str(), &parseError);
  ASSERT_TRUE(doc.has_value()) << parseError;

  EXPECT_EQ(doc->stringOr("version", ""), "2.1.0");
  EXPECT_TRUE(has(doc->stringOr("$schema", ""), "sarif-schema-2.1.0"));
  const auto* runs = doc->find("runs");
  ASSERT_TRUE(runs != nullptr && runs->isArray() && runs->array->size() == 1);
  const auto& runObj = runs->array->front();
  const auto* tool = runObj.find("tool");
  ASSERT_TRUE(tool != nullptr);
  const auto* driver = tool->find("driver");
  ASSERT_TRUE(driver != nullptr);
  EXPECT_EQ(driver->stringOr("name", ""), "srclint");
  const auto* rules = driver->find("rules");
  ASSERT_TRUE(rules != nullptr && rules->isArray());
  EXPECT_GE(rules->array->size(), 15u);
  bool sawTernary = false;
  for (const auto& rule : *rules->array) {
    EXPECT_FALSE(rule.stringOr("id", "").empty());
    ASSERT_TRUE(rule.find("shortDescription") != nullptr);
    if (rule.stringOr("id", "") == "ternary-co-await") sawTernary = true;
  }
  EXPECT_TRUE(sawTernary);

  const auto* results = runObj.find("results");
  ASSERT_TRUE(results != nullptr && results->isArray());
  ASSERT_FALSE(results->array->empty());
  for (const auto& res : *results->array) {
    EXPECT_FALSE(res.stringOr("ruleId", "").empty());
    EXPECT_EQ(res.stringOr("level", ""), "error");
    const auto* msg = res.find("message");
    ASSERT_TRUE(msg != nullptr);
    EXPECT_FALSE(msg->stringOr("text", "").empty());
    const auto* locs = res.find("locations");
    ASSERT_TRUE(locs != nullptr && locs->isArray() && !locs->array->empty());
    const auto* phys = locs->array->front().find("physicalLocation");
    ASSERT_TRUE(phys != nullptr);
    const auto* art = phys->find("artifactLocation");
    ASSERT_TRUE(art != nullptr);
    // --root makes artifact URIs repo-relative (no absolute paths in CI).
    const std::string uri = art->stringOr("uri", "");
    EXPECT_FALSE(uri.empty());
    EXPECT_NE(uri.front(), '/') << uri;
    const auto* region = phys->find("region");
    ASSERT_TRUE(region != nullptr);
    EXPECT_GE(region->numberOr("startLine", 0), 1.0);
    const auto* fps = res.find("partialFingerprints");
    ASSERT_TRUE(fps != nullptr);
    EXPECT_FALSE(fps->stringOr("srclintFingerprint/v1", "").empty());
  }
  std::remove(sarifPath.c_str());
}

// ---------------------------------------------------------------------------
// Baseline add / expire round trip.
// ---------------------------------------------------------------------------

TEST(SrclintBaseline, AddThenExpireRoundTrip) {
  const std::string basePath = tmpPath("srclint_roundtrip_baseline.json");
  // Add: capture every finding in the bad tree as the baseline.
  const auto writeRun = run(srclint() + " --root " + fx("bad") +
                            " --write-baseline " + basePath + " " + fx("bad"));
  EXPECT_EQ(writeRun.exitCode, 1) << writeRun.output;

  // With the baseline applied, the same tree is clean (exit 0).
  const auto cleanRun = run(srclint() + " --root " + fx("bad") +
                            " --baseline " + basePath + " " + fx("bad"));
  EXPECT_EQ(cleanRun.exitCode, 0) << cleanRun.output;
  EXPECT_TRUE(has(cleanRun.output, "clean")) << cleanRun.output;

  // Expire: against the (clean) ok tree every entry is stale, and stale
  // entries fail the run so the baseline cannot rot.
  const auto staleRun = run(srclint() + " --root " + fx("ok") +
                            " --baseline " + basePath + " " + fx("ok"));
  EXPECT_EQ(staleRun.exitCode, 1) << staleRun.output;
  EXPECT_TRUE(has(staleRun.output, "[baseline-stale]")) << staleRun.output;

  // A malformed baseline is a hard error, not a silent no-op.
  std::ofstream(basePath) << "{\"version\": \"bogus\"}";
  const auto badRun = run(srclint() + " --baseline " + basePath + " " +
                          fx("ok"));
  EXPECT_EQ(badRun.exitCode, 2) << badRun.output;
  std::remove(basePath.c_str());
}

}  // namespace
