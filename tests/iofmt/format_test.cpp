#include "iofmt/format.hpp"

#include <gtest/gtest.h>

namespace bgckpt::iofmt {
namespace {

FileSpec sampleSpec() {
  FileSpec spec;
  spec.step = 7;
  spec.part = 3;
  spec.ranksInFile = 64;
  spec.firstGlobalRank = 192;
  spec.fieldBytesPerRank = 4096;
  spec.simTime = 1.25;
  spec.iteration = 900;
  spec.application = "nekcem-mini";
  spec.fieldNames = {"Ex", "Ey", "Ez", "Hx", "Hy", "Hz"};
  return spec;
}

TEST(Format, LittleEndianPrimitivesRoundTrip) {
  std::vector<std::byte> buf(32, std::byte{0});
  putU32(buf, 0, 0xDEADBEEFu);
  putU64(buf, 8, 0x0123456789ABCDEFull);
  putF64(buf, 16, -1234.5678);
  EXPECT_EQ(getU32(buf, 0), 0xDEADBEEFu);
  EXPECT_EQ(getU64(buf, 8), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(getF64(buf, 16), -1234.5678);
  // Byte order is little-endian on disk regardless of host.
  EXPECT_EQ(buf[0], std::byte{0xEF});
  EXPECT_EQ(buf[3], std::byte{0xDE});
}

TEST(Format, Crc32KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE).
  const char* s = "123456789";
  std::vector<std::byte> data(9);
  for (int i = 0; i < 9; ++i) data[static_cast<size_t>(i)] =
      static_cast<std::byte>(s[i]);
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Format, MasterHeaderRoundTrip) {
  const FileSpec spec = sampleSpec();
  const auto bytes = encodeMasterHeader(spec);
  ASSERT_EQ(bytes.size(), kMasterHeaderBytes);
  const FileSpec back = decodeMasterHeader(bytes);
  EXPECT_EQ(back.step, spec.step);
  EXPECT_EQ(back.part, spec.part);
  EXPECT_EQ(back.ranksInFile, spec.ranksInFile);
  EXPECT_EQ(back.firstGlobalRank, spec.firstGlobalRank);
  EXPECT_EQ(back.fieldBytesPerRank, spec.fieldBytesPerRank);
  EXPECT_DOUBLE_EQ(back.simTime, spec.simTime);
  EXPECT_EQ(back.iteration, spec.iteration);
  EXPECT_EQ(back.application, spec.application);
  EXPECT_EQ(back.fieldNames, spec.fieldNames);
}

TEST(Format, CorruptMagicRejected) {
  auto bytes = encodeMasterHeader(sampleSpec());
  bytes[0] = std::byte{0x00};
  EXPECT_THROW(decodeMasterHeader(bytes), std::runtime_error);
}

TEST(Format, BitFlipDetectedByHeaderCrc) {
  auto bytes = encodeMasterHeader(sampleSpec());
  bytes[300] ^= std::byte{0x01};  // flip a bit inside the field table
  EXPECT_THROW(decodeMasterHeader(bytes), std::runtime_error);
}

TEST(Format, TruncatedHeaderRejected) {
  auto bytes = encodeMasterHeader(sampleSpec());
  bytes.resize(100);
  EXPECT_THROW(decodeMasterHeader(bytes), std::runtime_error);
}

TEST(Format, TooManyFieldsRejected) {
  FileSpec spec = sampleSpec();
  spec.fieldNames.assign(kMaxFields + 1, "f");
  EXPECT_THROW(encodeMasterHeader(spec), std::invalid_argument);
  spec.fieldNames.clear();
  EXPECT_THROW(encodeMasterHeader(spec), std::invalid_argument);
}

TEST(Format, OffsetsAreFieldMajorAndContiguous) {
  const FileSpec spec = sampleSpec();
  EXPECT_EQ(spec.sectionOffset(0), kMasterHeaderBytes);
  EXPECT_EQ(spec.blockOffset(0, 0), kMasterHeaderBytes + kSectionHeaderBytes);
  EXPECT_EQ(spec.blockOffset(0, 1),
            spec.blockOffset(0, 0) + spec.fieldBytesPerRank);
  EXPECT_EQ(spec.sectionOffset(1),
            spec.blockOffset(0, 63) + spec.fieldBytesPerRank);
  EXPECT_EQ(spec.fileBytes(),
            kMasterHeaderBytes +
                6 * (kSectionHeaderBytes + 64 * spec.fieldBytesPerRank));
}

TEST(Format, SectionHeaderRoundTrip) {
  const FileSpec spec = sampleSpec();
  const auto bytes = encodeSectionHeader(spec, 2, 0xAABBCCDDu);
  ASSERT_EQ(bytes.size(), kSectionHeaderBytes);
  const SectionInfo info = decodeSectionHeader(bytes);
  EXPECT_EQ(info.name, "Ez");
  EXPECT_EQ(info.dataBytes, 64u * 4096u);
  EXPECT_EQ(info.crc, 0xAABBCCDDu);
}

}  // namespace
}  // namespace bgckpt::iofmt
