// Corruption sweep: flip bytes at representative positions throughout a
// checkpoint file; every corruption must be caught — header damage at
// decode time, data damage at verify time. Silent acceptance anywhere is a
// bug in a checkpointing format.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>

#include "iofmt/file_io.hpp"

namespace bgckpt::iofmt {
namespace {

class CorruptionSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("bgckpt_corrupt_" + std::to_string(::getpid()) + "_" +
              std::to_string(GetParam())))
                .string();
    FileSpec spec;
    spec.ranksInFile = 2;
    spec.fieldBytesPerRank = 4096;
    spec.fieldNames = {"Ex", "Hy"};
    CheckpointWriter writer(path_, spec);
    std::vector<std::byte> block(4096);
    for (std::size_t i = 0; i < block.size(); ++i)
      block[i] = static_cast<std::byte>(i * 7);
    for (int f = 0; f < 2; ++f)
      for (int r = 0; r < 2; ++r) writer.writeBlock(f, r, block);
    writer.close();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void flipByteAt(std::uint64_t offset) {
    int fd = ::open(path_.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    char b = 0;
    ASSERT_EQ(::pread(fd, &b, 1, static_cast<off_t>(offset)), 1);
    b = static_cast<char>(b ^ 0x40);
    ASSERT_EQ(::pwrite(fd, &b, 1, static_cast<off_t>(offset)), 1);
    ::close(fd);
  }

  std::string path_;
};

TEST_P(CorruptionSweep, EveryCorruptionIsDetected) {
  flipByteAt(GetParam());
  bool detected = false;
  try {
    CheckpointReader reader(path_);       // header CRC may fire here ...
    detected = !reader.verify();          // ... or data CRC here
  } catch (const std::runtime_error&) {
    detected = true;
  }
  EXPECT_TRUE(detected) << "silent corruption at offset " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Offsets, CorruptionSweep,
    ::testing::Values(
        0ull,       // magic
        9ull,       // version
        17ull,      // step field
        40ull,      // field-bytes field
        70ull,      // application name (covered by header CRC)
        300ull,     // offset table entry
        kMasterHeaderBytes + 4,                          // section 0 name
        kMasterHeaderBytes + kSectionHeaderBytes + 100,  // field 0 rank 0
        kMasterHeaderBytes + kSectionHeaderBytes + 4096 + 1,  // f0 rank 1
        kMasterHeaderBytes + kSectionHeaderBytes + 2 * 4096 +
            kSectionHeaderBytes + 7));                   // field 1 data

TEST(CorruptionMisc, SwappedBlocksDetected) {
  // Writing rank 0's data into rank 1's slot (and vice versa) changes the
  // per-block CRC sequence, so the section checksum catches transposition,
  // not just bit rot.
  const auto path = (std::filesystem::temp_directory_path() /
                     ("bgckpt_swap_" + std::to_string(::getpid())))
                        .string();
  FileSpec spec;
  spec.ranksInFile = 2;
  spec.fieldBytesPerRank = 512;
  spec.fieldNames = {"Ex"};
  std::vector<std::byte> a(512, std::byte{0xAA});
  std::vector<std::byte> b(512, std::byte{0xBB});
  {
    CheckpointWriter writer(path, spec);
    writer.writeBlock(0, 0, a);
    writer.writeBlock(0, 1, b);
    writer.close();
  }
  {
    // Swap the raw block contents on disk.
    int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    const auto off0 = static_cast<off_t>(spec.blockOffset(0, 0));
    const auto off1 = static_cast<off_t>(spec.blockOffset(0, 1));
    ASSERT_EQ(::pwrite(fd, b.data(), 512, off0), 512);
    ASSERT_EQ(::pwrite(fd, a.data(), 512, off1), 512);
    ::close(fd);
  }
  CheckpointReader reader(path);
  EXPECT_FALSE(reader.verify());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace bgckpt::iofmt
