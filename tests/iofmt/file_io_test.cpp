#include "iofmt/file_io.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <thread>

namespace bgckpt::iofmt {
namespace {

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bgckpt_iofmt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static FileSpec smallSpec(int ranks = 4, std::uint64_t blockBytes = 256) {
    FileSpec spec;
    spec.step = 1;
    spec.ranksInFile = static_cast<std::uint32_t>(ranks);
    spec.fieldBytesPerRank = blockBytes;
    spec.fieldNames = {"Ex", "Ey", "Hz"};
    return spec;
  }

  static std::vector<std::byte> pattern(int field, int rank,
                                        std::uint64_t bytes) {
    std::vector<std::byte> data(bytes);
    for (std::uint64_t i = 0; i < bytes; ++i)
      data[i] = static_cast<std::byte>((field * 31 + rank * 7 + i) & 0xFF);
    return data;
  }

  std::filesystem::path dir_;
};

TEST_F(FileIoTest, WriteReadRoundTrip) {
  const auto spec = smallSpec();
  {
    CheckpointWriter writer(path("ckpt"), spec);
    for (int f = 0; f < 3; ++f)
      for (int r = 0; r < 4; ++r)
        writer.writeBlock(f, r, pattern(f, r, spec.fieldBytesPerRank));
    writer.close();
  }
  CheckpointReader reader(path("ckpt"));
  EXPECT_EQ(reader.spec().fieldNames, spec.fieldNames);
  EXPECT_EQ(reader.spec().ranksInFile, 4u);
  for (int f = 0; f < 3; ++f)
    for (int r = 0; r < 4; ++r)
      EXPECT_EQ(reader.readBlock(f, r), pattern(f, r, spec.fieldBytesPerRank))
          << "field " << f << " rank " << r;
  EXPECT_TRUE(reader.verify());
}

TEST_F(FileIoTest, OutOfOrderAndConcurrentWritesVerify) {
  const auto spec = smallSpec(8, 64 * 1024);
  {
    CheckpointWriter writer(path("ckpt"), spec);
    // Blocks written from 4 threads in scrambled order.
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&writer, &spec, t] {
        for (int f = 2; f >= 0; --f)
          for (int r = t; r < 8; r += 4)
            writer.writeBlock(f, r, pattern(f, r, spec.fieldBytesPerRank));
      });
    }
    for (auto& th : threads) th.join();
    writer.close();
  }
  CheckpointReader reader(path("ckpt"));
  EXPECT_TRUE(reader.verify());
  EXPECT_EQ(reader.readBlock(1, 5), pattern(1, 5, spec.fieldBytesPerRank));
}

TEST_F(FileIoTest, MissingBlockFailsClose) {
  CheckpointWriter writer(path("ckpt"), smallSpec());
  writer.writeBlock(0, 0, pattern(0, 0, 256));
  EXPECT_THROW(writer.close(), std::runtime_error);
}

TEST_F(FileIoTest, WrongBlockSizeRejected) {
  CheckpointWriter writer(path("ckpt"), smallSpec());
  std::vector<std::byte> tooSmall(100);
  EXPECT_THROW(writer.writeBlock(0, 0, tooSmall), std::invalid_argument);
}

TEST_F(FileIoTest, CorruptedDataFailsVerify) {
  const auto spec = smallSpec();
  {
    CheckpointWriter writer(path("ckpt"), spec);
    for (int f = 0; f < 3; ++f)
      for (int r = 0; r < 4; ++r)
        writer.writeBlock(f, r, pattern(f, r, spec.fieldBytesPerRank));
    writer.close();
  }
  {
    // Flip one byte in the middle of field 1, rank 2.
    int fd = ::open(path("ckpt").c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    const auto off = static_cast<off_t>(spec.blockOffset(1, 2) + 17);
    char b = 0x5A;
    ASSERT_EQ(::pwrite(fd, &b, 1, off), 1);
    ::close(fd);
  }
  CheckpointReader reader(path("ckpt"));
  EXPECT_FALSE(reader.verify());
}

TEST_F(FileIoTest, ReadBlockOutOfRangeThrows) {
  const auto spec = smallSpec();
  {
    CheckpointWriter writer(path("ckpt"), spec);
    for (int f = 0; f < 3; ++f)
      for (int r = 0; r < 4; ++r)
        writer.writeBlock(f, r, pattern(f, r, spec.fieldBytesPerRank));
    writer.close();
  }
  CheckpointReader reader(path("ckpt"));
  EXPECT_THROW(reader.readBlock(3, 0), std::out_of_range);
  EXPECT_THROW(reader.readBlock(0, 4), std::out_of_range);
  EXPECT_THROW(reader.readBlock(-1, 0), std::out_of_range);
}

TEST_F(FileIoTest, OpenNonexistentThrows) {
  EXPECT_THROW(CheckpointReader(path("missing")), std::runtime_error);
}

TEST_F(FileIoTest, SectionInfoExposesNames) {
  const auto spec = smallSpec();
  {
    CheckpointWriter writer(path("ckpt"), spec);
    for (int f = 0; f < 3; ++f)
      for (int r = 0; r < 4; ++r)
        writer.writeBlock(f, r, pattern(f, r, spec.fieldBytesPerRank));
    writer.close();
  }
  CheckpointReader reader(path("ckpt"));
  EXPECT_EQ(reader.sectionInfo(0).name, "Ex");
  EXPECT_EQ(reader.sectionInfo(2).name, "Hz");
  EXPECT_EQ(reader.sectionInfo(1).dataBytes, 4u * 256u);
}

TEST_F(FileIoTest, CreatesParentDirectories) {
  const auto spec = smallSpec(1, 8);
  CheckpointWriter writer(path("a/b/c/ckpt"), spec);
  writer.writeBlock(0, 0, pattern(0, 0, 8));
  writer.writeBlock(1, 0, pattern(1, 0, 8));
  writer.writeBlock(2, 0, pattern(2, 0, 8));
  writer.close();
  EXPECT_TRUE(std::filesystem::exists(path("a/b/c/ckpt")));
}

}  // namespace
}  // namespace bgckpt::iofmt
