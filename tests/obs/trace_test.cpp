#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/task.hpp"

namespace bgckpt::obs {
namespace {

TraceEvent span(Layer layer, char phase, int tid, const char* name,
                double ts) {
  TraceEvent ev;
  ev.layer = layer;
  ev.phase = phase;
  ev.tid = tid;
  ev.name = name;
  ev.ts = ts;
  return ev;
}

TEST(NullSink, WantsNoLayers) {
  NullSink sink;
  EXPECT_EQ(sink.layerMask(), 0u);
}

TEST(Observability, MaskGatesEmission) {
  // Declared before obs: ChromeTraceSink writes the closing "]" to the
  // stream from its destructor, so the stream must outlive the sink.
  std::ostringstream chrome;
  Observability obs;
  EXPECT_FALSE(obs.tracing(Layer::kIo));  // no sinks at all

  obs.addSink(std::make_shared<NullSink>());
  EXPECT_FALSE(obs.tracing(Layer::kIo));  // NullSink adds nothing

  obs.addSink(std::make_shared<ChromeTraceSink>(chrome));
  for (int l = 0; l < kNumLayers; ++l)
    EXPECT_TRUE(obs.tracing(static_cast<Layer>(l)));
}

TEST(ChromeTraceSink, OutputIsValidJsonWithBalancedSpans) {
  std::ostringstream chrome;
  std::ostringstream jsonl;
  {
    ChromeTraceSink sink(chrome, &jsonl);
    sink.event(span(Layer::kIo, 'B', 3, "commit", 1.0));
    TraceEvent write = span(Layer::kIo, 'X', 3, "write", 1.25);
    write.dur = 0.5;
    write.hasBytes = true;
    write.bytes = 1 << 20;
    sink.event(write);
    sink.event(span(Layer::kIo, 'E', 3, "commit", 2.0));
    EXPECT_EQ(sink.eventsWritten(), 3u);
  }  // destructor closes the JSON array

  const auto doc = json::parse(chrome.str());
  ASSERT_TRUE(doc.has_value()) << chrome.str();
  ASSERT_TRUE(doc->isArray());

  int begins = 0, ends = 0, completes = 0, metadata = 0;
  for (const auto& ev : *doc->array) {
    const std::string ph = ev.stringOr("ph", "?");
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "X") ++completes;
    if (ph == "M") ++metadata;
  }
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(completes, 1);
  EXPECT_GE(metadata, 2);  // process_name + thread_name at minimum

  // The X event carries microseconds and its byte count in args.
  for (const auto& ev : *doc->array) {
    if (ev.stringOr("ph", "") != "X") continue;
    EXPECT_DOUBLE_EQ(ev.numberOr("ts", 0), 1.25e6);
    EXPECT_DOUBLE_EQ(ev.numberOr("dur", 0), 0.5e6);
    const json::Value* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_DOUBLE_EQ(args->numberOr("bytes", 0), double(1 << 20));
  }
}

TEST(ChromeTraceSink, JsonlKeepsSecondsOnePerLine) {
  std::ostringstream chrome;
  std::ostringstream jsonl;
  {
    ChromeTraceSink sink(chrome, &jsonl);
    TraceEvent write = span(Layer::kFilesystem, 'X', 7, "write", 0.125);
    write.dur = 0.25;
    write.hasBytes = true;
    write.bytes = 42;
    sink.event(write);
  }
  std::istringstream lines(jsonl.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    const auto ev = json::parse(line);
    ASSERT_TRUE(ev.has_value()) << line;
    EXPECT_EQ(ev->stringOr("cat", ""), "filesystem");
    EXPECT_DOUBLE_EQ(ev->numberOr("ts", 0), 0.125);  // seconds, not us
    EXPECT_DOUBLE_EQ(ev->numberOr("bytes", 0), 42.0);
    ++parsed;
  }
  EXPECT_EQ(parsed, 1);
}

TEST(ChromeTraceSink, CloseIsIdempotent) {
  std::ostringstream chrome;
  ChromeTraceSink sink(chrome);
  sink.event(span(Layer::kApp, 'X', 0, "checkpoint", 0));
  sink.close();
  sink.close();
  sink.event(span(Layer::kApp, 'X', 0, "late", 9));  // dropped after close
  EXPECT_EQ(sink.eventsWritten(), 1u);
  ASSERT_TRUE(json::parse(chrome.str()).has_value());
}

TEST(MetricsRegistry, JsonAndCsvExportRoundTrip) {
  MetricsRegistry reg;
  reg.counter("fs.creates").add(3);
  reg.gauge("net.util").set(0.5);
  auto& h = reg.histogram("fs.write.latency", 0.0, 1.0, 10);
  h.add(0.05);
  h.add(0.15);
  reg.recordPair(1, 2, 4096, 0.001);
  reg.recordPair(1, 2, 4096, 0.002);

  const auto doc = json::parse(reg.toJson());
  ASSERT_TRUE(doc.has_value()) << reg.toJson();
  EXPECT_DOUBLE_EQ(doc->find("counters")->numberOr("fs.creates", 0), 3.0);
  EXPECT_DOUBLE_EQ(doc->find("gauges")->numberOr("net.util", 0), 0.5);
  const json::Value* hist =
      doc->find("histograms")->find("fs.write.latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->numberOr("count", 0), 2.0);
  EXPECT_DOUBLE_EQ(doc->numberOr("mpiPairsTotal", 0), 1.0);
  const json::Value* top = doc->find("mpiTopPairs");
  ASSERT_TRUE(top && top->isArray());
  ASSERT_EQ(top->array->size(), 1u);
  EXPECT_DOUBLE_EQ((*top->array)[0].numberOr("bytes", 0), 8192.0);
  EXPECT_DOUBLE_EQ((*top->array)[0].numberOr("count", 0), 2.0);

  const std::string csv = reg.toCsv();
  EXPECT_NE(csv.find("counter,fs.creates,3"), std::string::npos);
  EXPECT_NE(csv.find("fs.write.latency"), std::string::npos);
  EXPECT_NE(csv.find("pair,1,2,"), std::string::npos);
}

TEST(Observability, FinalizeDerivesUtilization) {
  Observability obs;
  obs.metrics().gauge("net.ion.busy_seconds").add(5.0);
  obs.metrics().gauge("net.ion.links").set(2.0);
  obs.finalize(10.0);
  EXPECT_DOUBLE_EQ(obs.metrics().gauge("net.ion.utilization").value(), 0.25);
  EXPECT_DOUBLE_EQ(obs.metrics().gauge("sim.horizon_seconds").value(), 10.0);
}

TEST(Observability, FinalizeIsIdempotent) {
  struct CountingSink final : TraceSink {
    int finalizes = 0;
    void event(const TraceEvent&) override {}
    void finalize(sim::SimTime) override { ++finalizes; }
  };
  Observability obs;
  auto sink = std::make_shared<CountingSink>();
  obs.addSink(sink);
  obs.metrics().gauge("net.ion.busy_seconds").add(5.0);
  obs.metrics().gauge("net.ion.links").set(2.0);
  obs.finalize(10.0);
  EXPECT_EQ(sink->finalizes, 1);
  EXPECT_DOUBLE_EQ(obs.metrics().gauge("net.ion.utilization").value(), 0.25);
  // A second call (a larger horizon, say the destructor's re-run) must not
  // re-derive: utilization and the horizon gauge keep their first values.
  obs.finalize(20.0);
  EXPECT_DOUBLE_EQ(obs.metrics().gauge("net.ion.utilization").value(), 0.25);
  EXPECT_DOUBLE_EQ(obs.metrics().gauge("sim.horizon_seconds").value(), 10.0);
  EXPECT_EQ(sink->finalizes, 1);
}

TEST(Observability, SchedulerProbeCountsRootsAndEvents) {
  sim::Scheduler sched;
  Observability obs;
  obs.observeScheduler(sched);
  auto body = [&]() -> sim::Task<> { co_await sched.delay(1.0); };
  sched.spawn(body());
  sched.spawn(body());
  sched.run();
  obs.releaseScheduler();
  EXPECT_EQ(obs.metrics().counter("sched.roots").value(), 2u);
  EXPECT_GT(obs.metrics().counter("sched.events").value(), 0u);
}

}  // namespace
}  // namespace bgckpt::obs
