// Per-request causal tracing: null-context inertness, hop aggregation,
// sampling and tail retention, cascade completion through lineage links,
// the JSON export schema, and the full-stack rbIO fan-in guarantee.
#include "obs/optrace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "iolib/stack.hpp"
#include "iolib/strategies.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace bgckpt::obs {
namespace {

TEST(OpTrace, NullContextIsInert) {
  const OpTraceContext otc;  // default: untraced
  EXPECT_FALSE(otc.live());
  // Every member is a single branch on the null tracer; nothing may crash.
  otc.hop(Hop::kNetInject, 0.0, 1.0, 64);
  otc.link(OpTraceContext{});
  otc.complete(2.0);
  EXPECT_FALSE(mintOpTrace(nullptr, 3, "write", 0, 128, 0.0).live());
}

TEST(OpTrace, HopTotalsAggregatePerRequest) {
  OpTracer tracer(/*sampleEvery=*/1, /*tailN=*/4);
  const OpTraceContext otc = mintOpTrace(&tracer, 7, "write", 4096, 100, 1.0);
  ASSERT_TRUE(otc.live());
  // Two spans of the same hop inside one request merge into one hop total.
  otc.hop(Hop::kServerQueue, 1.0, 1.5);
  otc.hop(Hop::kServerQueue, 2.0, 2.25);
  otc.hop(Hop::kDdnCommit, 2.25, 2.5, 100);
  otc.complete(3.0);

  EXPECT_EQ(tracer.minted(), 1u);
  EXPECT_EQ(tracer.completed(), 1u);
  tracer.closeOut(3.0);
  const OpTracer::HopStat q = tracer.hopStat(Hop::kServerQueue);
  EXPECT_EQ(q.requests, 1u);
  EXPECT_DOUBLE_EQ(q.totalSeconds, 0.75);
  EXPECT_DOUBLE_EQ(q.p50, 0.75);
  EXPECT_DOUBLE_EQ(q.max, 0.75);
  EXPECT_EQ(tracer.hopStat("write", Hop::kDdnCommit).requests, 1u);
  EXPECT_EQ(tracer.hopStat("read", Hop::kDdnCommit).requests, 0u);
  EXPECT_DOUBLE_EQ(tracer.e2eQuantile(0.5), 2.0);
}

TEST(OpTrace, SamplingKeepsOneInNAndTheTail) {
  OpTracer tracer(/*sampleEvery=*/2, /*tailN=*/2);
  for (int i = 0; i < 6; ++i) {
    const OpTraceContext otc =
        mintOpTrace(&tracer, i, "write", 0, 10, 0.0);
    otc.complete(1.0 + i);  // id 5 is the slowest
  }
  tracer.closeOut(10.0);
  EXPECT_EQ(tracer.sampled(), 3u);  // ids 0, 2, 4

  const auto doc = json::parse(tracer.toJson());
  ASSERT_TRUE(doc.has_value());
  const json::Value* tail = doc->find("tail");
  ASSERT_NE(tail, nullptr);
  ASSERT_TRUE(tail->isArray());
  ASSERT_EQ(tail->array->size(), 2u);  // the 2 slowest, slowest first
  EXPECT_EQ((*tail->array)[0].numberOr("id", -1), 5.0);
  EXPECT_EQ((*tail->array)[1].numberOr("id", -1), 4.0);
  const json::Value* sampled = doc->find("sampled");
  ASSERT_NE(sampled, nullptr);
  EXPECT_EQ(sampled->array->size(), 3u);
}

TEST(OpTrace, CompleteCascadesToLinkedChildren) {
  OpTracer tracer(1, 4);
  const OpTraceContext parent =
      mintOpTrace(&tracer, 0, "commit", 0, 200, 0.0);
  const OpTraceContext childA = mintOpTrace(&tracer, 1, "handoff", 0, 100, 0.0);
  const OpTraceContext childB = mintOpTrace(&tracer, 2, "handoff", 100, 100, 0.0);
  parent.link(childA);
  parent.link(childB);
  // A context from another tracer must not link (cross-run contamination).
  OpTracer other(1, 4);
  parent.link(mintOpTrace(&other, 9, "handoff", 0, 1, 0.0));
  EXPECT_EQ(tracer.lineageEdges(), 2u);

  // The children's journeys end when the aggregate that swallowed them
  // commits; a child's own late complete is a harmless no-op.
  parent.complete(5.0);
  childA.complete(6.0);
  EXPECT_EQ(tracer.completed(), 3u);
  tracer.closeOut(5.0);
  ASSERT_EQ(tracer.fanIn().size(), 1u);
  EXPECT_DOUBLE_EQ(tracer.fanIn().median(), 2.0);
  EXPECT_DOUBLE_EQ(tracer.e2eQuantile(1.0), 5.0);
}

TEST(OpTrace, CloseOutFlagsUnfinishedRequests) {
  OpTracer tracer(1, 4);
  mintOpTrace(&tracer, 0, "write", 0, 10, 1.0);  // never completed
  tracer.closeOut(4.0);
  const auto doc = json::parse(tracer.toJson());
  ASSERT_TRUE(doc.has_value());
  const json::Value* reqs = doc->find("requests");
  ASSERT_NE(reqs, nullptr);
  EXPECT_EQ(reqs->numberOr("minted", 0), 1.0);
  EXPECT_EQ(reqs->numberOr("unfinished", 0), 1.0);
}

// ---- full-stack guarantees -----------------------------------------------

iolib::SimStackOptions quiet() {
  iolib::SimStackOptions opt;
  opt.noise = stor::NoiseModel::none();
  return opt;
}

iolib::CheckpointSpec smallSpec() {
  iolib::CheckpointSpec spec;
  spec.fieldBytesPerRank = 2048;
  spec.numFields = 2;
  spec.headerBytes = 512;
  return spec;
}

std::string runOpTraceExport(const iolib::StrategyConfig& cfg) {
  iolib::SimStack stack(256, quiet());
  OpTraceSink& sink = stack.obs.attachOpTrace(/*sampleEvery=*/1);
  iolib::runCheckpoint(stack, smallSpec(), cfg);
  stack.obs.finalize(stack.sched.now());
  EXPECT_TRUE(sink.finalized());
  return sink.tracer().toJson();
}

TEST(OpTraceStack, RbIoReproducesFanInLineage) {
  iolib::SimStack stack(256, quiet());
  stack.obs.attachOpTrace(1);
  iolib::runCheckpoint(stack, smallSpec(),
                       iolib::StrategyConfig::rbIo(64, true));
  stack.obs.finalize(stack.sched.now());
  const OpTracer& tracer = *stack.obs.opTracer();
  // 256 handoffs + 4 aggregate commits, every block linked to its writer.
  EXPECT_EQ(tracer.minted(), tracer.completed());
  EXPECT_EQ(tracer.lineageEdges(), 256u);
  ASSERT_EQ(tracer.fanIn().size(), 4u);
  EXPECT_DOUBLE_EQ(tracer.fanIn().median(), 64.0);
  // The commit path must have crossed the fs-server and the DDN.
  EXPECT_EQ(tracer.hopStat("commit", Hop::kServerQueue).requests, 4u);
  EXPECT_EQ(tracer.hopStat("commit", Hop::kDdnCommit).requests, 4u);
  EXPECT_EQ(tracer.hopStat("handoff", Hop::kHandoffSend).requests, 252u);
}

TEST(OpTraceStack, ExportIsByteIdenticalAcrossIdenticalRuns) {
  const std::string a = runOpTraceExport(iolib::StrategyConfig::rbIo(8, true));
  const std::string b = runOpTraceExport(iolib::StrategyConfig::rbIo(8, true));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\": \"bgckpt-optrace-1\""), std::string::npos);
  const auto doc = json::parse(a);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->stringOr("schema", ""), OpTracer::kSchemaVersion);
}

TEST(OpTraceStack, OnePfppTracesEveryFieldWrite) {
  const std::string a = runOpTraceExport(iolib::StrategyConfig::onePfpp());
  const auto doc = json::parse(a);
  ASSERT_TRUE(doc.has_value());
  const json::Value* reqs = doc->find("requests");
  ASSERT_NE(reqs, nullptr);
  // Per rank: create + (header + 2 fields) writes + close = 5 requests.
  EXPECT_EQ(reqs->numberOr("minted", 0), 256.0 * 5);
  EXPECT_EQ(reqs->numberOr("unfinished", -1), 0.0);
}

}  // namespace
}  // namespace bgckpt::obs
