// Sampled telemetry: rollup math, export edge cases, the zero-overhead
// dormant path, imbalance analytics, and the stack-level guarantees
// (byte-identical exports across identical runs; agreement with the
// blocked-time attribution partition).
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "iolib/stack.hpp"
#include "iolib/strategies.hpp"
#include "obs/obs.hpp"
#include "simcore/scheduler.hpp"

namespace bgckpt::obs {
namespace {

TEST(Telemetry, GaugeRollupIsTimeWeighted) {
  sim::Scheduler sched;
  Observability obs;
  Probe& p = obs.telemetry().probe("t.level", ProbeKind::kGauge);
  obs.attachTelemetry(sched, 1.0);
  sched.scheduleCall(0.5, [&] { p.set(4.0); });
  sched.scheduleCall(1.5, [&] { p.set(0.0); });
  sched.run();
  obs.finalize(2.0);

  const Probe::Series& s = p.seriesAt(0);
  ASSERT_GE(s.buckets.size(), 2u);
  // Bucket 0: level 0 for [0,0.5), 4 for [0.5,1) -> mean 2, extremes 0/4.
  EXPECT_DOUBLE_EQ(Probe::bucketMean(s, 0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(s.buckets[0].min, 0.0);
  EXPECT_DOUBLE_EQ(s.buckets[0].max, 4.0);
  EXPECT_DOUBLE_EQ(s.buckets[0].last, 4.0);
  // Bucket 1: 4 until 1.5, then 0 -> mean 2, closes at level 0.
  EXPECT_DOUBLE_EQ(Probe::bucketMean(s, 1, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(s.buckets[1].last, 0.0);
}

TEST(Telemetry, PartialFinalBucketUsesCoveredWidth) {
  sim::Scheduler sched;
  Observability obs;
  Probe& p = obs.telemetry().probe("t.level", ProbeKind::kGauge);
  obs.attachTelemetry(sched, 1.0);
  sched.scheduleCall(0.0, [&] { p.set(3.0); });
  sched.run();
  // Horizon 2.5: the last bucket covers only [2, 2.5) — its mean must still
  // be the level, not level * coverage.
  obs.finalize(2.5);
  const Probe::Series& s = p.seriesAt(0);
  ASSERT_GE(s.buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(Probe::bucketMean(s, 2, 1.0), 3.0);
  EXPECT_NEAR(s.buckets[2].integral, 1.5, 1e-12);
}

TEST(Telemetry, EmptyBucketsCarryTheLevel) {
  sim::Scheduler sched;
  Observability obs;
  Probe& p = obs.telemetry().probe("t.level", ProbeKind::kGauge);
  obs.attachTelemetry(sched, 1.0);
  sched.scheduleCall(0.0, [&] { p.set(5.0); });
  sched.run();
  obs.finalize(4.0);
  // No updates after t=0: every bucket must still report the flat level.
  const Probe::Series& s = p.seriesAt(0);
  ASSERT_GE(s.buckets.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b)
    EXPECT_DOUBLE_EQ(Probe::bucketMean(s, b, 1.0), 5.0) << "bucket " << b;
}

TEST(Telemetry, MidRunRegistrationStartsAtCurrentBucket) {
  sim::Scheduler sched;
  Observability obs;
  obs.attachTelemetry(sched, 1.0);
  Probe* late = nullptr;
  sched.scheduleCall(2.25, [&] {
    late = &obs.telemetry().probe("t.late", ProbeKind::kGauge);
    late->set(7.0);
  });
  sched.run();
  obs.finalize(3.0);
  ASSERT_NE(late, nullptr);
  EXPECT_TRUE(late->live());
  const Probe::Series& s = late->seriesAt(0);
  EXPECT_EQ(s.firstBucket, 2);
  EXPECT_DOUBLE_EQ(s.startT, 2.25);
  // Covered width inside bucket 2 is [2.25, 3.0) at level 7.
  EXPECT_DOUBLE_EQ(Probe::bucketMean(s, 0, 1.0), 7.0);
}

TEST(Telemetry, CounterExportsPerBucketDeltas) {
  sim::Scheduler sched;
  Observability obs;
  Probe& p = obs.telemetry().probe("t.count", ProbeKind::kCounter);
  TelemetrySink& sink = obs.attachTelemetry(sched, 1.0);
  sched.scheduleCall(0.5, [&] { p.add(3.0); });
  sched.scheduleCall(1.5, [&] { p.add(2.0); });
  sched.run();
  obs.finalize(2.0);
  EXPECT_DOUBLE_EQ(p.current(), 5.0);  // cumulative level
  const auto rows = sink.loadMatrix(p);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0][0], 3.0);
  EXPECT_DOUBLE_EQ(rows[0][1], 2.0);
}

TEST(Telemetry, DisabledProbeIsInert) {
  Observability obs;
  Probe& p = obs.telemetry().probe("t.idle", ProbeKind::kGauge, 4);
  p.set(2, 9.0);
  p.add(2, 1.0);
  // No telemetry attached: updates must not record anything (the hot path
  // is one branch on the cached live flag).
  EXPECT_FALSE(p.live());
  EXPECT_DOUBLE_EQ(p.current(2), 0.0);
  EXPECT_TRUE(p.seriesAt(2).buckets.empty());
}

TEST(Telemetry, ImbalanceMathMatchesHandComputation) {
  // Loads [6,2,1,1]: Jain = 100/(4*42), skew = 6/2.5, share = 0.6.
  const std::vector<double> totals = {6, 2, 1, 1};
  const std::vector<std::vector<double>> load = {
      {2, 2, 1, 1}, {1, 1, 0, 0}, {1, 0, 0, 0}, {0, 0, 0, 1}};
  const ImbalanceStats st = computeImbalance(totals, load, 0.5);
  EXPECT_EQ(st.instances, 4);
  EXPECT_DOUBLE_EQ(st.totalLoad, 10.0);
  EXPECT_NEAR(st.jain, 100.0 / 168.0, 1e-12);
  EXPECT_NEAR(st.maxOverMean, 2.4, 1e-12);
  EXPECT_NEAR(st.maxShare, 0.6, 1e-12);
  EXPECT_EQ(st.busiest, 0);
  // Idle instances in buckets where a peer was active: 1+2+3+2 = 8 windows
  // of 0.5 s.
  EXPECT_NEAR(st.idleWhileBusySeconds, 4.0, 1e-12);
}

TEST(Telemetry, PerfectBalanceIsJainOne) {
  const ImbalanceStats st =
      computeImbalance({3, 3, 3}, {{1, 2}, {2, 1}, {1, 2}}, 1.0);
  EXPECT_NEAR(st.jain, 1.0, 1e-12);
  EXPECT_NEAR(st.maxOverMean, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(st.idleWhileBusySeconds, 0.0);
}

// ---- full-stack guarantees -----------------------------------------------

iolib::SimStackOptions quiet() {
  iolib::SimStackOptions opt;
  opt.noise = stor::NoiseModel::none();
  return opt;
}

iolib::CheckpointSpec smallSpec() {
  iolib::CheckpointSpec spec;
  spec.fieldBytesPerRank = 2048;
  spec.numFields = 2;
  spec.headerBytes = 512;
  return spec;
}

std::string runExport(const iolib::StrategyConfig& cfg) {
  iolib::SimStack stack(256, quiet());
  TelemetrySink& sink = stack.obs.attachTelemetry(stack.sched, 0.001);
  iolib::runCheckpoint(stack, smallSpec(), cfg);
  stack.obs.finalize(stack.sched.now());
  return sink.toJson();
}

TEST(TelemetryStack, ExportIsByteIdenticalAcrossIdenticalRuns) {
  const std::string a = runExport(iolib::StrategyConfig::rbIo(8, true));
  const std::string b = runExport(iolib::StrategyConfig::rbIo(8, true));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\": \"bgckpt-telemetry-1\""), std::string::npos);
  EXPECT_NE(a.find("io.rbio.handoff_inflight"), std::string::npos);
  EXPECT_NE(a.find("stor.server.bytes"), std::string::npos);
}

TEST(TelemetryStack, SampledBusyMatchesAttributionPartition) {
  iolib::SimStack stack(256, quiet());
  auto attr = std::make_shared<AttributionSink>();
  stack.obs.addSink(attr);
  const double dt = 0.001;
  TelemetrySink& sink = stack.obs.attachTelemetry(stack.sched, dt);
  iolib::runCheckpoint(stack, smallSpec(), iolib::StrategyConfig::onePfpp());
  // finalize() also runs the SIM_CHECK'd cross-check internally; assert the
  // same contract explicitly so a tolerance regression fails visibly here.
  stack.obs.finalize(stack.sched.now());
  ASSERT_TRUE(sink.sawEnvelopes());
  const AttributionEngine::Report& report = attr->report();
  ASSERT_EQ(report.ranks.size(), 256u);
  const auto& busy = sink.rankBusySeconds();
  for (const auto& r : report.ranks) {
    ASSERT_LT(static_cast<std::size_t>(r.rank), busy.size());
    EXPECT_NEAR(busy[static_cast<std::size_t>(r.rank)], r.blocked(), dt)
        << "rank " << r.rank;
  }
}

}  // namespace
}  // namespace bgckpt::obs
