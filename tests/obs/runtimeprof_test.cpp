// RuntimeProfiler: accumulation correctness against ShardGroup::Stats,
// parallelFor region recording with point labels, the dormant/active
// zero-allocations-per-window guarantee, retention caps, and the JSON
// export round-tripped through the obs JSON parser.
#include "obs/runtimeprof.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/shard.hpp"

// Global allocation counter for the dormancy tests. Counting every
// operator new call in the test binary is safe: other tests only gain a
// relaxed atomic increment.
namespace {
std::atomic<std::uint64_t> gAllocCount{0};
}  // namespace

// GCC flags free() inside a replacement operator delete as a mismatched
// pair; replacing the global allocator like this is explicitly allowed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace bgckpt::obs {
namespace {

using sim::Duration;
using sim::Scheduler;
using sim::ShardGroup;

// A self-rescheduling actor per shard plus a deterministic cross-shard
// hop every `crossEvery` rounds — enough traffic to exercise drain, exec,
// reduce, and the mailbox path in every window.
struct RingState {
  ShardGroup* group = nullptr;
  int rounds = 0;
  int crossEvery = 0;
  Duration lookahead = 0.0;

  void step(unsigned shard, int round) {
    if (round >= rounds) return;
    if (crossEvery > 0 && group->shards() > 1 && round % crossEvery == 0) {
      const unsigned dst = (shard + 1) % group->shards();
      group->send(shard, dst, lookahead,
                  [this, dst, round] { step(dst, round + 1); });
      return;
    }
    group->shard(shard).scheduleCall(
        lookahead * 0.25, [this, shard, round] { step(shard, round + 1); });
  }
};

ShardGroup::Stats runRing(unsigned shards, unsigned threads, int rounds,
                          int crossEvery) {
  ShardGroup::Config cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.lookahead = 1.0;
  ShardGroup group(cfg);
  auto state = std::make_shared<RingState>(
      RingState{&group, rounds, crossEvery, cfg.lookahead});
  for (unsigned s = 0; s < shards; ++s)
    group.postSetup(s, [state, s](Scheduler& sched) {
      sched.scheduleCall(0.0, [state, s] { state->step(s, 0); });
    });
  return group.run();
}

std::string tmpPath(const char* name) {
  const char* t = std::getenv("TMPDIR");
  return std::string(t != nullptr ? t : "/tmp") + "/" + name;
}

TEST(RuntimeProfiler, ShardRunAccumulationMatchesStats) {
  RuntimeProfiler prof;
  prof.install();
  const ShardGroup::Stats stats = runRing(4, 1, 32, 4);
  prof.uninstall();

  ASSERT_EQ(prof.shardRuns().size(), 1u);
  const ShardRunProfile& run = *prof.shardRuns().front();
  EXPECT_EQ(run.shards, 4u);
  EXPECT_EQ(run.threads, 1u);  // cooperative
  EXPECT_EQ(run.windows, stats.windows);
  EXPECT_GT(run.wallNs, 0u);

  // Per-shard event counts come from exec phaseEnd items and must agree
  // with what the group itself counted.
  ASSERT_EQ(run.perShard.size(), 4u);
  ASSERT_EQ(run.stats.shardEvents.size(), 4u);
  std::uint64_t events = 0;
  std::uint64_t critical = 0;
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_EQ(run.perShard[s].events, run.stats.shardEvents[s]) << s;
    EXPECT_EQ(run.perShard[s].delivered, run.stats.shardDelivered[s]) << s;
    events += run.perShard[s].events;
    critical += run.perShard[s].criticalWindows;
  }
  EXPECT_EQ(events, stats.events);
  // Exactly one shard is critical per non-final window.
  EXPECT_EQ(critical, run.windows);
  EXPECT_EQ(run.stats.events, stats.events);
  EXPECT_EQ(run.stats.messages, stats.messages);

  // The simulated-time histograms populate: advance is recorded from the
  // second window on, slack once per shard per window.
  EXPECT_EQ(run.advanceHist.total(), run.windows - 1);
  EXPECT_GT(run.slackHist.total(), 0u);
  // Phase wall accumulates on the exec and drain sides.
  std::uint64_t drainNs = 0, execNs = 0;
  for (const auto& s : run.perShard) {
    drainNs += s.drainNs;
    execNs += s.execNs;
  }
  EXPECT_GT(drainNs, 0u);
  EXPECT_GT(execNs, 0u);
}

TEST(RuntimeProfiler, ThreadedRunRecordsBarrierAndChannels) {
  RuntimeProfiler prof;
  prof.install();
  const ShardGroup::Stats stats = runRing(4, 4, 32, 2);
  prof.uninstall();

  ASSERT_EQ(prof.shardRuns().size(), 1u);
  const ShardRunProfile& run = *prof.shardRuns().front();
  EXPECT_EQ(run.threads, 4u);
  ASSERT_EQ(run.perWorker.size(), 4u);
  std::uint64_t barrierNs = 0;
  for (const auto& w : run.perWorker) barrierNs += w.barrierNs;
  EXPECT_GT(barrierNs, 0u);
  // Cross-shard traffic shows up per (src, dst) channel.
  EXPECT_GT(stats.messages, 0u);
  ASSERT_FALSE(run.stats.channels.empty());
  for (const auto& ch : run.stats.channels) {
    EXPECT_EQ(ch.dst, (ch.src + 1) % 4) << "ring topology";
    EXPECT_GT(ch.ringHighWater, 0u);
  }
}

TEST(RuntimeProfiler, ParallelForRegionCarriesPointLabels) {
  RuntimeProfiler prof;
  prof.install();
  prof.setPointLabels({"pt-a", "pt-b", "pt-c"});
  std::vector<int> slots(3, 0);
  sim::parallelFor(3, 2, [&](std::size_t i) { slots[i] = 1; });
  prof.uninstall();

  EXPECT_EQ(std::accumulate(slots.begin(), slots.end(), 0), 3);
  ASSERT_EQ(prof.regions().size(), 1u);
  const ParallelRegionProfile& region = *prof.regions().front();
  EXPECT_EQ(region.jobs, 3u);
  EXPECT_EQ(region.threads, 2u);
  EXPECT_GT(region.wallNs, 0u);
  ASSERT_EQ(region.perJob.size(), 3u);
  EXPECT_EQ(region.perJob[0].label, "pt-a");
  EXPECT_EQ(region.perJob[1].label, "pt-b");
  EXPECT_EQ(region.perJob[2].label, "pt-c");
  for (const auto& job : region.perJob) EXPECT_LT(job.worker, 2u);
}

TEST(RuntimeProfiler, SerialParallelForStillRecordsRegion) {
  RuntimeProfiler prof;
  prof.install();
  sim::parallelFor(2, 1, [](std::size_t) {});
  prof.uninstall();
  ASSERT_EQ(prof.regions().size(), 1u);
  EXPECT_EQ(prof.regions().front()->threads, 1u);
  EXPECT_EQ(prof.regions().front()->jobs, 2u);
}

TEST(RuntimeProfiler, RetentionCapCountsDroppedRuns) {
  RuntimeProfiler::Config cfg;
  cfg.maxShardRuns = 1;
  RuntimeProfiler prof(cfg);
  prof.install();
  runRing(2, 1, 4, 0);
  runRing(2, 1, 4, 0);
  prof.uninstall();
  EXPECT_EQ(prof.shardRuns().size(), 1u);
  EXPECT_EQ(prof.droppedRuns(), 1u);
}

// The dormant-path contract: the per-window instrumentation must add zero
// heap allocations, observer installed or not. The tiered event queue
// itself allocates as simulated time advances (bucket churn — measurably
// ~1 allocation per 4 events on a plain Scheduler with no ShardGroup at
// all), so the assertion is differential: growing the window count must
// grow the allocation total by exactly the same amount with the hooks
// dormant as with the profiler active (spans off — accumulators are
// preallocated at beginShardRun), and the active-vs-dormant offset must
// be a per-run constant, not a per-window one.
std::uint64_t countedRun(int rounds) {
  const std::uint64_t before = gAllocCount.load(std::memory_order_relaxed);
  runRing(2, 1, rounds, 0);
  return gAllocCount.load(std::memory_order_relaxed) - before;
}

TEST(RuntimeProfiler, InstrumentationAddsZeroAllocationsPerWindow) {
  ASSERT_EQ(sim::runtimeObserver(), nullptr);
  countedRun(8);  // warm up malloc pools and lazy statics
  const std::uint64_t dormantSmall = countedRun(8);
  const std::uint64_t dormantLarge = countedRun(64);
  EXPECT_EQ(dormantSmall, countedRun(8)) << "dormant runs not deterministic";

  RuntimeProfiler prof;
  prof.install();
  countedRun(8);
  const std::uint64_t activeSmall = countedRun(8);
  const std::uint64_t activeLarge = countedRun(64);
  prof.uninstall();

  EXPECT_EQ(dormantLarge - dormantSmall, activeLarge - activeSmall)
      << "profiler allocations scale with window count";
  EXPECT_EQ(activeSmall - dormantSmall, activeLarge - dormantLarge)
      << "active profiler cost is not a per-run constant";
}

TEST(RuntimeProfiler, WriteJsonRoundTripsThroughParser) {
  RuntimeProfiler prof;
  prof.install();
  runRing(2, 2, 16, 4);
  prof.setPointLabels({"j0", "j1"});
  sim::parallelFor(2, 2, [](std::size_t) {});
  prof.recordPoint("j0", 1.25, 1000, 2);
  prof.uninstall();

  const std::string path = tmpPath("runtimeprof_roundtrip.json");
  ASSERT_TRUE(prof.writeJson(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string parseError;
  const auto doc = json::parse(ss.str(), &parseError);
  ASSERT_TRUE(doc.has_value()) << parseError;

  EXPECT_EQ(doc->stringOr("schema", ""), kRuntimeProfSchemaVersion);
  EXPECT_EQ(doc->stringOr("clock", ""), "steady");
  const auto* runs = doc->find("shard_runs");
  ASSERT_TRUE(runs != nullptr && runs->isArray());
  ASSERT_EQ(runs->array->size(), 1u);
  const auto& run = runs->array->front();
  EXPECT_EQ(run.numberOr("shards", 0), 2.0);
  EXPECT_GT(run.numberOr("wall_ns", 0), 0.0);
  const auto* perShard = run.find("per_shard");
  ASSERT_TRUE(perShard != nullptr && perShard->isArray());
  EXPECT_EQ(perShard->array->size(), 2u);
  const auto* phases = run.find("phase_ns");
  ASSERT_TRUE(phases != nullptr);
  EXPECT_GT(phases->numberOr("exec", -1.0), 0.0);
  const auto* regions = doc->find("parallel_regions");
  ASSERT_TRUE(regions != nullptr && regions->isArray());
  ASSERT_EQ(regions->array->size(), 1u);
  const auto* jobs = regions->array->front().find("jobs_detail");
  ASSERT_TRUE(jobs != nullptr && jobs->isArray());
  EXPECT_EQ(jobs->array->front().stringOr("label", ""), "j0");
  const auto* points = doc->find("points");
  ASSERT_TRUE(points != nullptr && points->isArray());
  ASSERT_EQ(points->array->size(), 1u);
  EXPECT_EQ(points->array->front().numberOr("wall_s", 0), 1.25);
  std::remove(path.c_str());
}

TEST(LogHistogram, BucketsPowerOfTwoRatios) {
  LogHistogram h;
  h.add(-1.0);  // bucket 0
  h.add(0.0);   // bucket 0
  h.add(1.0);   // bucket 32: [1, 2)
  h.add(1.9);   // bucket 32
  h.add(2.0);   // bucket 33
  h.add(0.5);   // bucket 31
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[32], 2u);
  EXPECT_EQ(h.counts[33], 1u);
  EXPECT_EQ(h.counts[31], 1u);
  EXPECT_EQ(h.total(), 6u);
}

}  // namespace
}  // namespace bgckpt::obs
