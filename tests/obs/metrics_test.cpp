// RFC 4180 CSV quoting for the obs exporters: plain fields pass through,
// fields containing separators or quotes are quoted with embedded quotes
// doubled, and the metrics CSV export applies this to metric names.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

namespace bgckpt::obs {
namespace {

TEST(CsvField, PlainFieldsPassThrough) {
  EXPECT_EQ(csvField(""), "");
  EXPECT_EQ(csvField("io.write.bytes"), "io.write.bytes");
  EXPECT_EQ(csvField("has space"), "has space");
}

TEST(CsvField, SeparatorsAndQuotesAreQuoted) {
  EXPECT_EQ(csvField("a,b"), "\"a,b\"");
  EXPECT_EQ(csvField("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csvField("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(csvField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csvField("\""), "\"\"\"\"");
}

TEST(CsvField, MetricsCsvQuotesNames) {
  MetricsRegistry reg;
  reg.counter("plain.name").add(1);
  reg.counter("odd,name").add(2);
  const std::string csv = reg.toCsv();
  EXPECT_NE(csv.find("counter,plain.name,1"), std::string::npos);
  EXPECT_NE(csv.find("counter,\"odd,name\",2"), std::string::npos);
}

}  // namespace
}  // namespace bgckpt::obs
