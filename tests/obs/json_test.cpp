#include "obs/json.hpp"

#include <gtest/gtest.h>

namespace bgckpt::obs::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_EQ(parse("null")->type, Value::Type::kNull);
  EXPECT_TRUE(parse("true")->boolean);
  EXPECT_FALSE(parse("false")->boolean);
  EXPECT_DOUBLE_EQ(parse("-3.5e2")->number, -350.0);
  EXPECT_EQ(parse("\"hi\"")->string, "hi");
}

TEST(Json, ParsesNestedStructure) {
  const auto v = parse(R"({"a":[1,2,{"b":"c"}],"d":{"e":null}})");
  ASSERT_TRUE(v && v->isObject());
  const Value* a = v->find("a");
  ASSERT_TRUE(a && a->isArray());
  ASSERT_EQ(a->array->size(), 3u);
  EXPECT_DOUBLE_EQ((*a->array)[1].number, 2.0);
  EXPECT_EQ((*a->array)[2].stringOr("b", ""), "c");
  const Value* d = v->find("d");
  ASSERT_TRUE(d && d->isObject());
  EXPECT_TRUE(d->find("e")->isNull());
}

TEST(Json, DecodesEscapes) {
  const auto v = parse(R"("line\nquote\"tab\tslash\\u:\u0041")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string, "line\nquote\"tab\tslash\\u:A");
}

TEST(Json, AccessorDefaults) {
  const auto v = parse(R"({"n":7,"s":"x"})");
  EXPECT_DOUBLE_EQ(v->numberOr("n", -1), 7.0);
  EXPECT_DOUBLE_EQ(v->numberOr("missing", -1), -1.0);
  EXPECT_EQ(v->stringOr("s", "d"), "x");
  EXPECT_EQ(v->stringOr("missing", "d"), "d");
  EXPECT_EQ(v->find("nope"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parse("{", &err).has_value());
  EXPECT_FALSE(parse("[1,", &err).has_value());
  EXPECT_FALSE(parse("{\"a\" 1}", &err).has_value());
  EXPECT_FALSE(parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(parse("1 2", &err).has_value());  // trailing garbage
  EXPECT_FALSE(parse("", &err).has_value());
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace bgckpt::obs::json
