#include "obs/json.hpp"

#include <gtest/gtest.h>

namespace bgckpt::obs::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_EQ(parse("null")->type, Value::Type::kNull);
  EXPECT_TRUE(parse("true")->boolean);
  EXPECT_FALSE(parse("false")->boolean);
  EXPECT_DOUBLE_EQ(parse("-3.5e2")->number, -350.0);
  EXPECT_EQ(parse("\"hi\"")->string, "hi");
}

TEST(Json, ParsesNestedStructure) {
  const auto v = parse(R"({"a":[1,2,{"b":"c"}],"d":{"e":null}})");
  ASSERT_TRUE(v && v->isObject());
  const Value* a = v->find("a");
  ASSERT_TRUE(a && a->isArray());
  ASSERT_EQ(a->array->size(), 3u);
  EXPECT_DOUBLE_EQ((*a->array)[1].number, 2.0);
  EXPECT_EQ((*a->array)[2].stringOr("b", ""), "c");
  const Value* d = v->find("d");
  ASSERT_TRUE(d && d->isObject());
  EXPECT_TRUE(d->find("e")->isNull());
}

TEST(Json, DecodesEscapes) {
  const auto v = parse(R"("line\nquote\"tab\tslash\\u:\u0041")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string, "line\nquote\"tab\tslash\\u:A");
}

TEST(Json, DecodesUnicodeEscapes) {
  // BMP code points: 2- and 3-byte UTF-8 (U+00E9 e-acute, U+20AC euro).
  EXPECT_EQ(parse(R"("\u00e9")")->string, "\xC3\xA9");
  EXPECT_EQ(parse(R"("\u20AC")")->string, "\xE2\x82\xAC");
  // Surrogate pairs -> astral plane, 4-byte UTF-8 (U+1F600 grinning face,
  // U+10348 GOTHIC LETTER HWAIR).
  EXPECT_EQ(parse(R"("\uD83D\uDE00")")->string, "\xF0\x9F\x98\x80");
  EXPECT_EQ(parse(R"("\ud800\udf48")")->string, "\xF0\x90\x8D\x88");
  // Pairs compose with surrounding text and other escapes.
  EXPECT_EQ(parse(R"("a\uD83D\uDE00b\n")")->string,
            "a\xF0\x9F\x98\x80"
            "b\n");
  // A lone high surrogate stays lenient: passes through 3-byte encoded.
  EXPECT_EQ(parse(R"("\uD83DA")")->string,
            "\xED\xA0\xBD"
            "A");
  // High surrogate followed by a \u escape that is NOT a low surrogate:
  // the rewind path must leave the second escape to decode on its own.
  EXPECT_EQ(parse(R"("\uD83D\u0041")")->string,
            "\xED\xA0\xBD"
            "A");
  // A truncated escape after a high surrogate must still be an error.
  EXPECT_FALSE(parse(R"("\uD83D\u12")").has_value());
}

TEST(Json, AccessorDefaults) {
  const auto v = parse(R"({"n":7,"s":"x"})");
  EXPECT_DOUBLE_EQ(v->numberOr("n", -1), 7.0);
  EXPECT_DOUBLE_EQ(v->numberOr("missing", -1), -1.0);
  EXPECT_EQ(v->stringOr("s", "d"), "x");
  EXPECT_EQ(v->stringOr("missing", "d"), "d");
  EXPECT_EQ(v->find("nope"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parse("{", &err).has_value());
  EXPECT_FALSE(parse("[1,", &err).has_value());
  EXPECT_FALSE(parse("{\"a\" 1}", &err).has_value());
  EXPECT_FALSE(parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(parse("1 2", &err).has_value());  // trailing garbage
  EXPECT_FALSE(parse("", &err).has_value());
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace bgckpt::obs::json
