// Blocked-time attribution, critical-path recorder and flight recorder.
#include "obs/attr.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "obs/critpath.hpp"
#include "obs/flightrec.hpp"
#include "obs/obs.hpp"
#include "simcore/resource.hpp"
#include "simcore/scheduler.hpp"

namespace bgckpt::obs {
namespace {

TraceEvent mk(Layer layer, char phase, int tid, const char* name, double t0,
              double dur = 0) {
  TraceEvent ev;
  ev.layer = layer;
  ev.phase = phase;
  ev.tid = tid;
  ev.name = name;
  ev.ts = t0;
  ev.dur = dur;
  return ev;
}

TEST(Attribution, ClassifiesBySpecificityDepth) {
  Phase phase;
  int depth;
  ASSERT_TRUE(AttributionEngine::classify(mk(Layer::kApp, 'B', 0, "checkpoint", 0),
                                          &phase, &depth));
  EXPECT_EQ(phase, Phase::kOther);
  EXPECT_EQ(depth, 1);
  ASSERT_TRUE(AttributionEngine::classify(mk(Layer::kIo, 'X', 0, "send", 0),
                                          &phase, &depth));
  EXPECT_EQ(phase, Phase::kHandoffSend);
  EXPECT_EQ(depth, 2);
  ASSERT_TRUE(AttributionEngine::classify(mk(Layer::kMpi, 'X', 0, "barrier", 0),
                                          &phase, &depth));
  EXPECT_EQ(phase, Phase::kBarrier);
  EXPECT_EQ(depth, 3);
  ASSERT_TRUE(AttributionEngine::classify(
      mk(Layer::kFilesystem, 'X', 0, "token_wait", 0), &phase, &depth));
  EXPECT_EQ(phase, Phase::kTokenWait);
  EXPECT_EQ(depth, 4);
  // No-signal events: p2p messages, the fs mirrors of kIo ops, counters.
  EXPECT_FALSE(AttributionEngine::classify(mk(Layer::kMpi, 'X', 0, "message", 0),
                                           &phase, &depth));
  EXPECT_FALSE(AttributionEngine::classify(
      mk(Layer::kFilesystem, 'X', 0, "write", 0), &phase, &depth));
  EXPECT_FALSE(AttributionEngine::classify(
      mk(Layer::kScheduler, 'X', 0, "root", 0), &phase, &depth));
}

TEST(Attribution, DeepestCoveringSpanWinsAndPartitionIsExact) {
  AttributionEngine eng;
  // Envelope [0,10]; a write [2,6]; a barrier [3,4] inside the write; a
  // token wait [3.2,3.5] inside the barrier window.
  eng.addEvent(mk(Layer::kApp, 'B', 0, "checkpoint", 0.0));
  eng.addEvent(mk(Layer::kIo, 'X', 0, "write", 2.0, 4.0));
  eng.addEvent(mk(Layer::kMpi, 'X', 0, "collective", 3.0, 1.0));
  eng.addEvent(mk(Layer::kFilesystem, 'X', 0, "token_wait", 3.2, 0.3));
  eng.addEvent(mk(Layer::kApp, 'E', 0, "checkpoint", 10.0));

  const auto r = eng.compute(12.0);
  ASSERT_EQ(r.ranks.size(), 1u);
  const auto& s = r.ranks[0].seconds;
  EXPECT_DOUBLE_EQ(s[static_cast<int>(Phase::kCompute)], 2.0);   // [10,12]
  EXPECT_DOUBLE_EQ(s[static_cast<int>(Phase::kOther)], 6.0);     // envelope gap
  EXPECT_DOUBLE_EQ(s[static_cast<int>(Phase::kWrite)], 3.0);     // 4 - barrier
  EXPECT_DOUBLE_EQ(s[static_cast<int>(Phase::kBarrier)], 0.7);   // 1 - token
  EXPECT_DOUBLE_EQ(s[static_cast<int>(Phase::kTokenWait)], 0.3);
  EXPECT_NEAR(r.partitionDefect(), 0.0, 1e-12);
  EXPECT_NEAR(r.ranks[0].blocked(), 10.0, 1e-12);
}

TEST(Attribution, OpenEnvelopeExtendsToHorizonAndClampsPastIt) {
  AttributionEngine eng;
  eng.addEvent(mk(Layer::kApp, 'B', 3, "checkpoint", 1.0));  // never closed
  eng.addEvent(mk(Layer::kIo, 'X', 3, "write", 2.0, 100.0)); // runs past end
  const auto r = eng.compute(5.0);
  ASSERT_EQ(r.ranks.size(), 1u);
  EXPECT_EQ(r.ranks[0].rank, 3);
  const auto& s = r.ranks[0].seconds;
  EXPECT_DOUBLE_EQ(s[static_cast<int>(Phase::kCompute)], 1.0);
  EXPECT_DOUBLE_EQ(s[static_cast<int>(Phase::kOther)], 1.0);
  EXPECT_DOUBLE_EQ(s[static_cast<int>(Phase::kWrite)], 3.0);
  EXPECT_NEAR(r.partitionDefect(), 0.0, 1e-12);
}

TEST(Attribution, SinkFinalizesOnceThroughObservability) {
  Observability obs;
  auto sink = std::make_shared<AttributionSink>();
  obs.addSink(sink);
  obs.begin(Layer::kApp, 0, "checkpoint", 0.0);
  obs.complete(Layer::kIo, 0, "write", 1.0, 3.0);
  obs.end(Layer::kApp, 0, "checkpoint", 4.0);
  obs.finalize(4.0);
  ASSERT_TRUE(sink->finalized());
  const auto& r = sink->report();
  EXPECT_DOUBLE_EQ(r.horizon, 4.0);
  EXPECT_DOUBLE_EQ(r.totals[static_cast<int>(Phase::kWrite)], 2.0);
  EXPECT_DOUBLE_EQ(r.blockedSeconds(), 4.0);
  // Re-finalizing at another horizon must not recompute.
  obs.finalize(8.0);
  EXPECT_DOUBLE_EQ(sink->report().horizon, 4.0);
}

TEST(Attribution, ReportExportsJsonAndCsv) {
  AttributionEngine eng;
  eng.addEvent(mk(Layer::kIo, 'X', 1, "send", 0.5, 0.25));
  const auto r = eng.compute(1.0);
  const std::string json = r.toJson();
  EXPECT_NE(json.find("\"horizon_seconds\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"handoff_send\": 0.25"), std::string::npos);
  const std::string csv = r.toCsv();
  EXPECT_NE(csv.find("rank,phase,seconds"), std::string::npos);
  EXPECT_NE(csv.find("1,handoff_send,0.25"), std::string::npos);
}

TEST(CritPath, WalksPredecessorChainAndBuckets) {
  CritPathRecorder rec;
  const auto none = sim::SchedulerHooks::kNoParent;
  // 0 --delay(1s)--> 1 --resource_grant "disk" (2s)--> 2 (terminal, t=3)
  // 3 is a dead-end sibling at t=2.
  rec.onEventScheduled(10, none, 0.0, sim::WakeKind::kSpawn, "spawn");
  rec.onEventScheduled(11, 10, 1.0, sim::WakeKind::kDelay, "a.cpp");
  rec.onEventScheduled(12, 11, 3.0, sim::WakeKind::kResourceGrant, "disk");
  rec.onEventScheduled(13, 10, 2.0, sim::WakeKind::kDelay, "b.cpp");
  const auto path = rec.computePath(3.0);
  EXPECT_EQ(path.eventsRecorded, 4u);
  EXPECT_EQ(path.steps, 3u);
  EXPECT_DOUBLE_EQ(path.pathSeconds, 3.0);
  const auto& grant =
      path.byKind[static_cast<std::size_t>(sim::WakeKind::kResourceGrant)];
  EXPECT_DOUBLE_EQ(grant.seconds, 2.0);
  EXPECT_EQ(grant.edges, 1u);
  ASSERT_FALSE(path.byLabel.empty());
  EXPECT_EQ(path.byLabel[0].label, "disk");  // heaviest label first
  ASSERT_EQ(path.tail.size(), 3u);
  EXPECT_EQ(path.tail.front().seq, 10u);  // chronological order
  EXPECT_EQ(path.tail.back().seq, 12u);
  const std::string json = path.toJson();
  EXPECT_NE(json.find("\"path_steps\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"resource_grant\""), std::string::npos);
}

TEST(CritPath, RecordsALiveSchedulerThroughAttachCritPath) {
  sim::Scheduler sched;
  Observability obs;
  auto& rec = obs.attachCritPath(sched);
  sim::Resource res(sched, 1, "disk");
  auto body = [](sim::Scheduler& s, sim::Resource& r) -> sim::Task<> {
    co_await r.acquire();
    co_await s.delay(1.0);
    r.release();
  };
  sched.spawn(body(sched, res));
  sched.spawn(body(sched, res));
  sched.run();
  obs.releaseScheduler();
  const auto path = rec.computePath(sched.now());
  EXPECT_DOUBLE_EQ(sched.now(), 2.0);
  // The chain that bounds the makespan: both delays plus the grant edge.
  EXPECT_DOUBLE_EQ(path.pathSeconds, 2.0);
  EXPECT_GT(path.steps, 1u);
  const auto& grant =
      path.byKind[static_cast<std::size_t>(sim::WakeKind::kResourceGrant)];
  EXPECT_EQ(grant.edges, 1u);
  bool sawDisk = false;
  for (const auto& b : path.byLabel) sawDisk |= b.label == "disk";
  EXPECT_TRUE(sawDisk);
}

TEST(FlightRecorder, KeepsOnlyTheMostRecentEventsPerLayer) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i)
    rec.event(mk(Layer::kIo, 'X', i, i < 6 ? "write" : "close",
                 static_cast<double>(i), 0.5));
  EXPECT_EQ(rec.eventsSeen(), 10u);
  std::ostringstream os;
  rec.dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("close"), std::string::npos);     // newest retained
  EXPECT_NE(out.find("tid=9"), std::string::npos);
  EXPECT_EQ(out.find("tid=5"), std::string::npos);     // oldest evicted
  EXPECT_NE(out.find("phase=close"), std::string::npos);  // attributed
}

TEST(FlightRecorder, RegistryDumpsLiveRecordersAndPrunesDead) {
  auto rec = FlightRecorder::create(8);
  rec->event(mk(Layer::kMpi, 'X', 2, "barrier", 1.0, 0.1));
  std::ostringstream os;
  EXPECT_GE(dumpFlightRecorders(os), 1u);
  EXPECT_NE(os.str().find("barrier"), std::string::npos);
  rec.reset();
  std::ostringstream empty;
  EXPECT_EQ(dumpFlightRecorders(empty), 0u);
}

}  // namespace
}  // namespace bgckpt::obs
