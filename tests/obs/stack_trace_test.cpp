// End-to-end observability: run real checkpoints on a full SimStack with a
// ChromeTraceSink attached and validate the trace the way a user would —
// parse the JSON, check span balance, and check that every instrumented
// layer and the expected ranks actually appear.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "iolib/stack.hpp"
#include "iolib/strategies.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace bgckpt {
namespace {

iolib::SimStackOptions quiet() {
  iolib::SimStackOptions opt;
  opt.noise = stor::NoiseModel::none();
  return opt;
}

iolib::CheckpointSpec smallSpec() {
  iolib::CheckpointSpec spec;
  spec.fieldBytesPerRank = 2048;
  spec.numFields = 2;
  spec.headerBytes = 512;
  return spec;
}

struct TraceSummary {
  std::set<std::string> layers;
  std::set<int> ioRanks;
  std::set<std::string> ioNames;
  int begins = 0;
  int ends = 0;
  int completes = 0;
  std::size_t events = 0;
};

TraceSummary runAndParse(const iolib::StrategyConfig& cfg, int np) {
  auto chrome = std::make_shared<std::ostringstream>();
  std::string text;
  {
    iolib::SimStack stack(np, quiet());
    auto sink = std::make_shared<obs::ChromeTraceSink>(*chrome);
    stack.obs.addSink(sink);
    iolib::runCheckpoint(stack, smallSpec(), cfg);
    sink->close();
    text = chrome->str();
  }

  const auto doc = obs::json::parse(text);
  EXPECT_TRUE(doc.has_value()) << "trace is not valid JSON";
  if (!doc) return {};
  EXPECT_TRUE(doc->isArray());

  TraceSummary s;
  s.events = doc->array->size();
  for (const auto& ev : *doc->array) {
    const std::string ph = ev.stringOr("ph", "?");
    if (ph == "M") continue;
    s.layers.insert(ev.stringOr("cat", "?"));
    if (ph == "B") ++s.begins;
    if (ph == "E") ++s.ends;
    if (ph == "X") ++s.completes;
    if (ev.stringOr("cat", "") == "io") {
      s.ioRanks.insert(static_cast<int>(ev.numberOr("tid", -1)));
      s.ioNames.insert(ev.stringOr("name", "?"));
    }
  }
  return s;
}

TEST(StackTrace, RbIoTraceCoversAllLayersRanksAndPhases) {
  const int np = 256;
  const auto s = runAndParse(iolib::StrategyConfig::rbIo(8, true), np);

  EXPECT_EQ(s.begins, s.ends) << "unbalanced B/E spans";
  EXPECT_GT(s.begins, 0);
  EXPECT_GT(s.completes, 0);

  for (const char* layer :
       {"scheduler", "network", "storage", "filesystem", "mpi", "io", "app"})
    EXPECT_TRUE(s.layers.count(layer)) << "layer missing: " << layer;

  // Every rank does I/O under rbIO: workers send, writers commit.
  ASSERT_EQ(static_cast<int>(s.ioRanks.size()), np);
  EXPECT_EQ(*s.ioRanks.begin(), 0);
  EXPECT_EQ(*s.ioRanks.rbegin(), np - 1);

  // Ops and rbIO phase spans share the io layer.
  for (const char* name :
       {"create", "write", "close", "send", "recv", "handoff", "aggregate",
        "commit"})
    EXPECT_TRUE(s.ioNames.count(name)) << "io event missing: " << name;
}

TEST(StackTrace, CoIoTraceBalancedWithCollectiveWrites) {
  const auto s = runAndParse(iolib::StrategyConfig::coIo(4), 256);
  EXPECT_EQ(s.begins, s.ends);
  EXPECT_TRUE(s.ioNames.count("write"));
  EXPECT_TRUE(s.ioNames.count("close"));
  EXPECT_TRUE(s.layers.count("mpi"));
  EXPECT_EQ(static_cast<int>(s.ioRanks.size()), 256);
}

TEST(StackTrace, ProfileMatchesEventStream) {
  // The legacy IoProfile is fed from the same kIo events the trace sees:
  // its op counts must equal the trace's X-event counts per op name.
  auto chrome = std::make_shared<std::ostringstream>();
  iolib::SimStack stack(256, quiet());
  auto sink = std::make_shared<obs::ChromeTraceSink>(*chrome);
  stack.obs.addSink(sink);
  iolib::runCheckpoint(stack, smallSpec(), iolib::StrategyConfig::onePfpp());
  sink->close();

  const auto doc = obs::json::parse(chrome->str());
  ASSERT_TRUE(doc.has_value());
  std::uint64_t creates = 0, writes = 0, closes = 0;
  for (const auto& ev : *doc->array) {
    if (ev.stringOr("cat", "") != "io" || ev.stringOr("ph", "") != "X")
      continue;
    const std::string name = ev.stringOr("name", "");
    if (name == "create") ++creates;
    if (name == "write") ++writes;
    if (name == "close") ++closes;
  }
  EXPECT_EQ(creates, stack.profile.opCount(prof::Op::kCreate));
  EXPECT_EQ(writes, stack.profile.opCount(prof::Op::kWrite));
  EXPECT_EQ(closes, stack.profile.opCount(prof::Op::kClose));
  EXPECT_EQ(creates, 256u);  // one file per rank under 1PFPP
}

TEST(StackTrace, UntracedStackStillFillsProfileAndMetrics) {
  iolib::SimStack stack(256, quiet());
  iolib::runCheckpoint(stack, smallSpec(), iolib::StrategyConfig::onePfpp());
  // No ChromeTraceSink attached: the IoProfileSink alone must keep the
  // legacy profile working, and layer metrics accumulate regardless.
  EXPECT_EQ(stack.profile.opCount(prof::Op::kCreate), 256u);
  EXPECT_GT(stack.obs.metrics().counter("fs.token.acquires").value(), 0u);
  EXPECT_GT(stack.obs.metrics().counter("stor.requests").value(), 0u);
  EXPECT_GT(stack.obs.metrics().counter("sched.events").value(), 0u);
}

}  // namespace
}  // namespace bgckpt
