// Unit coverage for the content-addressed run ledger (obs/runstore):
// canonicalization and hash stability, the key derivation that drives
// sweep's cache hits, put/load round trips, and the integrity checks that
// make corrupt entries read as cache misses instead of poisoning
// `--campaign` roll-ups.
#include "obs/runstore.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace obs = bgckpt::obs;
namespace json = bgckpt::obs::json;
namespace fs = std::filesystem;

namespace {

json::Value parse(const std::string& text) {
  std::string err;
  const auto v = json::parse(text, &err);
  EXPECT_TRUE(v) << err << " in: " << text;
  return v ? *v : json::Value{};
}

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("runstore_test_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

obs::LedgerEntry makeEntry(const std::string& gitRev = "rev-a") {
  obs::LedgerEntry e;
  e.config = parse(R"({"bench":"eq7","args":["--np","256"],"rep":1})");
  e.configHash = obs::hex16(obs::fnv1a64(obs::canonicalJson(e.config)));
  e.gitRev = gitRev;
  e.schemas = obs::artifactSchemasFingerprint();
  e.key = obs::ledgerKey(e.config, e.gitRev, e.schemas);
  e.perf = parse(R"({"total":{"events":42,"wall_seconds":0.5}})");
  e.exitCode = 0;
  e.wallSeconds = 0.75;
  return e;
}

std::string readFile(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void writeFile(const fs::path& p, const std::string& text) {
  std::ofstream out(p);
  out << text;
}

// ---------------------------------------------------------------------------
// Canonicalization + hashing: the identity layer under the cache.
// ---------------------------------------------------------------------------

TEST(RunStoreHash, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64 vectors.
  EXPECT_EQ(obs::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(obs::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(obs::fnv1a64("foobar"), 0x85944171f73967e8ull);
  EXPECT_EQ(obs::hex16(0xcbf29ce484222325ull), "cbf29ce484222325");
  EXPECT_EQ(obs::hex16(0x1ull), "0000000000000001");
}

TEST(RunStoreHash, CanonicalJsonSortsKeysRecursively) {
  const auto a = parse(R"({"b":1,"a":{"y":2,"x":3}})");
  const auto b = parse(R"({ "a" : { "x" : 3, "y" : 2 }, "b" : 1 })");
  EXPECT_EQ(obs::canonicalJson(a), R"({"a":{"x":3,"y":2},"b":1})");
  EXPECT_EQ(obs::canonicalJson(a), obs::canonicalJson(b));
}

TEST(RunStoreHash, CanonicalJsonNumbersIntegralVsReal) {
  const auto v = parse(R"({"i":256,"neg":-4,"r":0.25})");
  EXPECT_EQ(obs::canonicalJson(v), R"({"i":256,"neg":-4,"r":0.25})");
}

TEST(RunStoreHash, LedgerKeyStableAcrossKeyOrdering) {
  const auto a = parse(R"({"bench":"eq7","args":["--np","256"],"rep":1})");
  const auto b = parse(R"({"rep":1,"args":["--np","256"],"bench":"eq7"})");
  EXPECT_EQ(obs::ledgerKey(a, "rev", "s"), obs::ledgerKey(b, "rev", "s"));
}

TEST(RunStoreHash, LedgerKeyChangesWithRevAndSchemas) {
  const auto cfg = parse(R"({"bench":"eq7","rep":1})");
  const std::string base = obs::ledgerKey(cfg, "rev-a", "s1");
  EXPECT_NE(base, obs::ledgerKey(cfg, "rev-b", "s1"));
  EXPECT_NE(base, obs::ledgerKey(cfg, "rev-a", "s2"));
  EXPECT_EQ(base, obs::ledgerKey(cfg, "rev-a", "s1"));
}

TEST(RunStoreHash, FingerprintEmbedsEveryArtifactSchema) {
  const std::string fp = obs::artifactSchemasFingerprint();
  EXPECT_NE(fp.find("bgckpt-manifest-2"), std::string::npos) << fp;
  EXPECT_NE(fp.find("bgckpt-ledger-1"), std::string::npos) << fp;
}

TEST(RunStoreHash, ManifestSchemaCompatReadsV1AndV2Only) {
  EXPECT_TRUE(obs::manifestSchemaSupported("bgckpt-manifest-2"));
  EXPECT_TRUE(obs::manifestSchemaSupported("bgckpt-manifest-1"));
  EXPECT_FALSE(obs::manifestSchemaSupported("bgckpt-manifest-99"));
  EXPECT_FALSE(obs::manifestSchemaSupported(""));
}

// ---------------------------------------------------------------------------
// Store round trip + cache-hit probe.
// ---------------------------------------------------------------------------

TEST(RunStoreIo, PutLoadRoundTrip) {
  TempDir tmp;
  const obs::RunStore store(tmp.path.string());
  const auto e = makeEntry();
  std::string err;
  ASSERT_TRUE(store.put(e, &err)) << err;
  obs::LedgerEntry back;
  ASSERT_TRUE(store.load(e.key, &back, &err)) << err;
  EXPECT_EQ(back.key, e.key);
  EXPECT_EQ(back.configHash, e.configHash);
  EXPECT_EQ(back.gitRev, "rev-a");
  EXPECT_EQ(back.exitCode, 0);
  EXPECT_NEAR(back.wallSeconds, 0.75, 1e-9);
  EXPECT_EQ(obs::canonicalJson(back.config), obs::canonicalJson(e.config));
  EXPECT_EQ(obs::canonicalJson(back.perf), obs::canonicalJson(e.perf));
  EXPECT_EQ(back.derivedKey(), back.key);
}

TEST(RunStoreIo, ContainsIsTheCacheProbe) {
  TempDir tmp;
  const obs::RunStore store(tmp.path.string());
  const auto e = makeEntry();
  EXPECT_FALSE(store.contains(e.key));  // miss before put
  std::string err;
  ASSERT_TRUE(store.put(e, &err)) << err;
  EXPECT_TRUE(store.contains(e.key));  // hit after
  // A different revision derives a different key: natural invalidation.
  const auto e2 = makeEntry("rev-b");
  EXPECT_NE(e2.key, e.key);
  EXPECT_FALSE(store.contains(e2.key));
}

TEST(RunStoreIo, LoadAllSortsByKeyAndSkipsNonEntries) {
  TempDir tmp;
  const obs::RunStore store(tmp.path.string());
  std::string err;
  const auto a = makeEntry("rev-a");
  const auto b = makeEntry("rev-b");
  ASSERT_TRUE(store.put(a, &err)) << err;
  ASSERT_TRUE(store.put(b, &err)) << err;
  fs::create_directories(tmp.path / "work");  // sweep scratch: not an entry
  writeFile(tmp.path / "work" / "x.json", "{}");
  std::vector<std::string> errors;
  const auto all = store.loadAll(&errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(all.size(), 2u);
  EXPECT_LT(all[0].key, all[1].key);
}

// ---------------------------------------------------------------------------
// Integrity: tampered or truncated entries must read as cache misses.
// ---------------------------------------------------------------------------

TEST(RunStoreIntegrity, TamperedPerfIsRejected) {
  TempDir tmp;
  const obs::RunStore store(tmp.path.string());
  const auto e = makeEntry();
  std::string err;
  ASSERT_TRUE(store.put(e, &err)) << err;
  const fs::path file = store.entryPath(e.key);
  std::string text = readFile(file);
  const auto pos = text.find("\"events\":42");
  ASSERT_NE(pos, std::string::npos) << text;
  text.replace(pos, 11, "\"events\":43");
  writeFile(file, text);
  obs::LedgerEntry back;
  EXPECT_FALSE(store.load(e.key, &back, &err));
  EXPECT_NE(err.find("payload"), std::string::npos) << err;
  EXPECT_FALSE(store.contains(e.key));  // tamper = miss = re-run
}

TEST(RunStoreIntegrity, TamperedConfigIsRejected) {
  TempDir tmp;
  const obs::RunStore store(tmp.path.string());
  const auto e = makeEntry();
  std::string err;
  ASSERT_TRUE(store.put(e, &err)) << err;
  std::string text = readFile(store.entryPath(e.key));
  const auto pos = text.find("rev-a");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "rev-X");  // key no longer matches derivedKey()
  writeFile(store.entryPath(e.key), text);
  obs::LedgerEntry back;
  EXPECT_FALSE(store.load(e.key, &back, &err));
  EXPECT_FALSE(store.contains(e.key));
}

TEST(RunStoreIntegrity, TruncatedEntryIsRejectedAndReportedByLoadAll) {
  TempDir tmp;
  const obs::RunStore store(tmp.path.string());
  const auto e = makeEntry();
  std::string err;
  ASSERT_TRUE(store.put(e, &err)) << err;
  const std::string text = readFile(store.entryPath(e.key));
  writeFile(store.entryPath(e.key), text.substr(0, text.size() / 2));
  EXPECT_FALSE(store.contains(e.key));
  std::vector<std::string> errors;
  const auto all = store.loadAll(&errors);
  EXPECT_TRUE(all.empty());
  ASSERT_EQ(errors.size(), 1u);
}

TEST(RunStoreIntegrity, MissingKeyLoadFails) {
  TempDir tmp;
  const obs::RunStore store(tmp.path.string());
  obs::LedgerEntry back;
  std::string err;
  EXPECT_FALSE(store.load("0123456789abcdef", &back, &err));
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// Manifest sidecars: the v2 stamping helper.
// ---------------------------------------------------------------------------

TEST(RunStoreManifest, WriteStampsProvenanceFields) {
  TempDir tmp;
  const std::string artifact = (tmp.path / "trace.jsonl").string();
  obs::ManifestInfo info;
  info.artifact = "trace";
  info.bench = "fig5_write_bandwidth";
  info.np = 256;
  info.stack = 1;
  info.flags = {"--trace"};
  info.args = {"--np", "256"};
  info.gitRev = "rev-a";
  info.configHash = "00000000deadbeef";
  ASSERT_TRUE(obs::writeArtifactManifest(artifact, info));
  const auto doc = parse(readFile(artifact + ".manifest.json"));
  EXPECT_EQ(doc.stringOr("schema_version", ""), "bgckpt-manifest-2");
  EXPECT_TRUE(obs::manifestSchemaSupported(doc.stringOr("schema_version", "")));
  EXPECT_EQ(doc.stringOr("artifact", ""), "trace");
  EXPECT_EQ(doc.stringOr("git_rev", ""), "rev-a");
  EXPECT_EQ(doc.stringOr("config_hash", ""), "00000000deadbeef");
  EXPECT_EQ(static_cast<int>(doc.numberOr("np", 0)), 256);
}

}  // namespace
