#include "storsim/fabric.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bgckpt::stor {
namespace {

using machine::Machine;
using machine::intrepidMachine;
using sim::MiB;
using sim::Scheduler;
using sim::Task;

constexpr sim::Bandwidth kRate = 125e6;  // effective GPFS server rate

TEST(StorageFabric, SingleWriteTakesServerPlusArrayTime) {
  Scheduler sched;
  Machine m = intrepidMachine(256);
  StorageFabric fab(sched, m, 1, NoiseModel::none());
  auto body = [](StorageFabric& f) -> Task<> {
    co_await f.write(0, 1, 4 * MiB, kRate);
  };
  sched.spawn(body(fab));
  sched.run();
  const double expected = m.io().serverRequestOverhead +
                          sim::transferTime(4 * MiB, kRate) +
                          sim::transferTime(4 * MiB, m.io().ddnWriteBandwidth);
  EXPECT_NEAR(sched.now(), expected, 1e-9);
  EXPECT_EQ(fab.bytesWritten(), 4 * MiB);
  EXPECT_EQ(fab.requestsServed(), 1u);
}

TEST(StorageFabric, RequestsOnOneServerSerialise) {
  Scheduler sched;
  Machine m = intrepidMachine(256);
  StorageFabric fab(sched, m, 1, NoiseModel::none());
  auto body = [](StorageFabric& f) -> Task<> {
    co_await f.write(5, 1, 4 * MiB, kRate);
  };
  for (int i = 0; i < 4; ++i) sched.spawn(body(fab));
  sched.run();
  const double one = sim::transferTime(4 * MiB, kRate);
  EXPECT_GE(sched.now(), 4 * one);
}

TEST(StorageFabric, DifferentServersDifferentArraysRunParallel) {
  Scheduler sched;
  Machine m = intrepidMachine(256);
  StorageFabric fab(sched, m, 1, NoiseModel::none());
  // Servers 0..15 map to the 16 distinct arrays.
  auto body = [](StorageFabric& f, int s) -> Task<> {
    co_await f.write(s, static_cast<StreamId>(s), 16 * MiB, kRate);
  };
  for (int s = 0; s < 16; ++s) sched.spawn(body(fab, s));
  sched.run();
  const double one = m.io().serverRequestOverhead +
                     sim::transferTime(16 * MiB, kRate) +
                     sim::transferTime(16 * MiB, m.io().ddnWriteBandwidth);
  EXPECT_NEAR(sched.now(), one, one * 0.01);
}

TEST(StorageFabric, ServersSharingArrayContendAtArrayStage) {
  Scheduler sched;
  Machine m = intrepidMachine(256);
  StorageFabric fab(sched, m, 1, NoiseModel::none());
  // Servers 0 and 16 share array 0 (128 servers mod 16 arrays).
  ASSERT_EQ(fab.arrayOfServer(0), fab.arrayOfServer(16));
  auto body = [](StorageFabric& f, int s) -> Task<> {
    co_await f.write(s, static_cast<StreamId>(s), 64 * MiB, kRate);
  };
  sched.spawn(body(fab, 0));
  sched.spawn(body(fab, 16));
  sched.run();
  // Server stages overlap, but the two array commits serialise.
  const double arrayCommit =
      sim::transferTime(64 * MiB, m.io().ddnWriteBandwidth);
  const double serverStage = m.io().serverRequestOverhead +
                             sim::transferTime(64 * MiB, kRate);
  EXPECT_GE(sched.now(), serverStage + 2 * arrayCommit - 1e-9);
}

TEST(StorageFabric, SeekPenaltyKicksInBeyondStreamKnee) {
  machine::IoConfig io;
  io.ddnStreamKnee = 72;  // small knee so 288 streams are deep in thrash
  io.ddnSeekPenalty = 0.9e-3;
  Machine m({4, 4, 4}, machine::NodeMode::kVn, machine::ComputeConfig{}, io);
  const int knee = io.ddnStreamKnee;
  const int requests = knee * 4;
  // Same request mix twice: once with every request on a distinct stream
  // (interleave factor >> knee), once all on a single stream. The array must
  // be the bottleneck stage for penalties to surface in the makespan, so
  // feed array 0 from all eight of its servers at a high server rate.
  auto runOnce = [&](bool distinctStreams) {
    Scheduler sched;
    StorageFabric fab(sched, m, 1, NoiseModel::none());
    auto body = [](StorageFabric& f, int server, StreamId id) -> Task<> {
      for (int i = 0; i < 36; ++i)
        co_await f.write(server, id + static_cast<StreamId>(i) * 1000, MiB,
                         4e9);
    };
    for (int s = 0; s < 8; ++s) {
      const int server = 16 * s;  // servers 0,16,...,112 all map to array 0
      EXPECT_EQ(fab.arrayOfServer(server), 0);
      sched.spawn(body(fab, server,
                       distinctStreams ? static_cast<StreamId>(s + 1) : 0));
    }
    sched.run();
    return sched.now();
  };
  // distinct: 8 servers x 36 distinct stream ids = 288 streams >> knee.
  // control: stream ids collapse onto 36 (< knee) shared ids.
  const double thrashed = runOnce(true);
  const double sequential = runOnce(false);
  EXPECT_GT(thrashed, sequential * 1.02);
  EXPECT_GT(thrashed - sequential,
            0.05 * m.io().ddnSeekPenalty * requests);  // penalties did land
}

TEST(StorageFabric, FewStreamsPayNoSeekPenalty) {
  Scheduler sched;
  Machine m = intrepidMachine(256);
  StorageFabric fab(sched, m, 1, NoiseModel::none());
  auto body = [](StorageFabric& f, StreamId id) -> Task<> {
    for (int i = 0; i < 4; ++i) co_await f.write(0, id, MiB, kRate);
  };
  for (int s = 0; s < 4; ++s) sched.spawn(body(fab, static_cast<StreamId>(s)));
  sched.run();
  const double expected =
      16 * (m.io().serverRequestOverhead + sim::transferTime(MiB, kRate) +
            sim::transferTime(MiB, m.io().ddnWriteBandwidth));
  // Serialised on one server+array pipeline; array overlaps with server of
  // the following request, so the total is below the full sum but at least
  // the server-stage sum, with zero seek penalties.
  const double serverSum =
      16 * (m.io().serverRequestOverhead + sim::transferTime(MiB, kRate));
  EXPECT_GE(sched.now(), serverSum - 1e-9);
  EXPECT_LE(sched.now(), expected + 1e-9);
}

TEST(StorageFabric, NoiseCreatesStragglers) {
  Scheduler sched;
  Machine m = intrepidMachine(256);
  NoiseModel noisy;
  noisy.slowProbability = 0.3;
  noisy.slowFactorMedian = 10.0;
  StorageFabric fab(sched, m, 7, noisy);
  auto body = [](StorageFabric& f, int server) -> Task<> {
    for (int i = 0; i < 50; ++i)
      co_await f.write(server, 1, MiB, kRate);
  };
  for (int s = 0; s < 8; ++s) sched.spawn(body(fab, s));
  sched.run();
  // With 30% of requests ~10x slower, max service time far exceeds min.
  EXPECT_GT(fab.serviceTimeStats().max(),
            4 * fab.serviceTimeStats().min());
}

TEST(StorageFabric, DeterministicAcrossRuns) {
  auto runOnce = [](std::uint64_t seed) {
    Scheduler sched;
    Machine m = intrepidMachine(256);
    StorageFabric fab(sched, m, seed, NoiseModel{});
    auto body = [](StorageFabric& f, int server) -> Task<> {
      for (int i = 0; i < 20; ++i)
        co_await f.write(server, static_cast<StreamId>(server), MiB, kRate);
    };
    for (int s = 0; s < 16; ++s) sched.spawn(body(fab, s));
    sched.run();
    return sched.now();
  };
  EXPECT_DOUBLE_EQ(runOnce(42), runOnce(42));
  EXPECT_NE(runOnce(42), runOnce(43));
}

}  // namespace
}  // namespace bgckpt::stor
