#include "fssim/token.hpp"

#include <gtest/gtest.h>

namespace bgckpt::fs {
namespace {

TEST(RangeTokenManager, FirstClientGetsWholeFileFree) {
  RangeTokenManager tm;
  auto r = tm.acquire(1, {0, 10});
  EXPECT_EQ(r.revocations, 0);
  EXPECT_FALSE(r.alreadyHeld);
  // Optimistic whole-file grant: client 1 now holds everything.
  EXPECT_TRUE(tm.holds(1, {0, 10}));
  EXPECT_TRUE(tm.holds(1, {1000, 2000}));
}

TEST(RangeTokenManager, ReacquireHeldRangeIsFree) {
  RangeTokenManager tm;
  tm.acquire(1, {0, 10});
  auto r = tm.acquire(1, {2, 5});
  EXPECT_TRUE(r.alreadyHeld);
  EXPECT_EQ(r.revocations, 0);
}

TEST(RangeTokenManager, ConflictRevokesAndCarves) {
  RangeTokenManager tm;
  tm.acquire(1, {0, 10});  // whole file to client 1
  auto r = tm.acquire(2, {5, 8});
  EXPECT_EQ(r.revocations, 1);  // carved out of client 1's holding
  EXPECT_TRUE(tm.holds(2, {5, 8}));
  EXPECT_FALSE(tm.holds(1, {5, 8}));
  // Client 1 keeps the remnants on both sides.
  EXPECT_TRUE(tm.holds(1, {0, 5}));
  EXPECT_TRUE(tm.holds(1, {8, 100}));
}

TEST(RangeTokenManager, NoRevocationForDisjointAfterCarve) {
  RangeTokenManager tm;
  tm.acquire(1, {0, 4});
  tm.acquire(2, {4, 8});  // one revocation: carve from 1's whole-file token
  auto r = tm.acquire(2, {6, 8});
  EXPECT_TRUE(r.alreadyHeld);
  EXPECT_EQ(tm.totalRevocations(), 1u);
}

TEST(RangeTokenManager, MultipleHoldersAllRevoked) {
  RangeTokenManager tm;
  tm.acquire(1, {0, 10});
  tm.acquire(2, {10, 20});
  tm.acquire(3, {20, 30});
  // Client 4 wants a range overlapping all three.
  auto r = tm.acquire(4, {5, 25});
  EXPECT_EQ(r.revocations, 3);
  EXPECT_TRUE(tm.holds(4, {5, 25}));
  EXPECT_TRUE(tm.holds(1, {0, 5}));
  EXPECT_TRUE(tm.holds(3, {25, 30}));
}

TEST(RangeTokenManager, AlignedDisjointWritersOnlyPayInitialCarves) {
  // ROMIO's aligned file domains: after each aggregator has carved its
  // domain once, steady-state writes are revocation-free.
  RangeTokenManager tm;
  constexpr int kAggregators = 16;
  for (int c = 0; c < kAggregators; ++c)
    tm.acquire(c, {static_cast<std::uint64_t>(c) * 100,
                   static_cast<std::uint64_t>(c + 1) * 100});
  const auto initial = tm.totalRevocations();
  for (int round = 0; round < 10; ++round)
    for (int c = 0; c < kAggregators; ++c) {
      auto r = tm.acquire(c, {static_cast<std::uint64_t>(c) * 100 +
                                  static_cast<std::uint64_t>(round) * 10,
                              static_cast<std::uint64_t>(c) * 100 +
                                  static_cast<std::uint64_t>(round) * 10 + 10});
      EXPECT_TRUE(r.alreadyHeld);
    }
  EXPECT_EQ(tm.totalRevocations(), initial);
}

TEST(RangeTokenManager, UnalignedSharedBoundaryPingPongs) {
  // Two clients alternately writing ranges that share a block: every
  // acquisition revokes the other's token (false sharing).
  RangeTokenManager tm;
  tm.acquire(1, {0, 5});
  tm.acquire(2, {4, 9});  // overlaps block 4
  std::uint64_t before = tm.totalRevocations();
  for (int i = 0; i < 5; ++i) {
    tm.acquire(1, {0, 5});
    tm.acquire(2, {4, 9});
  }
  EXPECT_EQ(tm.totalRevocations(), before + 10);  // one per re-acquire
}

TEST(RangeTokenManager, ReleaseClientDropsHoldings) {
  RangeTokenManager tm;
  tm.acquire(1, {0, 10});
  tm.acquire(2, {10, 20});
  tm.releaseClient(1);
  EXPECT_FALSE(tm.holds(1, {0, 10}));
  // Client 3 can now take client 1's old range without revocation.
  auto r = tm.acquire(3, {0, 10});
  EXPECT_EQ(r.revocations, 0);
}

TEST(RangeTokenManager, GapMeansNotHeld) {
  RangeTokenManager tm;
  tm.acquire(1, {0, 10});
  tm.acquire(2, {3, 6});
  tm.releaseClient(2);  // hole at [3,6)
  EXPECT_FALSE(tm.holds(1, {0, 10}));
  EXPECT_TRUE(tm.holds(1, {0, 3}));
  auto r = tm.acquire(1, {0, 10});
  EXPECT_EQ(r.revocations, 0);  // filling a hole revokes nobody
  EXPECT_TRUE(tm.holds(1, {0, 10}));
}

TEST(RangeTokenManager, AdjacentSameClientHoldingsMerge) {
  RangeTokenManager tm;
  tm.acquire(1, {0, 100});           // whole file
  tm.acquire(2, {10, 20});
  tm.acquire(1, {10, 15});
  tm.acquire(1, {15, 20});
  EXPECT_TRUE(tm.holds(1, {0, 100}));
  // Merging keeps the holding map compact.
  EXPECT_LE(tm.holdingCount(), 2u);
}

}  // namespace
}  // namespace bgckpt::fs
