#include "fssim/parallel_fs.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simcore/sync.hpp"

namespace bgckpt::fs {
namespace {

using machine::Machine;
using machine::intrepidMachine;
using sim::MiB;
using sim::Scheduler;
using sim::Task;

// A small Intrepid-like stack with noise disabled for exact assertions.
struct Stack {
  Scheduler sched;
  Machine mach = intrepidMachine(256);
  net::IonForwarding ion{sched, mach};
  stor::StorageFabric fabric;
  ParallelFsSim fs;

  explicit Stack(FsConfig cfg = gpfsConfig(), std::uint64_t seed = 1)
      : fabric(sched, mach, seed, stor::NoiseModel::none(),
               cfg.serverConcurrency),
        fs(sched, mach, ion, fabric, seed, cfg) {}
};

TEST(ParallelFs, CreateWriteCloseBasics) {
  Stack st;
  auto body = [](Stack& s) -> Task<> {
    auto fh = co_await s.fs.create(0, "out/ckpt0");
    co_await s.fs.write(0, fh, 0, 10 * MiB);
    co_await s.fs.close(0, fh);
  };
  st.sched.spawn(body(st));
  st.sched.run();
  EXPECT_EQ(st.sched.liveRoots(), 0u);
  EXPECT_TRUE(st.fs.image().exists("out/ckpt0"));
  EXPECT_EQ(st.fs.image().find("out/ckpt0")->size(), 10 * MiB);
  EXPECT_TRUE(st.fs.image().find("out/ckpt0")->coversExactly(10 * MiB));
  EXPECT_EQ(st.fs.createsIssued(), 1u);
}

TEST(ParallelFs, OpenNonexistentThrows) {
  Stack st;
  auto body = [](Stack& s) -> Task<> {
    co_await s.fs.open(0, "missing");
  };
  st.sched.spawn(body(st));
  EXPECT_THROW(st.sched.run(), std::runtime_error);
}

TEST(ParallelFs, SingleClientThroughputNearStreamBandwidth) {
  Stack st;
  const sim::Bytes total = 64 * MiB;
  auto body = [](Stack& s, sim::Bytes n) -> Task<> {
    auto fh = co_await s.fs.create(0, "f");
    co_await s.fs.write(0, fh, 0, n);
    co_await s.fs.close(0, fh);
  };
  st.sched.spawn(body(st, total));
  st.sched.run();
  const double bw = static_cast<double>(total) / st.sched.now();
  // One synchronous stream lands somewhat below the per-stream service rate
  // (uplink and per-request overheads add in), but within 2x of it.
  EXPECT_LT(bw, st.fs.config().writeStreamBandwidth);
  EXPECT_GT(bw, st.fs.config().writeStreamBandwidth / 2);
}

TEST(ParallelFs, ManyClientsAggregateTowardSystemCeiling) {
  Stack st;
  // 64 clients, distinct files, 16 MiB each.
  auto body = [](Stack& s, int rank) -> Task<> {
    auto fh = co_await s.fs.create(rank, "f" + std::to_string(rank));
    co_await s.fs.write(rank, fh, 0, 16 * MiB);
    co_await s.fs.close(rank, fh);
  };
  for (int r = 0; r < 64; ++r) st.sched.spawn(body(st, r));
  st.sched.run();
  const double bw = static_cast<double>(64 * 16 * MiB) / st.sched.now();
  const double oneStream = st.fs.config().writeStreamBandwidth;
  // 64 concurrent streams must beat one stream by a wide margin.
  EXPECT_GT(bw, 20 * oneStream);
}

TEST(ParallelFs, LoneWriterPaysNoRevocations) {
  Stack st;
  auto body = [](Stack& s) -> Task<> {
    auto fh = co_await s.fs.create(0, "f");
    for (int i = 0; i < 8; ++i)
      co_await s.fs.write(0, fh, static_cast<std::uint64_t>(i) * 4 * MiB,
                          4 * MiB);
    co_await s.fs.close(0, fh);
  };
  st.sched.spawn(body(st));
  st.sched.run();
  EXPECT_EQ(st.fs.totalRevocations(), 0u);
}

TEST(ParallelFs, AlignedSharedFileWritersPayFewRevocations) {
  Stack st;
  // 8 clients write disjoint block-aligned domains of one shared file.
  auto writer = [](Stack& s, const FileHandle& fh, int rank) -> Task<> {
    const std::uint64_t base = static_cast<std::uint64_t>(rank) * 16 * MiB;
    for (int i = 0; i < 4; ++i)
      co_await s.fs.write(rank, fh,
                          base + static_cast<std::uint64_t>(i) * 4 * MiB,
                          4 * MiB);
  };
  auto body = [](Stack& s, decltype(writer)& w) -> Task<> {
    auto fh = co_await s.fs.create(0, "shared");
    sim::WaitGroup wg(s.sched);
    struct Runner {
      static Task<> run(Stack& st2, decltype(writer)& w2, FileHandle fh2,
                        int rank, sim::WaitGroup& wg2) {
        co_await w2(st2, fh2, rank);
        wg2.done();
      }
    };
    for (int r = 0; r < 8; ++r) {
      wg.add();
      s.sched.spawn(Runner::run(s, w, fh, r, wg));
    }
    co_await wg.wait();
    co_await s.fs.close(0, fh);
  };
  st.sched.spawn(body(st, writer));
  st.sched.run();
  EXPECT_EQ(st.sched.liveRoots(), 0u);
  // At most one carve per client out of the optimistic whole-file token.
  EXPECT_LE(st.fs.totalRevocations(), 8u);
  EXPECT_TRUE(st.fs.image().find("shared")->coversExactly(8 * 16 * MiB));
}

TEST(ParallelFs, GpfsSlowerThanPvfsForSharedExtendingFile) {
  // Two clients alternately extending one file: GPFS pays size-token
  // bounces and token negotiations that PVFS does not.
  auto runOnce = [](FsConfig cfg) {
    Stack st(cfg);
    auto writer = [](Stack& s, int rank, int nWrites) -> Task<> {
      // Rank 0 creates; others join shortly after the create has landed.
      if (rank != 0) co_await s.sched.delay(5e-3);
      // Deliberately not a ternary: co_await inside a conditional
      // expression trips a GCC coroutine-temporary lifetime bug (the
      // awaited result is destroyed before the copy-out; ASan flags a
      // use-after-free on the handle). srclint's ternary-co-await rule
      // keeps the pattern out of the tree.
      FileHandle fh;
      if (rank == 0)
        fh = co_await s.fs.create(0, "f");
      else
        fh = co_await s.fs.open(rank, "f");
      for (int i = 0; i < nWrites; ++i) {
        const auto idx = static_cast<std::uint64_t>(i * 2 + rank);
        co_await s.fs.write(rank, fh, idx * MiB, MiB);
      }
      co_await s.fs.close(rank, fh);
    };
    st.sched.spawn(writer(st, 0, 32));
    st.sched.spawn(writer(st, 1, 32));
    st.sched.run();
    return st.sched.now();
  };
  // Compare with identical stream bandwidths so only locking differs.
  FsConfig gpfs = gpfsConfig();
  FsConfig pvfsLike = pvfsConfig();
  pvfsLike.writeStreamBandwidth = gpfs.writeStreamBandwidth;
  EXPECT_GT(runOnce(gpfs), runOnce(pvfsLike));
}

TEST(ParallelFs, DirectoryThrashMakesMassCreatesSuperSlow) {
  FsConfig cfg = gpfsConfig();
  cfg.dirThrashThreshold = 100;  // scaled-down cliff for a scaled-down test
  auto createMany = [&](int nFiles) {
    Stack st(cfg);
    auto body = [](Stack& s, int idx) -> Task<> {
      auto fh = co_await s.fs.create(idx, "dir/f" + std::to_string(idx));
      co_await s.fs.close(idx, fh);
    };
    for (int i = 0; i < nFiles; ++i) st.sched.spawn(body(st, i));
    st.sched.run();
    return st.sched.now();
  };
  const double below = createMany(100);   // below the cliff
  const double above = createMany(400);   // 300 creates pay thrash
  // 4x the files must cost far more than 4x the time.
  EXPECT_GT(above, 8 * below);
}

TEST(ParallelFs, ContentRecordedWhenPayloadGiven) {
  Stack st;
  auto body = [](Stack& s) -> Task<> {
    std::vector<std::byte> data(1024);
    for (size_t i = 0; i < data.size(); ++i)
      data[i] = static_cast<std::byte>(i & 0xff);
    auto fh = co_await s.fs.create(0, "f");
    co_await s.fs.write(0, fh, 0, data.size(), data);
    co_await s.fs.close(0, fh);
  };
  st.sched.spawn(body(st));
  st.sched.run();
  auto back = st.fs.image().find("f")->readBytes({0, 1024});
  for (size_t i = 0; i < back.size(); ++i)
    ASSERT_EQ(back[i], static_cast<std::byte>(i & 0xff));
}

TEST(ParallelFs, ReadCompletesAndTakesTime) {
  Stack st;
  auto body = [](Stack& s) -> Task<> {
    auto fh = co_await s.fs.create(0, "f");
    co_await s.fs.write(0, fh, 0, 8 * MiB);
    const double t0 = s.sched.now();
    co_await s.fs.read(0, fh, 0, 8 * MiB);
    EXPECT_GT(s.sched.now(), t0);
    co_await s.fs.close(0, fh);
  };
  st.sched.spawn(body(st));
  st.sched.run();
  EXPECT_EQ(st.sched.liveRoots(), 0u);
}

TEST(ParallelFs, WriteOnNullHandleThrows) {
  Stack st;
  auto body = [](Stack& s) -> Task<> {
    FileHandle fh;
    co_await s.fs.write(0, fh, 0, 1);
  };
  st.sched.spawn(body(st));
  EXPECT_THROW(st.sched.run(), std::runtime_error);
}

}  // namespace
}  // namespace bgckpt::fs
