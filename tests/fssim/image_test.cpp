#include "fssim/image.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace bgckpt::fs {
namespace {

std::vector<std::byte> bytesOf(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

TEST(FileImage, EmptyFile) {
  FileImage img;
  EXPECT_EQ(img.size(), 0u);
  EXPECT_EQ(img.coveredBytes(), 0u);
  EXPECT_TRUE(img.coversExactly(0));
  EXPECT_FALSE(img.coversExactly(1));
}

TEST(FileImage, SingleWrite) {
  FileImage img;
  img.recordWrite({0, 100});
  EXPECT_EQ(img.size(), 100u);
  EXPECT_EQ(img.coveredBytes(), 100u);
  EXPECT_TRUE(img.coversExactly(100));
  EXPECT_EQ(img.writeCount(), 1u);
}

TEST(FileImage, DisjointWritesLeaveGap) {
  FileImage img;
  img.recordWrite({0, 10});
  img.recordWrite({20, 10});
  EXPECT_FALSE(img.coversExactly(30));
  auto gaps = img.gaps(30);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (ByteRange{10, 10}));
}

TEST(FileImage, AdjacentWritesTile) {
  FileImage img;
  img.recordWrite({10, 10});
  img.recordWrite({0, 10});
  img.recordWrite({20, 5});
  EXPECT_TRUE(img.coversExactly(25));
  EXPECT_TRUE(img.gaps(25).empty());
}

TEST(FileImage, TrailingGapDetected) {
  FileImage img;
  img.recordWrite({0, 10});
  auto gaps = img.gaps(25);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (ByteRange{10, 15}));
}

TEST(FileImage, OverlapCountedOnceInCoverage) {
  FileImage img;
  img.recordWrite({0, 20});
  img.recordWrite({10, 20});
  EXPECT_EQ(img.coveredBytes(), 30u);
  EXPECT_EQ(img.bytesWritten(), 40u);  // raw bytes include the overlap
}

TEST(FileImage, ContentRoundTrip) {
  FileImage img;
  auto hello = bytesOf("hello");
  auto world = bytesOf("world");
  img.recordWrite({0, 5}, hello);
  img.recordWrite({5, 5}, world);
  auto back = img.readBytes({0, 10});
  EXPECT_EQ(std::memcmp(back.data(), "helloworld", 10), 0);
}

TEST(FileImage, OverwriteReplacesMiddle) {
  FileImage img;
  auto base = bytesOf("aaaaaaaaaa");
  auto mid = bytesOf("BBBB");
  img.recordWrite({0, 10}, base);
  img.recordWrite({3, 4}, mid);
  auto back = img.readBytes({0, 10});
  EXPECT_EQ(std::memcmp(back.data(), "aaaBBBBaaa", 10), 0);
  EXPECT_EQ(img.coveredBytes(), 10u);
}

TEST(FileImage, OverwriteSplitKeepsBothRemnants) {
  FileImage img;
  auto base = bytesOf("0123456789");
  img.recordWrite({0, 10}, base);
  img.recordWrite({4, 2});  // size-only blanks out '45'
  auto back = img.readBytes({0, 10});
  EXPECT_EQ(std::memcmp(back.data(), "0123", 4), 0);
  EXPECT_EQ(back[4], std::byte{0});
  EXPECT_EQ(back[5], std::byte{0});
  EXPECT_EQ(std::memcmp(back.data() + 6, "6789", 4), 0);
}

TEST(FileImage, ReadBeyondWrittenIsZero) {
  FileImage img;
  img.recordWrite({0, 4}, bytesOf("abcd"));
  auto back = img.readBytes({2, 6});
  EXPECT_EQ(std::memcmp(back.data(), "cd", 2), 0);
  for (size_t i = 2; i < 6; ++i) EXPECT_EQ(back[i], std::byte{0});
}

TEST(FileImage, ContentHashDiscriminates) {
  FileImage a, b, c;
  a.recordWrite({0, 5}, bytesOf("hello"));
  b.recordWrite({0, 5}, bytesOf("hello"));
  c.recordWrite({0, 5}, bytesOf("hellO"));
  EXPECT_EQ(a.contentHash(), b.contentHash());
  EXPECT_NE(a.contentHash(), c.contentHash());
}

TEST(FileImage, HashIndependentOfWriteOrder) {
  FileImage a, b;
  a.recordWrite({0, 5}, bytesOf("hello"));
  a.recordWrite({5, 5}, bytesOf("world"));
  b.recordWrite({5, 5}, bytesOf("world"));
  b.recordWrite({0, 5}, bytesOf("hello"));
  EXPECT_EQ(a.contentHash(), b.contentHash());
}

TEST(FileImage, ZeroLengthWriteIgnored) {
  FileImage img;
  img.recordWrite({5, 0});
  EXPECT_EQ(img.writeCount(), 0u);
  EXPECT_EQ(img.size(), 0u);
}

TEST(FsImage, TracksMultipleFiles) {
  FsImage fsi;
  fsi.file("a/x").recordWrite({0, 10});
  fsi.file("a/y").recordWrite({0, 20});
  EXPECT_EQ(fsi.fileCount(), 2u);
  EXPECT_TRUE(fsi.exists("a/x"));
  EXPECT_FALSE(fsi.exists("a/z"));
  EXPECT_NE(fsi.find("a/y"), nullptr);
  EXPECT_EQ(fsi.find("a/z"), nullptr);
  EXPECT_EQ(fsi.totalBytesWritten(), 30u);
}

}  // namespace
}  // namespace bgckpt::fs
