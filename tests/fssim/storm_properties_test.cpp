// Parameterised properties of the filesystem engine: the directory-storm
// nonlinearity, PVFS's flat creates, and read-path behaviour.
#include <gtest/gtest.h>

#include "fssim/parallel_fs.hpp"
#include "simcore/sync.hpp"

namespace bgckpt::fs {
namespace {

using machine::Machine;
using machine::intrepidMachine;
using sim::Scheduler;
using sim::Task;

struct Stack {
  Scheduler sched;
  Machine mach = intrepidMachine(256);
  net::IonForwarding ion{sched, mach};
  stor::StorageFabric fabric;
  ParallelFsSim fs;

  explicit Stack(FsConfig cfg)
      : fabric(sched, mach, 1, stor::NoiseModel::none(),
               cfg.serverConcurrency),
        fs(sched, mach, ion, fabric, 1, cfg) {}
};

double createStorm(FsConfig cfg, int files) {
  Stack st(cfg);
  auto body = [](Stack& s, int idx) -> Task<> {
    auto fh = co_await s.fs.create(idx % 256, "dir/f" + std::to_string(idx));
    co_await s.fs.close(idx % 256, fh);
  };
  for (int i = 0; i < files; ++i) st.sched.spawn(body(st, i));
  st.sched.run();
  return st.sched.now();
}

class StormSweep : public ::testing::TestWithParam<int> {};

TEST_P(StormSweep, GpfsPerCreateCostMatchesQueueModel) {
  // Below the cliff, cost = createCost * (1 + Q/scale) with Q draining
  // from n-1 to 0: mean cost ~ createCost * (1 + n/(2*scale)). The
  // measured per-create ratio between crowd sizes must match that closed
  // form.
  const int n = GetParam();
  FsConfig cfg = gpfsConfig();
  cfg.dirThrashThreshold = 1 << 30;  // isolate the linear term
  const double tSmall = createStorm(cfg, n);
  const double tLarge = createStorm(cfg, 4 * n);
  const double measuredRatio = (tLarge / (4 * n)) / (tSmall / n);
  const double modelRatio =
      (1.0 + 4.0 * n / (2.0 * cfg.createQueueScale)) /
      (1.0 + n / (2.0 * cfg.createQueueScale));
  EXPECT_NEAR(measuredRatio, modelRatio, 0.25 * modelRatio)
      << "n=" << n;
  EXPECT_GT(measuredRatio, 1.0);  // crowding always costs something
}

INSTANTIATE_TEST_SUITE_P(CrowdSizes, StormSweep,
                         ::testing::Values(100, 400, 1600));

TEST(StormProperties, PvfsCreatesScaleLinearly) {
  // PVFS's flat MDS: 4x the files take ~4x the time, per-create constant.
  FsConfig cfg = pvfsConfig();
  const double t1 = createStorm(cfg, 400);
  const double t4 = createStorm(cfg, 1600);
  EXPECT_NEAR(t4 / t1, 4.0, 0.5);
}

TEST(StormProperties, GpfsCliffDominatesPvfsAtScale) {
  FsConfig gpfs = gpfsConfig();
  gpfs.dirThrashThreshold = 500;
  const double gpfsTime = createStorm(gpfs, 2000);
  const double pvfsTime = createStorm(pvfsConfig(), 2000);
  EXPECT_GT(gpfsTime, 5 * pvfsTime);
}

TEST(ReadPath, ReadScalesWithSizeAndBeatsWritePerStream) {
  Stack st(gpfsConfig());
  double tWrite = 0, tRead8 = 0, tRead32 = 0;
  auto body = [](Stack& s, double& w, double& r8, double& r32) -> Task<> {
    auto fh = co_await s.fs.create(0, "f");
    double t0 = s.sched.now();
    co_await s.fs.write(0, fh, 0, 32 * sim::MiB);
    w = s.sched.now() - t0;
    t0 = s.sched.now();
    co_await s.fs.read(0, fh, 0, 8 * sim::MiB);
    r8 = s.sched.now() - t0;
    t0 = s.sched.now();
    co_await s.fs.read(0, fh, 0, 32 * sim::MiB);
    r32 = s.sched.now() - t0;
    co_await s.fs.close(0, fh);
  };
  st.sched.spawn(body(st, tWrite, tRead8, tRead32));
  st.sched.run();
  EXPECT_GT(tRead32, 3.5 * tRead8);
  EXPECT_LT(tRead32, 4.5 * tRead8);
  // Per-stream read service rate (45 MB/s) beats write (40 MB/s).
  EXPECT_LT(tRead32, tWrite);
}

TEST(ReadPath, ConcurrentReadersShareServers) {
  Stack st(gpfsConfig());
  sim::WaitGroup wg(st.sched);
  auto setup = [](Stack& s, sim::WaitGroup& w) -> Task<> {
    auto fh = co_await s.fs.create(0, "f");
    co_await s.fs.write(0, fh, 0, 64 * sim::MiB);
    co_await s.fs.close(0, fh);
    w.done();
  };
  wg.add();
  st.sched.spawn(setup(st, wg));
  st.sched.run();
  const double writeDone = st.sched.now();

  auto reader = [](Stack& s, int rank) -> Task<> {
    auto fh = co_await s.fs.open(rank, "f");
    co_await s.fs.read(rank, fh, 0, 64 * sim::MiB);
    co_await s.fs.close(rank, fh);
  };
  for (int r = 0; r < 8; ++r) st.sched.spawn(reader(st, r));
  st.sched.run();
  const double readElapsed = st.sched.now() - writeDone;
  // Eight concurrent readers of the same 64 MiB must take far less than
  // eight serial passes.
  const double oneSerial = 64.0 * sim::MiB / 45e6;
  EXPECT_LT(readElapsed, 4 * oneSerial);
}

}  // namespace
}  // namespace bgckpt::fs
