#include "iolib/restart.hpp"

#include <gtest/gtest.h>

#include "iolib/strategies.hpp"

namespace bgckpt::iolib {
namespace {

SimStackOptions quiet() {
  SimStackOptions opt;
  opt.noise = stor::NoiseModel::none();
  return opt;
}

CheckpointSpec smallSpec() {
  CheckpointSpec spec;
  spec.fieldBytesPerRank = 64 * 1024;
  spec.numFields = 6;
  spec.headerBytes = 4096;
  return spec;
}

TEST(Restart, RequiresExistingCheckpoint) {
  SimStack stack(256, quiet());
  EXPECT_THROW(runRestart(stack, smallSpec(), RestartConfig{}),
               std::runtime_error);
}

TEST(Restart, GroupSizeMustDivide) {
  SimStack stack(256, quiet());
  RestartConfig cfg;
  cfg.groupSize = 7;
  EXPECT_THROW(runRestart(stack, smallSpec(), cfg), std::invalid_argument);
}

class RestartModes : public ::testing::TestWithParam<RestartMode> {};

TEST_P(RestartModes, ReadsBackWhatRbIoWrote) {
  SimStack stack(256, quiet());
  const auto spec = smallSpec();
  runCheckpoint(stack, spec, StrategyConfig::rbIo(64, true));
  RestartConfig cfg;
  cfg.mode = GetParam();
  cfg.groupSize = 64;
  const auto r = runRestart(stack, spec, cfg);
  EXPECT_GT(r.makespan, 0);
  EXPECT_GT(r.bandwidth, 0);
  EXPECT_EQ(r.perRankTime.size(), 256u);
  for (double t : r.perRankTime) EXPECT_GT(t, 0);
}

INSTANTIATE_TEST_SUITE_P(Modes, RestartModes,
                         ::testing::Values(RestartMode::kDirect,
                                           RestartMode::kLeaderScatter),
                         [](const auto& paramInfo) {
                           return paramInfo.param == RestartMode::kDirect
                                      ? "Direct"
                                      : "LeaderScatter";
                         });

TEST(Restart, LeaderScatterIssuesFarFewerFsReads) {
  const auto spec = smallSpec();
  auto countReads = [&](RestartMode mode) {
    SimStack stack(256, quiet());
    runCheckpoint(stack, spec, StrategyConfig::rbIo(64, true));
    const auto before = stack.fabric.requestsServed();
    RestartConfig cfg;
    cfg.mode = mode;
    cfg.groupSize = 64;
    runRestart(stack, spec, cfg);
    return stack.fabric.requestsServed() - before;
  };
  const auto direct = countReads(RestartMode::kDirect);
  const auto scatter = countReads(RestartMode::kLeaderScatter);
  // 256 direct readers issue a request per block vs 4 sequential leaders.
  EXPECT_GT(direct, scatter);
}

TEST(Restart, WorkersFasterThanLeadersUnderScatter) {
  SimStack stack(256, quiet());
  const auto spec = smallSpec();
  runCheckpoint(stack, spec, StrategyConfig::rbIo(64, true));
  RestartConfig cfg;
  cfg.mode = RestartMode::kLeaderScatter;
  cfg.groupSize = 64;
  const auto r = runRestart(stack, spec, cfg);
  // Leaders do the disk reads; members wait for the scatter, which lands
  // shortly after the leader finishes (one NIC-serialised pass over the
  // group, a few percent of the read time).
  for (int leader = 0; leader < 256; leader += 64) {
    const double leaderTime =
        r.perRankTime[static_cast<std::size_t>(leader)];
    for (int m = 1; m < 64; ++m)
      EXPECT_LE(r.perRankTime[static_cast<std::size_t>(leader + m)],
                leaderTime * 1.2);
  }
}

TEST(Restart, OnePfppCheckpointsRestartWithGroupSizeOne) {
  SimStack stack(256, quiet());
  CheckpointSpec spec = smallSpec();
  spec.fieldBytesPerRank = 8 * 1024;
  runCheckpoint(stack, spec, StrategyConfig::onePfpp());
  RestartConfig cfg;
  cfg.mode = RestartMode::kDirect;
  cfg.groupSize = 1;
  const auto r = runRestart(stack, spec, cfg);
  EXPECT_GT(r.bandwidth, 0);
}

}  // namespace
}  // namespace bgckpt::iolib
