#include "iolib/layout.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bgckpt::iolib {
namespace {

CheckpointSpec spec(sim::Bytes fieldBytes = 1000, int fields = 3,
                    sim::Bytes header = 100) {
  CheckpointSpec s;
  s.fieldBytesPerRank = fieldBytes;
  s.numFields = fields;
  s.headerBytes = header;
  return s;
}

TEST(GroupFileLayout, OffsetsAreFieldMajor) {
  auto sp = spec();
  GroupFileLayout layout(sp, 4);
  EXPECT_EQ(layout.fieldOffset(0, 0), 100u);
  EXPECT_EQ(layout.fieldOffset(0, 1), 1100u);
  EXPECT_EQ(layout.fieldOffset(0, 3), 3100u);
  // Next field starts after all ranks of the previous one.
  EXPECT_EQ(layout.fieldOffset(1, 0), 4100u);
  EXPECT_EQ(layout.fieldSectionOffset(2), 8100u);
}

TEST(GroupFileLayout, ExtentsTileTheFileExactly) {
  auto sp = spec(768, 5, 64);
  GroupFileLayout layout(sp, 7);
  std::set<std::pair<std::uint64_t, std::uint64_t>> extents;
  extents.emplace(0, sp.headerBytes);  // header
  for (int f = 0; f < sp.numFields; ++f)
    for (int r = 0; r < 7; ++r)
      extents.emplace(layout.fieldOffset(f, r),
                      layout.fieldOffset(f, r) + sp.fieldBytesPerRank);
  // Adjacent extents must be contiguous and end at fileBytes().
  std::uint64_t cursor = 0;
  for (const auto& [lo, hi] : extents) {
    EXPECT_EQ(lo, cursor);
    cursor = hi;
  }
  EXPECT_EQ(cursor, layout.fileBytes());
}

TEST(GroupFileLayout, FileBytesFormula) {
  auto sp = spec(1000, 3, 100);
  GroupFileLayout layout(sp, 10);
  EXPECT_EQ(layout.fileBytes(), 100u + 3u * 10u * 1000u);
  EXPECT_EQ(layout.fieldSectionBytes(), 10u * 1000u);
}

TEST(CheckpointPath, EncodesStepAndPart) {
  auto sp = spec();
  sp.directory = "out";
  sp.step = 12;
  EXPECT_EQ(checkpointPath(sp, 3), "out/s12.part3");
}

TEST(PatternByte, DeterministicAndDiscriminating) {
  EXPECT_EQ(patternByte(1, 2, 3), patternByte(1, 2, 3));
  int distinct = 0;
  for (int i = 0; i < 100; ++i)
    if (patternByte(1, 0, static_cast<std::uint64_t>(i)) !=
        patternByte(2, 0, static_cast<std::uint64_t>(i)))
      ++distinct;
  EXPECT_GT(distinct, 90);
}

TEST(MakeRankPayload, SizeAndFieldSlices) {
  auto sp = spec(256, 4, 0);
  auto payload = makeRankPayload(sp, 9);
  ASSERT_EQ(payload.size(), 1024u);
  for (int f = 0; f < 4; ++f)
    for (std::uint64_t i = 0; i < 256; i += 13)
      EXPECT_EQ(payload[static_cast<size_t>(f) * 256 + i],
                patternByte(9, f, i));
}

TEST(MakeHeaderPayload, ContainsStepAndPart) {
  auto sp = spec();
  sp.step = 5;
  auto hdr = makeHeaderPayload(sp, 2);
  ASSERT_EQ(hdr.size(), sp.headerBytes);
  std::string text(reinterpret_cast<const char*>(hdr.data()),
                   std::min<size_t>(hdr.size(), 80));
  EXPECT_NE(text.find("step 5"), std::string::npos);
  EXPECT_NE(text.find("part 2"), std::string::npos);
}

TEST(CheckpointSpec, NekcemWeakScalingSizes) {
  auto sp = CheckpointSpec::nekcemWeakScaling(16384);
  // 2.4 MB per rank, ~39 GB at 16K ranks.
  EXPECT_EQ(sp.bytesPerRank(), 2'400'000u);
  const double total = 16384.0 * static_cast<double>(sp.bytesPerRank());
  EXPECT_NEAR(total, 39e9, 1e9);
  EXPECT_NEAR(65536.0 * static_cast<double>(sp.bytesPerRank()), 157e9, 2e9);
}

}  // namespace
}  // namespace bgckpt::iolib
