#include "iolib/campaign.hpp"

#include <gtest/gtest.h>

#include "iolib/layout.hpp"
#include "iolib/strategies.hpp"

namespace bgckpt::iolib {
namespace {

SimStackOptions quiet() {
  SimStackOptions opt;
  opt.noise = stor::NoiseModel::none();
  return opt;
}

CheckpointSpec smallSpec() {
  CheckpointSpec spec;
  spec.fieldBytesPerRank = 32 * 1024;
  spec.numFields = 6;
  spec.headerBytes = 4096;
  return spec;
}

TEST(Campaign, ValidatesConfig) {
  SimStack stack(256, quiet());
  CampaignConfig cfg;
  cfg.steps = 0;
  EXPECT_THROW(runCampaign(stack, smallSpec(), cfg), std::invalid_argument);
}

TEST(Campaign, BlockingStrategyPaysFullCheckpointTime) {
  SimStack stack(256, quiet());
  CampaignConfig cfg;
  cfg.steps = 20;
  cfg.checkpointEvery = 10;
  cfg.computeStepSeconds = 0.05;
  cfg.strategy = StrategyConfig::coIo(4);
  const auto r = runCampaign(stack, smallSpec(), cfg);
  EXPECT_EQ(r.checkpointsTaken, 2);
  EXPECT_DOUBLE_EQ(r.computeSeconds, 1.0);
  EXPECT_GT(r.totalSeconds, r.computeSeconds);
  EXPECT_GT(r.ioOverheadSeconds, 0);
  // Both generations landed on disk, fully covered.
  GroupFileLayout layout(smallSpec(), 64);
  for (int k = 0; k < 2; ++k) {
    CheckpointSpec s = smallSpec();
    s.step = k;
    for (int part = 0; part < 4; ++part) {
      const auto* img = stack.fsys.image().find(checkpointPath(s, part));
      ASSERT_NE(img, nullptr) << "gen " << k << " part " << part;
      EXPECT_TRUE(img->coversExactly(layout.fileBytes()));
    }
  }
}

TEST(Campaign, RbIoOverlapsWritesWithComputation) {
  // With a cadence long enough for writers to drain, rbIO's campaign time
  // is almost pure compute; coIO pays its checkpoint time in full.
  const auto spec = smallSpec();
  CampaignConfig base;
  base.steps = 20;
  base.checkpointEvery = 10;
  base.computeStepSeconds = 0.1;

  CampaignConfig rb = base;
  rb.strategy = StrategyConfig::rbIo(64, true);
  SimStack rbStack(256, quiet());
  const auto rbRun = runCampaign(rbStack, spec, rb);

  CampaignConfig co = base;
  co.strategy = StrategyConfig::coIo(4);
  SimStack coStack(256, quiet());
  const auto coRun = runCampaign(coStack, spec, co);

  EXPECT_LT(rbRun.ioOverheadSeconds, coRun.ioOverheadSeconds);
  // rbIO workers only pay microsecond handoffs; total ~ compute + the last
  // generation's writer drain at most.
  EXPECT_LT(rbRun.totalSeconds, rbRun.computeSeconds * 1.5);
  EXPECT_GT(rbRun.improvementOver(coRun), 0.9);  // rbIO not worse
}

TEST(Campaign, RbIoWritersKeepUpAtLongCadence) {
  // Checkpoint rarely: writers finish each generation well before the
  // next, so overhead is essentially one final drain.
  const auto spec = smallSpec();
  CampaignConfig cfg;
  cfg.steps = 30;
  cfg.checkpointEvery = 15;
  cfg.computeStepSeconds = 0.2;
  cfg.strategy = StrategyConfig::rbIo(64, true);
  SimStack stack(256, quiet());
  const auto r = runCampaign(stack, spec, cfg);
  EXPECT_EQ(r.checkpointsTaken, 2);
  EXPECT_LT(r.ioOverheadSeconds, 0.25 * r.computeSeconds);
}

TEST(Campaign, TightCadenceBacklogsTheWriters) {
  // Checkpoint far faster than writers can drain: the backlog surfaces as
  // real end-to-end overhead even for rbIO.
  const auto spec = smallSpec();
  auto runWithCadence = [&](int nc) {
    CampaignConfig cfg;
    cfg.steps = 8 * nc;  // 8 checkpoints either way
    cfg.checkpointEvery = nc;
    cfg.computeStepSeconds = 0.001;  // compute is nearly free
    cfg.strategy = StrategyConfig::rbIo(64, true);
    SimStack stack(256, quiet());
    return runCampaign(stack, spec, cfg);
  };
  const auto tight = runWithCadence(1);
  // All 8 generations must serialise at the writers.
  EXPECT_GT(tight.ioOverheadSeconds, 4 * tight.computeSeconds);
}

TEST(Campaign, MeasuredImprovementMatchesEq1Composition) {
  // The campaign's direct improvement and Eq. (1)'s composed prediction
  // from single-checkpoint ratios must agree to first order.
  const auto spec = smallSpec();
  const double tComp = 0.05;
  CampaignConfig base;
  base.steps = 20;
  base.checkpointEvery = 10;
  base.computeStepSeconds = tComp;

  CampaignConfig pfpp = base;
  pfpp.strategy = StrategyConfig::onePfpp();
  SimStack pfppStack(256, quiet());
  const auto pfppRun = runCampaign(pfppStack, spec, pfpp);

  CampaignConfig rb = base;
  rb.strategy = StrategyConfig::rbIo(64, true);
  SimStack rbStack(256, quiet());
  const auto rbRun = runCampaign(rbStack, spec, rb);

  const double measured = rbRun.improvementOver(pfppRun);
  // Composed: one checkpoint of each strategy.
  SimStack a(256, quiet());
  const auto onePfpp = runCheckpoint(a, spec, StrategyConfig::onePfpp());
  SimStack b(256, quiet());
  const auto oneRb = runCheckpoint(b, spec, StrategyConfig::rbIo(64, true));
  const double nc = 10;
  const double composed =
      (onePfpp.makespan / tComp + nc) /
      (oneRb.workerMakespan / tComp + nc);
  // NB: at this toy scale (256 ranks, no metadata storm) 1PFPP can
  // legitimately win — the crossover at scale is the whole point of
  // Figs. 5-7. What must hold is that the direct campaign measurement and
  // the Eq. (1) composition tell the same story.
  EXPECT_NEAR(measured, composed, 0.35 * composed);
}

}  // namespace
}  // namespace bgckpt::iolib
