#include "iolib/strategies.hpp"

#include <gtest/gtest.h>

#include "iolib/layout.hpp"

namespace bgckpt::iolib {
namespace {

SimStackOptions quietOptions() {
  SimStackOptions opt;
  opt.noise = stor::NoiseModel::none();
  return opt;
}

CheckpointSpec smallSpec(bool payload) {
  CheckpointSpec spec;
  spec.fieldBytesPerRank = 2048;
  spec.numFields = 4;
  spec.headerBytes = 512;
  spec.carryPayload = payload;
  return spec;
}

TEST(Strategies, OnePfppWritesOneFilePerRankWithFullCoverage) {
  SimStack stack(256, quietOptions());
  auto spec = smallSpec(false);
  auto result = runCheckpoint(stack, spec, StrategyConfig::onePfpp());
  EXPECT_EQ(stack.fsys.image().fileCount(), 256u);
  GroupFileLayout layout(spec, 1);
  for (int r = 0; r < 256; ++r) {
    const auto* img = stack.fsys.image().find(checkpointPath(spec, r));
    ASSERT_NE(img, nullptr) << "missing file for rank " << r;
    EXPECT_TRUE(img->coversExactly(layout.fileBytes()));
  }
  EXPECT_GT(result.makespan, 0);
  EXPECT_EQ(result.logicalBytes,
            256u * spec.bytesPerRank() + 256u * spec.headerBytes);
}

TEST(Strategies, OnePfppContentMatchesPattern) {
  SimStack stack(256, quietOptions());
  auto spec = smallSpec(true);
  runCheckpoint(stack, spec, StrategyConfig::onePfpp());
  GroupFileLayout layout(spec, 1);
  const auto* img = stack.fsys.image().find(checkpointPath(spec, 37));
  ASSERT_NE(img, nullptr);
  for (int f = 0; f < spec.numFields; ++f) {
    auto bytes = img->readBytes({layout.fieldOffset(f, 0),
                                 spec.fieldBytesPerRank});
    for (std::uint64_t i = 0; i < bytes.size(); i += 197)
      ASSERT_EQ(bytes[i], patternByte(37, f, i));
  }
}

TEST(Strategies, CoIoCoversGroupFiles) {
  SimStack stack(256, quietOptions());
  auto spec = smallSpec(false);
  auto result = runCheckpoint(stack, spec, StrategyConfig::coIo(4));
  EXPECT_EQ(stack.fsys.image().fileCount(), 4u);
  GroupFileLayout layout(spec, 64);
  for (int part = 0; part < 4; ++part) {
    const auto* img = stack.fsys.image().find(checkpointPath(spec, part));
    ASSERT_NE(img, nullptr);
    EXPECT_TRUE(img->coversExactly(layout.fileBytes()))
        << "part " << part << " has gaps";
  }
  EXPECT_GT(result.bandwidth, 0);
}

TEST(Strategies, RbIoIndependentCoversGroupFiles) {
  SimStack stack(256, quietOptions());
  auto spec = smallSpec(false);
  auto result = runCheckpoint(stack, spec, StrategyConfig::rbIo(64, true));
  EXPECT_EQ(stack.fsys.image().fileCount(), 4u);
  GroupFileLayout layout(spec, 64);
  for (int part = 0; part < 4; ++part) {
    const auto* img = stack.fsys.image().find(checkpointPath(spec, part));
    ASSERT_NE(img, nullptr);
    EXPECT_TRUE(img->coversExactly(layout.fileBytes()));
  }
  EXPECT_EQ(result.numWriters, 4);
  EXPECT_GT(result.perceivedBandwidth, 0);
}

TEST(Strategies, RbIoSharedFileCoversEverything) {
  SimStack stack(256, quietOptions());
  auto spec = smallSpec(false);
  auto result = runCheckpoint(stack, spec, StrategyConfig::rbIo(64, false));
  EXPECT_EQ(stack.fsys.image().fileCount(), 1u);
  GroupFileLayout layout(spec, 256);
  const auto* img = stack.fsys.image().find(checkpointPath(spec, 0));
  ASSERT_NE(img, nullptr);
  EXPECT_TRUE(img->coversExactly(layout.fileBytes()));
  EXPECT_GT(result.makespan, 0);
}

// The paper's correctness invariant: rbIO's application-level two-phase
// aggregation must produce byte-identical files to coIO's MPI-IO two-phase
// (same nf, same layout).
TEST(Strategies, RbIoAndCoIoProduceIdenticalFiles) {
  auto spec = smallSpec(true);
  SimStack coStack(256, quietOptions());
  runCheckpoint(coStack, spec, StrategyConfig::coIo(4));
  SimStack rbStack(256, quietOptions());
  runCheckpoint(rbStack, spec, StrategyConfig::rbIo(64, true));
  for (int part = 0; part < 4; ++part) {
    const auto* a = coStack.fsys.image().find(checkpointPath(spec, part));
    const auto* b = rbStack.fsys.image().find(checkpointPath(spec, part));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->contentHash(), b->contentHash()) << "part " << part;
    EXPECT_EQ(a->size(), b->size());
  }
}

TEST(Strategies, SharedFileVariantsProduceIdenticalContent) {
  auto spec = smallSpec(true);
  SimStack coStack(256, quietOptions());
  runCheckpoint(coStack, spec, StrategyConfig::coIo(1));
  SimStack rbStack(256, quietOptions());
  runCheckpoint(rbStack, spec, StrategyConfig::rbIo(64, false));
  const auto* a = coStack.fsys.image().find(checkpointPath(spec, 0));
  const auto* b = rbStack.fsys.image().find(checkpointPath(spec, 0));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->contentHash(), b->contentHash());
}

TEST(Strategies, RbIoWorkersBlockMicrosecondsWhileWritersBlockLonger) {
  SimStack stack(1024, quietOptions());
  CheckpointSpec spec;
  spec.fieldBytesPerRank = 240'000;  // the paper's 2.4 MB per rank
  spec.numFields = 10;
  auto result = runCheckpoint(stack, spec, StrategyConfig::rbIo(64, true));
  // The two "lines" of Fig. 11.
  EXPECT_LT(result.workerMakespan, 1e-3);
  EXPECT_GT(result.writerMakespan, 0.1);
  EXPECT_GT(result.writerMakespan, 1000 * result.workerMakespan);
  // Perceived bandwidth dwarfs raw disk bandwidth (Table I).
  EXPECT_GT(result.perceivedBandwidth, 50 * result.bandwidth);
}

TEST(Strategies, RbIoPerceivedBandwidthInTbPerSecondRange) {
  SimStack stack(4096, quietOptions());
  auto spec = CheckpointSpec::nekcemWeakScaling(4096);
  auto result = runCheckpoint(stack, spec, StrategyConfig::rbIo(64, true));
  // 4095/4096 of ~9.8 GB shipped in ~100 microseconds of worst-case Isend.
  EXPECT_GT(result.perceivedBandwidth, 1e13);  // > 10 TB/s
  EXPECT_LT(result.maxIsendSeconds, 1e-3);
}

TEST(Strategies, CoIoSplitFilesBeatSingleSharedFile) {
  auto spec = smallSpec(false);
  spec.fieldBytesPerRank = 64 * 1024;
  SimStack one(1024, quietOptions());
  auto rOne = runCheckpoint(one, spec, StrategyConfig::coIo(1));
  SimStack split(1024, quietOptions());
  auto rSplit = runCheckpoint(split, spec, StrategyConfig::coIo(16));
  EXPECT_GT(rSplit.bandwidth, rOne.bandwidth);
}

TEST(Strategies, InvalidConfigsThrow) {
  SimStack stack(256, quietOptions());
  auto spec = smallSpec(false);
  EXPECT_THROW(runCheckpoint(stack, spec, StrategyConfig::coIo(3)),
               std::invalid_argument);  // 3 does not divide 256
  StrategyConfig bad = StrategyConfig::rbIo(7, true);
  EXPECT_THROW(runCheckpoint(stack, spec, bad), std::invalid_argument);
}

TEST(Strategies, ProfileRecordsAllOpKinds) {
  SimStack stack(256, quietOptions());
  auto spec = smallSpec(false);
  runCheckpoint(stack, spec, StrategyConfig::rbIo(64, true));
  EXPECT_GT(stack.profile.opCount(prof::Op::kSend), 0u);
  EXPECT_GT(stack.profile.opCount(prof::Op::kRecv), 0u);
  EXPECT_GT(stack.profile.opCount(prof::Op::kWrite), 0u);
  EXPECT_GT(stack.profile.opCount(prof::Op::kCreate), 0u);
  // 252 workers sent ~one package each.
  EXPECT_EQ(stack.profile.opCount(prof::Op::kSend), 252u);
  EXPECT_EQ(stack.profile.totalBytes(prof::Op::kSend),
            252u * spec.bytesPerRank());
}

TEST(Strategies, DeterministicAcrossIdenticalRuns) {
  auto runOnce = [] {
    SimStack stack(256, SimStackOptions{});  // default noise, fixed seed
    auto spec = smallSpec(false);
    return runCheckpoint(stack, spec, StrategyConfig::coIo(4)).makespan;
  };
  EXPECT_DOUBLE_EQ(runOnce(), runOnce());
}

TEST(Strategies, StrategyDescribeStrings) {
  EXPECT_EQ(StrategyConfig::onePfpp().describe(), "1PFPP (nf=np)");
  EXPECT_EQ(StrategyConfig::coIo(64).describe(), "coIO nf=64");
  EXPECT_EQ(StrategyConfig::rbIo(64, true).describe(),
            "rbIO np:ng=64:1, nf=ng");
  EXPECT_EQ(StrategyConfig::rbIo(64, false).describe(),
            "rbIO np:ng=64:1, nf=1");
}

}  // namespace
}  // namespace bgckpt::iolib
