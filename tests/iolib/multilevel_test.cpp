#include "iolib/multilevel.hpp"

#include <gtest/gtest.h>

namespace bgckpt::iolib {
namespace {

SimStackOptions quiet() {
  SimStackOptions opt;
  opt.noise = stor::NoiseModel::none();
  return opt;
}

CheckpointSpec spec() {
  CheckpointSpec s;
  s.fieldBytesPerRank = 64 * 1024;
  s.numFields = 6;
  return s;
}

TEST(Multilevel, ValidatesConfig) {
  SimStack stack(256, quiet());
  MultilevelConfig cfg;
  cfg.pfsEvery = 0;
  EXPECT_THROW(runMultilevelCheckpoint(stack, spec(), cfg),
               std::invalid_argument);
}

TEST(Multilevel, LocalLevelOrdersOfMagnitudeFasterThanPfs) {
  SimStack stack(256, quiet());
  MultilevelConfig cfg;
  const auto r = runMultilevelCheckpoint(stack, spec(), cfg);
  EXPECT_GT(r.localMakespan, 0);
  EXPECT_GT(r.pfsMakespan, 10 * r.localMakespan);
  // SCR reports 14x-234x for pF3D; our simulated future system lands in a
  // comparable territory for this problem size.
  EXPECT_GT(r.level1Speedup, 10);
}

TEST(Multilevel, AmortizedCostBetweenLocalAndPfs) {
  SimStack stack(256, quiet());
  MultilevelConfig cfg;
  cfg.pfsEvery = 4;
  const auto r = runMultilevelCheckpoint(stack, spec(), cfg);
  EXPECT_GT(r.amortizedSeconds, r.localMakespan);
  EXPECT_LT(r.amortizedSeconds, r.pfsMakespan + r.localMakespan);
  EXPECT_NEAR(r.amortizedSeconds,
              r.localMakespan + r.pfsMakespan / 4.0, 1e-9);
  EXPECT_GT(r.amortizedSpeedup, 1.0);
}

TEST(Multilevel, PartnerCopyCostsMoreThanLocalOnly) {
  SimStack a(256, quiet());
  MultilevelConfig with;
  with.partnerCopy = true;
  const auto rWith = runMultilevelCheckpoint(a, spec(), with);
  SimStack b(256, quiet());
  MultilevelConfig without;
  without.partnerCopy = false;
  const auto rWithout = runMultilevelCheckpoint(b, spec(), without);
  EXPECT_GT(rWith.localMakespan, rWithout.localMakespan);
  // The mirror roughly doubles local traffic, it must not explode it.
  EXPECT_LT(rWith.localMakespan, 6 * rWithout.localMakespan);
}

TEST(Multilevel, MoreFrequentPfsDrainsRaiseAmortizedCost) {
  SimStack a(256, quiet());
  MultilevelConfig every2;
  every2.pfsEvery = 2;
  const auto r2 = runMultilevelCheckpoint(a, spec(), every2);
  SimStack b(256, quiet());
  MultilevelConfig every8;
  every8.pfsEvery = 8;
  const auto r8 = runMultilevelCheckpoint(b, spec(), every8);
  EXPECT_GT(r2.amortizedSeconds, r8.amortizedSeconds);
}

TEST(Multilevel, PfsLevelActuallyLandsOnTheFilesystem) {
  SimStack stack(256, quiet());
  const auto r = runMultilevelCheckpoint(stack, spec(), MultilevelConfig{});
  (void)r;
  EXPECT_TRUE(stack.fsys.image().exists("ckpt/pfs/s0.part0"));
}

}  // namespace
}  // namespace bgckpt::iolib
