#include "analysis/ascii.hpp"

#include <gtest/gtest.h>

namespace bgckpt::analysis {
namespace {

TEST(BarChart, RendersAllLabelsAndScales) {
  auto out = barChart({{"rbIO", 13.5}, {"coIO", 9.0}, {"1PFPP", 0.1}}, "GB/s");
  EXPECT_NE(out.find("rbIO"), std::string::npos);
  EXPECT_NE(out.find("coIO"), std::string::npos);
  EXPECT_NE(out.find("1PFPP"), std::string::npos);
  EXPECT_NE(out.find("GB/s"), std::string::npos);
  // Largest value renders the longest bar.
  const auto rbLine = out.substr(0, out.find('\n'));
  EXPECT_GT(std::count(rbLine.begin(), rbLine.end(), '#'), 30);
}

TEST(BarChart, LogScaleKeepsTinyValuesVisible) {
  auto out = barChart({{"big", 1000.0}, {"small", 0.1}}, "s", 52, true);
  // On a log scale the small bar still shows at least one mark.
  const auto lines = out.substr(out.find("small"));
  EXPECT_NE(lines.find('#'), std::string::npos);
}

TEST(BarChart, EmptyHandled) {
  EXPECT_EQ(barChart({}, "x"), "(no data)\n");
}

TEST(Scatter, MarksPointsAndAxes) {
  std::vector<double> xs{0, 1, 2, 3, 4};
  std::vector<double> ys{0, 10, 5, 10, 0};
  auto out = scatter(xs, ys, 40, 10, "rank", "seconds");
  EXPECT_NE(out.find("seconds"), std::string::npos);
  EXPECT_NE(out.find("rank"), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(Scatter, MismatchedInputRejected) {
  EXPECT_EQ(scatter({1.0}, {}, 10, 5), "(no data)\n");
}

TEST(ActivityStrip, ShadesByIntensity) {
  auto out = activityStrip({"rbIO", "coIO"},
                           {{0, 1, 5, 9, 9, 2}, {1, 1, 1, 1, 1, 1}}, 0.5);
  EXPECT_NE(out.find("rbIO"), std::string::npos);
  EXPECT_NE(out.find('@'), std::string::npos);  // peak intensity
  EXPECT_NE(out.find("0.50 s"), std::string::npos);
}

}  // namespace
}  // namespace bgckpt::analysis
