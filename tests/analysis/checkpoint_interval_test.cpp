#include "analysis/checkpoint_interval.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bgckpt::analysis {
namespace {

TEST(Young, ClosedForm) {
  // Tc = 50 s, MTBF = 1 day: sqrt(2 * 50 * 86400) = 2939.4 s.
  EXPECT_NEAR(youngInterval(50, 86400), 2939.4, 0.1);
}

TEST(Young, ScalesWithSqrtOfBothInputs) {
  const double base = youngInterval(10, 10000);
  EXPECT_NEAR(youngInterval(40, 10000), 2 * base, 1e-9);
  EXPECT_NEAR(youngInterval(10, 40000), 2 * base, 1e-9);
}

TEST(Daly, CloseToYoungForSmallTc) {
  // When Tc << MTBF the higher-order terms vanish.
  const double young = youngInterval(1, 1e6);
  const double daly = dalyInterval(1, 1e6);
  EXPECT_NEAR(daly / young, 1.0, 0.01);
}

TEST(Daly, BelowYoungForLargeTc) {
  // Daly subtracts Tc; with substantial Tc the optimum is earlier.
  EXPECT_LT(dalyInterval(500, 10000), youngInterval(500, 10000));
}

TEST(Daly, FallbackRegimeReturnsMtbf) {
  EXPECT_DOUBLE_EQ(dalyInterval(5000, 1000), 1000.0);
}

TEST(Efficiency, PerfectWorldApproachesOne) {
  // Huge MTBF, negligible checkpoint cost.
  EXPECT_GT(efficiency(3600, 0.001, 1, 1e12), 0.999);
}

TEST(Efficiency, OptimalIntervalBeatsNeighbours) {
  const double tc = 60, tr = 120, mtbf = 43200;  // half-day MTBF
  const double opt = dalyInterval(tc, mtbf);
  const double effOpt = efficiency(opt, tc, tr, mtbf);
  EXPECT_GT(effOpt, efficiency(opt / 4, tc, tr, mtbf));
  EXPECT_GT(effOpt, efficiency(opt * 4, tc, tr, mtbf));
}

TEST(Efficiency, CheaperCheckpointsRaiseTheCeiling) {
  const double mtbf = 43200, tr = 120;
  // rbIO-class (5 s) vs 1PFPP-class (400 s) checkpoint cost, each at its
  // own optimal cadence.
  const double cheap =
      efficiency(dalyInterval(5, mtbf), 5, tr, mtbf);
  const double dear =
      efficiency(dalyInterval(400, mtbf), 400, tr, mtbf);
  EXPECT_GT(cheap, dear + 0.1);  // >10 points of machine efficiency
}

TEST(SystemMtbf, InverseInNodeCount) {
  // 3-year node MTBF across 16K nodes: a failure every ~1.6 hours.
  const double nodeMtbf = 3 * 365.0 * 86400;
  EXPECT_NEAR(systemMtbf(16384, nodeMtbf), 5774, 5);
  EXPECT_NEAR(systemMtbf(32768, nodeMtbf), 2887, 5);
}

TEST(ExpectedRuntime, InflatesWorkByEfficiency) {
  const double t = expectedRuntime(1e6, 3600, 60, 120, 86400);
  EXPECT_GT(t, 1e6);
  EXPECT_NEAR(t, 1e6 / efficiency(3600, 60, 120, 86400), 1e-6);
}

}  // namespace
}  // namespace bgckpt::analysis
