#include "analysis/models.hpp"

#include <gtest/gtest.h>

namespace bgckpt::analysis {
namespace {

TEST(Eq1, PaperArithmetic25x) {
  // "For nc=20, Ratio_1pfpp is generally above 1000 while Ratio_rbIO is
  // under 20. Thus ... approximately 25x improvement."
  EXPECT_NEAR(productionImprovement(1000, 20, 20), 25.5, 0.01);
}

TEST(Eq1, NoImprovementWhenRatiosEqual) {
  EXPECT_DOUBLE_EQ(productionImprovement(50, 50, 20), 1.0);
}

TEST(Eq1, HigherFrequencyAmplifiesIoDifference) {
  // Checkpointing every step (nc=1) exposes the I/O gap more than every
  // 100 steps.
  EXPECT_GT(productionImprovement(1000, 20, 1),
            productionImprovement(1000, 20, 100));
}

SpeedupParams paperishParams() {
  SpeedupParams p;
  p.np = 65536;
  p.ng = 1024;
  p.fileBytes = 156e9;
  p.bwCoIo = 9e9;
  p.bwRbIo = 13e9;
  p.bwPerceived = 1091e12;  // Table I at 64K
  p.lambda = 0.0;
  return p;
}

TEST(Eq3, CoIoBlockedTimeIsAllRanksForWholeWrite) {
  auto p = paperishParams();
  EXPECT_DOUBLE_EQ(blockedTimeCoIo(p), 65536.0 * 156e9 / 9e9);
}

TEST(Eq4, RbIoBlockedTimeDominatedByWriters) {
  auto p = paperishParams();
  const double t = blockedTimeRbIo(p);
  const double writerTerm = p.ng * p.fileBytes / p.bwRbIo;
  EXPECT_NEAR(t, writerTerm, writerTerm * 0.01);  // workers contribute ~0
}

TEST(Eq7, LimitMatchesPaperFormula) {
  auto p = paperishParams();
  EXPECT_NEAR(speedupLimit(p), (65536.0 / 1024.0) * (13.0 / 9.0), 1e-9);
}

TEST(Eq2Vs6Vs7, AgreeInTheSmallLambdaRegime) {
  auto p = paperishParams();
  p.lambda = 1e-4;
  const double exact = speedupExact(p);
  const double approx = speedupApprox(p);
  const double limit = speedupLimit(p);
  EXPECT_NEAR(exact / approx, 1.0, 0.05);
  EXPECT_NEAR(approx / limit, 1.0, 0.05);
}

TEST(Eq6, WorstCaseHalfBandwidthStillLarge) {
  // "Even in the worst case where BW_rbIO is roughly half of BW_coIO, the
  // speedup is still half of the ratio (i.e. ~30x)" at np:ng = 64:1.
  SpeedupParams p;
  p.np = 65536;
  p.ng = 1024;
  p.fileBytes = 156e9;
  p.bwCoIo = 10e9;
  p.bwRbIo = 5e9;
  p.bwPerceived = 1e15;
  p.lambda = 0.0;
  EXPECT_NEAR(speedupApprox(p), 32.0, 0.5);
}

TEST(SpeedupModel, LambdaOneRemovesTheBenefit) {
  // If workers block for the writer's entire write, rbIO degenerates to
  // coIO-like blocking (modulo bandwidth differences).
  auto p = paperishParams();
  p.lambda = 1.0;
  p.bwRbIo = p.bwCoIo;
  EXPECT_NEAR(speedupExact(p), 1.0, 0.05);
}

TEST(SpeedupModel, MoreWritersLowerSpeedup) {
  auto a = paperishParams();
  auto b = paperishParams();
  b.ng = 4096;
  EXPECT_GT(speedupApprox(a), speedupApprox(b));
}

}  // namespace
}  // namespace bgckpt::analysis
