#include "profiling/profile.hpp"

#include <gtest/gtest.h>

namespace bgckpt::prof {
namespace {

TEST(IoProfile, EnvelopeSpansFirstToLast) {
  IoProfile p;
  p.record(0, Op::kCreate, 1.0, 2.0);
  p.record(0, Op::kWrite, 3.0, 7.0, 100);
  p.record(1, Op::kWrite, 0.5, 1.0, 50);
  auto env = p.perRankEnvelope(3);
  ASSERT_EQ(env.size(), 3u);
  EXPECT_DOUBLE_EQ(env[0], 6.0);  // 7.0 - 1.0
  EXPECT_DOUBLE_EQ(env[1], 0.5);
  EXPECT_DOUBLE_EQ(env[2], 0.0);  // no records
}

TEST(IoProfile, BusySumsDurations) {
  IoProfile p;
  p.record(0, Op::kCreate, 1.0, 2.0);
  p.record(0, Op::kWrite, 5.0, 6.5);
  auto busy = p.perRankBusy(1);
  EXPECT_DOUBLE_EQ(busy[0], 2.5);
}

TEST(IoProfile, CountersByOp) {
  IoProfile p;
  p.record(0, Op::kWrite, 0, 1, 100);
  p.record(1, Op::kWrite, 0, 1, 200);
  p.record(2, Op::kSend, 0, 1, 999);
  EXPECT_EQ(p.opCount(Op::kWrite), 2u);
  EXPECT_EQ(p.totalBytes(Op::kWrite), 300u);
  EXPECT_EQ(p.totalBytes(Op::kSend), 999u);
  EXPECT_EQ(p.opCount(Op::kClose), 0u);
}

TEST(IoProfile, ActivityTimelineCountsOverlaps) {
  IoProfile p;
  p.record(0, Op::kWrite, 0.0, 2.0);   // bins 0,1
  p.record(1, Op::kWrite, 1.0, 3.0);   // bins 1,2
  p.record(2, Op::kSend, 0.0, 10.0);   // different op, ignored
  auto timeline = p.activityTimeline(Op::kWrite, 1.0, 4.0);
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline[0], 1);
  EXPECT_EQ(timeline[1], 2);
  EXPECT_EQ(timeline[2], 1);
  EXPECT_EQ(timeline[3], 0);
}

TEST(IoProfile, OutOfRangeRanksIgnoredInAggregates) {
  IoProfile p;
  p.record(10, Op::kWrite, 0, 1);
  auto env = p.perRankEnvelope(2);
  EXPECT_DOUBLE_EQ(env[0], 0.0);
  EXPECT_DOUBLE_EQ(env[1], 0.0);
}

TEST(IoProfile, OpNames) {
  EXPECT_STREQ(opName(Op::kCreate), "create");
  EXPECT_STREQ(opName(Op::kSend), "send");
  EXPECT_STREQ(opName(Op::kOther), "other");
}

TEST(ScopedOp, RecordsOnStop) {
  IoProfile p;
  ScopedOp op(p, 3, Op::kClose, 5.0);
  op.stop(7.5, 42);
  ASSERT_EQ(p.records().size(), 1u);
  EXPECT_EQ(p.records()[0].rank, 3);
  EXPECT_DOUBLE_EQ(p.records()[0].duration(), 2.5);
  EXPECT_EQ(p.records()[0].bytes, 42u);
}

}  // namespace
}  // namespace bgckpt::prof
