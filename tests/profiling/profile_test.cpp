#include "profiling/profile.hpp"

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/task.hpp"

namespace bgckpt::prof {
namespace {

TEST(IoProfile, EnvelopeSpansFirstToLast) {
  IoProfile p;
  p.record(0, Op::kCreate, 1.0, 2.0);
  p.record(0, Op::kWrite, 3.0, 7.0, 100);
  p.record(1, Op::kWrite, 0.5, 1.0, 50);
  auto env = p.perRankEnvelope(3);
  ASSERT_EQ(env.size(), 3u);
  EXPECT_DOUBLE_EQ(env[0], 6.0);  // 7.0 - 1.0
  EXPECT_DOUBLE_EQ(env[1], 0.5);
  EXPECT_DOUBLE_EQ(env[2], 0.0);  // no records
}

TEST(IoProfile, BusySumsDurations) {
  IoProfile p;
  p.record(0, Op::kCreate, 1.0, 2.0);
  p.record(0, Op::kWrite, 5.0, 6.5);
  auto busy = p.perRankBusy(1);
  EXPECT_DOUBLE_EQ(busy[0], 2.5);
}

TEST(IoProfile, CountersByOp) {
  IoProfile p;
  p.record(0, Op::kWrite, 0, 1, 100);
  p.record(1, Op::kWrite, 0, 1, 200);
  p.record(2, Op::kSend, 0, 1, 999);
  EXPECT_EQ(p.opCount(Op::kWrite), 2u);
  EXPECT_EQ(p.totalBytes(Op::kWrite), 300u);
  EXPECT_EQ(p.totalBytes(Op::kSend), 999u);
  EXPECT_EQ(p.opCount(Op::kClose), 0u);
}

TEST(IoProfile, ActivityTimelineCountsOverlaps) {
  IoProfile p;
  p.record(0, Op::kWrite, 0.0, 2.0);   // bins 0,1
  p.record(1, Op::kWrite, 1.0, 3.0);   // bins 1,2
  p.record(2, Op::kSend, 0.0, 10.0);   // different op, ignored
  auto timeline = p.activityTimeline(Op::kWrite, 1.0, 4.0);
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline[0], 1);
  EXPECT_EQ(timeline[1], 2);
  EXPECT_EQ(timeline[2], 1);
  EXPECT_EQ(timeline[3], 0);
}

TEST(IoProfile, OutOfRangeRanksIgnoredInAggregates) {
  IoProfile p;
  p.record(10, Op::kWrite, 0, 1);
  auto env = p.perRankEnvelope(2);
  EXPECT_DOUBLE_EQ(env[0], 0.0);
  EXPECT_DOUBLE_EQ(env[1], 0.0);
}

TEST(IoProfile, OpNames) {
  EXPECT_STREQ(opName(Op::kCreate), "create");
  EXPECT_STREQ(opName(Op::kSend), "send");
  EXPECT_STREQ(opName(Op::kOther), "other");
}

TEST(ScopedOp, RecordsOnStop) {
  IoProfile p;
  ScopedOp op(p, 3, Op::kClose, 5.0);
  op.stop(7.5, 42);
  ASSERT_EQ(p.records().size(), 1u);
  EXPECT_EQ(p.records()[0].rank, 3);
  EXPECT_DOUBLE_EQ(p.records()[0].duration(), 2.5);
  EXPECT_EQ(p.records()[0].bytes, 42u);
}

TEST(ScopedOp, StopThenDestroyRecordsExactlyOnce) {
  IoProfile p;
  {
    ScopedOp op(p, 0, Op::kWrite, 1.0);
    op.stop(2.0, 7);
    op.stop(3.0, 9);  // second stop is a no-op
  }
  ASSERT_EQ(p.records().size(), 1u);
  EXPECT_DOUBLE_EQ(p.records()[0].end, 2.0);
  EXPECT_EQ(p.records()[0].bytes, 7u);
}

TEST(ScopedOp, AbandonedOpRecordsZeroWidthAtDestruction) {
  // Legacy start-time constructor: no clock to read, so the fallback
  // record is zero-width rather than silently dropped.
  IoProfile p;
  { ScopedOp op(p, 4, Op::kOpen, 2.5); }
  ASSERT_EQ(p.records().size(), 1u);
  EXPECT_EQ(p.records()[0].rank, 4);
  EXPECT_DOUBLE_EQ(p.records()[0].start, 2.5);
  EXPECT_DOUBLE_EQ(p.records()[0].end, 2.5);
}

TEST(ScopedOp, AbandonedOpReadsSchedulerClockAtDestruction) {
  sim::Scheduler sched;
  IoProfile p;
  auto body = [&]() -> sim::Task<> {
    ScopedOp op(p, 1, Op::kWrite, sched);
    co_await sched.delay(2.0);
    // No stop(): destruction when the frame unwinds must still record.
  };
  sched.spawn(body());
  sched.run();
  ASSERT_EQ(p.records().size(), 1u);
  EXPECT_DOUBLE_EQ(p.records()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(p.records()[0].end, 2.0);
}

TEST(IoProfile, ActivityTimelineEmptyProfile) {
  IoProfile p;
  auto timeline = p.activityTimeline(Op::kWrite, 1.0, 4.0);
  ASSERT_EQ(timeline.size(), 4u);
  for (int c : timeline) EXPECT_EQ(c, 0);
}

TEST(IoProfile, ActivityTimelineZeroWidthBinsIsEmpty) {
  IoProfile p;
  p.record(0, Op::kWrite, 0.0, 1.0);
  EXPECT_TRUE(p.activityTimeline(Op::kWrite, 0.0, 4.0).empty());
  EXPECT_TRUE(p.activityTimeline(Op::kWrite, -1.0, 4.0).empty());
  EXPECT_TRUE(p.activityTimeline(Op::kWrite, 1.0, 0.0).empty());
}

TEST(IoProfile, ActivityTimelineClampsRecordsStraddlingHorizon) {
  IoProfile p;
  p.record(0, Op::kWrite, 2.5, 100.0);  // runs far past the horizon
  auto timeline = p.activityTimeline(Op::kWrite, 1.0, 4.0);
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline[0], 0);
  EXPECT_EQ(timeline[1], 0);
  EXPECT_EQ(timeline[2], 1);
  EXPECT_EQ(timeline[3], 1);
}

TEST(OpFromName, RoundTripsAndRejectsPhaseNames) {
  for (const Op op : {Op::kCreate, Op::kOpen, Op::kWrite, Op::kClose,
                      Op::kSend, Op::kRecv, Op::kOther}) {
    const auto back = opFromName(opName(op));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, op);
  }
  EXPECT_FALSE(opFromName("handoff").has_value());
  EXPECT_FALSE(opFromName("commit").has_value());
  EXPECT_FALSE(opFromName("").has_value());
}

TEST(IoProfileSink, ReplaysIoCompleteEventsOnly) {
  IoProfile p;
  IoProfileSink sink(p);
  EXPECT_EQ(sink.layerMask(), obs::layerBit(obs::Layer::kIo));

  obs::TraceEvent write;
  write.layer = obs::Layer::kIo;
  write.phase = 'X';
  write.tid = 5;
  write.name = "write";
  write.ts = 1.0;
  write.dur = 2.0;
  write.hasBytes = true;
  write.bytes = 4096;
  sink.event(write);

  obs::TraceEvent phase = write;  // B/E phase spans are not op records
  phase.phase = 'B';
  phase.name = "commit";
  sink.event(phase);

  obs::TraceEvent unknown = write;  // kIo 'X' with a non-op name
  unknown.name = "aggregate";
  sink.event(unknown);

  ASSERT_EQ(p.records().size(), 1u);
  EXPECT_EQ(p.records()[0].rank, 5);
  EXPECT_EQ(p.records()[0].op, Op::kWrite);
  EXPECT_DOUBLE_EQ(p.records()[0].end, 3.0);
  EXPECT_EQ(p.records()[0].bytes, 4096u);
}

}  // namespace
}  // namespace bgckpt::prof
