#include "profiling/report.hpp"

#include <gtest/gtest.h>

namespace bgckpt::prof {
namespace {

IoProfile sampleProfile() {
  IoProfile p;
  p.record(0, Op::kCreate, 0.0, 0.5);
  p.record(0, Op::kWrite, 0.5, 2.5, 100 * 1024 * 1024);
  p.record(0, Op::kClose, 2.5, 2.6);
  p.record(1, Op::kSend, 0.0, 0.001, 2 * 1024 * 1024);
  p.record(2, Op::kWrite, 0.0, 9.0, 400 * 1024 * 1024);
  return p;
}

TEST(Report, OpTableListsUsedOpsOnly) {
  const auto table = renderOpTable(sampleProfile());
  EXPECT_NE(table.find("create"), std::string::npos);
  EXPECT_NE(table.find("write"), std::string::npos);
  EXPECT_NE(table.find("send"), std::string::npos);
  EXPECT_EQ(table.find("recv"), std::string::npos);  // never recorded
  EXPECT_NE(table.find("500.00 MiB"), std::string::npos);  // write bytes
}

TEST(Report, SlowestRanksOrderedByEnvelope) {
  const auto s = renderSlowestRanks(sampleProfile(), 3, 2);
  // Rank 2 (9 s) before rank 0 (2.6 s).
  const auto pos2 = s.find("rank      2");
  const auto pos0 = s.find("rank      0");
  ASSERT_NE(pos2, std::string::npos);
  ASSERT_NE(pos0, std::string::npos);
  EXPECT_LT(pos2, pos0);
  EXPECT_NE(s.find("2 metadata"), std::string::npos);  // rank 0's mix
}

TEST(Report, FullReportHasHeaderSpanAndRate) {
  ReportOptions opt;
  opt.numRanks = 3;
  opt.jobName = "test-job";
  const auto report = renderReport(sampleProfile(), opt);
  EXPECT_NE(report.find("test-job"), std::string::npos);
  EXPECT_NE(report.find("span: 9.000 s"), std::string::npos);
  EXPECT_NE(report.find("avg write rate"), std::string::npos);
  EXPECT_NE(report.find("slowest ranks"), std::string::npos);
}

TEST(Report, EmptyProfileDoesNotCrash) {
  IoProfile empty;
  ReportOptions opt;
  opt.numRanks = 0;
  const auto report = renderReport(empty, opt);
  EXPECT_NE(report.find("records: 0"), std::string::npos);
}

}  // namespace
}  // namespace bgckpt::prof
