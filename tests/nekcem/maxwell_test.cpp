#include "nekcem/maxwell.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bgckpt::nekcem {
namespace {

BoxMesh periodicBox(int e, double l = 1.0) {
  return BoxMesh(e, e, e, l, l, l, Boundary::kPeriodic);
}

TEST(BoxMesh, NeighborsPeriodicWrap) {
  BoxMesh m(2, 2, 2, 1, 1, 1, Boundary::kPeriodic);
  // Element 0 at (0,0,0): -x neighbour wraps to (1,0,0) = element 1.
  EXPECT_EQ(m.neighbor(0, 0), 1);
  EXPECT_EQ(m.neighbor(0, 1), 1);
  EXPECT_EQ(m.neighbor(0, 2), 2);
  EXPECT_EQ(m.neighbor(0, 4), 4);
}

TEST(BoxMesh, NeighborsPecWallsAreMinusOne) {
  BoxMesh m(2, 2, 2, 1, 1, 1, Boundary::kPec);
  EXPECT_EQ(m.neighbor(0, 0), -1);
  EXPECT_EQ(m.neighbor(0, 1), 1);
  EXPECT_EQ(m.neighbor(7, 1), -1);
  EXPECT_EQ(m.neighbor(7, 0), 6);
}

TEST(BoxMesh, ElementCoordRoundTrip) {
  BoxMesh m(3, 4, 5, 1, 1, 1, Boundary::kPeriodic);
  for (int e = 0; e < m.numElements(); ++e) {
    const auto c = m.elementCoord(e);
    EXPECT_EQ(m.elementIndex(c[0], c[1], c[2]), e);
  }
}

TEST(MaxwellSolver, NodeCoordsSpanDomain) {
  MaxwellSolver solver(periodicBox(2, 2.0), 3);
  const auto first = solver.nodeCoord(0, 0, 0, 0);
  EXPECT_DOUBLE_EQ(first[0], 0.0);
  const int np = solver.pointsPerDim();
  const auto last = solver.nodeCoord(7, np - 1, np - 1, np - 1);
  EXPECT_DOUBLE_EQ(last[0], 2.0);
  EXPECT_DOUBLE_EQ(last[1], 2.0);
  EXPECT_DOUBLE_EQ(last[2], 2.0);
}

TEST(MaxwellSolver, ConstantFieldHasZeroRhsWhenPeriodic) {
  MaxwellSolver solver(periodicBox(2), 3);
  solver.setSolution(
      [](double, double, double, double, std::array<double, 6>& out) {
        out = {1.0, -2.0, 0.5, 3.0, 0.0, -1.0};
      },
      0.0);
  FieldSet rhs;
  rhs.resize(solver.dofPerComponent());
  solver.evalRhs(solver.fields(), rhs);
  for (const auto& c : rhs.comp)
    for (double v : c) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(MaxwellSolver, RhsMatchesAnalyticTimeDerivativeOfPlaneWave) {
  // d/dt of the plane wave is known; a resolved discretisation must
  // reproduce it to spectral accuracy.
  MaxwellSolver solver(periodicBox(2), 8);
  auto wave = planeWaveX(1.0);
  solver.setSolution(wave, 0.3);
  FieldSet rhs;
  rhs.resize(solver.dofPerComponent());
  solver.evalRhs(solver.fields(), rhs);
  // dEy/dt = k sin(k(x - t)), with k = 2*pi.
  const double k = 2.0 * std::numbers::pi;
  const int np = solver.pointsPerDim();
  double maxErr = 0;
  for (int e = 0; e < solver.mesh().numElements(); ++e)
    for (int i = 0; i < np; ++i) {
      const auto xyz = solver.nodeCoord(e, i, 0, 0);
      const double expected = k * std::sin(k * (xyz[0] - 0.3));
      const std::size_t idx =
          static_cast<std::size_t>(e) *
              static_cast<std::size_t>(np * np * np) +
          static_cast<std::size_t>(i);
      maxErr = std::max(maxErr, std::abs(rhs.comp[kEy][idx] - expected));
    }
  EXPECT_LT(maxErr, 1e-4);
}

TEST(MaxwellSolver, PlaneWavePropagatesAccurately) {
  MaxwellSolver solver(periodicBox(2), 7);
  auto wave = planeWaveX(1.0);
  solver.setSolution(wave, 0.0);
  const double dt = solver.stableDt();
  const int steps = static_cast<int>(0.25 / dt) + 1;
  solver.run(steps, dt);
  EXPECT_LT(solver.maxError(wave), 2e-4);
  EXPECT_NEAR(solver.time(), steps * dt, 1e-12);
}

TEST(MaxwellSolver, SpectralConvergenceWithOrder) {
  // Fixed mesh and final time; error must fall sharply with order.
  auto errorAt = [](int order) {
    MaxwellSolver solver(periodicBox(2), order);
    auto wave = planeWaveX(1.0);
    solver.setSolution(wave, 0.0);
    const double dt = 0.2 * solver.stableDt();  // keep time error small
    const int steps = static_cast<int>(0.1 / dt) + 1;
    solver.run(steps, dt);
    return solver.maxError(wave);
  };
  const double e3 = errorAt(3);
  const double e5 = errorAt(5);
  const double e7 = errorAt(7);
  EXPECT_LT(e5, e3 * 0.2);
  EXPECT_LT(e7, e5 * 0.2);
}

TEST(MaxwellSolver, UpwindFluxDissipatesEnergyMonotonically) {
  MaxwellSolver solver(periodicBox(2), 4);
  // A rough (underresolved) initial condition exercises the dissipation.
  solver.setSolution(
      [](double x, double y, double z, double, std::array<double, 6>& out) {
        out = {std::cos(8 * x), std::sin(9 * y), 0.0,
               0.0, std::cos(7 * z), std::sin(8 * x + y)};
      },
      0.0);
  double prev = solver.energy();
  const double initial = prev;
  const double dt = solver.stableDt();
  for (int s = 0; s < 40; ++s) {
    solver.step(dt);
    const double e = solver.energy();
    EXPECT_LE(e, prev * (1.0 + 1e-12));
    prev = e;
  }
  EXPECT_LT(prev, initial);  // strictly dissipated something
  EXPECT_GT(prev, 0.0);
}

TEST(MaxwellSolver, ResolvedWaveConservesEnergyClosely) {
  MaxwellSolver solver(periodicBox(2), 8);
  solver.setSolution(planeWaveX(1.0), 0.0);
  const double e0 = solver.energy();
  const double dt = solver.stableDt();
  solver.run(30, dt);
  EXPECT_NEAR(solver.energy(), e0, e0 * 1e-5);
}

TEST(MaxwellSolver, PecCavityStaysBoundedAndDissipative) {
  BoxMesh cavity(2, 2, 2, 1, 1, 1, Boundary::kPec);
  MaxwellSolver solver(cavity, 4);
  solver.setSolution(
      [](double x, double y, double, double, std::array<double, 6>& out) {
        // Tangential-E-zero-ish initial condition inside the cavity.
        const double s = std::sin(std::numbers::pi * x) *
                         std::sin(std::numbers::pi * y);
        out = {0.0, 0.0, s, 0.0, 0.0, 0.0};
      },
      0.0);
  const double e0 = solver.energy();
  const double dt = solver.stableDt();
  double prev = e0;
  for (int s = 0; s < 60; ++s) {
    solver.step(dt);
    EXPECT_LE(solver.energy(), prev * (1.0 + 1e-12));
    prev = solver.energy();
  }
  EXPECT_GT(prev, 0.1 * e0);  // bounded, not blown up or zeroed
}

TEST(MaxwellSolver, SerializeDeserializeRoundTrip) {
  MaxwellSolver a(periodicBox(2), 4);
  a.setSolution(planeWaveX(1.0), 0.0);
  a.run(5, a.stableDt());

  MaxwellSolver b(periodicBox(2), 4);
  for (int f = 0; f < kNumFieldComponents; ++f)
    b.deserializeComponent(f, a.serializeComponent(f));
  b.setTime(a.time(), a.stepsTaken());

  // Bitwise identical resumed trajectories.
  const double dt = a.stableDt();
  a.run(3, dt);
  b.run(3, dt);
  for (int f = 0; f < kNumFieldComponents; ++f) {
    const auto& ca = a.fields().comp[static_cast<std::size_t>(f)];
    const auto& cb = b.fields().comp[static_cast<std::size_t>(f)];
    for (std::size_t i = 0; i < ca.size(); ++i)
      ASSERT_EQ(ca[i], cb[i]) << "component " << f << " dof " << i;
  }
}

TEST(MaxwellSolver, GridPointsMatchFormula) {
  MaxwellSolver solver(periodicBox(3), 5);
  EXPECT_EQ(solver.gridPoints(), 27u * 6u * 6u * 6u);
}

}  // namespace
}  // namespace bgckpt::nekcem
