#include "nekcem/perf_model.hpp"

#include <gtest/gtest.h>

namespace bgckpt::nekcem {
namespace {

TEST(PerfModel, GridPointsFormula) {
  // n = E (N+1)^3: the paper's (E, N) = (273K, 15) gives ~1.1 billion.
  EXPECT_EQ(PerfModel::gridPoints(273000, 15), 273000ull * 4096ull);
  EXPECT_NEAR(static_cast<double>(PerfModel::gridPoints(273000, 15)), 1.1e9,
              0.02e9);
}

TEST(PerfModel, PaperAnchor131kRanks) {
  // ~0.13 s per step on 131,072 ranks for E=273K, N=15.
  PerfModel model;
  EXPECT_NEAR(model.stepSeconds(273000, 15, 131072), 0.13, 0.005);
}

TEST(PerfModel, StrongScalingEfficiency75Percent) {
  // 131K ranks at n/P=8530 vs the 16K-rank base at n/P=68250.
  PerfModel model;
  EXPECT_NEAR(model.efficiency(8530, 131072, 68250, 16384), 0.75, 0.01);
}

TEST(PerfModel, EfficiencyImprovesWithMorePointsPerRank) {
  PerfModel model;
  const double lo = model.efficiency(1000, 0, 100000, 0);
  const double hi = model.efficiency(50000, 0, 100000, 0);
  EXPECT_LT(lo, hi);
  EXPECT_LE(hi, 1.0);
}

TEST(PerfModel, WeakScalingStepTimeIsScaleInvariantAndReasonable) {
  PerfModel model;
  const double t = model.weakScalingStepSeconds();
  // ~0.2 s per step for the paper's checkpoint-run problem sizes.
  EXPECT_GT(t, 0.1);
  EXPECT_LT(t, 0.4);
  // Weak scaling: same n/P at any rank count gives the same step time.
  EXPECT_DOUBLE_EQ(model.stepSeconds(17000, 15), t);
}

TEST(PerfModel, HigherOrderCostsMore) {
  PerfModel model;
  EXPECT_GT(model.stepSeconds(10000, 15), model.stepSeconds(10000, 5));
}

}  // namespace
}  // namespace bgckpt::nekcem
