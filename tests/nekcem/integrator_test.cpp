// Time integration and cavity-mode verification of the mini solver.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "nekcem/maxwell.hpp"

namespace bgckpt::nekcem {
namespace {

BoxMesh periodicBox(int e) {
  return BoxMesh(e, e, e, 1, 1, 1, Boundary::kPeriodic);
}

TEST(Integrators, LowStorageAndClassicalRk4Agree) {
  // Same formal order and stability class: after a handful of steps on a
  // resolved wave the two integrators differ only at the dt^5-per-step
  // level, far below the spatial error.
  MaxwellSolver a(periodicBox(2), 6);
  MaxwellSolver b(periodicBox(2), 6);
  auto wave = planeWaveX(1.0);
  a.setSolution(wave, 0.0);
  b.setSolution(wave, 0.0);
  const double dt = 0.5 * a.stableDt();
  for (int s = 0; s < 20; ++s) {
    a.step(dt);
    b.stepClassicalRk4(dt);
  }
  double diff = 0;
  for (int f = 0; f < 6; ++f) {
    const auto& ca = a.fields().comp[static_cast<std::size_t>(f)];
    const auto& cb = b.fields().comp[static_cast<std::size_t>(f)];
    for (std::size_t i = 0; i < ca.size(); ++i)
      diff = std::max(diff, std::abs(ca[i] - cb[i]));
  }
  EXPECT_LT(diff, 1e-9);
  EXPECT_GT(diff, 0.0);  // they are genuinely different schemes
}

TEST(Integrators, FourthOrderTimeConvergence) {
  // The analytic error is dominated by the (fixed) spatial discretisation,
  // so measure the *time* error Richardson-style: against a reference run
  // of the same spatial operator at dt/8. Halving dt must shrink that
  // difference by ~2^4.
  auto stateAt = [](int stepsPerUnit, bool classical) {
    MaxwellSolver solver(periodicBox(2), 5);
    solver.setSolution(planeWaveX(1.0), 0.0);
    const double tEnd = 0.2;
    const int steps = stepsPerUnit;
    for (int s = 0; s < steps; ++s)
      classical ? solver.stepClassicalRk4(tEnd / steps)
                : solver.step(tEnd / steps);
    return solver.fields();
  };
  auto maxDiff = [](const FieldSet& a, const FieldSet& b) {
    double d = 0;
    for (int f = 0; f < 6; ++f)
      for (std::size_t i = 0; i < a.comp[static_cast<std::size_t>(f)].size();
           ++i)
        d = std::max(d, std::abs(a.comp[static_cast<std::size_t>(f)][i] -
                                 b.comp[static_cast<std::size_t>(f)][i]));
    return d;
  };
  // Base step near the stability limit so time error is visible.
  const int base = 12;
  for (bool classical : {false, true}) {
    const auto ref = stateAt(base * 8, classical);
    const double eCoarse = maxDiff(stateAt(base, classical), ref);
    const double eFine = maxDiff(stateAt(base * 2, classical), ref);
    const double order = std::log2(eCoarse / eFine);
    EXPECT_GT(order, 3.4) << (classical ? "classical" : "low-storage");
    EXPECT_LT(order, 5.6) << (classical ? "classical" : "low-storage");
  }
}

TEST(CavityMode, PecStandingWaveTracksAnalyticSolution) {
  BoxMesh cavity(2, 2, 1, 1.0, 1.0, 0.5, Boundary::kPec);
  MaxwellSolver solver(cavity, 7);
  auto mode = cavityTmMode();
  solver.setSolution(mode, 0.0);
  const double dt = 0.5 * solver.stableDt();
  // Advance through a meaningful fraction of a period.
  const double period = 2.0 * std::numbers::pi / (std::numbers::sqrt2 *
                                                  std::numbers::pi);
  const int steps = static_cast<int>(0.5 * period / dt) + 1;
  solver.run(steps, dt);
  EXPECT_LT(solver.maxError(mode), 5e-4);
}

TEST(CavityMode, EnergySwapsBetweenEandHFields) {
  BoxMesh cavity(2, 2, 1, 1.0, 1.0, 0.5, Boundary::kPec);
  MaxwellSolver solver(cavity, 7);
  solver.setSolution(cavityTmMode(), 0.0);

  auto fieldEnergies = [&solver]() {
    double e = 0, h = 0;
    for (int f = 0; f < 3; ++f)
      for (double v : solver.fields().comp[static_cast<std::size_t>(f)])
        e += v * v;
    for (int f = 3; f < 6; ++f)
      for (double v : solver.fields().comp[static_cast<std::size_t>(f)])
        h += v * v;
    return std::pair<double, double>(e, h);
  };

  const auto [e0, h0] = fieldEnergies();
  EXPECT_GT(e0, 0);
  EXPECT_NEAR(h0, 0, 1e-20);  // starts purely electric

  // Advance a quarter period: energy should be mostly magnetic.
  const double omega = std::numbers::sqrt2 * std::numbers::pi;
  const double quarter = 0.25 * 2.0 * std::numbers::pi / omega;
  const double dt = 0.4 * solver.stableDt();
  const int steps = static_cast<int>(quarter / dt);
  solver.run(steps, dt);
  const auto [eQ, hQ] = fieldEnergies();
  EXPECT_GT(hQ, eQ);

  // Total energy is (nearly) conserved for the resolved mode.
  const double total0 = solver.energy();
  solver.run(steps, dt);
  EXPECT_NEAR(solver.energy(), total0, total0 * 1e-4);
}

TEST(CavityMode, AnisotropicElementsStillAccurate) {
  // Stretch the mesh: 4x1x1 elements over a 1 x 1 x 0.25 box — different
  // per-direction Jacobians exercise the rx/ry/rz factors.
  BoxMesh cavity(4, 2, 1, 1.0, 1.0, 0.25, Boundary::kPec);
  MaxwellSolver solver(cavity, 6);
  auto mode = cavityTmMode();
  solver.setSolution(mode, 0.0);
  const double dt = 0.5 * solver.stableDt();
  solver.run(60, dt);
  EXPECT_LT(solver.maxError(mode), 2e-3);
}

TEST(Integrators, ClassicalRk4AdvancesClockAndStepCount) {
  MaxwellSolver solver(periodicBox(2), 3);
  solver.setSolution(planeWaveX(1.0), 0.0);
  solver.stepClassicalRk4(0.001);
  solver.stepClassicalRk4(0.001);
  EXPECT_DOUBLE_EQ(solver.time(), 0.002);
  EXPECT_EQ(solver.stepsTaken(), 2u);
}

}  // namespace
}  // namespace bgckpt::nekcem
