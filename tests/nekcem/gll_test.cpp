#include "nekcem/gll.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace bgckpt::nekcem {
namespace {

TEST(Legendre, KnownValues) {
  EXPECT_DOUBLE_EQ(legendre(0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(legendre(1, 0.5), 0.5);
  EXPECT_NEAR(legendre(2, 0.5), 0.5 * (3 * 0.25 - 1), 1e-15);
  EXPECT_DOUBLE_EQ(legendre(5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(legendre(5, -1.0), -1.0);
}

TEST(Legendre, DerivativeMatchesFiniteDifference) {
  for (int n : {2, 4, 7}) {
    for (double x : {-0.8, -0.3, 0.1, 0.6}) {
      const double h = 1e-6;
      const double fd = (legendre(n, x + h) - legendre(n, x - h)) / (2 * h);
      EXPECT_NEAR(legendreDeriv(n, x), fd, 1e-7) << "n=" << n << " x=" << x;
    }
  }
}

TEST(GllBasis, RejectsOrderZero) {
  EXPECT_THROW(GllBasis(0), std::invalid_argument);
}

TEST(GllBasis, OrderTwoKnownNodesAndWeights) {
  GllBasis b(2);
  ASSERT_EQ(b.numPoints(), 3);
  EXPECT_DOUBLE_EQ(b.node(0), -1.0);
  EXPECT_NEAR(b.node(1), 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(b.node(2), 1.0);
  EXPECT_NEAR(b.weight(0), 1.0 / 3.0, 1e-14);
  EXPECT_NEAR(b.weight(1), 4.0 / 3.0, 1e-14);
  EXPECT_NEAR(b.weight(2), 1.0 / 3.0, 1e-14);
}

TEST(GllBasis, OrderThreeKnownInteriorNodes) {
  GllBasis b(3);
  const double expected = std::sqrt(1.0 / 5.0);
  EXPECT_NEAR(b.node(1), -expected, 1e-13);
  EXPECT_NEAR(b.node(2), expected, 1e-13);
  EXPECT_NEAR(b.weight(1), 5.0 / 6.0, 1e-13);
}

class GllOrder : public ::testing::TestWithParam<int> {};

TEST_P(GllOrder, NodesSortedSymmetricInUnitInterval) {
  GllBasis b(GetParam());
  const auto& x = b.nodes();
  EXPECT_DOUBLE_EQ(x.front(), -1.0);
  EXPECT_DOUBLE_EQ(x.back(), 1.0);
  for (std::size_t i = 1; i < x.size(); ++i) EXPECT_LT(x[i - 1], x[i]);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], -x[x.size() - 1 - i], 1e-12);
}

TEST_P(GllOrder, WeightsPositiveAndSumToTwo) {
  GllBasis b(GetParam());
  double sum = 0;
  for (double w : b.weights()) {
    EXPECT_GT(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 2.0, 1e-12);
}

TEST_P(GllOrder, QuadratureExactThrough2Nminus1) {
  const int n = GetParam();
  GllBasis b(n);
  for (int p = 0; p <= 2 * n - 1; ++p) {
    double integral = 0;
    for (int i = 0; i < b.numPoints(); ++i)
      integral += b.weight(i) * std::pow(b.node(i), p);
    const double exact = (p % 2 == 0) ? 2.0 / (p + 1) : 0.0;
    EXPECT_NEAR(integral, exact, 1e-11) << "order " << n << " monomial " << p;
  }
}

TEST_P(GllOrder, DiffMatrixExactForPolynomialsThroughN) {
  const int n = GetParam();
  GllBasis b(n);
  for (int p = 0; p <= n; ++p) {
    for (int i = 0; i < b.numPoints(); ++i) {
      double d = 0;
      for (int j = 0; j < b.numPoints(); ++j)
        d += b.diff(i, j) * std::pow(b.node(j), p);
      const double exact = p == 0 ? 0.0 : p * std::pow(b.node(i), p - 1);
      EXPECT_NEAR(d, exact, 1e-9 * std::max(1.0, std::abs(exact)))
          << "order " << n << " monomial " << p << " node " << i;
    }
  }
}

TEST_P(GllOrder, DiffMatrixRowsSumToZero) {
  // Derivative of the constant function vanishes.
  GllBasis b(GetParam());
  for (int i = 0; i < b.numPoints(); ++i) {
    double sum = 0;
    for (int j = 0; j < b.numPoints(); ++j) sum += b.diff(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GllOrder,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 10, 15));

}  // namespace
}  // namespace bgckpt::nekcem
