// Edge cases and lifetime semantics of the DES kernel.
#include <gtest/gtest.h>

#include "simcore/channel.hpp"
#include "simcore/resource.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/sync.hpp"

namespace bgckpt::sim {
namespace {

TEST(EdgeCases, ZeroDelayEventsPreserveProgramOrder) {
  Scheduler sched;
  std::vector<int> order;
  auto body = [](Scheduler& s, std::vector<int>& out, int id) -> Task<> {
    co_await s.delay(0.0);
    out.push_back(id);
    co_await s.delay(0.0);
    out.push_back(id + 100);
  };
  for (int i = 0; i < 3; ++i) sched.spawn(body(sched, order, i));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 100, 101, 102}));
}

TEST(EdgeCases, RunTwiceContinuesWhereItStopped) {
  Scheduler sched;
  int fired = 0;
  sched.scheduleCall(1.0, [&] { ++fired; });
  sched.run();
  EXPECT_EQ(fired, 1);
  sched.scheduleCall(1.0, [&] { ++fired; });  // at now=1 -> fires at t=2
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sched.now(), 2.0);
}

TEST(EdgeCases, ChannelCapacityOneBehavesLikeRendezvousBuffer) {
  Scheduler sched;
  Channel<int> ch(sched, 1);
  std::vector<double> sendTimes;
  auto producer = [](Scheduler& s, Channel<int>& c,
                     std::vector<double>& out) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await c.send(i);
      out.push_back(s.now());
    }
  };
  auto consumer = [](Scheduler& s, Channel<int>& c) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(1.0);
      auto v = co_await c.recv();
      EXPECT_EQ(v, i);
    }
  };
  sched.spawn(producer(sched, ch, sendTimes));
  sched.spawn(consumer(sched, ch));
  sched.run();
  ASSERT_EQ(sendTimes.size(), 3u);
  EXPECT_DOUBLE_EQ(sendTimes[0], 0.0);  // buffered immediately
  EXPECT_GE(sendTimes[1], 1.0);         // waits for the first drain
  EXPECT_GE(sendTimes[2], 2.0);
  EXPECT_EQ(sched.liveRoots(), 0u);
}

TEST(EdgeCases, ScopedTokensMoveTransfersOwnership) {
  Scheduler sched;
  Resource res(sched, 2);
  auto body = [](Resource& r) -> Task<> {
    co_await r.acquire(2);
    ScopedTokens a(r, 2);
    {
      ScopedTokens b(std::move(a));
      EXPECT_EQ(r.available(), 0);
    }  // b releases
    EXPECT_EQ(r.available(), 2);
    // a must not double-release on destruction.
  };
  sched.spawn(body(res));
  sched.run();
  EXPECT_EQ(res.available(), 2);
}

TEST(EdgeCases, ScopedTokensMoveAssignReleasesOld) {
  Scheduler sched;
  Resource r1(sched, 1), r2(sched, 1);
  auto body = [](Resource& a, Resource& b) -> Task<> {
    co_await a.acquire(1);
    co_await b.acquire(1);
    ScopedTokens holdA(a, 1);
    ScopedTokens holdB(b, 1);
    holdA = std::move(holdB);  // must release r1's token immediately
    EXPECT_EQ(a.available(), 1);
    EXPECT_EQ(b.available(), 0);
  };
  sched.spawn(body(r1, r2));
  sched.run();
  EXPECT_EQ(r1.available(), 1);
  EXPECT_EQ(r2.available(), 1);
}

TEST(EdgeCases, GateFiredBeforeAnyWaiterIsCheap) {
  Scheduler sched;
  Gate gate(sched);
  gate.fire();
  int passes = 0;
  auto body = [](Gate& g, int& n) -> Task<> {
    for (int i = 0; i < 100; ++i) co_await g.wait();
    ++n;
  };
  sched.spawn(body(gate, passes));
  const auto events = sched.run();
  EXPECT_EQ(passes, 1);
  // Post-fire waits complete synchronously: only the spawn event runs.
  EXPECT_LE(events, 3u);
}

TEST(EdgeCases, ManyWaitersOnOneGateAllReleased) {
  Scheduler sched;
  Gate gate(sched);
  int released = 0;
  auto body = [](Gate& g, int& n) -> Task<> {
    co_await g.wait();
    ++n;
  };
  for (int i = 0; i < 1000; ++i) sched.spawn(body(gate, released));
  sched.scheduleCall(5.0, [&gate] { gate.fire(); });
  sched.run();
  EXPECT_EQ(released, 1000);
}

TEST(EdgeCases, RunUntilMidCoroutineResumesCleanly) {
  Scheduler sched;
  std::vector<double> marks;
  auto body = [](Scheduler& s, std::vector<double>& out) -> Task<> {
    for (int i = 0; i < 5; ++i) {
      co_await s.delay(1.0);
      out.push_back(s.now());
    }
  };
  sched.spawn(body(sched, marks));
  sched.runUntil(2.5);
  EXPECT_EQ(marks.size(), 2u);
  sched.run();
  EXPECT_EQ(marks.size(), 5u);
  EXPECT_DOUBLE_EQ(marks.back(), 5.0);
}

}  // namespace
}  // namespace bgckpt::sim
