#include "simcore/shard.hpp"

#include <gtest/gtest.h>

#include "simcore/mailbox.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/sync.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

namespace bgckpt::sim {
namespace {

// ---------------------------------------------------------------------------
// Scheduler extensions the shard group builds on.

TEST(SchedulerWindow, PeekNextTimeIsInfinityWhenEmpty) {
  Scheduler sched;
  EXPECT_EQ(sched.peekNextTime(), std::numeric_limits<SimTime>::infinity());
}

TEST(SchedulerWindow, PeekNextTimeSeesEarliestAbsoluteTime) {
  Scheduler sched;
  sched.scheduleCall(3.0, [] {});
  sched.scheduleCall(1.5, [] {});
  EXPECT_DOUBLE_EQ(sched.peekNextTime(), 1.5);
}

TEST(SchedulerWindow, RunBeforeIsStrictlyExclusive) {
  Scheduler sched;
  int ran = 0;
  sched.scheduleCall(1.0, [&] { ++ran; });
  sched.scheduleCall(2.0, [&] { ++ran; });
  EXPECT_EQ(sched.runBefore(1.0), 0u);  // horizon == event time: not yet
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(sched.runBefore(2.0), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(sched.now(), 1.0);
  EXPECT_EQ(sched.runBefore(100.0), 1u);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(sched.peekNextTime(),
                   std::numeric_limits<SimTime>::infinity());
}

TEST(SchedulerWindow, RunBeforeWorksOnLegacyQueue) {
  Scheduler::Config cfg;
  cfg.legacyQueue = true;
  Scheduler sched(cfg);
  std::vector<int> order;
  sched.scheduleCall(2.0, [&] { order.push_back(2); });
  sched.scheduleCall(1.0, [&] { order.push_back(1); });
  EXPECT_EQ(sched.runBefore(1.5), 1u);
  EXPECT_EQ(sched.runBefore(2.5), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerWindow, ScheduleCallAtUsesAbsoluteTime) {
  Scheduler sched;
  SimTime saw = -1.0;
  sched.scheduleCall(1.0, [&] {
    sched.scheduleCallAt(4.0, [&] { saw = sched.now(); }, WakeEdge{});
  });
  sched.run();
  EXPECT_DOUBLE_EQ(saw, 4.0);
}

TEST(SchedulerWindowDeathTest, ScheduleCallAtRejectsThePast) {
  Scheduler sched;
  sched.scheduleCall(2.0, [&] {
    sched.scheduleCallAt(1.0, [] {}, WakeEdge{});
  });
  EXPECT_DEATH(sched.run(), "scheduleCallAt into the past");
}

// ---------------------------------------------------------------------------
// Mailbox layer.

TEST(SpscRing, RoundsCapacityUpToPowerOfTwo) {
  SpscRing<int> ring(3);
  EXPECT_EQ(ring.capacity(), 4u);
  SpscRing<int> one(1);
  EXPECT_EQ(one.capacity(), 1u);
}

TEST(SpscRing, PushPopPreservesFifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.tryPush(int{i}));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.tryPop(out));
}

TEST(SpscRing, RejectsPushWhenFull) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.tryPush(1));
  EXPECT_TRUE(ring.tryPush(2));
  EXPECT_FALSE(ring.tryPush(3));
  int out = 0;
  EXPECT_TRUE(ring.tryPop(out));
  EXPECT_TRUE(ring.tryPush(3));  // slot freed
}

TEST(Mailbox, OverflowValveLosesNothing) {
  Mailbox box(2);  // ring capacity 2; the rest must spill
  for (int i = 0; i < 10; ++i)
    box.push(RemoteEvent{static_cast<SimTime>(i), 0, static_cast<std::uint64_t>(i),
                         [] {}});
  std::vector<RemoteEvent> out;
  box.drainInto(out);
  EXPECT_EQ(out.size(), 10u);
  EXPECT_GT(box.overflowed(), 0u);
  out.clear();
  box.drainInto(out);  // drained means drained
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// ShardGroup: the synthetic partition-ring workload.
//
// K logical partitions mapped p % S onto S shards. Partition p starts one
// token at t=1; a token at partition p, round r, logs (now, r) and forwards
// to partition (p+1) % K after exactly `lookahead` simulated seconds, with
// the model-level merge key (source partition, round) — so the observable
// behaviour is a function of the model only, whatever the shard count or
// thread count. Every time step makes all K partitions fire at the same
// simulated instant, which forces equal-time cross-shard merge collisions
// on every shard whenever S < K.

struct TraceEntry {
  SimTime when = 0.0;
  int partition = -1;
  int round = -1;
  bool operator==(const TraceEntry&) const = default;
};

struct RingRun {
  std::vector<std::vector<TraceEntry>> byPartition;  // per partition
  std::vector<std::vector<TraceEntry>> byShard;      // per-shard dispatch log
  ShardGroup::Stats stats;
};

struct RingDriver {
  ShardGroup* group = nullptr;
  int partitions = 0;
  int rounds = 0;
  Duration hop = 0.0;
  RingRun* out = nullptr;

  unsigned shardOf(int p) const {
    return static_cast<unsigned>(p) % group->shards();
  }

  void fire(int p, int round) {
    const unsigned s = shardOf(p);
    const TraceEntry entry{group->shard(s).now(), p, round};
    out->byPartition[static_cast<std::size_t>(p)].push_back(entry);
    out->byShard[s].push_back(entry);
    if (round + 1 >= rounds) return;
    const int q = (p + 1) % partitions;
    group->send(s, shardOf(q), hop, static_cast<std::uint32_t>(p),
                static_cast<std::uint64_t>(round),
                [this, q, round] { fire(q, round + 1); });
  }
};

RingRun runPartitionRing(unsigned shards, unsigned threads, int partitions,
                         int rounds, Duration lookahead,
                         std::size_t mailboxCapacity = 4096) {
  ShardGroup::Config cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.lookahead = lookahead;
  cfg.mailboxCapacity = mailboxCapacity;
  ShardGroup group(cfg);
  RingRun run;
  run.byPartition.resize(static_cast<std::size_t>(partitions));
  run.byShard.resize(group.shards());
  auto driver = std::make_shared<RingDriver>(
      RingDriver{&group, partitions, rounds, lookahead, &run});
  for (int p = 0; p < partitions; ++p)
    group.postSetup(driver->shardOf(p), [driver, p](Scheduler& sched) {
      sched.scheduleCall(1.0, [driver, p] { driver->fire(p, 0); });
    });
  run.stats = group.run();
  return run;
}

TEST(ShardGroup, SingleShardRunsToCompletion) {
  const RingRun run = runPartitionRing(1, 1, 4, 8, 0.5);
  EXPECT_EQ(run.stats.events, 4u * 8u);
  EXPECT_EQ(run.stats.messages, 4u * 7u);  // every hop after round 0
  EXPECT_EQ(run.stats.windows, 8u);        // one time step per window
  EXPECT_EQ(run.stats.overflow, 0u);
  for (const auto& trace : run.byPartition) EXPECT_EQ(trace.size(), 8u);
  // The per-shard breakdown covers the whole run: one shard holds all of it.
  ASSERT_EQ(run.stats.shardEvents.size(), 1u);
  EXPECT_EQ(run.stats.shardEvents[0], run.stats.events);
  ASSERT_EQ(run.stats.shardDelivered.size(), 1u);
  EXPECT_EQ(run.stats.shardDelivered[0], run.stats.messages);
}

TEST(ShardGroup, ObservableTraceInvariantAcrossShardCounts) {
  const RingRun ref = runPartitionRing(1, 1, 8, 12, 0.25);
  for (unsigned shards : {2u, 4u, 8u}) {
    const RingRun run = runPartitionRing(shards, 0, 8, 12, 0.25);
    EXPECT_EQ(run.byPartition, ref.byPartition) << shards << " shards";
    EXPECT_EQ(run.stats.events, ref.stats.events) << shards << " shards";
    EXPECT_EQ(run.stats.messages, ref.stats.messages) << shards << " shards";
    EXPECT_EQ(run.stats.windows, ref.stats.windows) << shards << " shards";
  }
}

TEST(ShardGroup, ThreadedExecutionBitIdenticalToCooperative) {
  // Same shard topology, varying worker counts: the per-shard dispatch logs
  // (not just per-partition views) must match the threads=1 reference
  // exactly — this is the determinism contract the fig-bench byte-identity
  // test relies on.
  const RingRun ref = runPartitionRing(4, 1, 8, 16, 0.125);
  for (unsigned threads : {2u, 4u}) {
    const RingRun run = runPartitionRing(4, threads, 8, 16, 0.125);
    EXPECT_EQ(run.byShard, ref.byShard) << threads << " threads";
    EXPECT_EQ(run.byPartition, ref.byPartition) << threads << " threads";
    EXPECT_EQ(run.stats.windows, ref.stats.windows) << threads << " threads";
    // The per-shard breakdown is part of the determinism contract too.
    EXPECT_EQ(run.stats.shardEvents, ref.stats.shardEvents)
        << threads << " threads";
    EXPECT_EQ(run.stats.shardDelivered, ref.stats.shardDelivered)
        << threads << " threads";
  }
}

void printShardStats(const char* tag, const ShardGroup::Stats& stats) {
  std::printf("[%s] per-shard: ", tag);
  for (std::size_t s = 0; s < stats.shardEvents.size(); ++s)
    std::printf("s%zu ev=%llu dl=%llu  ", s,
                static_cast<unsigned long long>(stats.shardEvents[s]),
                static_cast<unsigned long long>(stats.shardDelivered[s]));
  std::printf("\n[%s] channels: ", tag);
  for (const auto& ch : stats.channels)
    std::printf("%u->%u spill=%llu hw=%zu  ", ch.src, ch.dst,
                static_cast<unsigned long long>(ch.overflow),
                ch.ringHighWater);
  std::printf("\n");
}

TEST(ShardGroup, StatsBreakDownPerShardAndPerChannel) {
  const RingRun run = runPartitionRing(4, 1, 8, 16, 0.125);
  printShardStats("ring 4x1", run.stats);
  // The breakdowns must re-sum to the aggregates.
  std::uint64_t events = 0, delivered = 0;
  ASSERT_EQ(run.stats.shardEvents.size(), 4u);
  for (std::uint64_t e : run.stats.shardEvents) events += e;
  for (std::uint64_t d : run.stats.shardDelivered) delivered += d;
  EXPECT_EQ(events, run.stats.events);
  EXPECT_EQ(delivered, run.stats.messages);
  // 8 partitions on 4 shards hop p -> p+1, so every (s, s+1 mod 4) channel
  // carries traffic; channels are reported in deterministic (src, dst)
  // order with their ring high-water marks.
  ASSERT_FALSE(run.stats.channels.empty());
  unsigned lastSrc = 0, lastDst = 0;
  bool first = true;
  std::uint64_t channelSpills = 0;
  for (const auto& ch : run.stats.channels) {
    EXPECT_EQ(ch.dst, (ch.src + 1) % 4) << "ring topology";
    EXPECT_GT(ch.ringHighWater, 0u);
    if (!first) {
      EXPECT_TRUE(ch.src > lastSrc || (ch.src == lastSrc && ch.dst > lastDst))
          << "channels not sorted";
    }
    first = false;
    lastSrc = ch.src;
    lastDst = ch.dst;
    channelSpills += ch.overflow;
  }
  EXPECT_EQ(channelSpills, run.stats.overflow);
}

TEST(ShardGroup, TinyMailboxSpillsButStaysCorrect) {
  const RingRun ref = runPartitionRing(2, 0, 8, 10, 0.5);
  const RingRun tiny = runPartitionRing(2, 0, 8, 10, 0.5, /*mailbox=*/1);
  printShardStats("tiny mailbox", tiny.stats);
  EXPECT_GT(tiny.stats.overflow, 0u);
  EXPECT_EQ(tiny.byShard, ref.byShard);
  EXPECT_EQ(tiny.byPartition, ref.byPartition);
  // The spills localize to the per-pair channels, and a capacity-1 ring
  // reports occupancy above its capacity via the overflow queue.
  std::uint64_t channelSpills = 0;
  for (const auto& ch : tiny.stats.channels) {
    channelSpills += ch.overflow;
    if (ch.overflow > 0) {
      EXPECT_GT(ch.ringHighWater, 1u);
    }
  }
  EXPECT_EQ(channelSpills, tiny.stats.overflow);
  // The roomy run carries the same traffic with no spill anywhere.
  for (const auto& ch : ref.stats.channels) EXPECT_EQ(ch.overflow, 0u);
}

TEST(ShardGroup, CoroutineRootsRunOnTheirOwningWorker) {
  ShardGroup::Config cfg;
  cfg.shards = 4;
  cfg.threads = 2;
  cfg.lookahead = 1.0;
  ShardGroup group(cfg);
  std::atomic<int> done{0};
  for (unsigned i = 0; i < 4; ++i)
    group.postSetup(i, [&done, i](Scheduler& sched) {
      auto body = [](Scheduler& s, std::atomic<int>& d,
                     unsigned laps) -> Task<> {
        for (unsigned k = 0; k < laps; ++k) co_await s.delay(0.5);
        d.fetch_add(1, std::memory_order_relaxed);
      };
      sched.spawn(body(sched, done, 3 + i));
    });
  const ShardGroup::Stats stats = group.run();
  EXPECT_EQ(done.load(), 4);
  EXPECT_GT(stats.events, 0u);
}

TEST(ShardGroup, PropagatesModelExceptionFromAnyShard) {
  ShardGroup::Config cfg;
  cfg.shards = 2;
  cfg.threads = 2;
  cfg.lookahead = 1.0;
  ShardGroup group(cfg);
  group.postSetup(0, [](Scheduler& sched) { sched.scheduleCall(5.0, [] {}); });
  group.postSetup(1, [](Scheduler& sched) {
    sched.scheduleCall(1.0, [] { throw std::runtime_error("shard boom"); });
  });
  EXPECT_THROW(group.run(), std::runtime_error);
}

TEST(ShardGroup, DetectsCrossShardDeadlock) {
  ShardGroup::Config cfg;
  cfg.shards = 2;
  cfg.lookahead = 1.0;
  ShardGroup group(cfg);
  group.postSetup(0, [](Scheduler& sched) {
    auto body = [](Scheduler& s) -> Task<> {
      Gate never(s);
      co_await never.wait();  // nobody will fire it
    };
    sched.spawn(body(sched));
  });
  EXPECT_THROW(group.run(), SimulationError);
}

TEST(ShardGroup, RejectsZeroLookaheadWithMultipleShards) {
  ShardGroup::Config cfg;
  cfg.shards = 2;
  cfg.lookahead = 0.0;
  EXPECT_THROW(ShardGroup group(cfg), SimulationError);
}

TEST(ShardGroupDeathTest, RejectsSendBelowLookahead) {
  ShardGroup::Config cfg;
  cfg.shards = 2;
  cfg.lookahead = 1.0;
  ShardGroup group(cfg);
  // srclint:allow(shard-send-lookahead): this death test exists to prove
  // the runtime SIM_CHECK rejects a sub-lookahead delay.
  EXPECT_DEATH(group.send(0, 1, 0.25, [] {}),
               "below the conservative lookahead");
}

// ---------------------------------------------------------------------------
// parallelFor.

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<int> hits(257, 0);
  parallelFor(hits.size(), 4,
              [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, InlineWhenSingleThreaded) {
  std::vector<std::size_t> order;
  parallelFor(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroJobsIsANoop) {
  bool touched = false;
  parallelFor(0, 8, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RethrowsLowestIndexException) {
  try {
    parallelFor(16, 4, [](std::size_t i) {
      if (i == 3 || i == 11) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
}

}  // namespace
}  // namespace bgckpt::sim
