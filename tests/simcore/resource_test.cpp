#include "simcore/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bgckpt::sim {
namespace {

TEST(Resource, ImmediateAcquireWhenAvailable) {
  Scheduler sched;
  Resource res(sched, 4);
  bool done = false;
  auto body = [&]() -> Task<> {
    co_await res.acquire(3);
    EXPECT_EQ(res.available(), 1);
    res.release(3);
    done = true;
  };
  sched.spawn(body());
  sched.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(res.available(), 4);
}

TEST(Resource, AcquireSuspendsUntilRelease) {
  Scheduler sched;
  Resource res(sched, 1);
  std::vector<double> acquireTimes;
  auto body = [](Scheduler& s, Resource& r, std::vector<double>& out) -> Task<> {
    co_await r.acquire();
    out.push_back(s.now());
    co_await s.delay(2.0);
    r.release();
  };
  for (int i = 0; i < 3; ++i) sched.spawn(body(sched, res, acquireTimes));
  sched.run();
  ASSERT_EQ(acquireTimes.size(), 3u);
  EXPECT_DOUBLE_EQ(acquireTimes[0], 0.0);
  EXPECT_DOUBLE_EQ(acquireTimes[1], 2.0);
  EXPECT_DOUBLE_EQ(acquireTimes[2], 4.0);
}

TEST(Resource, FifoNoBypassByLaterSmallRequest) {
  Scheduler sched;
  Resource res(sched, 4);
  std::vector<int> order;
  // P0 takes everything; P1 asks for 3 (must wait); P2 asks for 1 and could
  // fit after P0 partially releases, but FIFO discipline holds it behind P1.
  auto p0 = [&]() -> Task<> {
    co_await res.acquire(4);
    co_await sched.delay(1.0);
    res.release(1);  // 1 token free; P1 (head) still cannot run
    co_await sched.delay(1.0);
    res.release(3);
    order.push_back(0);
  };
  auto p1 = [&]() -> Task<> {
    co_await sched.delay(0.1);
    co_await res.acquire(3);
    order.push_back(1);
    res.release(3);
  };
  auto p2 = [&]() -> Task<> {
    co_await sched.delay(0.2);
    co_await res.acquire(1);
    order.push_back(2);
    res.release(1);
  };
  sched.spawn(p0());
  sched.spawn(p1());
  sched.spawn(p2());
  sched.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);  // P1 admitted before P2 despite needing more
  EXPECT_EQ(order[2], 2);
}

TEST(Resource, FifoEvenWhenTokensFree) {
  Scheduler sched;
  Resource res(sched, 2);
  std::vector<int> order;
  auto holder = [&]() -> Task<> {
    co_await res.acquire(2);
    co_await sched.delay(1.0);
    res.release(2);
  };
  auto waiter = [&]() -> Task<> {
    co_await sched.delay(0.5);
    co_await res.acquire(2);
    order.push_back(1);
    res.release(2);
  };
  auto late = [&]() -> Task<> {
    co_await sched.delay(2.0);
    co_await res.acquire(1);
    order.push_back(2);
    res.release(1);
  };
  sched.spawn(holder());
  sched.spawn(waiter());
  sched.spawn(late());
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Resource, ScopedTokensReleaseOnScopeExit) {
  Scheduler sched;
  Resource res(sched, 2);
  auto body = [&]() -> Task<> {
    {
      co_await res.acquire(2);
      ScopedTokens hold(res, 2);
      EXPECT_EQ(res.available(), 0);
    }
    EXPECT_EQ(res.available(), 2);
  };
  sched.spawn(body());
  sched.run();
  EXPECT_EQ(sched.liveRoots(), 0u);
}

TEST(Resource, QueueLengthTracksWaiters) {
  Scheduler sched;
  Resource res(sched, 1);
  auto holder = [&]() -> Task<> {
    co_await res.acquire();
    co_await sched.delay(10.0);
    res.release();
  };
  sched.spawn(holder());
  auto w = [](Resource& r) -> Task<> {
    co_await r.acquire();
    r.release();
  };
  for (int i = 0; i < 5; ++i) sched.spawn(w(res));
  sched.runUntil(5.0);
  EXPECT_EQ(res.queueLength(), 5u);
  sched.run();
  EXPECT_EQ(res.queueLength(), 0u);
  EXPECT_EQ(sched.liveRoots(), 0u);
}

TEST(Mutex, ProvidesMutualExclusion) {
  Scheduler sched;
  Mutex mu(sched);
  int inside = 0;
  int maxInside = 0;
  auto body = [](Scheduler& s, Mutex& m, int& in, int& maxIn) -> Task<> {
    co_await m.lock();
    ++in;
    maxIn = std::max(maxIn, in);
    co_await s.delay(1.0);
    --in;
    m.unlock();
  };
  for (int i = 0; i < 8; ++i) sched.spawn(body(sched, mu, inside, maxInside));
  sched.run();
  EXPECT_EQ(maxInside, 1);
  EXPECT_DOUBLE_EQ(sched.now(), 8.0);
}

}  // namespace
}  // namespace bgckpt::sim
