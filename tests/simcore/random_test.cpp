#include "simcore/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace bgckpt::sim {
namespace {

TEST(RngStream, SameSeedSameName_BitIdentical) {
  RngStream a(42, "torus");
  RngStream b(42, "torus");
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(RngStream, DifferentNames_Decorrelated) {
  RngStream a(42, "torus");
  RngStream b(42, "disk");
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.nextU64() == b.nextU64()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(RngStream, DifferentIndices_Decorrelated) {
  RngStream a(42, "rank", 0);
  RngStream b(42, "rank", 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.nextU64() == b.nextU64()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(RngStream, Uniform01InRange) {
  RngStream rng(1, "u");
  for (int i = 0; i < 10000; ++i) {
    double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngStream, Uniform01MeanNearHalf) {
  RngStream rng(7, "mean");
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngStream, UniformIntCoversRange) {
  RngStream rng(3, "ui");
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.uniformInt(10)];
  for (int c : counts) EXPECT_GT(c, 700);  // each bucket near 1000
}

TEST(RngStream, ExponentialMeanConverges) {
  RngStream rng(5, "exp");
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngStream, NormalMomentsConverge) {
  RngStream rng(9, "norm");
  const int n = 100000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(10.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngStream, LognormalMedianConverges) {
  RngStream rng(11, "logn");
  const int n = 100001;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.lognormal(4.0, 0.5);
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[n / 2], 4.0, 0.1);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(RngStream, ChanceRespectsProbability) {
  RngStream rng(13, "coin");
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngStream, HashNameIsStable) {
  // Stream derivation must never change across refactors, or every
  // calibrated figure shifts. Pin the hash of a known string.
  EXPECT_EQ(hashName("gpfs"), hashName("gpfs"));
  EXPECT_NE(hashName("gpfs"), hashName("pvfs"));
}

}  // namespace
}  // namespace bgckpt::sim
