#include "simcore/sync.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bgckpt::sim {
namespace {

TEST(Gate, WaitersReleaseOnFire) {
  Scheduler sched;
  Gate gate(sched);
  std::vector<double> times;
  auto body = [](Scheduler& s, Gate& g, std::vector<double>& out) -> Task<> {
    co_await g.wait();
    out.push_back(s.now());
  };
  for (int i = 0; i < 3; ++i) sched.spawn(body(sched, gate, times));
  sched.scheduleCall(4.0, [&] { gate.fire(); });
  sched.run();
  ASSERT_EQ(times.size(), 3u);
  for (double t : times) EXPECT_DOUBLE_EQ(t, 4.0);
}

TEST(Gate, WaitAfterFireCompletesImmediately) {
  Scheduler sched;
  Gate gate(sched);
  gate.fire();
  double t = -1.0;
  auto body = [&]() -> Task<> {
    co_await sched.delay(2.0);
    co_await gate.wait();
    t = sched.now();
  };
  sched.spawn(body());
  sched.run();
  EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(Gate, DoubleFireIsIdempotent) {
  Scheduler sched;
  Gate gate(sched);
  gate.fire();
  gate.fire();
  EXPECT_TRUE(gate.fired());
}

TEST(Barrier, AllPartiesReleaseTogether) {
  Scheduler sched;
  Barrier bar(sched, 4);
  std::vector<double> times;
  auto body = [](Scheduler& s, Barrier& b, std::vector<double>& out,
                 int i) -> Task<> {
    co_await s.delay(static_cast<double>(i));
    co_await b.arriveAndWait();
    out.push_back(s.now());
  };
  for (int i = 0; i < 4; ++i) sched.spawn(body(sched, bar, times, i));
  sched.run();
  ASSERT_EQ(times.size(), 4u);
  for (double t : times) EXPECT_DOUBLE_EQ(t, 3.0);  // slowest arrival
}

TEST(Barrier, CyclicReuseAcrossRounds) {
  Scheduler sched;
  constexpr int kParties = 3;
  constexpr int kRounds = 5;
  Barrier bar(sched, kParties);
  std::vector<int> roundsAt;  // completed round count per release
  auto body = [](Scheduler& s, Barrier& b, std::vector<int>& out,
                 int p) -> Task<> {
    for (int r = 0; r < kRounds; ++r) {
      co_await s.delay(static_cast<double>(p) * 0.1 + 0.01);
      co_await b.arriveAndWait();
      out.push_back(r);
    }
  };
  for (int p = 0; p < kParties; ++p) sched.spawn(body(sched, bar, roundsAt, p));
  sched.run();
  ASSERT_EQ(roundsAt.size(), static_cast<size_t>(kParties * kRounds));
  // Every party must have finished round r before any enters round r+1.
  for (int r = 0; r < kRounds; ++r)
    for (int p = 0; p < kParties; ++p)
      EXPECT_EQ(roundsAt[static_cast<size_t>(r * kParties + p)], r);
  EXPECT_EQ(sched.liveRoots(), 0u);
}

TEST(Barrier, SinglePartyNeverBlocks) {
  Scheduler sched;
  Barrier bar(sched, 1);
  int passes = 0;
  auto body = [&]() -> Task<> {
    for (int i = 0; i < 10; ++i) {
      co_await bar.arriveAndWait();
      ++passes;
    }
  };
  sched.spawn(body());
  sched.run();
  EXPECT_EQ(passes, 10);
}

TEST(WaitGroup, JoinsAllWorkers) {
  Scheduler sched;
  WaitGroup wg(sched);
  double joinTime = -1.0;
  auto worker = [](Scheduler& s, WaitGroup& w, int i) -> Task<> {
    co_await s.delay(static_cast<double>(i));
    w.done();
  };
  for (int i = 1; i <= 4; ++i) {
    wg.add();
    sched.spawn(worker(sched, wg, i));
  }
  auto joiner = [&]() -> Task<> {
    co_await wg.wait();
    joinTime = sched.now();
  };
  sched.spawn(joiner());
  sched.run();
  EXPECT_DOUBLE_EQ(joinTime, 4.0);
}

TEST(WaitGroup, WaitWithNoWorkCompletesImmediately) {
  Scheduler sched;
  WaitGroup wg(sched);
  bool done = false;
  auto body = [&]() -> Task<> {
    co_await wg.wait();
    done = true;
  };
  sched.spawn(body());
  sched.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace bgckpt::sim
