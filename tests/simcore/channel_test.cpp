#include "simcore/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bgckpt::sim {
namespace {

TEST(Channel, PushThenRecvImmediate) {
  Scheduler sched;
  Channel<int> ch(sched);
  ch.push(1);
  ch.push(2);
  std::vector<int> got;
  auto reader = [&]() -> Task<> {
    got.push_back(co_await ch.recv());
    got.push_back(co_await ch.recv());
  };
  sched.spawn(reader());
  sched.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Channel, RecvSuspendsUntilPush) {
  Scheduler sched;
  Channel<int> ch(sched);
  double recvTime = -1.0;
  int value = 0;
  auto reader = [&]() -> Task<> {
    value = co_await ch.recv();
    recvTime = sched.now();
  };
  auto writer = [&]() -> Task<> {
    co_await sched.delay(3.0);
    ch.push(99);
  };
  sched.spawn(reader());
  sched.spawn(writer());
  sched.run();
  EXPECT_EQ(value, 99);
  EXPECT_DOUBLE_EQ(recvTime, 3.0);
  EXPECT_EQ(sched.liveRoots(), 0u);
}

TEST(Channel, FifoOrderManyItems) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::vector<int> got;
  auto reader = [&]() -> Task<> {
    for (int i = 0; i < 100; ++i) got.push_back(co_await ch.recv());
  };
  auto writer = [&]() -> Task<> {
    for (int i = 0; i < 100; ++i) {
      ch.push(i);
      if (i % 7 == 0) co_await sched.delay(0.1);
    }
  };
  sched.spawn(reader());
  sched.spawn(writer());
  sched.run();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Channel, MultipleReceiversServedInArrivalOrder) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::vector<std::pair<int, int>> got;  // (reader, value)
  auto reader = [](Channel<int>& c, std::vector<std::pair<int, int>>& out,
                   int r) -> Task<> {
    int v = co_await c.recv();
    out.emplace_back(r, v);
  };
  for (int r = 0; r < 3; ++r) sched.spawn(reader(ch, got, r));
  auto writer = [&]() -> Task<> {
    co_await sched.delay(1.0);
    ch.push(10);
    ch.push(20);
    ch.push(30);
  };
  sched.spawn(writer());
  sched.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<int, int>(0, 10)));
  EXPECT_EQ(got[1], (std::pair<int, int>(1, 20)));
  EXPECT_EQ(got[2], (std::pair<int, int>(2, 30)));
}

TEST(Channel, BoundedSendSuspendsWhenFull) {
  Scheduler sched;
  Channel<int> ch(sched, 2);
  std::vector<double> sendTimes;
  auto writer = [&]() -> Task<> {
    for (int i = 0; i < 4; ++i) {
      co_await ch.send(i);
      sendTimes.push_back(sched.now());
    }
  };
  auto reader = [&]() -> Task<> {
    co_await sched.delay(5.0);
    for (int i = 0; i < 4; ++i) {
      int v = co_await ch.recv();
      EXPECT_EQ(v, i);
      co_await sched.delay(1.0);
    }
  };
  sched.spawn(writer());
  sched.spawn(reader());
  sched.run();
  ASSERT_EQ(sendTimes.size(), 4u);
  // First two sends fit the buffer at t=0; the rest wait for drains.
  EXPECT_DOUBLE_EQ(sendTimes[0], 0.0);
  EXPECT_DOUBLE_EQ(sendTimes[1], 0.0);
  EXPECT_GE(sendTimes[2], 5.0);
  EXPECT_GE(sendTimes[3], sendTimes[2]);
  EXPECT_EQ(sched.liveRoots(), 0u);
}

TEST(Channel, SenderWokenByWaitingReceiver) {
  Scheduler sched;
  Channel<int> ch(sched, 1);
  // Fill the buffer, suspend a second sender, then have a receiver drain:
  // both items must arrive.
  std::vector<int> got;
  auto writer = [&]() -> Task<> {
    co_await ch.send(1);
    co_await ch.send(2);
  };
  auto reader = [&]() -> Task<> {
    co_await sched.delay(1.0);
    got.push_back(co_await ch.recv());
    got.push_back(co_await ch.recv());
  };
  sched.spawn(writer());
  sched.spawn(reader());
  sched.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.liveRoots(), 0u);
}

TEST(Channel, TryRecvEmptyAndNonEmpty) {
  Scheduler sched;
  Channel<int> ch(sched);
  EXPECT_FALSE(ch.tryRecv().has_value());
  ch.push(5);
  auto v = ch.tryRecv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, MoveOnlyPayload) {
  Scheduler sched;
  Channel<std::unique_ptr<int>> ch(sched);
  std::unique_ptr<int> got;
  auto reader = [&]() -> Task<> { got = co_await ch.recv(); };
  sched.spawn(reader());
  ch.push(std::make_unique<int>(11));
  sched.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, 11);
}

}  // namespace
}  // namespace bgckpt::sim
