#include "simcore/units.hpp"

#include <gtest/gtest.h>

namespace bgckpt::sim {
namespace {

TEST(Units, Constants) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
  EXPECT_EQ(GB, 1000000000u);
}

TEST(Units, TransferTime) {
  // 1 GB at 1 GB/s is one second.
  EXPECT_DOUBLE_EQ(transferTime(GB, 1e9), 1.0);
  // 425 MB/s torus link moving 4 MiB.
  EXPECT_NEAR(transferTime(4 * MiB, 425e6), 0.00987, 1e-4);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(formatBytes(512), "512.00 B");
  EXPECT_EQ(formatBytes(1536), "1.50 KiB");
  EXPECT_EQ(formatBytes(156 * GiB), "156.00 GiB");
}

TEST(Units, FormatBandwidth) {
  EXPECT_EQ(formatBandwidth(13.2e9), "13.20 GB/s");
  EXPECT_EQ(formatBandwidth(251e12), "251.00 TB/s");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(formatDuration(12.345), "12.345 s");
  EXPECT_EQ(formatDuration(0.00456), "4.560 ms");
  EXPECT_EQ(formatDuration(7.8e-6), "7.800 us");
}

}  // namespace
}  // namespace bgckpt::sim
