#include "simcore/scheduler.hpp"

#include <gtest/gtest.h>

#include "simcore/sync.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace bgckpt::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), 0.0);
  EXPECT_EQ(sched.liveRoots(), 0u);
}

TEST(Scheduler, CallbacksRunInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.scheduleCall(3.0, [&] { order.push_back(3); });
  sched.scheduleCall(1.0, [&] { order.push_back(1); });
  sched.scheduleCall(2.0, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 3.0);
}

TEST(Scheduler, SameTimeEventsRunInInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i)
    sched.scheduleCall(1.0, [&, i] { order.push_back(i); });
  sched.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, NestedSchedulingAdvancesTime) {
  Scheduler sched;
  double sawTime = -1.0;
  sched.scheduleCall(1.0, [&] {
    sched.scheduleCall(2.5, [&] { sawTime = sched.now(); });
  });
  sched.run();
  EXPECT_DOUBLE_EQ(sawTime, 3.5);
}

TEST(Scheduler, SpawnedTaskRunsAndCompletes) {
  Scheduler sched;
  bool ran = false;
  auto body = [&]() -> Task<> {
    ran = true;
    co_return;
  };
  sched.spawn(body());
  EXPECT_EQ(sched.liveRoots(), 1u);
  sched.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.liveRoots(), 0u);
}

TEST(Scheduler, DelayAdvancesSimulatedTime) {
  Scheduler sched;
  std::vector<double> times;
  auto body = [&]() -> Task<> {
    times.push_back(sched.now());
    co_await sched.delay(1.5);
    times.push_back(sched.now());
    co_await sched.delay(0.25);
    times.push_back(sched.now());
  };
  sched.spawn(body());
  sched.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
  EXPECT_DOUBLE_EQ(times[2], 1.75);
}

TEST(Scheduler, NegativeDelayThrows) {
  Scheduler sched;
  EXPECT_THROW(sched.delay(-1.0), SimulationError);
}

TEST(Scheduler, ManyProcessesInterleaveDeterministically) {
  Scheduler sched;
  std::vector<std::pair<int, int>> log;  // (proc, step)
  // NB: coroutine lambdas must be capture-free (captures live in the closure
  // object, which dies before the coroutine runs); state goes in parameters.
  auto body = [](Scheduler& s, std::vector<std::pair<int, int>>& out,
                 int p) -> Task<> {
    for (int step = 0; step < 3; ++step) {
      out.emplace_back(p, step);
      co_await s.delay(1.0);
    }
  };
  for (int p = 0; p < 4; ++p) sched.spawn(body(sched, log, p));
  sched.run();
  ASSERT_EQ(log.size(), 12u);
  // Within each time step, processes run in spawn order.
  for (int s = 0; s < 3; ++s)
    for (int p = 0; p < 4; ++p)
      EXPECT_EQ(log[static_cast<size_t>(s * 4 + p)],
                (std::pair<int, int>(p, s)));
}

TEST(Scheduler, RootExceptionPropagatesFromRun) {
  Scheduler sched;
  auto body = [&]() -> Task<> {
    co_await sched.delay(1.0);
    throw std::runtime_error("boom");
  };
  sched.spawn(body());
  EXPECT_THROW(sched.run(), std::runtime_error);
}

TEST(Scheduler, ExceptionInChildPropagatesToParentTask) {
  Scheduler sched;
  std::string caught;
  auto child = []() -> Task<> {
    throw std::runtime_error("child-error");
    co_return;  // unreachable; makes this a coroutine
  };
  auto parent = [&]() -> Task<> {
    try {
      co_await child();
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
  };
  sched.spawn(parent());
  sched.run();
  EXPECT_EQ(caught, "child-error");
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int fired = 0;
  sched.scheduleCall(1.0, [&] { ++fired; });
  sched.scheduleCall(2.0, [&] { ++fired; });
  sched.scheduleCall(5.0, [&] { ++fired; });
  sched.runUntil(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sched.now(), 2.0);
  sched.run();
  EXPECT_EQ(fired, 3);
}

TEST(Scheduler, RunUntilAdvancesClockWhenIdle) {
  Scheduler sched;
  sched.runUntil(7.0);
  EXPECT_DOUBLE_EQ(sched.now(), 7.0);
}

TEST(Scheduler, EventsProcessedCounts) {
  Scheduler sched;
  for (int i = 0; i < 10; ++i) sched.scheduleCall(1.0, [] {});
  EXPECT_EQ(sched.run(), 10u);
  EXPECT_EQ(sched.eventsProcessed(), 10u);
}

TEST(Scheduler, DeadlockLeavesLiveRoots) {
  Scheduler sched;
  Gate* leak = nullptr;  // intentionally never fired
  Gate gate(sched);
  leak = &gate;
  auto body = [&]() -> Task<> { co_await leak->wait(); };
  sched.spawn(body());
  sched.run();
  EXPECT_EQ(sched.liveRoots(), 1u);  // stuck process detected
}

}  // namespace
}  // namespace bgckpt::sim
