#include "simcore/scheduler.hpp"

#include <gtest/gtest.h>

#include "simcore/arena.hpp"
#include "simcore/sync.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace bgckpt::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), 0.0);
  EXPECT_EQ(sched.liveRoots(), 0u);
}

TEST(Scheduler, CallbacksRunInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.scheduleCall(3.0, [&] { order.push_back(3); });
  sched.scheduleCall(1.0, [&] { order.push_back(1); });
  sched.scheduleCall(2.0, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 3.0);
}

TEST(Scheduler, SameTimeEventsRunInInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i)
    sched.scheduleCall(1.0, [&, i] { order.push_back(i); });
  sched.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, NestedSchedulingAdvancesTime) {
  Scheduler sched;
  double sawTime = -1.0;
  sched.scheduleCall(1.0, [&] {
    sched.scheduleCall(2.5, [&] { sawTime = sched.now(); });
  });
  sched.run();
  EXPECT_DOUBLE_EQ(sawTime, 3.5);
}

TEST(Scheduler, SpawnedTaskRunsAndCompletes) {
  Scheduler sched;
  bool ran = false;
  auto body = [&]() -> Task<> {
    ran = true;
    co_return;
  };
  sched.spawn(body());
  EXPECT_EQ(sched.liveRoots(), 1u);
  sched.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.liveRoots(), 0u);
}

TEST(Scheduler, DelayAdvancesSimulatedTime) {
  Scheduler sched;
  std::vector<double> times;
  auto body = [&]() -> Task<> {
    times.push_back(sched.now());
    co_await sched.delay(1.5);
    times.push_back(sched.now());
    co_await sched.delay(0.25);
    times.push_back(sched.now());
  };
  sched.spawn(body());
  sched.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
  EXPECT_DOUBLE_EQ(times[2], 1.75);
}

TEST(Scheduler, NegativeDelayThrows) {
  Scheduler sched;
  EXPECT_THROW(static_cast<void>(sched.delay(-1.0)), SimulationError);
}

TEST(Scheduler, ManyProcessesInterleaveDeterministically) {
  Scheduler sched;
  std::vector<std::pair<int, int>> log;  // (proc, step)
  // NB: coroutine lambdas must be capture-free (captures live in the closure
  // object, which dies before the coroutine runs); state goes in parameters.
  auto body = [](Scheduler& s, std::vector<std::pair<int, int>>& out,
                 int p) -> Task<> {
    for (int step = 0; step < 3; ++step) {
      out.emplace_back(p, step);
      co_await s.delay(1.0);
    }
  };
  for (int p = 0; p < 4; ++p) sched.spawn(body(sched, log, p));
  sched.run();
  ASSERT_EQ(log.size(), 12u);
  // Within each time step, processes run in spawn order.
  for (int s = 0; s < 3; ++s)
    for (int p = 0; p < 4; ++p)
      EXPECT_EQ(log[static_cast<size_t>(s * 4 + p)],
                (std::pair<int, int>(p, s)));
}

TEST(Scheduler, RootExceptionPropagatesFromRun) {
  Scheduler sched;
  auto body = [&]() -> Task<> {
    co_await sched.delay(1.0);
    throw std::runtime_error("boom");
  };
  sched.spawn(body());
  EXPECT_THROW(sched.run(), std::runtime_error);
}

TEST(Scheduler, ExceptionInChildPropagatesToParentTask) {
  Scheduler sched;
  std::string caught;
  auto child = []() -> Task<> {
    throw std::runtime_error("child-error");
    co_return;  // unreachable; makes this a coroutine
  };
  auto parent = [&]() -> Task<> {
    try {
      co_await child();
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
  };
  sched.spawn(parent());
  sched.run();
  EXPECT_EQ(caught, "child-error");
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int fired = 0;
  sched.scheduleCall(1.0, [&] { ++fired; });
  sched.scheduleCall(2.0, [&] { ++fired; });
  sched.scheduleCall(5.0, [&] { ++fired; });
  sched.runUntil(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sched.now(), 2.0);
  sched.run();
  EXPECT_EQ(fired, 3);
}

TEST(Scheduler, RunUntilAdvancesClockWhenIdle) {
  Scheduler sched;
  sched.runUntil(7.0);
  EXPECT_DOUBLE_EQ(sched.now(), 7.0);
}

TEST(Scheduler, EventsProcessedCounts) {
  Scheduler sched;
  for (int i = 0; i < 10; ++i) sched.scheduleCall(1.0, [] {});
  EXPECT_EQ(sched.run(), 10u);
  EXPECT_EQ(sched.eventsProcessed(), 10u);
}

TEST(Scheduler, DeadlockLeavesLiveRoots) {
  Scheduler sched;
  Gate* leak = nullptr;  // intentionally never fired
  Gate gate(sched);
  leak = &gate;
  auto body = [&]() -> Task<> { co_await leak->wait(); };
  sched.spawn(body());
  sched.run();
  EXPECT_EQ(sched.liveRoots(), 1u);  // stuck process detected
}

// --- tiered event queue vs. the legacy priority_queue reference ----------

Scheduler::Config queueConfig(bool legacy) {
  Scheduler::Config cfg;
  cfg.legacyQueue = legacy;
  return cfg;
}

/// Both queue implementations must dispatch an arbitrary schedule in the
/// exact same order: (time, insertion seq). Uses a deterministic LCG so the
/// "random" schedule is identical on both sides, with timestamps spanning
/// many near-window reseeds plus duplicate-time runs.
TEST(Scheduler, TieredQueueMatchesLegacyDispatchOrder) {
  auto runSide = [](bool legacy) {
    Scheduler sched(queueConfig(legacy));
    std::vector<int> order;
    std::uint64_t lcg = 12345;
    auto next = [&lcg] {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      return static_cast<double>(lcg >> 33);
    };
    for (int i = 0; i < 2000; ++i) {
      double t = next() / 1e6;
      if (i % 7 == 0) t = 42.0;        // duplicate-time runs
      if (i % 13 == 0) t = t * 1e4;    // far-tier outliers
      sched.scheduleCall(t, [&order, i] { order.push_back(i); });
    }
    // Events scheduled from inside callbacks (time has advanced) as well.
    sched.scheduleCall(1.0, [&] {
      for (int i = 2000; i < 2100; ++i)
        sched.scheduleCall(static_cast<double>(i % 11),
                           [&order, i] { order.push_back(i); });
    });
    sched.run();
    return order;
  };
  const auto tiered = runSide(false);
  const auto legacy = runSide(true);
  ASSERT_EQ(tiered.size(), 2100u);
  EXPECT_EQ(tiered, legacy);
}

TEST(Scheduler, RunUntilStopsAcrossQueueWindowBoundaries) {
  // Timestamps spread over nine decades force multiple far-pool refills;
  // runUntil must still stop exactly at the boundary regardless of which
  // tier the next event sits in.
  Scheduler sched;
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    const double t = 1e-6 * std::pow(10.0, i % 9) * (1 + i);
    sched.scheduleCall(t, [&fired] { ++fired; });
  }
  const int before = fired;
  sched.runUntil(1.0);
  EXPECT_DOUBLE_EQ(sched.now(), 1.0);
  EXPECT_GT(fired, before);
  const int atBoundary = fired;
  sched.run();
  EXPECT_GT(fired, atBoundary);
  EXPECT_EQ(fired, 200);
}

TEST(Scheduler, EventPoolIsRecycledNotGrown) {
  // A self-rescheduling process keeps exactly one event in flight; the
  // node pool must recycle that slot instead of growing per event.
  Scheduler sched;
  auto body = [](Scheduler& s) -> Task<> {
    for (int i = 0; i < 1000; ++i) co_await s.delay(1.0);
  };
  sched.spawn(body(sched));
  sched.run();
  EXPECT_GE(sched.eventsProcessed(), 1000u);
  EXPECT_LE(sched.eventPoolSize(), 8u);
}

TEST(Scheduler, ReserveDoesNotChangeBehaviour) {
  Scheduler sized(Scheduler::Config{1 << 16, false});
  Scheduler unsized;
  std::vector<int> a, b;
  for (int i = 0; i < 100; ++i) {
    sized.scheduleCall(static_cast<double>(100 - i), [&a, i] { a.push_back(i); });
    unsized.scheduleCall(static_cast<double>(100 - i),
                         [&b, i] { b.push_back(i); });
  }
  sized.run();
  unsized.run();
  EXPECT_EQ(a, b);
}

TEST(FrameArena, CoroutineFramesHitThePool) {
#if BGCKPT_ARENA_PASSTHROUGH
  // Under ASan the arena forwards to plain operator new so the sanitizer
  // sees every frame; nothing is pooled and poolHits stays zero.
  GTEST_SKIP() << "arena passthrough active (sanitizer build): no pooling";
#endif
  const auto& stats = FrameArena::instance().stats();
  const std::uint64_t allocs0 = stats.allocs;
  const std::uint64_t hits0 = stats.poolHits;
  Scheduler sched;
  auto body = [](Scheduler& s) -> Task<> { co_await s.delay(1.0); };
  // First wave populates the free lists, second wave must be served from
  // them: frames are recycled, not re-carved from slabs.
  for (int wave = 0; wave < 2; ++wave) {
    for (int i = 0; i < 64; ++i) sched.spawn(body(sched));
    sched.run();
  }
  const std::uint64_t allocs = stats.allocs - allocs0;
  const std::uint64_t hits = stats.poolHits - hits0;
  EXPECT_GE(allocs, 128u);  // every frame went through the arena
  EXPECT_GE(hits * 2, allocs);  // at least the second wave recycled
}

TEST(FrameArena, LiveBytesReturnToWatermarkAfterRun) {
  auto& arena = FrameArena::instance();
  const std::size_t live0 = arena.stats().liveBytes;
  {
    Scheduler sched;
    auto body = [](Scheduler& s) -> Task<> { co_await s.delay(1.0); };
    for (int i = 0; i < 256; ++i) sched.spawn(body(sched));
    sched.run();
  }
  // Every frame allocated during the run must have been returned.
  EXPECT_EQ(arena.stats().liveBytes, live0);
}

}  // namespace
}  // namespace bgckpt::sim
