#include "simcore/stats.hpp"

#include <gtest/gtest.h>

namespace bgckpt::sim {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.5);
  EXPECT_DOUBLE_EQ(acc.max(), 3.5);
}

TEST(Sample, MedianAndQuantiles) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.median(), 51.0);  // nearest-rank
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 91.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Sample, AddAfterQuantileStaysCorrect) {
  Sample s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // insertion after a sorted query must re-sort
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(FixedHistogram, BinsAndClamping) {
  FixedHistogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(3.0);    // bin 1
  h.add(9.999);  // bin 4
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.binCount(0), 2u);
  EXPECT_EQ(h.binCount(1), 1u);
  EXPECT_EQ(h.binCount(2), 0u);
  EXPECT_EQ(h.binCount(4), 2u);
  EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.binHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.binLow(4), 8.0);
}

}  // namespace
}  // namespace bgckpt::sim
