#include "simcore/task.hpp"

#include <gtest/gtest.h>

#include <string>

#include "simcore/scheduler.hpp"

namespace bgckpt::sim {
namespace {

TEST(Task, ReturnsValueToAwaiter) {
  Scheduler sched;
  int result = 0;
  auto child = []() -> Task<int> { co_return 42; };
  auto parent = [&]() -> Task<> { result = co_await child(); };
  sched.spawn(parent());
  sched.run();
  EXPECT_EQ(result, 42);
}

TEST(Task, ReturnsMoveOnlyValue) {
  Scheduler sched;
  std::unique_ptr<int> got;
  auto child = []() -> Task<std::unique_ptr<int>> {
    co_return std::make_unique<int>(7);
  };
  auto parent = [&]() -> Task<> { got = co_await child(); };
  sched.spawn(parent());
  sched.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, 7);
}

TEST(Task, DeepChainDoesNotOverflowStack) {
#if !defined(__OPTIMIZE__)
  // GCC at -O0 does not turn symmetric transfer into a tail call, so each
  // resume in the chain consumes native stack and 100k awaits overflow it.
  // The property under test (flat resumption) only holds in optimized
  // builds; Debug/sanitizer configurations skip it.
  GTEST_SKIP() << "symmetric transfer is not a tail call at -O0";
#endif
  Scheduler sched;
  // Symmetric transfer keeps resumption flat; a recursive chain of 100k
  // awaits must complete without exhausting the native stack.
  struct Rec {
    static Task<int> count(int n) {
      if (n == 0) co_return 0;
      co_return 1 + co_await count(n - 1);
    }
  };
  int result = 0;
  auto parent = [&]() -> Task<> { result = co_await Rec::count(100000); };
  sched.spawn(parent());
  sched.run();
  EXPECT_EQ(result, 100000);
}

TEST(Task, ValuePropagatesAcrossDelay) {
  Scheduler sched;
  std::string result;
  auto child = [&]() -> Task<std::string> {
    co_await sched.delay(2.0);
    co_return "done";
  };
  auto parent = [&]() -> Task<> {
    result = co_await child();
    EXPECT_DOUBLE_EQ(sched.now(), 2.0);
  };
  sched.spawn(parent());
  sched.run();
  EXPECT_EQ(result, "done");
}

TEST(Task, MoveTransfersOwnership) {
  Scheduler sched;
  auto child = []() -> Task<int> { co_return 5; };
  Task<int> a = child();
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  int result = 0;
  auto parent = [&, t = std::move(b)]() mutable -> Task<> {
    result = co_await std::move(t);
  };
  sched.spawn(parent());
  sched.run();
  EXPECT_EQ(result, 5);
}

TEST(Task, UnawaitedTaskDestructsCleanly) {
  auto child = []() -> Task<int> { co_return 1; };
  {
    Task<int> t = child();
    EXPECT_TRUE(t.valid());
  }  // never awaited; frame must be destroyed without running
  SUCCEED();
}

}  // namespace
}  // namespace bgckpt::sim
