// Each seeded-violation test plants one class of simulation-state corruption
// and verifies the SimChecker catches it and attributes it to this file.
// Death tests verify the abort paths (the default in debug builds and under
// SIM_CHECK=1) fire before the corrupted state can spread.
#include "simcore/simcheck.hpp"

#include <gtest/gtest.h>

#include "simcore/arena.hpp"
#include "simcore/resource.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/sync.hpp"

#include <algorithm>
#include <coroutine>
#include <string>

namespace bgckpt::sim {
namespace {

SimChecker::Config warnConfig() {
  SimChecker::Config cfg;
  cfg.abortOnViolation = false;  // record violations for inspection
  return cfg;
}

bool hasKind(const SimChecker& check, SimChecker::Kind kind) {
  const auto& vs = check.violations();
  return std::any_of(vs.begin(), vs.end(),
                     [kind](const auto& v) { return v.kind == kind; });
}

const SimChecker::Violation& firstOfKind(const SimChecker& check,
                                         SimChecker::Kind kind) {
  for (const auto& v : check.violations())
    if (v.kind == kind) return v;
  throw std::logic_error("no violation of requested kind");
}

TEST(SimCheck, CleanRunReportsNothing) {
  SimChecker check(warnConfig());
  Scheduler sched;
  check.attach(sched);
  Resource res(sched, 2, "clean-pool");
  auto body = [](Resource& r) -> Task<> {
    auto hold = co_await ScopedTokens::take(r, 1);
  };
  sched.spawn(body(res));
  sched.run();
  EXPECT_EQ(check.finalize(), 0u);
  EXPECT_EQ(check.violationCount(), 0u);
  EXPECT_TRUE(check.violations().empty());
}

TEST(SimCheck, TokenLeakCaughtAtResourceTeardown) {
  SimChecker check(warnConfig());
  Scheduler sched;
  check.attach(sched);
  {
    Resource res(sched, 2, "leaky-pool");
    // Acquire without a matching release: one token never comes back.
    auto body = [](Resource& r) -> Task<> { co_await r.acquire(1); };
    sched.spawn(body(res));
    sched.run();
  }
  ASSERT_TRUE(hasKind(check, SimChecker::Kind::kTokenLeak));
  const auto& v = firstOfKind(check, SimChecker::Kind::kTokenLeak);
  EXPECT_EQ(v.component, "leaky-pool");
  EXPECT_NE(v.detail.find("1 of 2 tokens"), std::string::npos) << v.detail;
}

TEST(SimCheck, DoubleReleaseCaughtAndAttributedToCallSite) {
  SimChecker check(warnConfig());
  Scheduler sched;
  check.attach(sched);
  Resource res(sched, 1, "over-released");
  res.release();  // never acquired: pushes available above total
  ASSERT_TRUE(hasKind(check, SimChecker::Kind::kDoubleRelease));
  const auto& v = firstOfKind(check, SimChecker::Kind::kDoubleRelease);
  EXPECT_EQ(v.component, "over-released");
  EXPECT_NE(v.file.find("simcheck_test.cpp"), std::string::npos) << v.file;
  EXPECT_GT(v.line, 0);
  // Warn mode clamps the pool so the sim can continue deterministically.
  EXPECT_EQ(res.available(), res.total());
}

TEST(SimCheck, EventScheduledInThePastCaughtAndAttributed) {
  SimChecker check(warnConfig());
  Scheduler sched;
  check.attach(sched);
  sched.scheduleCall(5.0, [&sched] {
    sched.scheduleCall(-1.0, [] {});  // lands at t=4, before now=5
  });
  sched.run();
  ASSERT_TRUE(hasKind(check, SimChecker::Kind::kPastEvent));
  const auto& v = firstOfKind(check, SimChecker::Kind::kPastEvent);
  EXPECT_NE(v.file.find("simcheck_test.cpp"), std::string::npos) << v.file;
  EXPECT_DOUBLE_EQ(v.time, 5.0);
}

TEST(SimCheck, DroppedCoroutineCaughtAsFrameLeak) {
  SimChecker check(warnConfig());
  Scheduler sched;
  check.attach(sched);
  Gate gate(sched);  // deliberately never fired
  auto body = [](Gate& g) -> Task<> { co_await g.wait(); };
  sched.spawn(body(gate));
  sched.run();  // queue drains; the root is stuck on the gate forever
  EXPECT_GT(check.finalize(), 0u);
  ASSERT_TRUE(hasKind(check, SimChecker::Kind::kFrameLeak));
  const auto& v = firstOfKind(check, SimChecker::Kind::kFrameLeak);
  EXPECT_NE(v.detail.find("1 root task(s) unfinished"), std::string::npos)
      << v.detail;
}

TEST(SimCheck, TieOrderHazardReportedForCollidingDelays) {
  SimChecker check(warnConfig());
  Scheduler sched;
  check.attach(sched);
  // Two independent positive delays land on t=1.0 from different source
  // lines; only insertion sequence orders their wakeups.
  auto first = [](Scheduler& s) -> Task<> { co_await s.delay(1.0); };
  auto second = [](Scheduler& s) -> Task<> {
    co_await s.delay(1.0);
  };
  sched.spawn(first(sched));
  sched.spawn(second(sched));
  sched.run();
  EXPECT_GE(check.hazardCount(), 1u);
  ASSERT_TRUE(hasKind(check, SimChecker::Kind::kTieOrderHazard));
  const auto& v = firstOfKind(check, SimChecker::Kind::kTieOrderHazard);
  EXPECT_NE(v.detail.find("simcheck_test.cpp"), std::string::npos) << v.detail;
  // Hazards are advisory: they never count as hard violations.
  EXPECT_EQ(check.violationCount(), 0u);
  EXPECT_EQ(check.finalize(), 0u);
}

TEST(SimCheck, ZeroDelayWakeupsAreNotHazards) {
  SimChecker check(warnConfig());
  Scheduler sched;
  check.attach(sched);
  // Two waiters woken by one fire() run at the same timestamp, but both
  // wakeups were scheduled *at* that timestamp (causally ordered behind the
  // gate), so they are not reorder hazards.
  Gate gate(sched);
  auto body = [](Gate& g) -> Task<> { co_await g.wait(); };
  sched.spawn(body(gate));
  sched.spawn(body(gate));
  sched.scheduleCall(1.0, [&gate] { gate.fire(); });
  sched.run();
  EXPECT_EQ(sched.liveRoots(), 0u);
  EXPECT_EQ(check.hazardCount(), 0u);
}

TEST(SimCheck, ModeParsesFromEnvironment) {
  EXPECT_EQ(setenv("SIM_CHECK", "off", 1), 0);
  EXPECT_EQ(simCheckModeFromEnv(), SimCheckMode::kOff);
  EXPECT_EQ(setenv("SIM_CHECK", "warn", 1), 0);
  EXPECT_EQ(simCheckModeFromEnv(), SimCheckMode::kWarn);
  EXPECT_EQ(setenv("SIM_CHECK", "1", 1), 0);
  EXPECT_EQ(simCheckModeFromEnv(), SimCheckMode::kOn);
  EXPECT_EQ(unsetenv("SIM_CHECK"), 0);
  EXPECT_EQ(simCheckModeFromEnv(), SimCheckMode::kAuto);
}

TEST(FrameArenaAudit, TracksLiveAndFreedPointers) {
  FrameArena& arena = FrameArena::instance();
  arena.beginAudit();
  void* p = arena.allocate(64);
  EXPECT_EQ(arena.pointerState(p), FrameArena::PointerState::kLive);
  EXPECT_EQ(arena.auditLiveCount(), 1u);
  arena.deallocate(p, 64);
  EXPECT_EQ(arena.pointerState(p), FrameArena::PointerState::kFreed);
  EXPECT_EQ(arena.auditLiveCount(), 0u);
  EXPECT_EQ(arena.auditDoubleFrees(), 0u);
  arena.endAudit();
  EXPECT_EQ(arena.pointerState(p), FrameArena::PointerState::kUnknown);
}

// --- abort paths ----------------------------------------------------------

using SimCheckDeathTest = ::testing::Test;

TEST(SimCheckDeathTest, SimCheckMacroAbortsWithSite) {
  EXPECT_DEATH(SIM_CHECK(1 + 1 == 3, "arithmetic is broken"),
               "SIM_CHECK failed: 1 \\+ 1 == 3");
}

TEST(SimCheckDeathTest, OverReleaseWithoutCheckerStillAborts) {
  // No SimChecker installed: the Resource's own balance check must not
  // depend on the opt-in layer being active.
  EXPECT_DEATH(
      {
        Scheduler sched;
        Resource res(sched, 1, "bare");
        res.release();
      },
      "over-release");
}

TEST(SimCheckDeathTest, CheckerAbortsOnPastEventByDefault) {
  EXPECT_DEATH(
      {
        SimChecker check;  // default config: abortOnViolation = true
        Scheduler sched;
        check.attach(sched);
        sched.scheduleCall(5.0, [&sched] { sched.scheduleCall(-1.0, [] {}); });
        sched.run();
      },
      "aborting on past-event");
}

TEST(SimCheckDeathTest, ResumeAfterFrameFreedAborts) {
  EXPECT_DEATH(
      {
        SimChecker check;
        Scheduler sched;
        check.attach(sched);
        // Steal the root coroutine's handle, let it run to completion (the
        // frame is freed), then schedule the dangling handle: the checker
        // must abort before the scheduler resumes into freed memory.
        struct HandleGrabber {
          std::coroutine_handle<>& out;
          bool await_ready() const noexcept { return false; }
          bool await_suspend(std::coroutine_handle<> me) noexcept {
            out = me;
            return false;  // do not actually suspend
          }
          void await_resume() const noexcept {}
        };
        std::coroutine_handle<> stolen;
        auto body = [](std::coroutine_handle<>& out) -> Task<> {
          co_await HandleGrabber{out};
        };
        sched.spawn(body(stolen));
        sched.run();
        sched.scheduleResume(0.0, stolen);
        sched.run();
      },
      "stale-resume");
}

}  // namespace
}  // namespace bgckpt::sim
