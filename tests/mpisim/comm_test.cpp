#include "mpisim/comm.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace bgckpt::mpi {
namespace {

using machine::Machine;
using machine::intrepidMachine;
using sim::MiB;
using sim::Scheduler;
using sim::Task;

// Full simulated-MPI stack on a small Intrepid partition.
struct Job {
  Scheduler sched;
  Machine mach;
  net::TorusNetwork torus;
  net::CollectiveNetwork coll;
  Runtime rt;

  explicit Job(int ranks = 256, std::uint64_t seed = 1)
      : mach(intrepidMachine(ranks)),
        torus(sched, mach),
        coll(mach),
        rt(sched, mach, torus, coll, seed) {}

  void run(std::function<Task<>(Comm)> program) {
    rt.spawnAll(std::move(program));
    sched.run();
    ASSERT_EQ(sched.liveRoots(), 0u) << "job deadlocked";
  }
};

TEST(MpiComm, WorldSizeAndRanks) {
  Job job(256);
  std::vector<int> seen;
  job.run([&seen](Comm comm) -> Task<> {
    EXPECT_EQ(comm.size(), 256);
    seen.push_back(comm.rank());
    co_return;
  });
  EXPECT_EQ(seen.size(), 256u);
  std::sort(seen.begin(), seen.end());
  for (int r = 0; r < 256; ++r) EXPECT_EQ(seen[static_cast<size_t>(r)], r);
}

TEST(MpiComm, SendRecvDeliversPayload) {
  Job job(256);
  std::vector<std::byte> got;
  job.run([&got](Comm comm) -> Task<> {
    if (comm.rank() == 0) {
      Message msg;
      msg.size = 4;
      msg.payload = std::make_shared<std::vector<std::byte>>(
          std::vector<std::byte>{std::byte{1}, std::byte{2}, std::byte{3},
                                 std::byte{4}});
      co_await comm.send(7, 42, std::move(msg));
    } else if (comm.rank() == 7) {
      Message msg = co_await comm.recv(0, 42);
      EXPECT_EQ(msg.source, 0);
      EXPECT_EQ(msg.tag, 42);
      got = *msg.payload;
    }
  });
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[3], std::byte{4});
}

TEST(MpiComm, RecvBeforeSendSuspends) {
  Job job(256);
  double recvTime = -1.0;
  job.run([&recvTime](Comm comm) -> Task<> {
    if (comm.rank() == 1) {
      Message m = co_await comm.recv(kAnySource, 5);
      recvTime = comm.scheduler().now();
      EXPECT_EQ(m.size, MiB);
    } else if (comm.rank() == 2) {
      co_await comm.scheduler().delay(0.5);
      co_await comm.send(1, 5, Message::ofSize(MiB));
    }
  });
  EXPECT_GT(recvTime, 0.5);
}

TEST(MpiComm, TagsMatchSelectively) {
  Job job(256);
  std::vector<int> order;
  job.run([&order](Comm comm) -> Task<> {
    if (comm.rank() == 0) {
      co_await comm.send(1, /*tag=*/10, Message::ofSize(100));
      co_await comm.send(1, /*tag=*/20, Message::ofSize(200));
    } else if (comm.rank() == 1) {
      // Receive tag 20 first even though tag 10 arrives first.
      Message m20 = co_await comm.recv(0, 20);
      order.push_back(m20.tag);
      Message m10 = co_await comm.recv(0, 10);
      order.push_back(m10.tag);
      EXPECT_EQ(m20.size, 200u);
      EXPECT_EQ(m10.size, 100u);
    }
  });
  EXPECT_EQ(order, (std::vector<int>{20, 10}));
}

TEST(MpiComm, AnySourceReceivesInArrivalOrder) {
  Job job(256);
  std::vector<int> sources;
  job.run([&sources](Comm comm) -> Task<> {
    if (comm.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        Message m = co_await comm.recv(kAnySource, 1);
        sources.push_back(m.source);
      }
    } else if (comm.rank() <= 3) {
      // Staggered arrivals: rank 1 at ~1s, rank 2 at ~2s, rank 3 at ~3s.
      co_await comm.scheduler().delay(static_cast<double>(comm.rank()));
      co_await comm.send(0, 1, Message::ofSize(64));
    }
  });
  EXPECT_EQ(sources, (std::vector<int>{1, 2, 3}));
}

TEST(MpiComm, IsendCallIsMicrosecondsButDeliveryTakesTime) {
  Job job(256);
  double isendDone = -1.0, delivered = -1.0;
  job.run([&](Comm comm) -> Task<> {
    if (comm.rank() == 0) {
      // 64 MiB to a distant rank: the call must return in microseconds even
      // though the wire time is ~150 ms.
      Request req = co_await comm.isend(200, 9, Message::ofSize(64 * MiB));
      isendDone = comm.scheduler().now();
      co_await comm.wait(req);
    } else if (comm.rank() == 200) {
      co_await comm.recv(0, 9);
      delivered = comm.scheduler().now();
    }
  });
  EXPECT_LT(isendDone, 1e-3);
  EXPECT_GT(delivered, 100e-3);
}

TEST(MpiComm, BarrierSynchronisesAllRanks) {
  Job job(256);
  double maxBefore = 0.0, minAfter = 1e30;
  job.run([&](Comm comm) -> Task<> {
    co_await comm.scheduler().delay(static_cast<double>(comm.rank()) * 1e-3);
    maxBefore = std::max(maxBefore, comm.scheduler().now());
    co_await comm.barrier();
    minAfter = std::min(minAfter, comm.scheduler().now());
  });
  EXPECT_GE(minAfter, maxBefore);
}

TEST(MpiComm, AllReduceSumAndMax) {
  Job job(256);
  job.run([](Comm comm) -> Task<> {
    const double sum =
        co_await comm.allReduceSum(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(sum, 255.0 * 256.0 / 2.0);
    const double mx =
        co_await comm.allReduceMax(static_cast<double>(1000 - comm.rank()));
    EXPECT_DOUBLE_EQ(mx, 1000.0);
  });
}

TEST(MpiComm, ConsecutiveCollectivesKeepRoundsSeparate) {
  Job job(256);
  job.run([](Comm comm) -> Task<> {
    for (int round = 1; round <= 5; ++round) {
      const double sum = co_await comm.allReduceSum(static_cast<double>(round));
      EXPECT_DOUBLE_EQ(sum, 256.0 * round);
    }
  });
}

TEST(MpiComm, BcastDeliversRootMessage) {
  Job job(256);
  int received = 0;
  job.run([&received](Comm comm) -> Task<> {
    Message mine;
    if (comm.rank() == 3) mine = Message::ofSize(12345);
    Message out = co_await comm.bcast(3, mine);
    EXPECT_EQ(out.size, 12345u);
    ++received;
    co_return;
  });
  EXPECT_EQ(received, 256);
}

TEST(MpiComm, AllGatherCollectsEveryValue) {
  Job job(256);
  job.run([](Comm comm) -> Task<> {
    auto vals =
        co_await comm.allGatherU64(static_cast<std::uint64_t>(comm.rank()) * 10);
    EXPECT_EQ(vals.size(), 256u);
    for (size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(vals[i], i * 10);
  });
}

TEST(MpiComm, SplitFormsGroupsWithLocalRanks) {
  Job job(256);
  job.run([](Comm comm) -> Task<> {
    // 4 groups of 64 by rank/64 (the paper's np:nf = 64:1 grouping).
    Comm sub = co_await comm.split(comm.rank() / 64, comm.rank());
    EXPECT_EQ(sub.size(), 64);
    EXPECT_EQ(sub.rank(), comm.rank() % 64);
    EXPECT_EQ(sub.globalRank(sub.rank()), comm.rank());
    // Group-local collectives work and stay inside the group.
    const double sum =
        co_await sub.allReduceSum(static_cast<double>(sub.rank()));
    EXPECT_DOUBLE_EQ(sum, 63.0 * 64.0 / 2.0);
    // P2P within the subgroup: everyone sends to group-local 0.
    if (sub.rank() == 0) {
      for (int i = 1; i < sub.size(); ++i)
        co_await sub.recv(kAnySource, 7);
    } else {
      co_await sub.send(0, 7, Message::ofSize(128));
    }
  });
}

TEST(MpiComm, SplitByKeyReordersRanks) {
  Job job(256);
  job.run([](Comm comm) -> Task<> {
    // Reverse order within one color.
    Comm sub = co_await comm.split(0, -comm.rank());
    EXPECT_EQ(sub.rank(), 255 - comm.rank());
    co_return;
  });
}

TEST(MpiComm, WaitAllCompletesAllRequests) {
  Job job(256);
  job.run([](Comm comm) -> Task<> {
    if (comm.rank() == 0) {
      std::vector<Request> reqs;
      for (int dst = 1; dst <= 8; ++dst)
        reqs.push_back(co_await comm.isend(dst, 3, Message::ofSize(MiB)));
      co_await comm.waitAll(reqs);
      for (const auto& r : reqs) EXPECT_TRUE(r.done());
    } else if (comm.rank() <= 8) {
      co_await comm.recv(0, 3);
    }
  });
}

TEST(MpiComm, PerceivedIsendTimesHaveHeavyTailButMicrosecondMedian) {
  Job job(1024);
  std::vector<double> costs;
  job.run([&costs](Comm comm) -> Task<> {
    const double t0 = comm.scheduler().now();
    Request r = co_await comm.isend((comm.rank() + 1) % comm.size(), 1,
                                    Message::ofSize(2400 * 1024));
    costs.push_back(comm.scheduler().now() - t0);
    co_await comm.wait(r);
    co_await comm.recv(kAnySource, 1);
  });
  ASSERT_EQ(costs.size(), 1024u);
  std::sort(costs.begin(), costs.end());
  const double median = costs[costs.size() / 2];
  const double mx = costs.back();
  EXPECT_GT(median, 3e-6);
  EXPECT_LT(median, 30e-6);   // ~10k CPU cycles at 850 MHz
  EXPECT_GT(mx, 3 * median);  // heavy tail (drives Table I's max)
}

TEST(MpiComm, LargeJobCompletes) {
  // Smoke: 16K ranks all-reduce then exchange within 64-rank groups.
  Job job(16384);
  int done = 0;
  job.run([&done](Comm comm) -> Task<> {
    Comm sub = co_await comm.split(comm.rank() / 64, comm.rank());
    if (sub.rank() == 0) {
      for (int i = 1; i < 64; ++i) co_await sub.recv(kAnySource, 2);
    } else {
      co_await sub.send(0, 2, Message::ofSize(64 * 1024));
    }
    co_await comm.barrier();
    ++done;
  });
  EXPECT_EQ(done, 16384);
}

}  // namespace
}  // namespace bgckpt::mpi
