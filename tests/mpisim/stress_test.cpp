// Randomised stress properties of the simulated MPI: under arbitrary
// communication patterns, every message is delivered exactly once with its
// payload intact and the job always drains.
#include <gtest/gtest.h>

#include "mpisim/comm.hpp"
#include "simcore/random.hpp"

namespace bgckpt::mpi {
namespace {

using machine::intrepidMachine;
using sim::Scheduler;
using sim::Task;

struct Job {
  Scheduler sched;
  machine::Machine mach;
  net::TorusNetwork torus;
  net::CollectiveNetwork coll;
  Runtime rt;

  explicit Job(int ranks, std::uint64_t seed = 1)
      : mach(intrepidMachine(ranks)),
        torus(sched, mach),
        coll(mach),
        rt(sched, mach, torus, coll, seed) {}
};

class RandomPattern : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPattern, AllMessagesDeliveredExactlyOnce) {
  constexpr int kNp = 256;
  constexpr int kMsgsPerRank = 8;
  Job job(kNp);

  // Deterministic random destination matrix, shared by senders/receivers.
  auto shared = std::make_shared<std::vector<std::vector<int>>>(
      static_cast<std::size_t>(kNp));
  {
    sim::RngStream rng(GetParam(), "pattern");
    for (auto& dests : *shared)
      for (int m = 0; m < kMsgsPerRank; ++m)
        dests.push_back(static_cast<int>(rng.uniformInt(kNp)));
  }
  // Expected receive counts per rank.
  auto expect = std::make_shared<std::vector<int>>(kNp, 0);
  for (const auto& dests : *shared)
    for (int d : dests) ++(*expect)[static_cast<std::size_t>(d)];
  auto receivedBytes = std::make_shared<std::vector<sim::Bytes>>(kNp, 0);

  auto program = [shared, expect, receivedBytes](Comm comm) -> Task<> {
    const int me = comm.rank();
    // Sends: payload size encodes (src, index) for verification.
    for (std::size_t m = 0;
         m < (*shared)[static_cast<std::size_t>(me)].size(); ++m) {
      const int dst = (*shared)[static_cast<std::size_t>(me)][m];
      Message msg;
      msg.size = 1000 + static_cast<sim::Bytes>(me);
      msg.meta = static_cast<std::uint64_t>(me);
      mpi::Request r = co_await comm.isend(dst, 5, std::move(msg));
      (void)r;
    }
    // Receives: exactly as many as the matrix says.
    for (int i = 0; i < (*expect)[static_cast<std::size_t>(me)]; ++i) {
      Message msg = co_await comm.recv(kAnySource, 5);
      EXPECT_EQ(msg.size, 1000u + static_cast<sim::Bytes>(msg.meta));
      EXPECT_EQ(msg.source, static_cast<int>(msg.meta));
      (*receivedBytes)[static_cast<std::size_t>(me)] += msg.size;
    }
  };
  job.rt.spawnAll(program);
  job.sched.run();
  ASSERT_EQ(job.sched.liveRoots(), 0u) << "stress pattern deadlocked";

  sim::Bytes total = 0;
  for (auto b : *receivedBytes) total += b;
  sim::Bytes expectedTotal = 0;
  for (const auto& dests : *shared)
    for (std::size_t i = 0; i < dests.size(); ++i) expectedTotal += 0;
  for (int src = 0; src < kNp; ++src)
    expectedTotal += static_cast<sim::Bytes>(kMsgsPerRank) *
                     (1000 + static_cast<sim::Bytes>(src));
  EXPECT_EQ(total, expectedTotal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPattern,
                         ::testing::Values(11, 22, 33, 44));

TEST(Stress, InterleavedCollectivesAndP2pDrain) {
  constexpr int kNp = 256;
  Job job(kNp);
  auto program = [](Comm comm) -> Task<> {
    for (int round = 0; round < 5; ++round) {
      // Ring exchange ...
      const int next = (comm.rank() + 1) % comm.size();
      mpi::Request r =
          co_await comm.isend(next, round, Message::ofSize(512));
      (void)r;
      Message m = co_await comm.recv(kAnySource, round);
      EXPECT_EQ(m.size, 512u);
      // ... then a reduction whose value checks global progress.
      const double sum = co_await comm.allReduceSum(1.0);
      EXPECT_DOUBLE_EQ(sum, 256.0);
    }
  };
  job.rt.spawnAll(program);
  job.sched.run();
  EXPECT_EQ(job.sched.liveRoots(), 0u);
}

TEST(Stress, ManySmallSubCommunicators) {
  constexpr int kNp = 1024;
  Job job(kNp);
  auto program = [](Comm comm) -> Task<> {
    // Three nested splits, collective checks at each level.
    Comm half = co_await comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(half.size(), 512);
    Comm quarter = co_await half.split(half.rank() % 2, half.rank());
    EXPECT_EQ(quarter.size(), 256);
    const double sum =
        co_await quarter.allReduceSum(static_cast<double>(quarter.rank()));
    EXPECT_DOUBLE_EQ(sum, 255.0 * 256.0 / 2.0);
  };
  job.rt.spawnAll(program);
  job.sched.run();
  EXPECT_EQ(job.sched.liveRoots(), 0u);
}

}  // namespace
}  // namespace bgckpt::mpi
