#include "netsim/torus.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "netsim/ion.hpp"
#include "simcore/sync.hpp"

namespace bgckpt::net {
namespace {

using machine::Machine;
using machine::intrepidMachine;
using sim::MiB;
using sim::Scheduler;
using sim::Task;

class TorusTest : public ::testing::Test {
 protected:
  Scheduler sched;
  Machine mach = intrepidMachine(256);  // 64 nodes, 4x4x4
};

TEST_F(TorusTest, SingleTransferMatchesUncontendedLatency) {
  TorusNetwork net(sched, mach);
  double done = -1.0;
  auto body = [](Scheduler& s, TorusNetwork& n, double& out) -> Task<> {
    co_await n.transfer(0, 100, 4 * MiB);
    out = s.now();
  };
  sched.spawn(body(sched, net, done));
  sched.run();
  EXPECT_DOUBLE_EQ(done, net.uncontendedLatency(0, 100, 4 * MiB));
  EXPECT_EQ(net.messagesDelivered(), 1u);
  EXPECT_EQ(net.bytesDelivered(), 4 * MiB);
}

TEST_F(TorusTest, IntraNodeIsMemorySpeed) {
  TorusNetwork net(sched, mach);
  // Ranks 0 and 1 share node 0.
  double lat = net.uncontendedLatency(0, 1, 64 * MiB);
  double remote = net.uncontendedLatency(0, 100, 64 * MiB);
  EXPECT_LT(lat, remote);
  // 64 MiB at 13.6 GB/s is ~4.9 ms; the remote path at 425 MB/s is ~158 ms.
  EXPECT_LT(lat, 10e-3);
  EXPECT_GT(remote, 100e-3);
}

TEST_F(TorusTest, LatencyGrowsWithHops) {
  TorusNetwork net(sched, mach);
  // dst on an adjacent node vs. the far corner, tiny payload: hop latency
  // dominates the difference.
  int nearRank = 4;  // node 1, one hop from node 0
  int farNode = mach.nodeOfCoord({2, 2, 2});
  int farRank = farNode * 4;
  EXPECT_LT(net.uncontendedLatency(0, nearRank, 1),
            net.uncontendedLatency(0, farRank, 1));
}

TEST_F(TorusTest, InjectionSerialisesSendersOnOneNode) {
  TorusNetwork net(sched, mach);
  // All four ranks of node 0 send 4 MiB to distinct distant nodes at once;
  // the shared NIC must serialise them, so completion times are spread by
  // at least the serialisation time of one message.
  std::vector<double> done;
  auto body = [](Scheduler& s, TorusNetwork& n, std::vector<double>& out,
                 int src, int dst) -> Task<> {
    co_await n.transfer(src, dst, 4 * MiB);
    out.push_back(s.now());
  };
  for (int c = 0; c < 4; ++c)
    sched.spawn(body(sched, net, done, c, 100 + 4 * c));
  sched.run();
  ASSERT_EQ(done.size(), 4u);
  const double serial = sim::transferTime(4 * MiB, 425e6);
  for (size_t i = 1; i < done.size(); ++i)
    EXPECT_GE(done[i] - done[i - 1], serial * 0.99);
}

TEST_F(TorusTest, FanInSerialisesAtReceiver) {
  TorusNetwork net(sched, mach);
  // 16 distant ranks (one per node) send to rank 0 simultaneously. Receiver
  // drain is the shared stage; total time >= 16 * drain time of one message.
  std::vector<double> done;
  auto body = [](Scheduler& s, TorusNetwork& n, std::vector<double>& out,
                 int src) -> Task<> {
    co_await n.transfer(src, 0, 16 * MiB);
    out.push_back(s.now());
  };
  for (int i = 1; i <= 16; ++i) sched.spawn(body(sched, net, done, 4 * i));
  sched.run();
  ASSERT_EQ(done.size(), 16u);
  const double drain = sim::transferTime(16 * MiB, 13.6e9 / 2.0);
  const double last = *std::max_element(done.begin(), done.end());
  EXPECT_GE(last, 16 * drain);
}

TEST_F(TorusTest, SlowReceiverDoesNotDeadlockSenderNic) {
  // Regression for transfer()'s acquire/release ordering: the sender-side
  // injection token must be released before the ejection port is requested,
  // so a receiver that is blocked (its ejection port occupied) can never
  // pin the sender's NIC. Transfer A (0 -> node 25) is parked on a stalled
  // receiver; transfer B from the same source node must still complete.
  TorusNetwork net(sched, mach);
  const int dstA = 100;  // node 25
  const int dstB = 200;  // node 50
  const int stalledNode = mach.nodeOfRank(dstA);

  sim::Gate release(sched);
  auto holder = [](TorusNetwork& n, sim::Gate& g, int node) -> Task<> {
    co_await n.ejectionPort(node).acquire();
    co_await g.wait();
    n.ejectionPort(node).release();
  };
  sched.spawn(holder(net, release, stalledNode));

  double doneA = -1.0, doneB = -1.0;
  auto send = [](Scheduler& s, TorusNetwork& n, int dst, double& out)
      -> Task<> {
    co_await n.transfer(0, dst, 4 * MiB);
    out = s.now();
  };
  sched.spawn(send(sched, net, dstA, doneA));
  sched.spawn(send(sched, net, dstB, doneB));

  // Unblock the receiver far later than both transfers need.
  const double unblockAt = 3600.0;
  sched.scheduleCall(unblockAt, [&release] { release.fire(); });
  sched.run();

  EXPECT_EQ(sched.liveRoots(), 0u);  // nothing deadlocked
  ASSERT_GT(doneB, 0.0);
  EXPECT_LT(doneB, unblockAt);  // B finished while A's receiver was stalled
  EXPECT_GT(doneA, unblockAt);  // A only completed after the port freed
}

TEST_F(TorusTest, TransferEventCostIsConstantInMessageSize) {
  // Fragmentation is batched analytically (closed-form wormhole pipeline),
  // so a transfer costs a fixed number of simulator events no matter how
  // large the message is. This is what keeps a 64 KiB-vs-256 MiB rbIO
  // handoff O(1) events instead of O(packets).
  TorusNetwork net(sched, mach);
  auto send = [](TorusNetwork& n, sim::Bytes bytes) -> Task<> {
    co_await n.transfer(0, 100, bytes);
  };

  sched.spawn(send(net, 64 * 1024));
  sched.run();
  const std::uint64_t small = sched.eventsProcessed();

  sched.spawn(send(net, 256 * MiB));
  sched.run();
  const std::uint64_t large = sched.eventsProcessed() - small;

  EXPECT_EQ(large, small);
}

TEST_F(TorusTest, ManyDisjointTransfersProceedInParallel) {
  TorusNetwork net(sched, mach);
  // 32 transfers between disjoint node pairs: total time ~ one transfer.
  auto body = [](TorusNetwork& n, int src, int dst) -> Task<> {
    co_await n.transfer(src, dst, 4 * MiB);
  };
  for (int i = 0; i < 32; ++i) sched.spawn(body(net, 8 * i, 8 * i + 4));
  sched.run();
  const double one = net.uncontendedLatency(0, 4, 4 * MiB);
  EXPECT_LT(sched.now(), one * 2.5);
  EXPECT_EQ(net.messagesDelivered(), 32u);
}

TEST(CollectiveNetwork, BarrierNearConstant) {
  Machine m = intrepidMachine(65536);
  CollectiveNetwork net(m);
  EXPECT_LT(net.barrierCost(65536), 10e-6);
  EXPECT_GT(net.barrierCost(65536), net.barrierCost(2));
}

TEST(CollectiveNetwork, BroadcastScalesWithSizeAndDepth) {
  Machine m = intrepidMachine(16384);
  CollectiveNetwork net(m);
  EXPECT_GT(net.broadcastCost(16384, MiB), net.broadcastCost(16384, 1));
  EXPECT_GT(net.broadcastCost(16384, MiB), net.broadcastCost(16, MiB));
  EXPECT_DOUBLE_EQ(net.reduceCost(1024, MiB), net.broadcastCost(1024, MiB));
}

TEST(IonForwarding, UplinkSerialisesWithinPsetOnly) {
  Scheduler sched;
  Machine m = intrepidMachine(512);  // 128 nodes = 2 psets
  IonForwarding ion(sched, m);
  std::vector<double> done(3, 0.0);
  auto body = [](Scheduler& s, IonForwarding& f, std::vector<double>& out,
                 int idx, int rank) -> Task<> {
    co_await f.forward(rank, 125 * sim::MB);  // 0.1 s on the 1.25 GB/s link
    out[static_cast<size_t>(idx)] = s.now();
  };
  // Two requests in pset 0 (ranks 0 and 4), one in pset 1 (rank 256+).
  sched.spawn(body(sched, ion, done, 0, 0));
  sched.spawn(body(sched, ion, done, 1, 4));
  sched.spawn(body(sched, ion, done, 2, 64 * 4));
  sched.run();
  EXPECT_NEAR(done[0], 0.1, 0.01);
  EXPECT_NEAR(done[1], 0.2, 0.01);  // serialised behind the first
  EXPECT_NEAR(done[2], 0.1, 0.01);  // different pset, parallel
  EXPECT_EQ(ion.requestsForwarded(), 3u);
}

}  // namespace
}  // namespace bgckpt::net
