// Property-style sweeps over the network models.
#include <gtest/gtest.h>

#include "netsim/ion.hpp"
#include "netsim/torus.hpp"
#include "simcore/sync.hpp"

namespace bgckpt::net {
namespace {

using machine::Machine;
using machine::intrepidMachine;
using sim::Scheduler;
using sim::Task;

class SizeSweep : public ::testing::TestWithParam<sim::Bytes> {};

TEST_P(SizeSweep, LatencyMonotoneInSize) {
  Scheduler sched;
  Machine m = intrepidMachine(256);
  TorusNetwork net(sched, m);
  const sim::Bytes size = GetParam();
  EXPECT_LT(net.uncontendedLatency(0, 100, size),
            net.uncontendedLatency(0, 100, size * 2));
  EXPECT_LT(net.uncontendedLatency(0, 1, size),
            net.uncontendedLatency(0, 1, size * 2));
}

TEST_P(SizeSweep, MeasuredEqualsPredictedUncontended) {
  Scheduler sched;
  Machine m = intrepidMachine(256);
  TorusNetwork net(sched, m);
  const sim::Bytes size = GetParam();
  double done = -1;
  auto body = [](Scheduler& s, TorusNetwork& n, sim::Bytes sz,
                 double& out) -> Task<> {
    co_await n.transfer(3, 200, sz);
    out = s.now();
  };
  sched.spawn(body(sched, net, size, done));
  sched.run();
  EXPECT_DOUBLE_EQ(done, net.uncontendedLatency(3, 200, size));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(1, 1024, 64 * 1024, sim::MiB,
                                           16 * sim::MiB));

TEST(TorusProperties, ByteAndMessageAccountingExact) {
  Scheduler sched;
  Machine m = intrepidMachine(256);
  TorusNetwork net(sched, m);
  sim::WaitGroup wg(sched);
  auto body = [](TorusNetwork& n, sim::WaitGroup& w, int src, int dst,
                 sim::Bytes sz) -> Task<> {
    co_await n.transfer(src, dst, sz);
    w.done();
  };
  sim::Bytes expected = 0;
  for (int i = 0; i < 40; ++i) {
    const auto sz = static_cast<sim::Bytes>(1000 * (i + 1));
    expected += sz;
    wg.add();
    sched.spawn(body(net, wg, i, 255 - i, sz));
  }
  sched.run();
  EXPECT_EQ(net.messagesDelivered(), 40u);
  EXPECT_EQ(net.bytesDelivered(), expected);
  EXPECT_EQ(net.latencyStats().count(), 40u);
  EXPECT_GT(net.latencyStats().min(), 0.0);
}

TEST(CollectiveProperties, CostsMonotoneInPartiesAndSize) {
  Machine m = intrepidMachine(65536);
  CollectiveNetwork net(m);
  double prevB = 0;
  for (int parties : {2, 16, 256, 4096, 65536}) {
    const double b = net.broadcastCost(parties, sim::MiB);
    EXPECT_GT(b, prevB);
    prevB = b;
    EXPECT_GE(net.barrierCost(parties), net.barrierCost(2));
  }
  for (sim::Bytes size : {sim::Bytes{1}, sim::KiB, sim::MiB})
    EXPECT_LT(net.broadcastCost(1024, size),
              net.broadcastCost(1024, size * 4));
}

TEST(IonProperties, ForwardingAccountingExact) {
  Scheduler sched;
  Machine m = intrepidMachine(1024);  // 4 psets
  IonForwarding ion(sched, m);
  auto body = [](IonForwarding& f, int rank, sim::Bytes sz) -> Task<> {
    co_await f.forward(rank, sz);
  };
  for (int i = 0; i < 16; ++i)
    sched.spawn(body(ion, i * 64, 1000));
  sched.run();
  EXPECT_EQ(ion.requestsForwarded(), 16u);
  EXPECT_EQ(ion.bytesForwarded(), 16000u);
}

TEST(IonProperties, PsetsScaleAggregateThroughput) {
  // The same 16 requests complete faster when spread over 4 psets than
  // when crammed into one.
  auto runSpread = [](bool spread) {
    Scheduler sched;
    Machine m = intrepidMachine(1024);
    IonForwarding ion(sched, m);
    auto body = [](IonForwarding& f, int rank) -> Task<> {
      co_await f.forward(rank, 125 * sim::MB);
    };
    for (int i = 0; i < 16; ++i)
      sched.spawn(body(ion, spread ? (i % 4) * 256 : i));
    sched.run();
    return sched.now();
  };
  EXPECT_LT(runSpread(true), runSpread(false) * 0.5);
}

}  // namespace
}  // namespace bgckpt::net
