// Host-backend stress: multi-generation campaigns, larger thread counts,
// and mixed-strategy interoperability on real files.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "hostio/host_checkpoint.hpp"

namespace bgckpt::hostio {
namespace {

class HostStress : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bgckpt_stress_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static std::vector<HostRankData> makeData(int np, int fields,
                                            std::uint64_t bytes, int salt) {
    std::vector<HostRankData> data(static_cast<std::size_t>(np));
    for (int r = 0; r < np; ++r) {
      auto& rank = data[static_cast<std::size_t>(r)];
      rank.fields.resize(static_cast<std::size_t>(fields));
      for (int f = 0; f < fields; ++f) {
        auto& blk = rank.fields[static_cast<std::size_t>(f)];
        blk.resize(bytes);
        for (std::size_t i = 0; i < bytes; ++i)
          blk[i] = static_cast<std::byte>((r * 31 + f * 7 + salt * 131 + i) &
                                          0xFF);
      }
    }
    return data;
  }

  std::string dir_;
};

TEST_F(HostStress, MultiGenerationCampaignAllVerifiable) {
  constexpr int kNp = 32;
  constexpr int kGenerations = 4;
  HostSpec spec;
  spec.directory = dir_;
  spec.fieldNames = {"Ex", "Ey", "Ez", "Hx", "Hy", "Hz"};
  spec.fieldBytesPerRank = 16 * 1024;
  for (int gen = 0; gen < kGenerations; ++gen) {
    spec.step = gen;
    spec.iteration = static_cast<std::uint64_t>(gen) * 100;
    const auto result = writeCheckpoint(
        spec, {HostStrategy::kRbIo, 8}, makeData(kNp, 6, 16 * 1024, gen));
    EXPECT_GT(result.bandwidth, 0);
  }
  // Every generation independently verifiable and readable.
  for (int gen = 0; gen < kGenerations; ++gen) {
    HostSpec probe;
    probe.directory = dir_;
    probe.step = gen;
    EXPECT_TRUE(verifyCheckpoint(probe)) << "generation " << gen;
    const auto back = readCheckpoint(probe, kNp);
    EXPECT_EQ(probe.iteration, static_cast<std::uint64_t>(gen) * 100);
    const auto expect = makeData(kNp, 6, 16 * 1024, gen);
    for (int r = 0; r < kNp; r += 7)
      ASSERT_EQ(back[static_cast<std::size_t>(r)].fields[3],
                expect[static_cast<std::size_t>(r)].fields[3])
          << "generation " << gen << " rank " << r;
  }
}

TEST_F(HostStress, SixtyFourThreadsConcurrently) {
  constexpr int kNp = 64;
  HostSpec spec;
  spec.directory = dir_;
  spec.fieldNames = {"Ex", "Hy"};
  spec.fieldBytesPerRank = 8 * 1024;
  const auto data = makeData(kNp, 2, 8 * 1024, 0);
  for (auto strategy : {HostStrategy::k1Pfpp, HostStrategy::kCoIo,
                        HostStrategy::kRbIo}) {
    HostSpec s = spec;
    s.directory = dir_ + "/" + std::to_string(static_cast<int>(strategy));
    const auto result = writeCheckpoint(s, {strategy, 8}, data);
    EXPECT_EQ(result.perRankSeconds.size(), 64u);
    EXPECT_TRUE(verifyCheckpoint(s));
  }
}

TEST_F(HostStress, CheckpointWrittenByCoIoRestartsAsRbIoGroups) {
  // The on-disk format is strategy-agnostic: a coIO file set with nf=4 is
  // bit-compatible with what rbIO (4 writers) would produce, and the
  // reader does not care which wrote it.
  constexpr int kNp = 16;
  HostSpec spec;
  spec.directory = dir_;
  spec.fieldNames = {"Ex"};
  spec.fieldBytesPerRank = 4096;
  const auto data = makeData(kNp, 1, 4096, 9);
  writeCheckpoint(spec, {HostStrategy::kCoIo, 4}, data);

  HostSpec probe;
  probe.directory = dir_;
  const auto back = readCheckpoint(probe, kNp);
  for (int r = 0; r < kNp; ++r)
    ASSERT_EQ(back[static_cast<std::size_t>(r)].fields[0],
              data[static_cast<std::size_t>(r)].fields[0]);
}

TEST_F(HostStress, PerRankTimesPopulatedForEveryStrategy) {
  constexpr int kNp = 16;
  HostSpec spec;
  spec.directory = dir_;
  spec.fieldNames = {"Ex"};
  spec.fieldBytesPerRank = 64 * 1024;
  const auto data = makeData(kNp, 1, 64 * 1024, 1);
  for (auto strategy : {HostStrategy::k1Pfpp, HostStrategy::kCoIo,
                        HostStrategy::kRbIo}) {
    HostSpec s = spec;
    s.directory = dir_ + "/t" + std::to_string(static_cast<int>(strategy));
    const auto result = writeCheckpoint(s, {strategy, 4}, data);
    for (double t : result.perRankSeconds) EXPECT_GT(t, 0.0);
    EXPECT_GE(result.wallSeconds,
              *std::max_element(result.perRankSeconds.begin(),
                                result.perRankSeconds.end()) *
                  0.5);
  }
}

}  // namespace
}  // namespace bgckpt::hostio
