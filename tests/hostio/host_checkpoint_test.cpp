#include "hostio/host_checkpoint.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

namespace bgckpt::hostio {
namespace {

class HostCheckpointTest : public ::testing::TestWithParam<HostStrategy> {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bgckpt_host_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    // gtest parameterised names contain '/', which we must not mkdir as-is.
    std::replace(dir_.begin(), dir_.end(), '/', '_');
    dir_ = (std::filesystem::temp_directory_path() / dir_).string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static HostSpec makeSpec(const std::string& dir,
                           std::uint64_t fieldBytes = 2048) {
    HostSpec spec;
    spec.directory = dir;
    spec.step = 4;
    spec.fieldNames = {"Ex", "Ey", "Ez", "Hx", "Hy", "Hz"};
    spec.fieldBytesPerRank = fieldBytes;
    spec.simTime = 2.5;
    spec.iteration = 77;
    return spec;
  }

  static std::vector<HostRankData> makeData(int np, const HostSpec& spec) {
    std::vector<HostRankData> data(static_cast<std::size_t>(np));
    for (int r = 0; r < np; ++r) {
      auto& rank = data[static_cast<std::size_t>(r)];
      rank.fields.resize(spec.fieldNames.size());
      for (std::size_t f = 0; f < rank.fields.size(); ++f) {
        rank.fields[f].resize(spec.fieldBytesPerRank);
        for (std::size_t i = 0; i < rank.fields[f].size(); ++i)
          rank.fields[f][i] =
              static_cast<std::byte>((r * 131 + f * 17 + i) & 0xFF);
      }
    }
    return data;
  }

  std::string dir_;
};

TEST_P(HostCheckpointTest, WriteReadRoundTripAllStrategies) {
  constexpr int np = 16;
  HostSpec spec = makeSpec(dir_);
  const auto data = makeData(np, spec);
  HostConfig config;
  config.strategy = GetParam();
  config.nf = 4;
  const auto result = writeCheckpoint(spec, config, data);
  EXPECT_GT(result.wallSeconds, 0);
  EXPECT_GT(result.bandwidth, 0);
  EXPECT_EQ(result.perRankSeconds.size(), 16u);
  EXPECT_TRUE(verifyCheckpoint(spec));

  HostSpec readSpec;
  readSpec.directory = spec.directory;
  readSpec.step = spec.step;
  const auto back = readCheckpoint(readSpec, np);
  EXPECT_DOUBLE_EQ(readSpec.simTime, 2.5);
  EXPECT_EQ(readSpec.iteration, 77u);
  EXPECT_EQ(readSpec.fieldNames, spec.fieldNames);
  for (int r = 0; r < np; ++r)
    for (std::size_t f = 0; f < spec.fieldNames.size(); ++f)
      ASSERT_EQ(back[static_cast<std::size_t>(r)].fields[f],
                data[static_cast<std::size_t>(r)].fields[f])
          << "rank " << r << " field " << f;
}

TEST_P(HostCheckpointTest, FileCountMatchesStrategy) {
  constexpr int np = 8;
  HostSpec spec = makeSpec(dir_);
  HostConfig config;
  config.strategy = GetParam();
  config.nf = 2;
  writeCheckpoint(spec, config, makeData(np, spec));
  int files = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(spec.directory))
    ++files;
  EXPECT_EQ(files, GetParam() == HostStrategy::k1Pfpp ? np : 2);
}

INSTANTIATE_TEST_SUITE_P(Strategies, HostCheckpointTest,
                         ::testing::Values(HostStrategy::k1Pfpp,
                                           HostStrategy::kCoIo,
                                           HostStrategy::kCoIoTwoPhase,
                                           HostStrategy::kRbIo),
                         [](const auto& paramInfo) {
                           switch (paramInfo.param) {
                             case HostStrategy::k1Pfpp: return "OnePfpp";
                             case HostStrategy::kCoIo: return "CoIo";
                             case HostStrategy::kCoIoTwoPhase:
                               return "CoIoTwoPhase";
                             default: return "RbIo";
                           }
                         });

TEST(HostCheckpoint, TwoPhaseBlocksWorkersUntilCommit) {
  // Collective semantics: in coIO two-phase, non-aggregator ranks wait for
  // their group's file; in rbIO they return after the handoff. Same data,
  // same files — very different worker-visible times.
  constexpr int kNp = 8;
  const auto base = std::filesystem::temp_directory_path() /
                    ("bgckpt_twophase_" + std::to_string(::getpid()));
  std::filesystem::remove_all(base);
  HostSpec spec;
  spec.fieldNames = {"Ex", "Ey", "Ez", "Hx", "Hy", "Hz"};
  spec.fieldBytesPerRank = 512 * 1024;
  std::vector<HostRankData> data(kNp);
  for (auto& r : data)
    r.fields.assign(6, std::vector<std::byte>(spec.fieldBytesPerRank,
                                              std::byte{0x5A}));
  auto runOne = [&](HostStrategy strategy) {
    HostSpec s = spec;
    s.directory =
        (base / std::to_string(static_cast<int>(strategy))).string();
    return writeCheckpoint(s, {strategy, 1}, data);
  };
  const auto twoPhase = runOne(HostStrategy::kCoIoTwoPhase);
  const auto rbio = runOne(HostStrategy::kRbIo);

  auto workerMax = [](const HostRunResult& r) {
    double mx = 0;
    for (std::size_t i = 1; i < r.perRankSeconds.size(); ++i)
      mx = std::max(mx, r.perRankSeconds[i]);
    return mx;
  };
  // Two-phase workers block for (almost) the whole wall time; rbIO workers
  // for a small fraction of it.
  EXPECT_GT(workerMax(twoPhase), 0.5 * twoPhase.wallSeconds);
  EXPECT_LT(workerMax(rbio), workerMax(twoPhase));
  std::filesystem::remove_all(base);
}

TEST(HostCheckpoint, StrategiesProduceInterchangeableFiles) {
  // Same logical content, any strategy; coIO and rbIO with equal nf produce
  // the same file set, and all three read back identically.
  constexpr int np = 8;
  const auto base = std::filesystem::temp_directory_path() /
                    ("bgckpt_hostx_" + std::to_string(::getpid()));
  std::filesystem::remove_all(base);
  HostSpec spec;
  spec.step = 1;
  spec.fieldNames = {"Ex", "Hy"};
  spec.fieldBytesPerRank = 512;
  std::vector<HostRankData> data(np);
  for (int r = 0; r < np; ++r) {
    data[static_cast<std::size_t>(r)].fields.assign(
        2, std::vector<std::byte>(512, static_cast<std::byte>(r + 1)));
  }
  std::vector<std::vector<HostRankData>> reads;
  for (auto strategy : {HostStrategy::k1Pfpp, HostStrategy::kCoIo,
                        HostStrategy::kRbIo}) {
    HostSpec s = spec;
    s.directory = (base / std::to_string(static_cast<int>(strategy))).string();
    HostConfig cfg{strategy, 2};
    writeCheckpoint(s, cfg, data);
    HostSpec rs;
    rs.directory = s.directory;
    rs.step = s.step;
    reads.push_back(readCheckpoint(rs, np));
  }
  for (std::size_t s = 1; s < reads.size(); ++s)
    for (int r = 0; r < np; ++r)
      for (int f = 0; f < 2; ++f)
        ASSERT_EQ(reads[s][static_cast<std::size_t>(r)]
                      .fields[static_cast<std::size_t>(f)],
                  reads[0][static_cast<std::size_t>(r)]
                      .fields[static_cast<std::size_t>(f)]);
  std::filesystem::remove_all(base);
}

TEST(HostCheckpoint, RbIoPerceivedBandwidthExceedsRaw) {
  constexpr int np = 8;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("bgckpt_hostp_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  HostSpec spec;
  spec.directory = dir.string();
  spec.fieldNames = {"Ex", "Ey", "Ez", "Hx", "Hy", "Hz"};
  spec.fieldBytesPerRank = 256 * 1024;
  std::vector<HostRankData> data(np);
  for (auto& r : data)
    r.fields.assign(6, std::vector<std::byte>(spec.fieldBytesPerRank,
                                              std::byte{0x42}));
  HostConfig cfg{HostStrategy::kRbIo, 1};
  const auto result = writeCheckpoint(spec, cfg, data);
  // Handing a pointer to the writer is far faster than writing ~12 MB.
  EXPECT_GT(result.perceivedBandwidth, result.bandwidth);
  EXPECT_GT(result.maxHandoffSeconds, 0);
  std::filesystem::remove_all(dir);
}

TEST(HostCheckpoint, InvalidConfigsThrow) {
  HostSpec spec;
  spec.directory = "/tmp/unused";
  spec.fieldNames = {"Ex"};
  spec.fieldBytesPerRank = 8;
  std::vector<HostRankData> data(6);
  for (auto& r : data) r.fields.assign(1, std::vector<std::byte>(8));
  HostConfig cfg{HostStrategy::kCoIo, 4};  // 4 does not divide 6
  EXPECT_THROW(writeCheckpoint(spec, cfg, data), std::invalid_argument);
  EXPECT_THROW(writeCheckpoint(spec, cfg, {}), std::invalid_argument);
  data[0].fields[0].resize(4);  // size mismatch
  cfg.nf = 2;
  EXPECT_THROW(writeCheckpoint(spec, cfg, data), std::invalid_argument);
}

TEST(HostCheckpoint, ReadMissingPartThrows) {
  HostSpec spec;
  spec.directory = "/tmp/bgckpt_definitely_missing_dir";
  spec.step = 0;
  EXPECT_THROW(readCheckpoint(spec, 4), std::runtime_error);
}

}  // namespace
}  // namespace bgckpt::hostio
