#include "hostio/solver_io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

namespace bgckpt::hostio {
namespace {

using nekcem::Boundary;
using nekcem::BoxMesh;
using nekcem::MaxwellSolver;
using nekcem::planeWaveX;

BoxMesh box() { return BoxMesh(2, 2, 2, 1, 1, 1, Boundary::kPeriodic); }

TEST(SolverIo, SpecMatchesSolverGeometry) {
  MaxwellSolver solver(box(), 3);
  const auto spec = solverSpec(solver, 4, "dir", 9);
  EXPECT_EQ(spec.fieldNames.size(), 6u);
  EXPECT_EQ(spec.step, 9);
  // 8 elements, 4^3 nodes each, over 4 ranks: 128 doubles per rank.
  EXPECT_EQ(spec.fieldBytesPerRank, 128u * 8u);
}

TEST(SolverIo, RejectsNonDividingRankCount) {
  MaxwellSolver solver(box(), 3);  // 8 elements
  EXPECT_THROW(solverSpec(solver, 3, "dir", 0), std::invalid_argument);
  EXPECT_THROW(sliceSolverState(solver, 0, 5), std::invalid_argument);
}

TEST(SolverIo, SnapshotRestoreRoundTrip) {
  MaxwellSolver a(box(), 4);
  a.setSolution(planeWaveX(1.0), 0.0);
  a.run(4, a.stableDt());
  const auto data = snapshotSolver(a, 4);
  const auto spec = solverSpec(a, 4, "dir", 0);

  MaxwellSolver b(box(), 4);
  restoreSolver(b, data, spec);
  EXPECT_DOUBLE_EQ(b.time(), a.time());
  EXPECT_EQ(b.stepsTaken(), a.stepsTaken());
  for (int f = 0; f < 6; ++f)
    EXPECT_EQ(a.fields().comp[static_cast<std::size_t>(f)],
              b.fields().comp[static_cast<std::size_t>(f)]);
}

TEST(SolverIo, FullCheckpointRestartResumesBitwise) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("bgckpt_solverio_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  constexpr int kRanks = 8;
  MaxwellSolver original(box(), 4);
  original.setSolution(planeWaveX(1.0), 0.0);
  const double dt = original.stableDt();
  original.run(5, dt);

  // Checkpoint with rbIO (2 writers), "crash", restart, resume.
  auto spec = solverSpec(original, kRanks, dir.string(), 3);
  writeCheckpoint(spec, HostConfig{HostStrategy::kRbIo, 2},
                  snapshotSolver(original, kRanks));
  original.run(5, dt);  // reference trajectory continues

  HostSpec readSpec;
  readSpec.directory = dir.string();
  readSpec.step = 3;
  const auto data = readCheckpoint(readSpec, kRanks);
  MaxwellSolver resumed(box(), 4);
  restoreSolver(resumed, data, readSpec);
  EXPECT_EQ(resumed.stepsTaken(), 5u);
  resumed.run(5, dt);

  for (int f = 0; f < 6; ++f) {
    const auto& ca = original.fields().comp[static_cast<std::size_t>(f)];
    const auto& cb = resumed.fields().comp[static_cast<std::size_t>(f)];
    for (std::size_t i = 0; i < ca.size(); ++i)
      ASSERT_EQ(ca[i], cb[i]) << "component " << f << " dof " << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(SolverIo, RestoreRejectsMismatchedLayout) {
  MaxwellSolver solver(box(), 3);
  std::vector<HostRankData> bad(4);
  for (auto& r : bad) r.fields.assign(6, std::vector<std::byte>(16));
  HostSpec spec;
  EXPECT_THROW(restoreSolver(solver, bad, spec), std::invalid_argument);
}

}  // namespace
}  // namespace bgckpt::hostio
