// The BG/P aggregator-selection rule is load-bearing for the whole
// reproduction (it sets the filesystem client counts of every strategy),
// so it gets its own suite: dense communicators give the stock 32:1 ratio,
// sub-communicators get aggregators proportional to their pset population,
// sparse communicators get at least one per touched pset.
#include <gtest/gtest.h>

#include "mpiio/file.hpp"

namespace bgckpt::io {
namespace {

using machine::intrepidMachine;
using sim::Scheduler;
using sim::Task;

struct Probe {
  Scheduler sched;
  machine::Machine mach;
  net::TorusNetwork torus;
  net::CollectiveNetwork coll;
  mpi::Runtime rt;

  explicit Probe(int ranks)
      : mach(intrepidMachine(ranks)),
        torus(sched, mach),
        coll(mach),
        rt(sched, mach, torus, coll, 1) {}
};

// Runs `fn` once on rank 0 with a world communicator view.
template <typename Fn>
void onWorld(Probe& p, Fn&& fn) {
  bool ran = false;
  auto program = [&fn, &ran](mpi::Comm comm) -> Task<> {
    if (comm.rank() == 0) {
      fn(comm);
      ran = true;
    }
    co_return;
  };
  p.rt.spawnAll(program);
  p.sched.run();
  ASSERT_TRUE(ran);
}

TEST(ChooseAggregatorsRule, DenseWorldGives32To1) {
  for (int ranks : {4096, 16384}) {
    Probe p(ranks);
    onWorld(p, [ranks](mpi::Comm comm) {
      const auto aggs = chooseAggregators(comm, Hints{});
      EXPECT_EQ(static_cast<int>(aggs.size()), ranks / 32)
          << "at " << ranks << " ranks";
    });
  }
}

TEST(ChooseAggregatorsRule, AggregatorsAreSortedUniqueInRange) {
  Probe p(4096);
  onWorld(p, [](mpi::Comm comm) {
    const auto aggs = chooseAggregators(comm, Hints{});
    for (std::size_t i = 0; i < aggs.size(); ++i) {
      EXPECT_GE(aggs[i], 0);
      EXPECT_LT(aggs[i], comm.size());
      if (i > 0) {
        EXPECT_GT(aggs[i], aggs[i - 1]);
      }
    }
  });
}

TEST(ChooseAggregatorsRule, DenseSubgroupOf64Gives2) {
  // The paper's 64-rank split-collective groups use the stock ratio: 2
  // aggregators per group (64 / 32).
  Probe p(4096);
  bool checked = false;
  auto program = [&checked](mpi::Comm comm) -> Task<> {
    mpi::Comm sub = co_await comm.split(comm.rank() / 64, comm.rank());
    if (comm.rank() == 0) {
      const auto aggs = chooseAggregators(sub, Hints{});
      EXPECT_EQ(aggs.size(), 2u);
      checked = true;
    }
  };
  p.rt.spawnAll(program);
  p.sched.run();
  EXPECT_TRUE(checked);
}

TEST(ChooseAggregatorsRule, SparseWriterCommGetsOnePerPset) {
  // rbIO's writer communicator: one rank per 64 (4 per 256-rank pset).
  // ceil(4/32) = 1 aggregator per touched pset.
  Probe p(16384);
  bool checked = false;
  auto program = [&checked](mpi::Comm comm) -> Task<> {
    const bool isWriter = comm.rank() % 64 == 0;
    mpi::Comm sub = co_await comm.split(isWriter ? 0 : 1, comm.rank());
    if (comm.rank() == 0) {
      // 256 writers spread over 64 psets.
      EXPECT_EQ(sub.size(), 256);
      const auto aggs = chooseAggregators(sub, Hints{});
      EXPECT_EQ(aggs.size(), 64u);
      checked = true;
    }
  };
  p.rt.spawnAll(program);
  p.sched.run();
  EXPECT_TRUE(checked);
}

TEST(ChooseAggregatorsRule, HintScalesTheCount) {
  Probe p(4096);
  onWorld(p, [](mpi::Comm comm) {
    Hints h4;
    h4.bgpNodesPset = 4;  // 64:1
    Hints h16;
    h16.bgpNodesPset = 16;  // 16:1
    EXPECT_EQ(chooseAggregators(comm, h4).size(), 4096u / 64u);
    EXPECT_EQ(chooseAggregators(comm, h16).size(), 4096u / 16u);
  });
}

TEST(ChooseAggregatorsRule, NeverExceedsCommSizeOrDropsToZero) {
  Probe p(256);
  bool checked = false;
  auto program = [&checked](mpi::Comm comm) -> Task<> {
    mpi::Comm pair = co_await comm.split(comm.rank() / 2, comm.rank());
    if (comm.rank() == 0) {
      Hints huge;
      huge.bgpNodesPset = 1000;
      const auto aggs = chooseAggregators(pair, huge);
      EXPECT_GE(aggs.size(), 1u);
      EXPECT_LE(aggs.size(), 2u);
      checked = true;
    }
  };
  p.rt.spawnAll(program);
  p.sched.run();
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace bgckpt::io
