#include "mpiio/file.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace bgckpt::io {
namespace {

using machine::Machine;
using machine::intrepidMachine;
using sim::MiB;
using sim::Scheduler;
using sim::Task;

// Full stack: scheduler + machine + torus + ION + storage + fs + MPI.
struct Job {
  Scheduler sched;
  Machine mach;
  net::TorusNetwork torus;
  net::CollectiveNetwork coll;
  net::IonForwarding ion;
  stor::StorageFabric fabric;
  fs::ParallelFsSim fsys;
  mpi::Runtime rt;

  explicit Job(int ranks = 256, fs::FsConfig cfg = fs::gpfsConfig(),
               std::uint64_t seed = 1)
      : mach(intrepidMachine(ranks)),
        torus(sched, mach),
        coll(mach),
        ion(sched, mach),
        fabric(sched, mach, seed, stor::NoiseModel::none(),
               cfg.serverConcurrency),
        fsys(sched, mach, ion, fabric, seed, cfg),
        rt(sched, mach, torus, coll, seed) {}

  void run(std::function<Task<>(mpi::Comm)> program) {
    rt.spawnAll(std::move(program));
    sched.run();
    ASSERT_EQ(sched.liveRoots(), 0u) << "job deadlocked";
  }
};

TEST(ChooseAggregators, DefaultRatioIs32To1) {
  Job job(256);
  Hints hints;
  int count = -1;
  job.run([&](mpi::Comm comm) -> Task<> {
    if (comm.rank() == 0) {
      auto aggs = chooseAggregators(comm, hints);
      count = static_cast<int>(aggs.size());
      EXPECT_EQ(aggs.front(), 0);
      // Evenly spread.
      for (size_t i = 1; i < aggs.size(); ++i)
        EXPECT_EQ(aggs[i] - aggs[i - 1], 32);
    }
    co_return;
  });
  EXPECT_EQ(count, 8);  // 256 ranks / 32
}

TEST(ChooseAggregators, PsetHintChangesRatio) {
  Job job(256);
  Hints hints;
  hints.bgpNodesPset = 4;  // 256/4 = 64:1, the paper's rbIO-like ratio
  job.run([&](mpi::Comm comm) -> Task<> {
    if (comm.rank() == 0) {
      auto aggs = chooseAggregators(comm, hints);
      EXPECT_EQ(aggs.size(), 4u);
    }
    co_return;
  });
}

TEST(MpiFile, CollectiveOpenCreatesOnce) {
  Job job(256);
  job.run([&job](mpi::Comm comm) -> Task<> {
    MpiFile f = co_await MpiFile::open(comm, job.fsys, "out/shared");
    co_await f.close();
  });
  EXPECT_TRUE(job.fsys.image().exists("out/shared"));
  EXPECT_EQ(job.fsys.createsIssued(), 1u);
}

TEST(MpiFile, DeferredOpenOnlyAggregatorsTouchFs) {
  Job job(256);
  int aggCount = 0;
  job.run([&](mpi::Comm comm) -> Task<> {
    MpiFile f = co_await MpiFile::open(comm, job.fsys, "f");
    if (f.isAggregator()) ++aggCount;
    EXPECT_EQ(f.numAggregators(), 8);
    co_await f.close();
  });
  EXPECT_EQ(aggCount, 8);
}

TEST(MpiFile, IndependentWriteAtLandsAtOffset) {
  Job job(256);
  job.run([&job](mpi::Comm comm) -> Task<> {
    MpiFile f = co_await MpiFile::open(comm, job.fsys, "f");
    if (comm.rank() == 5) co_await f.writeAt(10 * MiB, 2 * MiB);
    co_await f.close();
  });
  const auto* img = job.fsys.image().find("f");
  ASSERT_NE(img, nullptr);
  EXPECT_EQ(img->size(), 12 * MiB);
  EXPECT_EQ(img->coveredBytes(), 2 * MiB);
}

TEST(MpiFile, CollectiveWriteCoversWholeRegion) {
  Job job(256);
  const sim::Bytes perRank = MiB / 4;
  job.run([&](mpi::Comm comm) -> Task<> {
    MpiFile f = co_await MpiFile::open(comm, job.fsys, "ckpt");
    const auto off = static_cast<std::uint64_t>(comm.rank()) * perRank;
    co_await f.writeAtAll(off, perRank);
    co_await f.close();
  });
  const auto* img = job.fsys.image().find("ckpt");
  ASSERT_NE(img, nullptr);
  EXPECT_TRUE(img->coversExactly(256 * perRank));
}

TEST(MpiFile, CollectiveWritePreservesContent) {
  Job job(256);
  const sim::Bytes perRank = 64 * 1024;
  job.run([&](mpi::Comm comm) -> Task<> {
    MpiFile f = co_await MpiFile::open(comm, job.fsys, "ckpt");
    std::vector<std::byte> data(perRank);
    for (size_t i = 0; i < data.size(); ++i)
      data[i] = static_cast<std::byte>((i + static_cast<size_t>(comm.rank())) &
                                       0xff);
    const auto off = static_cast<std::uint64_t>(comm.rank()) * perRank;
    co_await f.writeAtAll(off, perRank, data);
    co_await f.close();
  });
  const auto* img = job.fsys.image().find("ckpt");
  ASSERT_NE(img, nullptr);
  ASSERT_TRUE(img->coversExactly(256 * perRank));
  // Spot-check a few ranks' regions.
  for (int r : {0, 1, 100, 255}) {
    auto back = img->readBytes(
        {static_cast<std::uint64_t>(r) * perRank, perRank});
    for (size_t i = 0; i < back.size(); i += 997)
      ASSERT_EQ(back[i],
                static_cast<std::byte>((i + static_cast<size_t>(r)) & 0xff))
          << "rank " << r << " byte " << i;
  }
}

TEST(MpiFile, CollectiveWriteOnlyAggregatorsHitServers) {
  Job job(256);
  job.run([&job](mpi::Comm comm) -> Task<> {
    MpiFile f = co_await MpiFile::open(comm, job.fsys, "f");
    co_await f.writeAtAll(static_cast<std::uint64_t>(comm.rank()) * MiB, MiB);
    co_await f.close();
  });
  // All fs-level writes must come from the 8 aggregators, coalesced into
  // cb-buffer chunks: 256 MiB / 16 MiB = 16 fs writes.
  EXPECT_EQ(job.fsys.writesIssued(), 16u);
}

TEST(MpiFile, UnalignedDomainsCauseMoreRevocations) {
  auto run = [&](bool aligned) {
    Job job(256);
    Hints hints;
    hints.alignFileDomains = aligned;
    // Per-rank extents straddle block boundaries (4 MiB blocks, 1.5 MiB
    // extents), so unaligned domains share blocks between aggregators.
    job.run([&job, hints](mpi::Comm comm) -> Task<> {
      MpiFile f = co_await MpiFile::open(comm, job.fsys, "f", hints);
      const auto off =
          static_cast<std::uint64_t>(comm.rank()) * (3 * MiB / 2);
      co_await f.writeAtAll(off, 3 * MiB / 2);
      co_await f.close();
    });
    return job.fsys.totalRevocations();
  };
  EXPECT_LE(run(true), run(false));
}

TEST(MpiFile, RepeatedCollectiveRoundsProgress) {
  Job job(256);
  job.run([&job](mpi::Comm comm) -> Task<> {
    MpiFile f = co_await MpiFile::open(comm, job.fsys, "f");
    const sim::Bytes perRank = 128 * 1024;
    for (int field = 0; field < 6; ++field) {
      const auto base = static_cast<std::uint64_t>(field) * 256 * perRank;
      co_await f.writeAtAll(
          base + static_cast<std::uint64_t>(comm.rank()) * perRank, perRank);
    }
    co_await f.close();
  });
  const auto* img = job.fsys.image().find("f");
  ASSERT_NE(img, nullptr);
  EXPECT_TRUE(img->coversExactly(6ull * 256 * 128 * 1024));
}

TEST(MpiFile, ZeroLengthParticipantsAreFine) {
  Job job(256);
  job.run([&job](mpi::Comm comm) -> Task<> {
    MpiFile f = co_await MpiFile::open(comm, job.fsys, "f");
    // Only even ranks contribute data.
    const bool writes = comm.rank() % 2 == 0;
    co_await f.writeAtAll(
        static_cast<std::uint64_t>(comm.rank() / 2) * MiB,
        writes ? MiB : 0);
    co_await f.close();
  });
  const auto* img = job.fsys.image().find("f");
  ASSERT_NE(img, nullptr);
  EXPECT_TRUE(img->coversExactly(128 * MiB));
}

TEST(MpiFile, AllZeroCollectiveWriteJustSynchronises) {
  Job job(256);
  job.run([&job](mpi::Comm comm) -> Task<> {
    MpiFile f = co_await MpiFile::open(comm, job.fsys, "f");
    co_await f.writeAtAll(0, 0);
    co_await f.close();
  });
  EXPECT_EQ(job.fsys.writesIssued(), 0u);
}

TEST(MpiFile, SplitCommunicatorsWriteSeparateFiles) {
  // The paper's np:nf = 64:1 split-collective configuration in miniature.
  Job job(256);
  job.run([&job](mpi::Comm comm) -> Task<> {
    mpi::Comm sub = co_await comm.split(comm.rank() / 64, comm.rank());
    const std::string path = "ckpt." + std::to_string(comm.rank() / 64);
    MpiFile f = co_await MpiFile::open(sub, job.fsys, path);
    co_await f.writeAtAll(static_cast<std::uint64_t>(sub.rank()) * MiB, MiB);
    co_await f.close();
  });
  EXPECT_EQ(job.fsys.image().fileCount(), 4u);
  for (int g = 0; g < 4; ++g) {
    const auto* img = job.fsys.image().find("ckpt." + std::to_string(g));
    ASSERT_NE(img, nullptr);
    EXPECT_TRUE(img->coversExactly(64 * MiB));
  }
}

TEST(MpiFile, ReadAtCompletes) {
  Job job(256);
  job.run([&job](mpi::Comm comm) -> Task<> {
    MpiFile f = co_await MpiFile::open(comm, job.fsys, "f");
    if (comm.rank() == 0) {
      co_await f.writeAt(0, 8 * MiB);
      co_await f.readAt(0, 8 * MiB);
    }
    co_await f.close();
  });
}

}  // namespace
}  // namespace bgckpt::io
