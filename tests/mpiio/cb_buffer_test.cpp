// Collective-buffering behaviour under the cb_buffer_size hint, and the
// interaction between domain alignment and block size.
#include <gtest/gtest.h>

#include "mpiio/file.hpp"

namespace bgckpt::io {
namespace {

using machine::intrepidMachine;
using sim::MiB;
using sim::Scheduler;
using sim::Task;

struct Job {
  Scheduler sched;
  machine::Machine mach;
  net::TorusNetwork torus;
  net::CollectiveNetwork coll;
  net::IonForwarding ion;
  stor::StorageFabric fabric;
  fs::ParallelFsSim fsys;
  mpi::Runtime rt;

  explicit Job(int ranks, fs::FsConfig cfg = fs::gpfsConfig())
      : mach(intrepidMachine(ranks)),
        torus(sched, mach),
        coll(mach),
        ion(sched, mach),
        fabric(sched, mach, 1, stor::NoiseModel::none(),
               cfg.serverConcurrency),
        fsys(sched, mach, ion, fabric, 1, cfg),
        rt(sched, mach, torus, coll, 1) {}

  void run(std::function<Task<>(mpi::Comm)> program) {
    rt.spawnAll(std::move(program));
    sched.run();
    ASSERT_EQ(sched.liveRoots(), 0u);
  }
};

std::uint64_t writesWithCb(sim::Bytes cbBytes) {
  Job job(256);
  Hints hints;
  hints.cbBufferSize = cbBytes;
  job.run([&job, hints](mpi::Comm comm) -> Task<> {
    MpiFile f = co_await MpiFile::open(comm, job.fsys, "f", hints);
    co_await f.writeAtAll(static_cast<std::uint64_t>(comm.rank()) * MiB, MiB);
    co_await f.close();
  });
  return job.fsys.writesIssued();
}

TEST(CbBuffer, SmallerBuffersIssueMoreFsWrites) {
  const auto small = writesWithCb(4 * MiB);
  const auto large = writesWithCb(64 * MiB);
  EXPECT_GT(small, large);
  // 256 MiB over 8 aggregators: 32 MiB domains. 4 MiB cb -> 8 writes per
  // aggregator; 64 MiB cb -> a single write per aggregator.
  EXPECT_EQ(small, 64u);
  EXPECT_EQ(large, 8u);
}

TEST(CbBuffer, ChunkingDoesNotChangeContentOrCoverage) {
  for (sim::Bytes cb : {2 * MiB, 16 * MiB}) {
    Job job(256);
    Hints hints;
    hints.cbBufferSize = cb;
    job.run([&job, hints](mpi::Comm comm) -> Task<> {
      MpiFile f = co_await MpiFile::open(comm, job.fsys, "f", hints);
      co_await f.writeAtAll(
          static_cast<std::uint64_t>(comm.rank()) * (MiB / 2), MiB / 2);
      co_await f.close();
    });
    const auto* img = job.fsys.image().find("f");
    ASSERT_NE(img, nullptr);
    EXPECT_TRUE(img->coversExactly(256 * (MiB / 2))) << "cb=" << cb;
  }
}

TEST(CbBuffer, AlignedDomainsStartOnFsBlocks) {
  // With alignment on, no two aggregators ever hold tokens on the same
  // filesystem block, so steady-state revocations stay at the one-time
  // carve level.
  Job job(256);
  job.run([&job](mpi::Comm comm) -> Task<> {
    MpiFile f = co_await MpiFile::open(comm, job.fsys, "f");
    for (int round = 0; round < 4; ++round)
      co_await f.writeAtAll(
          static_cast<std::uint64_t>(round) * 256 * MiB +
              static_cast<std::uint64_t>(comm.rank()) * MiB,
          MiB);
    co_await f.close();
  });
  // 8 aggregators, 4 rounds; a handful of carves per round at most, far
  // from the per-write ping-pong of unaligned domains.
  EXPECT_LE(job.fsys.totalRevocations(), 8u * 4u);
}

}  // namespace
}  // namespace bgckpt::io
