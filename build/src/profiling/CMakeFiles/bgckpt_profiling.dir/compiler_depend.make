# Empty compiler generated dependencies file for bgckpt_profiling.
# This may be replaced when dependencies are built.
