file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_profiling.dir/profile.cpp.o"
  "CMakeFiles/bgckpt_profiling.dir/profile.cpp.o.d"
  "CMakeFiles/bgckpt_profiling.dir/report.cpp.o"
  "CMakeFiles/bgckpt_profiling.dir/report.cpp.o.d"
  "libbgckpt_profiling.a"
  "libbgckpt_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
