file(REMOVE_RECURSE
  "libbgckpt_profiling.a"
)
