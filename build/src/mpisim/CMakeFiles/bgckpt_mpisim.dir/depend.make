# Empty dependencies file for bgckpt_mpisim.
# This may be replaced when dependencies are built.
