file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_mpisim.dir/comm.cpp.o"
  "CMakeFiles/bgckpt_mpisim.dir/comm.cpp.o.d"
  "libbgckpt_mpisim.a"
  "libbgckpt_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
