file(REMOVE_RECURSE
  "libbgckpt_mpisim.a"
)
