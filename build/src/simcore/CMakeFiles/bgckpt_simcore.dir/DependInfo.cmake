
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcore/random.cpp" "src/simcore/CMakeFiles/bgckpt_simcore.dir/random.cpp.o" "gcc" "src/simcore/CMakeFiles/bgckpt_simcore.dir/random.cpp.o.d"
  "/root/repo/src/simcore/scheduler.cpp" "src/simcore/CMakeFiles/bgckpt_simcore.dir/scheduler.cpp.o" "gcc" "src/simcore/CMakeFiles/bgckpt_simcore.dir/scheduler.cpp.o.d"
  "/root/repo/src/simcore/stats.cpp" "src/simcore/CMakeFiles/bgckpt_simcore.dir/stats.cpp.o" "gcc" "src/simcore/CMakeFiles/bgckpt_simcore.dir/stats.cpp.o.d"
  "/root/repo/src/simcore/units.cpp" "src/simcore/CMakeFiles/bgckpt_simcore.dir/units.cpp.o" "gcc" "src/simcore/CMakeFiles/bgckpt_simcore.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
