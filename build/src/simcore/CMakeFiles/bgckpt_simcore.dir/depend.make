# Empty dependencies file for bgckpt_simcore.
# This may be replaced when dependencies are built.
