file(REMOVE_RECURSE
  "libbgckpt_simcore.a"
)
