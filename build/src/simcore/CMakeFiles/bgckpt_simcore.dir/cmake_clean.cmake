file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_simcore.dir/random.cpp.o"
  "CMakeFiles/bgckpt_simcore.dir/random.cpp.o.d"
  "CMakeFiles/bgckpt_simcore.dir/scheduler.cpp.o"
  "CMakeFiles/bgckpt_simcore.dir/scheduler.cpp.o.d"
  "CMakeFiles/bgckpt_simcore.dir/stats.cpp.o"
  "CMakeFiles/bgckpt_simcore.dir/stats.cpp.o.d"
  "CMakeFiles/bgckpt_simcore.dir/units.cpp.o"
  "CMakeFiles/bgckpt_simcore.dir/units.cpp.o.d"
  "libbgckpt_simcore.a"
  "libbgckpt_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
