file(REMOVE_RECURSE
  "libbgckpt_iofmt.a"
)
