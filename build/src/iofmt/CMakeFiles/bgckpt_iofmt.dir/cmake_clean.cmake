file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_iofmt.dir/file_io.cpp.o"
  "CMakeFiles/bgckpt_iofmt.dir/file_io.cpp.o.d"
  "CMakeFiles/bgckpt_iofmt.dir/format.cpp.o"
  "CMakeFiles/bgckpt_iofmt.dir/format.cpp.o.d"
  "libbgckpt_iofmt.a"
  "libbgckpt_iofmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_iofmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
