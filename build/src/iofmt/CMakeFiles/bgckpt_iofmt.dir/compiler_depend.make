# Empty compiler generated dependencies file for bgckpt_iofmt.
# This may be replaced when dependencies are built.
