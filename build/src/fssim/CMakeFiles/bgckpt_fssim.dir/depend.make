# Empty dependencies file for bgckpt_fssim.
# This may be replaced when dependencies are built.
