file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_fssim.dir/image.cpp.o"
  "CMakeFiles/bgckpt_fssim.dir/image.cpp.o.d"
  "CMakeFiles/bgckpt_fssim.dir/parallel_fs.cpp.o"
  "CMakeFiles/bgckpt_fssim.dir/parallel_fs.cpp.o.d"
  "CMakeFiles/bgckpt_fssim.dir/token.cpp.o"
  "CMakeFiles/bgckpt_fssim.dir/token.cpp.o.d"
  "libbgckpt_fssim.a"
  "libbgckpt_fssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_fssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
