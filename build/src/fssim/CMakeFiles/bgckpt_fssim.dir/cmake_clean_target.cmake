file(REMOVE_RECURSE
  "libbgckpt_fssim.a"
)
