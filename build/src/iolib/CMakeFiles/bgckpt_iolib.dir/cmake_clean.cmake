file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_iolib.dir/layout.cpp.o"
  "CMakeFiles/bgckpt_iolib.dir/layout.cpp.o.d"
  "CMakeFiles/bgckpt_iolib.dir/multilevel.cpp.o"
  "CMakeFiles/bgckpt_iolib.dir/multilevel.cpp.o.d"
  "CMakeFiles/bgckpt_iolib.dir/restart.cpp.o"
  "CMakeFiles/bgckpt_iolib.dir/restart.cpp.o.d"
  "CMakeFiles/bgckpt_iolib.dir/spec.cpp.o"
  "CMakeFiles/bgckpt_iolib.dir/spec.cpp.o.d"
  "CMakeFiles/bgckpt_iolib.dir/stack.cpp.o"
  "CMakeFiles/bgckpt_iolib.dir/stack.cpp.o.d"
  "CMakeFiles/bgckpt_iolib.dir/strategies.cpp.o"
  "CMakeFiles/bgckpt_iolib.dir/strategies.cpp.o.d"
  "libbgckpt_iolib.a"
  "libbgckpt_iolib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_iolib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
