
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iolib/layout.cpp" "src/iolib/CMakeFiles/bgckpt_iolib.dir/layout.cpp.o" "gcc" "src/iolib/CMakeFiles/bgckpt_iolib.dir/layout.cpp.o.d"
  "/root/repo/src/iolib/multilevel.cpp" "src/iolib/CMakeFiles/bgckpt_iolib.dir/multilevel.cpp.o" "gcc" "src/iolib/CMakeFiles/bgckpt_iolib.dir/multilevel.cpp.o.d"
  "/root/repo/src/iolib/restart.cpp" "src/iolib/CMakeFiles/bgckpt_iolib.dir/restart.cpp.o" "gcc" "src/iolib/CMakeFiles/bgckpt_iolib.dir/restart.cpp.o.d"
  "/root/repo/src/iolib/spec.cpp" "src/iolib/CMakeFiles/bgckpt_iolib.dir/spec.cpp.o" "gcc" "src/iolib/CMakeFiles/bgckpt_iolib.dir/spec.cpp.o.d"
  "/root/repo/src/iolib/stack.cpp" "src/iolib/CMakeFiles/bgckpt_iolib.dir/stack.cpp.o" "gcc" "src/iolib/CMakeFiles/bgckpt_iolib.dir/stack.cpp.o.d"
  "/root/repo/src/iolib/strategies.cpp" "src/iolib/CMakeFiles/bgckpt_iolib.dir/strategies.cpp.o" "gcc" "src/iolib/CMakeFiles/bgckpt_iolib.dir/strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpiio/CMakeFiles/bgckpt_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/bgckpt_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/fssim/CMakeFiles/bgckpt_fssim.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/bgckpt_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/bgckpt_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/storsim/CMakeFiles/bgckpt_storsim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/bgckpt_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/bgckpt_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
