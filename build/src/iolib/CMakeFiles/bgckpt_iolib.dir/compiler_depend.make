# Empty compiler generated dependencies file for bgckpt_iolib.
# This may be replaced when dependencies are built.
