file(REMOVE_RECURSE
  "libbgckpt_iolib.a"
)
