file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_analysis.dir/ascii.cpp.o"
  "CMakeFiles/bgckpt_analysis.dir/ascii.cpp.o.d"
  "CMakeFiles/bgckpt_analysis.dir/checkpoint_interval.cpp.o"
  "CMakeFiles/bgckpt_analysis.dir/checkpoint_interval.cpp.o.d"
  "CMakeFiles/bgckpt_analysis.dir/models.cpp.o"
  "CMakeFiles/bgckpt_analysis.dir/models.cpp.o.d"
  "libbgckpt_analysis.a"
  "libbgckpt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
