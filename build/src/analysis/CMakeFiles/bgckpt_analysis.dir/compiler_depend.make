# Empty compiler generated dependencies file for bgckpt_analysis.
# This may be replaced when dependencies are built.
