file(REMOVE_RECURSE
  "libbgckpt_analysis.a"
)
