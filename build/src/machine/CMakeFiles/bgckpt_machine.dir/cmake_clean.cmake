file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_machine.dir/bgp.cpp.o"
  "CMakeFiles/bgckpt_machine.dir/bgp.cpp.o.d"
  "libbgckpt_machine.a"
  "libbgckpt_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
