# Empty compiler generated dependencies file for bgckpt_machine.
# This may be replaced when dependencies are built.
