file(REMOVE_RECURSE
  "libbgckpt_machine.a"
)
