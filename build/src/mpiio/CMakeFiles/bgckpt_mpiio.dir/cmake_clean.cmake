file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_mpiio.dir/file.cpp.o"
  "CMakeFiles/bgckpt_mpiio.dir/file.cpp.o.d"
  "libbgckpt_mpiio.a"
  "libbgckpt_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
