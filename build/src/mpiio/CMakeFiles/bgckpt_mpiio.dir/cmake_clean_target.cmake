file(REMOVE_RECURSE
  "libbgckpt_mpiio.a"
)
