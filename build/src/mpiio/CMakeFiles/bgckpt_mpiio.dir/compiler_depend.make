# Empty compiler generated dependencies file for bgckpt_mpiio.
# This may be replaced when dependencies are built.
