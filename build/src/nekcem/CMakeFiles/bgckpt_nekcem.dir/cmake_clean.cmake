file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_nekcem.dir/gll.cpp.o"
  "CMakeFiles/bgckpt_nekcem.dir/gll.cpp.o.d"
  "CMakeFiles/bgckpt_nekcem.dir/maxwell.cpp.o"
  "CMakeFiles/bgckpt_nekcem.dir/maxwell.cpp.o.d"
  "CMakeFiles/bgckpt_nekcem.dir/perf_model.cpp.o"
  "CMakeFiles/bgckpt_nekcem.dir/perf_model.cpp.o.d"
  "libbgckpt_nekcem.a"
  "libbgckpt_nekcem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_nekcem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
