file(REMOVE_RECURSE
  "libbgckpt_nekcem.a"
)
