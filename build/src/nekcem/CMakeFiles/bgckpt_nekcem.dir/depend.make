# Empty dependencies file for bgckpt_nekcem.
# This may be replaced when dependencies are built.
