file(REMOVE_RECURSE
  "libbgckpt_storsim.a"
)
