file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_storsim.dir/fabric.cpp.o"
  "CMakeFiles/bgckpt_storsim.dir/fabric.cpp.o.d"
  "libbgckpt_storsim.a"
  "libbgckpt_storsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_storsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
