# Empty dependencies file for bgckpt_storsim.
# This may be replaced when dependencies are built.
