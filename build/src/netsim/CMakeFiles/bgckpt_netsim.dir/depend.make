# Empty dependencies file for bgckpt_netsim.
# This may be replaced when dependencies are built.
