file(REMOVE_RECURSE
  "libbgckpt_netsim.a"
)
