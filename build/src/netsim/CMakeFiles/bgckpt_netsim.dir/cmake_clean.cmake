file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_netsim.dir/ion.cpp.o"
  "CMakeFiles/bgckpt_netsim.dir/ion.cpp.o.d"
  "CMakeFiles/bgckpt_netsim.dir/torus.cpp.o"
  "CMakeFiles/bgckpt_netsim.dir/torus.cpp.o.d"
  "libbgckpt_netsim.a"
  "libbgckpt_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
