file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_hostio.dir/host_checkpoint.cpp.o"
  "CMakeFiles/bgckpt_hostio.dir/host_checkpoint.cpp.o.d"
  "CMakeFiles/bgckpt_hostio.dir/solver_io.cpp.o"
  "CMakeFiles/bgckpt_hostio.dir/solver_io.cpp.o.d"
  "libbgckpt_hostio.a"
  "libbgckpt_hostio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_hostio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
