# Empty dependencies file for bgckpt_hostio.
# This may be replaced when dependencies are built.
