file(REMOVE_RECURSE
  "libbgckpt_hostio.a"
)
