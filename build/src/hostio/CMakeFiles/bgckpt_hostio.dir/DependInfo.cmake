
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hostio/host_checkpoint.cpp" "src/hostio/CMakeFiles/bgckpt_hostio.dir/host_checkpoint.cpp.o" "gcc" "src/hostio/CMakeFiles/bgckpt_hostio.dir/host_checkpoint.cpp.o.d"
  "/root/repo/src/hostio/solver_io.cpp" "src/hostio/CMakeFiles/bgckpt_hostio.dir/solver_io.cpp.o" "gcc" "src/hostio/CMakeFiles/bgckpt_hostio.dir/solver_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iofmt/CMakeFiles/bgckpt_iofmt.dir/DependInfo.cmake"
  "/root/repo/build/src/nekcem/CMakeFiles/bgckpt_nekcem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
