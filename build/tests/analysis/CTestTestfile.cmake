# CMake generated Testfile for 
# Source directory: /root/repo/tests/analysis
# Build directory: /root/repo/build/tests/analysis
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[analysis_test]=] "/root/repo/build/tests/analysis/analysis_test")
set_tests_properties([=[analysis_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/analysis/CMakeLists.txt;1;bgckpt_add_test;/root/repo/tests/analysis/CMakeLists.txt;0;")
