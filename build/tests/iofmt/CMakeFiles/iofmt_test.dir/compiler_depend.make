# Empty compiler generated dependencies file for iofmt_test.
# This may be replaced when dependencies are built.
