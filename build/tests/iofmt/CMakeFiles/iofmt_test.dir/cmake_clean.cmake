file(REMOVE_RECURSE
  "CMakeFiles/iofmt_test.dir/corruption_test.cpp.o"
  "CMakeFiles/iofmt_test.dir/corruption_test.cpp.o.d"
  "CMakeFiles/iofmt_test.dir/file_io_test.cpp.o"
  "CMakeFiles/iofmt_test.dir/file_io_test.cpp.o.d"
  "CMakeFiles/iofmt_test.dir/format_test.cpp.o"
  "CMakeFiles/iofmt_test.dir/format_test.cpp.o.d"
  "iofmt_test"
  "iofmt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iofmt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
