# CMake generated Testfile for 
# Source directory: /root/repo/tests/iofmt
# Build directory: /root/repo/build/tests/iofmt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[iofmt_test]=] "/root/repo/build/tests/iofmt/iofmt_test")
set_tests_properties([=[iofmt_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/iofmt/CMakeLists.txt;1;bgckpt_add_test;/root/repo/tests/iofmt/CMakeLists.txt;0;")
