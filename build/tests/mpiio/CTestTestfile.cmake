# CMake generated Testfile for 
# Source directory: /root/repo/tests/mpiio
# Build directory: /root/repo/build/tests/mpiio
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[mpiio_test]=] "/root/repo/build/tests/mpiio/mpiio_test")
set_tests_properties([=[mpiio_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/mpiio/CMakeLists.txt;1;bgckpt_add_test;/root/repo/tests/mpiio/CMakeLists.txt;0;")
