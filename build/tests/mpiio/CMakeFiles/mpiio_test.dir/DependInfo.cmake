
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mpiio/aggregator_test.cpp" "tests/mpiio/CMakeFiles/mpiio_test.dir/aggregator_test.cpp.o" "gcc" "tests/mpiio/CMakeFiles/mpiio_test.dir/aggregator_test.cpp.o.d"
  "/root/repo/tests/mpiio/cb_buffer_test.cpp" "tests/mpiio/CMakeFiles/mpiio_test.dir/cb_buffer_test.cpp.o" "gcc" "tests/mpiio/CMakeFiles/mpiio_test.dir/cb_buffer_test.cpp.o.d"
  "/root/repo/tests/mpiio/file_test.cpp" "tests/mpiio/CMakeFiles/mpiio_test.dir/file_test.cpp.o" "gcc" "tests/mpiio/CMakeFiles/mpiio_test.dir/file_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpiio/CMakeFiles/bgckpt_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/bgckpt_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/fssim/CMakeFiles/bgckpt_fssim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/bgckpt_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/storsim/CMakeFiles/bgckpt_storsim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/bgckpt_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/bgckpt_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
