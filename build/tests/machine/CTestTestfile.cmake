# CMake generated Testfile for 
# Source directory: /root/repo/tests/machine
# Build directory: /root/repo/build/tests/machine
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[machine_test]=] "/root/repo/build/tests/machine/machine_test")
set_tests_properties([=[machine_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/machine/CMakeLists.txt;1;bgckpt_add_test;/root/repo/tests/machine/CMakeLists.txt;0;")
