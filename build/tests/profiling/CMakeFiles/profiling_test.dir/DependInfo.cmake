
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/profiling/profile_test.cpp" "tests/profiling/CMakeFiles/profiling_test.dir/profile_test.cpp.o" "gcc" "tests/profiling/CMakeFiles/profiling_test.dir/profile_test.cpp.o.d"
  "/root/repo/tests/profiling/report_test.cpp" "tests/profiling/CMakeFiles/profiling_test.dir/report_test.cpp.o" "gcc" "tests/profiling/CMakeFiles/profiling_test.dir/report_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profiling/CMakeFiles/bgckpt_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/bgckpt_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
