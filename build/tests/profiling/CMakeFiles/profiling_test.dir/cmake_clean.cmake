file(REMOVE_RECURSE
  "CMakeFiles/profiling_test.dir/profile_test.cpp.o"
  "CMakeFiles/profiling_test.dir/profile_test.cpp.o.d"
  "CMakeFiles/profiling_test.dir/report_test.cpp.o"
  "CMakeFiles/profiling_test.dir/report_test.cpp.o.d"
  "profiling_test"
  "profiling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
