# CMake generated Testfile for 
# Source directory: /root/repo/tests/profiling
# Build directory: /root/repo/build/tests/profiling
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[profiling_test]=] "/root/repo/build/tests/profiling/profiling_test")
set_tests_properties([=[profiling_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/profiling/CMakeLists.txt;1;bgckpt_add_test;/root/repo/tests/profiling/CMakeLists.txt;0;")
