# CMake generated Testfile for 
# Source directory: /root/repo/tests/iolib
# Build directory: /root/repo/build/tests/iolib
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[iolib_test]=] "/root/repo/build/tests/iolib/iolib_test")
set_tests_properties([=[iolib_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/iolib/CMakeLists.txt;1;bgckpt_add_test;/root/repo/tests/iolib/CMakeLists.txt;0;")
