file(REMOVE_RECURSE
  "CMakeFiles/iolib_test.dir/campaign_test.cpp.o"
  "CMakeFiles/iolib_test.dir/campaign_test.cpp.o.d"
  "CMakeFiles/iolib_test.dir/layout_test.cpp.o"
  "CMakeFiles/iolib_test.dir/layout_test.cpp.o.d"
  "CMakeFiles/iolib_test.dir/multilevel_test.cpp.o"
  "CMakeFiles/iolib_test.dir/multilevel_test.cpp.o.d"
  "CMakeFiles/iolib_test.dir/restart_test.cpp.o"
  "CMakeFiles/iolib_test.dir/restart_test.cpp.o.d"
  "CMakeFiles/iolib_test.dir/strategies_test.cpp.o"
  "CMakeFiles/iolib_test.dir/strategies_test.cpp.o.d"
  "iolib_test"
  "iolib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iolib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
