# CMake generated Testfile for 
# Source directory: /root/repo/tests/storsim
# Build directory: /root/repo/build/tests/storsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[storsim_test]=] "/root/repo/build/tests/storsim/storsim_test")
set_tests_properties([=[storsim_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/storsim/CMakeLists.txt;1;bgckpt_add_test;/root/repo/tests/storsim/CMakeLists.txt;0;")
