file(REMOVE_RECURSE
  "CMakeFiles/storsim_test.dir/fabric_test.cpp.o"
  "CMakeFiles/storsim_test.dir/fabric_test.cpp.o.d"
  "storsim_test"
  "storsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
