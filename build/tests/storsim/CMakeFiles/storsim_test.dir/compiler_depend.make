# Empty compiler generated dependencies file for storsim_test.
# This may be replaced when dependencies are built.
