# CMake generated Testfile for 
# Source directory: /root/repo/tests/simcore
# Build directory: /root/repo/build/tests/simcore
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[simcore_test]=] "/root/repo/build/tests/simcore/simcore_test")
set_tests_properties([=[simcore_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/simcore/CMakeLists.txt;1;bgckpt_add_test;/root/repo/tests/simcore/CMakeLists.txt;0;")
