
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simcore/channel_test.cpp" "tests/simcore/CMakeFiles/simcore_test.dir/channel_test.cpp.o" "gcc" "tests/simcore/CMakeFiles/simcore_test.dir/channel_test.cpp.o.d"
  "/root/repo/tests/simcore/edge_cases_test.cpp" "tests/simcore/CMakeFiles/simcore_test.dir/edge_cases_test.cpp.o" "gcc" "tests/simcore/CMakeFiles/simcore_test.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/simcore/random_test.cpp" "tests/simcore/CMakeFiles/simcore_test.dir/random_test.cpp.o" "gcc" "tests/simcore/CMakeFiles/simcore_test.dir/random_test.cpp.o.d"
  "/root/repo/tests/simcore/resource_test.cpp" "tests/simcore/CMakeFiles/simcore_test.dir/resource_test.cpp.o" "gcc" "tests/simcore/CMakeFiles/simcore_test.dir/resource_test.cpp.o.d"
  "/root/repo/tests/simcore/scheduler_test.cpp" "tests/simcore/CMakeFiles/simcore_test.dir/scheduler_test.cpp.o" "gcc" "tests/simcore/CMakeFiles/simcore_test.dir/scheduler_test.cpp.o.d"
  "/root/repo/tests/simcore/stats_test.cpp" "tests/simcore/CMakeFiles/simcore_test.dir/stats_test.cpp.o" "gcc" "tests/simcore/CMakeFiles/simcore_test.dir/stats_test.cpp.o.d"
  "/root/repo/tests/simcore/sync_test.cpp" "tests/simcore/CMakeFiles/simcore_test.dir/sync_test.cpp.o" "gcc" "tests/simcore/CMakeFiles/simcore_test.dir/sync_test.cpp.o.d"
  "/root/repo/tests/simcore/task_test.cpp" "tests/simcore/CMakeFiles/simcore_test.dir/task_test.cpp.o" "gcc" "tests/simcore/CMakeFiles/simcore_test.dir/task_test.cpp.o.d"
  "/root/repo/tests/simcore/units_test.cpp" "tests/simcore/CMakeFiles/simcore_test.dir/units_test.cpp.o" "gcc" "tests/simcore/CMakeFiles/simcore_test.dir/units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/bgckpt_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
