file(REMOVE_RECURSE
  "CMakeFiles/simcore_test.dir/channel_test.cpp.o"
  "CMakeFiles/simcore_test.dir/channel_test.cpp.o.d"
  "CMakeFiles/simcore_test.dir/edge_cases_test.cpp.o"
  "CMakeFiles/simcore_test.dir/edge_cases_test.cpp.o.d"
  "CMakeFiles/simcore_test.dir/random_test.cpp.o"
  "CMakeFiles/simcore_test.dir/random_test.cpp.o.d"
  "CMakeFiles/simcore_test.dir/resource_test.cpp.o"
  "CMakeFiles/simcore_test.dir/resource_test.cpp.o.d"
  "CMakeFiles/simcore_test.dir/scheduler_test.cpp.o"
  "CMakeFiles/simcore_test.dir/scheduler_test.cpp.o.d"
  "CMakeFiles/simcore_test.dir/stats_test.cpp.o"
  "CMakeFiles/simcore_test.dir/stats_test.cpp.o.d"
  "CMakeFiles/simcore_test.dir/sync_test.cpp.o"
  "CMakeFiles/simcore_test.dir/sync_test.cpp.o.d"
  "CMakeFiles/simcore_test.dir/task_test.cpp.o"
  "CMakeFiles/simcore_test.dir/task_test.cpp.o.d"
  "CMakeFiles/simcore_test.dir/units_test.cpp.o"
  "CMakeFiles/simcore_test.dir/units_test.cpp.o.d"
  "simcore_test"
  "simcore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
