# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("simcore")
subdirs("machine")
subdirs("netsim")
subdirs("storsim")
subdirs("fssim")
subdirs("mpisim")
subdirs("mpiio")
subdirs("iolib")
subdirs("nekcem")
subdirs("iofmt")
subdirs("hostio")
subdirs("analysis")
subdirs("profiling")
subdirs("integration")
