# Empty dependencies file for hostio_test.
# This may be replaced when dependencies are built.
