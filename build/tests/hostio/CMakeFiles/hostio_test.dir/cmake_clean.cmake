file(REMOVE_RECURSE
  "CMakeFiles/hostio_test.dir/host_checkpoint_test.cpp.o"
  "CMakeFiles/hostio_test.dir/host_checkpoint_test.cpp.o.d"
  "CMakeFiles/hostio_test.dir/solver_io_test.cpp.o"
  "CMakeFiles/hostio_test.dir/solver_io_test.cpp.o.d"
  "CMakeFiles/hostio_test.dir/stress_test.cpp.o"
  "CMakeFiles/hostio_test.dir/stress_test.cpp.o.d"
  "hostio_test"
  "hostio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
