
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hostio/host_checkpoint_test.cpp" "tests/hostio/CMakeFiles/hostio_test.dir/host_checkpoint_test.cpp.o" "gcc" "tests/hostio/CMakeFiles/hostio_test.dir/host_checkpoint_test.cpp.o.d"
  "/root/repo/tests/hostio/solver_io_test.cpp" "tests/hostio/CMakeFiles/hostio_test.dir/solver_io_test.cpp.o" "gcc" "tests/hostio/CMakeFiles/hostio_test.dir/solver_io_test.cpp.o.d"
  "/root/repo/tests/hostio/stress_test.cpp" "tests/hostio/CMakeFiles/hostio_test.dir/stress_test.cpp.o" "gcc" "tests/hostio/CMakeFiles/hostio_test.dir/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hostio/CMakeFiles/bgckpt_hostio.dir/DependInfo.cmake"
  "/root/repo/build/src/iofmt/CMakeFiles/bgckpt_iofmt.dir/DependInfo.cmake"
  "/root/repo/build/src/nekcem/CMakeFiles/bgckpt_nekcem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
