# CMake generated Testfile for 
# Source directory: /root/repo/tests/hostio
# Build directory: /root/repo/build/tests/hostio
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[hostio_test]=] "/root/repo/build/tests/hostio/hostio_test")
set_tests_properties([=[hostio_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/hostio/CMakeLists.txt;1;bgckpt_add_test;/root/repo/tests/hostio/CMakeLists.txt;0;")
