# CMake generated Testfile for 
# Source directory: /root/repo/tests/netsim
# Build directory: /root/repo/build/tests/netsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[netsim_test]=] "/root/repo/build/tests/netsim/netsim_test")
set_tests_properties([=[netsim_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/netsim/CMakeLists.txt;1;bgckpt_add_test;/root/repo/tests/netsim/CMakeLists.txt;0;")
