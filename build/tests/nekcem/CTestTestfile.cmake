# CMake generated Testfile for 
# Source directory: /root/repo/tests/nekcem
# Build directory: /root/repo/build/tests/nekcem
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[nekcem_test]=] "/root/repo/build/tests/nekcem/nekcem_test")
set_tests_properties([=[nekcem_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/nekcem/CMakeLists.txt;1;bgckpt_add_test;/root/repo/tests/nekcem/CMakeLists.txt;0;")
