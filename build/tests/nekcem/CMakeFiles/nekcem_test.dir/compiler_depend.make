# Empty compiler generated dependencies file for nekcem_test.
# This may be replaced when dependencies are built.
