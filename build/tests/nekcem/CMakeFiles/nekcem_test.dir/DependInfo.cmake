
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nekcem/gll_test.cpp" "tests/nekcem/CMakeFiles/nekcem_test.dir/gll_test.cpp.o" "gcc" "tests/nekcem/CMakeFiles/nekcem_test.dir/gll_test.cpp.o.d"
  "/root/repo/tests/nekcem/integrator_test.cpp" "tests/nekcem/CMakeFiles/nekcem_test.dir/integrator_test.cpp.o" "gcc" "tests/nekcem/CMakeFiles/nekcem_test.dir/integrator_test.cpp.o.d"
  "/root/repo/tests/nekcem/maxwell_test.cpp" "tests/nekcem/CMakeFiles/nekcem_test.dir/maxwell_test.cpp.o" "gcc" "tests/nekcem/CMakeFiles/nekcem_test.dir/maxwell_test.cpp.o.d"
  "/root/repo/tests/nekcem/perf_model_test.cpp" "tests/nekcem/CMakeFiles/nekcem_test.dir/perf_model_test.cpp.o" "gcc" "tests/nekcem/CMakeFiles/nekcem_test.dir/perf_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nekcem/CMakeFiles/bgckpt_nekcem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
