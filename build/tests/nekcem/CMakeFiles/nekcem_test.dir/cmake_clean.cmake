file(REMOVE_RECURSE
  "CMakeFiles/nekcem_test.dir/gll_test.cpp.o"
  "CMakeFiles/nekcem_test.dir/gll_test.cpp.o.d"
  "CMakeFiles/nekcem_test.dir/integrator_test.cpp.o"
  "CMakeFiles/nekcem_test.dir/integrator_test.cpp.o.d"
  "CMakeFiles/nekcem_test.dir/maxwell_test.cpp.o"
  "CMakeFiles/nekcem_test.dir/maxwell_test.cpp.o.d"
  "CMakeFiles/nekcem_test.dir/perf_model_test.cpp.o"
  "CMakeFiles/nekcem_test.dir/perf_model_test.cpp.o.d"
  "nekcem_test"
  "nekcem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nekcem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
