# CMake generated Testfile for 
# Source directory: /root/repo/tests/mpisim
# Build directory: /root/repo/build/tests/mpisim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[mpisim_test]=] "/root/repo/build/tests/mpisim/mpisim_test")
set_tests_properties([=[mpisim_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/mpisim/CMakeLists.txt;1;bgckpt_add_test;/root/repo/tests/mpisim/CMakeLists.txt;0;")
