file(REMOVE_RECURSE
  "CMakeFiles/mpisim_test.dir/comm_test.cpp.o"
  "CMakeFiles/mpisim_test.dir/comm_test.cpp.o.d"
  "CMakeFiles/mpisim_test.dir/stress_test.cpp.o"
  "CMakeFiles/mpisim_test.dir/stress_test.cpp.o.d"
  "mpisim_test"
  "mpisim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
