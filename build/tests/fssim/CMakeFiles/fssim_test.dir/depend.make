# Empty dependencies file for fssim_test.
# This may be replaced when dependencies are built.
