file(REMOVE_RECURSE
  "CMakeFiles/fssim_test.dir/image_test.cpp.o"
  "CMakeFiles/fssim_test.dir/image_test.cpp.o.d"
  "CMakeFiles/fssim_test.dir/parallel_fs_test.cpp.o"
  "CMakeFiles/fssim_test.dir/parallel_fs_test.cpp.o.d"
  "CMakeFiles/fssim_test.dir/storm_properties_test.cpp.o"
  "CMakeFiles/fssim_test.dir/storm_properties_test.cpp.o.d"
  "CMakeFiles/fssim_test.dir/token_test.cpp.o"
  "CMakeFiles/fssim_test.dir/token_test.cpp.o.d"
  "fssim_test"
  "fssim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fssim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
