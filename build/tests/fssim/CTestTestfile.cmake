# CMake generated Testfile for 
# Source directory: /root/repo/tests/fssim
# Build directory: /root/repo/build/tests/fssim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[fssim_test]=] "/root/repo/build/tests/fssim/fssim_test")
set_tests_properties([=[fssim_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/fssim/CMakeLists.txt;1;bgckpt_add_test;/root/repo/tests/fssim/CMakeLists.txt;0;")
