# Empty dependencies file for fig6_checkpoint_time.
# This may be replaced when dependencies are built.
