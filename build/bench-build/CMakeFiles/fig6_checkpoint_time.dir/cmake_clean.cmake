file(REMOVE_RECURSE
  "../bench/fig6_checkpoint_time"
  "../bench/fig6_checkpoint_time.pdb"
  "CMakeFiles/fig6_checkpoint_time.dir/fig6_checkpoint_time.cpp.o"
  "CMakeFiles/fig6_checkpoint_time.dir/fig6_checkpoint_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_checkpoint_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
