file(REMOVE_RECURSE
  "../bench/fig11_dist_rbio"
  "../bench/fig11_dist_rbio.pdb"
  "CMakeFiles/fig11_dist_rbio.dir/fig11_dist_rbio.cpp.o"
  "CMakeFiles/fig11_dist_rbio.dir/fig11_dist_rbio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_dist_rbio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
