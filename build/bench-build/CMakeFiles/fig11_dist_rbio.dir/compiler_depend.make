# Empty compiler generated dependencies file for fig11_dist_rbio.
# This may be replaced when dependencies are built.
