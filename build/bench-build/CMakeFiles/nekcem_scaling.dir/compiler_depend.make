# Empty compiler generated dependencies file for nekcem_scaling.
# This may be replaced when dependencies are built.
