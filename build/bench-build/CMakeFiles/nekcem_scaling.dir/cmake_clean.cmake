file(REMOVE_RECURSE
  "../bench/nekcem_scaling"
  "../bench/nekcem_scaling.pdb"
  "CMakeFiles/nekcem_scaling.dir/nekcem_scaling.cpp.o"
  "CMakeFiles/nekcem_scaling.dir/nekcem_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nekcem_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
