# Empty compiler generated dependencies file for fig7_ckpt_compute_ratio.
# This may be replaced when dependencies are built.
