file(REMOVE_RECURSE
  "../bench/fig7_ckpt_compute_ratio"
  "../bench/fig7_ckpt_compute_ratio.pdb"
  "CMakeFiles/fig7_ckpt_compute_ratio.dir/fig7_ckpt_compute_ratio.cpp.o"
  "CMakeFiles/fig7_ckpt_compute_ratio.dir/fig7_ckpt_compute_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ckpt_compute_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
