file(REMOVE_RECURSE
  "../bench/eq27_speedup_model"
  "../bench/eq27_speedup_model.pdb"
  "CMakeFiles/eq27_speedup_model.dir/eq27_speedup_model.cpp.o"
  "CMakeFiles/eq27_speedup_model.dir/eq27_speedup_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eq27_speedup_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
