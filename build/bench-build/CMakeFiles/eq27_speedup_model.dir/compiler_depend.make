# Empty compiler generated dependencies file for eq27_speedup_model.
# This may be replaced when dependencies are built.
