# Empty dependencies file for fig8_rbio_nf_sweep.
# This may be replaced when dependencies are built.
