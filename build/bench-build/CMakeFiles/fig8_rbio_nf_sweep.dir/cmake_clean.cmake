file(REMOVE_RECURSE
  "../bench/fig8_rbio_nf_sweep"
  "../bench/fig8_rbio_nf_sweep.pdb"
  "CMakeFiles/fig8_rbio_nf_sweep.dir/fig8_rbio_nf_sweep.cpp.o"
  "CMakeFiles/fig8_rbio_nf_sweep.dir/fig8_rbio_nf_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_rbio_nf_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
