
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_rbio_nf_sweep.cpp" "bench-build/CMakeFiles/fig8_rbio_nf_sweep.dir/fig8_rbio_nf_sweep.cpp.o" "gcc" "bench-build/CMakeFiles/fig8_rbio_nf_sweep.dir/fig8_rbio_nf_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/bgckpt_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hostio/CMakeFiles/bgckpt_hostio.dir/DependInfo.cmake"
  "/root/repo/build/src/iolib/CMakeFiles/bgckpt_iolib.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/bgckpt_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/bgckpt_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/fssim/CMakeFiles/bgckpt_fssim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/bgckpt_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/storsim/CMakeFiles/bgckpt_storsim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/bgckpt_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/bgckpt_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/bgckpt_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bgckpt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/nekcem/CMakeFiles/bgckpt_nekcem.dir/DependInfo.cmake"
  "/root/repo/build/src/iofmt/CMakeFiles/bgckpt_iofmt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
