file(REMOVE_RECURSE
  "../bench/fig9_dist_1pfpp"
  "../bench/fig9_dist_1pfpp.pdb"
  "CMakeFiles/fig9_dist_1pfpp.dir/fig9_dist_1pfpp.cpp.o"
  "CMakeFiles/fig9_dist_1pfpp.dir/fig9_dist_1pfpp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dist_1pfpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
