# Empty dependencies file for fig9_dist_1pfpp.
# This may be replaced when dependencies are built.
