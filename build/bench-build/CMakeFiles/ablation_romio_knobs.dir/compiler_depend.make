# Empty compiler generated dependencies file for ablation_romio_knobs.
# This may be replaced when dependencies are built.
