file(REMOVE_RECURSE
  "../bench/ablation_romio_knobs"
  "../bench/ablation_romio_knobs.pdb"
  "CMakeFiles/ablation_romio_knobs.dir/ablation_romio_knobs.cpp.o"
  "CMakeFiles/ablation_romio_knobs.dir/ablation_romio_knobs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_romio_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
