file(REMOVE_RECURSE
  "../bench/fig12_write_activity"
  "../bench/fig12_write_activity.pdb"
  "CMakeFiles/fig12_write_activity.dir/fig12_write_activity.cpp.o"
  "CMakeFiles/fig12_write_activity.dir/fig12_write_activity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_write_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
