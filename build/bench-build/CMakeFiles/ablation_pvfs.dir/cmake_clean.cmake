file(REMOVE_RECURSE
  "../bench/ablation_pvfs"
  "../bench/ablation_pvfs.pdb"
  "CMakeFiles/ablation_pvfs.dir/ablation_pvfs.cpp.o"
  "CMakeFiles/ablation_pvfs.dir/ablation_pvfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
