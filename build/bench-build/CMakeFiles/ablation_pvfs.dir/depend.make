# Empty dependencies file for ablation_pvfs.
# This may be replaced when dependencies are built.
