# Empty compiler generated dependencies file for ablation_1pfpp_dirs.
# This may be replaced when dependencies are built.
