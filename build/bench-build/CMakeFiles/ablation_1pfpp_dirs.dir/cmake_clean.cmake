file(REMOVE_RECURSE
  "../bench/ablation_1pfpp_dirs"
  "../bench/ablation_1pfpp_dirs.pdb"
  "CMakeFiles/ablation_1pfpp_dirs.dir/ablation_1pfpp_dirs.cpp.o"
  "CMakeFiles/ablation_1pfpp_dirs.dir/ablation_1pfpp_dirs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_1pfpp_dirs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
