# Empty dependencies file for micro_hostio.
# This may be replaced when dependencies are built.
