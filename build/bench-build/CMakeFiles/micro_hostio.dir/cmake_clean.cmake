file(REMOVE_RECURSE
  "../bench/micro_hostio"
  "../bench/micro_hostio.pdb"
  "CMakeFiles/micro_hostio.dir/micro_hostio.cpp.o"
  "CMakeFiles/micro_hostio.dir/micro_hostio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hostio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
