file(REMOVE_RECURSE
  "../bench/table1_perceived_bw"
  "../bench/table1_perceived_bw.pdb"
  "CMakeFiles/table1_perceived_bw.dir/table1_perceived_bw.cpp.o"
  "CMakeFiles/table1_perceived_bw.dir/table1_perceived_bw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_perceived_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
