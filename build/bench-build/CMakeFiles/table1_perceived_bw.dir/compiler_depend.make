# Empty compiler generated dependencies file for table1_perceived_bw.
# This may be replaced when dependencies are built.
