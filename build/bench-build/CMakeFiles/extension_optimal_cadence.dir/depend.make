# Empty dependencies file for extension_optimal_cadence.
# This may be replaced when dependencies are built.
