file(REMOVE_RECURSE
  "../bench/extension_optimal_cadence"
  "../bench/extension_optimal_cadence.pdb"
  "CMakeFiles/extension_optimal_cadence.dir/extension_optimal_cadence.cpp.o"
  "CMakeFiles/extension_optimal_cadence.dir/extension_optimal_cadence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_optimal_cadence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
