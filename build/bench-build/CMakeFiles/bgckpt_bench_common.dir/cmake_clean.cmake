file(REMOVE_RECURSE
  "CMakeFiles/bgckpt_bench_common.dir/common.cpp.o"
  "CMakeFiles/bgckpt_bench_common.dir/common.cpp.o.d"
  "libbgckpt_bench_common.a"
  "libbgckpt_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgckpt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
