# Empty compiler generated dependencies file for bgckpt_bench_common.
# This may be replaced when dependencies are built.
