file(REMOVE_RECURSE
  "libbgckpt_bench_common.a"
)
