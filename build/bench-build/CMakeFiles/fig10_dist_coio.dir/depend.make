# Empty dependencies file for fig10_dist_coio.
# This may be replaced when dependencies are built.
