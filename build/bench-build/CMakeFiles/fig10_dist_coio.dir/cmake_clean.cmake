file(REMOVE_RECURSE
  "../bench/fig10_dist_coio"
  "../bench/fig10_dist_coio.pdb"
  "CMakeFiles/fig10_dist_coio.dir/fig10_dist_coio.cpp.o"
  "CMakeFiles/fig10_dist_coio.dir/fig10_dist_coio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dist_coio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
