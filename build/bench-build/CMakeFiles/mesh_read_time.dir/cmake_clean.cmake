file(REMOVE_RECURSE
  "../bench/mesh_read_time"
  "../bench/mesh_read_time.pdb"
  "CMakeFiles/mesh_read_time.dir/mesh_read_time.cpp.o"
  "CMakeFiles/mesh_read_time.dir/mesh_read_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_read_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
