# Empty compiler generated dependencies file for mesh_read_time.
# This may be replaced when dependencies are built.
