# Empty dependencies file for fig5_write_bandwidth.
# This may be replaced when dependencies are built.
