# Empty dependencies file for eq1_production_improvement.
# This may be replaced when dependencies are built.
