file(REMOVE_RECURSE
  "../bench/eq1_production_improvement"
  "../bench/eq1_production_improvement.pdb"
  "CMakeFiles/eq1_production_improvement.dir/eq1_production_improvement.cpp.o"
  "CMakeFiles/eq1_production_improvement.dir/eq1_production_improvement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eq1_production_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
