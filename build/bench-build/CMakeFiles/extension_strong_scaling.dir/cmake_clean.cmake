file(REMOVE_RECURSE
  "../bench/extension_strong_scaling"
  "../bench/extension_strong_scaling.pdb"
  "CMakeFiles/extension_strong_scaling.dir/extension_strong_scaling.cpp.o"
  "CMakeFiles/extension_strong_scaling.dir/extension_strong_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
