# Empty compiler generated dependencies file for extension_strong_scaling.
# This may be replaced when dependencies are built.
