# Empty dependencies file for production_campaign.
# This may be replaced when dependencies are built.
