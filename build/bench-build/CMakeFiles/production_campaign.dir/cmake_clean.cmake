file(REMOVE_RECURSE
  "../bench/production_campaign"
  "../bench/production_campaign.pdb"
  "CMakeFiles/production_campaign.dir/production_campaign.cpp.o"
  "CMakeFiles/production_campaign.dir/production_campaign.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
