# Empty dependencies file for extension_131k_forecast.
# This may be replaced when dependencies are built.
