file(REMOVE_RECURSE
  "../bench/extension_131k_forecast"
  "../bench/extension_131k_forecast.pdb"
  "CMakeFiles/extension_131k_forecast.dir/extension_131k_forecast.cpp.o"
  "CMakeFiles/extension_131k_forecast.dir/extension_131k_forecast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_131k_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
