file(REMOVE_RECURSE
  "../examples/intrepid_campaign"
  "../examples/intrepid_campaign.pdb"
  "CMakeFiles/intrepid_campaign.dir/intrepid_campaign.cpp.o"
  "CMakeFiles/intrepid_campaign.dir/intrepid_campaign.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intrepid_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
