# Empty compiler generated dependencies file for intrepid_campaign.
# This may be replaced when dependencies are built.
