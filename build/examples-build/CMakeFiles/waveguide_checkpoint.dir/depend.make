# Empty dependencies file for waveguide_checkpoint.
# This may be replaced when dependencies are built.
