file(REMOVE_RECURSE
  "../examples/waveguide_checkpoint"
  "../examples/waveguide_checkpoint.pdb"
  "CMakeFiles/waveguide_checkpoint.dir/waveguide_checkpoint.cpp.o"
  "CMakeFiles/waveguide_checkpoint.dir/waveguide_checkpoint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveguide_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
