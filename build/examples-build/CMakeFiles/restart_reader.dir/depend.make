# Empty dependencies file for restart_reader.
# This may be replaced when dependencies are built.
