file(REMOVE_RECURSE
  "../examples/restart_reader"
  "../examples/restart_reader.pdb"
  "CMakeFiles/restart_reader.dir/restart_reader.cpp.o"
  "CMakeFiles/restart_reader.dir/restart_reader.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restart_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
