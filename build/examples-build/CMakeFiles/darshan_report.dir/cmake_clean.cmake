file(REMOVE_RECURSE
  "../examples/darshan_report"
  "../examples/darshan_report.pdb"
  "CMakeFiles/darshan_report.dir/darshan_report.cpp.o"
  "CMakeFiles/darshan_report.dir/darshan_report.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darshan_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
