file(REMOVE_RECURSE
  "../examples/tuning_advisor"
  "../examples/tuning_advisor.pdb"
  "CMakeFiles/tuning_advisor.dir/tuning_advisor.cpp.o"
  "CMakeFiles/tuning_advisor.dir/tuning_advisor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
