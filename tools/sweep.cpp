// sweep: the campaign driver. Reads a declarative sweep spec, expands its
// axes into concrete bench invocations, runs them across worker processes
// with bounded parallelism, and files each run's --perf-json record in a
// content-addressed ledger (obs/runstore.hpp).
//
// Usage:  sweep <spec.json> --ledger DIR [--jobs N] [--git-rev REV]
//               [--bench-dir DIR]
//
// Spec (schema bgckpt-sweep-1):
//
//   {
//     "schema": "bgckpt-sweep-1",
//     "benches": [
//       { "bench": "eq7_measured_vs_model",
//         "args": ["--np", "{np}"],
//         "axes": { "np": [128, 256, 384, 512] },
//         "repetitions": 1 }
//     ]
//   }
//
// Every `{axis}` placeholder in `args` is substituted from the cartesian
// product of the axes (spec file order = loop order, outermost first).
// Each expanded config is one run, identified by the canonicalized
// {bench, args, rep} object; its ledger key adds the git revision and the
// artifact schema fingerprint, so re-running an unchanged sweep is all
// cache hits and a new revision (or a schema bump) re-runs everything.
// Children inherit BGCKPT_GIT_REV / BGCKPT_CONFIG_HASH so the manifest
// sidecars they write next to obs artifacts carry the same address as the
// ledger entry. Child stdout/stderr and the raw perf file land in
// <ledger>/work/<key>.* for debugging; failed runs are NOT stored (the
// next sweep retries them) and make the driver exit 1.
//
// Feed the ledger to `trace_report --campaign` for the roll-up views.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/runstore.hpp"

namespace {

namespace fs = std::filesystem;
using bgckpt::obs::json::Value;
namespace json = bgckpt::obs::json;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <spec.json> --ledger DIR [--jobs N] "
               "[--git-rev REV] [--bench-dir DIR]\n",
               argv0);
  return 2;
}

/// One fully expanded bench invocation.
struct RunConfig {
  std::string bench;              // binary basename (config identity)
  std::string benchPath;          // resolved executable path
  std::vector<std::string> args;  // placeholder-substituted user args
  int rep = 1;
  Value config;            // canonical identity object {args, bench, rep}
  std::string configHash;  // cross-revision identity: hash of config alone
  std::string key;         // ledger address under (gitRev, schemas)
  std::string label;       // "bench args..." for log lines
};

Value makeString(const std::string& s) {
  Value v;
  v.type = Value::Type::kString;
  v.string = s;
  return v;
}

/// Render an axis value for argv substitution: strings verbatim, numbers
/// in the canonical integer/%.12g form (so the argv and the hashed config
/// can never disagree on formatting).
std::string axisText(const Value& v) {
  if (v.type == Value::Type::kString) return v.string;
  return bgckpt::obs::canonicalJson(v);
}

/// Replace every "{name}" in `arg`.
std::string substitute(const std::string& arg,
                       const std::vector<std::pair<std::string, Value>>& axes) {
  std::string out = arg;
  for (const auto& [name, value] : axes) {
    const std::string needle = "{" + name + "}";
    std::size_t pos = 0;
    while ((pos = out.find(needle, pos)) != std::string::npos) {
      const std::string text = axisText(value);
      out.replace(pos, needle.size(), text);
      pos += text.size();
    }
  }
  return out;
}

/// Expand one spec "benches" element into concrete configs (cartesian
/// product of its axes times repetitions, spec order preserved).
bool expandBench(const Value& bv, const std::string& benchDir,
                 std::vector<RunConfig>* out, std::string* err) {
  const std::string bench = bv.stringOr("bench", "");
  if (bench.empty()) {
    *err = "bench entry without \"bench\"";
    return false;
  }
  std::vector<std::string> argTemplates;
  if (const Value* args = bv.find("args"); args && args->isArray())
    for (const Value& a : *args->array)
      argTemplates.push_back(a.type == Value::Type::kString ? a.string
                                                            : axisText(a));
  std::vector<std::pair<std::string, std::vector<Value>>> axes;
  if (const Value* av = bv.find("axes"); av && av->isObject()) {
    for (const auto& [name, values] : *av->object) {
      if (!values.isArray() || values.array->empty()) {
        *err = "axis \"" + name + "\" is not a non-empty array";
        return false;
      }
      axes.emplace_back(name, *values.array);
    }
  }
  const int reps = std::max(1, static_cast<int>(bv.numberOr("repetitions", 1)));
  // Odometer over the axis value lists, outermost = first axis.
  std::vector<std::size_t> idx(axes.size(), 0);
  while (true) {
    std::vector<std::pair<std::string, Value>> binding;
    for (std::size_t a = 0; a < axes.size(); ++a)
      binding.emplace_back(axes[a].first, axes[a].second[idx[a]]);
    for (int rep = 1; rep <= reps; ++rep) {
      RunConfig rc;
      rc.bench = bench;
      rc.benchPath = bench.find('/') != std::string::npos
                         ? bench
                         : benchDir + "/" + bench;
      for (const std::string& t : argTemplates)
        rc.args.push_back(substitute(t, binding));
      rc.rep = rep;
      Value argsV;
      argsV.type = Value::Type::kArray;
      argsV.array = std::make_shared<json::Array>();
      for (const std::string& a : rc.args) argsV.array->push_back(makeString(a));
      Value cfg;
      cfg.type = Value::Type::kObject;
      cfg.object = std::make_shared<json::Object>();
      cfg.object->emplace_back("bench", makeString(bench));
      cfg.object->emplace_back("args", std::move(argsV));
      Value repV;
      repV.type = Value::Type::kNumber;
      repV.number = rep;
      cfg.object->emplace_back("rep", std::move(repV));
      rc.config = std::move(cfg);
      rc.label = bench;
      for (const std::string& a : rc.args) rc.label += " " + a;
      if (rep > 1) rc.label += " [rep " + std::to_string(rep) + "]";
      out->push_back(std::move(rc));
    }
    // Advance the odometer; done when the first axis wraps.
    std::size_t a = axes.size();
    while (a > 0) {
      --a;
      if (++idx[a] < axes[a].second.size()) break;
      idx[a] = 0;
      if (a == 0) return true;
    }
    if (axes.empty()) return true;
    if (a == 0 && idx[0] == 0) return true;
  }
}

std::string shellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out.push_back(c);
  }
  out += "'";
  return out;
}

struct Counters {
  std::atomic<int> ran{0};
  std::atomic<int> cached{0};
  std::atomic<int> failed{0};
};

std::mutex gLogMu;

void logLine(const char* verb, const RunConfig& rc, const std::string& extra) {
  std::lock_guard<std::mutex> lock(gLogMu);
  std::printf("[sweep] %s %s %s%s\n", verb, rc.key.c_str(), rc.label.c_str(),
              extra.c_str());
  std::fflush(stdout);
}

/// Execute one config and file the result. Cache hits never spawn a child.
void executeConfig(const RunConfig& rc, const bgckpt::obs::RunStore& store,
                   const std::string& gitRev, const std::string& schemas,
                   Counters* counters) {
  if (store.contains(rc.key)) {
    logLine("hit", rc, " (cached)");
    ++counters->cached;
    return;
  }
  const std::string work = store.dir() + "/work";
  std::error_code ec;
  fs::create_directories(work, ec);
  const std::string perfPath = work + "/" + rc.key + ".perf.json";
  const std::string outPath = work + "/" + rc.key + ".stdout.txt";
  const std::string errPath = work + "/" + rc.key + ".stderr.txt";
  std::string cmd = "BGCKPT_GIT_REV=";
  cmd += shellQuote(gitRev);
  cmd += " BGCKPT_CONFIG_HASH=";
  cmd += shellQuote(rc.configHash);
  cmd += " ";
  cmd += shellQuote(rc.benchPath);
  for (const std::string& a : rc.args) {
    cmd += " ";
    cmd += shellQuote(a);
  }
  cmd += " --perf-json ";
  cmd += shellQuote(perfPath);
  cmd += " > ";
  cmd += shellQuote(outPath);
  cmd += " 2> ";
  cmd += shellQuote(errPath);
  const auto t0 = std::chrono::steady_clock::now();
  const int rawStatus = std::system(cmd.c_str());
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const int exitCode =
      rawStatus < 0 ? rawStatus : (rawStatus & 0x7f) ? 128 : rawStatus >> 8;
  if (exitCode != 0) {
    std::lock_guard<std::mutex> lock(gLogMu);
    std::fprintf(stderr,
                 "[sweep] FAIL %s %s: exit %d (stdout/stderr kept in %s)\n",
                 rc.key.c_str(), rc.label.c_str(), exitCode, work.c_str());
    ++counters->failed;
    return;
  }
  Value perf;
  {
    std::ifstream in(perfPath);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string parseErr;
    const auto doc = json::parse(ss.str(), &parseErr);
    if (!in || !doc || !doc->isObject()) {
      std::lock_guard<std::mutex> lock(gLogMu);
      std::fprintf(stderr, "[sweep] FAIL %s %s: bad perf record %s (%s)\n",
                   rc.key.c_str(), rc.label.c_str(), perfPath.c_str(),
                   parseErr.c_str());
      ++counters->failed;
      return;
    }
    perf = *doc;
  }
  bgckpt::obs::LedgerEntry entry;
  entry.key = rc.key;
  entry.configHash = rc.configHash;
  entry.gitRev = gitRev;
  entry.schemas = schemas;
  entry.config = rc.config;
  entry.perf = std::move(perf);
  entry.exitCode = exitCode;
  entry.wallSeconds = wall;
  std::string err;
  if (!store.put(entry, &err)) {
    std::lock_guard<std::mutex> lock(gLogMu);
    std::fprintf(stderr, "[sweep] FAIL %s %s: %s\n", rc.key.c_str(),
                 rc.label.c_str(), err.c_str());
    ++counters->failed;
    return;
  }
  char timing[48];
  std::snprintf(timing, sizeof(timing), " (%.2fs)", wall);
  logLine("run", rc, timing);
  ++counters->ran;
}

std::string resolveGitRev(const char* flagValue) {
  if (flagValue != nullptr && *flagValue != '\0') return flagValue;
  if (const char* env = std::getenv("BGCKPT_GIT_REV");
      env != nullptr && *env != '\0')
    return env;
  std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (p != nullptr) {
    char buf[128];
    std::string rev;
    if (std::fgets(buf, sizeof(buf), p) != nullptr) rev = buf;
    ::pclose(p);
    while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r'))
      rev.pop_back();
    if (!rev.empty()) return rev;
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  const char* specPath = nullptr;
  const char* ledgerDir = nullptr;
  const char* gitRevFlag = nullptr;
  std::string benchDir = ".";
  unsigned jobs = std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ledger") == 0 && i + 1 < argc) {
      ledgerDir = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      jobs = n > 0 ? static_cast<unsigned>(n) : 1;
    } else if (std::strcmp(argv[i], "--git-rev") == 0 && i + 1 < argc) {
      gitRevFlag = argv[++i];
    } else if (std::strcmp(argv[i], "--bench-dir") == 0 && i + 1 < argc) {
      benchDir = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      specPath = argv[i];
    }
  }
  if (specPath == nullptr || ledgerDir == nullptr) return usage(argv[0]);

  std::ifstream in(specPath);
  if (!in) {
    std::fprintf(stderr, "sweep: cannot open %s\n", specPath);
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string parseErr;
  const auto spec = json::parse(ss.str(), &parseErr);
  if (!spec || !spec->isObject()) {
    std::fprintf(stderr, "sweep: %s: %s\n", specPath,
                 parseErr.empty() ? "not a JSON object" : parseErr.c_str());
    return 2;
  }
  const std::string schema = spec->stringOr("schema", "(none)");
  if (schema != bgckpt::obs::kSweepSchemaVersion) {
    std::fprintf(stderr,
                 "sweep: %s: spec schema \"%s\" not supported (this build "
                 "reads \"%s\")\n",
                 specPath, schema.c_str(), bgckpt::obs::kSweepSchemaVersion);
    return 2;
  }
  const Value* benches = spec->find("benches");
  if (benches == nullptr || !benches->isArray() || benches->array->empty()) {
    std::fprintf(stderr, "sweep: %s: no \"benches\" array\n", specPath);
    return 2;
  }

  std::vector<RunConfig> configs;
  for (const Value& bv : *benches->array) {
    if (!bv.isObject()) continue;
    std::string err;
    if (!expandBench(bv, benchDir, &configs, &err)) {
      std::fprintf(stderr, "sweep: %s: %s\n", specPath, err.c_str());
      return 2;
    }
  }
  if (configs.empty()) {
    std::fprintf(stderr, "sweep: %s: spec expands to zero configs\n",
                 specPath);
    return 2;
  }

  const std::string gitRev = resolveGitRev(gitRevFlag);
  const std::string schemas = bgckpt::obs::artifactSchemasFingerprint();
  for (RunConfig& rc : configs) {
    rc.configHash = bgckpt::obs::hex16(
        bgckpt::obs::fnv1a64(bgckpt::obs::canonicalJson(rc.config)));
    rc.key = bgckpt::obs::ledgerKey(rc.config, gitRev, schemas);
  }

  const bgckpt::obs::RunStore store(ledgerDir);
  std::printf("[sweep] %zu config(s) at rev %s -> %s (%u worker(s))\n",
              configs.size(), gitRev.c_str(), ledgerDir, jobs);
  Counters counters;
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= configs.size()) return;
      executeConfig(configs[i], store, gitRev, schemas, &counters);
    }
  };
  std::vector<std::thread> pool;
  const unsigned nWorkers =
      std::min<unsigned>(jobs, static_cast<unsigned>(configs.size()));
  for (unsigned w = 1; w < nWorkers; ++w) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();

  std::printf("[sweep] done: %zu config(s) (%d run, %d cached, %d failed)\n",
              configs.size(), counters.ran.load(), counters.cached.load(),
              counters.failed.load());
  return counters.failed.load() > 0 ? 1 : 0;
}
