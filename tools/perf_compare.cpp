// perf_compare: gate simulator performance against a committed baseline.
//
// Reads two --perf-json reports (emitted by the figure benches) and fails
// if the current run regressed beyond a tolerance:
//
//   perf_compare baseline.json current.json [--tolerance 0.15] [--no-wall]
//   perf_compare serial.json parallel.json --min-speedup 3
//
// Run records carry a "threads" field (records from before the field exist
// count as threads=1). The default mode totals the runs per thread count
// and compares each thread group present in both reports — a baseline
// holding serial and 8-thread entries gates a serial-only current run on
// just the serial group. Two independent gates per group:
//
//   events  the total simulated event count. For a fixed seed the simulator
//           is deterministic, so ANY change here is a real change in the
//           amount of work the simulation performs (an accidental extra
//           event per message, a lost batching optimisation, ...). Machine
//           independent — safe to enforce in CI. Events may also not move
//           by more than the tolerance in either direction without the
//           baseline being regenerated.
//
//   wall    total wall-clock seconds, compared only upward (slower). Wall
//           time depends on the host, so CI passes --no-wall and only
//           developers' local runs (same machine as their baseline) gate
//           on it.
//
// --min-speedup X switches to the parallel-scaling gate: both reports must
// describe the same workload (events within tolerance), and the second
// file's total wall time must be at least X times smaller than the first's.
// Both runs come from the same machine/job, so wall is meaningful here.
//
// Exit code: 0 pass, 1 regression, 2 usage/parse error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace {

struct GroupTotals {
  double wallSeconds = 0.0;
  double events = 0.0;
};

struct PerfReport {
  /// Totals per "threads" value of the run records.
  std::map<unsigned, GroupTotals> groups;
  bool ok = false;

  GroupTotals merged() const {
    GroupTotals t;
    for (const auto& [threads, g] : groups) {
      t.wallSeconds += g.wallSeconds;
      t.events += g.events;
    }
    return t;
  }
};

double fieldAfter(const std::string& text, std::size_t from, std::size_t end,
                  const char* name) {
  const auto pos = text.find(name, from);
  if (pos == std::string::npos || pos >= end) return -1.0;
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

/// Minimal extraction: one record per "label" occurrence, fields read up to
/// the record's closing brace. The reports are machine-written by
/// bench/common.cpp, so a full JSON parser is not warranted. Reports with
/// no parseable run records fall back to the "total" object (hand-written
/// fixtures, truncated files).
PerfReport readReport(const std::string& path) {
  PerfReport r;
  std::ifstream in(path);
  if (!in) return r;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  for (auto pos = text.find("\"label\""); pos != std::string::npos;
       pos = text.find("\"label\"", pos + 1)) {
    const auto end = text.find('}', pos);
    if (end == std::string::npos) break;
    const double wall = fieldAfter(text, pos, end, "\"wall_seconds\"");
    const double events = fieldAfter(text, pos, end, "\"events\"");
    if (wall < 0.0 || events < 0.0) continue;
    const double threads = fieldAfter(text, pos, end, "\"threads\"");
    GroupTotals& g =
        r.groups[threads >= 1.0 ? static_cast<unsigned>(threads) : 1u];
    g.wallSeconds += wall;
    g.events += events;
    r.ok = true;
  }
  if (!r.ok) {
    const auto totalPos = text.find("\"total\"");
    if (totalPos == std::string::npos) return r;
    const double wall =
        fieldAfter(text, totalPos, text.size(), "\"wall_seconds\"");
    const double events = fieldAfter(text, totalPos, text.size(), "\"events\"");
    if (wall < 0.0 || events < 0.0) return r;
    r.groups[1] = GroupTotals{wall, events};
    r.ok = true;
  }
  return r;
}

std::string groupTag(unsigned threads) {
  return " [threads=" + std::to_string(threads) + "]";
}

}  // namespace

int main(int argc, char** argv) {
  const char* baselinePath = nullptr;
  const char* currentPath = nullptr;
  double tolerance = 0.15;
  double minSpeedup = 0.0;
  bool checkWall = true;
  const auto usage = [] {
    std::fprintf(stderr,
                 "usage: perf_compare BASELINE.json CURRENT.json "
                 "[--tolerance FRAC] [--no-wall] [--min-speedup X]\n");
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      tolerance = std::atof(argv[i] + 12);
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      minSpeedup = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      minSpeedup = std::atof(argv[i] + 14);
    } else if (std::strcmp(argv[i], "--no-wall") == 0) {
      checkWall = false;
    } else if (!baselinePath) {
      baselinePath = argv[i];
    } else if (!currentPath) {
      currentPath = argv[i];
    } else {
      return usage();
    }
  }
  if (!baselinePath || !currentPath) return usage();

  const PerfReport base = readReport(baselinePath);
  const PerfReport cur = readReport(currentPath);
  if (!base.ok) {
    std::fprintf(stderr, "perf_compare: cannot read run records from %s\n",
                 baselinePath);
    return 2;
  }
  if (!cur.ok) {
    std::fprintf(stderr, "perf_compare: cannot read run records from %s\n",
                 currentPath);
    return 2;
  }

  int failures = 0;

  if (minSpeedup > 0.0) {
    // Parallel-scaling mode: file 1 is the serial reference, file 2 the
    // parallel run of the same workload.
    const GroupTotals serial = base.merged();
    const GroupTotals parallel = cur.merged();
    if (serial.events > 0.0) {
      const double drift = (parallel.events - serial.events) / serial.events;
      const bool pass = std::fabs(drift) <= tolerance;
      std::printf("PERF CHECK [%s]: events %.0f -> %.0f (%+.1f%%; parallel "
                  "run must do the same work)\n",
                  pass ? "PASS" : "FAIL", serial.events, parallel.events,
                  drift * 100.0);
      if (!pass) ++failures;
    }
    const double speedup = parallel.wallSeconds > 0.0
                               ? serial.wallSeconds / parallel.wallSeconds
                               : 0.0;
    const bool pass = speedup >= minSpeedup;
    std::printf("PERF CHECK [%s]: speedup %.2fx (wall %.2fs -> %.2fs, "
                "required >= %.2fx)\n",
                pass ? "PASS" : "FAIL", speedup, serial.wallSeconds,
                parallel.wallSeconds, minSpeedup);
    if (!pass) ++failures;
    return failures == 0 ? 0 : 1;
  }

  int compared = 0;
  for (const auto& [threads, b] : base.groups) {
    const auto it = cur.groups.find(threads);
    if (it == cur.groups.end()) {
      std::printf("PERF CHECK [SKIP]: no%s runs in current report\n",
                  groupTag(threads).c_str());
      continue;
    }
    const GroupTotals& c = it->second;
    ++compared;
    const std::string tag = base.groups.size() > 1 ? groupTag(threads) : "";

    if (b.events > 0.0) {
      const double drift = (c.events - b.events) / b.events;
      const bool pass = std::fabs(drift) <= tolerance;
      std::printf("PERF CHECK [%s]: events %.0f -> %.0f (%+.1f%%, tolerance "
                  "+/-%.0f%%)%s\n",
                  pass ? "PASS" : "FAIL", b.events, c.events, drift * 100.0,
                  tolerance * 100.0, tag.c_str());
      if (!pass) ++failures;
    }

    if (checkWall && b.wallSeconds > 0.0) {
      const double slowdown = (c.wallSeconds - b.wallSeconds) / b.wallSeconds;
      const bool pass = slowdown <= tolerance;
      std::printf("PERF CHECK [%s]: wall %.2fs -> %.2fs (%+.1f%%, tolerance "
                  "+%.0f%%)%s\n",
                  pass ? "PASS" : "FAIL", b.wallSeconds, c.wallSeconds,
                  slowdown * 100.0, tolerance * 100.0, tag.c_str());
      if (!pass) ++failures;
    }
  }
  if (!checkWall) {
    std::printf("PERF CHECK [SKIP]: wall-clock (--no-wall: baseline from a "
                "different machine)\n");
  }
  if (compared == 0) {
    std::fprintf(stderr, "perf_compare: no thread group present in both "
                         "reports\n");
    return 2;
  }

  return failures == 0 ? 0 : 1;
}
