// perf_compare: gate simulator performance against a committed baseline.
//
// Reads two --perf-json reports (emitted by the figure benches) and fails
// if the current run regressed beyond a tolerance:
//
//   perf_compare baseline.json current.json [--tolerance 0.15] [--no-wall]
//
// Two independent gates:
//
//   events  the total simulated event count. For a fixed seed the simulator
//           is deterministic, so ANY change here is a real change in the
//           amount of work the simulation performs (an accidental extra
//           event per message, a lost batching optimisation, ...). Machine
//           independent — safe to enforce in CI. Events may also not move
//           by more than the tolerance in either direction without the
//           baseline being regenerated.
//
//   wall    total wall-clock seconds, compared only upward (slower). Wall
//           time depends on the host, so CI passes --no-wall and only
//           developers' local runs (same machine as their baseline) gate
//           on it.
//
// Exit code: 0 pass, 1 regression, 2 usage/parse error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct PerfTotals {
  double wallSeconds = 0.0;
  double events = 0.0;
  bool ok = false;
};

/// Minimal extraction: find the "total" object and read its fields. The
/// reports are machine-written by bench/common.cpp, so a full JSON parser
/// is not warranted.
PerfTotals readTotals(const std::string& path) {
  PerfTotals t;
  std::ifstream in(path);
  if (!in) return t;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const auto totalPos = text.find("\"total\"");
  if (totalPos == std::string::npos) return t;
  auto field = [&](const char* name) -> double {
    const auto pos = text.find(name, totalPos);
    if (pos == std::string::npos) return -1.0;
    const auto colon = text.find(':', pos);
    if (colon == std::string::npos) return -1.0;
    return std::strtod(text.c_str() + colon + 1, nullptr);
  };
  t.wallSeconds = field("\"wall_seconds\"");
  t.events = field("\"events\"");
  t.ok = t.wallSeconds >= 0.0 && t.events >= 0.0;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baselinePath = nullptr;
  const char* currentPath = nullptr;
  double tolerance = 0.15;
  bool checkWall = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      tolerance = std::atof(argv[i] + 12);
    } else if (std::strcmp(argv[i], "--no-wall") == 0) {
      checkWall = false;
    } else if (!baselinePath) {
      baselinePath = argv[i];
    } else if (!currentPath) {
      currentPath = argv[i];
    } else {
      std::fprintf(stderr, "usage: perf_compare BASELINE.json CURRENT.json "
                           "[--tolerance FRAC] [--no-wall]\n");
      return 2;
    }
  }
  if (!baselinePath || !currentPath) {
    std::fprintf(stderr, "usage: perf_compare BASELINE.json CURRENT.json "
                         "[--tolerance FRAC] [--no-wall]\n");
    return 2;
  }

  const PerfTotals base = readTotals(baselinePath);
  const PerfTotals cur = readTotals(currentPath);
  if (!base.ok) {
    std::fprintf(stderr, "perf_compare: cannot read totals from %s\n",
                 baselinePath);
    return 2;
  }
  if (!cur.ok) {
    std::fprintf(stderr, "perf_compare: cannot read totals from %s\n",
                 currentPath);
    return 2;
  }

  int failures = 0;

  if (base.events > 0.0) {
    const double drift = (cur.events - base.events) / base.events;
    const bool pass = std::fabs(drift) <= tolerance;
    std::printf("PERF CHECK [%s]: events %.0f -> %.0f (%+.1f%%, tolerance "
                "+/-%.0f%%)\n",
                pass ? "PASS" : "FAIL", base.events, cur.events, drift * 100.0,
                tolerance * 100.0);
    if (!pass) ++failures;
  }

  if (checkWall && base.wallSeconds > 0.0) {
    const double slowdown =
        (cur.wallSeconds - base.wallSeconds) / base.wallSeconds;
    const bool pass = slowdown <= tolerance;
    std::printf("PERF CHECK [%s]: wall %.2fs -> %.2fs (%+.1f%%, tolerance "
                "+%.0f%%)\n",
                pass ? "PASS" : "FAIL", base.wallSeconds, cur.wallSeconds,
                slowdown * 100.0, tolerance * 100.0);
    if (!pass) ++failures;
  } else if (!checkWall) {
    std::printf("PERF CHECK [SKIP]: wall-clock (--no-wall: baseline from a "
                "different machine)\n");
  }

  return failures == 0 ? 0 : 1;
}
