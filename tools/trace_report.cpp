// trace_report: offline analysis of a JSONL trace event log.
//
// Usage:  trace_report <events.jsonl> [--bins N]
//
// Reads the event log written alongside a Chrome trace by
// `<bench> --trace <file>` (the `<file>.jsonl` twin), rebuilds the I/O
// profile from the kIo event stream, and prints:
//
//   1. per-layer event/byte totals,
//   2. a span-balance check (every 'B' must have a matching 'E'),
//   3. the Darshan-style job summary (prof::renderReport),
//   4. a write/handoff activity timeline (the Fig. 12 view of the run).
//
// The JSONL form keeps timestamps in simulated seconds, so nothing here
// needs to undo the microsecond scaling of the Chrome stream.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/ascii.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "profiling/profile.hpp"
#include "profiling/report.hpp"

namespace {

using bgckpt::obs::json::Value;

struct LayerTotals {
  std::uint64_t events = 0;
  std::uint64_t bytes = 0;
  double busySeconds = 0;  // sum of 'X' durations
};

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s <events.jsonl> [--bins N]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  int bins = 60;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bins") == 0 && i + 1 < argc) {
      bins = std::atoi(argv[++i]);
      if (bins < 1) return usage(argv[0]);
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      path = argv[i];
    }
  }
  if (!path) return usage(argv[0]);

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", path);
    return 2;
  }

  std::map<std::string, LayerTotals> layers;
  // Open 'B' spans per (layer, tid, name); drained by matching 'E's.
  std::map<std::string, std::uint64_t> openSpans;
  std::uint64_t parseErrors = 0, lines = 0, unmatchedEnds = 0;
  bgckpt::prof::IoProfile profile;
  double horizon = 0;
  int maxRank = -1;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    std::string err;
    const auto doc = bgckpt::obs::json::parse(line, &err);
    if (!doc || !doc->isObject()) {
      ++parseErrors;
      continue;
    }
    const std::string cat = doc->stringOr("cat", "?");
    const std::string name = doc->stringOr("name", "?");
    const std::string ph = doc->stringOr("ph", "X");
    const double ts = doc->numberOr("ts", 0);
    const double dur = doc->numberOr("dur", 0);
    const auto bytes =
        static_cast<std::uint64_t>(doc->numberOr("bytes", 0));
    const int tid = static_cast<int>(doc->numberOr("tid", 0));

    auto& lt = layers[cat];
    ++lt.events;
    lt.bytes += bytes;
    horizon = std::max(horizon, ts + dur);

    if (ph == "B" || ph == "E") {
      const std::string key =
          cat + "/" + std::to_string(tid) + "/" + name;
      if (ph == "B") {
        ++openSpans[key];
      } else {
        auto it = openSpans.find(key);
        if (it == openSpans.end() || it->second == 0)
          ++unmatchedEnds;
        else if (--it->second == 0)
          openSpans.erase(it);
      }
    }
    if (ph == "X") {
      lt.busySeconds += dur;
      if (cat == "io") {
        if (const auto op = bgckpt::prof::opFromName(name)) {
          profile.record(tid, *op, ts, ts + dur, bytes);
          maxRank = std::max(maxRank, tid);
        }
      }
      if (cat == "app") maxRank = std::max(maxRank, tid);
    }
  }

  std::printf("trace_report: %s\n", path);
  std::printf("%" PRIu64 " events on %zu layers, horizon %.3f s\n",
              static_cast<std::uint64_t>(lines), layers.size(), horizon);
  if (parseErrors)
    std::printf("WARNING: %" PRIu64 " unparseable lines\n", parseErrors);

  std::printf("\n%-12s %12s %16s %14s\n", "layer", "events", "bytes",
              "busy-seconds");
  for (const auto& [cat, lt] : layers)
    std::printf("%-12s %12" PRIu64 " %16" PRIu64 " %14.3f\n", cat.c_str(),
                lt.events, lt.bytes, lt.busySeconds);

  std::uint64_t stillOpen = 0;
  for (const auto& [key, n] : openSpans) stillOpen += n;
  const bool balanced = stillOpen == 0 && unmatchedEnds == 0;
  std::printf("\nspan balance: %s (%" PRIu64 " unclosed, %" PRIu64
              " unmatched ends)\n",
              balanced ? "OK" : "BROKEN", stillOpen, unmatchedEnds);

  if (!profile.records().empty()) {
    bgckpt::prof::ReportOptions opt;
    opt.numRanks = maxRank + 1;
    opt.jobName = "trace";
    std::printf("\n%s", bgckpt::prof::renderReport(profile, opt).c_str());

    const double binWidth = horizon / bins;
    std::vector<std::string> names;
    std::vector<std::vector<int>> series;
    using bgckpt::prof::Op;
    for (const Op op : {Op::kWrite, Op::kCreate, Op::kSend, Op::kRecv}) {
      auto counts = profile.activityTimeline(op, binWidth, horizon);
      if (std::any_of(counts.begin(), counts.end(),
                      [](int c) { return c > 0; })) {
        names.emplace_back(bgckpt::prof::opName(op));
        series.push_back(std::move(counts));
      }
    }
    if (!series.empty())
      std::printf("\nactivity timeline (ranks active per bin):\n%s",
                  bgckpt::analysis::activityStrip(names, series, binWidth)
                      .c_str());
  }

  return balanced && parseErrors == 0 ? 0 : 1;
}
