// trace_report: offline analysis of a JSONL trace event log.
//
// Usage:  trace_report <events.jsonl> [--bins N]
//         trace_report --attr <events.jsonl> [--diff <other.jsonl>]
//         trace_report --critpath <run.json> [--diff <other.json>]
//         trace_report --timeline <telemetry.json> [--diff <other.json>]
//         trace_report --waterfall <optrace.json> [--req ID | --diff <other>]
//         trace_report --runtime <runtimeprof.json> [--diff <other.json>]
//
// Default mode reads the event log written alongside a Chrome trace by
// `<bench> --trace <file>` (the `<file>.jsonl` twin), rebuilds the I/O
// profile from the kIo event stream, and prints:
//
//   1. per-layer event/byte totals,
//   2. a span-balance check (every 'B' must have a matching 'E'),
//   3. the Darshan-style job summary (prof::renderReport),
//   4. a write/handoff activity timeline (the Fig. 12 view of the run).
//
// --attr replays the same log through the blocked-time attribution engine
// (obs/attr.hpp) and prints the exclusive per-phase partition; with --diff
// it compares two runs (e.g. rbIO vs coIO) phase by phase. --critpath
// renders the JSON written by `<bench> --critpath <file>`, with the same
// A/B diff option. --timeline renders the sampled-telemetry JSON written
// by `<bench> --telemetry <file>` as per-resource ASCII utilization
// heatmaps plus server-imbalance stats (Jain's index, max/mean skew,
// idle-while-busy); --diff prints an A/B table of totals and imbalance.
// --waterfall renders the per-request causal-trace JSON written by
// `<bench> --optrace <file>`: hop-percentile tables (global and per op),
// the fan-in lineage summary, a p99-localization line, and ASCII hop
// waterfalls for the retained tail (the N slowest requests) or, with
// --req ID, for one chosen request; --diff compares the hop-percentile
// tables of two runs (e.g. rbIO vs coIO). --runtime renders the real-time
// execution profile written by `<bench> --runtime-profile`: per-shard
// window-phase tables with a worker-wall decomposition summing to 100%, a
// critical-shard summary line, and per-parallelFor-point wall times with
// the serial-fraction / Amdahl-ceiling analysis; --diff compares two
// profiles point by point and phase by phase (before/after a sharding
// change).
//
// --campaign renders the cross-run ledger a `tools/sweep` run wrote: the
// per-strategy bandwidth-vs-np table (the fig5 surface re-derived from
// stored perf records, byte-identical to the benches' own stdout values),
// the best-strategy-per-(np, nf) matrix, and the per-config run list.
// With --diff it lines configs up across two ledgers by config hash (A/B
// across git revs); with --baseline it gates per-config event counts
// against a committed ledger (drift beyond --tolerance fails, exit 1 —
// the perf_compare contract applied across runs).
//
// Both the artifact's "schema" field and its "<file>.manifest.json"
// sidecar (when present) must match this build's schema versions
// (manifest v1 and v2 both read), else exit 2.
//
// The JSONL form keeps timestamps in simulated seconds, so nothing here
// needs to undo the microsecond scaling of the Chrome stream.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/ascii.hpp"
#include "obs/attr.hpp"
#include "obs/json.hpp"
#include "obs/optrace.hpp"
#include "obs/runstore.hpp"
#include "obs/runtimeprof.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "profiling/profile.hpp"
#include "profiling/report.hpp"

namespace {

using bgckpt::obs::json::Value;

struct LayerTotals {
  std::uint64_t events = 0;
  std::uint64_t bytes = 0;
  double busySeconds = 0;  // sum of 'X' durations
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <events.jsonl> [--bins N]\n"
               "       %s --attr <events.jsonl> [--diff <other.jsonl>]\n"
               "       %s --critpath <run.json> [--diff <other.json>]\n"
               "       %s --timeline <telemetry.json> [--diff <other.json>]"
               " [--width N]\n"
               "       %s --waterfall <optrace.json> [--req ID |"
               " --diff <other.json>]\n"
               "       %s --runtime <runtimeprof.json> [--diff <other.json>]\n"
               "       %s --campaign <ledger-dir> [--diff <other-dir> |"
               " --baseline <dir> [--tolerance F]]\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// TraceEvent::name must outlive the emit; intern replayed names here.
const char* internName(const std::string& name) {
  static std::unordered_set<std::string> pool;
  return pool.insert(name).first->c_str();
}

bool layerFromName(const std::string& cat, bgckpt::obs::Layer* layer) {
  using bgckpt::obs::Layer;
  for (int i = 0; i < bgckpt::obs::kNumLayers; ++i) {
    const Layer l = static_cast<Layer>(i);
    if (cat == bgckpt::obs::layerName(l)) {
      *layer = l;
      return true;
    }
  }
  return false;
}

/// Replay a JSONL event log through the attribution engine. Returns false
/// (with a message on stderr) when the file cannot be read or parsed.
bool loadAttribution(const char* path,
                     bgckpt::obs::AttributionEngine::Report* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", path);
    return false;
  }
  bgckpt::obs::AttributionEngine engine;
  double horizon = 0;
  std::uint64_t parseErrors = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto doc = bgckpt::obs::json::parse(line);
    if (!doc || !doc->isObject()) {
      ++parseErrors;
      continue;
    }
    bgckpt::obs::TraceEvent ev;
    if (!layerFromName(doc->stringOr("cat", "?"), &ev.layer)) continue;
    const std::string ph = doc->stringOr("ph", "X");
    ev.phase = ph.empty() ? 'X' : ph[0];
    ev.tid = static_cast<int>(doc->numberOr("tid", 0));
    ev.name = internName(doc->stringOr("name", "?"));
    ev.ts = doc->numberOr("ts", 0);
    ev.dur = doc->numberOr("dur", 0);
    horizon = std::max(horizon, ev.ts + ev.dur);
    engine.addEvent(ev);
  }
  if (parseErrors)
    std::fprintf(stderr, "trace_report: %s: %" PRIu64 " unparseable lines\n",
                 path, parseErrors);
  *out = engine.compute(horizon);
  return true;
}

int runAttrMode(const char* pathA, const char* pathB) {
  using bgckpt::obs::AttributionEngine;
  using bgckpt::obs::Phase;
  using bgckpt::obs::phaseName;
  AttributionEngine::Report a;
  if (!loadAttribution(pathA, &a)) return 2;
  std::printf("blocked-time attribution: %s\n", pathA);
  std::printf("%zu ranks, horizon %.3f s, partition defect %.3g s\n",
              a.ranks.size(), a.horizon, a.partitionDefect());
  if (pathB == nullptr) {
    const double total = a.horizon * static_cast<double>(a.ranks.size());
    std::printf("\n%-13s %16s %9s\n", "phase", "proc-seconds", "share");
    for (int p = 0; p < bgckpt::obs::kNumPhases; ++p) {
      const double s = a.totals[static_cast<std::size_t>(p)];
      if (s <= 0.0) continue;
      std::printf("%-13s %16.3f %8.2f%%\n", phaseName(static_cast<Phase>(p)),
                  s, total > 0 ? s / total * 100.0 : 0.0);
    }
    std::printf("%-13s %16.3f %8.2f%%\n", "blocked", a.blockedSeconds(),
                total > 0 ? a.blockedSeconds() / total * 100.0 : 0.0);
    return 0;
  }
  AttributionEngine::Report b;
  if (!loadAttribution(pathB, &b)) return 2;
  std::printf("diff against: %s (%zu ranks, horizon %.3f s)\n", pathB,
              b.ranks.size(), b.horizon);
  std::printf("\n%-13s %16s %16s %16s\n", "phase", "A proc-sec", "B proc-sec",
              "A-B");
  for (int p = 0; p < bgckpt::obs::kNumPhases; ++p) {
    const double sa = a.totals[static_cast<std::size_t>(p)];
    const double sb = b.totals[static_cast<std::size_t>(p)];
    if (sa <= 0.0 && sb <= 0.0) continue;
    std::printf("%-13s %16.3f %16.3f %+16.3f\n",
                phaseName(static_cast<Phase>(p)), sa, sb, sa - sb);
  }
  std::printf("%-13s %16.3f %16.3f %+16.3f\n", "blocked", a.blockedSeconds(),
              b.blockedSeconds(), a.blockedSeconds() - b.blockedSeconds());
  if (b.blockedSeconds() > 0)
    std::printf("\nblocked-time ratio A/B: %.2fx\n",
                a.blockedSeconds() / b.blockedSeconds());
  return 0;
}

bool loadJsonFile(const char* path, Value* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", path);
    return false;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::string err;
  auto doc = bgckpt::obs::json::parse(text, &err);
  if (!doc || !doc->isObject()) {
    std::fprintf(stderr, "trace_report: %s: %s\n", path,
                 err.empty() ? "not a JSON object" : err.c_str());
    return false;
  }
  *out = *doc;
  return true;
}

/// Load one artifact JSON behind the shared schema gate: the document's
/// "schema" field must be exactly `expectedSchema`, and any
/// "<path>.manifest.json" sidecar must carry a manifest version this build
/// reads (v2, and v1 for pre-ledger artifacts). Every gated mode
/// (--timeline, --waterfall, --runtime, --campaign) funnels through here,
/// and every failure funnels to the same caller exit-2 path. A missing
/// manifest is tolerated (hand-built fixtures, moved files).
bool loadGatedArtifact(const char* path, const char* kind,
                       const char* expectedSchema, Value* out) {
  if (!loadJsonFile(path, out)) return false;
  const std::string schema = out->stringOr("schema", "(none)");
  if (schema != expectedSchema) {
    std::fprintf(stderr,
                 "trace_report: %s: %s schema \"%s\" not supported "
                 "(this build reads \"%s\")\n",
                 path, kind, schema.c_str(), expectedSchema);
    return false;
  }
  const std::string manifestPath = std::string(path) + ".manifest.json";
  if (std::ifstream probe(manifestPath); probe) {
    Value manifest;
    if (!loadJsonFile(manifestPath.c_str(), &manifest)) return false;
    const std::string mv = manifest.stringOr("schema_version", "(none)");
    if (!bgckpt::obs::manifestSchemaSupported(mv)) {
      std::fprintf(stderr,
                   "trace_report: %s: manifest schema \"%s\" not supported "
                   "(this build reads \"%s\" and \"%s\")\n",
                   manifestPath.c_str(), mv.c_str(),
                   bgckpt::obs::kManifestSchemaVersion,
                   bgckpt::obs::kManifestSchemaV1);
      return false;
    }
  }
  return true;
}

/// Pull "seconds" per bucket name out of a critpath "by_kind"/"by_label"
/// array, preserving file order.
std::vector<std::pair<std::string, double>> critBuckets(const Value& doc,
                                                        const char* key) {
  std::vector<std::pair<std::string, double>> out;
  const Value* arr = doc.find(key);
  if (arr == nullptr || !arr->isArray()) return out;
  for (const Value& entry : *arr->array) {
    if (!entry.isObject()) continue;
    std::string name = entry.stringOr("kind", "");
    if (name.empty()) name = entry.stringOr("label", "?");
    out.emplace_back(std::move(name), entry.numberOr("seconds", 0));
  }
  return out;
}

int runCritPathMode(const char* pathA, const char* pathB) {
  Value a;
  if (!loadJsonFile(pathA, &a)) return 2;
  std::printf("critical path: %s\n", pathA);
  std::printf("horizon %.3f s, %.0f events recorded, %.0f path steps, "
              "path %.3f s\n",
              a.numberOr("horizon_seconds", 0), a.numberOr("events_recorded", 0),
              a.numberOr("path_steps", 0), a.numberOr("path_seconds", 0));
  const double pathSecondsA = a.numberOr("path_seconds", 0);
  if (pathB == nullptr) {
    for (const char* key : {"by_kind", "by_label"}) {
      std::printf("\n%-24s %14s %9s\n", key, "seconds", "share");
      for (const auto& [name, seconds] : critBuckets(a, key)) {
        if (seconds <= 0.0) continue;
        std::printf("%-24s %14.6f %8.2f%%\n", name.c_str(), seconds,
                    pathSecondsA > 0 ? seconds / pathSecondsA * 100.0 : 0.0);
      }
    }
    return 0;
  }
  Value b;
  if (!loadJsonFile(pathB, &b)) return 2;
  std::printf("diff against: %s (path %.3f s)\n", pathB,
              b.numberOr("path_seconds", 0));
  for (const char* key : {"by_kind", "by_label"}) {
    std::map<std::string, std::pair<double, double>> merged;
    for (const auto& [name, seconds] : critBuckets(a, key))
      merged[name].first = seconds;
    for (const auto& [name, seconds] : critBuckets(b, key))
      merged[name].second = seconds;
    std::printf("\n%-24s %14s %14s %14s\n", key, "A seconds", "B seconds",
                "A-B");
    for (const auto& [name, ab] : merged) {
      if (ab.first <= 0.0 && ab.second <= 0.0) continue;
      std::printf("%-24s %14.6f %14.6f %+14.6f\n", name.c_str(), ab.first,
                  ab.second, ab.first - ab.second);
    }
  }
  return 0;
}

// ------------------------------------------------------ --timeline mode --

struct ImbalanceCols {
  bool present = false;
  double totalLoad = 0;
  double maxShare = 0;
  double maxOverMean = 0;
  double jain = 1.0;
  double idleWhileBusy = 0;
  int busiest = -1;
};

struct TimelineSeries {
  std::string name;
  std::string kind;
  int instances = 1;
  double totalLoad = 0;  // sum of per-instance totals
  ImbalanceCols imb;
  std::vector<std::vector<double>> heat;  // instances x buckets, dense
};

struct TimelineDoc {
  double dt = 0;
  double horizon = 0;
  std::int64_t buckets = 0;
  std::vector<TimelineSeries> series;
};

/// Load and validate one `--telemetry` export (schema + manifest gate via
/// loadGatedArtifact; mismatches are a hard error, exit 2 upstream, so a
/// stale file never misparses silently).
bool loadTimeline(const char* path, TimelineDoc* out) {
  Value doc;
  if (!loadGatedArtifact(path, "telemetry",
                         bgckpt::obs::Telemetry::kSchemaVersion, &doc))
    return false;
  out->dt = doc.numberOr("bucket_dt", bgckpt::obs::Telemetry::kDefaultDt);
  out->horizon = doc.numberOr("horizon", 0);
  out->buckets = static_cast<std::int64_t>(doc.numberOr("buckets", 0));
  const Value* arr = doc.find("series");
  if (arr == nullptr || !arr->isArray()) {
    std::fprintf(stderr, "trace_report: %s: no \"series\" array\n", path);
    return false;
  }
  for (const Value& sv : *arr->array) {
    if (!sv.isObject()) continue;
    TimelineSeries s;
    s.name = sv.stringOr("name", "?");
    s.kind = sv.stringOr("kind", "gauge");
    s.instances = static_cast<int>(sv.numberOr("instances", 1));
    if (const Value* iv = sv.find("imbalance"); iv && iv->isObject()) {
      s.imb.present = true;
      s.imb.totalLoad = iv->numberOr("total_load", 0);
      s.imb.maxShare = iv->numberOr("max_share", 0);
      s.imb.maxOverMean = iv->numberOr("max_over_mean", 0);
      s.imb.jain = iv->numberOr("jain", 1.0);
      s.imb.idleWhileBusy = iv->numberOr("idle_while_busy_seconds", 0);
      s.imb.busiest = static_cast<int>(iv->numberOr("busiest", -1));
    }
    s.heat.assign(static_cast<std::size_t>(std::max(1, s.instances)),
                  std::vector<double>(
                      static_cast<std::size_t>(std::max<std::int64_t>(
                          out->buckets, 0)),
                      0.0));
    if (const Value* pi = sv.find("per_instance"); pi && pi->isArray()) {
      for (const Value& inst : *pi->array) {
        if (!inst.isObject()) continue;
        const auto idx = static_cast<std::size_t>(inst.numberOr("i", 0));
        if (idx >= s.heat.size()) continue;
        s.totalLoad += inst.numberOr("total", 0);
        const auto first =
            static_cast<std::int64_t>(inst.numberOr("first", 0));
        const Value* rows = inst.find("buckets");
        if (rows == nullptr || !rows->isArray()) continue;
        for (std::size_t r = 0; r < rows->array->size(); ++r) {
          const Value& row = (*rows->array)[r];
          if (!row.isArray() || row.array->empty()) continue;
          // Heat value: gauge rows are [min, mean, max, last], counter and
          // rate rows are [delta, rate] — index 1 is the density either way.
          const std::size_t vi = row.array->size() > 1 ? 1 : 0;
          const auto gi = first + static_cast<std::int64_t>(r);
          if (gi >= 0 && gi < out->buckets)
            s.heat[idx][static_cast<std::size_t>(gi)] =
                (*row.array)[vi].number;
        }
      }
    }
    out->series.push_back(std::move(s));
  }
  return true;
}

/// Cap heatmaps at this many rows; wider instance sets render as grouped
/// ranges (128 servers -> 32 rows of 4, each the group mean).
constexpr int kMaxHeatRows = 32;

void renderSeries(const TimelineSeries& s, double dt, int width) {
  std::printf("\n%s (%s, %d instance%s", s.name.c_str(), s.kind.c_str(),
              s.instances, s.instances == 1 ? "" : "s");
  std::printf(", total %.6g)\n", s.totalLoad);
  std::vector<std::string> labels;
  std::vector<std::vector<double>> rows;
  if (s.instances <= kMaxHeatRows) {
    rows = s.heat;
    for (int i = 0; i < s.instances; ++i)
      labels.push_back(s.instances == 1 ? std::string()
                                        : std::to_string(i));
  } else {
    const int group =
        (s.instances + kMaxHeatRows - 1) / kMaxHeatRows;
    for (int g0 = 0; g0 < s.instances; g0 += group) {
      const int g1 = std::min(g0 + group, s.instances);
      std::vector<double> row(s.heat[0].size(), 0.0);
      for (int i = g0; i < g1; ++i)
        for (std::size_t b = 0; b < row.size(); ++b)
          row[b] += s.heat[static_cast<std::size_t>(i)][b];
      for (double& v : row) v /= static_cast<double>(g1 - g0);
      labels.push_back(std::to_string(g0) + "-" + std::to_string(g1 - 1));
      rows.push_back(std::move(row));
    }
  }
  const char* valueLabel =
      s.kind == "gauge" ? "mean level" : "per-second rate";
  std::printf("%s", bgckpt::analysis::heatmap(labels, rows, dt, valueLabel,
                                              width)
                        .c_str());
  if (s.imb.present)
    std::printf("  imbalance: jain=%.3f max/mean=%.2f max-share=%.1f%% "
                "idle-while-busy=%.1f inst-s (busiest #%d)\n",
                s.imb.jain, s.imb.maxOverMean, s.imb.maxShare * 100.0,
                s.imb.idleWhileBusy, s.imb.busiest);
}

int runTimelineMode(const char* pathA, const char* pathB, int width) {
  TimelineDoc a;
  if (!loadTimeline(pathA, &a)) return 2;
  std::printf("telemetry timeline: %s\n", pathA);
  std::printf("horizon %.3f s, %lld buckets of %.3g s, %zu series\n",
              a.horizon, static_cast<long long>(a.buckets), a.dt,
              a.series.size());
  if (pathB == nullptr) {
    for (const auto& s : a.series) renderSeries(s, a.dt, width);
    return 0;
  }
  TimelineDoc b;
  if (!loadTimeline(pathB, &b)) return 2;
  std::printf("diff against: %s (horizon %.3f s)\n", pathB, b.horizon);
  std::map<std::string, std::pair<const TimelineSeries*,
                                  const TimelineSeries*>> merged;
  for (const auto& s : a.series) merged[s.name].first = &s;
  for (const auto& s : b.series) merged[s.name].second = &s;
  std::printf("\n%-28s %14s %14s %8s %8s %10s %10s\n", "series", "A total",
              "B total", "A jain", "B jain", "A max/mu", "B max/mu");
  for (const auto& [name, ab] : merged) {
    const TimelineSeries* sa = ab.first;
    const TimelineSeries* sb = ab.second;
    std::printf("%-28s %14.6g %14.6g", name.c_str(),
                sa != nullptr ? sa->totalLoad : 0.0,
                sb != nullptr ? sb->totalLoad : 0.0);
    if ((sa != nullptr && sa->imb.present) ||
        (sb != nullptr && sb->imb.present)) {
      std::printf(" %8.3f %8.3f %10.2f %10.2f",
                  sa != nullptr ? sa->imb.jain : 0.0,
                  sb != nullptr ? sb->imb.jain : 0.0,
                  sa != nullptr ? sa->imb.maxOverMean : 0.0,
                  sb != nullptr ? sb->imb.maxOverMean : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}

// ----------------------------------------------------- --waterfall mode --

struct HopRow {
  std::string hop;
  double requests = 0;
  double total = 0;
  double p50 = 0, p95 = 0, p99 = 0, max = 0;
};

struct E2eStats {
  double requests = 0;
  double mean = 0, p50 = 0, p95 = 0, p99 = 0, max = 0;
};

struct OpTraceDoc {
  Value doc;  // raw document; tail/sampled requests render from it
  double sampleEvery = 1;
  double horizon = 0;
  E2eStats e2e;
  std::vector<HopRow> hops;                              // global table
  std::vector<std::pair<std::string, E2eStats>> opE2e;   // per-op e2e
  std::vector<std::pair<std::string, std::vector<HopRow>>> opHops;
};

std::vector<HopRow> parseHopRows(const Value& parent) {
  std::vector<HopRow> out;
  const Value* arr = parent.find("hops");
  if (arr == nullptr || !arr->isArray()) return out;
  for (const Value& hv : *arr->array) {
    if (!hv.isObject()) continue;
    HopRow r;
    r.hop = hv.stringOr("hop", "?");
    r.requests = hv.numberOr("requests", 0);
    r.total = hv.numberOr("total_seconds", 0);
    r.p50 = hv.numberOr("p50", 0);
    r.p95 = hv.numberOr("p95", 0);
    r.p99 = hv.numberOr("p99", 0);
    r.max = hv.numberOr("max", 0);
    out.push_back(std::move(r));
  }
  return out;
}

E2eStats parseE2e(const Value& parent) {
  E2eStats s;
  const Value* ev = parent.find("e2e");
  if (ev == nullptr || !ev->isObject()) return s;
  s.requests = ev->numberOr("requests", 0);
  s.mean = ev->numberOr("mean", 0);
  s.p50 = ev->numberOr("p50", 0);
  s.p95 = ev->numberOr("p95", 0);
  s.p99 = ev->numberOr("p99", 0);
  s.max = ev->numberOr("max", 0);
  return s;
}

/// Load and validate one `--optrace` export, behind the same gate as
/// loadTimeline.
bool loadOpTrace(const char* path, OpTraceDoc* out) {
  if (!loadGatedArtifact(path, "optrace",
                         bgckpt::obs::OpTracer::kSchemaVersion, &out->doc))
    return false;
  out->sampleEvery = out->doc.numberOr("sample_every", 1);
  out->horizon = out->doc.numberOr("horizon", 0);
  out->e2e = parseE2e(out->doc);
  out->hops = parseHopRows(out->doc);
  if (const Value* ops = out->doc.find("ops"); ops && ops->isArray()) {
    for (const Value& ov : *ops->array) {
      if (!ov.isObject()) continue;
      const std::string op = ov.stringOr("op", "?");
      out->opE2e.emplace_back(op, parseE2e(ov));
      out->opHops.emplace_back(op, parseHopRows(ov));
    }
  }
  return true;
}

void printHopTable(const std::vector<HopRow>& hops) {
  std::printf("%-14s %10s %12s %10s %10s %10s %10s\n", "hop", "requests",
              "total-sec", "p50", "p95", "p99", "max");
  for (const HopRow& r : hops)
    std::printf("%-14s %10.0f %12.3f %10.4g %10.4g %10.4g %10.4g\n",
                r.hop.c_str(), r.requests, r.total, r.p50, r.p95, r.p99,
                r.max);
}

/// Print which hops dominate the e2e p99: the smallest prefix of hops
/// (sorted by p99 contribution) whose per-request p99 totals cover >= 80%
/// of the end-to-end p99, i.e. where the tail latency actually lives.
void printLocalization(const std::string& scope,
                       const std::vector<HopRow>& hops, double e2eP99) {
  if (e2eP99 <= 0 || hops.empty()) return;
  std::vector<const HopRow*> order;
  for (const HopRow& r : hops) order.push_back(&r);
  std::stable_sort(order.begin(), order.end(),
                   [](const HopRow* a, const HopRow* b) {
                     return a->p99 > b->p99;
                   });
  double cum = 0;
  std::string names;
  for (const HopRow* r : order) {
    if (r->p99 <= 0) break;
    cum += r->p99;
    if (!names.empty()) names += " + ";
    names += r->hop;
    if (cum >= 0.8 * e2eP99 || names.size() > 60) break;
  }
  std::printf("p99 localization (%s): %s = %.0f%% of e2e p99 (%.4g s)\n",
              scope.c_str(), names.c_str(), cum / e2eP99 * 100.0, e2eP99);
}

/// Render one traced request's hop waterfall from its exported spans.
void renderRequest(const Value& req, int width) {
  const double t0 = req.numberOr("t0", 0);
  const double e2e = req.numberOr("e2e", 0);
  std::printf("\nrequest %lld: op=%s rank=%d offset=%.0f bytes=%.0f "
              "t0=%.4f e2e=%.6g s",
              static_cast<long long>(req.numberOr("id", -1)),
              req.stringOr("op", "?").c_str(),
              static_cast<int>(req.numberOr("rank", -1)),
              req.numberOr("offset", 0), req.numberOr("bytes", 0), t0, e2e);
  if (const Value* fi = req.find("fan_in"); fi != nullptr)
    std::printf(" fan-in=%d", static_cast<int>(fi->number));
  if (const Value* pv = req.find("parent"); pv != nullptr)
    std::printf(" parent=%lld", static_cast<long long>(pv->number));
  if (req.find("unfinished") != nullptr) std::printf(" UNFINISHED");
  std::printf("\n");
  std::vector<bgckpt::analysis::WaterfallSpan> spans;
  if (const Value* sv = req.find("spans"); sv && sv->isArray()) {
    for (const Value& span : *sv->array) {
      if (!span.isObject()) continue;
      bgckpt::analysis::WaterfallSpan w;
      w.label = span.stringOr("hop", "?");
      w.start = span.numberOr("t0", 0);
      w.dur = span.numberOr("dur", 0);
      w.bytes = static_cast<std::uint64_t>(span.numberOr("bytes", 0));
      spans.push_back(std::move(w));
    }
  }
  std::printf("%s",
              bgckpt::analysis::waterfall(spans, t0, t0 + e2e, width).c_str());
}

/// Find a retained request (tail first, then sampled) by trace id.
const Value* findRequest(const Value& doc, long long id) {
  for (const char* key : {"tail", "sampled"}) {
    const Value* arr = doc.find(key);
    if (arr == nullptr || !arr->isArray()) continue;
    for (const Value& req : *arr->array) {
      if (!req.isObject()) continue;
      if (static_cast<long long>(req.numberOr("id", -1)) == id) return &req;
    }
  }
  return nullptr;
}

/// Tail requests rendered by default; --req renders exactly one.
constexpr int kDefaultWaterfalls = 3;

int runWaterfallMode(const char* pathA, const char* pathB, long long reqId,
                     int width) {
  OpTraceDoc a;
  if (!loadOpTrace(pathA, &a)) return 2;
  std::printf("op trace: %s\n", pathA);
  const Value* rv = a.doc.find("requests");
  if (rv != nullptr && rv->isObject())
    std::printf("%.0f requests minted, %.0f completed (%.0f unfinished), "
                "sampled 1 in %.0f (%.0f kept)\n",
                rv->numberOr("minted", 0), rv->numberOr("completed", 0),
                rv->numberOr("unfinished", 0), a.sampleEvery,
                rv->numberOr("sampled", 0));
  std::printf("horizon %.3f s\n", a.horizon);
  std::printf("e2e: mean %.4g, p50 %.4g, p95 %.4g, p99 %.4g, max %.4g s\n",
              a.e2e.mean, a.e2e.p50, a.e2e.p95, a.e2e.p99, a.e2e.max);
  if (const Value* lv = a.doc.find("lineage"); lv && lv->isObject()) {
    const Value* fv = lv->find("fan_in");
    std::printf("lineage: %.0f aggregates, %.0f edges, fan-in "
                "min/p50/max = %.0f/%.0f/%.0f\n",
                lv->numberOr("aggregates", 0), lv->numberOr("edges", 0),
                fv != nullptr ? fv->numberOr("min", 0) : 0,
                fv != nullptr ? fv->numberOr("p50", 0) : 0,
                fv != nullptr ? fv->numberOr("max", 0) : 0);
  }

  if (pathB != nullptr) {
    OpTraceDoc b;
    if (!loadOpTrace(pathB, &b)) return 2;
    std::printf("diff against: %s (e2e p50 %.4g, p99 %.4g s)\n", pathB,
                b.e2e.p50, b.e2e.p99);
    std::map<std::string, std::pair<const HopRow*, const HopRow*>> merged;
    for (const HopRow& r : a.hops) merged[r.hop].first = &r;
    for (const HopRow& r : b.hops) merged[r.hop].second = &r;
    std::printf("\n%-14s %10s %10s %10s %10s %10s %11s\n", "hop", "A p50",
                "B p50", "A p99", "B p99", "A-B p99", "A-B total");
    for (const auto& [hop, ab] : merged) {
      const HopRow* ra = ab.first;
      const HopRow* rb = ab.second;
      std::printf("%-14s %10.4g %10.4g %10.4g %10.4g %+10.4g %+11.4g\n",
                  hop.c_str(), ra != nullptr ? ra->p50 : 0.0,
                  rb != nullptr ? rb->p50 : 0.0, ra != nullptr ? ra->p99 : 0.0,
                  rb != nullptr ? rb->p99 : 0.0,
                  (ra != nullptr ? ra->p99 : 0.0) -
                      (rb != nullptr ? rb->p99 : 0.0),
                  (ra != nullptr ? ra->total : 0.0) -
                      (rb != nullptr ? rb->total : 0.0));
    }
    std::printf("%-14s %10.4g %10.4g %10.4g %10.4g %+10.4g\n", "(e2e)",
                a.e2e.p50, b.e2e.p50, a.e2e.p99, b.e2e.p99,
                a.e2e.p99 - b.e2e.p99);
    return 0;
  }

  std::printf("\nhop percentiles (per-request hop totals, seconds):\n");
  printHopTable(a.hops);
  for (const auto& [op, hops] : a.opHops) {
    E2eStats opE2e;
    for (const auto& [name, s] : a.opE2e)
      if (name == op) opE2e = s;
    std::printf("\nop \"%s\" (%.0f requests, e2e p50 %.4g, p99 %.4g s):\n",
                op.c_str(), opE2e.requests, opE2e.p50, opE2e.p99);
    printHopTable(hops);
    printLocalization("op " + op, hops, opE2e.p99);
  }
  std::printf("\n");
  printLocalization("all requests", a.hops, a.e2e.p99);

  if (reqId >= 0) {
    const Value* req = findRequest(a.doc, reqId);
    if (req == nullptr) {
      std::fprintf(stderr,
                   "trace_report: request %lld not retained (tail or "
                   "sampled) in %s\n",
                   reqId, pathA);
      return 1;
    }
    renderRequest(*req, width);
    return 0;
  }
  if (const Value* tail = a.doc.find("tail"); tail && tail->isArray()) {
    const auto n = std::min<std::size_t>(tail->array->size(),
                                         kDefaultWaterfalls);
    if (n > 0)
      std::printf("\ntail waterfalls (%zu slowest of %zu retained):\n", n,
                  tail->array->size());
    for (std::size_t i = 0; i < n; ++i)
      renderRequest((*tail->array)[i], width);
  }
  return 0;
}

// ------------------------------------------------------- --runtime mode --

/// One shard-group configuration's accumulated totals. Benchmark loops run
/// the same (shards, threads) topology many times; the report merges them
/// so the phase shares describe the topology, not one 10ms iteration.
struct ShardGroupAgg {
  unsigned shards = 0;
  unsigned threads = 0;
  std::uint64_t runs = 0;
  std::uint64_t windows = 0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t overflow = 0;
  double wallNs = 0;
  double setupNs = 0, drainNs = 0, reduceNs = 0, barrierNs = 0, execNs = 0;
  struct Shard {
    double drainNs = 0, execNs = 0;
    std::uint64_t events = 0, delivered = 0, criticalWindows = 0;
  };
  std::vector<Shard> perShard;
  std::vector<double> workerBarrierNs;

  /// Worker wall = drain + reduce + barrier-wait + exec. The reduce runs
  /// *inside* one worker's barrier wait each window, so it is carved out
  /// of the barrier total — the four shares then sum to 100% exactly.
  double barrierWaitNs() const {
    return barrierNs > reduceNs ? barrierNs - reduceNs : 0.0;
  }
  double workerWallNs() const {
    return drainNs + reduceNs + barrierWaitNs() + execNs;
  }
};

struct RuntimeProfDoc {
  Value doc;
  std::vector<ShardGroupAgg> groups;  // keyed by (shards, threads)
};

/// Load and validate one `--runtime-profile` export, behind the same gate
/// as loadTimeline.
bool loadRuntimeProf(const char* path, RuntimeProfDoc* out) {
  if (!loadGatedArtifact(path, "runtimeprof",
                         bgckpt::obs::kRuntimeProfSchemaVersion, &out->doc))
    return false;
  const Value* runs = out->doc.find("shard_runs");
  if (runs == nullptr || !runs->isArray()) return true;
  for (const Value& rv : *runs->array) {
    if (!rv.isObject()) continue;
    const auto shards = static_cast<unsigned>(rv.numberOr("shards", 0));
    const auto threads = static_cast<unsigned>(rv.numberOr("threads", 0));
    ShardGroupAgg* g = nullptr;
    for (ShardGroupAgg& cand : out->groups)
      if (cand.shards == shards && cand.threads == threads) g = &cand;
    if (g == nullptr) {
      out->groups.emplace_back();
      g = &out->groups.back();
      g->shards = shards;
      g->threads = threads;
      g->perShard.resize(shards);
      g->workerBarrierNs.assign(threads, 0.0);
    }
    ++g->runs;
    g->windows += static_cast<std::uint64_t>(rv.numberOr("windows", 0));
    g->events += static_cast<std::uint64_t>(rv.numberOr("events", 0));
    g->messages += static_cast<std::uint64_t>(rv.numberOr("messages", 0));
    g->overflow += static_cast<std::uint64_t>(rv.numberOr("overflow", 0));
    g->wallNs += rv.numberOr("wall_ns", 0);
    if (const Value* ph = rv.find("phase_ns"); ph && ph->isObject()) {
      g->setupNs += ph->numberOr("setup", 0);
      g->drainNs += ph->numberOr("drain", 0);
      g->reduceNs += ph->numberOr("reduce", 0);
      g->barrierNs += ph->numberOr("barrier", 0);
      g->execNs += ph->numberOr("exec", 0);
    }
    if (const Value* ps = rv.find("per_shard"); ps && ps->isArray()) {
      for (const Value& sv : *ps->array) {
        if (!sv.isObject()) continue;
        const auto i = static_cast<std::size_t>(sv.numberOr("shard", 0));
        if (i >= g->perShard.size()) continue;
        auto& slot = g->perShard[i];
        slot.drainNs += sv.numberOr("drain_ns", 0);
        slot.execNs += sv.numberOr("exec_ns", 0);
        slot.events += static_cast<std::uint64_t>(sv.numberOr("events", 0));
        slot.delivered +=
            static_cast<std::uint64_t>(sv.numberOr("delivered", 0));
        slot.criticalWindows +=
            static_cast<std::uint64_t>(sv.numberOr("critical_windows", 0));
      }
    }
    if (const Value* pw = rv.find("per_worker"); pw && pw->isArray()) {
      for (const Value& wv : *pw->array) {
        if (!wv.isObject()) continue;
        const auto i = static_cast<std::size_t>(wv.numberOr("worker", 0));
        if (i < g->workerBarrierNs.size())
          g->workerBarrierNs[i] += wv.numberOr("barrier_ns", 0);
      }
    }
  }
  return true;
}

void renderShardGroup(const ShardGroupAgg& g) {
  std::printf("\nshard group [shards=%u threads=%u]: %" PRIu64
              " run(s), %" PRIu64 " windows, %" PRIu64 " events, %" PRIu64
              " messages, %" PRIu64 " spills, wall %.3f ms\n",
              g.shards, g.threads, g.runs, g.windows, g.events, g.messages,
              g.overflow, g.wallNs / 1e6);
  const double ww = g.workerWallNs();
  if (ww > 0) {
    const auto share = [ww](double ns) { return ns / ww * 100.0; };
    std::printf("worker wall decomposition: drain %.1f%% + reduce %.1f%% + "
                "barrier-wait %.1f%% + execute %.1f%% = 100%%\n",
                share(g.drainNs), share(g.reduceNs), share(g.barrierWaitNs()),
                share(g.execNs));
    std::printf("parallel efficiency: %.1f%% of worker wall is useful "
                "execute (setup excluded: %.3f ms)\n",
                share(g.execNs), g.setupNs / 1e6);
  }
  std::printf("\n%7s %12s %12s %12s %12s %10s %7s\n", "shard", "drain-ms",
              "exec-ms", "events", "delivered", "critical", "crit%");
  for (std::size_t i = 0; i < g.perShard.size(); ++i) {
    const auto& s = g.perShard[i];
    std::printf("%7zu %12.3f %12.3f %12" PRIu64 " %12" PRIu64 " %10" PRIu64
                " %6.1f%%\n",
                i, s.drainNs / 1e6, s.execNs / 1e6, s.events, s.delivered,
                s.criticalWindows,
                g.windows > 0 ? static_cast<double>(s.criticalWindows) /
                                    static_cast<double>(g.windows) * 100.0
                              : 0.0);
  }
  std::printf("%7s", "barrier");
  for (std::size_t w = 0; w < g.workerBarrierNs.size() && w < 8; ++w)
    std::printf(" w%zu=%.2fms", w, g.workerBarrierNs[w] / 1e6);
  std::printf("\n");
  // The one-line summary: who sets the horizon, and what that costs.
  std::size_t critShard = 0;
  for (std::size_t i = 1; i < g.perShard.size(); ++i)
    if (g.perShard[i].criticalWindows >
        g.perShard[critShard].criticalWindows)
      critShard = i;
  if (g.windows > 0 && !g.perShard.empty() && ww > 0)
    std::printf("critical shard: shard %zu critical in %.0f%% of windows; "
                "barrier wait = %.0f%% of worker wall\n",
                critShard,
                static_cast<double>(g.perShard[critShard].criticalWindows) /
                    static_cast<double>(g.windows) * 100.0,
                g.barrierWaitNs() / ww * 100.0);
}

/// A region's Amdahl decomposition: the serial fraction is the share of
/// total job work pinned in the single longest job. Independent jobs can
/// never finish before max(longest job, total work / T), so the speedup
/// ceiling is sum / max(maxJob, sum/T) — which tends to 1/s as T grows.
/// Printing the measured speedup next to the ceiling says whether the cap
/// is the workload (one dominant job) or the scheduler.
void renderRegion(const Value& rv) {
  const auto jobs = static_cast<std::size_t>(rv.numberOr("jobs", 0));
  const auto threads = static_cast<unsigned>(rv.numberOr("threads", 1));
  const double wall = rv.numberOr("wall_ns", 0);
  const double sum = rv.numberOr("sum_job_ns", 0);
  const double maxJob = rv.numberOr("max_job_ns", 0);
  std::printf("\nparallel region %lld: %zu jobs on %u threads, wall %.3f s\n",
              static_cast<long long>(rv.numberOr("id", 0)), jobs, threads,
              wall / 1e9);
  struct JobRow {
    std::size_t job = 0;
    unsigned worker = 0;
    double ns = 0;
    std::string label;
  };
  std::vector<JobRow> rows;
  if (const Value* jd = rv.find("jobs_detail"); jd && jd->isArray()) {
    for (const Value& jv : *jd->array) {
      if (!jv.isObject()) continue;
      JobRow r;
      r.job = static_cast<std::size_t>(jv.numberOr("job", 0));
      r.worker = static_cast<unsigned>(jv.numberOr("worker", 0));
      r.ns = jv.numberOr("ns", 0);
      r.label = jv.stringOr("label", "");
      rows.push_back(std::move(r));
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const JobRow& a, const JobRow& b) { return a.ns > b.ns; });
  std::printf("%6s %7s %12s %8s  %s\n", "job", "worker", "wall-s", "share",
              "label");
  constexpr std::size_t kMaxJobRows = 20;
  for (std::size_t i = 0; i < rows.size() && i < kMaxJobRows; ++i) {
    const JobRow& r = rows[i];
    std::printf("%6zu %7u %12.3f %7.1f%%  %s\n", r.job, r.worker, r.ns / 1e9,
                sum > 0 ? r.ns / sum * 100.0 : 0.0,
                r.label.empty() ? "(unlabelled)" : r.label.c_str());
  }
  if (rows.size() > kMaxJobRows)
    std::printf("  ... %zu more job(s)\n", rows.size() - kMaxJobRows);
  if (sum > 0 && wall > 0 && threads > 0) {
    const double s = maxJob / sum;
    const double floorNs =
        std::max(maxJob, sum / static_cast<double>(threads));
    const double ceiling = floorNs > 0 ? sum / floorNs : 0.0;
    const double speedup = sum / wall;
    const char* critLabel = rows.empty() || rows.front().label.empty()
                                ? "(unlabelled)"
                                : rows.front().label.c_str();
    std::printf("critical point: %s (%.3f s, %.0f%% of region wall)\n",
                critLabel, maxJob / 1e9, wall > 0 ? maxJob / wall * 100.0 : 0.0);
    std::printf("parallel efficiency: speedup %.2fx of %u threads (%.1f%%); "
                "serial fraction %.2f -> Amdahl ceiling %.2fx\n",
                speedup, threads,
                speedup / static_cast<double>(threads) * 100.0, s, ceiling);
  }
}

int runRuntimeMode(const char* pathA, const char* pathB) {
  RuntimeProfDoc a;
  if (!loadRuntimeProf(pathA, &a)) return 2;
  std::printf("runtime profile: %s\n", pathA);
  const Value* regionsA = a.doc.find("parallel_regions");
  const Value* pointsA = a.doc.find("points");
  const std::size_t nRegions =
      regionsA != nullptr && regionsA->isArray() ? regionsA->array->size() : 0;
  const std::size_t nPoints =
      pointsA != nullptr && pointsA->isArray() ? pointsA->array->size() : 0;
  std::printf("%zu shard-group config(s), %zu parallel region(s), %zu "
              "point record(s)\n",
              a.groups.size(), nRegions, nPoints);
  if (a.doc.numberOr("dropped_shard_runs", 0) > 0)
    std::printf("WARNING: %.0f shard run(s) beyond the retention cap were "
                "not recorded\n",
                a.doc.numberOr("dropped_shard_runs", 0));

  if (pathB != nullptr) {
    RuntimeProfDoc b;
    if (!loadRuntimeProf(pathB, &b)) return 2;
    std::printf("diff against: %s\n", pathB);
    // Point-by-point wall comparison (labels are deterministic, so they
    // line up across runs whatever the thread counts were).
    std::map<std::string, std::pair<double, double>> points;
    const auto collect = [](const Value& doc, bool first,
                            std::map<std::string, std::pair<double, double>>&
                                out) {
      const Value* arr = doc.find("points");
      if (arr == nullptr || !arr->isArray()) return;
      for (const Value& pv : *arr->array) {
        if (!pv.isObject()) continue;
        auto& slot = out[pv.stringOr("label", "?")];
        (first ? slot.first : slot.second) += pv.numberOr("wall_s", 0);
      }
    };
    collect(a.doc, true, points);
    collect(b.doc, false, points);
    if (!points.empty()) {
      std::printf("\n%-40s %12s %12s %8s\n", "point", "A wall-s", "B wall-s",
                  "B/A");
      for (const auto& [label, ab] : points)
        std::printf("%-40s %12.3f %12.3f %7.2fx\n", label.c_str(), ab.first,
                    ab.second,
                    ab.first > 0 ? ab.second / ab.first : 0.0);
    }
    // Phase-share comparison per matching shard-group topology.
    for (const ShardGroupAgg& ga : a.groups) {
      for (const ShardGroupAgg& gb : b.groups) {
        if (ga.shards != gb.shards || ga.threads != gb.threads) continue;
        const double wa = ga.workerWallNs();
        const double wb = gb.workerWallNs();
        if (wa <= 0 || wb <= 0) continue;
        std::printf("\nshard group [shards=%u threads=%u] phase shares "
                    "(A -> B):\n",
                    ga.shards, ga.threads);
        const auto row = [&](const char* name, double na, double nb) {
          std::printf("  %-12s %6.1f%% -> %6.1f%%  (%+.1f)\n", name,
                      na / wa * 100.0, nb / wb * 100.0,
                      nb / wb * 100.0 - na / wa * 100.0);
        };
        row("drain", ga.drainNs, gb.drainNs);
        row("reduce", ga.reduceNs, gb.reduceNs);
        row("barrier-wait", ga.barrierWaitNs(), gb.barrierWaitNs());
        row("execute", ga.execNs, gb.execNs);
      }
    }
    return 0;
  }

  for (const ShardGroupAgg& g : a.groups) renderShardGroup(g);
  if (nRegions > 0)
    for (const Value& rv : *regionsA->array)
      if (rv.isObject()) renderRegion(rv);
  if (nPoints > 0) {
    std::printf("\n%-40s %12s %14s %10s\n", "point", "wall-s", "events",
                "Mev/s");
    for (const Value& pv : *pointsA->array) {
      if (!pv.isObject()) continue;
      const double wall = pv.numberOr("wall_s", 0);
      const double events = pv.numberOr("events", 0);
      std::printf("%-40s %12.3f %14.0f %10.2f\n",
                  pv.stringOr("label", "?").c_str(), wall, events,
                  wall > 0 ? events / wall / 1e6 : 0.0);
    }
  }
  return 0;
}

// ------------------------------------------------------ --campaign mode --

using bgckpt::obs::LedgerEntry;
using bgckpt::obs::RunStore;

/// One simulated-checkpoint perf record pulled out of a ledger entry:
/// the row unit of the cross-run bandwidth and best-strategy views.
struct CampaignRun {
  int np = 0;
  int nf = 0;
  std::string strategy;     // "1PFPP" / "coIO" / "rbIO"
  std::string config;       // StrategyConfig::describe() text
  std::string measuredGbs;  // the exact string the bench printed
  double gbsValue = 0;      // parsed from measuredGbs, comparisons only
};

/// Human identity of one stored run: "bench --args" plus the repetition
/// ordinal when the sweep asked for more than one.
std::string runLabel(const LedgerEntry& e) {
  std::string label = e.config.stringOr("bench", "?");
  if (const Value* args = e.config.find("args"); args && args->isArray())
    for (const Value& a : *args->array) {
      label += ' ';
      label += a.string;
    }
  const int rep = static_cast<int>(e.config.numberOr("rep", 1));
  if (rep > 1) label += " [rep " + std::to_string(rep) + "]";
  return label;
}

double perfTotal(const LedgerEntry& e, const char* field) {
  const Value* total = e.perf.find("total");
  return total != nullptr ? total->numberOr(field, 0) : 0;
}

std::vector<CampaignRun> collectSimRuns(
    const std::vector<LedgerEntry>& entries) {
  std::vector<CampaignRun> out;
  for (const LedgerEntry& e : entries) {
    const Value* runs = e.perf.find("runs");
    if (runs == nullptr || !runs->isArray()) continue;
    for (const Value& rv : *runs->array) {
      if (!rv.isObject() || rv.find("strategy") == nullptr) continue;
      CampaignRun r;
      r.np = static_cast<int>(rv.numberOr("np", 0));
      r.nf = static_cast<int>(rv.numberOr("nf", 0));
      r.strategy = rv.stringOr("strategy", "?");
      r.config = rv.stringOr("config", "?");
      r.measuredGbs = rv.stringOr("measured_gbs", "?");
      r.gbsValue = std::strtod(r.measuredGbs.c_str(), nullptr);
      out.push_back(std::move(r));
    }
  }
  return out;
}

/// Open a ledger directory, report corrupt entries on stderr, and require
/// at least one intact run.
bool openLedger(const char* dir, std::vector<LedgerEntry>* out) {
  std::vector<std::string> errors;
  *out = RunStore(dir).loadAll(&errors);
  for (const std::string& err : errors)
    std::fprintf(stderr, "trace_report: skipping entry: %s\n", err.c_str());
  if (out->empty()) {
    std::fprintf(stderr, "trace_report: %s: no intact ledger entries\n", dir);
    return false;
  }
  return true;
}

void printLedgerSummary(const std::vector<LedgerEntry>& entries) {
  std::unordered_set<std::string> hashes, revs;
  std::string revList;
  for (const LedgerEntry& e : entries) {
    hashes.insert(e.configHash);
    if (revs.insert(e.gitRev).second) {
      if (!revList.empty()) revList += ", ";
      revList += e.gitRev;
    }
  }
  std::printf("%zu run(s), %zu distinct config(s), revision(s): %s\n",
              entries.size(), hashes.size(), revList.c_str());
}

/// The fig5 surface, re-derived: strategy configuration x np, each cell
/// the stored `measured_gbs` string verbatim. Conflicting duplicates (same
/// config and np, different measurement) render as "varies" rather than
/// silently picking one.
void renderBandwidthTable(const std::vector<CampaignRun>& runs) {
  std::vector<int> nps;
  for (const CampaignRun& r : runs)
    if (std::find(nps.begin(), nps.end(), r.np) == nps.end())
      nps.push_back(r.np);
  std::sort(nps.begin(), nps.end());
  // config text -> np -> cell; file order decides row order (stable).
  std::vector<std::string> order;
  std::map<std::string, std::map<int, std::string>> cells;
  for (const CampaignRun& r : runs) {
    if (cells.find(r.config) == cells.end()) order.push_back(r.config);
    auto& cell = cells[r.config][r.np];
    if (cell.empty())
      cell = r.measuredGbs;
    else if (cell != r.measuredGbs)
      cell = "varies";
  }
  std::printf("\nper-strategy bandwidth vs np (measured):\n%-26s", "strategy");
  for (int np : nps) {
    char head[24];
    std::snprintf(head, sizeof(head), "np=%d", np);
    std::printf(" %14s", head);
  }
  std::printf("\n");
  for (const std::string& config : order) {
    std::printf("%-26s", config.c_str());
    for (int np : nps) {
      const auto& row = cells[config];
      const auto it = row.find(np);
      std::printf(" %14s", it == row.end() ? "-" : it->second.c_str());
    }
    std::printf("\n");
  }
}

/// Which strategy wins each (np, nf) cell, by measured bandwidth.
void renderBestStrategyMatrix(const std::vector<CampaignRun>& runs) {
  std::vector<int> nps, nfs;
  for (const CampaignRun& r : runs) {
    if (std::find(nps.begin(), nps.end(), r.np) == nps.end())
      nps.push_back(r.np);
    if (std::find(nfs.begin(), nfs.end(), r.nf) == nfs.end())
      nfs.push_back(r.nf);
  }
  std::sort(nps.begin(), nps.end());
  std::sort(nfs.begin(), nfs.end());
  std::map<std::pair<int, int>, const CampaignRun*> best;
  for (const CampaignRun& r : runs) {
    const CampaignRun*& slot = best[{r.np, r.nf}];
    if (slot == nullptr || r.gbsValue > slot->gbsValue) slot = &r;
  }
  std::printf("\nbest strategy per (np, nf), by measured bandwidth:\n%-10s",
              "np \\ nf");
  for (int nf : nfs) std::printf(" %12d", nf);
  std::printf("\n");
  for (int np : nps) {
    std::printf("%-10d", np);
    for (int nf : nfs) {
      const auto it = best.find({np, nf});
      std::printf(" %12s",
                  it == best.end() ? "-" : it->second->strategy.c_str());
    }
    std::printf("\n");
  }
}

int runCampaignMode(const char* dir, const char* diffDir,
                    const char* baselineDir, double tolerance) {
  std::vector<LedgerEntry> entries;
  if (!openLedger(dir, &entries)) return 2;
  std::printf("campaign ledger: %s\n", dir);
  printLedgerSummary(entries);

  if (diffDir != nullptr) {
    std::vector<LedgerEntry> other;
    if (!openLedger(diffDir, &other)) return 2;
    std::printf("diff against: %s\n", diffDir);
    printLedgerSummary(other);
    std::map<std::string, const LedgerEntry*> byHashB;
    for (const LedgerEntry& e : other) byHashB[e.configHash] = &e;
    std::unordered_set<std::string> matched;
    std::printf("\n%-44s %10s %10s %8s %12s %12s %8s\n", "config", "A wall-s",
                "B wall-s", "B/A", "A events", "B events", "delta");
    for (const LedgerEntry& a : entries) {
      const auto it = byHashB.find(a.configHash);
      if (it == byHashB.end()) continue;
      matched.insert(a.configHash);
      const LedgerEntry& b = *it->second;
      const double wallA = perfTotal(a, "wall_seconds");
      const double wallB = perfTotal(b, "wall_seconds");
      const double evA = perfTotal(a, "events");
      const double evB = perfTotal(b, "events");
      std::printf("%-44s %10.3f %10.3f %7.2fx %12.0f %12.0f %+7.2f%%\n",
                  runLabel(a).c_str(), wallA, wallB,
                  wallA > 0 ? wallB / wallA : 0.0, evA, evB,
                  evA > 0 ? (evB - evA) / evA * 100.0 : 0.0);
    }
    for (const LedgerEntry& a : entries)
      if (byHashB.find(a.configHash) == byHashB.end())
        std::printf("only in A: %s (rev %s)\n", runLabel(a).c_str(),
                    a.gitRev.c_str());
    for (const LedgerEntry& b : other)
      if (matched.find(b.configHash) == matched.end())
        std::printf("only in B: %s (rev %s)\n", runLabel(b).c_str(),
                    b.gitRev.c_str());
    return 0;
  }

  if (baselineDir != nullptr) {
    // The perf_compare contract applied across runs: simulated event
    // counts are deterministic per (config, code), so any drift beyond
    // the tolerance marks a behavioural change — and fails the gate.
    // Wall time is printed for context only (ledgers cross machines).
    std::vector<LedgerEntry> base;
    if (!openLedger(baselineDir, &base)) return 2;
    std::printf("gating against: %s (tolerance %.1f%%)\n", baselineDir,
                tolerance * 100.0);
    std::map<std::string, const LedgerEntry*> byHash;
    for (const LedgerEntry& e : base) byHash[e.configHash] = &e;
    int failed = 0, skipped = 0, ok = 0;
    std::printf("\n");
    for (const LedgerEntry& cur : entries) {
      const auto it = byHash.find(cur.configHash);
      if (it == byHash.end()) {
        std::printf("campaign gate [SKIP] %s: not in baseline\n",
                    runLabel(cur).c_str());
        ++skipped;
        continue;
      }
      const double evCur = perfTotal(cur, "events");
      const double evBase = perfTotal(*it->second, "events");
      const double drift =
          evBase > 0 ? std::abs(evCur - evBase) / evBase : (evCur > 0 ? 1 : 0);
      const bool pass = drift <= tolerance;
      std::printf("campaign gate [%s] %s: events %.0f -> %.0f (%+.2f%%), "
                  "wall %.3fs -> %.3fs\n",
                  pass ? "OK" : "FAIL", runLabel(cur).c_str(), evBase, evCur,
                  evBase > 0 ? (evCur - evBase) / evBase * 100.0 : 0.0,
                  perfTotal(*it->second, "wall_seconds"),
                  perfTotal(cur, "wall_seconds"));
      pass ? ++ok : ++failed;
    }
    std::printf("\n%d gated: %d ok, %d failed, %d skipped\n",
                ok + failed + skipped, ok, failed, skipped);
    return failed > 0 ? 1 : 0;
  }

  const std::vector<CampaignRun> simRuns = collectSimRuns(entries);
  if (!simRuns.empty()) {
    renderBandwidthTable(simRuns);
    renderBestStrategyMatrix(simRuns);
  }
  std::printf("\nruns:\n");
  for (const LedgerEntry& e : entries)
    std::printf("  %s  rev %-12s exit %d  wall %8.3fs  %s\n", e.key.c_str(),
                e.gitRev.c_str(), e.exitCode, e.wallSeconds,
                runLabel(e).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  const char* diffPath = nullptr;
  const char* baselinePath = nullptr;
  double tolerance = 0.15;
  int bins = 60;
  int width = 72;
  long long reqId = -1;
  enum class Mode {
    kSummary,
    kAttr,
    kCritPath,
    kTimeline,
    kWaterfall,
    kRuntime,
    kCampaign
  } mode = Mode::kSummary;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bins") == 0 && i + 1 < argc) {
      bins = std::atoi(argv[++i]);
      if (bins < 1) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--width") == 0 && i + 1 < argc) {
      width = std::atoi(argv[++i]);
      if (width < 1) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--req") == 0 && i + 1 < argc) {
      reqId = std::atoll(argv[++i]);
      if (reqId < 0) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--attr") == 0) {
      mode = Mode::kAttr;
    } else if (std::strcmp(argv[i], "--critpath") == 0) {
      mode = Mode::kCritPath;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      mode = Mode::kTimeline;
    } else if (std::strcmp(argv[i], "--waterfall") == 0) {
      mode = Mode::kWaterfall;
    } else if (std::strcmp(argv[i], "--runtime") == 0) {
      mode = Mode::kRuntime;
    } else if (std::strcmp(argv[i], "--campaign") == 0) {
      mode = Mode::kCampaign;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baselinePath = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
      if (!(tolerance >= 0)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--diff") == 0 && i + 1 < argc) {
      diffPath = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      path = argv[i];
    }
  }
  if (!path) return usage(argv[0]);
  if (diffPath != nullptr && mode == Mode::kSummary) return usage(argv[0]);
  if (reqId >= 0 && (mode != Mode::kWaterfall || diffPath != nullptr))
    return usage(argv[0]);
  if (baselinePath != nullptr &&
      (mode != Mode::kCampaign || diffPath != nullptr))
    return usage(argv[0]);
  if (mode == Mode::kAttr) return runAttrMode(path, diffPath);
  if (mode == Mode::kCritPath) return runCritPathMode(path, diffPath);
  if (mode == Mode::kTimeline) return runTimelineMode(path, diffPath, width);
  if (mode == Mode::kWaterfall)
    return runWaterfallMode(path, diffPath, reqId, width);
  if (mode == Mode::kRuntime) return runRuntimeMode(path, diffPath);
  if (mode == Mode::kCampaign)
    return runCampaignMode(path, diffPath, baselinePath, tolerance);

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", path);
    return 2;
  }

  std::map<std::string, LayerTotals> layers;
  // Open 'B' spans per (layer, tid, name); drained by matching 'E's.
  std::map<std::string, std::uint64_t> openSpans;
  std::uint64_t parseErrors = 0, lines = 0, unmatchedEnds = 0;
  bgckpt::prof::IoProfile profile;
  double horizon = 0;
  int maxRank = -1;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    std::string err;
    const auto doc = bgckpt::obs::json::parse(line, &err);
    if (!doc || !doc->isObject()) {
      ++parseErrors;
      continue;
    }
    const std::string cat = doc->stringOr("cat", "?");
    const std::string name = doc->stringOr("name", "?");
    const std::string ph = doc->stringOr("ph", "X");
    const double ts = doc->numberOr("ts", 0);
    const double dur = doc->numberOr("dur", 0);
    const auto bytes =
        static_cast<std::uint64_t>(doc->numberOr("bytes", 0));
    const int tid = static_cast<int>(doc->numberOr("tid", 0));

    auto& lt = layers[cat];
    ++lt.events;
    lt.bytes += bytes;
    horizon = std::max(horizon, ts + dur);

    if (ph == "B" || ph == "E") {
      const std::string key =
          cat + "/" + std::to_string(tid) + "/" + name;
      if (ph == "B") {
        ++openSpans[key];
      } else {
        auto it = openSpans.find(key);
        if (it == openSpans.end() || it->second == 0)
          ++unmatchedEnds;
        else if (--it->second == 0)
          openSpans.erase(it);
      }
    }
    if (ph == "X") {
      lt.busySeconds += dur;
      if (cat == "io") {
        if (const auto op = bgckpt::prof::opFromName(name)) {
          profile.record(tid, *op, ts, ts + dur, bytes);
          maxRank = std::max(maxRank, tid);
        }
      }
      if (cat == "app") maxRank = std::max(maxRank, tid);
    }
  }

  std::printf("trace_report: %s\n", path);
  std::printf("%" PRIu64 " events on %zu layers, horizon %.3f s\n",
              static_cast<std::uint64_t>(lines), layers.size(), horizon);
  if (parseErrors)
    std::printf("WARNING: %" PRIu64 " unparseable lines\n", parseErrors);

  std::printf("\n%-12s %12s %16s %14s\n", "layer", "events", "bytes",
              "busy-seconds");
  for (const auto& [cat, lt] : layers)
    std::printf("%-12s %12" PRIu64 " %16" PRIu64 " %14.3f\n", cat.c_str(),
                lt.events, lt.bytes, lt.busySeconds);

  std::uint64_t stillOpen = 0;
  for (const auto& [key, n] : openSpans) stillOpen += n;
  const bool balanced = stillOpen == 0 && unmatchedEnds == 0;
  std::printf("\nspan balance: %s (%" PRIu64 " unclosed, %" PRIu64
              " unmatched ends)\n",
              balanced ? "OK" : "BROKEN", stillOpen, unmatchedEnds);

  if (!profile.records().empty()) {
    bgckpt::prof::ReportOptions opt;
    opt.numRanks = maxRank + 1;
    opt.jobName = "trace";
    std::printf("\n%s", bgckpt::prof::renderReport(profile, opt).c_str());

    const double binWidth = horizon / bins;
    std::vector<std::string> names;
    std::vector<std::vector<int>> series;
    using bgckpt::prof::Op;
    for (const Op op : {Op::kWrite, Op::kCreate, Op::kSend, Op::kRecv}) {
      auto counts = profile.activityTimeline(op, binWidth, horizon);
      if (std::any_of(counts.begin(), counts.end(),
                      [](int c) { return c > 0; })) {
        names.emplace_back(bgckpt::prof::opName(op));
        series.push_back(std::move(counts));
      }
    }
    if (!series.empty())
      std::printf("\nactivity timeline (ranks active per bin):\n%s",
                  bgckpt::analysis::activityStrip(names, series, binWidth)
                      .c_str());
  }

  return balanced && parseErrors == 0 ? 0 : 1;
}
