// trace_report: offline analysis of a JSONL trace event log.
//
// Usage:  trace_report <events.jsonl> [--bins N]
//         trace_report --attr <events.jsonl> [--diff <other.jsonl>]
//         trace_report --critpath <run.json> [--diff <other.json>]
//
// Default mode reads the event log written alongside a Chrome trace by
// `<bench> --trace <file>` (the `<file>.jsonl` twin), rebuilds the I/O
// profile from the kIo event stream, and prints:
//
//   1. per-layer event/byte totals,
//   2. a span-balance check (every 'B' must have a matching 'E'),
//   3. the Darshan-style job summary (prof::renderReport),
//   4. a write/handoff activity timeline (the Fig. 12 view of the run).
//
// --attr replays the same log through the blocked-time attribution engine
// (obs/attr.hpp) and prints the exclusive per-phase partition; with --diff
// it compares two runs (e.g. rbIO vs coIO) phase by phase. --critpath
// renders the JSON written by `<bench> --critpath <file>`, with the same
// A/B diff option.
//
// The JSONL form keeps timestamps in simulated seconds, so nothing here
// needs to undo the microsecond scaling of the Chrome stream.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/ascii.hpp"
#include "obs/attr.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "profiling/profile.hpp"
#include "profiling/report.hpp"

namespace {

using bgckpt::obs::json::Value;

struct LayerTotals {
  std::uint64_t events = 0;
  std::uint64_t bytes = 0;
  double busySeconds = 0;  // sum of 'X' durations
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <events.jsonl> [--bins N]\n"
               "       %s --attr <events.jsonl> [--diff <other.jsonl>]\n"
               "       %s --critpath <run.json> [--diff <other.json>]\n",
               argv0, argv0, argv0);
  return 2;
}

/// TraceEvent::name must outlive the emit; intern replayed names here.
const char* internName(const std::string& name) {
  static std::unordered_set<std::string> pool;
  return pool.insert(name).first->c_str();
}

bool layerFromName(const std::string& cat, bgckpt::obs::Layer* layer) {
  using bgckpt::obs::Layer;
  for (int i = 0; i < bgckpt::obs::kNumLayers; ++i) {
    const Layer l = static_cast<Layer>(i);
    if (cat == bgckpt::obs::layerName(l)) {
      *layer = l;
      return true;
    }
  }
  return false;
}

/// Replay a JSONL event log through the attribution engine. Returns false
/// (with a message on stderr) when the file cannot be read or parsed.
bool loadAttribution(const char* path,
                     bgckpt::obs::AttributionEngine::Report* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", path);
    return false;
  }
  bgckpt::obs::AttributionEngine engine;
  double horizon = 0;
  std::uint64_t parseErrors = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto doc = bgckpt::obs::json::parse(line);
    if (!doc || !doc->isObject()) {
      ++parseErrors;
      continue;
    }
    bgckpt::obs::TraceEvent ev;
    if (!layerFromName(doc->stringOr("cat", "?"), &ev.layer)) continue;
    const std::string ph = doc->stringOr("ph", "X");
    ev.phase = ph.empty() ? 'X' : ph[0];
    ev.tid = static_cast<int>(doc->numberOr("tid", 0));
    ev.name = internName(doc->stringOr("name", "?"));
    ev.ts = doc->numberOr("ts", 0);
    ev.dur = doc->numberOr("dur", 0);
    horizon = std::max(horizon, ev.ts + ev.dur);
    engine.addEvent(ev);
  }
  if (parseErrors)
    std::fprintf(stderr, "trace_report: %s: %" PRIu64 " unparseable lines\n",
                 path, parseErrors);
  *out = engine.compute(horizon);
  return true;
}

int runAttrMode(const char* pathA, const char* pathB) {
  using bgckpt::obs::AttributionEngine;
  using bgckpt::obs::Phase;
  using bgckpt::obs::phaseName;
  AttributionEngine::Report a;
  if (!loadAttribution(pathA, &a)) return 2;
  std::printf("blocked-time attribution: %s\n", pathA);
  std::printf("%zu ranks, horizon %.3f s, partition defect %.3g s\n",
              a.ranks.size(), a.horizon, a.partitionDefect());
  if (pathB == nullptr) {
    const double total = a.horizon * static_cast<double>(a.ranks.size());
    std::printf("\n%-13s %16s %9s\n", "phase", "proc-seconds", "share");
    for (int p = 0; p < bgckpt::obs::kNumPhases; ++p) {
      const double s = a.totals[static_cast<std::size_t>(p)];
      if (s <= 0.0) continue;
      std::printf("%-13s %16.3f %8.2f%%\n", phaseName(static_cast<Phase>(p)),
                  s, total > 0 ? s / total * 100.0 : 0.0);
    }
    std::printf("%-13s %16.3f %8.2f%%\n", "blocked", a.blockedSeconds(),
                total > 0 ? a.blockedSeconds() / total * 100.0 : 0.0);
    return 0;
  }
  AttributionEngine::Report b;
  if (!loadAttribution(pathB, &b)) return 2;
  std::printf("diff against: %s (%zu ranks, horizon %.3f s)\n", pathB,
              b.ranks.size(), b.horizon);
  std::printf("\n%-13s %16s %16s %16s\n", "phase", "A proc-sec", "B proc-sec",
              "A-B");
  for (int p = 0; p < bgckpt::obs::kNumPhases; ++p) {
    const double sa = a.totals[static_cast<std::size_t>(p)];
    const double sb = b.totals[static_cast<std::size_t>(p)];
    if (sa <= 0.0 && sb <= 0.0) continue;
    std::printf("%-13s %16.3f %16.3f %+16.3f\n",
                phaseName(static_cast<Phase>(p)), sa, sb, sa - sb);
  }
  std::printf("%-13s %16.3f %16.3f %+16.3f\n", "blocked", a.blockedSeconds(),
              b.blockedSeconds(), a.blockedSeconds() - b.blockedSeconds());
  if (b.blockedSeconds() > 0)
    std::printf("\nblocked-time ratio A/B: %.2fx\n",
                a.blockedSeconds() / b.blockedSeconds());
  return 0;
}

bool loadJsonFile(const char* path, Value* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", path);
    return false;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::string err;
  auto doc = bgckpt::obs::json::parse(text, &err);
  if (!doc || !doc->isObject()) {
    std::fprintf(stderr, "trace_report: %s: %s\n", path,
                 err.empty() ? "not a JSON object" : err.c_str());
    return false;
  }
  *out = *doc;
  return true;
}

/// Pull "seconds" per bucket name out of a critpath "by_kind"/"by_label"
/// array, preserving file order.
std::vector<std::pair<std::string, double>> critBuckets(const Value& doc,
                                                        const char* key) {
  std::vector<std::pair<std::string, double>> out;
  const Value* arr = doc.find(key);
  if (arr == nullptr || !arr->isArray()) return out;
  for (const Value& entry : *arr->array) {
    if (!entry.isObject()) continue;
    std::string name = entry.stringOr("kind", "");
    if (name.empty()) name = entry.stringOr("label", "?");
    out.emplace_back(std::move(name), entry.numberOr("seconds", 0));
  }
  return out;
}

int runCritPathMode(const char* pathA, const char* pathB) {
  Value a;
  if (!loadJsonFile(pathA, &a)) return 2;
  std::printf("critical path: %s\n", pathA);
  std::printf("horizon %.3f s, %.0f events recorded, %.0f path steps, "
              "path %.3f s\n",
              a.numberOr("horizon_seconds", 0), a.numberOr("events_recorded", 0),
              a.numberOr("path_steps", 0), a.numberOr("path_seconds", 0));
  const double pathSecondsA = a.numberOr("path_seconds", 0);
  if (pathB == nullptr) {
    for (const char* key : {"by_kind", "by_label"}) {
      std::printf("\n%-24s %14s %9s\n", key, "seconds", "share");
      for (const auto& [name, seconds] : critBuckets(a, key)) {
        if (seconds <= 0.0) continue;
        std::printf("%-24s %14.6f %8.2f%%\n", name.c_str(), seconds,
                    pathSecondsA > 0 ? seconds / pathSecondsA * 100.0 : 0.0);
      }
    }
    return 0;
  }
  Value b;
  if (!loadJsonFile(pathB, &b)) return 2;
  std::printf("diff against: %s (path %.3f s)\n", pathB,
              b.numberOr("path_seconds", 0));
  for (const char* key : {"by_kind", "by_label"}) {
    std::map<std::string, std::pair<double, double>> merged;
    for (const auto& [name, seconds] : critBuckets(a, key))
      merged[name].first = seconds;
    for (const auto& [name, seconds] : critBuckets(b, key))
      merged[name].second = seconds;
    std::printf("\n%-24s %14s %14s %14s\n", key, "A seconds", "B seconds",
                "A-B");
    for (const auto& [name, ab] : merged) {
      if (ab.first <= 0.0 && ab.second <= 0.0) continue;
      std::printf("%-24s %14.6f %14.6f %+14.6f\n", name.c_str(), ab.first,
                  ab.second, ab.first - ab.second);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  const char* diffPath = nullptr;
  int bins = 60;
  enum class Mode { kSummary, kAttr, kCritPath } mode = Mode::kSummary;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bins") == 0 && i + 1 < argc) {
      bins = std::atoi(argv[++i]);
      if (bins < 1) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--attr") == 0) {
      mode = Mode::kAttr;
    } else if (std::strcmp(argv[i], "--critpath") == 0) {
      mode = Mode::kCritPath;
    } else if (std::strcmp(argv[i], "--diff") == 0 && i + 1 < argc) {
      diffPath = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      path = argv[i];
    }
  }
  if (!path) return usage(argv[0]);
  if (diffPath != nullptr && mode == Mode::kSummary) return usage(argv[0]);
  if (mode == Mode::kAttr) return runAttrMode(path, diffPath);
  if (mode == Mode::kCritPath) return runCritPathMode(path, diffPath);

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", path);
    return 2;
  }

  std::map<std::string, LayerTotals> layers;
  // Open 'B' spans per (layer, tid, name); drained by matching 'E's.
  std::map<std::string, std::uint64_t> openSpans;
  std::uint64_t parseErrors = 0, lines = 0, unmatchedEnds = 0;
  bgckpt::prof::IoProfile profile;
  double horizon = 0;
  int maxRank = -1;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    std::string err;
    const auto doc = bgckpt::obs::json::parse(line, &err);
    if (!doc || !doc->isObject()) {
      ++parseErrors;
      continue;
    }
    const std::string cat = doc->stringOr("cat", "?");
    const std::string name = doc->stringOr("name", "?");
    const std::string ph = doc->stringOr("ph", "X");
    const double ts = doc->numberOr("ts", 0);
    const double dur = doc->numberOr("dur", 0);
    const auto bytes =
        static_cast<std::uint64_t>(doc->numberOr("bytes", 0));
    const int tid = static_cast<int>(doc->numberOr("tid", 0));

    auto& lt = layers[cat];
    ++lt.events;
    lt.bytes += bytes;
    horizon = std::max(horizon, ts + dur);

    if (ph == "B" || ph == "E") {
      const std::string key =
          cat + "/" + std::to_string(tid) + "/" + name;
      if (ph == "B") {
        ++openSpans[key];
      } else {
        auto it = openSpans.find(key);
        if (it == openSpans.end() || it->second == 0)
          ++unmatchedEnds;
        else if (--it->second == 0)
          openSpans.erase(it);
      }
    }
    if (ph == "X") {
      lt.busySeconds += dur;
      if (cat == "io") {
        if (const auto op = bgckpt::prof::opFromName(name)) {
          profile.record(tid, *op, ts, ts + dur, bytes);
          maxRank = std::max(maxRank, tid);
        }
      }
      if (cat == "app") maxRank = std::max(maxRank, tid);
    }
  }

  std::printf("trace_report: %s\n", path);
  std::printf("%" PRIu64 " events on %zu layers, horizon %.3f s\n",
              static_cast<std::uint64_t>(lines), layers.size(), horizon);
  if (parseErrors)
    std::printf("WARNING: %" PRIu64 " unparseable lines\n", parseErrors);

  std::printf("\n%-12s %12s %16s %14s\n", "layer", "events", "bytes",
              "busy-seconds");
  for (const auto& [cat, lt] : layers)
    std::printf("%-12s %12" PRIu64 " %16" PRIu64 " %14.3f\n", cat.c_str(),
                lt.events, lt.bytes, lt.busySeconds);

  std::uint64_t stillOpen = 0;
  for (const auto& [key, n] : openSpans) stillOpen += n;
  const bool balanced = stillOpen == 0 && unmatchedEnds == 0;
  std::printf("\nspan balance: %s (%" PRIu64 " unclosed, %" PRIu64
              " unmatched ends)\n",
              balanced ? "OK" : "BROKEN", stillOpen, unmatchedEnds);

  if (!profile.records().empty()) {
    bgckpt::prof::ReportOptions opt;
    opt.numRanks = maxRank + 1;
    opt.jobName = "trace";
    std::printf("\n%s", bgckpt::prof::renderReport(profile, opt).c_str());

    const double binWidth = horizon / bins;
    std::vector<std::string> names;
    std::vector<std::vector<int>> series;
    using bgckpt::prof::Op;
    for (const Op op : {Op::kWrite, Op::kCreate, Op::kSend, Op::kRecv}) {
      auto counts = profile.activityTimeline(op, binWidth, horizon);
      if (std::any_of(counts.begin(), counts.end(),
                      [](int c) { return c > 0; })) {
        names.emplace_back(bgckpt::prof::opName(op));
        series.push_back(std::move(counts));
      }
    }
    if (!series.empty())
      std::printf("\nactivity timeline (ranks active per bin):\n%s",
                  bgckpt::analysis::activityStrip(names, series, binWidth)
                      .c_str());
  }

  return balanced && parseErrors == 0 ? 0 : 1;
}
