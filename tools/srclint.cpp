// srclint — project-specific source lint for the simulator tree.
//
// Token-level checks that clang-tidy cannot express because they encode
// *this* project's invariants:
//
//   raw-new         `new`/`delete` expressions inside src/simcore/. Coroutine
//                   frames and event nodes must go through the FrameArena /
//                   event pool; a stray heap allocation on the per-event path
//                   is a silent perf regression. (`operator new` plumbing —
//                   the arena's slab allocator and the promise-type hooks —
//                   is exempt: it *is* the designated allocator.)
//   priority-queue  std::priority_queue anywhere but src/simcore/scheduler.cpp.
//                   The tiered ladder queue is the production dispatch
//                   structure; the legacy heap exists only as the A/B
//                   reference inside the scheduler.
//   assert          release-invisible assert() in src/. Simulation-state
//                   invariants must use SIM_CHECK/SIM_DCHECK
//                   (simcore/simcheck.hpp) so Release benches abort loudly
//                   instead of publishing corrupted figures. Also flags
//                   including <cassert>/<assert.h> from src/.
//   wall-clock      wall-clock and libc randomness identifiers in src/.
//                   Simulated time comes from the Scheduler and randomness
//                   from the seeded SplitMix/xoshiro RNG; host clocks or
//                   rand() make runs irreproducible.
//   ternary-co-await  `co_await` as an operand of ?: (or after a range-for
//                   colon). GCC's coroutine lowering destroys the awaited
//                   temporary before the conditional's result is copied out
//                   — ASan sees a use-after-free. Spell it as if/else.
//   obs-emit        member calls of `emit(...)` outside src/obs/. Trace
//                   events flow through the Observability helpers
//                   (begin/end/complete/message/counterSample) and sinks
//                   register via Observability::addSink; hand-rolled emit
//                   calls bypass the layer-mask fast path and the sink
//                   registry the flight recorder and attribution rely on.
//   telemetry-probe member calls of `probe(...)` in src/ outside src/obs/
//                   must resolve through the Telemetry registry on the same
//                   line (`obs->telemetry().probe("name", ...)`). Ad-hoc
//                   sampling state in sim layers would not flip live with
//                   --telemetry, never export, and dodge the imbalance
//                   analytics and the attribution cross-check.
//   optrace-mint    mintOpTrace(...) in src/ outside src/obs/ and
//                   src/iolib/. A causal-trace context is minted once at the
//                   strategy layer and then propagated *by value*; a layer
//                   that re-mints mid-path severs the request's lineage and
//                   double-counts it in every percentile table. Backends
//                   that legitimately originate requests (e.g. hostio)
//                   carry an explicit allow with justification.
//   static-mutable  static/global mutable variables in src/simcore/ and
//                   src/netsim/ without synchronisation. The sharded
//                   scheduler runs these layers on worker threads; hidden
//                   static state is a data race and a determinism leak
//                   (shards must not observe each other outside the mailbox
//                   protocol). Declarations marked const/constexpr/
//                   thread_local, or of atomic/mutex/once_flag type, are
//                   exempt; anything else needs an explicit allow naming
//                   the synchronisation that protects it.
//   include-hygiene headers must start with #pragma once; no "../" relative
//                   includes; no <bits/...> internals.
//
// Escape hatch: append `// srclint:allow(rule): <justification>` to the
// offending line, or put it on a comment line directly above (it then covers
// the next line that contains code). The justification text is mandatory — a
// bare allow is itself a finding, so every suppression documents why it is
// safe.
//
// Usage: srclint <dir-or-file>...   (exit 0 = clean, 1 = findings, 2 = usage)
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

std::vector<Finding> gFindings;

void report(const std::string& file, std::size_t line, const std::string& rule,
            const std::string& message) {
  gFindings.push_back(Finding{file, line, rule, message});
}

/// Strip comments and string/char literals from one line, tracking block
/// comments across lines. Stripped spans become spaces so column positions
/// (and identifier boundaries) survive.
std::string stripCode(const std::string& line, bool& inBlockComment) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (inBlockComment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        inBlockComment = false;
        out.append("  ");
        ++i;
      } else {
        out.push_back(' ');
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      break;  // line comment: rest of the line is commentary
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      inBlockComment = true;
      out.append("  ");
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(' ');
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          out.append("  ");
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        out.push_back(' ');
        ++i;
      }
      out.push_back(' ');
      continue;
    }
    out.push_back(c);
  }
  return out;
}

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// All identifiers in a stripped line, with their start offsets.
std::vector<std::pair<std::size_t, std::string>> identifiers(
    const std::string& code) {
  std::vector<std::pair<std::size_t, std::string>> out;
  std::size_t i = 0;
  while (i < code.size()) {
    if (isIdentChar(code[i]) &&
        std::isdigit(static_cast<unsigned char>(code[i])) == 0) {
      const std::size_t start = i;
      while (i < code.size() && isIdentChar(code[i])) ++i;
      out.emplace_back(start, code.substr(start, i - start));
    } else {
      ++i;
    }
  }
  return out;
}

/// Last non-space character before `pos`, or '\0'.
char lastNonSpaceBefore(const std::string& code, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (code[pos] != ' ' && code[pos] != '\t') return code[pos];
  }
  return '\0';
}

/// True when the identifier at `pos` is preceded by `operator` (with an
/// optional `::` scope), i.e. allocator plumbing rather than a raw
/// new/delete expression.
bool precededByOperator(const std::string& code, std::size_t pos) {
  std::size_t end = pos;
  while (end > 0 && (code[end - 1] == ' ' || code[end - 1] == '\t')) --end;
  const std::string kw = "operator";
  if (end >= kw.size() && code.compare(end - kw.size(), kw.size(), kw) == 0)
    return true;
  return false;
}

/// Parse `srclint:allow(rule): justification` suppressions on a raw line.
/// Returns the set of allowed rules; a missing justification is a finding.
std::set<std::string> parseAllows(const std::string& file, std::size_t lineNo,
                                  const std::string& rawLine) {
  std::set<std::string> allowed;
  const std::string marker = "srclint:allow(";
  std::size_t pos = 0;
  while ((pos = rawLine.find(marker, pos)) != std::string::npos) {
    const std::size_t open = pos + marker.size();
    const std::size_t close = rawLine.find(')', open);
    if (close == std::string::npos) break;
    const std::string rule = rawLine.substr(open, close - open);
    std::size_t after = close + 1;
    bool justified = false;
    if (after < rawLine.size() && rawLine[after] == ':') {
      ++after;
      while (after < rawLine.size()) {
        if (std::isspace(static_cast<unsigned char>(rawLine[after])) == 0) {
          justified = true;
          break;
        }
        ++after;
      }
    }
    if (justified) {
      allowed.insert(rule);
    } else {
      report(file, lineNo, "allow-needs-justification",
             "srclint:allow(" + rule +
                 ") must carry a justification: `// srclint:allow(" + rule +
                 "): why this is safe`");
    }
    pos = close;
  }
  return allowed;
}

const std::set<std::string> kWallClockIdents = {
    "rand",          "srand",         "random_device", "steady_clock",
    "system_clock",  "high_resolution_clock",          "gettimeofday",
    "clock_gettime", "localtime",     "gmtime",        "mktime",
    "timespec_get",
};

struct FileScope {
  bool inSrc = false;      // under src/
  bool inSimcore = false;  // under src/simcore/
  bool inNetsim = false;   // under src/netsim/ (runs on shard workers)
  bool inObs = false;      // under src/obs/ (the hub may emit directly)
  bool inIolib = false;    // under src/iolib/ (strategies mint op traces)
  bool isSchedulerCpp = false;
  bool isHeader = false;
};

void lintFile(const fs::path& path) {
  const std::string name = path.generic_string();
  FileScope scope;
  scope.inSrc = name.find("src/") != std::string::npos;
  scope.inSimcore = name.find("src/simcore/") != std::string::npos;
  scope.inNetsim = name.find("src/netsim/") != std::string::npos;
  scope.inObs = name.find("src/obs/") != std::string::npos;
  scope.inIolib = name.find("src/iolib/") != std::string::npos;
  scope.isSchedulerCpp = name.find("simcore/scheduler.cpp") != std::string::npos;
  scope.isHeader = path.extension() == ".hpp" || path.extension() == ".h";

  std::ifstream in(path);
  if (!in) {
    report(name, 0, "io", "cannot open file");
    return;
  }
  std::string rawLine;
  bool inBlockComment = false;
  bool sawPragmaOnce = false;
  std::size_t lineNo = 0;
  std::set<std::string> pendingAllows;  // from a comment-only line above
  while (std::getline(in, rawLine)) {
    ++lineNo;
    std::set<std::string> allowed = parseAllows(name, lineNo, rawLine);
    const std::string code = stripCode(rawLine, inBlockComment);
    const bool hasCode =
        code.find_first_not_of(" \t") != std::string::npos;
    if (hasCode) {
      allowed.insert(pendingAllows.begin(), pendingAllows.end());
      pendingAllows.clear();
    } else {
      // An allow on a comment-only line covers the next line with code.
      pendingAllows.insert(allowed.begin(), allowed.end());
    }
    const auto idents = identifiers(code);
    auto allowedRule = [&allowed](const char* rule) {
      return allowed.count(rule) != 0;
    };

    if (code.find("#pragma") != std::string::npos &&
        code.find("once") != std::string::npos)
      sawPragmaOnce = true;

    // include-hygiene: relative escapes and libstdc++ internals.
    if (code.find("#include") != std::string::npos) {
      if (rawLine.find("\"../") != std::string::npos &&
          !allowedRule("include-hygiene"))
        report(name, lineNo, "include-hygiene",
               "no \"../\" relative includes; use a module-qualified path");
      if (rawLine.find("<bits/") != std::string::npos &&
          !allowedRule("include-hygiene"))
        report(name, lineNo, "include-hygiene",
               "never include libstdc++ <bits/...> internals");
      if (scope.inSrc && !allowedRule("assert") &&
          (rawLine.find("<cassert>") != std::string::npos ||
           rawLine.find("<assert.h>") != std::string::npos))
        report(name, lineNo, "assert",
               "src/ does not use assert(); include simcore/simcheck.hpp and "
               "use SIM_CHECK/SIM_DCHECK");
      continue;  // header names (<new>, <ctime>) are not code identifiers
    }

    for (const auto& [pos, ident] : idents) {
      // raw-new: heap expressions on simcore's per-event paths.
      if (scope.inSimcore && (ident == "new" || ident == "delete") &&
          !allowedRule("raw-new")) {
        const char prev = lastNonSpaceBefore(code, pos);
        const bool deletedFn = ident == "delete" && prev == '=';
        if (!deletedFn && !precededByOperator(code, pos))
          report(name, lineNo, "raw-new",
                 "raw `" + ident +
                     "` in simcore; allocations on the event path must go "
                     "through FrameArena / the event pool");
      }
      // priority-queue: only the scheduler's legacy reference may use it.
      if (ident == "priority_queue" && !scope.isSchedulerCpp &&
          !allowedRule("priority-queue"))
        report(name, lineNo, "priority-queue",
               "std::priority_queue is reserved for the legacy reference "
               "queue inside scheduler.cpp; use the Scheduler API");
      // assert: release-invisible checks guarding simulation state.
      if (scope.inSrc && ident == "assert" && !allowedRule("assert")) {
        std::size_t after = pos + ident.size();
        while (after < code.size() && code[after] == ' ') ++after;
        if (after < code.size() && code[after] == '(')
          report(name, lineNo, "assert",
                 "assert() vanishes under NDEBUG; simulation-state "
                 "invariants must use SIM_CHECK (simcore/simcheck.hpp)");
      }
      // ternary-co-await: conditional-expression operand lifetimes are
      // miscompiled by GCC's coroutine lowering (use-after-free under ASan).
      if (ident == "co_await" && !allowedRule("ternary-co-await")) {
        const char prev = lastNonSpaceBefore(code, pos);
        const bool scopeColon =
            prev == ':' && [&] {
              std::size_t p = pos;
              while (p > 0 && (code[p - 1] == ' ' || code[p - 1] == '\t')) --p;
              return p >= 2 && code[p - 2] == ':';
            }();
        if ((prev == '?' || prev == ':') && !scopeColon)
          report(name, lineNo, "ternary-co-await",
                 "co_await as a ?:/range-for operand: GCC destroys the "
                 "awaited temporary too early; use an if/else statement");
      }
      // obs-emit: trace events go through the hub's typed helpers; only
      // src/obs/ itself may fan events out to sinks.
      if (ident == "emit" && !scope.inObs && !allowedRule("obs-emit")) {
        const char prev = lastNonSpaceBefore(code, pos);
        std::size_t after = pos + ident.size();
        while (after < code.size() && code[after] == ' ') ++after;
        const bool memberCall =
            (prev == '.' || prev == '>') &&
            after < code.size() && code[after] == '(';
        if (memberCall)
          report(name, lineNo, "obs-emit",
                 "direct emit() bypasses the Observability hub; use "
                 "begin/end/complete/message/counterSample and register "
                 "sinks with Observability::addSink");
      }
      // telemetry-probe: sampled series come from the shared registry; a
      // resolution site must name `telemetry` on the same line so the probe
      // is provably registry-owned (and flips live with --telemetry).
      if (scope.inSrc && !scope.inObs && ident == "probe" &&
          !allowedRule("telemetry-probe")) {
        const char prev = lastNonSpaceBefore(code, pos);
        std::size_t after = pos + ident.size();
        while (after < code.size() && code[after] == ' ') ++after;
        const bool memberCall =
            (prev == '.' || prev == '>') &&
            after < code.size() && code[after] == '(';
        if (memberCall && code.find("telemetry") == std::string::npos)
          report(name, lineNo, "telemetry-probe",
                 "probe() must be resolved from the Telemetry registry on "
                 "this line (obs->telemetry().probe(...)); ad-hoc sampling "
                 "state bypasses --telemetry and the imbalance analytics");
      }
      // optrace-mint: causal-trace contexts are minted once at the
      // strategy layer and propagated by value; a mid-path re-mint severs
      // the request's lineage and double-counts it in the hop tables.
      if (scope.inSrc && !scope.inObs && !scope.inIolib &&
          ident == "mintOpTrace" && !allowedRule("optrace-mint"))
        report(name, lineNo, "optrace-mint",
               "mintOpTrace() is reserved for strategy-level code "
               "(src/iolib, src/obs); layers below must propagate the "
               "OpTraceContext they were given, never re-mint");
      // static-mutable: hidden static state in layers the sharded
      // scheduler runs on worker threads. A declaration is a finding when
      // nothing up to the initialiser/terminator looks like a function
      // (no parameter list) and the line carries no synchronisation or
      // immutability marker.
      if ((scope.inSimcore || scope.inNetsim) && ident == "static" &&
          !allowedRule("static-mutable")) {
        const std::string rest = code.substr(pos + ident.size());
        const std::size_t stop = rest.find_first_of(";={");
        const std::string decl =
            stop == std::string::npos ? rest : rest.substr(0, stop);
        const bool isFunction = decl.find('(') != std::string::npos;
        bool exempt = false;
        for (const auto& [p2, id2] : idents)
          if (id2 == "const" || id2 == "constexpr" || id2 == "consteval" ||
              id2 == "thread_local" || id2 == "atomic" || id2 == "mutex" ||
              id2 == "shared_mutex" || id2 == "once_flag")
            exempt = true;
        if (!isFunction && !exempt)
          report(name, lineNo, "static-mutable",
                 "static mutable state in a layer that runs on shard worker "
                 "threads; make it const/constexpr/thread_local/atomic, or "
                 "add `// srclint:allow(static-mutable): <what synchronises "
                 "it>`");
      }
      // wall-clock: host time / libc randomness in deterministic code.
      if (scope.inSrc && kWallClockIdents.count(ident) != 0 &&
          !allowedRule("wall-clock"))
        report(name, lineNo, "wall-clock",
               "`" + ident +
                   "` breaks reproducibility; use Scheduler time and the "
                   "seeded sim::Rng");
    }
  }
  if (scope.isHeader && !sawPragmaOnce)
    report(name, 1, "include-hygiene", "header is missing #pragma once");
}

bool lintableFile(const fs::path& p) {
  const auto ext = p.extension();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: srclint <dir-or-file>...\n");
    return 2;
  }
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           it != fs::recursive_directory_iterator(); ++it)
        if (it->is_regular_file() && lintableFile(it->path()))
          files.push_back(it->path());
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "srclint: no such file or directory: %s\n",
                   argv[i]);
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& f : files) lintFile(f);
  for (const auto& finding : gFindings)
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", finding.file.c_str(),
                 finding.line, finding.rule.c_str(), finding.message.c_str());
  if (!gFindings.empty()) {
    std::fprintf(stderr, "srclint: %zu finding(s) in %zu file(s) scanned\n",
                 gFindings.size(), files.size());
    return 1;
  }
  std::printf("srclint: clean (%zu files scanned)\n", files.size());
  return 0;
}
