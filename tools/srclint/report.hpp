// srclint reporting: text output, the checked-in baseline, SARIF 2.1.0,
// and the per-rule count table CI pastes into the job summary.
//
// Findings are keyed by a content fingerprint (rule | relative path |
// trimmed line text) rather than a line number, so a baseline entry
// survives unrelated edits above it but expires the moment the offending
// line changes — and an expired (stale) entry is itself a finding, which
// keeps the baseline honest.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "rules.hpp"

namespace srclint {

/// A finding prepared for reporting: path relativized against --root and
/// fingerprinted against the offending line's text.
struct Reported {
  Finding f;                // f.file is the --root-relative path
  std::string fingerprint;  // fnv1a64 hex of rule|file|trimmed line
  bool baselined = false;
};

std::uint64_t fnv1a64(const std::string& s);

/// Make `path` relative to `root` (both as given on the command line);
/// returns `path` unchanged when it is not under `root`.
std::string relPath(const std::string& path, const std::string& root);

std::vector<Reported> prepare(const std::vector<AnalyzedFile>& files,
                              const std::vector<Finding>& findings,
                              const std::string& root);

struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string fingerprint;
  std::string note;
  bool matched = false;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Load a baseline file. Returns false (with `error` set) on unreadable or
/// malformed input — a broken baseline must fail the build, not silently
/// suppress nothing.
bool loadBaseline(const std::string& path, Baseline& out, std::string& error);

/// Mark reported findings present in the baseline and append one
/// `baseline-stale` finding per entry that no longer matches anything.
void applyBaseline(std::vector<Reported>& findings, Baseline& baseline);

/// Write all current findings (sans any baseline-stale ones) as a fresh
/// baseline file.
bool writeBaselineFile(const std::string& path,
                       const std::vector<Reported>& findings);

/// `file:line: [rule] message` for every non-baselined finding.
void printText(std::ostream& os, const std::vector<Reported>& findings);

/// SARIF 2.1.0 document: every rule in the catalog under
/// tool.driver.rules, one result per non-baselined finding.
bool writeSarif(const std::string& path,
                const std::vector<Reported>& findings);

/// Markdown per-rule count table (all catalog rules, zero rows included).
void printCounts(std::ostream& os, const std::vector<Reported>& findings);

}  // namespace srclint
