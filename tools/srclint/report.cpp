#include "report.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace srclint {

namespace {

std::string trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// JSON string escaping for the writers (the reader is obs/json).
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string relPath(const std::string& path, const std::string& root) {
  if (root.empty()) return path;
  std::string prefix = root;
  if (prefix.back() != '/') prefix.push_back('/');
  if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0)
    return path.substr(prefix.size());
  return path;
}

std::vector<Reported> prepare(const std::vector<AnalyzedFile>& files,
                              const std::vector<Finding>& findings,
                              const std::string& root) {
  std::map<std::string, const AnalyzedFile*> byPath;
  for (const AnalyzedFile& f : files) byPath.emplace(f.lex.path, &f);
  std::vector<Reported> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) {
    Reported r;
    r.f = f;
    r.f.file = relPath(f.file, root);
    std::string lineText;
    const auto it = byPath.find(f.file);
    if (it != byPath.end() && f.line >= 1 &&
        f.line <= it->second->lex.rawLines.size())
      lineText = trimmed(it->second->lex.rawLines[f.line - 1]);
    r.fingerprint = hex64(fnv1a64(f.rule + "|" + r.f.file + "|" + lineText));
    out.push_back(std::move(r));
  }
  return out;
}

bool loadBaseline(const std::string& path, Baseline& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open baseline file " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string parseError;
  const auto doc = bgckpt::obs::json::parse(ss.str(), &parseError);
  if (!doc || !doc->isObject()) {
    error = "malformed baseline " + path + ": " +
            (parseError.empty() ? "not a JSON object" : parseError);
    return false;
  }
  if (doc->stringOr("version", "") != "srclint-baseline-1") {
    error = "baseline " + path + " has unknown version (want srclint-baseline-1)";
    return false;
  }
  const auto* entries = doc->find("entries");
  if (entries == nullptr || !entries->isArray()) {
    error = "baseline " + path + " is missing the entries array";
    return false;
  }
  for (const auto& e : *entries->array) {
    if (!e.isObject()) {
      error = "baseline " + path + " has a non-object entry";
      return false;
    }
    BaselineEntry be;
    be.rule = e.stringOr("rule", "");
    be.file = e.stringOr("file", "");
    be.fingerprint = e.stringOr("fingerprint", "");
    be.note = e.stringOr("note", "");
    if (be.rule.empty() || be.file.empty() || be.fingerprint.empty()) {
      error = "baseline " + path +
              " entry is missing rule/file/fingerprint fields";
      return false;
    }
    out.entries.push_back(std::move(be));
  }
  return true;
}

void applyBaseline(std::vector<Reported>& findings, Baseline& baseline) {
  for (Reported& r : findings) {
    for (BaselineEntry& e : baseline.entries) {
      if (e.rule == r.f.rule && e.file == r.f.file &&
          e.fingerprint == r.fingerprint) {
        r.baselined = true;
        e.matched = true;
      }
    }
  }
  for (const BaselineEntry& e : baseline.entries) {
    if (e.matched) continue;
    Reported r;
    r.f.file = e.file;
    r.f.line = 0;
    r.f.rule = "baseline-stale";
    r.f.message =
        "baseline entry for rule `" + e.rule + "` (fingerprint " +
        e.fingerprint +
        ") matches no current finding; the code it suppressed was fixed or "
        "changed — delete the entry (or regenerate with --write-baseline)";
    r.fingerprint = e.fingerprint;
    findings.push_back(std::move(r));
  }
}

bool writeBaselineFile(const std::string& path,
                       const std::vector<Reported>& findings) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "{\n  \"version\": \"srclint-baseline-1\",\n  \"entries\": [";
  bool first = true;
  for (const Reported& r : findings) {
    if (r.f.rule == "baseline-stale") continue;
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"rule\": \"" << jsonEscape(r.f.rule) << "\", \"file\": \""
        << jsonEscape(r.f.file) << "\", \"fingerprint\": \"" << r.fingerprint
        << "\", \"note\": \"accepted pre-existing finding at line "
        << r.f.line << "\"}";
  }
  out << (first ? "]\n}\n" : "\n  ]\n}\n");
  return static_cast<bool>(out);
}

void printText(std::ostream& os, const std::vector<Reported>& findings) {
  for (const Reported& r : findings) {
    if (r.baselined) continue;
    os << r.f.file << ":" << r.f.line << ": [" << r.f.rule << "] "
       << r.f.message << "\n";
  }
}

bool writeSarif(const std::string& path,
                const std::vector<Reported>& findings) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const auto& rules = ruleRegistry();
  std::map<std::string, std::size_t> ruleIndex;
  for (std::size_t i = 0; i < rules.size(); ++i)
    ruleIndex.emplace(rules[i].name, i);

  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n    {\n"
      << "      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": \"srclint\",\n"
      << "          \"version\": \"2.0.0\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/bgckpt/tools/srclint\",\n"
      << "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << "            {\"id\": \"" << rules[i].name
        << "\", \"shortDescription\": {\"text\": \""
        << jsonEscape(rules[i].summary)
        << "\"}, \"fullDescription\": {\"text\": \""
        << jsonEscape(rules[i].explain)
        << "\"}, \"properties\": {\"family\": \"" << rules[i].family << "\"}}"
        << (i + 1 < rules.size() ? ",\n" : "\n");
  }
  out << "          ]\n        }\n      },\n"
      << "      \"results\": [";
  bool first = true;
  for (const Reported& r : findings) {
    if (r.baselined) continue;
    out << (first ? "\n" : ",\n");
    first = false;
    const std::uint32_t line = r.f.line >= 1 ? r.f.line : 1;
    out << "        {\"ruleId\": \"" << jsonEscape(r.f.rule) << "\"";
    const auto it = ruleIndex.find(r.f.rule);
    if (it != ruleIndex.end()) out << ", \"ruleIndex\": " << it->second;
    out << ", \"level\": \"error\", \"message\": {\"text\": \""
        << jsonEscape(r.f.message) << "\"}, \"locations\": [{"
        << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << jsonEscape(r.f.file) << "\"}, \"region\": {\"startLine\": " << line
        << "}}}], \"partialFingerprints\": {\"srclintFingerprint/v1\": \""
        << r.fingerprint << "\"}}";
  }
  out << (first ? "]\n" : "\n      ]\n") << "    }\n  ]\n}\n";
  return static_cast<bool>(out);
}

void printCounts(std::ostream& os, const std::vector<Reported>& findings) {
  std::map<std::string, std::size_t> counts;
  std::size_t total = 0;
  for (const Reported& r : findings) {
    if (r.baselined) continue;
    ++counts[r.f.rule];
    ++total;
  }
  os << "| rule | family | findings |\n|---|---|---:|\n";
  for (const RuleInfo& r : ruleRegistry()) {
    const auto it = counts.find(r.name);
    os << "| `" << r.name << "` | " << r.family << " | "
       << (it == counts.end() ? 0 : it->second) << " |\n";
    if (it != counts.end()) counts.erase(it);
  }
  for (const auto& [rule, n] : counts)  // e.g. io errors
    os << "| `" << rule << "` | - | " << n << " |\n";
  os << "| **total** | | **" << total << "** |\n";
}

}  // namespace srclint
