// srclint driver: collect sources, lex + scope-model them, run the rules,
// subtract the baseline, and report (text always; SARIF / counts / baseline
// on request).
//
// Exit codes: 0 = clean, 1 = findings (including stale baseline entries),
// 2 = usage or I/O error. CI treats 1 as a failed gate.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "report.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

int usage() {
  std::cerr
      << "usage: srclint [options] <file-or-dir>...\n"
         "\n"
         "Project-invariant lint for the bgckpt tree: coroutine-lifetime,\n"
         "determinism, and shard-safety rules no generic linter knows.\n"
         "\n"
         "options:\n"
         "  --root <dir>            report paths relative to <dir>\n"
         "  --baseline <file>       suppress findings listed in <file>;\n"
         "                          stale entries are themselves findings\n"
         "  --write-baseline <file> write current findings as a baseline\n"
         "  --sarif <file>          also write a SARIF 2.1.0 report\n"
         "  --counts                print a per-rule markdown count table\n"
         "                          to stdout (for CI job summaries)\n"
         "  --list-rules            print the rule catalog and exit\n"
         "  --explain <rule>        print one rule's full rationale and exit\n";
  return 2;
}

bool lintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::vector<std::string> collect(const std::vector<std::string>& roots) {
  std::vector<std::string> files;
  for (const std::string& r : roots) {
    std::error_code ec;
    if (fs::is_directory(r, ec)) {
      for (fs::recursive_directory_iterator it(r, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        // Test-vector trees carry deliberate findings; recursion skips
        // them, but a fixture file passed explicitly is always linted.
        if (it->is_directory(ec) && it->path().filename() == "fixtures") {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file(ec) && lintableExtension(it->path()))
          files.push_back(it->path().generic_string());
      }
    } else {
      files.push_back(fs::path(r).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

int listRules() {
  for (const auto& r : srclint::ruleRegistry())
    std::cout << r.name << "  [" << r.family << "]\n    " << r.summary << "\n";
  return 0;
}

int explainRule(const std::string& name) {
  const auto* r = srclint::findRule(name);
  if (r == nullptr) {
    std::cerr << "srclint: unknown rule `" << name
              << "` (see --list-rules)\n";
    return 2;
  }
  std::cout << r->name << "  [" << r->family << "]\n" << r->summary << "\n\n"
            << r->explain << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string rootDir;
  std::string baselinePath;
  std::string writeBaselinePath;
  std::string sarifPath;
  bool counts = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "srclint: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage();
    if (arg == "--list-rules") return listRules();
    if (arg == "--explain") {
      const char* v = value("--explain");
      return v == nullptr ? 2 : explainRule(v);
    }
    if (arg == "--root") {
      const char* v = value("--root");
      if (v == nullptr) return 2;
      rootDir = v;
      continue;
    }
    if (arg == "--baseline") {
      const char* v = value("--baseline");
      if (v == nullptr) return 2;
      baselinePath = v;
      continue;
    }
    if (arg == "--write-baseline") {
      const char* v = value("--write-baseline");
      if (v == nullptr) return 2;
      writeBaselinePath = v;
      continue;
    }
    if (arg == "--sarif") {
      const char* v = value("--sarif");
      if (v == nullptr) return 2;
      sarifPath = v;
      continue;
    }
    if (arg == "--counts") {
      counts = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "srclint: unknown option " << arg << "\n";
      return usage();
    }
    roots.push_back(arg);
  }
  if (roots.empty()) return usage();

  const std::vector<std::string> paths = collect(roots);
  std::vector<srclint::AnalyzedFile> files;
  files.reserve(paths.size());
  for (const std::string& p : paths)
    files.push_back(srclint::analyze(srclint::lex(p)));

  const std::vector<srclint::Finding> raw = srclint::runRules(files);
  std::vector<srclint::Reported> findings =
      srclint::prepare(files, raw, rootDir);

  if (!baselinePath.empty()) {
    srclint::Baseline baseline;
    std::string error;
    if (!srclint::loadBaseline(baselinePath, baseline, error)) {
      std::cerr << "srclint: " << error << "\n";
      return 2;
    }
    srclint::applyBaseline(findings, baseline);
  }

  if (!writeBaselinePath.empty() &&
      !srclint::writeBaselineFile(writeBaselinePath, findings)) {
    std::cerr << "srclint: cannot write baseline " << writeBaselinePath
              << "\n";
    return 2;
  }
  if (!sarifPath.empty() && !srclint::writeSarif(sarifPath, findings)) {
    std::cerr << "srclint: cannot write SARIF report " << sarifPath << "\n";
    return 2;
  }
  if (counts) srclint::printCounts(std::cout, findings);

  srclint::printText(std::cerr, findings);
  std::size_t live = 0;
  for (const auto& r : findings)
    if (!r.baselined) ++live;
  if (live != 0) {
    std::cerr << "srclint: " << live << " finding" << (live == 1 ? "" : "s")
              << " across " << paths.size() << " files\n";
    return 1;
  }
  std::cerr << "srclint: clean (" << paths.size() << " files)\n";
  return 0;
}
