#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace srclint {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"raw-new", "hygiene",
     "raw new/delete inside src/simcore (allocations belong to the arena)",
     "Coroutine frames and event nodes must go through the FrameArena / the\n"
     "event pool; a stray heap allocation on the per-event path is a silent\n"
     "perf regression. `operator new` plumbing (the arena's slab allocator\n"
     "and the promise-type hooks) is exempt: it *is* the designated\n"
     "allocator."},
    {"priority-queue", "hygiene",
     "std::priority_queue outside src/simcore/scheduler.cpp",
     "The tiered ladder queue is the production dispatch structure; the\n"
     "legacy binary heap exists only as the A/B reference inside\n"
     "scheduler.cpp. Any other priority_queue is either a duplicate event\n"
     "queue or an accidental O(log n) hot path."},
    {"assert", "hygiene",
     "release-invisible assert() (or <cassert>) in src/",
     "assert() vanishes under NDEBUG, so a Release bench would publish\n"
     "corrupted figures instead of aborting. Simulation-state invariants\n"
     "must use SIM_CHECK/SIM_DCHECK (simcore/simcheck.hpp), which stay\n"
     "armed in Release and dump the flight recorder on failure."},
    {"wall-clock", "determinism",
     "host clocks / libc randomness in src/ or bench/ (allowlist: "
     "src/obs/runtimeprof.*, bench/common.*)",
     "Simulated time comes from the Scheduler and randomness from the\n"
     "seeded SplitMix/xoshiro RNG streams; rand(), random_device, or any\n"
     "host clock makes runs irreproducible and breaks the byte-identity\n"
     "gates every figure bench is held to. Two files are allowlisted by\n"
     "path (a scoped rule option, not srclint:allow markers): the runtime\n"
     "execution profiler (src/obs/runtimeprof.*), which measures real\n"
     "worker wall time by definition and never feeds it back into\n"
     "simulated time, and bench/common.*, which owns the one sanctioned\n"
     "harness stopwatch (bench::WallTimer) that every harness times with."},
    {"ternary-co-await", "coroutine-lifetime",
     "co_await in a temporary-lifetime operand position (?: branch, "
     "range-for range)",
     "GCC's coroutine lowering destroys the awaited temporary before the\n"
     "conditional's result is copied out — ASan sees a use-after-free (the\n"
     "exact bug PR 3's sanitizer matrix caught in the fssim test). The\n"
     "scope-aware version flags co_await anywhere inside a ?: branch at\n"
     "the operator's own expression level, and in the range expression of\n"
     "a range-for (the range temporary must outlive the whole loop, but\n"
     "the suspension point lets it die first). Spell it as if/else, or\n"
     "bind the awaited value to a local first."},
    {"obs-emit", "hygiene",
     "direct sink emit() outside src/obs",
     "Trace events flow through the Observability helpers (begin / end /\n"
     "complete / message / counterSample) and sinks register via\n"
     "Observability::addSink; hand-rolled emit calls bypass the layer-mask\n"
     "fast path and the sink registry the flight recorder and attribution\n"
     "rely on."},
    {"telemetry-probe", "hygiene",
     "probe() not resolved from the Telemetry registry on the same line",
     "Sampled series come from the shared registry\n"
     "(obs->telemetry().probe(\"name\", ...)); ad-hoc sampling state in sim\n"
     "layers would not flip live with --telemetry, never export, and dodge\n"
     "the imbalance analytics and the attribution cross-check."},
    {"optrace-mint", "hygiene",
     "mintOpTrace() below the strategy layer",
     "A causal-trace context is minted once at the strategy layer\n"
     "(src/iolib, src/obs) and then propagated *by value*; a layer that\n"
     "re-mints mid-path severs the request's lineage and double-counts it\n"
     "in every percentile table. Backends that legitimately originate\n"
     "requests (e.g. hostio) carry an explicit allow with justification."},
    {"static-mutable", "shard-safety",
     "unsynchronized static/namespace-scope mutable state in src/simcore "
     "or src/netsim",
     "The sharded scheduler runs these layers on worker threads; hidden\n"
     "static state is a data race and a determinism leak (shards must not\n"
     "observe each other outside the mailbox protocol). The scope-aware\n"
     "version catches what the old declaration regex could not: namespace-\n"
     "scope variables *without* the static keyword, and function-local\n"
     "statics. Declarations marked const/constexpr/thread_local, or of\n"
     "atomic/mutex/once_flag type, are exempt; anything else needs an\n"
     "explicit allow naming the synchronisation that protects it."},
    {"include-hygiene", "hygiene",
     "missing #pragma once, \"../\" includes, <bits/...> internals",
     "Headers must start with #pragma once; includes use module-qualified\n"
     "paths from the src root (never \"../\"); libstdc++ <bits/...>\n"
     "internals are not a stable interface."},
    {"coro-lambda-capture", "coroutine-lifetime",
     "capturing lambda that is itself a coroutine",
     "A lambda's captures live in the closure object, NOT in the coroutine\n"
     "frame (C++ Core Guidelines CP.51). The returned Task resumes after\n"
     "the closure temporary is gone, so every capture — by reference or by\n"
     "value — is a dangling access after the first suspension unless the\n"
     "closure object provably outlives the run. Pass state as explicit\n"
     "parameters instead (the coroutine frame copies parameters). The one\n"
     "sanctioned exception is a lambda passed directly to\n"
     "Runtime::spawnAll, which documents that it pins the callable for the\n"
     "lifetime of the run."},
    {"coro-spawn-dangling", "coroutine-lifetime",
     "spawned coroutine binds a reference parameter to a temporary",
     "Scheduler::spawn detaches the task: it outlives the spawning\n"
     "full-expression, so a reference (or pointer) parameter bound to a\n"
     "temporary argument dangles at the first suspension — the same UAF\n"
     "class the PR 3 sanitizer matrix caught dynamically. Pass temporaries\n"
     "by value, or name the object in a scope that outlives the run. The\n"
     "rule resolves the callee's parameter list within the same file; an\n"
     "unresolvable callee is not flagged."},
    {"det-unordered-iteration", "determinism",
     "unordered container iteration feeding an ordered sink or float "
     "accumulation",
     "Iteration order of std::unordered_map/set is an implementation\n"
     "detail: it varies across libstdc++ versions, hash seeds, and even\n"
     "insertion histories. A loop over one is fine when the body is\n"
     "order-independent (integer sums, key collection followed by a sort)\n"
     "but silently breaks the byte-identity guarantees when the body\n"
     "reaches an export/stdout/telemetry sink or accumulates into floats\n"
     "(FP addition does not commute). Collect and sort keys first, or use\n"
     "an ordered container."},
    {"shard-send-lookahead", "shard-safety",
     "cross-shard send() whose delay is not provably >= the lookahead",
     "The conservative window protocol is only correct when every\n"
     "cross-shard event lands at least `lookahead` in the future; a\n"
     "shorter delay would deliver into an already-executing window —\n"
     "silent causality corruption that no test with benign timing will\n"
     "catch. ShardGroup::send SIM_CHECKs this at runtime; the static rule\n"
     "requires the delay *expression* to be visibly derived from the\n"
     "lookahead/hop-latency constant (and free of top-level subtraction,\n"
     "which could push it below). Anything else needs an allow naming why\n"
     "the bound holds."},
    {"shard-global-read", "shard-safety",
     "simcore/netsim function reads mutable namespace-scope state",
     "The static-mutable rule stops *declaring* hidden state inside the\n"
     "sharded layers; this rule closes the other half: code in\n"
     "src/simcore or src/netsim that *reads* a mutable namespace-scope\n"
     "variable — declared in the same file or, cross-file, any src/\n"
     "global following the gName convention — is a data race and a\n"
     "determinism leak once shards run on worker threads. Route the state\n"
     "through the Scheduler, the ShardGroup mailboxes, or an explicitly\n"
     "synchronized registry."},
    {"manifest-stamp", "provenance",
     "\".manifest.json\" spelled outside the shared stamping helper "
     "(allowlist: src/obs/runstore.*)",
     "Every obs artifact's `<file>.manifest.json` sidecar is written by\n"
     "obs::writeArtifactManifest (src/obs/runstore.cpp), which stamps the\n"
     "schema version, git revision, and config hash that make artifacts\n"
     "addressable from the campaign ledger. A layer that assembles the\n"
     "sidecar path itself will drift from the manifest schema the readers\n"
     "gate on (trace_report rejects unknown manifest versions with exit\n"
     "2) and will miss the provenance fields, so the literal suffix in\n"
     "src/ or bench/ is a finding outside the helper's own files."},
    {"allow-needs-justification", "meta",
     "srclint:allow without a justification",
     "Every suppression documents why it is safe:\n"
     "`// srclint:allow(<rule>): <why>`. A bare allow is itself a\n"
     "finding."},
    {"allow-unknown-rule", "meta",
     "srclint:allow naming a rule that does not exist",
     "A typo'd rule name used to silently suppress nothing while looking\n"
     "load-bearing. The allow marker must name a rule from --list-rules;\n"
     "anything else is a finding so the typo gets fixed instead of\n"
     "shipped."},
    {"baseline-stale", "meta",
     "baseline entry no longer matches any finding",
     "The committed baseline (tools/srclint/baseline.json) exists so\n"
     "pre-existing accepted findings don't block CI while new regressions\n"
     "fail it. When the code a baseline entry suppressed is fixed or\n"
     "removed, the entry must be deleted (regenerate with\n"
     "--write-baseline) — stale entries would otherwise re-mask the next\n"
     "regression at the same site."},
};

// ---------------------------------------------------------------------------
// Small token helpers
// ---------------------------------------------------------------------------

bool isPunct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}

bool isIdent(const Token& t, const char* s) {
  return t.kind == Tok::kIdent && t.text == s;
}

bool containsCI(const std::string& hay, const char* needle) {
  std::string low;
  low.reserve(hay.size());
  for (char c : hay)
    low.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return low.find(needle) != std::string::npos;
}

const std::set<std::string> kWallClockIdents = {
    "rand",          "srand",         "random_device", "steady_clock",
    "system_clock",  "high_resolution_clock",          "gettimeofday",
    "clock_gettime", "localtime",     "gmtime",        "mktime",
    "timespec_get",
};

/// The wall-clock rule's scoped carve-out: paths whose *purpose* is
/// real-time measurement. The runtime profiler times worker threads with
/// the host clock by definition, and bench/common owns the one sanctioned
/// harness stopwatch (WallTimer). Matched as path substrings so the
/// fixture trees under tests/tools/fixtures exercise the same logic.
constexpr const char* kWallClockAllowedPaths[] = {
    "src/obs/runtimeprof.",
    "bench/common.",
};

/// The manifest-stamp rule's carve-out: the shared stamping helper itself
/// (obs::writeArtifactManifest and its header docs) is the one sanctioned
/// place in src/ or bench/ that spells the sidecar suffix.
constexpr const char* kManifestStampAllowedPaths[] = {
    "src/obs/runstore.",
};

/// Per-file rule context: effective allow map and a findings sink that
/// consults it.
struct FileCtx {
  const AnalyzedFile& f;
  std::vector<Finding>& out;
  /// line -> rules allowed on that line (justified + known only).
  std::map<std::uint32_t, std::set<std::string>> allowed;

  bool isAllowed(std::uint32_t line, const char* rule) const {
    const auto it = allowed.find(line);
    return it != allowed.end() && it->second.count(rule) != 0;
  }

  void report(std::uint32_t line, const char* rule, std::string message) const {
    if (isAllowed(line, rule)) return;
    out.push_back(Finding{f.lex.path, line, rule, std::move(message)});
  }
};

/// Resolve comment allows to code lines: an allow on a line with tokens
/// covers that line; an allow on a comment-only line covers the next line
/// that has tokens. Unjustified or unknown-rule allows are findings and do
/// not suppress.
void resolveAllows(FileCtx& ctx) {
  const LexedFile& lex = ctx.f.lex;
  std::set<std::uint32_t> codeLines;
  for (const Token& t : lex.tokens) codeLines.insert(t.line);
  for (const PreprocLine& p : lex.preproc) codeLines.insert(p.line);
  for (const auto& [line, allows] : lex.allows) {
    for (const Allow& a : allows) {
      if (findRule(a.rule) == nullptr) {
        ctx.out.push_back(Finding{
            lex.path, line, "allow-unknown-rule",
            "srclint:allow(" + a.rule +
                ") names no srclint rule; see --list-rules (a typo'd name "
                "would silently suppress nothing)"});
        continue;
      }
      if (!a.justified) {
        ctx.out.push_back(Finding{
            lex.path, line, "allow-needs-justification",
            "srclint:allow(" + a.rule +
                ") must carry a justification: `// srclint:allow(" + a.rule +
                "): why this is safe`"});
        continue;
      }
      std::uint32_t target = line;
      if (codeLines.count(line) == 0) {
        const auto next = codeLines.upper_bound(line);
        if (next == codeLines.end()) continue;
        target = *next;
      }
      ctx.allowed[target].insert(a.rule);
    }
  }
}

// ---------------------------------------------------------------------------
// Preprocessor-line rules (include hygiene, assert includes)
// ---------------------------------------------------------------------------

void preprocRules(FileCtx& ctx) {
  const AnalyzedFile& f = ctx.f;
  bool sawPragmaOnce = false;
  for (const PreprocLine& p : f.lex.preproc) {
    if (p.text.find("#pragma") != std::string::npos &&
        p.text.find("once") != std::string::npos)
      sawPragmaOnce = true;
    if (p.text.find("include") == std::string::npos) continue;
    if (p.text.find("\"../") != std::string::npos)
      ctx.report(p.line, "include-hygiene",
                 "no \"../\" relative includes; use a module-qualified path");
    if (p.text.find("<bits/") != std::string::npos)
      ctx.report(p.line, "include-hygiene",
                 "never include libstdc++ <bits/...> internals");
    if (f.inSrc && (p.text.find("<cassert>") != std::string::npos ||
                    p.text.find("<assert.h>") != std::string::npos))
      ctx.report(p.line, "assert",
                 "src/ does not use assert(); include simcore/simcheck.hpp "
                 "and use SIM_CHECK/SIM_DCHECK");
  }
  if (f.isHeader && !sawPragmaOnce)
    ctx.report(1, "include-hygiene", "header is missing #pragma once");
}

// ---------------------------------------------------------------------------
// Token rules (the ported line-regex checks, now literal-proof)
// ---------------------------------------------------------------------------

void tokenRules(FileCtx& ctx) {
  const AnalyzedFile& f = ctx.f;
  const auto& toks = f.lex.tokens;
  // Same-line identifier index for the telemetry-probe check.
  std::map<std::uint32_t, std::set<std::string>> lineIdents;
  for (const Token& t : toks)
    if (t.kind == Tok::kIdent) lineIdents[t.line].insert(t.text);

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kString && (f.inSrc || f.inBench) &&
        !f.manifestStampAllowed &&
        t.text.find("manifest.json") != std::string::npos)
      ctx.report(t.line, "manifest-stamp",
                 "\".manifest.json\" sidecars are written only by "
                 "obs::writeArtifactManifest (src/obs/runstore.hpp), which "
                 "stamps the schema version, git revision, and config hash");
    if (t.kind != Tok::kIdent) continue;
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
    const Token* next = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
    const bool memberCall =
        prev != nullptr && next != nullptr &&
        (isPunct(*prev, ".") || isPunct(*prev, "->")) && isPunct(*next, "(");

    if (f.inSimcore && (t.text == "new" || t.text == "delete")) {
      const bool operatorPlumbing = prev != nullptr && isIdent(*prev, "operator");
      const bool deletedFn =
          t.text == "delete" && prev != nullptr && isPunct(*prev, "=");
      if (!operatorPlumbing && !deletedFn)
        ctx.report(t.line, "raw-new",
                   "raw `" + t.text +
                       "` in simcore; allocations on the event path must go "
                       "through FrameArena / the event pool");
    }
    if (t.text == "priority_queue" && !f.isSchedulerCpp)
      ctx.report(t.line, "priority-queue",
                 "std::priority_queue is reserved for the legacy reference "
                 "queue inside scheduler.cpp; use the Scheduler API");
    if (f.inSrc && t.text == "assert" && next != nullptr && isPunct(*next, "("))
      ctx.report(t.line, "assert",
                 "assert() vanishes under NDEBUG; simulation-state "
                 "invariants must use SIM_CHECK (simcore/simcheck.hpp)");
    if ((f.inSrc || f.inBench) && !f.wallClockAllowed &&
        kWallClockIdents.count(t.text) != 0)
      ctx.report(t.line, "wall-clock",
                 "`" + t.text +
                     "` breaks reproducibility; use Scheduler time and the "
                     "seeded sim::Rng (harness timing goes through "
                     "bench::WallTimer)");
    if (t.text == "emit" && !f.inObs && memberCall)
      ctx.report(t.line, "obs-emit",
                 "direct emit() bypasses the Observability hub; use "
                 "begin/end/complete/message/counterSample and register "
                 "sinks with Observability::addSink");
    if (f.inSrc && !f.inObs && t.text == "probe" && memberCall) {
      const auto& idents = lineIdents[t.line];
      if (idents.count("telemetry") == 0)
        ctx.report(t.line, "telemetry-probe",
                   "probe() must be resolved from the Telemetry registry on "
                   "this line (obs->telemetry().probe(...)); ad-hoc sampling "
                   "state bypasses --telemetry and the imbalance analytics");
    }
    if (f.inSrc && !f.inObs && !f.inIolib && t.text == "mintOpTrace")
      ctx.report(t.line, "optrace-mint",
                 "mintOpTrace() is reserved for strategy-level code "
                 "(src/iolib, src/obs); layers below must propagate the "
                 "OpTraceContext they were given, never re-mint");
  }
}

// ---------------------------------------------------------------------------
// coroutine-lifetime: ternary-co-await (generalized temporary positions)
// ---------------------------------------------------------------------------

void ternaryCoAwaitRule(FileCtx& ctx) {
  const auto& toks = ctx.f.lex.tokens;
  const auto& match = ctx.f.scopes.match;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!isIdent(toks[i], "co_await")) continue;
    // Walk backward to the statement start, skipping balanced groups.
    // A '?' reached at the expression's own level means this co_await is a
    // ?: branch operand; an unmatched '(' belonging to a `for (… : …)`
    // head means it is the range expression of a range-for.
    bool flagged = false;
    std::size_t p = i;
    while (p > 0 && !flagged) {
      --p;
      const Token& t = toks[p];
      if (t.kind != Tok::kPunct) continue;
      const std::string& s = t.text;
      if (s == ")" || s == "]" || s == "}") {
        if (match[p] == kNone || match[p] > p) break;  // unbalanced
        p = match[p];
        continue;
      }
      if (s == "?") {
        ctx.report(toks[i].line, "ternary-co-await",
                   "co_await as a ?: branch operand: GCC's coroutine "
                   "lowering destroys the awaited temporary before the "
                   "conditional's result is copied out; use an if/else "
                   "statement");
        flagged = true;
        break;
      }
      if (s == ";" || s == "{" || s == "}") break;
      if (s == "(" || s == "[") {
        // Unmatched opener: we are inside this group. A range-for head is
        // hazardous when the co_await sits after its ':' (the range
        // expression). A call argument list ends the ?: scan — argument
        // temporaries get full-expression lifetime.
        if (s == "(" && p > 0 && isIdent(toks[p - 1], "for")) {
          bool colonBeforeAwait = false;
          std::size_t depth = 0;
          for (std::size_t q = p + 1; q < i; ++q) {
            const Token& u = toks[q];
            if (u.kind != Tok::kPunct) continue;
            if (u.text == "(" || u.text == "[") {
              if (match[q] != kNone && match[q] < i) {
                q = match[q];
                continue;
              }
              ++depth;
            } else if (u.text == ":" && depth == 0) {
              colonBeforeAwait = true;
            }
          }
          if (colonBeforeAwait) {
            ctx.report(toks[i].line, "ternary-co-await",
                       "co_await in a range-for range expression: the "
                       "awaited temporary dies before the loop body resumes; "
                       "bind it to a local first");
            flagged = true;
          }
          break;
        }
        // Grouping paren (operator before it): stay in the ?: scan.
        const bool grouping =
            s == "(" &&
            (p == 0 || (toks[p - 1].kind == Tok::kPunct &&
                        toks[p - 1].text != ")" && toks[p - 1].text != "]"));
        if (!grouping) break;
        continue;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// coroutine-lifetime: coro-lambda-capture
// ---------------------------------------------------------------------------

void coroLambdaCaptureRule(FileCtx& ctx) {
  const auto& toks = ctx.f.lex.tokens;
  for (const Scope& sc : ctx.f.scopes.scopes) {
    if (sc.kind != ScopeKind::kLambda || !sc.isCoroutine) continue;
    if (sc.captureClose <= sc.captureOpen + 1) continue;  // [] — stateless
    // The hazard is the *temporary* closure: an immediately-invoked
    // coroutine lambda whose closure object dies at the end of the full
    // expression while the lazy Task resumes later. A named closure
    // (`auto body = [&]...; sched.spawn(body());` with run() in the same
    // scope) keeps the captures alive and is the tree's safe idiom.
    if (sc.close + 1 >= toks.size() || !isPunct(toks[sc.close + 1], "("))
      continue;  // closure is stored or passed, not invoked in place
    // `co_await [..](){...}()` is safe: the enclosing coroutine's frame
    // keeps the full-expression temporaries alive across the suspension.
    if (sc.captureOpen > 0 && isIdent(toks[sc.captureOpen - 1], "co_await"))
      continue;
    std::string caps;
    for (std::size_t k = sc.captureOpen + 1; k < sc.captureClose; ++k) {
      if (!caps.empty()) caps += " ";
      caps += toks[k].text;
    }
    ctx.report(toks[sc.captureOpen].line, "coro-lambda-capture",
               "immediately-invoked coroutine lambda captures [" + caps +
                   "]: captures live in the closure object, not the "
                   "coroutine frame, and the temporary closure dies before "
                   "the lazy Task first resumes (CP.51); name the closure "
                   "in a scope that outlives the run, or pass state as "
                   "parameters");
  }
}

// ---------------------------------------------------------------------------
// coroutine-lifetime: coro-spawn-dangling
// ---------------------------------------------------------------------------

/// Split a bracketed token range (open..close exclusive) at top-level commas.
std::vector<std::pair<std::size_t, std::size_t>> splitArgs(
    const std::vector<Token>& toks, const std::vector<std::size_t>& match,
    std::size_t open, std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> parts;
  std::size_t start = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kPunct &&
        (t.text == "(" || t.text == "[" || t.text == "{")) {
      if (match[i] != kNone && match[i] < close) i = match[i];
      continue;
    }
    if (isPunct(t, ",")) {
      parts.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (start < close) parts.emplace_back(start, close);
  return parts;
}

bool rangeHasPunct(const std::vector<Token>& toks, std::size_t b,
                   std::size_t e, const char* s) {
  for (std::size_t i = b; i < e; ++i)
    if (isPunct(toks[i], s)) return true;
  return false;
}

/// Does this argument expression produce a temporary? Identifier chains
/// (a, a.b, a->b, A::b) are lvalues; std::move/forward of one keeps the
/// underlying object's lifetime. Calls, constructor expressions, braced
/// inits, and literals are temporaries.
bool argIsTemporary(const std::vector<Token>& toks,
                    const std::vector<std::size_t>& match, std::size_t b,
                    std::size_t e) {
  if (b >= e) return false;
  // std::move(x) / std::forward<T>(x): recurse into the inner expression.
  for (std::size_t i = b; i + 1 < e; ++i) {
    if ((isIdent(toks[i], "move") || isIdent(toks[i], "forward")) &&
        isPunct(toks[i + 1], "(") && match[i + 1] != kNone &&
        match[i + 1] == e - 1)
      return argIsTemporary(toks, match, i + 2, e - 1);
  }
  bool sawCallOrBrace = false;
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kNumber || t.kind == Tok::kString) return true;
    if (t.kind == Tok::kPunct && (t.text == "(" || t.text == "{"))
      sawCallOrBrace = true;
  }
  return sawCallOrBrace;
}

void coroSpawnDanglingRule(FileCtx& ctx) {
  const auto& toks = ctx.f.lex.tokens;
  const auto& match = ctx.f.scopes.match;
  const auto& scopes = ctx.f.scopes.scopes;

  // Index same-file callables by name for parameter resolution. Test files
  // reuse lambda names (`auto body = ...` per TEST), so a call site must
  // resolve to the *nearest preceding* definition, mirroring shadowing.
  std::map<std::string, std::vector<const Scope*>> byName;
  for (const Scope& sc : scopes) {
    if (sc.kind != ScopeKind::kFunction && sc.kind != ScopeKind::kLambda)
      continue;
    if (sc.name.empty() || sc.paramsOpen == 0 ||
        sc.paramsClose <= sc.paramsOpen)
      continue;
    // A parameter range containing ';' means the classifier misread —
    // never resolve through it.
    bool sane = true;
    for (std::size_t q = sc.paramsOpen + 1; q < sc.paramsClose; ++q)
      if (isPunct(toks[q], ";")) sane = false;
    if (sane) byName[sc.name].push_back(&sc);
  }
  if (byName.empty()) return;

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!isIdent(toks[i], "spawn") || !isPunct(toks[i + 1], "(")) continue;
    const std::size_t spawnClose = match[i + 1];
    if (spawnClose == kNone) continue;
    // The spawned expression must be `callee(args)` with callee an
    // (optionally qualified) identifier.
    std::size_t j = i + 2;
    std::string callee;
    while (j < spawnClose && (toks[j].kind == Tok::kIdent ||
                              isPunct(toks[j], "::") || isPunct(toks[j], "."))) {
      if (toks[j].kind == Tok::kIdent) callee = toks[j].text;
      ++j;
    }
    if (callee.empty() || j >= spawnClose || !isPunct(toks[j], "(")) continue;
    const std::size_t argsClose = match[j];
    if (argsClose == kNone || argsClose + 1 != spawnClose) continue;
    const auto it = byName.find(callee);
    if (it == byName.end()) continue;
    const Scope* resolved = nullptr;
    for (const Scope* cand : it->second)
      if (cand->open < i) resolved = cand;
    if (resolved == nullptr) continue;
    const Scope& fn = *resolved;
    const auto params =
        splitArgs(toks, match, fn.paramsOpen, fn.paramsClose);
    const auto args = splitArgs(toks, match, j, argsClose);
    const std::size_t n = std::min(params.size(), args.size());
    for (std::size_t k = 0; k < n; ++k) {
      const bool refParam =
          rangeHasPunct(toks, params[k].first, params[k].second, "&") ||
          rangeHasPunct(toks, params[k].first, params[k].second, "&&") ||
          rangeHasPunct(toks, params[k].first, params[k].second, "*");
      if (!refParam) continue;
      if (!argIsTemporary(toks, match, args[k].first, args[k].second))
        continue;
      // Parameter name: last identifier in the parameter declaration.
      std::string pname;
      for (std::size_t q = params[k].first; q < params[k].second; ++q)
        if (toks[q].kind == Tok::kIdent) pname = toks[q].text;
      ctx.report(toks[i].line, "coro-spawn-dangling",
                 "spawned coroutine `" + callee +
                     "` binds reference parameter `" + pname +
                     "` to a temporary; the detached task outlives the "
                     "full-expression and the reference dangles at the "
                     "first suspension");
    }
  }
}

// ---------------------------------------------------------------------------
// determinism: det-unordered-iteration
// ---------------------------------------------------------------------------

const std::set<std::string> kOrderedSinkIdents = {
    "printf", "fprintf", "sprintf",  "snprintf",      "puts",
    "fputs",  "fwrite",  "appendf",  "appendNum",     "csvField",
    "emit",   "counterSample",
};
const std::set<std::string> kStreamIdents = {"cout", "cerr", "clog", "os",
                                             "out"};

/// Collect names declared (as variables, members, or parameters) with an
/// unordered container type in this file.
std::set<std::string> unorderedNames(const AnalyzedFile& f) {
  std::set<std::string> names;
  const auto& toks = f.lex.tokens;
  const auto& match = f.scopes.match;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    if (t.text != "unordered_map" && t.text != "unordered_set" &&
        t.text != "unordered_multimap" && t.text != "unordered_multiset")
      continue;
    // Skip the template argument list (angle brackets are not
    // bracket-matched; count depth, jumping over parenthesized groups).
    std::size_t j = i + 1;
    if (j >= toks.size() || !isPunct(toks[j], "<")) continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      const Token& u = toks[j];
      if (u.kind != Tok::kPunct) continue;
      if (u.text == "(" && match[j] != kNone) {
        j = match[j];
        continue;
      }
      if (u.text == "<") ++depth;
      if (u.text == ">") --depth;
      if (u.text == ">>") depth -= 2;
      if (depth <= 0) break;
    }
    // After the closing '>': optional ref/ptr, then the declared name.
    ++j;
    while (j < toks.size() &&
           (isPunct(toks[j], "&") || isPunct(toks[j], "*") ||
            isPunct(toks[j], "&&") || isIdent(toks[j], "const")))
      ++j;
    if (j >= toks.size() || toks[j].kind != Tok::kIdent) continue;
    const std::size_t nameAt = j;
    ++j;
    if (j < toks.size() &&
        (isPunct(toks[j], ";") || isPunct(toks[j], "=") ||
         isPunct(toks[j], "{") || isPunct(toks[j], ",") ||
         isPunct(toks[j], ")")))
      names.insert(toks[nameAt].text);
  }
  return names;
}

/// Float-typed value names in this file (for `x += ...` accumulation).
std::set<std::string> floatNames(const AnalyzedFile& f) {
  std::set<std::string> names;
  const auto& toks = f.lex.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!isIdent(toks[i], "double") && !isIdent(toks[i], "float")) continue;
    std::size_t j = i + 1;
    while (j < toks.size() &&
           (isPunct(toks[j], "&") || isPunct(toks[j], "*")))
      ++j;
    if (j < toks.size() && toks[j].kind == Tok::kIdent)
      names.insert(toks[j].text);
  }
  return names;
}

/// Does the body range contain an order-sensitive sink?
/// Returns a short description, or empty when order-independent.
std::string bodySink(const AnalyzedFile& f, std::size_t b, std::size_t e,
                     const std::set<std::string>& floats) {
  const auto& toks = f.lex.tokens;
  bool sawStream = false;
  bool sawShift = false;
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kIdent) {
      if (kOrderedSinkIdents.count(t.text) != 0)
        return "calls `" + t.text + "`";
      if (kStreamIdents.count(t.text) != 0) sawStream = true;
      if (t.text == "add" && i > 0 &&
          (isPunct(toks[i - 1], ".") || isPunct(toks[i - 1], "->")) &&
          i + 1 < e && isPunct(toks[i + 1], "("))
        return "feeds a sample accumulator via .add()";
      continue;
    }
    if (t.kind == Tok::kPunct) {
      if (t.text == "<<") sawShift = true;
      if (t.text == "+=" && i > 0 && toks[i - 1].kind == Tok::kIdent &&
          floats.count(toks[i - 1].text) != 0)
        return "accumulates into float `" + toks[i - 1].text + "`";
    }
  }
  if (sawStream && sawShift) return "writes to a stream";
  return "";
}

void unorderedIterationRule(FileCtx& ctx,
                            const std::set<std::string>& crossFileMembers) {
  const AnalyzedFile& f = ctx.f;
  if (!f.inSrc) return;  // sim + export layers; tests may iterate freely
  // Same-file declarations, plus member names (trailing-underscore
  // convention) declared in any analyzed file — a .cpp iterating `open_`
  // declared in its header must still resolve.
  auto names = unorderedNames(f);
  names.insert(crossFileMembers.begin(), crossFileMembers.end());
  if (names.empty()) return;
  const auto floats = floatNames(f);
  const auto& toks = f.lex.tokens;
  const auto& match = f.scopes.match;

  const auto checkLoop = [&](std::size_t forTok, std::size_t bodyBegin,
                             std::size_t bodyEnd, const std::string& cont) {
    const std::string sink = bodySink(f, bodyBegin, bodyEnd, floats);
    if (sink.empty()) return;
    ctx.report(toks[forTok].line, "det-unordered-iteration",
               "iteration over unordered container `" + cont + "` " + sink +
                   ": hash-table order is nondeterministic and breaks "
                   "byte-identical artifacts; sort keys first or use an "
                   "ordered container");
  };

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    // Range-for over an unordered container.
    if (isIdent(toks[i], "for") && isPunct(toks[i + 1], "(")) {
      const std::size_t headClose = match[i + 1];
      if (headClose == kNone) continue;
      // Find the range-for ':' at top level inside the head.
      std::size_t colon = kNone;
      for (std::size_t q = i + 2; q < headClose; ++q) {
        const Token& u = toks[q];
        if (u.kind == Tok::kPunct &&
            (u.text == "(" || u.text == "[" || u.text == "{")) {
          if (match[q] != kNone && match[q] < headClose) q = match[q];
          continue;
        }
        if (isPunct(u, ";")) {  // classic for — not a range-for
          colon = kNone;
          break;
        }
        if (isPunct(u, ":")) {
          colon = q;
          break;
        }
      }
      if (colon == kNone) continue;
      std::string cont;
      for (std::size_t q = colon + 1; q < headClose; ++q)
        if (toks[q].kind == Tok::kIdent && names.count(toks[q].text) != 0)
          cont = toks[q].text;
      if (cont.empty()) continue;
      std::size_t bodyBegin = headClose + 1;
      std::size_t bodyEnd = bodyBegin;
      if (bodyBegin < toks.size() && isPunct(toks[bodyBegin], "{")) {
        bodyEnd = match[bodyBegin] == kNone ? toks.size() : match[bodyBegin];
      } else {
        while (bodyEnd < toks.size() && !isPunct(toks[bodyEnd], ";")) ++bodyEnd;
      }
      checkLoop(i, bodyBegin, bodyEnd, cont);
    }
    // `while (!c.empty())` driving `c.begin()` completion loops.
    if (isIdent(toks[i], "while") && isPunct(toks[i + 1], "(")) {
      const std::size_t condClose = match[i + 1];
      if (condClose == kNone) continue;
      std::string cont;
      bool usesBegin = false;
      for (std::size_t q = i + 2; q < condClose; ++q)
        if (toks[q].kind == Tok::kIdent && names.count(toks[q].text) != 0)
          cont = toks[q].text;
      if (cont.empty()) continue;
      std::size_t bodyBegin = condClose + 1;
      std::size_t bodyEnd = bodyBegin;
      if (bodyBegin < toks.size() && isPunct(toks[bodyBegin], "{")) {
        bodyEnd = match[bodyBegin] == kNone ? toks.size() : match[bodyBegin];
      } else {
        while (bodyEnd < toks.size() && !isPunct(toks[bodyEnd], ";")) ++bodyEnd;
      }
      for (std::size_t q = bodyBegin; q < bodyEnd; ++q)
        if (isIdent(toks[q], "begin") && q > 0 &&
            toks[q - 1].kind == Tok::kPunct &&
            (toks[q - 1].text == "." || toks[q - 1].text == "->"))
          usesBegin = true;
      if (!usesBegin) continue;
      ctx.report(toks[i].line, "det-unordered-iteration",
                 "draining unordered container `" + cont +
                     "` via .begin() consumes entries in hash-table order; "
                     "drain in sorted key order so artifacts stay "
                     "byte-identical");
    }
  }
}

// ---------------------------------------------------------------------------
// shard-safety: shard-send-lookahead
// ---------------------------------------------------------------------------

void shardSendLookaheadRule(FileCtx& ctx) {
  const AnalyzedFile& f = ctx.f;
  if (f.isShardCpp) return;  // the implementation layer owns the SIM_CHECK
  const auto& toks = f.lex.tokens;
  const auto& match = f.scopes.match;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!isIdent(toks[i], "send")) continue;
    if (!isPunct(toks[i - 1], ".") && !isPunct(toks[i - 1], "->")) continue;
    if (!isPunct(toks[i + 1], "(")) continue;
    const std::size_t close = match[i + 1];
    if (close == kNone) continue;
    const auto args = splitArgs(toks, match, i + 1, close);
    // ShardGroup::send is the only 4-or-6 argument send in the tree
    // (mpisim send/isend take 3, Channel::send takes 1).
    if (args.size() < 4) continue;
    const auto [db, de] = args[2];
    bool provable = false;
    bool subtraction = false;
    for (std::size_t q = db; q < de; ++q) {
      const Token& t = toks[q];
      if (t.kind == Tok::kIdent &&
          (containsCI(t.text, "lookahead") || containsCI(t.text, "hop") ||
           containsCI(t.text, "latency")))
        provable = true;
      if (t.kind == Tok::kPunct && t.text == "-") subtraction = true;
      if (t.kind == Tok::kPunct && t.text == "(" && match[q] != kNone &&
          match[q] < de)
        q = match[q];  // subtraction inside a call is that call's business
    }
    if (provable && !subtraction) continue;
    std::string expr;
    for (std::size_t q = db; q < de; ++q) {
      if (!expr.empty()) expr += " ";
      expr += toks[q].text;
    }
    ctx.report(toks[i].line, "shard-send-lookahead",
               "cross-shard send() delay `" + expr +
                   "` is not provably >= the conservative lookahead (no "
                   "lookahead/hop-latency constant in the expression" +
                   (subtraction ? ", and it subtracts" : "") +
                   "); a short delay corrupts the window protocol "
                   "silently");
  }
}

// ---------------------------------------------------------------------------
// shard-safety + static-mutable: namespace-scope state
// ---------------------------------------------------------------------------

void staticMutableRule(FileCtx& ctx) {
  const AnalyzedFile& f = ctx.f;
  if (!f.inSimcore && !f.inNetsim) return;
  const auto& toks = f.lex.tokens;
  // Namespace-scope declarations (with or without `static` — the scope
  // tracker sees what the old keyword regex could not).
  for (const NamespaceVar& v : f.scopes.namespaceVars) {
    if (v.isExempt) continue;
    ctx.report(v.line, "static-mutable",
               "mutable namespace-scope state `" + v.name +
                   "` in a layer that runs on shard worker threads; make it "
                   "const/constexpr/thread_local/atomic, or add `// "
                   "srclint:allow(static-mutable): <what synchronises it>`");
  }
  // Function-local statics.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!isIdent(toks[i], "static")) continue;
    if (ctx.f.scopes.enclosingCallable(i) == -1) continue;
    bool exempt = false;
    std::string name;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      const Token& t = toks[j];
      if (t.kind == Tok::kPunct &&
          (t.text == ";" || t.text == "=" || t.text == "{" || t.text == "("))
        break;
      if (t.kind == Tok::kIdent) {
        if (t.text == "const" || t.text == "constexpr" ||
            t.text == "consteval" || t.text == "thread_local" ||
            t.text == "atomic" || t.text == "atomic_flag" ||
            t.text == "mutex" || t.text == "shared_mutex" ||
            t.text == "once_flag")
          exempt = true;
        name = t.text;
      }
    }
    // `static_cast` and friends lex as their own identifiers, so a plain
    // `static` here really is a storage-class specifier.
    if (exempt || name.empty()) continue;
    ctx.report(toks[i].line, "static-mutable",
               "function-local static `" + name +
                   "` in a layer that runs on shard worker threads; make it "
                   "const/thread_local/atomic or guard it with a named "
                   "mutex (// srclint:allow(static-mutable): ...)");
  }
}

void shardGlobalReadRule(const std::vector<AnalyzedFile>& files,
                         std::vector<FileCtx>& ctxs) {
  // Pass 1: mutable namespace-scope variables across src/.
  struct GlobalDecl {
    const AnalyzedFile* file;
    std::uint32_t line;
    std::size_t declTok;
  };
  std::map<std::string, GlobalDecl> globals;
  for (const AnalyzedFile& f : files) {
    if (!f.inSrc) continue;
    for (const NamespaceVar& v : f.scopes.namespaceVars)
      if (!v.isExempt)
        globals.emplace(v.name, GlobalDecl{&f, v.line, v.declTok});
  }
  if (globals.empty()) return;

  const auto gConvention = [](const std::string& n) {
    return n.size() >= 2 && n[0] == 'g' &&
           std::isupper(static_cast<unsigned char>(n[1])) != 0;
  };

  // Pass 2: reads from simcore/netsim function bodies.
  for (FileCtx& ctx : ctxs) {
    const AnalyzedFile& f = ctx.f;
    if (!f.inSimcore && !f.inNetsim) continue;
    const auto& toks = f.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::kIdent) continue;
      const auto it = globals.find(t.text);
      if (it == globals.end()) continue;
      const GlobalDecl& g = it->second;
      const bool sameFile = g.file == &f;
      // Cross-file matches only bind through the project's gName
      // convention; arbitrary names would collide with locals.
      if (!sameFile && !gConvention(t.text)) continue;
      if (sameFile && g.declTok == i) continue;  // the declaration itself
      if (f.scopes.enclosingCallable(i) == -1) continue;
      // Member/scope access spells a different entity.
      if (i > 0 && toks[i - 1].kind == Tok::kPunct &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
           toks[i - 1].text == "::"))
        continue;
      ctx.report(t.line, "shard-global-read",
                 "`" + t.text +
                     "` is mutable namespace-scope state (declared at " +
                     g.file->lex.path + ":" + std::to_string(g.line) +
                     "); shard worker threads race on it — route it through "
                     "the Scheduler, mailboxes, or a synchronized registry");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& ruleRegistry() { return kRules; }

const RuleInfo* findRule(const std::string& name) {
  for (const RuleInfo& r : kRules)
    if (name == r.name) return &r;
  return nullptr;
}

AnalyzedFile analyze(LexedFile lexed) {
  AnalyzedFile f;
  f.lex = std::move(lexed);
  const std::string& name = f.lex.path;
  f.inSrc = name.find("src/") != std::string::npos;
  f.inBench = name.find("bench/") != std::string::npos;
  for (const char* allowed : kWallClockAllowedPaths)
    if (name.find(allowed) != std::string::npos) f.wallClockAllowed = true;
  for (const char* allowed : kManifestStampAllowedPaths)
    if (name.find(allowed) != std::string::npos) f.manifestStampAllowed = true;
  f.inSimcore = name.find("src/simcore/") != std::string::npos;
  f.inNetsim = name.find("src/netsim/") != std::string::npos;
  f.inObs = name.find("src/obs/") != std::string::npos;
  f.inIolib = name.find("src/iolib/") != std::string::npos;
  f.isSchedulerCpp = name.find("simcore/scheduler.cpp") != std::string::npos;
  f.isShardCpp = name.find("simcore/shard.cpp") != std::string::npos;
  const auto dot = name.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : name.substr(dot);
  f.isHeader = ext == ".hpp" || ext == ".h";
  f.scopes = buildScopes(f.lex);
  return f;
}

std::vector<Finding> runRules(const std::vector<AnalyzedFile>& files) {
  std::vector<Finding> findings;
  std::vector<FileCtx> ctxs;
  ctxs.reserve(files.size());
  for (const AnalyzedFile& f : files) ctxs.push_back(FileCtx{f, findings, {}});
  // Unordered-container member names (m_/trailing-underscore convention)
  // visible across the file set, so a .cpp sees its header's members.
  std::set<std::string> unorderedMembers;
  for (const AnalyzedFile& f : files) {
    if (!f.inSrc) continue;
    for (const std::string& n : unorderedNames(f))
      if (!n.empty() && n.back() == '_') unorderedMembers.insert(n);
  }
  for (FileCtx& ctx : ctxs) {
    if (ctx.f.lex.ioError) {
      findings.push_back(Finding{ctx.f.lex.path, 0, "io", "cannot open file"});
      continue;
    }
    resolveAllows(ctx);
    preprocRules(ctx);
    tokenRules(ctx);
    ternaryCoAwaitRule(ctx);
    coroLambdaCaptureRule(ctx);
    coroSpawnDanglingRule(ctx);
    unorderedIterationRule(ctx, unorderedMembers);
    shardSendLookaheadRule(ctx);
    staticMutableRule(ctx);
  }
  shardGlobalReadRule(files, ctxs);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace srclint
