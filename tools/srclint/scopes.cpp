#include "scopes.hpp"

#include <algorithm>
#include <cstddef>

namespace srclint {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool isPunct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}

bool isIdent(const Token& t, const char* s) {
  return t.kind == Tok::kIdent && t.text == s;
}

bool identIn(const Token& t, std::initializer_list<const char*> names) {
  if (t.kind != Tok::kIdent) return false;
  for (const char* n : names)
    if (t.text == n) return true;
  return false;
}

/// Is the '[' at `at` a lambda introducer? True in expression context:
/// after an operator, an opening bracket, a statement boundary, or a
/// keyword that begins an expression. False after a value (subscript) or
/// another '[' (attribute).
bool lambdaIntro(const std::vector<Token>& toks, std::size_t at) {
  if (at == 0) return true;
  const Token& p = toks[at - 1];
  if (p.kind == Tok::kIdent)
    return identIn(p, {"return", "co_return", "co_await", "co_yield"});
  if (p.kind != Tok::kPunct) return false;
  static const char* kExprContext[] = {
      "(", ",", "{", ";", "}", "=", "?", ":",  "&&", "||", "!",  "<",
      ">", "+", "-", "*", "/", "%", "|", "&",  "^",  "<<", ">>", "==",
      "!=", "<=", ">=", "+=", "-=", "*=", "/=",
  };
  for (const char* s : kExprContext)
    if (p.text == s) return true;
  return false;
}

struct Classifier {
  const std::vector<Token>& toks;
  const std::vector<std::size_t>& match;

  struct Result {
    ScopeKind kind = ScopeKind::kBlock;
    std::string name;
    std::size_t paramsOpen = 0;
    std::size_t paramsClose = 0;
    std::size_t captureOpen = 0;
    std::size_t captureClose = 0;
  };

  /// Classify the brace group opened by the '(' at `o` followed (possibly
  /// with trailing specifiers) by the '{' being classified. Decides
  /// function vs lambda vs control-flow block vs constructor-with-init-list.
  Result fromParen(std::size_t o, int depth) {
    Result r;
    if (o == 0 || depth > 8) return r;
    const Token& before = toks[o - 1];
    if (isPunct(before, "]")) {
      const std::size_t cap = match[o - 1];
      if (cap != kNone && lambdaIntro(toks, cap)) {
        r.kind = ScopeKind::kLambda;
        r.captureOpen = cap;
        r.captureClose = o - 1;
        r.paramsOpen = o;
        r.paramsClose = match[o];
        r.name = lambdaName(cap);
      }
      return r;
    }
    if (isPunct(before, ")")) {
      // `operator()(params) {`: the earlier () group names the call
      // operator.
      const std::size_t ob = match[o - 1];
      if (ob != kNone && ob > 0 && isIdent(toks[ob - 1], "operator")) {
        r.kind = ScopeKind::kFunction;
        r.name = "operator()";
        r.paramsOpen = o;
        r.paramsClose = match[o];
      }
      return r;
    }
    if (before.kind != Tok::kIdent) return r;
    if (identIn(before, {"if", "for", "while", "switch", "catch", "return",
                         "co_return", "co_await", "co_yield", "new"}))
      return r;  // control flow or expression: a plain block
    if (isIdent(before, "noexcept")) {
      // `) noexcept(...) {` — keep looking left for the real param list.
      std::size_t q = o - 2;
      while (q != kNone && q > 0 &&
             !isPunct(toks[q], ")") && !isPunct(toks[q], ";") &&
             !isPunct(toks[q], "{") && !isPunct(toks[q], "}"))
        --q;
      if (q != kNone && isPunct(toks[q], ")") && match[q] != kNone)
        return fromParen(match[q], depth + 1);
      return r;
    }
    // `name(...)` directly before the brace. Either a function definition
    // or the last element of a constructor's member-init list: scan left
    // for `: ... )` to find the true parameter list.
    std::size_t q = o - 2;  // before the name
    bool sawColon = false;
    while (q != kNone && static_cast<std::ptrdiff_t>(q) >= 0) {
      const Token& t = toks[q];
      if (isPunct(t, ":")) {
        sawColon = true;
        --q;
        continue;
      }
      if (isPunct(t, ")") && sawColon && match[q] != kNone)
        return fromParen(match[q], depth + 1);
      if (isPunct(t, "]") && match[q] != kNone) {
        q = match[q] == 0 ? kNone : match[q] - 1;
        continue;
      }
      if (isPunct(t, ")") && match[q] != kNone) {
        // `T f() g() {` is not C++; a ')' without an intervening ':' means
        // we misread — treat the nearest group as the list.
        break;
      }
      if (t.kind == Tok::kIdent || isPunct(t, "::") || isPunct(t, "<") ||
          isPunct(t, ">") || isPunct(t, ",") || isPunct(t, "&") ||
          isPunct(t, "*") || isPunct(t, "&&") || isPunct(t, "~") ||
          t.kind == Tok::kNumber || t.kind == Tok::kString) {
        --q;
        continue;
      }
      break;
    }
    r.kind = ScopeKind::kFunction;
    r.name = before.text;
    r.paramsOpen = o;
    r.paramsClose = match[o];
    return r;
  }

  /// For `auto name = [..]`, recover `name` from the tokens before the
  /// capture introducer so call sites can resolve the lambda.
  std::string lambdaName(std::size_t capOpen) const {
    if (capOpen < 2) return "";
    if (!isPunct(toks[capOpen - 1], "=")) return "";
    const Token& nm = toks[capOpen - 2];
    return nm.kind == Tok::kIdent ? nm.text : "";
  }

  Result classify(std::size_t brace) {
    Result r;
    std::size_t p = brace;
    std::string lastIdent;
    while (p > 0) {
      --p;
      const Token& t = toks[p];
      if (t.kind == Tok::kIdent) {
        if (identIn(t, {"do", "try", "else"})) return r;
        if (isIdent(t, "namespace")) {
          r.kind = ScopeKind::kNamespace;
          r.name = lastIdent;
          return r;
        }
        if (identIn(t, {"class", "struct", "union", "enum"})) {
          r.kind = ScopeKind::kType;
          r.name = lastIdent;
          return r;
        }
        if (identIn(t, {"if", "for", "while", "switch", "catch", "return",
                        "co_return", "co_await", "co_yield", "case",
                        "default", "sizeof", "new"}))
          return r;
        lastIdent = t.text;
        continue;
      }
      if (t.kind == Tok::kNumber || t.kind == Tok::kString ||
          t.kind == Tok::kChar)
        return r;
      // Punctuation.
      if (t.text == ")") {
        if (match[p] == kNone) return r;
        return fromParen(match[p], 0);
      }
      if (t.text == "]") {
        if (match[p] == kNone) return r;
        const std::size_t ob = match[p];
        if (lambdaIntro(toks, ob)) {
          // `[caps] { ... }` — a lambda with no parameter list.
          r.kind = ScopeKind::kLambda;
          r.captureOpen = ob;
          r.captureClose = p;
          r.name = lambdaName(ob);
          return r;
        }
        p = ob == 0 ? 0 : ob;  // attribute or subscript: skip the group
        continue;
      }
      if (t.text == ";" || t.text == "{" || t.text == "}") return r;
      if (t.text == "::" || t.text == "<" || t.text == ">" ||
          t.text == "&" || t.text == "*" || t.text == "&&" ||
          t.text == "->" || t.text == ":" || t.text == ",")
        continue;
      return r;  // '=', '(', arithmetic: braced initializer or expression
    }
    return r;
  }
};

bool scopePathIsNamespaceOnly(const ScopeModel& model, int scope) {
  for (int s = scope; s != -1; s = model.scopes[static_cast<std::size_t>(s)].parent)
    if (model.scopes[static_cast<std::size_t>(s)].kind != ScopeKind::kNamespace)
      return false;
  return true;
}

const std::set<std::string> kExemptQualifiers = {
    "const",  "constexpr", "consteval",   "constinit", "thread_local",
    "atomic", "atomic_flag", "mutex",     "shared_mutex", "recursive_mutex",
    "once_flag", "condition_variable", "barrier", "latch",
};

const std::set<std::string> kNonVarStatement = {
    "using",    "typedef",  "namespace", "class",  "struct",
    "union",    "enum",     "template",  "extern", "friend",
    "static_assert", "concept", "requires", "operator", "public",
    "private",  "protected", "goto",     "asm",
};

/// Extract namespace-scope variable declarations from the statements that
/// live directly in namespace (or file) scope.
void extractNamespaceVars(const LexedFile& file, ScopeModel& model) {
  const auto& toks = file.tokens;
  std::vector<std::size_t> stmt;  // token indices of the current statement
  const auto flush = [&](std::size_t endTok) {
    if (stmt.empty()) return;
    bool skip = false;
    bool exempt = false;
    bool isStatic = false;
    bool sawParen = false;
    bool sawAssign = false;
    std::size_t assignAt = kNone;
    for (std::size_t k = 0; k < stmt.size(); ++k) {
      const Token& t = toks[stmt[k]];
      if (t.kind == Tok::kIdent) {
        if (kNonVarStatement.count(t.text) != 0) skip = true;
        if (kExemptQualifiers.count(t.text) != 0) exempt = true;
        if (t.text == "static") isStatic = true;
      } else if (t.kind == Tok::kPunct) {
        if (t.text == "(" && !sawAssign) sawParen = true;
        if (t.text == "=" && !sawAssign) {
          sawAssign = true;
          assignAt = k;
        }
      }
    }
    const std::size_t nameSearchEnd = sawAssign ? assignAt : stmt.size();
    if (skip || (sawParen && !sawAssign)) {
      stmt.clear();
      return;  // not a variable: directive, type, or function declaration
    }
    // Name: the last identifier before `=` / `;` / `[` / a braced init.
    std::size_t nameTok = kNone;
    for (std::size_t k = 0; k < nameSearchEnd; ++k) {
      const Token& t = toks[stmt[k]];
      if (t.kind == Tok::kIdent && kExemptQualifiers.count(t.text) == 0 &&
          t.text != "static" && t.text != "inline" && t.text != "std")
        nameTok = stmt[k];
      if (t.kind == Tok::kPunct && t.text == "[") break;
    }
    (void)endTok;
    if (nameTok != kNone) {
      NamespaceVar v;
      v.name = toks[nameTok].text;
      v.line = toks[nameTok].line;
      v.isStatic = isStatic;
      v.isExempt = exempt;
      v.declTok = nameTok;
      model.namespaceVars.push_back(std::move(v));
    }
    stmt.clear();
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const int sc = model.enclosing[i];
    if (!scopePathIsNamespaceOnly(model, sc)) continue;
    const Token& t = toks[i];
    if (t.kind == Tok::kPunct && (t.text == "{" || t.text == "}")) {
      // Scope punctuation at namespace level: `namespace x {`, `}` — both
      // end any pending statement fragment (e.g. a braced initializer's
      // `std::mutex m` prefix flushes when its init block closes).
      if (t.text == "{" && model.match[i] != kNone) {
        // A braced initializer at namespace scope (`T x{...};`) opens a
        // kBlock scope; keep the prefix pending until the `;` after it.
        const auto braceScope = std::find_if(
            model.scopes.begin(), model.scopes.end(),
            [&](const Scope& s) { return s.open == i; });
        if (braceScope != model.scopes.end() &&
            braceScope->kind == ScopeKind::kBlock)
          continue;
      }
      stmt.clear();
      continue;
    }
    if (t.kind == Tok::kPunct && t.text == ";") {
      flush(i);
      continue;
    }
    stmt.push_back(i);
  }
}

}  // namespace

int ScopeModel::enclosingOf(std::size_t t, ScopeKind kind) const {
  for (int s = enclosing[t]; s != -1;
       s = scopes[static_cast<std::size_t>(s)].parent)
    if (scopes[static_cast<std::size_t>(s)].kind == kind) return s;
  return -1;
}

int ScopeModel::enclosingCallable(std::size_t t) const {
  for (int s = enclosing[t]; s != -1;
       s = scopes[static_cast<std::size_t>(s)].parent) {
    const ScopeKind k = scopes[static_cast<std::size_t>(s)].kind;
    if (k == ScopeKind::kFunction || k == ScopeKind::kLambda) return s;
  }
  return -1;
}

ScopeModel buildScopes(const LexedFile& file) {
  const auto& toks = file.tokens;
  ScopeModel model;
  model.match.assign(toks.size(), kNone);
  model.enclosing.assign(toks.size(), -1);

  // Pass 1: bracket matching for () [] {}.
  {
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::kPunct) continue;
      const std::string& s = toks[i].text;
      if (s == "(" || s == "[" || s == "{") {
        stack.push_back(i);
      } else if (s == ")" || s == "]" || s == "}") {
        const char open = s == ")" ? '(' : s == "]" ? '[' : '{';
        // Pop until the matching opener kind (tolerates unbalanced input).
        while (!stack.empty() && toks[stack.back()].text[0] != open)
          stack.pop_back();
        if (!stack.empty()) {
          model.match[stack.back()] = i;
          model.match[i] = stack.back();
          stack.pop_back();
        }
      }
    }
  }

  // Pass 2: scope construction with classification at each '{'.
  {
    Classifier cls{toks, model.match};
    std::vector<int> stack;  // scope indices
    for (std::size_t i = 0; i < toks.size(); ++i) {
      model.enclosing[i] = stack.empty() ? -1 : stack.back();
      if (toks[i].kind != Tok::kPunct) continue;
      if (toks[i].text == "{") {
        const auto r = cls.classify(i);
        Scope sc;
        sc.kind = r.kind;
        sc.open = i;
        sc.close = model.match[i] == kNone ? i : model.match[i];
        sc.parent = stack.empty() ? -1 : stack.back();
        sc.name = r.name;
        sc.paramsOpen = r.paramsOpen;
        sc.paramsClose = r.paramsClose == kNone ? 0 : r.paramsClose;
        sc.captureOpen = r.captureOpen;
        sc.captureClose = r.captureClose;
        model.scopes.push_back(std::move(sc));
        stack.push_back(static_cast<int>(model.scopes.size() - 1));
        model.enclosing[i] = stack.back();
      } else if (toks[i].text == "}") {
        if (!stack.empty()) {
          model.enclosing[i] = stack.back();
          stack.pop_back();
        }
      }
    }
  }

  // Pass 3: coroutine marking — a co_* keyword marks its innermost
  // enclosing callable (so a nested plain lambda inside a coroutine does
  // not inherit the property, and vice versa).
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    if (t.text != "co_await" && t.text != "co_return" && t.text != "co_yield")
      continue;
    const int callable = model.enclosingCallable(i);
    if (callable != -1)
      model.scopes[static_cast<std::size_t>(callable)].isCoroutine = true;
  }

  extractNamespaceVars(file, model);
  return model;
}

}  // namespace srclint
