// srclint scope model: balanced-brace scope tracking plus function,
// lambda, and namespace-scope-declaration extraction over the token stream.
//
// This is what separates the scope-aware rules from the old line-regex
// tool: a rule can ask "is this co_await inside a coroutine lambda's own
// body (not a nested lambda)?", "which parameters of the function being
// spawned are references?", or "is this declaration at namespace scope?" —
// questions with no single-line answer.
//
// The classifier is heuristic (srclint is not a compiler front end) but it
// is conservative and deterministic: every '{' is matched to its '}', and
// every brace pair is classified as one of namespace / type / function /
// lambda / block-or-initializer by looking backward at what introduced it.
// Misclassification degrades to a missed or baseline-able finding, never a
// crash; the fixture suite pins the shapes the codebase actually uses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace srclint {

enum class ScopeKind : std::uint8_t {
  kNamespace,
  kType,      // class / struct / union / enum
  kFunction,  // free or member function definition (incl. ctor/dtor)
  kLambda,
  kBlock,     // control-flow block, braced initializer, try, etc.
};

/// One brace-delimited scope. Token indices refer into LexedFile::tokens;
/// `open`/`close` are the '{' and '}' positions (close == open when the
/// file ends unbalanced — the tracker clamps rather than throws).
struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  std::size_t open = 0;
  std::size_t close = 0;
  int parent = -1;  // index into ScopeModel::scopes, -1 = file scope
  /// Function / lambda details (valid when kind is kFunction / kLambda).
  std::string name;          // empty for unnamed lambdas; for lambdas bound
                             // with `auto f = [...]`, the variable name
  std::size_t paramsOpen = 0;   // '(' of the parameter list (0 = none)
  std::size_t paramsClose = 0;  // matching ')'
  std::size_t captureOpen = 0;  // lambda '[' (0 = not a lambda)
  std::size_t captureClose = 0;
  bool isCoroutine = false;  // body contains co_await/co_yield/co_return
                             // at this scope's own nesting (nested lambdas
                             // excluded)
};

/// A variable declared at namespace (or file) scope.
struct NamespaceVar {
  std::string name;
  std::uint32_t line = 0;
  bool isStatic = false;       // carries the `static` keyword
  bool isExempt = false;       // const/constexpr/atomic/mutex/... on the
                               // declaration: immutable or self-synchronized
  std::size_t declTok = 0;     // token index of the name
};

struct ScopeModel {
  std::vector<Scope> scopes;          // in order of '{' appearance
  std::vector<NamespaceVar> namespaceVars;
  /// match[i] = token index of the partner bracket for tokens[i] when
  /// tokens[i] is one of ()[]{}; SIZE_MAX otherwise or when unbalanced.
  std::vector<std::size_t> match;
  /// Innermost scope index containing each token (-1 = file scope).
  std::vector<int> enclosing;

  /// Innermost enclosing scope of `kind` at token `t`, or -1.
  int enclosingOf(std::size_t t, ScopeKind kind) const;
  /// Innermost function-or-lambda scope at token `t`, or -1.
  int enclosingCallable(std::size_t t) const;
};

ScopeModel buildScopes(const LexedFile& file);

}  // namespace srclint
