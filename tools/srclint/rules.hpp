// srclint rule passes.
//
// Every rule encodes one of *this* project's invariants — things no generic
// linter knows to look for. The original token rules ride on the new lexer
// (so string literals and comments can never fool them again); the
// scope-aware families — coroutine lifetime, determinism, shard safety —
// need the ScopeModel and, for shard-global-read, the whole file set.
//
// Run `srclint --list-rules` for the catalog and `--explain <name>` for the
// full rationale of any rule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "scopes.hpp"

namespace srclint {

struct Finding {
  std::string file;  // as lexed (relativization is the report layer's job)
  std::uint32_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* name;
  const char* family;   // coroutine-lifetime / determinism / shard-safety /
                        // hygiene / meta
  const char* summary;  // one line, for --list-rules and SARIF
  const char* explain;  // full rationale, for --explain
};

const std::vector<RuleInfo>& ruleRegistry();
const RuleInfo* findRule(const std::string& name);

/// A lexed + scope-modeled file with its path-derived rule scopes.
struct AnalyzedFile {
  LexedFile lex;
  ScopeModel scopes;
  bool inSrc = false;
  bool inBench = false;
  /// Path is on the wall-clock rule's built-in allowlist (the two sanctioned
  /// real-time sites: src/obs/runtimeprof.* and bench/common.*). A scoped
  /// rule option instead of scattering srclint:allow markers through files
  /// whose whole purpose is wall-clock measurement.
  bool wallClockAllowed = false;
  /// Path is the manifest-stamp rule's sanctioned writer
  /// (src/obs/runstore.*): the one place allowed to spell the
  /// ".manifest.json" sidecar suffix in src/ or bench/.
  bool manifestStampAllowed = false;
  bool inSimcore = false;
  bool inNetsim = false;
  bool inObs = false;
  bool inIolib = false;
  bool isSchedulerCpp = false;
  bool isShardCpp = false;
  bool isHeader = false;
};

AnalyzedFile analyze(LexedFile lexed);

/// Run every rule over the file set. Suppressions (`srclint:allow`) are
/// applied here — a justified allow naming a known rule on the finding's
/// line (or on a comment-only line directly above) removes the finding;
/// unjustified or unknown-rule allows are findings themselves. Output is
/// sorted by (file, line, rule).
std::vector<Finding> runRules(const std::vector<AnalyzedFile>& files);

}  // namespace srclint
