// srclint lexer: a real (if deliberately small) C++ tokenizer.
//
// The line-regex srclint could not see past a single physical line, so every
// rule had to be expressible as "this token appears here". The scope-aware
// rules (coroutine lifetime, determinism, shard safety) need statements,
// balanced braces, and function extents, which in turn need honest handling
// of the three things that break naive scanners: comments (line and block,
// spanning lines), string literals (including raw strings, whose delimiters
// may contain quotes and parens), and preprocessor logical lines (with
// backslash continuations).
//
// The lexer produces:
//   * a token stream (identifiers, numbers, punctuation — multi-character
//     operators like `::`, `->`, `<<` are single tokens so rules never have
//     to re-disambiguate a range-for `:` from a scope `::`),
//   * the preprocessor lines, separately (they are line-oriented, not
//     token-oriented, and rules over them are too),
//   * per-line suppression sets parsed from comments — the allow escape
//     hatch: the marker, a parenthesized rule name, then `: <why>` — and
//   * the raw line text, for messages and baseline fingerprints.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace srclint {

enum class Tok : std::uint8_t {
  kIdent,    // identifiers and keywords (rules match on text)
  kNumber,   // numeric literals, including 0x/0b and digit separators
  kString,   // string literal (text is the *contents*, quotes stripped)
  kChar,     // character literal
  kPunct,    // operator / punctuator, possibly multi-character
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  std::uint32_t line = 0;  // 1-based
  std::uint32_t col = 0;   // 0-based byte offset in the physical line
};

/// One preprocessor logical line (continuations folded, comments stripped).
struct PreprocLine {
  std::uint32_t line = 0;  // line of the introducing '#'
  std::string text;        // e.g. `#include "simcore/task.hpp"`
};

/// A suppression parsed from a comment: the rule name as written (validity
/// is the rule layer's business) and whether a justification followed.
struct Allow {
  std::string rule;
  bool justified = false;
};

struct LexedFile {
  std::string path;                    // as given to the lexer
  std::vector<std::string> rawLines;   // rawLines[i] is line i+1
  std::vector<Token> tokens;
  std::vector<PreprocLine> preproc;
  /// Comment-parsed suppressions keyed by the line the comment sits on.
  /// Association with code lines (same line, or comment-only line covering
  /// the next code line) is resolved by the rule engine, which knows which
  /// lines carry tokens.
  std::map<std::uint32_t, std::vector<Allow>> allows;
  bool ioError = false;
};

/// Lex a file from disk. Never throws; `ioError` reports open failures.
LexedFile lex(const std::string& path);

/// Lex from a string (unit tests and fixtures).
LexedFile lexString(const std::string& path, const std::string& contents);

bool isIdentStart(char c);
bool isIdentChar(char c);

}  // namespace srclint
