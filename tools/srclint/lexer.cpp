#include "lexer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace srclint {

namespace {

/// Multi-character punctuators, longest-match-first. Only the ones rules
/// care to see as single tokens need listing; unknown sequences fall back
/// to single characters.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++",
    "--",
};

bool startsWith(const std::string& s, std::size_t at, const char* prefix) {
  for (std::size_t i = 0; prefix[i] != '\0'; ++i)
    if (at + i >= s.size() || s[at + i] != prefix[i]) return false;
  return true;
}

/// Scan allow markers (the word srclint, a colon, `allow`, a parenthesized
/// rule name, then an optional `: why`) out of one comment's text.
void parseAllowsFrom(const std::string& comment, std::uint32_t line,
                     LexedFile& out) {
  const std::string marker = "srclint:allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(marker, pos)) != std::string::npos) {
    const std::size_t open = pos + marker.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    Allow a;
    a.rule = comment.substr(open, close - open);
    std::size_t after = close + 1;
    if (after < comment.size() && comment[after] == ':') {
      ++after;
      while (after < comment.size()) {
        if (std::isspace(static_cast<unsigned char>(comment[after])) == 0) {
          a.justified = true;
          break;
        }
        ++after;
      }
    }
    out.allows[line].push_back(std::move(a));
    pos = close;
  }
}

struct Lexer {
  const std::string& text;
  LexedFile& out;
  std::size_t i = 0;
  std::uint32_t line = 1;
  std::size_t lineStart = 0;

  char peek(std::size_t ahead = 0) const {
    return i + ahead < text.size() ? text[i + ahead] : '\0';
  }

  void newline() {
    ++line;
    lineStart = i;  // i already points past the '\n'
  }

  std::uint32_t col() const {
    return static_cast<std::uint32_t>(i - lineStart);
  }

  void push(Tok kind, std::string tokText, std::uint32_t tokLine,
            std::uint32_t tokCol) {
    out.tokens.push_back(Token{kind, std::move(tokText), tokLine, tokCol});
  }

  /// Consume a // comment (to end of line, exclusive of the newline).
  void lineComment() {
    const std::uint32_t atLine = line;
    const std::size_t start = i;
    while (i < text.size() && text[i] != '\n') ++i;
    parseAllowsFrom(text.substr(start, i - start), atLine, out);
  }

  /// Consume a block comment. Allow markers are attributed to the line
  /// they appear on, so a multi-line banner can still carry one.
  void blockComment() {
    i += 2;
    std::size_t segStart = i;
    while (i < text.size()) {
      if (text[i] == '\n') {
        parseAllowsFrom(text.substr(segStart, i - segStart), line, out);
        ++i;
        newline();
        segStart = i;
        continue;
      }
      if (text[i] == '*' && peek(1) == '/') {
        parseAllowsFrom(text.substr(segStart, i - segStart), line, out);
        i += 2;
        return;
      }
      ++i;
    }
    parseAllowsFrom(text.substr(segStart, i - segStart), line, out);
  }

  /// Consume a conventional quoted literal, handling escapes. Returns the
  /// contents (quotes and escapes left as written, minus the delimiters).
  std::string quoted(char quote) {
    ++i;  // opening quote
    const std::size_t start = i;
    while (i < text.size() && text[i] != quote) {
      if (text[i] == '\\' && i + 1 < text.size()) {
        i += 2;
        continue;
      }
      if (text[i] == '\n') break;  // unterminated; be forgiving
      ++i;
    }
    const std::string contents = text.substr(start, i - start);
    if (i < text.size() && text[i] == quote) ++i;
    return contents;
  }

  /// Consume a raw string literal starting at R"... . `i` points at 'R'.
  std::string rawString() {
    i += 2;  // R"
    std::size_t d = i;
    while (d < text.size() && text[d] != '(') ++d;
    const std::string delim = text.substr(i, d - i);
    const std::string closer = ")" + delim + "\"";
    i = d + 1;
    const std::size_t start = i;
    while (i < text.size() && !startsWith(text, i, closer.c_str())) {
      if (text[i] == '\n') {
        ++i;
        newline();
      } else {
        ++i;
      }
    }
    const std::string contents = text.substr(start, i - start);
    if (i < text.size()) i += closer.size();
    return contents;
  }

  /// A '#' that is the first significant character of its line begins a
  /// preprocessor logical line: fold continuations, strip comments.
  void preprocessor() {
    const std::uint32_t atLine = line;
    std::string logical;
    while (i < text.size()) {
      const char c = text[i];
      if (c == '\n') {
        if (!logical.empty() && logical.back() == '\\') {
          logical.pop_back();
          ++i;
          newline();
          continue;
        }
        break;
      }
      if (c == '/' && peek(1) == '/') {
        lineComment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        blockComment();
        logical.push_back(' ');
        continue;
      }
      logical.push_back(c);
      ++i;
    }
    out.preproc.push_back(PreprocLine{atLine, std::move(logical)});
  }

  void run() {
    while (i < text.size()) {
      const char c = text[i];
      if (c == '\n') {
        ++i;
        newline();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
        ++i;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        lineComment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        blockComment();
        continue;
      }
      if (c == '#') {
        // Only a line-leading '#' opens a preprocessor directive.
        bool lineLeading = true;
        for (std::size_t p = lineStart; p < i; ++p)
          if (text[p] != ' ' && text[p] != '\t') lineLeading = false;
        if (lineLeading) {
          preprocessor();
          continue;
        }
        push(Tok::kPunct, "#", line, col());
        ++i;
        continue;
      }
      // Raw strings: R"( and the encoding-prefixed forms (u8R", LR", ...).
      if ((c == 'R' && peek(1) == '"') ||
          ((c == 'u' || c == 'U' || c == 'L') &&
           ((peek(1) == 'R' && peek(2) == '"') ||
            (c == 'u' && peek(1) == '8' && peek(2) == 'R' && peek(3) == '"')))) {
        const std::uint32_t atLine = line;
        const std::uint32_t atCol = col();
        while (text[i] != 'R') ++i;  // skip encoding prefix
        push(Tok::kString, rawString(), atLine, atCol);
        continue;
      }
      if (c == '"') {
        const std::uint32_t atCol = col();
        push(Tok::kString, quoted('"'), line, atCol);
        continue;
      }
      if (c == '\'') {
        // Heuristic: a quote directly after an identifier/number character
        // is a C++14 digit separator (1'000'000), not a char literal.
        const char prev = i > 0 ? text[i - 1] : '\0';
        if (isIdentChar(prev)) {
          ++i;
          continue;
        }
        const std::uint32_t atCol = col();
        push(Tok::kChar, quoted('\''), line, atCol);
        continue;
      }
      if (isIdentStart(c)) {
        const std::size_t start = i;
        const std::uint32_t atCol = col();
        while (i < text.size() && isIdentChar(text[i])) ++i;
        std::string word = text.substr(start, i - start);
        // Encoding-prefixed ordinary strings: u8"...", L"...", u"...".
        if (i < text.size() && text[i] == '"' &&
            (word == "u8" || word == "u" || word == "U" || word == "L")) {
          push(Tok::kString, quoted('"'), line, atCol);
          continue;
        }
        push(Tok::kIdent, std::move(word), line, atCol);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
        const std::size_t start = i;
        const std::uint32_t atCol = col();
        while (i < text.size() &&
               (isIdentChar(text[i]) || text[i] == '.' || text[i] == '\'' ||
                ((text[i] == '+' || text[i] == '-') &&
                 (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                  text[i - 1] == 'p' || text[i - 1] == 'P'))))
          ++i;
        push(Tok::kNumber, text.substr(start, i - start), line, atCol);
        continue;
      }
      // Punctuation, longest match first.
      bool matched = false;
      for (const char* p : kPuncts) {
        if (startsWith(text, i, p)) {
          const std::uint32_t atCol = col();
          push(Tok::kPunct, p, line, atCol);
          i += std::string(p).size();
          matched = true;
          break;
        }
      }
      if (matched) continue;
      push(Tok::kPunct, std::string(1, c), line, col());
      ++i;
    }
  }
};

}  // namespace

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

LexedFile lexString(const std::string& path, const std::string& contents) {
  LexedFile out;
  out.path = path;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= contents.size(); ++i) {
    if (i == contents.size() || contents[i] == '\n') {
      out.rawLines.push_back(contents.substr(start, i - start));
      start = i + 1;
    }
  }
  if (!out.rawLines.empty() && out.rawLines.back().empty() &&
      !contents.empty() && contents.back() == '\n')
    out.rawLines.pop_back();
  Lexer lx{contents, out};
  lx.run();
  return out;
}

LexedFile lex(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LexedFile out;
    out.path = path;
    out.ioError = true;
    return out;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return lexString(path, ss.str());
}

}  // namespace srclint
