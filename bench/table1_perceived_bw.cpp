// Table I: perceived write performance with rbIO at 16K/32K/64K processors:
// the time an MPI_Isend takes to complete from the worker's point of view
// (in 850 MHz CPU cycles) and the corresponding "perceived bandwidth" —
// total worker data over the slowest handoff.
#include <cstdio>

#include "common.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Table I - perceived write performance with rbIO",
         "np | median Isend (CPU cycles) | perceived bandwidth");

  struct PaperRow {
    int np;
    double cycles;
    double tbps;
  };
  const std::vector<PaperRow> paper = {
      {16384, 10152, 251}, {32768, 11539, 442}, {65536, 9346, 1091}};

  std::vector<SimPoint> points;
  for (const auto& row : paper)
    points.push_back({row.np, iolib::StrategyConfig::rbIo(64, true)});
  // The final dwarfs-disk check reruns the 16K point.
  points.push_back({16384, iolib::StrategyConfig::rbIo(64, true)});
  prefetchSims(points);

  std::printf("\n  %8s | %22s | %24s | %s\n", "np", "Isend cycles (median)",
              "perceived BW (measured)", "paper");
  std::vector<double> measured;
  double cyclesMin = 1e18, cyclesMax = 0;
  for (const auto& row : paper) {
    const auto r = runSim(row.np, iolib::StrategyConfig::rbIo(64, true));
    // Median worker handoff, in cycles at the BG/P core clock.
    sim::Sample isends;
    // maxIsendSeconds only exposes the max; recover the median from the
    // per-rank times (workers' time == isend time).
    for (int rank = 0; rank < row.np; ++rank)
      if (rank % 64 != 0)
        isends.add(r.perRankTime[static_cast<std::size_t>(rank)]);
    const double cycles = isends.median() * 850e6;
    cyclesMin = std::min(cyclesMin, cycles);
    cyclesMax = std::max(cyclesMax, cycles);
    measured.push_back(r.perceivedBandwidth);
    std::printf("  %8d | %15.0f cycles | %17.0f TB/s | %.0f cyc, %.0f TB/s\n",
                row.np, cycles, r.perceivedBandwidth / 1e12, row.cycles,
                row.tbps);
    std::fflush(stdout);
  }

  std::vector<Check> checks;
  checks.push_back(
      {"perceived bandwidth in the hundreds-of-TB/s range at 16K",
       measured[0] > 100e12 && measured[0] < 600e12,
       std::to_string(measured[0] / 1e12) + " TB/s (paper: 251)"});
  checks.push_back(
      {"perceived bandwidth reaches ~PB/s at 64K",
       measured[2] > 400e12 && measured[2] < 3000e12,
       std::to_string(measured[2] / 1e12) + " TB/s (paper: 1091)"});
  checks.push_back(
      {"perceived bandwidth grows with scale (weak scaling, flat Isend)",
       measured[0] < measured[1] && measured[1] < measured[2], "16K<32K<64K"});
  checks.push_back(
      {"Isend costs ~10^4 CPU cycles (paper: 9346-11539)",
       cyclesMin > 2e3 && cyclesMax < 5e4,
       std::to_string(cyclesMin) + " .. " + std::to_string(cyclesMax)});
  const auto r16 = runSim(16384, iolib::StrategyConfig::rbIo(64, true));
  checks.push_back(
      {"perceived dwarfs raw disk bandwidth by >10000x",
       r16.perceivedBandwidth > 1e4 * r16.bandwidth,
       std::to_string(r16.perceivedBandwidth / r16.bandwidth) + "x"});
  return reportChecks(checks);
}
