// Figure 7: ratio of checkpoint time per I/O step over computation time per
// single time step. Computation time comes from the calibrated NekCEM
// performance model (weak scaling keeps it ~constant across 16K-64K). For
// rbIO the checkpoint time is the writers' completion time — workers return
// to computation after a nonblocking send, so the writers' drain is what an
// application must amortise between checkpoints.
#include <cstdio>
#include <map>

#include "common.hpp"
#include "nekcem/perf_model.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Figure 7 - T(checkpoint) / T(computation step)",
         "Smaller is better; rbIO stays flat while 1PFPP exceeds 1000.");

  nekcem::PerfModel perf;
  const double tComp = perf.weakScalingStepSeconds();
  std::printf("computation time per step (model, n/P = 17000, N = 15): %.3f s\n",
              tComp);

  const std::vector<int> scales = {16384, 32768, 65536};
  std::vector<SimPoint> points;
  for (int np : scales)
    for (const auto& a : paperApproaches(np)) points.push_back({np, a.cfg});
  prefetchSims(points);

  std::map<std::string, std::map<int, double>> ratio;
  for (int np : scales) {
    std::printf("\n-- np = %d --\n", np);
    std::vector<analysis::Bar> bars;
    for (const auto& a : paperApproaches(np)) {
      const auto r = runSim(np, a.cfg);
      const bool rbio = a.name.find("rbIO") != std::string::npos;
      const double tc = rbio ? r.writerMakespan : r.makespan;
      ratio[a.name][np] = tc / tComp;
      bars.push_back({a.name, tc / tComp});
      std::printf("  %-20s Tc=%9.2f s  ratio %10.1f\n", a.name.c_str(), tc,
                  tc / tComp);
      std::fflush(stdout);
    }
    std::printf("%s", analysis::barChart(bars, "x", 52, /*logScale=*/true).c_str());
  }

  auto at = [&](const char* name, int np) { return ratio.at(name).at(np); };
  std::vector<Check> checks;
  checks.push_back({"1PFPP ratio above 1000 at 32K+ (paper: 'generally above 1000')",
                    at("1PFPP", 32768) > 1000 && at("1PFPP", 65536) > 1000,
                    std::to_string(at("1PFPP", 32768)) + ", " +
                        std::to_string(at("1PFPP", 65536))});
  bool rbSmall = true;
  for (int np : scales) rbSmall = rbSmall && at("rbIO, 64:1, nf=ng", np) < 45;
  checks.push_back({"rbIO nf=ng ratio stays small (paper: 'under 20')",
                    rbSmall, "all scales < 45 in our calibration"});
  const double flatness = at("rbIO, 64:1, nf=ng", 65536) /
                          at("rbIO, 64:1, nf=ng", 16384);
  checks.push_back({"rbIO ratio stays flat across scales", flatness < 2.5,
                    std::to_string(flatness) + "x from 16K to 64K"});
  // At 16K the paper's own Fig. 5 has coIO 64:1 ahead of rbIO; the rbIO
  // advantage appears at scale, so the ordering claim applies at 64K.
  const bool ordering =
      at("rbIO, 64:1, nf=ng", 65536) < at("coIO, np:nf=64:1", 65536) &&
      at("coIO, np:nf=64:1", 65536) < at("1PFPP", 65536);
  checks.push_back({"ratio ordering rbIO < coIO 64:1 < 1PFPP at 64K",
                    ordering, "64K ranks"});
  bool rbBeatsPfpp = true;
  for (int np : scales)
    rbBeatsPfpp = rbBeatsPfpp &&
                  at("rbIO, 64:1, nf=ng", np) * 20 < at("1PFPP", np);
  checks.push_back({"rbIO ratio at least 20x below 1PFPP everywhere",
                    rbBeatsPfpp, "all scales"});
  return reportChecks(checks);
}
