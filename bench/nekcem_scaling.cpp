// Section III-A: NekCEM's compute performance. Two parts:
//  1. the calibrated at-scale performance model against the paper's
//     published anchors (0.13 s/step at 131K ranks; 75% strong-scaling
//     efficiency), and
//  2. the real mini SEDG solver running on the host: spectral convergence
//     and per-step cost scaling with (N+1)^4-ish tensor work.
#include <cstdio>

#include "common.hpp"
#include "nekcem/maxwell.hpp"
#include "nekcem/perf_model.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Section III-A - NekCEM compute performance",
         "Performance-model anchors plus the real mini solver.");

  nekcem::PerfModel model;
  std::printf("\n== at-scale model ==\n");
  const double anchor = model.stepSeconds(273000, 15, 131072);
  std::printf("E=273K N=15 P=131072: %.3f s/step (paper: ~0.13 s)\n", anchor);
  const double eff = model.efficiency(8530, 131072, 68250, 16384);
  std::printf("efficiency at n/P=8530 vs base n/P=68250: %.0f%% "
              "(paper: 75%%)\n",
              eff * 100);
  std::printf("weak-scaling checkpoint-run step (n/P=17000): %.3f s\n",
              model.weakScalingStepSeconds());
  for (int np : {16384, 32768, 65536})
    std::printf("  (E,P)=(%3dK,%dK): n=%.0fM points, t_step %.3f s\n",
                68 * (np / 16384), np / 1024,
                68.0 * (np / 16384) * 4096 / 1e6,
                model.stepSeconds(static_cast<std::uint64_t>(68000) *
                                      static_cast<std::uint64_t>(np / 16384),
                                  15, np));

  std::printf("\n== real mini solver (host) ==\n");
  struct Row {
    int order;
    double error;
    double secondsPerStep;
    std::size_t points;
  };
  std::vector<Row> rows;
  for (int order : {2, 4, 6, 8}) {
    nekcem::BoxMesh mesh(2, 2, 2, 1, 1, 1, nekcem::Boundary::kPeriodic);
    nekcem::MaxwellSolver solver(mesh, order);
    auto wave = nekcem::planeWaveX(1.0);
    solver.setSolution(wave, 0.0);
    const double dt = 0.5 * solver.stableDt();
    const int steps = static_cast<int>(0.05 / dt) + 1;
    const WallTimer timer;
    solver.run(steps, dt);
    const double wall = timer.seconds();
    rows.push_back({order, solver.maxError(wave), wall / steps,
                    solver.gridPoints()});
    std::printf("  N=%d: %7zu points, max error %.2e, %.3f ms/step\n", order,
                solver.gridPoints(), solver.maxError(wave),
                1e3 * wall / steps);
    std::fflush(stdout);
  }

  std::vector<Check> checks;
  checks.push_back({"model hits the 0.13 s/step anchor",
                    std::abs(anchor - 0.13) < 0.01,
                    std::to_string(anchor) + " s"});
  checks.push_back({"model reproduces the 75% efficiency claim",
                    std::abs(eff - 0.75) < 0.02,
                    std::to_string(eff * 100) + "%"});
  checks.push_back({"weak scaling: equal n/P gives equal step time",
                    model.stepSeconds(17000, 15) ==
                        model.weakScalingStepSeconds(),
                    "scale-invariant"});
  checks.push_back({"solver shows spectral convergence (error N=8 << N=4)",
                    rows[3].error < rows[1].error * 1e-2,
                    std::to_string(rows[3].error) + " vs " +
                        std::to_string(rows[1].error)});
  checks.push_back({"solver cost grows with order",
                    rows[3].secondsPerStep > rows[0].secondsPerStep,
                    "N=8 slower than N=2 per step"});
  return reportChecks(checks);
}
