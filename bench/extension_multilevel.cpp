// Extension / future work: SCR-style multilevel checkpointing on the
// "future leadership system" the paper's related-work section anticipates
// (a RAM-disk-capable compute OS, which BG/P's CNK was not). Level-1
// checkpoints go to node-local RAM disk with a torus partner mirror; every
// 4th checkpoint drains to GPFS with rbIO. SCR's authors report 14x-234x
// checkpoint speedups over a parallel filesystem for pF3D at up to 8K
// cores — this harness shows where our simulated Intrepid lands.
#include <cstdio>

#include "common.hpp"
#include "iolib/multilevel.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Extension - SCR-style multilevel checkpointing",
         "Node-local RAM disk + partner mirror + periodic rbIO PFS drain.");

  std::vector<Check> checks;
  std::printf("\n  %8s | %12s | %12s | %14s | %10s\n", "np", "level 1",
              "PFS (rbIO)", "amortised (1:4)", "L1 speedup");
  for (int np : {16384, 32768, 65536}) {
    iolib::SimStack stack(np);
    bgckpt::bench::attachObs(stack);
    const auto spec = iolib::CheckpointSpec::nekcemWeakScaling(np);
    iolib::MultilevelConfig cfg;  // defaults: partner copy, pfsEvery = 4
    const auto r = runMultilevelCheckpoint(stack, spec, cfg);
    std::printf("  %8d | %10.4f s | %10.2f s | %12.2f s | %9.0fx\n", np,
                r.localMakespan, r.pfsMakespan, r.amortizedSeconds,
                r.level1Speedup);
    std::fflush(stdout);
    if (np == 65536) {
      checks.push_back({"level-1 speedup in SCR's reported territory "
                        "(14x-234x ballpark, allowing our larger scale)",
                        r.level1Speedup > 14,
                        std::to_string(r.level1Speedup) + "x"});
      checks.push_back({"amortised multilevel beats PFS-only by >2x",
                        r.amortizedSpeedup > 2.0,
                        std::to_string(r.amortizedSpeedup) + "x"});
      checks.push_back({"local checkpoints complete in well under a second",
                        r.localMakespan < 0.5,
                        std::to_string(r.localMakespan) + " s"});
    }
  }
  std::printf("\nNote: level 1 alone survives process failures and (with "
              "the partner mirror)\nsingle-node loss; only multi-node "
              "failures need the PFS generation.\n");
  return reportChecks(checks);
}
