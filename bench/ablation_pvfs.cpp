// Ablation / future work: GPFS vs the lock-free PVFS personality.
//
// The paper attempted a GPFS-vs-PVFS comparison but dropped it because the
// Intrepid deployments differed too much ("cache was turned off on PVFS").
// The simulator can hold everything else fixed: same machine, same noise,
// same strategies — only the filesystem personality changes. The
// expectation from the locking model: PVFS's lock-free writes help most
// exactly where GPFS pays tokens (the single shared file), and metadata-
// heavy 1PFPP remains bad either way.
#include <cstdio>

#include "common.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

namespace {

double runWith(int np, const fs::FsConfig& cfg,
               const iolib::StrategyConfig& strategy) {
  iolib::SimStackOptions opt;
  opt.fsConfig = cfg;
  iolib::SimStack stack(np, opt);
  bgckpt::bench::attachObs(stack);
  return runSim(stack, np, strategy).bandwidth;
}

}  // namespace

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Ablation - GPFS vs lock-free PVFS personality",
         "The comparison the paper had to skip (Section V-C1).");

  constexpr int kNp = 16384;
  // Hold the per-stream data rate equal so only locking/metadata differ.
  fs::FsConfig gpfs = fs::gpfsConfig();
  fs::FsConfig pvfs = fs::pvfsConfig();
  pvfs.writeStreamBandwidth = gpfs.writeStreamBandwidth;
  pvfs.readStreamBandwidth = gpfs.readStreamBandwidth;

  struct Row {
    const char* name;
    iolib::StrategyConfig cfg;
    double gpfsBw = 0;
    double pvfsBw = 0;
  };
  std::vector<Row> rows = {
      {"1PFPP", iolib::StrategyConfig::onePfpp()},
      {"coIO nf=1", iolib::StrategyConfig::coIo(1)},
      {"coIO 64:1", iolib::StrategyConfig::coIo(kNp / 64)},
      {"rbIO nf=1", iolib::StrategyConfig::rbIo(64, false)},
      {"rbIO nf=ng", iolib::StrategyConfig::rbIo(64, true)},
  };
  std::printf("\n  %-12s | %10s | %10s | %s\n", "strategy", "GPFS", "PVFS",
              "PVFS/GPFS");
  for (auto& row : rows) {
    row.gpfsBw = runWith(kNp, gpfs, row.cfg);
    row.pvfsBw = runWith(kNp, pvfs, row.cfg);
    std::printf("  %-12s | %7.2f GB/s | %7.2f GB/s | %5.2fx\n", row.name,
                row.gpfsBw / 1e9, row.pvfsBw / 1e9, row.pvfsBw / row.gpfsBw);
    std::fflush(stdout);
  }

  std::vector<Check> checks;
  const double sharedGain = rows[1].pvfsBw / rows[1].gpfsBw;   // coIO nf=1
  const double splitGain = rows[2].pvfsBw / rows[2].gpfsBw;    // coIO 64:1
  checks.push_back({"lock-free helps the single shared file the most",
                    sharedGain > splitGain,
                    std::to_string(sharedGain) + "x vs " +
                        std::to_string(splitGain) + "x"});
  checks.push_back({"shared-file writes gain substantially without tokens",
                    sharedGain > 1.3, std::to_string(sharedGain) + "x"});
  checks.push_back({"1PFPP stays catastrophic on PVFS too (metadata-bound, "
                    "single MDS)",
                    rows[0].pvfsBw < 0.2 * rows[4].pvfsBw,
                    gbs(rows[0].pvfsBw) + " vs rbIO " +
                        gbs(rows[4].pvfsBw)});
  checks.push_back({"rbIO nf=ng barely changes (it avoided locks by design)",
                    rows[4].pvfsBw < 1.3 * rows[4].gpfsBw &&
                        rows[4].pvfsBw > 0.8 * rows[4].gpfsBw,
                    std::to_string(rows[4].pvfsBw / rows[4].gpfsBw) + "x"});
  return reportChecks(checks);
}
