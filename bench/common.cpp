#include "common.hpp"

#include <cstdio>

namespace bgckpt::bench {

void banner(const std::string& artifact, const std::string& description) {
  std::printf("\n====================================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("Fu, Min, Latham, Carothers - \"Parallel I/O Performance for\n");
  std::printf("Application-Level Checkpointing on the Blue Gene/P System\" (2011)\n");
  std::printf("%s\n", description.c_str());
  std::printf("====================================================================\n");
}

int reportChecks(const std::vector<Check>& checks) {
  int failures = 0;
  std::printf("\n");
  for (const auto& c : checks) {
    std::printf("SHAPE CHECK [%s]: %s (%s)\n", c.pass ? "PASS" : "FAIL",
                c.name.c_str(), c.detail.c_str());
    if (!c.pass) ++failures;
  }
  std::printf("%d/%zu shape checks passed\n",
              static_cast<int>(checks.size()) - failures, checks.size());
  return failures == 0 ? 0 : 1;
}

std::string gbs(double bytesPerSecond) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f GB/s", bytesPerSecond / 1e9);
  return buf;
}

std::string secs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  return buf;
}

iolib::CheckpointResult runSim(int np, const iolib::StrategyConfig& cfg,
                               std::uint64_t seed) {
  iolib::SimStackOptions opt;
  opt.seed = seed;
  iolib::SimStack stack(np, opt);
  return runSim(stack, np, cfg);
}

iolib::CheckpointResult runSim(iolib::SimStack& stack, int np,
                               const iolib::StrategyConfig& cfg) {
  const auto spec = iolib::CheckpointSpec::nekcemWeakScaling(np);
  return iolib::runCheckpoint(stack, spec, cfg);
}

std::vector<Approach> paperApproaches(int np) {
  using iolib::StrategyConfig;
  return {
      {"1PFPP", StrategyConfig::onePfpp()},
      {"coIO, nf=1", StrategyConfig::coIo(1)},
      {"coIO, np:nf=64:1", StrategyConfig::coIo(np / 64)},
      {"rbIO, 64:1, nf=1", StrategyConfig::rbIo(64, false)},
      {"rbIO, 64:1, nf=ng", StrategyConfig::rbIo(64, true)},
  };
}

}  // namespace bgckpt::bench
