#include "common.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "simcore/shard.hpp"

#include "obs/attr.hpp"
#include "obs/critpath.hpp"
#include "obs/flightrec.hpp"
#include "obs/optrace.hpp"
#include "obs/runstore.hpp"
#include "obs/runtimeprof.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace bgckpt::bench {

namespace {

std::string gTracePath;
std::string gMetricsPath;
std::string gPerfJsonPath;
std::string gAttrPath;
std::string gCritPathPath;
std::string gTelemetryPath;
double gTelemetryDt = 0.0;  // 0 = Telemetry::kDefaultDt
std::size_t gFlightRecEvents = 0;
bool gOpTraceEnabled = false;
std::string gOpTracePath;
std::uint32_t gOpTraceSampleEvery = 0;  // 0 = OpTracer::kDefaultSampleEvery
std::string gObsDir;
std::string gRuntimeProfPath;
std::string gRuntimeTracePath;
// The process-wide runtime profiler (obs/runtimeprof.hpp), created and
// installed by obsInit when --runtime-profile is given; flushed (JSON +
// manifest + optional Chrome trace) by perfFlush. Process-global rather
// than per-stack: real time cuts across stacks.
std::unique_ptr<obs::RuntimeProfiler> gRuntimeProf;
bool gRuntimeProfFlushed = false;
// Captured by obsInit for the run manifests written next to each artifact.
std::string gBenchName;
std::vector<std::string> gCmdArgs;
// Manifest-v2 provenance: the sweep driver exports the revision and the
// ledger config hash it derived for this child (BGCKPT_GIT_REV /
// BGCKPT_CONFIG_HASH); standalone runs self-derive a config hash over
// (bench, args) and stamp the rev as "unknown".
std::string gGitRev;
std::string gConfigHash;
sim::SimCheckMode gSimCheckMode = sim::SimCheckMode::kAuto;
unsigned gThreads = 1;
int gStacksAttached = 0;
// Keep attached recorders alive past their stacks so a SHAPE CHECK failure
// at report time can still dump what each run was doing (the global
// registry in obs/flightrec holds only weak references). Guarded: prefetch
// workers attach concurrently.
std::mutex gFlightRecMu;
std::vector<std::shared_ptr<obs::FlightRecorder>> gFlightRecorders;

/// Strategy/result metadata attached to runSim perf records. The campaign
/// roll-up (trace_report --campaign) re-derives figure tables from these
/// fields; measuredGbs stores the exact string the bench printed, so the
/// ledger view is byte-identical to the individually-run bench's stdout by
/// construction, not by re-formatting.
struct SimMeta {
  bool present = false;
  int np = 0;
  int nf = 0;
  std::string strategy;     // strategyName(cfg.kind)
  std::string config;       // cfg.describe()
  std::string measuredGbs;  // gbs(result.bandwidth)
  double simSeconds = 0.0;  // result.makespan, simulated seconds
};

struct PerfEntry {
  std::string label;
  double wallSeconds = 0.0;
  std::uint64_t events = 0;
  unsigned threads = 1;
  SimMeta sim;
};
std::vector<PerfEntry> gPerfEntries;

/// Completed-but-not-yet-consumed simulation points (see prefetchSims).
/// Written single-threaded after the parallel phase, consumed by runSim.
struct CachedRun {
  iolib::CheckpointResult result;
  std::string label;
  double wallSeconds = 0.0;
  std::uint64_t events = 0;
};
std::map<std::string, std::deque<CachedRun>> gSimCache;

/// Cache key covering *every* field that changes simulated behaviour.
/// StrategyConfig::describe() is presentation (it omits hints and buffer
/// sizes), so it must not be the key.
std::string pointKey(int np, const iolib::StrategyConfig& cfg,
                     std::uint64_t seed) {
  std::string key = std::to_string(np);
  key += '|';
  key += std::to_string(static_cast<int>(cfg.kind));
  key += '|';
  key += std::to_string(cfg.nf);
  key += '|';
  key += std::to_string(cfg.groupSize);
  key += '|';
  key += std::to_string(cfg.hints.bgpNodesPset);
  key += '|';
  key += std::to_string(cfg.hints.cbBufferSize);
  key += '|';
  key += cfg.hints.alignFileDomains ? '1' : '0';
  key += cfg.hints.deferredOpen ? '1' : '0';
  key += '|';
  key += std::to_string(cfg.writerBuffer);
  key += '|';
  key += cfg.onePfppPrivateDirs ? '1' : '0';
  key += '|';
  key += std::to_string(seed);
  return key;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// "out/trace.json" -> "out/trace.2.json" for the second stack, etc.
std::string numbered(const std::string& path, int n) {
  if (n <= 1) return path;
  const auto slash = path.find_last_of('/');
  const auto dot = path.find_last_of('.');
  // Built with += rather than `"." + to_string(n)`: the rvalue-insert
  // overload trips GCC 12's -Wrestrict false positive at -O3 under -Werror.
  std::string tag(".");
  tag += std::to_string(n);
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return path + tag;
  return path.substr(0, dot) + tag + path.substr(dot);
}

std::string swapJsonForCsv(const std::string& path) {
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0)
    return path.substr(0, path.size() - 5) + ".csv";
  return path + ".csv";
}

std::string jsonlTwin(const std::string& path) {
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0)
    return path + "l";
  return path + ".jsonl";
}

/// Write the run manifest next to an obs artifact: which harness produced
/// it, on what partition, with which flags, at which revision. Serialized
/// by the shared stamping helper (obs::writeArtifactManifest) so every
/// sidecar in the repo carries the same v2 provenance fields. The artifact
/// path itself was already probed writable, so a failure here is
/// unexpected enough to warrant the same exit-2 contract.
void writeManifest(const std::string& artifactPath, const char* artifact,
                   int np, int stackN) {
  obs::ManifestInfo info;
  info.artifact = artifact;
  info.bench = gBenchName;
  info.np = np;
  info.stack = stackN;
  info.bucketDt = gTelemetryDt > 0 ? gTelemetryDt : obs::Telemetry::kDefaultDt;
  info.gitRev = gGitRev;
  info.configHash = gConfigHash;
  const auto flag = [&](const char* name, bool active) {
    if (active) info.flags.emplace_back(name);
  };
  flag("--trace", !gTracePath.empty());
  flag("--metrics", !gMetricsPath.empty());
  flag("--attr", !gAttrPath.empty());
  flag("--critpath", !gCritPathPath.empty());
  flag("--telemetry", !gTelemetryPath.empty());
  flag("--optrace", gOpTraceEnabled);
  flag("--obs-dir", !gObsDir.empty());
  flag("--flightrec", gFlightRecEvents > 0);
  flag("--runtime-profile", !gRuntimeProfPath.empty());
  info.args = gCmdArgs;
  if (!obs::writeArtifactManifest(artifactPath, info)) {
    std::fprintf(stderr, "error: cannot write manifest for %s\n",
                 artifactPath.c_str());
    std::exit(2);
  }
}

}  // namespace

void obsInit(int argc, char** argv) {
  if (argc > 0) {
    gBenchName = argv[0];
    const auto slash = gBenchName.find_last_of('/');
    if (slash != std::string::npos) gBenchName = gBenchName.substr(slash + 1);
  }
  gCmdArgs.assign(argv + (argc > 0 ? 1 : 0), argv + argc);
  const char* rev = std::getenv("BGCKPT_GIT_REV");
  gGitRev = rev != nullptr && *rev != '\0' ? rev : "unknown";
  if (const char* hash = std::getenv("BGCKPT_CONFIG_HASH");
      hash != nullptr && *hash != '\0') {
    gConfigHash = hash;
  } else {
    // Standalone run: hash (bench, args) so two invocations of the same
    // command line still share a config identity.
    std::string material = gBenchName;
    for (const std::string& a : gCmdArgs) {
      material += '\n';
      material += a;
    }
    gConfigHash = obs::hex16(obs::fnv1a64(material));
  }
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--trace") == 0 && i + 1 < argc) {
      gTracePath = argv[++i];
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      gTracePath = a + 8;
    } else if (std::strcmp(a, "--metrics") == 0 && i + 1 < argc) {
      gMetricsPath = argv[++i];
    } else if (std::strncmp(a, "--metrics=", 10) == 0) {
      gMetricsPath = a + 10;
    } else if (std::strcmp(a, "--perf-json") == 0 && i + 1 < argc) {
      gPerfJsonPath = argv[++i];
    } else if (std::strncmp(a, "--perf-json=", 12) == 0) {
      gPerfJsonPath = a + 12;
    } else if (std::strcmp(a, "--attr") == 0 && i + 1 < argc) {
      gAttrPath = argv[++i];
    } else if (std::strncmp(a, "--attr=", 7) == 0) {
      gAttrPath = a + 7;
    } else if (std::strcmp(a, "--critpath") == 0 && i + 1 < argc) {
      gCritPathPath = argv[++i];
    } else if (std::strncmp(a, "--critpath=", 11) == 0) {
      gCritPathPath = a + 11;
    } else if (std::strcmp(a, "--telemetry") == 0 && i + 1 < argc) {
      gTelemetryPath = argv[++i];
    } else if (std::strncmp(a, "--telemetry=", 12) == 0 && i + 1 < argc) {
      // --telemetry=<dt> <file>: the value attached to the flag is the
      // bucket width in simulated seconds; the output path follows.
      const double dt = std::strtod(a + 12, nullptr);
      gTelemetryDt = dt > 0 ? dt : 0.0;
      gTelemetryPath = argv[++i];
    } else if (std::strcmp(a, "--optrace") == 0) {
      gOpTraceEnabled = true;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        gOpTracePath = argv[++i];
    } else if (std::strncmp(a, "--optrace=", 10) == 0) {
      // --optrace=RATE [file]: RATE > 1 means "every Nth request"; RATE in
      // (0, 1] is a sampling probability converted to the nearest 1-in-N.
      gOpTraceEnabled = true;
      const double rate = std::strtod(a + 10, nullptr);
      if (rate > 1.0) {
        gOpTraceSampleEvery = static_cast<std::uint32_t>(std::lround(rate));
      } else if (rate > 0.0) {
        gOpTraceSampleEvery = static_cast<std::uint32_t>(
            std::max(1.0, std::round(1.0 / rate)));
      }
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        gOpTracePath = argv[++i];
    } else if (std::strcmp(a, "--runtime-profile") == 0) {
      gRuntimeProfPath = "runtimeprof.json";
    } else if (std::strncmp(a, "--runtime-profile=", 18) == 0) {
      gRuntimeProfPath = a + 18;
    } else if (std::strcmp(a, "--runtime-trace") == 0 && i + 1 < argc) {
      gRuntimeTracePath = argv[++i];
    } else if (std::strncmp(a, "--runtime-trace=", 16) == 0) {
      gRuntimeTracePath = a + 16;
    } else if (std::strcmp(a, "--obs-dir") == 0 && i + 1 < argc) {
      gObsDir = argv[++i];
    } else if (std::strncmp(a, "--obs-dir=", 10) == 0) {
      gObsDir = a + 10;
    } else if (std::strcmp(a, "--flightrec") == 0) {
      gFlightRecEvents = obs::FlightRecorder::kDefaultEvents;
    } else if (std::strncmp(a, "--flightrec=", 12) == 0) {
      const long n = std::strtol(a + 12, nullptr, 10);
      gFlightRecEvents = n > 0 ? static_cast<std::size_t>(n)
                               : obs::FlightRecorder::kDefaultEvents;
    } else if (std::strcmp(a, "--threads") == 0 && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      gThreads = n > 1 ? static_cast<unsigned>(n) : 1;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      const long n = std::strtol(a + 10, nullptr, 10);
      gThreads = n > 1 ? static_cast<unsigned>(n) : 1;
    } else if (std::strcmp(a, "--simcheck") == 0) {
      gSimCheckMode = sim::SimCheckMode::kOn;
    } else if (std::strncmp(a, "--simcheck=", 11) == 0) {
      const char* mode = a + 11;
      if (std::strcmp(mode, "off") == 0) {
        gSimCheckMode = sim::SimCheckMode::kOff;
      } else if (std::strcmp(mode, "warn") == 0) {
        gSimCheckMode = sim::SimCheckMode::kWarn;
      } else {
        gSimCheckMode = sim::SimCheckMode::kOn;
      }
    }
  }
  if (!gObsDir.empty()) {
    // One directory for the whole observability suite: every artifact not
    // explicitly pointed elsewhere lands in DIR with a conventional name
    // (explicit flags win over the derived paths).
    std::error_code ec;
    std::filesystem::create_directories(gObsDir, ec);
    if (ec) {
      std::fprintf(stderr, "error: --obs-dir: cannot create %s: %s\n",
                   gObsDir.c_str(), ec.message().c_str());
      std::exit(2);
    }
    const auto derive = [&](std::string& path, const char* name) {
      if (path.empty()) path = gObsDir + "/" + name;
    };
    derive(gTracePath, "trace.json");
    derive(gMetricsPath, "metrics.json");
    derive(gAttrPath, "attr.json");
    derive(gCritPathPath, "critpath.json");
    derive(gTelemetryPath, "telemetry.json");
    gOpTraceEnabled = true;
    derive(gOpTracePath, "optrace.json");
    // Deliberately NOT derived: the runtime profile records wall time, so
    // its JSON can never be byte-stable; keeping it out of the obs dir
    // keeps the serial-vs-threaded artifact identity contract intact.
  }
  if (!gRuntimeProfPath.empty()) {
    // Fail a typo'd path at startup (exit 2), same contract as --trace.
    {
      std::ofstream probe(gRuntimeProfPath);
      if (!probe) {
        std::fprintf(stderr, "error: --runtime-profile: cannot open %s\n",
                     gRuntimeProfPath.c_str());
        std::exit(2);
      }
    }
    obs::RuntimeProfiler::Config cfg;
    if (!gRuntimeTracePath.empty()) cfg.maxSpansPerRun = 200000;
    gRuntimeProf = std::make_unique<obs::RuntimeProfiler>(cfg);
    gRuntimeProf->install();
    std::fprintf(stderr, "[obs] runtime execution profile to %s%s%s\n",
                 gRuntimeProfPath.c_str(),
                 gRuntimeTracePath.empty() ? "" : ", worker spans to ",
                 gRuntimeTracePath.c_str());
  }
}

sim::SimCheckMode simCheckMode() { return gSimCheckMode; }

unsigned benchThreads() { return gThreads; }

bool runtimeProfileActive() { return gRuntimeProf != nullptr; }

void perfRecord(const std::string& label, double wallSeconds,
                std::uint64_t events, unsigned threads) {
  if (gRuntimeProf)
    gRuntimeProf->recordPoint(label, wallSeconds, events,
                              threads > 0 ? threads : gThreads);
  if (gPerfJsonPath.empty()) return;
  gPerfEntries.push_back(
      PerfEntry{label, wallSeconds, events, threads > 0 ? threads : gThreads,
                SimMeta{}});
}

namespace {

/// Export the runtime profile (once): JSON + manifest sidecar, plus the
/// Chrome trace when --runtime-trace asked for one. Announces on stderr so
/// figure stdout stays byte-identical with profiling on.
bool runtimeProfFlush() {
  if (!gRuntimeProf || gRuntimeProfFlushed) return true;
  gRuntimeProfFlushed = true;
  // Stop observing before export: no run should be in flight at flush
  // time, and uninstalling makes that a hard property.
  gRuntimeProf->uninstall();
  if (!gRuntimeProf->writeJson(gRuntimeProfPath)) {
    std::fprintf(stderr, "error: --runtime-profile: cannot write %s\n",
                 gRuntimeProfPath.c_str());
    return false;
  }
  writeManifest(gRuntimeProfPath, "runtimeprof", 0, 0);
  std::fprintf(stderr,
               "[obs] runtime profile: %zu shard run(s), %zu parallel "
               "region(s), %zu point(s) -> %s\n",
               gRuntimeProf->shardRuns().size(), gRuntimeProf->regions().size(),
               gRuntimeProf->points().size(), gRuntimeProfPath.c_str());
  if (!gRuntimeTracePath.empty()) {
    if (!gRuntimeProf->writeChromeTrace(gRuntimeTracePath)) {
      std::fprintf(stderr, "error: --runtime-trace: cannot write %s\n",
                   gRuntimeTracePath.c_str());
      return false;
    }
    std::fprintf(stderr, "[obs] runtime worker spans -> %s\n",
                 gRuntimeTracePath.c_str());
  }
  return true;
}

}  // namespace

bool perfFlush() {
  if (!runtimeProfFlush()) return false;
  if (gPerfJsonPath.empty()) return true;
  std::FILE* f = std::fopen(gPerfJsonPath.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: --perf-json: cannot write %s\n",
                 gPerfJsonPath.c_str());
    return false;
  }
  double totalWall = 0.0;
  std::uint64_t totalEvents = 0;
  std::fprintf(f, "{\n  \"runs\": [\n");
  for (std::size_t i = 0; i < gPerfEntries.size(); ++i) {
    const PerfEntry& e = gPerfEntries[i];
    const double eps = e.wallSeconds > 0.0
                           ? static_cast<double>(e.events) / e.wallSeconds
                           : 0.0;
    std::fprintf(f,
                 "    {\"label\": \"%s\", \"threads\": %u, "
                 "\"wall_seconds\": %.6f, "
                 "\"events\": %llu, \"events_per_second\": %.0f",
                 jsonEscape(e.label).c_str(), e.threads, e.wallSeconds,
                 static_cast<unsigned long long>(e.events), eps);
    if (e.sim.present) {
      // Flat scalar fields only: perf_compare scans each record up to its
      // first '}', so nothing nested may appear here.
      std::fprintf(f,
                   ", \"np\": %d, \"nf\": %d, \"strategy\": \"%s\", "
                   "\"config\": \"%s\", \"measured_gbs\": \"%s\", "
                   "\"sim_seconds\": %.6f",
                   e.sim.np, e.sim.nf, jsonEscape(e.sim.strategy).c_str(),
                   jsonEscape(e.sim.config).c_str(),
                   jsonEscape(e.sim.measuredGbs).c_str(), e.sim.simSeconds);
    }
    std::fprintf(f, "}%s\n", i + 1 < gPerfEntries.size() ? "," : "");
    totalWall += e.wallSeconds;
    totalEvents += e.events;
  }
  const double totalEps =
      totalWall > 0.0 ? static_cast<double>(totalEvents) / totalWall : 0.0;
  std::fprintf(f,
               "  ],\n  \"total\": {\"wall_seconds\": %.6f, \"events\": %llu, "
               "\"events_per_second\": %.0f}\n}\n",
               totalWall, static_cast<unsigned long long>(totalEvents),
               totalEps);
  std::fclose(f);
  std::printf("[perf] wrote %zu run records to %s\n", gPerfEntries.size(),
              gPerfJsonPath.c_str());
  return true;
}

namespace {

bool obsActive() {
  return !(gTracePath.empty() && gMetricsPath.empty() && gAttrPath.empty() &&
           gCritPathPath.empty() && gTelemetryPath.empty() &&
           !gOpTraceEnabled && gFlightRecEvents == 0);
}

/// attachObs with an explicit stack ordinal: prefetch workers pre-assign
/// numbers in point order so the ".2"/".3" artifact suffixes are identical
/// to a serial run whatever order the workers finish in.
void attachObsNumbered(iolib::SimStack& stack, int n) {
  const int np = stack.rt.numRanks();
  // --trace/--metrics historically announce on stdout; concurrent workers
  // would interleave them, so with --threads > 1 they join the newer flags
  // on stderr (stdout stays byte-identical across thread counts).
  std::FILE* announce = gThreads > 1 ? stderr : stdout;
  // Each artifact written by this attach gets a "<path>.manifest.json"
  // sidecar so downstream tools can validate provenance and schema.
  std::vector<std::pair<const char*, std::string>> artifacts;
  if (!gTracePath.empty()) {
    const std::string chrome = numbered(gTracePath, n);
    const std::string jsonl = jsonlTwin(chrome);
    try {
      stack.obs.addSink(obs::ChromeTraceSink::toFiles(chrome, jsonl));
    } catch (const std::runtime_error& e) {
      std::fprintf(stderr, "error: --trace: %s\n", e.what());
      std::exit(2);
    }
    std::fprintf(announce, "[obs] streaming Chrome trace to %s (+ %s)\n",
                 chrome.c_str(), jsonl.c_str());
    artifacts.emplace_back("trace", chrome);
  }
  if (!gMetricsPath.empty()) {
    const std::string json = numbered(gMetricsPath, n);
    stack.obs.exportOnDestroy(json, swapJsonForCsv(json));
    std::fprintf(announce, "[obs] metrics will be written to %s and %s\n",
                 json.c_str(), swapJsonForCsv(json).c_str());
    artifacts.emplace_back("metrics", json);
  }
  // The newer flags announce on stderr: figure stdout must stay
  // byte-identical whether or not attribution/critpath/flightrec are on.
  // Their sinks only write at finalize, so probe the path now — a typo
  // must fail at startup with exit 2, the same contract as --trace.
  const auto requireWritable = [](const char* flag, const std::string& path) {
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "error: %s: cannot open %s\n", flag, path.c_str());
      std::exit(2);
    }
  };
  if (!gAttrPath.empty()) {
    const std::string json = numbered(gAttrPath, n);
    requireWritable("--attr", json);
    requireWritable("--attr", swapJsonForCsv(json));
    auto attr = std::make_shared<obs::AttributionSink>();
    attr->exportTo(json, swapJsonForCsv(json));
    stack.obs.addSink(std::move(attr));
    std::fprintf(stderr, "[obs] blocked-time attribution to %s and %s\n",
                 json.c_str(), swapJsonForCsv(json).c_str());
    artifacts.emplace_back("attr", json);
  }
  if (!gCritPathPath.empty()) {
    const std::string json = numbered(gCritPathPath, n);
    requireWritable("--critpath", json);
    stack.obs.attachCritPath(stack.sched, json);
    std::fprintf(stderr, "[obs] critical-path report to %s\n", json.c_str());
    artifacts.emplace_back("critpath", json);
  }
  if (!gTelemetryPath.empty()) {
    const std::string json = numbered(gTelemetryPath, n);
    const std::string csv = swapJsonForCsv(json);
    requireWritable("--telemetry", json);
    requireWritable("--telemetry", csv);
    stack.obs.attachTelemetry(stack.sched, gTelemetryDt, json, csv);
    std::fprintf(stderr,
                 "[obs] sampled telemetry (dt=%.3gs) to %s and %s\n",
                 stack.obs.telemetry().bucketDt(), json.c_str(), csv.c_str());
    artifacts.emplace_back("telemetry", json);
  }
  if (gOpTraceEnabled) {
    const std::string json =
        gOpTracePath.empty() ? std::string() : numbered(gOpTracePath, n);
    if (!json.empty()) requireWritable("--optrace", json);
    stack.obs.attachOpTrace(gOpTraceSampleEvery, -1, json);
    std::fprintf(stderr, "[obs] op tracing on (sampling 1 in %u)%s%s\n",
                 stack.obs.opTracer()->sampleEvery(),
                 json.empty() ? "" : ", report to ",
                 json.c_str());
    if (!json.empty()) artifacts.emplace_back("optrace", json);
  }
  for (const auto& [kind, path] : artifacts) writeManifest(path, kind, np, n);
  if (gFlightRecEvents > 0) {
    // Fresh-stack runSim already creates one via SimStackOptions; cover
    // harnesses that build their own SimStack and only call attachObs.
    if (!stack.flightRecorder) {
      stack.flightRecorder = obs::FlightRecorder::create(gFlightRecEvents);
      stack.obs.addSink(stack.flightRecorder);
    }
    {
      std::lock_guard<std::mutex> lock(gFlightRecMu);
      gFlightRecorders.push_back(stack.flightRecorder);
    }
    std::fprintf(stderr, "[obs] flight recorder armed (%zu events/layer)\n",
                 gFlightRecEvents);
  }
}

}  // namespace

void attachObs(iolib::SimStack& stack) {
  if (!obsActive()) return;
  attachObsNumbered(stack, ++gStacksAttached);
}

void banner(const std::string& artifact, const std::string& description) {
  std::printf("\n====================================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("Fu, Min, Latham, Carothers - \"Parallel I/O Performance for\n");
  std::printf("Application-Level Checkpointing on the Blue Gene/P System\" (2011)\n");
  std::printf("%s\n", description.c_str());
  std::printf("====================================================================\n");
}

int reportChecks(const std::vector<Check>& checks) {
  if (!perfFlush()) return 1;
  int failures = 0;
  std::printf("\n");
  for (const auto& c : checks) {
    std::printf("SHAPE CHECK [%s]: %s (%s)\n", c.pass ? "PASS" : "FAIL",
                c.name.c_str(), c.detail.c_str());
    if (!c.pass) ++failures;
  }
  std::printf("%d/%zu shape checks passed\n",
              static_cast<int>(checks.size()) - failures, checks.size());
  if (failures > 0 && !gFlightRecorders.empty()) {
    std::fprintf(stderr,
                 "[flightrec] %d shape check(s) failed; dumping the last "
                 "recorded events per stack\n",
                 failures);
    obs::dumpFlightRecorders(std::cerr);
  }
  return failures == 0 ? 0 : 1;
}

std::string gbs(double bytesPerSecond) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f GB/s", bytesPerSecond / 1e9);
  return buf;
}

std::string secs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  return buf;
}

namespace {

/// The measured core shared by the serial path and the prefetch workers:
/// run the checkpoint, hand back wall time and event count without touching
/// the (order-sensitive) perf record.
iolib::CheckpointResult runMeasured(iolib::SimStack& stack, int np,
                                    const iolib::StrategyConfig& cfg,
                                    double& wallSeconds,
                                    std::uint64_t& events) {
  const auto spec = iolib::CheckpointSpec::nekcemWeakScaling(np);
  const auto wall0 = std::chrono::steady_clock::now();
  const std::uint64_t events0 = stack.sched.eventsProcessed();
  auto result = iolib::runCheckpoint(stack, spec, cfg);
  wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  events = stack.sched.eventsProcessed() - events0;
  return result;
}

/// perfRecord plus the strategy/result metadata of one simulated
/// checkpoint. Both runSim paths (fresh run, prefetch-cache replay) land
/// here, so the --perf-json record carries the same sim fields whatever
/// the thread count.
void perfRecordSim(const std::string& label, double wallSeconds,
                   std::uint64_t events, int np,
                   const iolib::StrategyConfig& cfg,
                   const iolib::CheckpointResult& result) {
  perfRecord(label, wallSeconds, events);
  if (gPerfJsonPath.empty() || gPerfEntries.empty()) return;
  SimMeta& sim = gPerfEntries.back().sim;
  sim.present = true;
  sim.np = np;
  sim.nf = cfg.nf;
  sim.strategy = iolib::strategyName(cfg.kind);
  sim.config = cfg.describe();
  sim.measuredGbs = gbs(result.bandwidth);
  sim.simSeconds = result.makespan;
}

}  // namespace

void prefetchSims(const std::vector<SimPoint>& points) {
  if (gThreads <= 1 || points.size() < 2) return;
  const bool obs = obsActive();
  const int base = gStacksAttached;
  // Reserve artifact ordinals in point order up front; any later
  // non-prefetched attach continues after them.
  if (obs) gStacksAttached = base + static_cast<int>(points.size());
  struct Slot {
    std::string key;
    CachedRun run;
  };
  std::vector<Slot> slots(points.size());
  if (gRuntimeProf) {
    // Name the parallelFor jobs after their figure points, so the profile's
    // job table (and trace_report --runtime) says "np=65536 coIO nf=1"
    // instead of "job 7".
    std::vector<std::string> labels;
    labels.reserve(points.size());
    for (const SimPoint& p : points)
      labels.push_back("np=" + std::to_string(p.np) + " " + p.cfg.describe());
    gRuntimeProf->setPointLabels(std::move(labels));
  }
  sim::parallelFor(points.size(), gThreads, [&](std::size_t i) {
    const SimPoint& p = points[i];
    iolib::SimStackOptions opt;
    opt.seed = p.seed;
    opt.simcheck = gSimCheckMode;
    opt.flightRecorderEvents = gFlightRecEvents;
    iolib::SimStack stack(p.np, opt);
    if (obs) attachObsNumbered(stack, base + static_cast<int>(i) + 1);
    Slot& slot = slots[i];
    slot.key = pointKey(p.np, p.cfg, p.seed);
    slot.run.label = "np=" + std::to_string(p.np) + " " + p.cfg.describe();
    slot.run.result =
        runMeasured(stack, p.np, p.cfg, slot.run.wallSeconds, slot.run.events);
  });
  for (Slot& slot : slots)
    gSimCache[slot.key].push_back(std::move(slot.run));
}

iolib::CheckpointResult runSim(int np, const iolib::StrategyConfig& cfg,
                               std::uint64_t seed) {
  const auto cached = gSimCache.find(pointKey(np, cfg, seed));
  if (cached != gSimCache.end() && !cached->second.empty()) {
    CachedRun run = std::move(cached->second.front());
    cached->second.pop_front();
    if (cached->second.empty()) gSimCache.erase(cached);
    // Replayed at consumption time so the perf record keeps serial order.
    perfRecordSim(run.label, run.wallSeconds, run.events, np, cfg,
                  run.result);
    return run.result;
  }
  iolib::SimStackOptions opt;
  opt.seed = seed;
  opt.simcheck = gSimCheckMode;
  opt.flightRecorderEvents = gFlightRecEvents;
  iolib::SimStack stack(np, opt);
  attachObs(stack);
  return runSim(stack, np, cfg);
}

iolib::CheckpointResult runSim(iolib::SimStack& stack, int np,
                               const iolib::StrategyConfig& cfg) {
  double wall = 0.0;
  std::uint64_t events = 0;
  auto result = runMeasured(stack, np, cfg, wall, events);
  perfRecordSim("np=" + std::to_string(np) + " " + cfg.describe(), wall,
                events, np, cfg, result);
  return result;
}

std::vector<Approach> paperApproaches(int np) {
  using iolib::StrategyConfig;
  return {
      {"1PFPP", StrategyConfig::onePfpp()},
      {"coIO, nf=1", StrategyConfig::coIo(1)},
      {"coIO, np:nf=64:1", StrategyConfig::coIo(np / 64)},
      {"rbIO, 64:1, nf=1", StrategyConfig::rbIo(64, false)},
      {"rbIO, 64:1, nf=ng", StrategyConfig::rbIo(64, true)},
  };
}

}  // namespace bgckpt::bench
