// Ablation: the ROMIO/BG/P design choices the paper leans on —
//  (a) file-domain alignment to filesystem block boundaries (the lock-
//      contention optimisation of Liao & Choudhary cited in Section V-B),
//  (b) the "bgp_nodes_pset" aggregator-count hint,
//  (c) the deferred-open optimisation.
// Each is toggled in isolation for coIO on 16K ranks.
#include <cstdio>

#include "common.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

namespace {

struct Outcome {
  double bandwidth = 0;
  std::uint64_t revocations = 0;
  std::uint64_t fsOpens = 0;
};

Outcome runHints(int np, const io::Hints& hints, int nf) {
  // Noise-free: an ablation isolates one knob, so the background-load
  // lottery is switched off.
  iolib::SimStackOptions opt;
  opt.noise = stor::NoiseModel::none();
  iolib::SimStack stack(np, opt);
  bgckpt::bench::attachObs(stack);
  auto cfg = iolib::StrategyConfig::coIo(nf);
  cfg.hints = hints;
  const auto r = runSim(stack, np, cfg);
  return {r.bandwidth, stack.fsys.totalRevocations(), 0};
}

}  // namespace

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Ablation - ROMIO/BG-P knobs under coIO",
         "File-domain alignment, aggregators per pset, deferred open.");

  constexpr int kNp = 16384;

  std::printf("\n(a) file-domain alignment, coIO nf=1:\n");
  io::Hints aligned;
  io::Hints unaligned;
  unaligned.alignFileDomains = false;
  const auto withAlign = runHints(kNp, aligned, 1);
  const auto noAlign = runHints(kNp, unaligned, 1);
  std::printf("    aligned  : %8s  %8llu revocations\n",
              gbs(withAlign.bandwidth).c_str(),
              static_cast<unsigned long long>(withAlign.revocations));
  std::printf("    unaligned: %8s  %8llu revocations\n",
              gbs(noAlign.bandwidth).c_str(),
              static_cast<unsigned long long>(noAlign.revocations));

  std::printf("\n(b) bgp_nodes_pset (aggregators per pset), coIO nf=1:\n");
  std::vector<std::pair<int, double>> aggSweep;
  for (int perPset : {1, 2, 4, 8, 16, 32}) {
    io::Hints hints;
    hints.bgpNodesPset = perPset;
    const auto out = runHints(kNp, hints, 1);
    aggSweep.emplace_back(perPset, out.bandwidth);
    std::printf("    bgp_nodes_pset=%2d (%4d aggregators): %s\n", perPset,
                perPset * 64, gbs(out.bandwidth).c_str());
    std::fflush(stdout);
  }

  std::printf("\n(c) deferred open, coIO 64:1:\n");
  io::Hints deferred;
  io::Hints eager;
  eager.deferredOpen = false;
  const auto defOut = runHints(kNp, deferred, kNp / 64);
  const auto eagerOut = runHints(kNp, eager, kNp / 64);
  std::printf("    deferred (aggregators only): %s\n",
              gbs(defOut.bandwidth).c_str());
  std::printf("    eager (every rank opens)   : %s\n",
              gbs(eagerOut.bandwidth).c_str());

  std::vector<Check> checks;
  // Per-round domain migration legitimately renegotiates tokens either
  // way; alignment removes the *false sharing* of boundary blocks on top.
  checks.push_back({"alignment reduces lock revocations",
                    withAlign.revocations < noAlign.revocations,
                    std::to_string(withAlign.revocations) + " vs " +
                        std::to_string(noAlign.revocations)});
  checks.push_back({"alignment does not hurt bandwidth",
                    withAlign.bandwidth > 0.9 * noAlign.bandwidth,
                    gbs(withAlign.bandwidth) + " vs " +
                        gbs(noAlign.bandwidth)});
  // More aggregators help until system limits take over.
  checks.push_back({"1 aggregator/pset underperforms the default 8",
                    aggSweep[0].second < aggSweep[3].second,
                    gbs(aggSweep[0].second) + " vs " +
                        gbs(aggSweep[3].second)});
  checks.push_back({"32/pset is not better than 8/pset (system-bound)",
                    aggSweep[5].second < 1.25 * aggSweep[3].second,
                    gbs(aggSweep[5].second) + " vs " +
                        gbs(aggSweep[3].second)});
  checks.push_back({"deferred open >= eager open",
                    defOut.bandwidth > 0.95 * eagerOut.bandwidth,
                    gbs(defOut.bandwidth) + " vs " +
                        gbs(eagerOut.bandwidth)});
  return reportChecks(checks);
}
