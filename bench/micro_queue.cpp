// Event-queue microbenchmarks: the tiered (ladder) queue against the
// std::priority_queue reference, across the timestamp distributions that
// stress different tiers.
//
//   Uniform          every event lands in the near-ring window sizing path
//   BimodalNearFar   a near cluster plus a far cluster: exercises the far
//                    pool partition scans and window reseeding
//   SelfRescheduling a fixed population of processes that each reschedule
//                    themselves on dispatch — the steady-state shape of the
//                    figure benches; exercises the active-bucket/near-heap
//                    insert path and event-pool recycling
//   ZeroDelayStorm   chains of zero-delay wakeups — the now-FIFO tier
//   ShardedRing      the same self-rescheduling population split across
//                    1/2/4/8 shards of a ShardGroup, at varying cross-shard
//                    traffic ratios, cooperative vs threaded — the A/B for
//                    the conservative-window parallel core
//
// Run with --benchmark_filter=Tiered or =Legacy to compare queue sides,
// =Coop/=Threaded for the sharded core. With --perf-json each sharded case
// also lands one run record (tagged with its thread count) for
// tools/perf_compare.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>

#include "common.hpp"
#include "machine/bgp.hpp"
#include "obs/runtimeprof.hpp"
#include "simcore/random.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/shard.hpp"

namespace {

using namespace bgckpt::sim;

Scheduler::Config config(bool legacy, std::size_t hint) {
  Scheduler::Config cfg;
  cfg.legacyQueue = legacy;
  cfg.expectedEvents = hint;
  return cfg;
}

void runUniform(benchmark::State& state, bool legacy) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    RngStream rng(7, "uniform");
    state.ResumeTiming();
    Scheduler sched(config(legacy, static_cast<std::size_t>(n)));
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i)
      sched.scheduleCall(rng.uniform(0.0, 10.0), [&sum] { ++sum; });
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
void BM_Uniform_Tiered(benchmark::State& s) { runUniform(s, false); }
void BM_Uniform_Legacy(benchmark::State& s) { runUniform(s, true); }
BENCHMARK(BM_Uniform_Tiered)->Arg(1 << 16);
BENCHMARK(BM_Uniform_Legacy)->Arg(1 << 16);

void runBimodal(benchmark::State& state, bool legacy) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    RngStream rng(7, "bimodal");
    state.ResumeTiming();
    Scheduler sched(config(legacy, static_cast<std::size_t>(n)));
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      // 80% of events within microseconds, 20% whole minutes out — the
      // shape of a checkpoint: dense I/O traffic plus long compute delays.
      const double dt = (i % 5 != 0) ? rng.uniform(0.0, 1e-5)
                                     : rng.uniform(60.0, 660.0);
      sched.scheduleCall(dt, [&sum] { ++sum; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
void BM_BimodalNearFar_Tiered(benchmark::State& s) { runBimodal(s, false); }
void BM_BimodalNearFar_Legacy(benchmark::State& s) { runBimodal(s, true); }
BENCHMARK(BM_BimodalNearFar_Tiered)->Arg(1 << 16);
BENCHMARK(BM_BimodalNearFar_Legacy)->Arg(1 << 16);

void runSelfRescheduling(benchmark::State& state, bool legacy) {
  const auto procs = static_cast<int>(state.range(0));
  constexpr int kRounds = 64;
  for (auto _ : state) {
    Scheduler sched(config(legacy, static_cast<std::size_t>(procs)));
    auto body = [](Scheduler& s, int id) -> Task<> {
      // Deterministic per-process jitter keeps timestamps interleaved
      // without consuming RNG (identical work on both queue sides).
      double dt = 1e-6 * static_cast<double>(1 + id % 17);
      for (int r = 0; r < kRounds; ++r) {
        co_await s.delay(dt);
        dt = dt * 1.1 + 1e-7;
      }
    };
    for (int p = 0; p < procs; ++p) sched.spawn(body(sched, p));
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * procs * kRounds);
}
void BM_SelfRescheduling_Tiered(benchmark::State& s) {
  runSelfRescheduling(s, false);
}
void BM_SelfRescheduling_Legacy(benchmark::State& s) {
  runSelfRescheduling(s, true);
}
BENCHMARK(BM_SelfRescheduling_Tiered)->Arg(1 << 12);
BENCHMARK(BM_SelfRescheduling_Legacy)->Arg(1 << 12);

void runZeroDelayStorm(benchmark::State& state, bool legacy) {
  const auto chains = static_cast<int>(state.range(0));
  constexpr int kDepth = 64;
  for (auto _ : state) {
    Scheduler sched(config(legacy, static_cast<std::size_t>(chains)));
    std::uint64_t sum = 0;
    // Each chain re-arms itself at zero delay kDepth times: the wakeup
    // cascade Resource::release / Gate::fire produce.
    std::function<void(int)> arm = [&](int remaining) {
      ++sum;
      if (remaining > 0) sched.scheduleCall(0.0, [&arm, remaining] {
        arm(remaining - 1);
      });
    };
    for (int c = 0; c < chains; ++c)
      sched.scheduleCall(0.0, [&arm] { arm(kDepth - 1); });
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * chains * kDepth);
}
void BM_ZeroDelayStorm_Tiered(benchmark::State& s) {
  runZeroDelayStorm(s, false);
}
void BM_ZeroDelayStorm_Legacy(benchmark::State& s) {
  runZeroDelayStorm(s, true);
}
BENCHMARK(BM_ZeroDelayStorm_Tiered)->Arg(1 << 10);
BENCHMARK(BM_ZeroDelayStorm_Legacy)->Arg(1 << 10);

// The sharded A/B: a fixed population of self-rescheduling actors spread
// over S shards. Every `crossEvery`-th reschedule hops to the next shard
// through the mailbox path (0 = never); the rest re-arm locally at delays
// below the lookahead. The lookahead is the physically-derived minimum
// cross-partition latency on the BG/P torus (one hop).
struct ShardedRing {
  ShardGroup* group = nullptr;
  int rounds = 0;
  int crossEvery = 0;
  Duration lookahead = 0.0;

  void step(unsigned shard, int actor, int round) {
    if (round >= rounds) return;
    const bool hop = crossEvery > 0 && group->shards() > 1 &&
                     (actor + round) % crossEvery == 0;
    if (hop) {
      const unsigned dst = (shard + 1) % group->shards();
      group->send(shard, dst, lookahead,
                  [this, dst, actor, round] { step(dst, actor, round + 1); });
      return;
    }
    const double dt = lookahead * (0.1 + 0.01 * static_cast<double>(actor % 7));
    group->shard(shard).scheduleCall(
        dt, [this, shard, actor, round] { step(shard, actor, round + 1); });
  }
};

void runShardedRing(benchmark::State& state, bool threaded,
                    bool profiled = false) {
  const auto shards = static_cast<unsigned>(state.range(0));
  const auto crossEvery = static_cast<int>(state.range(1));
  constexpr int kActors = 1024;  // total, split across shards
  constexpr int kRounds = 64;
  const Duration lookahead = bgckpt::machine::ComputeConfig{}.torusHopLatency;
  const unsigned threads = threaded ? shards : 1;
  // The Profiled variant installs a scratch RuntimeProfiler so "Threaded vs
  // Profiled" on the same filter is the active-overhead A/B; the plain
  // variants run with the observer hooks dormant (the null-check branch),
  // which is what the coop-vs-threaded speedup gate and the committed
  // baselines keep honest. When --runtime-profile is already on, the
  // process-wide profiler is left in place instead.
  std::unique_ptr<bgckpt::obs::RuntimeProfiler> localProf;
  if (profiled && !bgckpt::bench::runtimeProfileActive()) {
    localProf = std::make_unique<bgckpt::obs::RuntimeProfiler>();
    localProf->install();
  }
  std::uint64_t events = 0;
  double wall = 0.0;
  for (auto _ : state) {
    ShardGroup::Config cfg;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.lookahead = lookahead;
    ShardGroup group(cfg);
    ShardedRing ring{&group, kRounds, crossEvery, lookahead};
    for (int a = 0; a < kActors; ++a) {
      const unsigned shard = static_cast<unsigned>(a) % shards;
      group.postSetup(shard, [&ring, shard, a](Scheduler& sched) {
        sched.scheduleCall(0.0, [&ring, shard, a] { ring.step(shard, a, 0); });
      });
    }
    const bgckpt::bench::WallTimer timer;
    const ShardGroup::Stats stats = group.run();
    wall += timer.seconds();
    events += stats.events;
    benchmark::DoNotOptimize(stats.events);
  }
  if (localProf) localProf->uninstall();
  state.SetItemsProcessed(state.iterations() * kActors * kRounds);
  const std::string cross =
      crossEvery > 0 ? "1/" + std::to_string(crossEvery) : "none";
  bgckpt::bench::perfRecord(
      "sharded_ring shards=" + std::to_string(shards) + " cross=" + cross +
          (threaded ? " threaded" : " coop") + (profiled ? " profiled" : ""),
      wall, events, threads);
}
void BM_ShardedRing_Coop(benchmark::State& s) { runShardedRing(s, false); }
void BM_ShardedRing_Threaded(benchmark::State& s) { runShardedRing(s, true); }
void BM_ShardedRing_Profiled(benchmark::State& s) {
  runShardedRing(s, true, true);
}
// {shards, crossEvery}: cross-shard ratios 0, ~1.6% (1/64), 12.5% (1/8).
// Iterations are pinned (not min-time adaptive) so a coop run and a threaded
// run of the same case record identical event totals in --perf-json — that
// is what lets CI gate `perf_compare --min-speedup` on the pair.
BENCHMARK(BM_ShardedRing_Coop)
    ->Iterations(10)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({2, 64})
    ->Args({2, 8})
    ->Args({4, 0})
    ->Args({4, 64})
    ->Args({4, 8})
    ->Args({8, 0})
    ->Args({8, 64})
    ->Args({8, 8});
BENCHMARK(BM_ShardedRing_Threaded)
    ->Iterations(10)
    ->Args({2, 0})
    ->Args({2, 64})
    ->Args({2, 8})
    ->Args({4, 0})
    ->Args({4, 64})
    ->Args({4, 8})
    ->Args({8, 0})
    ->Args({8, 64})
    ->Args({8, 8});
BENCHMARK(BM_ShardedRing_Profiled)
    ->Iterations(10)
    ->Args({8, 0})
    ->Args({8, 64})
    ->Args({8, 8});

}  // namespace

// Custom main (instead of benchmark_main): parse the shared bench flags
// first so the sharded cases can land --perf-json run records, then flush
// them after the benchmark run.
int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return bgckpt::bench::perfFlush() ? 0 : 1;
}
