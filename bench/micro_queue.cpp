// Event-queue microbenchmarks: the tiered (ladder) queue against the
// std::priority_queue reference, across the timestamp distributions that
// stress different tiers.
//
//   Uniform          every event lands in the near-ring window sizing path
//   BimodalNearFar   a near cluster plus a far cluster: exercises the far
//                    pool partition scans and window reseeding
//   SelfRescheduling a fixed population of processes that each reschedule
//                    themselves on dispatch — the steady-state shape of the
//                    figure benches; exercises the active-bucket/near-heap
//                    insert path and event-pool recycling
//   ZeroDelayStorm   chains of zero-delay wakeups — the now-FIFO tier
//
// Run with --benchmark_filter=Tiered or =Legacy to compare sides.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "simcore/random.hpp"
#include "simcore/scheduler.hpp"

namespace {

using namespace bgckpt::sim;

Scheduler::Config config(bool legacy, std::size_t hint) {
  Scheduler::Config cfg;
  cfg.legacyQueue = legacy;
  cfg.expectedEvents = hint;
  return cfg;
}

void runUniform(benchmark::State& state, bool legacy) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    RngStream rng(7, "uniform");
    state.ResumeTiming();
    Scheduler sched(config(legacy, static_cast<std::size_t>(n)));
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i)
      sched.scheduleCall(rng.uniform(0.0, 10.0), [&sum] { ++sum; });
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
void BM_Uniform_Tiered(benchmark::State& s) { runUniform(s, false); }
void BM_Uniform_Legacy(benchmark::State& s) { runUniform(s, true); }
BENCHMARK(BM_Uniform_Tiered)->Arg(1 << 16);
BENCHMARK(BM_Uniform_Legacy)->Arg(1 << 16);

void runBimodal(benchmark::State& state, bool legacy) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    RngStream rng(7, "bimodal");
    state.ResumeTiming();
    Scheduler sched(config(legacy, static_cast<std::size_t>(n)));
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      // 80% of events within microseconds, 20% whole minutes out — the
      // shape of a checkpoint: dense I/O traffic plus long compute delays.
      const double dt = (i % 5 != 0) ? rng.uniform(0.0, 1e-5)
                                     : rng.uniform(60.0, 660.0);
      sched.scheduleCall(dt, [&sum] { ++sum; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
void BM_BimodalNearFar_Tiered(benchmark::State& s) { runBimodal(s, false); }
void BM_BimodalNearFar_Legacy(benchmark::State& s) { runBimodal(s, true); }
BENCHMARK(BM_BimodalNearFar_Tiered)->Arg(1 << 16);
BENCHMARK(BM_BimodalNearFar_Legacy)->Arg(1 << 16);

void runSelfRescheduling(benchmark::State& state, bool legacy) {
  const auto procs = static_cast<int>(state.range(0));
  constexpr int kRounds = 64;
  for (auto _ : state) {
    Scheduler sched(config(legacy, static_cast<std::size_t>(procs)));
    auto body = [](Scheduler& s, int id) -> Task<> {
      // Deterministic per-process jitter keeps timestamps interleaved
      // without consuming RNG (identical work on both queue sides).
      double dt = 1e-6 * static_cast<double>(1 + id % 17);
      for (int r = 0; r < kRounds; ++r) {
        co_await s.delay(dt);
        dt = dt * 1.1 + 1e-7;
      }
    };
    for (int p = 0; p < procs; ++p) sched.spawn(body(sched, p));
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * procs * kRounds);
}
void BM_SelfRescheduling_Tiered(benchmark::State& s) {
  runSelfRescheduling(s, false);
}
void BM_SelfRescheduling_Legacy(benchmark::State& s) {
  runSelfRescheduling(s, true);
}
BENCHMARK(BM_SelfRescheduling_Tiered)->Arg(1 << 12);
BENCHMARK(BM_SelfRescheduling_Legacy)->Arg(1 << 12);

void runZeroDelayStorm(benchmark::State& state, bool legacy) {
  const auto chains = static_cast<int>(state.range(0));
  constexpr int kDepth = 64;
  for (auto _ : state) {
    Scheduler sched(config(legacy, static_cast<std::size_t>(chains)));
    std::uint64_t sum = 0;
    // Each chain re-arms itself at zero delay kDepth times: the wakeup
    // cascade Resource::release / Gate::fire produce.
    std::function<void(int)> arm = [&](int remaining) {
      ++sum;
      if (remaining > 0) sched.scheduleCall(0.0, [&arm, remaining] {
        arm(remaining - 1);
      });
    };
    for (int c = 0; c < chains; ++c)
      sched.scheduleCall(0.0, [&arm] { arm(kDepth - 1); });
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * chains * kDepth);
}
void BM_ZeroDelayStorm_Tiered(benchmark::State& s) {
  runZeroDelayStorm(s, false);
}
void BM_ZeroDelayStorm_Legacy(benchmark::State& s) {
  runZeroDelayStorm(s, true);
}
BENCHMARK(BM_ZeroDelayStorm_Tiered)->Arg(1 << 10);
BENCHMARK(BM_ZeroDelayStorm_Legacy)->Arg(1 << 10);

}  // namespace
