// Microbenchmarks of the discrete-event kernel: these bound how large a
// simulated machine the figure harnesses can afford.
#include <benchmark/benchmark.h>

#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "simcore/channel.hpp"
#include "simcore/random.hpp"
#include "simcore/resource.hpp"
#include "simcore/scheduler.hpp"

namespace {

using namespace bgckpt::sim;

void BM_ScheduleAndRunCallbacks(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    int sum = 0;
    for (int i = 0; i < n; ++i)
      sched.scheduleCall(static_cast<double>(i % 97), [&sum] { ++sum; });
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScheduleAndRunCallbacks)->Arg(1 << 12)->Arg(1 << 16);

void BM_SpawnCoroutines(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    auto body = [](Scheduler& s) -> Task<> { co_await s.delay(1.0); };
    for (int i = 0; i < n; ++i) sched.spawn(body(sched));
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpawnCoroutines)->Arg(1 << 10)->Arg(1 << 14);

void BM_PingPongChannel(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    Channel<int> ab(sched), ba(sched);
    auto ping = [](Channel<int>& out, Channel<int>& in, int n) -> Task<> {
      for (int i = 0; i < n; ++i) {
        out.push(i);
        co_await in.recv();
      }
    };
    auto pong = [](Channel<int>& in, Channel<int>& out, int n) -> Task<> {
      for (int i = 0; i < n; ++i) {
        co_await in.recv();
        out.push(i);
      }
    };
    sched.spawn(ping(ab, ba, rounds));
    sched.spawn(pong(ab, ba, rounds));
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_PingPongChannel)->Arg(1 << 12);

void BM_ResourceContention(benchmark::State& state) {
  const auto waiters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    Resource res(sched, 4);
    auto body = [](Scheduler& s, Resource& r) -> Task<> {
      for (int i = 0; i < 8; ++i) {
        co_await r.acquire();
        co_await s.delay(0.001);
        r.release();
      }
    };
    for (int i = 0; i < waiters; ++i) sched.spawn(body(sched, res));
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * waiters * 8);
}
BENCHMARK(BM_ResourceContention)->Arg(256)->Arg(2048);

// Event-queue stress cases: timestamp distributions chosen to exercise each
// tier of the ladder queue (see scheduler.hpp). micro_queue.cpp runs the
// same shapes against the legacy std::priority_queue for A/B comparison.

void BM_QueueUniform(benchmark::State& state) {
  // Uniform spread: events flow far pool -> near ring -> dispatch.
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    RngStream rng(7, "uniform");
    state.ResumeTiming();
    Scheduler sched;
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i)
      sched.scheduleCall(rng.uniform(0.0, 10.0), [&sum] { ++sum; });
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QueueUniform)->Arg(1 << 16);

void BM_QueueBimodalNearFar(benchmark::State& state) {
  // Dense near-cluster plus sparse far-cluster: repeated window reseeds and
  // far-pool partition scans.
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    RngStream rng(7, "bimodal");
    state.ResumeTiming();
    Scheduler sched;
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      const double dt = (i % 5 != 0) ? rng.uniform(0.0, 1e-5)
                                     : rng.uniform(60.0, 660.0);
      sched.scheduleCall(dt, [&sum] { ++sum; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QueueBimodalNearFar)->Arg(1 << 16);

void BM_QueueSelfRescheduling(benchmark::State& state) {
  // Fixed population, each process re-arms itself on dispatch: short delays
  // land in the sorted active bucket (near-heap path) at steady state.
  const auto procs = static_cast<int>(state.range(0));
  constexpr int kRounds = 64;
  for (auto _ : state) {
    Scheduler sched;
    auto body = [](Scheduler& s, int id) -> Task<> {
      double dt = 1e-6 * static_cast<double>(1 + id % 17);
      for (int r = 0; r < kRounds; ++r) {
        co_await s.delay(dt);
        dt = dt * 1.1 + 1e-7;
      }
    };
    for (int p = 0; p < procs; ++p) sched.spawn(body(sched, p));
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * procs * kRounds);
}
BENCHMARK(BM_QueueSelfRescheduling)->Arg(1 << 12);

void BM_RngStream(benchmark::State& state) {
  RngStream rng(1, "bench");
  double acc = 0;
  for (auto _ : state) acc += rng.lognormal(1.0, 0.5);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngStream);

// Zero-overhead-when-off guard: an instrumented layer's probe update must
// compile down to a predictable branch on the cached `live` flag when no
// --telemetry sink is attached. If this benchmark regresses to more than a
// few ns/op, a probe stopped being dormant-by-default.
void BM_TelemetryProbeDisabled(benchmark::State& state) {
  bgckpt::obs::Observability obs;
  auto& probe = obs.telemetry().probe("bench.gauge",
                                      bgckpt::obs::ProbeKind::kGauge, 8);
  double v = 0;
  for (auto _ : state) {
    probe.add(3, 1.0);
    probe.add(3, -1.0);
    benchmark::DoNotOptimize(v += 1.0);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TelemetryProbeDisabled);

// The enabled path pays bucket integration; this bounds the --telemetry
// run-time tax per probe update.
void BM_TelemetryProbeEnabled(benchmark::State& state) {
  Scheduler sched;
  bgckpt::obs::Observability obs;
  obs.telemetry().enable(sched, 0.25);
  auto& probe = obs.telemetry().probe("bench.gauge",
                                      bgckpt::obs::ProbeKind::kGauge, 8);
  for (auto _ : state) {
    probe.add(3, 1.0);
    probe.add(3, -1.0);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TelemetryProbeEnabled);

}  // namespace
