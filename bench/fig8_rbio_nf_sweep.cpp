// Figure 8: rbIO (nf=ng) bandwidth as a function of the number of files,
// for 16K/32K/64K processors. The paper's observation: the GPFS deployment
// on Intrepid prefers ~1024 concurrently-written files at every scale —
// too few files underuse the per-stream service slots, too many thrash the
// storage arrays and the directory metadata.
#include <cstdio>
#include <map>

#include "common.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Figure 8 - rbIO write performance vs number of files",
         "rbIO with nf = ng, sweeping the writer-group ratio.");

  const std::vector<int> scales = {16384, 32768, 65536};
  const std::vector<int> files = {256, 512, 1024, 2048, 4096};
  std::vector<SimPoint> points;
  for (int np : scales)
    for (int nf : files)
      if (np / nf >= 2)
        points.push_back({np, iolib::StrategyConfig::rbIo(np / nf, true)});
  prefetchSims(points);

  std::map<int, std::map<int, double>> bw;  // np -> nf -> GB/s

  for (int np : scales) {
    std::printf("\n-- np = %d --\n", np);
    std::vector<analysis::Bar> bars;
    for (int nf : files) {
      const int groupSize = np / nf;
      if (groupSize < 2) continue;
      const auto r = runSim(np, iolib::StrategyConfig::rbIo(groupSize, true));
      bw[np][nf] = r.bandwidth;
      bars.push_back({"nf=" + std::to_string(nf), r.bandwidth / 1e9});
      std::printf("  nf=%5d (np:ng=%3d:1)  %-12s  makespan %s\n", nf,
                  groupSize, gbs(r.bandwidth).c_str(),
                  secs(r.makespan).c_str());
      std::fflush(stdout);
    }
    std::printf("%s", analysis::barChart(bars, "GB/s").c_str());
  }

  std::vector<Check> checks;
  for (int np : scales) {
    int best = 0;
    double bestBw = 0;
    for (const auto& [nf, v] : bw[np])
      if (v > bestBw) {
        bestBw = v;
        best = nf;
      }
    checks.push_back({"optimum at nf=1024 for np=" + std::to_string(np),
                      best == 1024,
                      "best nf=" + std::to_string(best) + " at " +
                          gbs(bestBw)});
  }
  for (int np : scales) {
    checks.push_back(
        {"too few files underperform at np=" + std::to_string(np),
         bw[np][256] < 0.8 * bw[np][1024],
         gbs(bw[np][256]) + " vs " + gbs(bw[np][1024])});
    checks.push_back(
        {"too many files underperform at np=" + std::to_string(np),
         bw[np][4096] < 0.9 * bw[np][1024],
         gbs(bw[np][4096]) + " vs " + gbs(bw[np][1024])});
  }
  return reportChecks(checks);
}
