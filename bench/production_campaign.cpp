// Extension: the end-to-end production experiment behind Eq. (1) and the
// abstract's "25x production performance improvement", measured directly
// rather than composed — a full campaign of compute steps with checkpoints
// every nc steps, on 16,384 simulated ranks. rbIO's dedicated writers
// drain checkpoints concurrently with computation, so its I/O cost only
// surfaces when the cadence outpaces the writers.
//
// Sweepable: --np N (multiple of 64 with a valid Intrepid partition, so
// 256/512/1024/...), --steps N, --every N. Any non-default value is a
// smoke/sweep run: the paper-shape checks assume the 16,384-rank
// production campaign and are skipped, but every strategy row still lands
// in the --perf-json report so `tools/sweep` can ledger the point.
#include <cstdio>
#include <cstring>

#include "common.hpp"
#include "iolib/campaign.hpp"
#include "nekcem/perf_model.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

namespace {

int intFlag(int argc, char** argv, const char* name, int fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc)
      return std::atoi(argv[i + 1]);
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
      return std::atoi(argv[i] + len + 1);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  const int np = intFlag(argc, argv, "--np", 16384);
  const int steps = intFlag(argc, argv, "--steps", 60);
  const int every = intFlag(argc, argv, "--every", 20);
  if (np < 64 || np % 64 != 0 || steps < 1 || every < 1) {
    std::fprintf(stderr,
                 "production_campaign: need --np >= 64 (multiple of 64), "
                 "--steps >= 1, --every >= 1\n");
    return 2;
  }
  const bool production = np == 16384 && steps == 60 && every == 20;
  banner("Production campaign - end-to-end Eq. (1), measured directly",
         "60 compute steps, checkpoint every 20, 16,384 ranks.");

  nekcem::PerfModel perf;
  const auto spec = iolib::CheckpointSpec::nekcemWeakScaling(np);
  iolib::CampaignConfig base;
  base.steps = steps;
  base.checkpointEvery = every;
  base.computeStepSeconds = perf.weakScalingStepSeconds();

  struct Row {
    const char* name;
    iolib::StrategyConfig strategy;
    iolib::CampaignResult result;
  };
  std::vector<Row> rows = {
      {"1PFPP", iolib::StrategyConfig::onePfpp(), {}},
      {"coIO 64:1", iolib::StrategyConfig::coIo(np / 64), {}},
      {"rbIO 64:1 nf=ng", iolib::StrategyConfig::rbIo(64, true), {}},
  };
  if (!production)
    std::printf("\nsweep point: np=%d steps=%d every=%d (shape checks "
                "skipped)\n",
                np, steps, every);
  std::printf("\ncompute-only time: %.1f s (%d steps x %.3f s)\n",
              base.steps * base.computeStepSeconds, steps,
              base.computeStepSeconds);
  std::printf("\n  %-16s | %10s | %12s | %10s\n", "strategy", "total",
              "I/O overhead", "% overhead");
  for (auto& row : rows) {
    iolib::CampaignConfig cfg = base;
    cfg.strategy = row.strategy;
    iolib::SimStack stack(np);
    bgckpt::bench::attachObs(stack);
    WallTimer timer;
    row.result = iolib::runCampaign(stack, spec, cfg);
    perfRecord(std::string("np=") + std::to_string(np) + " campaign " +
                   row.name,
               timer.seconds(), stack.sched.eventsProcessed());
    std::printf("  %-16s | %8.1f s | %10.1f s | %9.1f%%\n", row.name,
                row.result.totalSeconds, row.result.ioOverheadSeconds,
                100.0 * row.result.ioOverheadSeconds /
                    row.result.totalSeconds);
    std::fflush(stdout);
  }
  const double vsPfpp = rows[2].result.improvementOver(rows[0].result);
  const double vsCoIo = rows[2].result.improvementOver(rows[1].result);
  std::printf("\nrbIO end-to-end improvement: %.1fx over 1PFPP, %.2fx over "
              "coIO 64:1\n",
              vsPfpp, vsCoIo);

  std::vector<Check> checks;
  if (!production) return reportChecks(checks);
  // At 16K with nc=20 the writer drain (~5 s) slightly exceeds the cadence
  // (~4.4 s), so writers trail the computation — the paper's own caveat
  // that writers must "flush their I/O requests roughly in the time
  // between writes". The overhead must still be far below the blocking
  // strategies'.
  checks.push_back({"rbIO campaign overhead modest (<40%) and below coIO's",
                    rows[2].result.ioOverheadSeconds <
                            0.4 * rows[2].result.totalSeconds &&
                        rows[2].result.ioOverheadSeconds <
                            rows[1].result.ioOverheadSeconds,
                    std::to_string(100.0 * rows[2].result.ioOverheadSeconds /
                                   rows[2].result.totalSeconds) +
                        "%"});
  checks.push_back({"1PFPP campaign is dominated by I/O (>80% overhead)",
                    rows[0].result.ioOverheadSeconds >
                        0.8 * rows[0].result.totalSeconds,
                    std::to_string(rows[0].result.ioOverheadSeconds) + " s"});
  checks.push_back({"tens-of-x end-to-end improvement over 1PFPP "
                    "(paper: ~25x)",
                    vsPfpp > 10 && vsPfpp < 300,
                    std::to_string(vsPfpp) + "x"});
  checks.push_back({"rbIO also beats blocking coIO end to end",
                    vsCoIo > 1.0, std::to_string(vsCoIo) + "x"});
  return reportChecks(checks);
}
