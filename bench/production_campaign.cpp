// Extension: the end-to-end production experiment behind Eq. (1) and the
// abstract's "25x production performance improvement", measured directly
// rather than composed — a full campaign of compute steps with checkpoints
// every nc steps, on 16,384 simulated ranks. rbIO's dedicated writers
// drain checkpoints concurrently with computation, so its I/O cost only
// surfaces when the cadence outpaces the writers.
#include <cstdio>

#include "common.hpp"
#include "iolib/campaign.hpp"
#include "nekcem/perf_model.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Production campaign - end-to-end Eq. (1), measured directly",
         "60 compute steps, checkpoint every 20, 16,384 ranks.");

  constexpr int kNp = 16384;
  nekcem::PerfModel perf;
  const auto spec = iolib::CheckpointSpec::nekcemWeakScaling(kNp);
  iolib::CampaignConfig base;
  base.steps = 60;
  base.checkpointEvery = 20;
  base.computeStepSeconds = perf.weakScalingStepSeconds();

  struct Row {
    const char* name;
    iolib::StrategyConfig strategy;
    iolib::CampaignResult result;
  };
  std::vector<Row> rows = {
      {"1PFPP", iolib::StrategyConfig::onePfpp(), {}},
      {"coIO 64:1", iolib::StrategyConfig::coIo(kNp / 64), {}},
      {"rbIO 64:1 nf=ng", iolib::StrategyConfig::rbIo(64, true), {}},
  };
  std::printf("\ncompute-only time: %.1f s (60 steps x %.3f s)\n",
              base.steps * base.computeStepSeconds, base.computeStepSeconds);
  std::printf("\n  %-16s | %10s | %12s | %10s\n", "strategy", "total",
              "I/O overhead", "% overhead");
  for (auto& row : rows) {
    iolib::CampaignConfig cfg = base;
    cfg.strategy = row.strategy;
    iolib::SimStack stack(kNp);
    bgckpt::bench::attachObs(stack);
    row.result = iolib::runCampaign(stack, spec, cfg);
    std::printf("  %-16s | %8.1f s | %10.1f s | %9.1f%%\n", row.name,
                row.result.totalSeconds, row.result.ioOverheadSeconds,
                100.0 * row.result.ioOverheadSeconds /
                    row.result.totalSeconds);
    std::fflush(stdout);
  }
  const double vsPfpp = rows[2].result.improvementOver(rows[0].result);
  const double vsCoIo = rows[2].result.improvementOver(rows[1].result);
  std::printf("\nrbIO end-to-end improvement: %.1fx over 1PFPP, %.2fx over "
              "coIO 64:1\n",
              vsPfpp, vsCoIo);

  std::vector<Check> checks;
  // At 16K with nc=20 the writer drain (~5 s) slightly exceeds the cadence
  // (~4.4 s), so writers trail the computation — the paper's own caveat
  // that writers must "flush their I/O requests roughly in the time
  // between writes". The overhead must still be far below the blocking
  // strategies'.
  checks.push_back({"rbIO campaign overhead modest (<40%) and below coIO's",
                    rows[2].result.ioOverheadSeconds <
                            0.4 * rows[2].result.totalSeconds &&
                        rows[2].result.ioOverheadSeconds <
                            rows[1].result.ioOverheadSeconds,
                    std::to_string(100.0 * rows[2].result.ioOverheadSeconds /
                                   rows[2].result.totalSeconds) +
                        "%"});
  checks.push_back({"1PFPP campaign is dominated by I/O (>80% overhead)",
                    rows[0].result.ioOverheadSeconds >
                        0.8 * rows[0].result.totalSeconds,
                    std::to_string(rows[0].result.ioOverheadSeconds) + " s"});
  checks.push_back({"tens-of-x end-to-end improvement over 1PFPP "
                    "(paper: ~25x)",
                    vsPfpp > 10 && vsPfpp < 300,
                    std::to_string(vsPfpp) + "x"});
  checks.push_back({"rbIO also beats blocking coIO end to end",
                    vsCoIo > 1.0, std::to_string(vsCoIo) + "x"});
  return reportChecks(checks);
}
