// Shared plumbing for the figure/table reproduction harnesses.
//
// Every harness prints:
//   1. a banner naming the paper artifact it regenerates,
//   2. the measured series (plus the paper's approximate values where the
//      text/figures state them),
//   3. an ASCII rendering,
//   4. SHAPE CHECK lines — the qualitative claims that must hold (who wins,
//      by roughly what factor, where crossovers fall). A failed check makes
//      the binary exit nonzero.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ascii.hpp"
#include "iolib/strategies.hpp"
#include "simcore/simcheck.hpp"

namespace bgckpt::bench {

struct Check {
  std::string name;
  bool pass = false;
  std::string detail;
};

void banner(const std::string& artifact, const std::string& description);

/// Print all checks; returns the process exit code (0 iff all pass).
int reportChecks(const std::vector<Check>& checks);

/// Format helpers.
std::string gbs(double bytesPerSecond);
std::string secs(double seconds);

/// Parse observability flags from the harness command line:
///   --trace <file>     stream a Chrome trace_event JSON there (open the
///                      file in Perfetto / chrome://tracing), plus a
///                      <file>.jsonl event log for tools/trace_report
///   --metrics <file>   export the metrics registry as JSON there, plus a
///                      CSV twin (.json suffix swapped for .csv)
///   --perf-json <file> write a machine-readable perf record there: one
///                      entry per simulated run (wall seconds, events
///                      processed, events/sec) plus totals. Feed two of
///                      these to tools/perf_compare to gate regressions.
///   --simcheck[=MODE]  enable the runtime invariant checker on every
///                      fresh-stack runSim (MODE: on [default], warn, off;
///                      see simcore/simcheck.hpp). Harnesses that build
///                      their own SimStack honour the SIM_CHECK environment
///                      variable instead.
///   --attr <file>      export per-rank blocked-time attribution there as
///                      JSON, plus a CSV twin (obs/attr.hpp). Announce
///                      lines go to stderr, so figure stdout is unchanged.
///   --critpath <file>  record the causal event graph and write the
///                      critical-path report there as JSON (obs/critpath.hpp)
///   --telemetry[=DT] <file>
///                      sample every registered telemetry probe into
///                      DT-second buckets (default obs::Telemetry::
///                      kDefaultDt) and write the timeseries there as JSON,
///                      plus a CSV twin. Feed the JSON to `trace_report
///                      --timeline` for utilization heatmaps and
///                      server-imbalance stats. Announce lines go to
///                      stderr; figure stdout is byte-identical.
///   --optrace[=RATE] [file]
///                      per-request causal tracing (obs/optrace.hpp): every
///                      checkpoint write op carries a span context from the
///                      issuing rank down to the DDN commit. RATE > 1 keeps
///                      every RATE-th waterfall, RATE in (0,1] is a sampling
///                      probability (default 1 in 64; the slowest requests
///                      are always kept). With a file, the hop-percentile
///                      tables, lineage trees, and tail waterfalls are
///                      exported as JSON for `trace_report --waterfall`.
///                      Announce lines go to stderr; figure stdout is
///                      byte-identical with tracing on.
///   --obs-dir DIR      derive every observability artifact path not given
///                      explicitly (trace/metrics/attr/critpath/telemetry/
///                      optrace + their manifests) as DIR/<artifact>.json,
///                      creating DIR first. Explicit flags win.
///   --flightrec[=N]    keep a flight recorder of the last N (default 256)
///                      trace events per layer per stack; SimChecker
///                      violations and failed SHAPE CHECKs dump it to stderr
///   --runtime-profile[=FILE]
///                      real-time execution profile of the parallel engine
///                      (obs/runtimeprof.hpp): per-shard window phase wall
///                      times, critical-shard attribution, per-parallelFor-
///                      job walls and per-point wall records. FILE defaults
///                      to runtimeprof.json; written at perfFlush with a
///                      manifest sidecar. Feed it to `trace_report
///                      --runtime`. Wall-clock by nature, so the JSON is
///                      NOT byte-stable across runs — it is deliberately
///                      not derived by --obs-dir and excluded from artifact
///                      identity comparisons. Figure stdout stays
///                      byte-identical with profiling on (announce lines go
///                      to stderr).
///   --runtime-trace FILE
///                      with --runtime-profile: also export the real-time
///                      worker spans (window phases, tid = worker) as a
///                      Chrome trace viewable next to the simulated-time
///                      --trace output.
///   --threads=N        simulate the harness's independent points on N
///                      worker threads (default 1 = the serial reference).
///                      Results, stdout, and every perf/obs artifact are
///                      byte-identical to the serial run: points are
///                      prefetched into a cache and consumed in program
///                      order (see prefetchSims). The only difference is
///                      that the --trace/--metrics announce lines move to
///                      stderr so concurrent workers cannot interleave
///                      stdout.
/// Every file-producing flag also writes a `<file>.manifest.json` sidecar
/// (schema version, bench name, np, flag set) that tools/trace_report
/// validates before parsing. Unknown arguments are ignored so harnesses
/// stay forward-compatible.
void obsInit(int argc, char** argv);

/// The worker-thread count requested with --threads (>= 1).
unsigned benchThreads();

/// True when --runtime-profile was requested (the profiler is installed as
/// the process-wide sim::RuntimeObserver for the rest of the run).
bool runtimeProfileActive();

/// Wall-clock stopwatch for benchmark harnesses. Lives in bench/common on
/// purpose: srclint's wall-clock rule bans host clocks everywhere else in
/// bench/ and src/, so harness timing goes through this one allowlisted
/// type instead of ad-hoc steady_clock calls (see tools/srclint rules.cpp,
/// "wall-clock").
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Record one simulated run in the --perf-json report (no-op without the
/// flag). The runSim overloads call this automatically; harnesses that
/// drive runCheckpoint/runCampaign themselves can call it directly. The
/// record carries the --threads value; pass `threads` explicitly to tag a
/// run that managed its own parallelism (e.g. micro_queue's sharded cases).
void perfRecord(const std::string& label, double wallSeconds,
                std::uint64_t events, unsigned threads = 0);

/// Write the --perf-json report, if requested. Returns false (and prints
/// to stderr) if the file could not be written. Called by reportChecks.
bool perfFlush();

/// The --simcheck mode requested on the command line (kAuto when absent).
sim::SimCheckMode simCheckMode();

/// Attach the requested trace/metrics sinks to a stack. Called by the
/// fresh-stack runSim overload; harnesses that build their own SimStack
/// (e.g. fig12) call it once per stack. Each attach after the first gets a
/// numbered path suffix (".2", ".3", ...) so multi-stack harnesses emit one
/// trace per stack. No-op when neither flag was given.
void attachObs(iolib::SimStack& stack);

/// One independent simulation point: what the fresh-stack runSim overload
/// takes. Harnesses that loop over scales and approaches list their points
/// up front (in the exact order runSim will consume them) and hand them to
/// prefetchSims.
struct SimPoint {
  int np = 0;
  iolib::StrategyConfig cfg;
  std::uint64_t seed = 2011;
};

/// Simulate every point ahead of time on benchThreads() workers and cache
/// the results (checkpoint result, wall time, event count, pre-assigned obs
/// artifact numbers). A later fresh-stack runSim with matching (np, config,
/// seed) consumes its cache entry in FIFO order — so a harness that
/// prefetches its whole point list in call order produces byte-identical
/// stdout and perf/obs artifacts whatever the thread count. Each simulated
/// point is itself a single-threaded discrete-event run (the points are
/// independent; determinism is per point by construction). No-op when
/// --threads <= 1: the serial path stays exactly the reference.
void prefetchSims(const std::vector<SimPoint>& points);

/// Run one simulated checkpoint on a fresh Intrepid stack (paper noise
/// conditions, fixed seed) and return the result. Consumes a prefetched
/// cache entry when one matches (see prefetchSims).
iolib::CheckpointResult runSim(int np, const iolib::StrategyConfig& cfg,
                               std::uint64_t seed = 2011);

/// Same, but also hand back the stack (for profile/fs inspection).
iolib::CheckpointResult runSim(iolib::SimStack& stack, int np,
                               const iolib::StrategyConfig& cfg);

/// The five approaches of Figs. 5-7, in the paper's legend order.
struct Approach {
  std::string name;
  iolib::StrategyConfig cfg;
};
std::vector<Approach> paperApproaches(int np);

}  // namespace bgckpt::bench
