// Shared plumbing for the figure/table reproduction harnesses.
//
// Every harness prints:
//   1. a banner naming the paper artifact it regenerates,
//   2. the measured series (plus the paper's approximate values where the
//      text/figures state them),
//   3. an ASCII rendering,
//   4. SHAPE CHECK lines — the qualitative claims that must hold (who wins,
//      by roughly what factor, where crossovers fall). A failed check makes
//      the binary exit nonzero.
#pragma once

#include <string>
#include <vector>

#include "analysis/ascii.hpp"
#include "iolib/strategies.hpp"

namespace bgckpt::bench {

struct Check {
  std::string name;
  bool pass = false;
  std::string detail;
};

void banner(const std::string& artifact, const std::string& description);

/// Print all checks; returns the process exit code (0 iff all pass).
int reportChecks(const std::vector<Check>& checks);

/// Format helpers.
std::string gbs(double bytesPerSecond);
std::string secs(double seconds);

/// Run one simulated checkpoint on a fresh Intrepid stack (paper noise
/// conditions, fixed seed) and return the result.
iolib::CheckpointResult runSim(int np, const iolib::StrategyConfig& cfg,
                               std::uint64_t seed = 2011);

/// Same, but also hand back the stack (for profile/fs inspection).
iolib::CheckpointResult runSim(iolib::SimStack& stack, int np,
                               const iolib::StrategyConfig& cfg);

/// The five approaches of Figs. 5-7, in the paper's legend order.
struct Approach {
  std::string name;
  iolib::StrategyConfig cfg;
};
std::vector<Approach> paperApproaches(int np);

}  // namespace bgckpt::bench
