// Figure 5: write bandwidth of the five I/O approaches as a function of
// processor count, on the simulated Intrepid GPFS under normal load.
// Problem sizes (np, n, S) = (16K, 275M, ~39GB), (32K, 550M, ~78GB),
// (64K, 1.1B, ~157GB).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  // --max-np N: smoke mode for slow (sanitizer) builds — run only the
  // scales up to N. Shape checks need all three scales, so they are
  // skipped; the run still exercises every approach end-to-end.
  int maxNp = 65536;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-np") == 0 && i + 1 < argc)
      maxNp = std::atoi(argv[i + 1]);
    else if (std::strncmp(argv[i], "--max-np=", 9) == 0)
      maxNp = std::atoi(argv[i] + 9);
  }
  banner("Figure 5 - write performance with NekCEM on Intrepid GPFS",
         "Bandwidth = total data / wall time of the slowest processor.");

  std::vector<int> scales = {16384, 32768, 65536};
  std::erase_if(scales, [maxNp](int np) { return np > maxNp; });
  if (scales.empty()) {
    std::fprintf(stderr, "--max-np %d leaves no scales to run\n", maxNp);
    return 2;
  }
  const bool smoke = scales.size() < 3;
  // Approximate values read from the published figure, for side-by-side
  // comparison (absolute agreement is not the goal; the shape is).
  const std::map<std::string, std::vector<double>> paperGbs = {
      {"1PFPP", {0.15, 0.10, 0.08}},
      {"coIO, nf=1", {4.5, 5.0, 6.0}},
      {"coIO, np:nf=64:1", {10.5, 12.5, 9.0}},
      {"rbIO, 64:1, nf=1", {4.0, 5.0, 6.5}},
      {"rbIO, 64:1, nf=ng", {9.0, 13.0, 16.0}},
  };

  // With --threads > 1 every (np, approach) point simulates in parallel up
  // front; the loop below consumes the cache in this exact order.
  std::vector<SimPoint> points;
  for (int np : scales)
    for (const auto& a : paperApproaches(np)) points.push_back({np, a.cfg});
  prefetchSims(points);

  std::map<std::string, std::map<int, double>> bw;  // name -> np -> GB/s
  for (int np : scales) {
    std::printf("\n-- np = %d --\n", np);
    std::vector<analysis::Bar> bars;
    for (const auto& a : paperApproaches(np)) {
      const auto r = runSim(np, a.cfg);
      bw[a.name][np] = r.bandwidth;
      bars.push_back({a.name, r.bandwidth / 1e9});
      std::printf("  %-20s  measured %-12s  paper ~%5.2f GB/s  (makespan %s)\n",
                  a.name.c_str(), gbs(r.bandwidth).c_str(),
                  paperGbs.at(a.name)[static_cast<std::size_t>(
                      np == 16384 ? 0 : (np == 32768 ? 1 : 2))],
                  secs(r.makespan).c_str());
      std::fflush(stdout);
    }
    std::printf("%s", analysis::barChart(bars, "GB/s").c_str());
  }

  if (smoke) {
    std::printf("\n--max-np smoke run: shape checks skipped (need all three "
                "scales)\n");
    return reportChecks({});
  }

  auto at = [&](const char* name, int np) { return bw.at(name).at(np); };
  std::vector<Check> checks;
  checks.push_back(
      {"rbIO nf=ng >= coIO 64:1 at 64K (rbIO scales best)",
       at("rbIO, 64:1, nf=ng", 65536) >= at("coIO, np:nf=64:1", 65536),
       gbs(at("rbIO, 64:1, nf=ng", 65536)) + " vs " +
           gbs(at("coIO, np:nf=64:1", 65536))});
  checks.push_back({"rbIO nf=ng > 13 GB/s at 64K (paper: 'over 13 GB/s')",
                    at("rbIO, 64:1, nf=ng", 65536) > 13e9,
                    gbs(at("rbIO, 64:1, nf=ng", 65536))});
  bool tenX = true;
  for (int np : scales)
    tenX = tenX && at("rbIO, 64:1, nf=ng", np) > 10 * at("1PFPP", np) &&
           at("coIO, np:nf=64:1", np) > 10 * at("1PFPP", np);
  checks.push_back({"tuned approaches beat 1PFPP by >10x at every scale",
                    tenX, "rbIO/coIO vs 1PFPP"});
  bool splitWins = true;
  for (int np : scales)
    splitWins = splitWins && at("coIO, np:nf=64:1", np) > at("coIO, nf=1", np);
  checks.push_back(
      {"split collectives beat the single shared file (coIO 64:1 > nf=1)",
       splitWins, "all scales"});
  checks.push_back(
      {"coIO 64:1 drops at 64K (the paper's 'significant performance drop')",
       at("coIO, np:nf=64:1", 65536) < at("coIO, np:nf=64:1", 32768),
       gbs(at("coIO, np:nf=64:1", 65536)) + " vs " +
           gbs(at("coIO, np:nf=64:1", 32768)) + " at 32K"});
  bool similar = true;
  for (int np : scales) {
    const double a = at("rbIO, 64:1, nf=1", np);
    const double b = at("coIO, nf=1", np);
    similar = similar && a < 2.5 * b && b < 2.5 * a;
  }
  checks.push_back(
      {"rbIO nf=1 ~ coIO nf=1 (application two-phase does not interfere "
       "with MPI-IO two-phase)",
       similar, "within 2.5x at all scales"});
  bool rbGrows = at("rbIO, 64:1, nf=ng", 16384) <
                     at("rbIO, 64:1, nf=ng", 32768) &&
                 at("rbIO, 64:1, nf=ng", 32768) <
                     at("rbIO, 64:1, nf=ng", 65536);
  checks.push_back({"rbIO nf=ng bandwidth grows with scale", rbGrows,
                    "16K < 32K < 64K"});
  checks.push_back(
      {"rbIO nf=ng ~2x rbIO nf=1 (less file locking overhead)",
       at("rbIO, 64:1, nf=ng", 16384) > 1.5 * at("rbIO, 64:1, nf=1", 16384),
       gbs(at("rbIO, 64:1, nf=ng", 16384)) + " vs " +
           gbs(at("rbIO, 64:1, nf=1", 16384))});
  return reportChecks(checks);
}
