// Equation (7), closed loop: the paper's blocked-time speedup claim checked
// against *measured* blocked processor time, not just the analytical chain.
//
// eq27_speedup_model evaluates Eqs. (2)-(7) with measured bandwidths; this
// harness goes one step further and measures the left-hand side too. The
// blocked-time attribution sink (obs/attr.hpp) partitions every rank's
// simulated time into exclusive phases, so "processor-seconds blocked by
// I/O" is simply the non-compute total — summed straight from the trace
// stream, with no knowledge of Eqs. (3)/(4). If the simulator and the
// paper's model describe the same physics, the two must agree:
//
//   measured speedup  =  blocked_coIO / blocked_rbIO   (from attribution)
//   model   speedup   =  Eq. (2) exact, and its Eq. (7) limit
//                        (np/ng) * BW_rbIO/BW_coIO     (from bandwidths)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "analysis/models.hpp"
#include "common.hpp"
#include "obs/attr.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

namespace {

struct MeasuredRun {
  iolib::CheckpointResult result;
  obs::AttributionEngine::Report attr;
};

/// Run one checkpoint with an attribution sink attached and hand back both
/// the classic result and the finalized per-rank phase partition.
MeasuredRun runMeasured(int np, const iolib::StrategyConfig& cfg) {
  iolib::SimStackOptions opt;
  opt.simcheck = simCheckMode();
  iolib::SimStack stack(np, opt);
  attachObs(stack);
  auto attr = std::make_shared<obs::AttributionSink>();
  stack.obs.addSink(attr);
  MeasuredRun run;
  run.result = runSim(stack, np, cfg);
  stack.obs.finalize(stack.sched.now());
  run.attr = attr->report();
  return run;
}

void printPhaseTable(const char* label,
                     const obs::AttributionEngine::Report& r) {
  std::printf("\n  %s: processor-seconds by phase (horizon %.3f s x %zu "
              "ranks)\n",
              label, r.horizon, r.ranks.size());
  for (int p = 0; p < obs::kNumPhases; ++p) {
    if (r.totals[static_cast<std::size_t>(p)] <= 0.0) continue;
    std::printf("    %-13s %14.3f\n",
                obs::phaseName(static_cast<obs::Phase>(p)),
                r.totals[static_cast<std::size_t>(p)]);
  }
  std::printf("    %-13s %14.3f\n", "blocked", r.blockedSeconds());
}

}  // namespace

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  int np = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--np") == 0 && i + 1 < argc)
      np = std::atoi(argv[++i]);
    else if (std::strncmp(argv[i], "--np=", 5) == 0)
      np = std::atoi(argv[i] + 5);
  }
  if (np < 128 || np % 64 != 0) {
    std::fprintf(stderr, "error: --np must be a multiple of 64, >= 128\n");
    return 2;
  }
  banner("Equation (7) - measured blocked time vs the analytical model",
         "Attribution-measured blocked processor-seconds, coIO vs rbIO.");

  const int ng = np / 64;
  const auto co = runMeasured(np, iolib::StrategyConfig::coIo(ng));
  const auto rb = runMeasured(np, iolib::StrategyConfig::rbIo(64, true));

  printPhaseTable("coIO, np:nf=64:1", co.attr);
  printPhaseTable("rbIO, 64:1, nf=ng", rb.attr);

  // Measured side: blocked processor-seconds straight from the partition.
  const double blockedCo = co.attr.blockedSeconds();
  const double blockedRb = rb.attr.blockedSeconds();
  const double measuredSpeedup = blockedCo / blockedRb;

  // Worker-only view of rbIO: everyone except the 64:1 writers.
  double workerBlocked = 0.0;
  int workers = 0;
  for (const auto& slice : rb.attr.ranks) {
    if (slice.rank % 64 == 0) continue;
    workerBlocked += slice.blocked();
    ++workers;
  }
  const double workerFrac =
      workers > 0 ? workerBlocked / (workers * rb.attr.horizon) : 0.0;

  // Model side: Eqs. (3)/(4)/(2)/(7) fed with the measured bandwidths.
  analysis::SpeedupParams p;
  p.np = np;
  p.ng = ng;
  p.fileBytes = static_cast<double>(rb.result.logicalBytes);
  p.bwCoIo = co.result.bandwidth;
  p.bwRbIo = rb.result.bandwidth;
  p.bwPerceived = rb.result.perceivedBandwidth;
  p.lambda = 0.0;
  const double modelCo = analysis::blockedTimeCoIo(p);
  const double modelRb = analysis::blockedTimeRbIo(p);
  const double modelExact = analysis::speedupExact(p);
  const double modelLimit = analysis::speedupLimit(p);

  std::printf("\n  inputs: np=%d ng=%d S=%.2f GB BW_coIO=%s BW_rbIO=%s "
              "BW_p=%.0f TB/s\n",
              np, ng, p.fileBytes / 1e9, gbs(p.bwCoIo).c_str(),
              gbs(p.bwRbIo).c_str(), p.bwPerceived / 1e12);
  std::printf("\n  %-34s | %14s | %14s\n", "blocked processor-seconds",
              "measured", "model");
  std::printf("  %-34s | %14.1f | %14.1f  (Eq. 3)\n", "coIO", blockedCo,
              modelCo);
  std::printf("  %-34s | %14.1f | %14.1f  (Eq. 4, lambda=0)\n", "rbIO",
              blockedRb, modelRb);
  std::printf("  %-34s | %13.1fx | %13.1fx  (Eq. 2 exact)\n",
              "speedup rbIO over coIO", measuredSpeedup, modelExact);
  std::printf("  %-34s | %14s | %13.1fx  (Eq. 7 limit)\n", "", "",
              modelLimit);
  std::printf("\n  rbIO worker blocked fraction: %.4f%% of the horizon\n",
              workerFrac * 100.0);

  std::vector<Check> checks;
  const double defect =
      std::max(co.attr.partitionDefect(), rb.attr.partitionDefect());
  checks.push_back({"attribution phases partition [0, horizon] on every rank",
                    defect < 1e-9 * std::max(1.0, co.attr.horizon),
                    "max defect " + std::to_string(defect) + " s"});
  // Eq. (3) assumes every rank stays blocked for the full S/BW_coIO; with
  // nf=ng independent files the groups finish at different times, so the
  // model upper-bounds the measurement and skew accounts for the gap.
  checks.push_back(
      {"Eq. (3) upper-bounds measured coIO blocked time, within 40% slack",
       blockedCo < modelCo * 1.001 && blockedCo > 0.60 * modelCo,
       std::to_string(blockedCo) + " vs " + std::to_string(modelCo)});
  checks.push_back(
      {"measured rbIO blocked time matches Eq. (4), lambda=0, within 30%",
       std::abs(blockedRb - modelRb) / modelRb < 0.30,
       std::to_string(blockedRb) + " vs " + std::to_string(modelRb)});
  checks.push_back(
      {"measured speedup matches the Eq. (7) limit within 30%",
       std::abs(measuredSpeedup - modelLimit) / modelLimit < 0.30,
       std::to_string(measuredSpeedup) + "x vs " + std::to_string(modelLimit) +
           "x"});
  checks.push_back({"measured speedup is tens of x (paper argues ~60x at 64K)",
                    measuredSpeedup > 20.0,
                    std::to_string(measuredSpeedup) + "x"});
  checks.push_back({"rbIO workers spend <1% of the horizon blocked",
                    workerFrac < 0.01,
                    std::to_string(workerFrac * 100.0) + "%"});
  checks.push_back(
      {"coIO blocks the mean rank for most of its horizon (>60%)",
       blockedCo > 0.60 * np * co.attr.horizon,
       std::to_string(blockedCo / (np * co.attr.horizon) * 100.0) + "%"});
  return reportChecks(checks);
}
