// Figure 6: overall wall time per checkpointing step (log scale) for the
// five I/O approaches at 16K/32K/64K processors.
#include <cstdio>
#include <map>

#include "common.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Figure 6 - overall time per checkpointing step",
         "Seconds per coordinated checkpoint; log-scaled bars. The paper's "
         "headline: ~100x reduction vs 1PFPP.");

  const std::vector<int> scales = {16384, 32768, 65536};
  std::vector<SimPoint> points;
  for (int np : scales)
    for (const auto& a : paperApproaches(np)) points.push_back({np, a.cfg});
  prefetchSims(points);

  std::map<std::string, std::map<int, double>> t;
  for (int np : scales) {
    std::printf("\n-- np = %d --\n", np);
    std::vector<analysis::Bar> bars;
    for (const auto& a : paperApproaches(np)) {
      const auto r = runSim(np, a.cfg);
      t[a.name][np] = r.makespan;
      bars.push_back({a.name, r.makespan});
      std::printf("  %-20s %10.2f s\n", a.name.c_str(), r.makespan);
      std::fflush(stdout);
    }
    std::printf("%s", analysis::barChart(bars, "s", 52, /*logScale=*/true).c_str());
  }

  auto at = [&](const char* name, int np) { return t.at(name).at(np); };
  std::vector<Check> checks;
  for (int np : {32768, 65536}) {
    const double ratio = at("1PFPP", np) / at("rbIO, 64:1, nf=ng", np);
    checks.push_back(
        {"~100x improvement over 1PFPP at np=" + std::to_string(np),
         ratio > 50 && ratio < 500,
         "measured " + std::to_string(ratio) + "x"});
  }
  // "The relatively flat time bars for rbIO" - weak scaling holds: time
  // grows far slower than the 4x data growth from 16K to 64K.
  const double rbGrowth =
      at("rbIO, 64:1, nf=ng", 65536) / at("rbIO, 64:1, nf=ng", 16384);
  checks.push_back({"rbIO nf=ng time stays relatively flat 16K->64K",
                    rbGrowth < 2.5,
                    "grew " + std::to_string(rbGrowth) + "x for 4x data"});
  const double pfppGrowth = at("1PFPP", 65536) / at("1PFPP", 16384);
  checks.push_back({"1PFPP time balloons with scale", pfppGrowth > 3.0,
                    "grew " + std::to_string(pfppGrowth) + "x"});
  checks.push_back({"1PFPP exceeds 100 s per checkpoint at 16K+",
                    at("1PFPP", 16384) > 100,
                    secs(at("1PFPP", 16384))});
  return reportChecks(checks);
}
