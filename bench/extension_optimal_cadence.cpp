// Extension: what the I/O strategies mean for fault tolerance — the
// paper's actual motivation ("when a component fails, the application in
// progress loses valuable work"). Combining each strategy's measured
// checkpoint cost with Young/Daly optimal-cadence theory at Intrepid's
// failure rates shows how rbIO converts cheap checkpoints into machine
// efficiency: checkpoint more often, lose less work, waste less I/O time.
#include <cstdio>

#include "analysis/checkpoint_interval.hpp"
#include "common.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Extension - optimal checkpoint cadence under failures",
         "Young/Daly theory driven by measured checkpoint costs at 64K.");

  constexpr int kNp = 65536;
  constexpr int kNodes = kNp / 4;
  const double nodeMtbf = 3.0 * 365 * 86400;  // 3-year per-node MTBF
  const double mtbf = analysis::systemMtbf(kNodes, nodeMtbf);
  const double restart = 180.0;  // restart + re-read of the checkpoint
  std::printf("\nsystem MTBF at %d nodes (3-year node MTBF): %.0f s "
              "(~%.1f h)\n",
              kNodes, mtbf, mtbf / 3600);

  struct Row {
    const char* name;
    iolib::StrategyConfig cfg;
    double tc = 0;
    double interval = 0;
    double eff = 0;
  };
  std::vector<Row> rows = {
      {"1PFPP", iolib::StrategyConfig::onePfpp()},
      {"coIO 64:1", iolib::StrategyConfig::coIo(kNp / 64)},
      {"rbIO 64:1 nf=ng", iolib::StrategyConfig::rbIo(64, true)},
  };
  std::printf("\n  %-16s | %9s | %14s | %12s\n", "strategy", "Tc",
              "opt. interval", "efficiency");
  for (auto& row : rows) {
    const auto r = runSim(kNp, row.cfg);
    // For rbIO the application-blocking cost is the writers' drain only
    // when cadence outpaces them; at the Daly optimum (minutes apart) the
    // writers always keep up, so Tc is the worker-side cost plus the
    // synchronisation to a consistent cut (one compute step's barrier).
    row.tc = row.cfg.kind == iolib::StrategyKind::kRbIo
                 ? std::max(r.workerMakespan, 0.25)
                 : r.makespan;
    row.interval = analysis::dalyInterval(row.tc, mtbf);
    row.eff = analysis::efficiency(row.interval, row.tc, restart, mtbf);
    std::printf("  %-16s | %7.1f s | %10.0f s | %10.1f%%\n", row.name,
                row.tc, row.interval, 100 * row.eff);
    std::fflush(stdout);
  }

  const double gained = 100 * (rows[2].eff - rows[0].eff);
  std::printf("\nrbIO recovers %.1f percentage points of the machine "
              "relative to 1PFPP;\nover a year of Intrepid time that is "
              "~%.0f node-years of compute.\n",
              gained, gained / 100.0 * kNodes);

  std::vector<Check> checks;
  checks.push_back({"1PFPP's cost forces hour-scale checkpoint intervals",
                    rows[0].interval > 3600,
                    std::to_string(rows[0].interval) + " s"});
  checks.push_back({"rbIO checkpoints can run minutes apart",
                    rows[2].interval < 600,
                    std::to_string(rows[2].interval) + " s"});
  checks.push_back({"rbIO yields the best machine efficiency",
                    rows[2].eff > rows[1].eff && rows[1].eff > rows[0].eff,
                    "ordering holds"});
  checks.push_back({"the efficiency gap vs 1PFPP is material (>5 points)",
                    rows[2].eff - rows[0].eff > 0.05,
                    std::to_string(gained) + " points"});
  return reportChecks(checks);
}
