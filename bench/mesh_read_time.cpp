// Section III-B: reading the global mesh inputs (*.rea and *.map) at the
// presetup stage. "Reading the global data for a mesh takes from 7.5
// seconds to 28 seconds, with E=136K and 546K on P=32,768 and 131,072
// processors of BG/P." Rank 0 reads the global files through the
// filesystem, parses them, and broadcasts over the collective network.
#include <cstdio>

#include "common.hpp"
#include "netsim/torus.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;
using sim::Task;

namespace {

// ASCII .rea + binary .map cost per element (coordinates of 8 vertices,
// curvature flags, processor mapping).
constexpr double kBytesPerElement = 500.0;
// ASCII parsing throughput on one 850 MHz BG/P core.
constexpr double kParseBytesPerSecond = 22e6;

struct MeshReadResult {
  double seconds = 0;
};

MeshReadResult simulateMeshRead(int ranks, std::uint64_t elements) {
  iolib::SimStackOptions opt;
  opt.noise = stor::NoiseModel::none();
  iolib::SimStack stack(ranks, opt);
  bgckpt::bench::attachObs(stack);
  const sim::Bytes meshBytes =
      static_cast<sim::Bytes>(static_cast<double>(elements) *
                              kBytesPerElement);
  double done = 0;

  auto program = [&stack, meshBytes, &done]() -> Task<> {
    // Presetup: rank 0 creates (writes) the inputs once out-of-band, then
    // the job reads them back through the ION path and broadcasts.
    auto fh = co_await stack.fsys.create(0, "input/mesh.rea");
    co_await stack.fsys.write(0, fh, 0, meshBytes);
    co_await stack.fsys.close(0, fh);

    const double t0 = stack.sched.now();
    auto rfh = co_await stack.fsys.open(0, "input/mesh.rea");
    co_await stack.fsys.read(0, rfh, 0, meshBytes);
    co_await stack.fsys.close(0, rfh);
    // Parse on rank 0 ...
    co_await stack.sched.delay(static_cast<double>(meshBytes) /
                               kParseBytesPerSecond);
    // ... and distribute over the tree network.
    co_await stack.sched.delay(
        stack.coll.broadcastCost(stack.mach.numRanks(), meshBytes));
    done = stack.sched.now() - t0;
  };
  stack.sched.spawn(program());
  stack.sched.run();
  return {done};
}

}  // namespace

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Section III-B - global mesh read time at presetup",
         "Rank 0 reads, parses and broadcasts the global mesh files.");

  struct Case {
    int ranks;
    std::uint64_t elements;
    double paperSeconds;
  };
  // 131,072 ranks exceeds our largest prebuilt torus table only in name;
  // the Intrepid factory supports it directly.
  const std::vector<Case> cases = {{32768, 136000, 7.5},
                                   {131072, 546000, 28.0}};

  std::vector<double> measured;
  for (const auto& c : cases) {
    const auto r = simulateMeshRead(c.ranks, c.elements);
    measured.push_back(r.seconds);
    std::printf("E=%6lluK on P=%6d: measured %6.1f s   (paper: %.1f s)\n",
                static_cast<unsigned long long>(c.elements / 1000), c.ranks,
                r.seconds, c.paperSeconds);
    std::fflush(stdout);
  }

  std::vector<Check> checks;
  checks.push_back({"small case lands in single-digit seconds (paper: 7.5 s)",
                    measured[0] > 2 && measured[0] < 15,
                    secs(measured[0])});
  checks.push_back({"large case lands in tens of seconds (paper: 28 s)",
                    measured[1] > 12 && measured[1] < 60,
                    secs(measured[1])});
  checks.push_back({"cost grows with mesh size",
                    measured[1] > 2.0 * measured[0],
                    secs(measured[1]) + " vs " + secs(measured[0])});
  checks.push_back({"read phase is negligible next to 1PFPP checkpointing "
                    "(why the paper optimises writes)",
                    measured[0] < 20.0, secs(measured[0])});
  return reportChecks(checks);
}
