// Equation (1): end-to-end production improvement of rbIO over 1PFPP at
// checkpoint frequency nc. With the paper's round numbers (Ratio_1pfpp ~
// 1000, Ratio_rbIO ~ 20, nc = 20) the improvement is ~25x; we also
// evaluate it with our measured ratios.
#include <cstdio>

#include "analysis/models.hpp"
#include "common.hpp"
#include "nekcem/perf_model.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Equation (1) - production time improvement, rbIO vs 1PFPP",
         "improvement = (Ratio_1pfpp + nc) / (Ratio_rbIO + nc)");

  // The paper's arithmetic.
  const double paperValue = analysis::productionImprovement(1000, 20, 20);
  std::printf("\npaper inputs (Ratio=1000 vs 20, nc=20): %.1fx  "
              "(paper: 'approximately 25x')\n",
              paperValue);

  // Our measured inputs at each scale.
  nekcem::PerfModel perf;
  const double tComp = perf.weakScalingStepSeconds();
  std::vector<Check> checks;
  for (int np : {16384, 32768, 65536}) {
    const auto pfpp = runSim(np, iolib::StrategyConfig::onePfpp());
    const auto rbio = runSim(np, iolib::StrategyConfig::rbIo(64, true));
    const double ratioPfpp = pfpp.makespan / tComp;
    const double ratioRbio = rbio.writerMakespan / tComp;
    std::printf("np=%6d: Ratio_1pfpp=%7.0f  Ratio_rbIO=%5.1f  ", np,
                ratioPfpp, ratioRbio);
    for (double nc : {10.0, 20.0, 100.0}) {
      std::printf("nc=%-3.0f -> %5.1fx  ", nc,
                  analysis::productionImprovement(ratioPfpp, ratioRbio, nc));
    }
    std::printf("\n");
    std::fflush(stdout);
    const double imp =
        analysis::productionImprovement(ratioPfpp, ratioRbio, 20);
    // The paper's "approximately 25x" follows from Ratio_1pfpp ~ 1000; our
    // 1PFPP collapses harder at 64K, which can only grow the improvement.
    checks.push_back(
        {"tens-of-x improvement at nc=20, np=" + std::to_string(np) +
             " (paper: ~25x from its round-number ratios)",
         imp > 10 && imp < 300, std::to_string(imp) + "x"});
  }
  checks.push_back({"paper-arithmetic reproduction equals ~25x",
                    paperValue > 25.0 && paperValue < 26.0,
                    std::to_string(paperValue) + "x"});
  return reportChecks(checks);
}
