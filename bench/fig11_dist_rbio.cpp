// Figure 11: per-processor I/O time distribution for rbIO (np:ng = 64:1,
// nf = ng) on 65,536 processors. Two "lines" appear: the upper one is the
// 1,024 writers (nearly flat — good synchronisation even with independent
// MPI_File_write_at), the lower one is the 64,512 workers, whose I/O cost
// is a single nonblocking send measured in microseconds.
#include <cstdio>

#include "common.hpp"
#include "simcore/stats.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Figure 11 - I/O time distribution, rbIO nf=ng, 65,536 processors",
         "Upper line: writers; lower line: workers.");

  constexpr int kNp = 65536;
  const auto r = runSim(kNp, iolib::StrategyConfig::rbIo(64, true));

  sim::Sample writers, workers;
  std::vector<double> xs, ys;
  for (int rank = 0; rank < kNp; ++rank) {
    const double v = r.perRankTime[static_cast<std::size_t>(rank)];
    if (rank % 64 == 0)
      writers.add(v);
    else
      workers.add(v);
    if (rank % 64 == 0 || rank % 97 == 0) {
      xs.push_back(rank);
      ys.push_back(v);
    }
  }

  std::printf("ranks: %d   makespan: %s   bandwidth: %s\n", kNp,
              secs(r.makespan).c_str(), gbs(r.bandwidth).c_str());
  std::printf("writers (%zu): min %.2f s  median %.2f s  max %.2f s\n",
              writers.size(), writers.min(), writers.median(), writers.max());
  std::printf("workers (%zu): min %.1f us  median %.1f us  max %.1f us\n",
              workers.size(), workers.min() * 1e6, workers.median() * 1e6,
              workers.max() * 1e6);
  std::printf("%s", analysis::scatter(xs, ys, 72, 20, "processor rank",
                                      "I/O time [s]").c_str());

  std::vector<Check> checks;
  checks.push_back({"workers block for microseconds (lower line at ~0)",
                    workers.max() < 1e-3,
                    std::to_string(workers.max() * 1e6) + " us max"});
  checks.push_back({"writers take seconds (upper line)",
                    writers.median() > 1.0, secs(writers.median())});
  checks.push_back({"writer line is almost flat (good synchronisation)",
                    writers.quantile(0.95) < 1.5 * writers.median(),
                    "p95 " + secs(writers.quantile(0.95)) + " vs median " +
                        secs(writers.median())});
  checks.push_back({"four orders of magnitude between the two lines",
                    writers.median() > 1e4 * workers.median(),
                    "writer/worker = " +
                        std::to_string(writers.median() / workers.median())});
  return reportChecks(checks);
}
