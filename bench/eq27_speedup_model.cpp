// Equations (2)-(7): the blocked-processor-time speedup of rbIO over coIO.
// We evaluate the paper's analytical chain with our measured bandwidths and
// sweep lambda (the fraction of writer time that blocks workers).
#include <cstdio>

#include "analysis/models.hpp"
#include "common.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Equations (2)-(7) - rbIO over coIO blocked-time speedup",
         "Speedup ~ (np/ng) * BW_rbIO/BW_coIO as lambda -> 0.");

  constexpr int kNp = 65536;
  const auto co = runSim(kNp, iolib::StrategyConfig::coIo(kNp / 64));
  const auto rb = runSim(kNp, iolib::StrategyConfig::rbIo(64, true));

  analysis::SpeedupParams p;
  p.np = kNp;
  p.ng = kNp / 64.0;
  p.fileBytes = static_cast<double>(rb.logicalBytes);
  p.bwCoIo = co.bandwidth;
  p.bwRbIo = rb.bandwidth;
  p.bwPerceived = rb.perceivedBandwidth;
  std::printf("\nmeasured inputs at np=64K: BW_coIO=%s BW_rbIO=%s BW_p=%.0f TB/s\n",
              gbs(p.bwCoIo).c_str(), gbs(p.bwRbIo).c_str(),
              p.bwPerceived / 1e12);

  std::printf("\n  %-8s | %-12s | %-12s | %-12s\n", "lambda", "exact (2)",
              "approx (6)", "limit (7)");
  for (double lambda : {0.0, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0}) {
    p.lambda = lambda;
    std::printf("  %-8.3f | %12.1f | %12.1f | %12.1f\n", lambda,
                analysis::speedupExact(p), analysis::speedupApprox(p),
                analysis::speedupLimit(p));
  }

  p.lambda = 0.0;
  const double exact0 = analysis::speedupExact(p);
  const double limit = analysis::speedupLimit(p);

  std::vector<Check> checks;
  checks.push_back(
      {"lambda->0 speedup approaches the (np/ng)*(BW ratio) limit",
       std::abs(exact0 - limit) / limit < 0.05,
       std::to_string(exact0) + " vs " + std::to_string(limit)});
  checks.push_back(
      {"speedup is tens-to-hundreds (the paper argues ~60x; >=30x even in "
       "its worst case)",
       exact0 > 30, std::to_string(exact0) + "x"});
  // Worst case of the paper: BW_rbIO = BW_coIO / 2 -> half of np/ng.
  analysis::SpeedupParams worst = p;
  worst.bwRbIo = worst.bwCoIo / 2;
  const double worstCase = analysis::speedupApprox(worst);
  checks.push_back({"worst case (half bandwidth) still ~np/(2*ng) = 32x",
                    worstCase > 28 && worstCase < 36,
                    std::to_string(worstCase) + "x"});
  p.lambda = 1.0;
  checks.push_back(
      {"lambda=1 (workers fully blocked) collapses the speedup",
       analysis::speedupExact(p) < 3.0,
       std::to_string(analysis::speedupExact(p)) + "x"});
  return reportChecks(checks);
}
