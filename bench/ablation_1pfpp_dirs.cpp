// Ablation: the paper's remark on 1PFPP — "Better performance may be
// achieved by producing a single file per directory. However, most
// parallel file systems are not designed to deal with hundreds of
// thousands of small files, and manageability becomes a significant
// issue." One rank per directory dodges the directory-token storm, but
// the tuned approaches still win and the file count is unchanged.
#include <cstdio>

#include "common.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Ablation - 1PFPP with one file per directory",
         "Removing the shared-directory metadata storm from 1PFPP.");

  constexpr int kNp = 16384;
  auto shared = iolib::StrategyConfig::onePfpp();
  auto privateDirs = iolib::StrategyConfig::onePfpp();
  privateDirs.onePfppPrivateDirs = true;

  const auto sharedRun = runSim(kNp, shared);
  const auto privateRun = runSim(kNp, privateDirs);
  const auto rbio = runSim(kNp, iolib::StrategyConfig::rbIo(64, true));

  std::printf("\n  1PFPP, one shared directory : %8s (%s)\n",
              secs(sharedRun.makespan).c_str(),
              gbs(sharedRun.bandwidth).c_str());
  std::printf("  1PFPP, one dir per rank     : %8s (%s)\n",
              secs(privateRun.makespan).c_str(),
              gbs(privateRun.bandwidth).c_str());
  std::printf("  rbIO 64:1 nf=ng (reference) : %8s (%s)\n",
              secs(rbio.makespan).c_str(), gbs(rbio.bandwidth).c_str());
  std::printf("\n  ...but the private-dir variant still leaves %d files "
              "(plus %d directories)\n  per checkpoint to manage, versus "
              "%d for rbIO.\n",
              kNp, kNp, kNp / 64);

  std::vector<Check> checks;
  checks.push_back({"per-rank directories remove the metadata storm "
                    "(~10x faster than the shared directory; the residual cost\n"
                    "is 16K concurrent streams thrashing the arrays)",
                    privateRun.makespan * 8 < sharedRun.makespan,
                    secs(privateRun.makespan) + " vs " +
                        secs(sharedRun.makespan)});
  checks.push_back({"16K tiny files still lose to rbIO's aggregated streams",
                    privateRun.bandwidth < rbio.bandwidth,
                    gbs(privateRun.bandwidth) + " vs " +
                        gbs(rbio.bandwidth)});
  checks.push_back({"private-dir 1PFPP becomes at least usable "
                    "(under 60 s per checkpoint)",
                    privateRun.makespan < 60.0,
                    secs(privateRun.makespan)});
  return reportChecks(checks);
}
