// Extension: strong scaling of the raw write path. The authors' earlier
// study (Fu et al., LSPP/IPDPS 2010, reference [3]) ran "an extensive
// amount of strong scaling tests" to find the best raw bandwidth; the
// CLUSTER'11 paper then applied those optima in weak scaling. Here the
// checkpoint volume is pinned to the 16K-rank problem (~39 GB) while the
// partition grows — per-rank data shrinks, so fixed per-rank overheads and
// metadata costs erode the gains differently per strategy.
#include <cstdio>

#include "common.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Extension - strong scaling at fixed ~39 GB checkpoint volume",
         "The reference-[3] methodology on the simulated Intrepid.");

  // Fixed total volume: 16384 * 2.4 MB. Per-rank size shrinks with np.
  const double totalBytes = 16384.0 * 2'400'000.0;

  struct Cell {
    double bandwidth = 0;
  };
  std::vector<int> scales = {16384, 32768, 65536};
  std::map<std::string, std::map<int, Cell>> grid;

  for (int np : scales) {
    iolib::CheckpointSpec spec;
    spec.numFields = 10;
    spec.fieldBytesPerRank =
        static_cast<sim::Bytes>(totalBytes / np / spec.numFields);
    std::printf("\n-- np = %d (%.2f MB per rank) --\n", np,
                static_cast<double>(spec.bytesPerRank()) / 1e6);
    struct V {
      const char* name;
      iolib::StrategyConfig cfg;
    };
    for (const auto& v : std::vector<V>{
             {"coIO 64:1", iolib::StrategyConfig::coIo(np / 64)},
             {"rbIO 64:1 nf=ng", iolib::StrategyConfig::rbIo(64, true)},
             {"rbIO nf=1024", iolib::StrategyConfig::rbIo(np / 1024, true)},
         }) {
      iolib::SimStack stack(np);
      bgckpt::bench::attachObs(stack);
      const auto r = iolib::runCheckpoint(stack, spec, v.cfg);
      grid[v.name][np] = {r.bandwidth};
      std::printf("  %-16s %8s (makespan %s)\n", v.name,
                  gbs(r.bandwidth).c_str(), secs(r.makespan).c_str());
      std::fflush(stdout);
    }
  }

  std::vector<Check> checks;
  // Holding nf at the Fig. 8 optimum (1024) keeps strong scaling flat-to-
  // rising; letting nf grow with np (64:1) eventually overshoots it.
  const auto& tuned = grid.at("rbIO nf=1024");
  checks.push_back(
      {"tuned rbIO (nf=1024) holds its bandwidth under strong scaling",
       tuned.at(65536).bandwidth > 0.75 * tuned.at(16384).bandwidth,
       gbs(tuned.at(65536).bandwidth) + " vs " +
           gbs(tuned.at(16384).bandwidth)});
  const auto& ratio64 = grid.at("rbIO 64:1 nf=ng");
  checks.push_back(
      {"fixed-ratio rbIO (64:1) falls behind the tuned nf at 64K "
       "(nf=1024 is the machine's sweet spot, not a ratio)",
       tuned.at(65536).bandwidth >= 0.95 * ratio64.at(65536).bandwidth,
       gbs(tuned.at(65536).bandwidth) + " vs " +
           gbs(ratio64.at(65536).bandwidth)});
  checks.push_back(
      {"fixed-ratio rbIO climbs toward the optimum as its nf approaches "
       "1024 (256 -> 512 -> 1024 files)",
       ratio64.at(16384).bandwidth < ratio64.at(32768).bandwidth &&
           ratio64.at(32768).bandwidth < ratio64.at(65536).bandwidth,
       gbs(ratio64.at(16384).bandwidth) + " -> " +
           gbs(ratio64.at(65536).bandwidth)});
  // NB: with only ~0.6 MB per rank, blocking coIO 64:1 is competitive —
  // rbIO's advantage is a *weak-scaling* phenomenon (Fig. 5), where per-
  // rank volume stays constant and writer streams saturate the system.
  checks.push_back(
      {"all tuned approaches stay within 1.5x of each other at 64K "
       "(small per-rank volumes blur the strategy gap)",
       grid.at("coIO 64:1").at(65536).bandwidth <
           1.5 * ratio64.at(65536).bandwidth,
       gbs(grid.at("coIO 64:1").at(65536).bandwidth) + " vs " +
           gbs(ratio64.at(65536).bandwidth)});
  return reportChecks(checks);
}
