// Figure 12: Darshan-style write-activity analysis of rbIO (nf = ng, top)
// vs coIO (np:nf = 64:1, bottom) in the 32K-processor case: how many
// processes are actively writing in each time slice. rbIO's independent
// writers stream continuously; coIO's field-synchronised rounds leave lock
// and synchronisation gaps.
#include <cstdio>

#include "common.hpp"
#include "profiling/report.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Figure 12 - write activity: rbIO (top) vs coIO 64:1 (bottom)",
         "32,768 processors; column shade = processes in a write call.");

  constexpr int kNp = 32768;
  iolib::SimStack rbStack(kNp);
  bench::attachObs(rbStack);
  const auto rb = runSim(rbStack, kNp, iolib::StrategyConfig::rbIo(64, true));
  iolib::SimStack coStack(kNp);
  bench::attachObs(coStack);
  const auto co = runSim(coStack, kNp, iolib::StrategyConfig::coIo(kNp / 64));

  const double horizon = std::max(rb.makespan, co.makespan);
  const int bins = 64;
  const double binW = horizon / bins;
  auto rbLine =
      rbStack.profile.activityTimeline(prof::Op::kWrite, binW, horizon);
  auto coLine =
      coStack.profile.activityTimeline(prof::Op::kWrite, binW, horizon);

  std::printf("rbIO nf=ng : makespan %s, %llu write calls\n",
              secs(rb.makespan).c_str(),
              static_cast<unsigned long long>(
                  rbStack.profile.opCount(prof::Op::kWrite)));
  std::printf("coIO 64:1  : makespan %s, %llu write calls\n",
              secs(co.makespan).c_str(),
              static_cast<unsigned long long>(
                  coStack.profile.opCount(prof::Op::kWrite)));
  std::printf("%s", analysis::activityStrip({"rbIO nf=ng", "coIO 64:1 "},
                                            {rbLine, coLine}, binW)
                        .c_str());

  // Utilisation: fraction of the strategy's own makespan during which at
  // least one writer is active, and mean writer concurrency while active.
  auto stats = [&](const std::vector<int>& line, double makespan) {
    int active = 0;
    long total = 0;
    const int ownBins = static_cast<int>(makespan / binW);
    for (int b = 0; b < ownBins && b < static_cast<int>(line.size()); ++b) {
      if (line[static_cast<std::size_t>(b)] > 0) ++active;
      total += line[static_cast<std::size_t>(b)];
    }
    return std::pair<double, double>(
        static_cast<double>(active) / std::max(1, ownBins),
        static_cast<double>(total) / std::max(1, active));
  };
  // The Darshan-style op summary for the rbIO run (what the paper's log
  // analysis looked at).
  std::printf("\n%s", prof::renderOpTable(rbStack.profile).c_str());

  const auto [rbUtil, rbConc] = stats(rbLine, rb.makespan);
  const auto [coUtil, coConc] = stats(coLine, co.makespan);
  std::printf("rbIO: writing in %.0f%% of its slices, ~%.0f writers active\n",
              rbUtil * 100, rbConc);
  std::printf("coIO: writing in %.0f%% of its slices, ~%.0f writers active\n",
              coUtil * 100, coConc);

  std::vector<Check> checks;
  checks.push_back({"raw performance not significantly different "
                    "(paper: 'not significantly different')",
                    rb.bandwidth < 2.5 * co.bandwidth &&
                        co.bandwidth < 2.5 * rb.bandwidth,
                    gbs(rb.bandwidth) + " vs " + gbs(co.bandwidth)});
  checks.push_back({"rbIO writers stay busy through their window",
                    rbUtil > 0.9, std::to_string(rbUtil * 100) + "%"});
  checks.push_back({"coIO involves far more writing processes",
                    coConc > 1.5 * rbConc,
                    std::to_string(coConc) + " vs " + std::to_string(rbConc)});
  return reportChecks(checks);
}
