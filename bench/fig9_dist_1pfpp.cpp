// Figure 9: per-processor I/O time distribution for one 1PFPP checkpoint
// on 16,384 processors. The metadata storm of creating 16K files in one
// directory serialises ranks: some finish within seconds, others take more
// than 300 seconds.
#include <cstdio>

#include "common.hpp"
#include "simcore/stats.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Figure 9 - I/O time distribution, 1PFPP, 16,384 processors",
         "Each point is one rank's wall-clock I/O time for one checkpoint.");

  constexpr int kNp = 16384;
  iolib::SimStackOptions opt;
  iolib::SimStack stack(kNp, opt);
  bgckpt::bench::attachObs(stack);
  const auto r = runSim(stack, kNp, iolib::StrategyConfig::onePfpp());

  sim::Sample sample;
  std::vector<double> xs, ys;
  xs.reserve(kNp);
  ys.reserve(kNp);
  for (int rank = 0; rank < kNp; ++rank) {
    const double v = r.perRankTime[static_cast<std::size_t>(rank)];
    sample.add(v);
    if (rank % 16 == 0) {  // thin the scatter for terminal width
      xs.push_back(rank);
      ys.push_back(v);
    }
  }

  std::printf("ranks: %d   makespan: %s   bandwidth: %s\n", kNp,
              secs(r.makespan).c_str(), gbs(r.bandwidth).c_str());
  std::printf("per-rank I/O time: min %.1f s  median %.1f s  p90 %.1f s  "
              "max %.1f s\n",
              sample.min(), sample.median(), sample.quantile(0.9),
              sample.max());
  std::printf("%s", analysis::scatter(xs, ys, 72, 20, "processor rank",
                                      "I/O time [s]").c_str());

  std::vector<Check> checks;
  checks.push_back({"slowest ranks exceed 300 s (paper: 'more than 300 s')",
                    sample.max() > 300.0, secs(sample.max())});
  checks.push_back({"some ranks finish within seconds",
                    sample.min() < 10.0, secs(sample.min())});
  checks.push_back({"high variance across ranks (serialised creates spread "
                    "completions over the full storm)",
                    sample.max() > 1.3 * sample.median() &&
                        sample.quantile(0.1) < 0.5 * sample.median(),
                    secs(sample.max()) + " vs median " +
                        secs(sample.median())});
  checks.push_back({"metadata creates dominate: mean create time > 1 s",
                    stack.profile.opCount(prof::Op::kCreate) ==
                            static_cast<std::uint64_t>(kNp) &&
                        stack.profile.perRankBusy(kNp)[100] > 1.0,
                    "16384 creates issued"});
  return reportChecks(checks);
}
