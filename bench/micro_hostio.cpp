// Microbenchmarks of the host-side real-file path: checksum throughput,
// block writes through the container format, and the three strategies
// end-to-end at laptop scale (files under /tmp).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "hostio/host_checkpoint.hpp"
#include "iofmt/file_io.hpp"
#include "obs/attr.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/optrace.hpp"

namespace {

using namespace bgckpt;

std::filesystem::path benchDir() {
  return std::filesystem::temp_directory_path() /
         ("bgckpt_microbench_" + std::to_string(::getpid()));
}

void BM_Crc32(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i * 31);
  for (auto _ : state) benchmark::DoNotOptimize(iofmt::crc32(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64 << 10)->Arg(4 << 20);

void BM_WriterBlockWrites(benchmark::State& state) {
  const auto dir = benchDir();
  std::filesystem::create_directories(dir);
  iofmt::FileSpec spec;
  spec.ranksInFile = 16;
  spec.fieldBytesPerRank = static_cast<std::uint64_t>(state.range(0));
  spec.fieldNames = {"Ex", "Ey", "Ez", "Hx", "Hy", "Hz"};
  std::vector<std::byte> block(spec.fieldBytesPerRank, std::byte{0x5A});
  for (auto _ : state) {
    iofmt::CheckpointWriter writer((dir / "bench_ckpt").string(), spec);
    for (int f = 0; f < 6; ++f)
      for (int r = 0; r < 16; ++r) writer.writeBlock(f, r, block);
    writer.close();
  }
  state.SetBytesProcessed(state.iterations() * 6 * 16 * state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WriterBlockWrites)->Arg(64 << 10)->Iterations(20);

void runStrategy(benchmark::State& state, hostio::HostStrategy strategy) {
  const auto dir = benchDir();
  constexpr int kRanks = 8;
  hostio::HostSpec spec;
  spec.fieldNames = {"Ex", "Ey", "Ez", "Hx", "Hy", "Hz"};
  spec.fieldBytesPerRank = static_cast<std::uint64_t>(state.range(0));
  std::vector<hostio::HostRankData> data(kRanks);
  for (auto& r : data)
    r.fields.assign(6, std::vector<std::byte>(spec.fieldBytesPerRank,
                                              std::byte{0x33}));
  int step = 0;
  for (auto _ : state) {
    spec.directory = (dir / std::to_string(step++)).string();
    auto result = hostio::writeCheckpoint(
        spec, hostio::HostConfig{strategy, 2}, data);
    benchmark::DoNotOptimize(result.bandwidth);
  }
  state.SetBytesProcessed(state.iterations() * kRanks * 6 * state.range(0));
  std::filesystem::remove_all(dir);
}

void BM_Host1Pfpp(benchmark::State& state) {
  runStrategy(state, hostio::HostStrategy::k1Pfpp);
}
void BM_HostCoIo(benchmark::State& state) {
  runStrategy(state, hostio::HostStrategy::kCoIo);
}
void BM_HostRbIo(benchmark::State& state) {
  runStrategy(state, hostio::HostStrategy::kRbIo);
}
BENCHMARK(BM_Host1Pfpp)->Arg(256 << 10)->Iterations(25);
BENCHMARK(BM_HostCoIo)->Arg(256 << 10)->Iterations(25);
BENCHMARK(BM_HostRbIo)->Arg(256 << 10)->Iterations(25);

std::optional<obs::json::Value> parseJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  return obs::json::parse(text);
}

// Observability on the real-file backend: rbIO at host scale with per-rank
// causal tracing and blocked-time attribution, asserting both artifacts
// are produced and schema-valid (the obs suites otherwise only exercise
// the simulated mpisim figures).
void BM_HostObsArtifacts(benchmark::State& state) {
  const auto dir = benchDir();
  std::filesystem::create_directories(dir);
  constexpr int kRanks = 8;
  constexpr int kNf = 2;
  constexpr int kGroupSize = kRanks / kNf;
  hostio::HostSpec spec;
  spec.fieldNames = {"Ex", "Ey", "Ez", "Hx", "Hy", "Hz"};
  spec.fieldBytesPerRank = static_cast<std::uint64_t>(state.range(0));
  std::vector<hostio::HostRankData> data(kRanks);
  for (auto& r : data)
    r.fields.assign(6, std::vector<std::byte>(spec.fieldBytesPerRank,
                                              std::byte{0x33}));
  const std::string attrJson = (dir / "attr.json").string();
  const std::string optraceJson = (dir / "optrace.json").string();
  const std::uint64_t perRankBytes = 6 * spec.fieldBytesPerRank;
  int step = 0;
  for (auto _ : state) {
    obs::Observability obs;
    auto attr = std::make_shared<obs::AttributionSink>();
    attr->exportTo(attrJson, "");
    obs.addSink(attr);
    obs::OpTraceSink& sink = obs.attachOpTrace(/*sampleEvery=*/1);
    sink.exportTo(optraceJson);

    spec.directory = (dir / std::to_string(step++)).string();
    hostio::HostConfig config{hostio::HostStrategy::kRbIo, kNf};
    config.tracer = obs.opTracer();
    const auto result = hostio::writeCheckpoint(spec, config, data);

    // Replay each rank's measured envelope into the attribution engine:
    // the wall time a rank spent inside the checkpoint is its blocked
    // time, split into the handoff (workers) or the write (writers).
    for (int r = 0; r < kRanks; ++r) {
      const double end = result.perRankSeconds[static_cast<std::size_t>(r)];
      const bool isWriter = r % kGroupSize == 0;
      obs.begin(obs::Layer::kApp, r, "checkpoint", 0.0);
      obs.completeBytes(obs::Layer::kIo, r, isWriter ? "write" : "send", 0.0,
                        end, perRankBytes);
      obs.end(obs::Layer::kApp, r, "checkpoint", end);
    }
    obs.finalize(result.wallSeconds);

    const auto attrDoc = parseJsonFile(attrJson);
    if (!attrDoc || !attrDoc->isObject() ||
        attrDoc->find("totals") == nullptr ||
        attrDoc->find("ranks") == nullptr ||
        attrDoc->numberOr("horizon_seconds", 0) <= 0) {
      state.SkipWithError("attribution artifact missing or malformed");
      break;
    }
    const auto optraceDoc = parseJsonFile(optraceJson);
    if (!optraceDoc ||
        optraceDoc->stringOr("schema", "") != obs::OpTracer::kSchemaVersion) {
      state.SkipWithError("optrace artifact missing or schema-invalid");
      break;
    }
    const obs::OpTracer& tracer = sink.tracer();
    // One "host" request per rank; every worker block linked into its
    // writer's aggregate (fan-in = groupSize - 1 workers per writer).
    if (tracer.minted() != kRanks || tracer.completed() != kRanks ||
        tracer.lineageEdges() != kRanks - kNf ||
        tracer.fanIn().median() != kGroupSize - 1) {
      state.SkipWithError("optrace lineage does not match the rbIO fan-in");
      break;
    }
    benchmark::DoNotOptimize(result.bandwidth);
  }
  state.SetBytesProcessed(state.iterations() * kRanks * 6 * state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_HostObsArtifacts)->Arg(64 << 10)->Iterations(5);

}  // namespace
