// Extension: forecast at full-Intrepid scale. The paper measured 16K-64K
// cores and notes NekCEM itself scales to 131K; its conclusion predicts
// rbIO "can use application-level, two-phase I/O to achieve improved
// performance and better scalability". This harness runs the calibrated
// simulator at 131,072 ranks (1.1 billion grid points, ~315 GB per
// checkpoint) to see whether the paper's trends extrapolate: rbIO nf=ng
// should hold near the system ceiling while coIO 64:1 degrades further
// (8192 concurrent streams) and the 1PFPP storm deepens.
#include <cstdio>

#include "common.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Extension - forecast at 131,072 ranks (full Intrepid)",
         "Extrapolating Fig. 5 one doubling beyond the paper's data.");

  constexpr int kNp = 131072;
  const auto spec = iolib::CheckpointSpec::nekcemWeakScaling(kNp);
  std::printf("\ncheckpoint volume: %.0f GB per step\n",
              static_cast<double>(kNp) *
                  static_cast<double>(spec.bytesPerRank()) / 1e9);

  struct Row {
    const char* name;
    iolib::StrategyConfig cfg;
    double bandwidth = 0;
    double makespan = 0;
  };
  std::vector<Row> rows = {
      {"coIO 64:1", iolib::StrategyConfig::coIo(kNp / 64)},
      {"rbIO 64:1 nf=ng", iolib::StrategyConfig::rbIo(64, true)},
      {"rbIO 128:1 nf=ng", iolib::StrategyConfig::rbIo(128, true)},
  };
  for (auto& row : rows) {
    const auto r = runSim(kNp, row.cfg);
    row.bandwidth = r.bandwidth;
    row.makespan = r.makespan;
    std::printf("  %-18s %8s  (makespan %s)\n", row.name,
                gbs(r.bandwidth).c_str(), secs(r.makespan).c_str());
    std::fflush(stdout);
  }
  // The 64K reference points for trend checks.
  const auto rb64k = runSim(65536, iolib::StrategyConfig::rbIo(64, true));
  const auto co64k = runSim(65536, iolib::StrategyConfig::coIo(65536 / 64));

  std::vector<Check> checks;
  checks.push_back(
      {"rbIO 64:1 still beats coIO 64:1 at 131K",
       rows[1].bandwidth > rows[0].bandwidth,
       gbs(rows[1].bandwidth) + " vs " + gbs(rows[0].bandwidth)});
  checks.push_back(
      {"coIO 64:1 keeps degrading past 64K (8192 streams of thrash)",
       rows[0].bandwidth < co64k.bandwidth,
       gbs(rows[0].bandwidth) + " vs " + gbs(co64k.bandwidth) + " at 64K"});
  checks.push_back(
      {"rbIO 64:1 holds most of its 64K bandwidth at 131K",
       rows[1].bandwidth > 0.5 * rb64k.bandwidth,
       gbs(rows[1].bandwidth) + " vs " + gbs(rb64k.bandwidth) + " at 64K"});
  checks.push_back(
      {"retuning helps: np:ng=128:1 (nf=1024, the Fig. 8 optimum) beats "
       "64:1 (nf=2048) at this scale",
       rows[2].bandwidth > rows[1].bandwidth,
       gbs(rows[2].bandwidth) + " vs " + gbs(rows[1].bandwidth)});
  return reportChecks(checks);
}
