// Figure 10: per-processor I/O time distribution for coIO (np:nf = 64:1)
// on 65,536 processors, under the shared filesystem's normal user load.
// Most processors finish within ~10-20 s; straggler groups hit by noisy
// episodes take several times longer, and the synchronised collective makes
// everyone in those groups wait.
//
// Note: Fig. 5's bandwidths are medians over repeated quiet-ish runs; this
// figure reproduces a single *representative noisy run* (the paper notes
// the tests ran "under normal load, where there might be noise from other
// online users"), so the background-noise model is elevated here.
#include <cstdio>

#include "common.hpp"
#include "simcore/stats.hpp"

using namespace bgckpt;
using namespace bgckpt::bench;

int main(int argc, char** argv) {
  bgckpt::bench::obsInit(argc, argv);
  banner("Figure 10 - I/O time distribution, coIO 64:1, 65,536 processors",
         "One checkpoint on a noisy shared filesystem.");

  constexpr int kNp = 65536;
  iolib::SimStackOptions opt;
  opt.seed = 42;
  opt.noise.slowProbability = 0.02;      // busier-than-usual afternoon
  opt.noise.severeProbability = 6e-5;    // a couple of severe stalls
  opt.noise.severeFactorMedian = 400.0;  // RAID-rebuild-class episodes
  iolib::SimStack stack(kNp, opt);
  bgckpt::bench::attachObs(stack);
  const auto r = runSim(stack, kNp, iolib::StrategyConfig::coIo(kNp / 64));

  sim::Sample sample;
  std::vector<double> xs, ys;
  for (int rank = 0; rank < kNp; ++rank) {
    const double v = r.perRankTime[static_cast<std::size_t>(rank)];
    sample.add(v);
    if (rank % 64 == 0) {
      xs.push_back(rank);
      ys.push_back(v);
    }
  }

  std::printf("ranks: %d   makespan: %s   bandwidth: %s\n", kNp,
              secs(r.makespan).c_str(), gbs(r.bandwidth).c_str());
  std::printf("per-rank I/O time: min %.1f s  median %.1f s  p99 %.1f s  "
              "max %.1f s\n",
              sample.min(), sample.median(), sample.quantile(0.99),
              sample.max());
  std::printf("%s", analysis::scatter(xs, ys, 72, 20, "processor rank",
                                      "I/O time [s]").c_str());

  std::vector<Check> checks;
  checks.push_back({"most processors finish near the median (synchronised groups)",
                    sample.quantile(0.9) < 1.6 * sample.median(),
                    "p90 " + secs(sample.quantile(0.9)) + " vs median " +
                        secs(sample.median())});
  checks.push_back({"noise outliers exist (slowest groups several times "
                    "the median, like the paper's ~40 s stragglers)",
                    sample.max() > 2.0 * sample.median(),
                    "max " + secs(sample.max()) + " vs median " +
                        secs(sample.median())});
  checks.push_back({"scale far below 1PFPP's (max well under 300 s)",
                    sample.max() < 150.0, secs(sample.max())});
  return reportChecks(checks);
}
