#include "analysis/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace bgckpt::analysis {

std::string barChart(const std::vector<Bar>& bars, const std::string& unit,
                     int width, bool logScale) {
  if (bars.empty()) return "(no data)\n";
  double maxVal = 0, minVal = 1e300;
  std::size_t labelWidth = 0;
  for (const auto& b : bars) {
    maxVal = std::max(maxVal, b.value);
    if (b.value > 0) minVal = std::min(minVal, b.value);
    labelWidth = std::max(labelWidth, b.label.size());
  }
  if (maxVal <= 0) maxVal = 1;
  std::ostringstream out;
  for (const auto& b : bars) {
    double frac;
    if (logScale && b.value > 0 && maxVal > minVal) {
      frac = (std::log10(b.value) - std::log10(minVal) + 0.3) /
             (std::log10(maxVal) - std::log10(minVal) + 0.3);
    } else {
      frac = b.value / maxVal;
    }
    const int len = std::clamp(static_cast<int>(frac * width), b.value > 0 ? 1 : 0, width);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%10.3f %s", b.value, unit.c_str());
    out << "  " << b.label << std::string(labelWidth - b.label.size(), ' ')
        << " |" << std::string(static_cast<std::size_t>(len), '#')
        << std::string(static_cast<std::size_t>(width - len), ' ') << "|"
        << buf << "\n";
  }
  return out.str();
}

std::string scatter(const std::vector<double>& xs,
                    const std::vector<double>& ys, int width, int height,
                    const std::string& xLabel, const std::string& yLabel) {
  if (xs.empty() || xs.size() != ys.size()) return "(no data)\n";
  const double xMax = *std::max_element(xs.begin(), xs.end());
  const double yMax = *std::max_element(ys.begin(), ys.end());
  const double xMin = *std::min_element(xs.begin(), xs.end());
  const double ySpan = yMax > 0 ? yMax : 1.0;
  const double xSpan = xMax > xMin ? xMax - xMin : 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    auto col = static_cast<int>((xs[i] - xMin) / xSpan * (width - 1));
    auto row = static_cast<int>(ys[i] / ySpan * (height - 1));
    col = std::clamp(col, 0, width - 1);
    row = std::clamp(row, 0, height - 1);
    auto& cell = grid[static_cast<std::size_t>(height - 1 - row)]
                     [static_cast<std::size_t>(col)];
    cell = cell == ' ' ? '.' : (cell == '.' ? 'x' : '#');
  }

  std::ostringstream out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", yMax);
  out << "  " << yLabel << " (max " << buf << ")\n";
  for (const auto& row : grid) out << "  |" << row << "\n";
  out << "  +" << std::string(static_cast<std::size_t>(width), '-') << "\n";
  std::snprintf(buf, sizeof(buf), "%.6g", xMax);
  out << "   " << xLabel << " 0 .. " << buf << "\n";
  return out.str();
}

std::string activityStrip(const std::vector<std::string>& names,
                          const std::vector<std::vector<int>>& series,
                          double binSeconds) {
  static const char kShades[] = " .:-=+*#%@";
  int maxCount = 1;
  for (const auto& s : series)
    for (int v : s) maxCount = std::max(maxCount, v);
  std::size_t nameWidth = 0;
  for (const auto& n : names) nameWidth = std::max(nameWidth, n.size());
  std::ostringstream out;
  for (std::size_t s = 0; s < series.size(); ++s) {
    out << "  " << names[s] << std::string(nameWidth - names[s].size(), ' ')
        << " |";
    for (int v : series[s]) {
      const int shade =
          v <= 0 ? 0
                 : 1 + static_cast<int>(8.0 * (v - 1) / std::max(1, maxCount - 1));
      out << kShades[std::clamp(shade, 0, 9)];
    }
    out << "|\n";
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "  (each column = %.2f s; shade = active writers, max %d)\n",
                binSeconds, maxCount);
  out << buf;
  return out.str();
}

std::string heatmap(const std::vector<std::string>& rowLabels,
                    const std::vector<std::vector<double>>& rows,
                    double binSeconds, const std::string& valueLabel,
                    int width) {
  static const char kShades[] = " .:-=+*#%@";
  if (rows.empty()) return "(no data)\n";
  std::size_t bins = 0;
  double maxVal = 0;
  for (const auto& r : rows) {
    bins = std::max(bins, r.size());
    for (double v : r) maxVal = std::max(maxVal, v);
  }
  if (bins == 0) return "(no data)\n";
  const auto cols = std::min<std::size_t>(static_cast<std::size_t>(width), bins);
  const double binsPerCol = static_cast<double>(bins) / static_cast<double>(cols);
  std::size_t labelWidth = 0;
  for (const auto& l : rowLabels) labelWidth = std::max(labelWidth, l.size());

  std::ostringstream out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::string& label = r < rowLabels.size() ? rowLabels[r] : "";
    out << "  " << label << std::string(labelWidth - label.size(), ' ')
        << " |";
    for (std::size_t c = 0; c < cols; ++c) {
      // Average the source bins covered by this display column.
      const auto b0 = static_cast<std::size_t>(
          static_cast<double>(c) * binsPerCol);
      auto b1 = static_cast<std::size_t>(
          static_cast<double>(c + 1) * binsPerCol);
      b1 = std::max(b1, b0 + 1);
      double sum = 0;
      for (std::size_t b = b0; b < b1 && b < rows[r].size(); ++b)
        sum += rows[r][b];
      const double v = sum / static_cast<double>(b1 - b0);
      const int shade =
          maxVal <= 0 || v <= 0
              ? 0
              : 1 + static_cast<int>(8.0 * std::min(1.0, v / maxVal));
      out << kShades[std::clamp(shade, 0, 9)];
    }
    out << "|\n";
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "  (each column = %.3g s; shade = %s, max %.6g)\n",
                binSeconds * binsPerCol, valueLabel.c_str(), maxVal);
  out << buf;
  return out.str();
}

std::string waterfall(const std::vector<WaterfallSpan>& spans, double t0,
                      double t1, int width) {
  if (spans.empty()) return "  (no spans)\n";
  const double window = t1 - t0;
  std::vector<std::size_t> order(spans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return spans[a].start < spans[b].start;
                   });
  std::size_t labelWidth = 3;
  for (const auto& s : spans) labelWidth = std::max(labelWidth, s.label.size());

  std::ostringstream out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-*s %10s %10s  |%-*s|\n",
                static_cast<int>(labelWidth), "hop", "+start", "dur", width,
                " 0 .. e2e");
  out << buf;
  for (const std::size_t i : order) {
    const WaterfallSpan& s = spans[i];
    // Column range of this span inside the request window.
    int c0 = 0, c1 = 0;
    if (window > 0) {
      c0 = static_cast<int>((s.start - t0) / window *
                            static_cast<double>(width));
      c1 = static_cast<int>((s.start + s.dur - t0) / window *
                            static_cast<double>(width));
      c0 = std::clamp(c0, 0, width - 1);
      c1 = std::clamp(c1, c0, width);
    }
    std::string bar(static_cast<std::size_t>(width), ' ');
    if (c1 == c0) {
      bar[static_cast<std::size_t>(c0)] = '.';
    } else {
      for (int c = c0; c < c1; ++c) bar[static_cast<std::size_t>(c)] = '=';
    }
    std::snprintf(buf, sizeof(buf), "  %-*s %10.4g %10.4g  |%s|",
                  static_cast<int>(labelWidth), s.label.c_str(), s.start - t0,
                  s.dur, bar.c_str());
    out << buf;
    if (s.bytes > 0) {
      std::snprintf(buf, sizeof(buf), " %.3g MiB",
                    static_cast<double>(s.bytes) / (1024.0 * 1024.0));
      out << buf;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace bgckpt::analysis
