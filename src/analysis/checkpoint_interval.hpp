// Optimal checkpoint cadence under failures.
//
// The paper's introduction motivates everything with rising failure rates:
// "As the number of processors increases to hundreds of thousands ... the
// failure probability rises correspondingly". The classical theory
// (Young 1974, Daly 2006) converts a checkpoint cost Tc and a system MTBF
// into the optimal interval and the expected efficiency — which is exactly
// how a cheaper checkpoint (rbIO) buys more science per compute cycle:
// lower Tc => shorter optimal interval => less lost work per failure AND
// less time spent checkpointing.
#pragma once

namespace bgckpt::analysis {

/// Young's first-order optimum: sqrt(2 * Tc * MTBF).
double youngInterval(double checkpointSeconds, double mtbfSeconds);

/// Daly's higher-order optimum (valid for Tc < 2 * MTBF):
/// sqrt(2 Tc M) * [1 + sqrt(Tc/(2M))/3 + (Tc/(2M))/9] - Tc.
double dalyInterval(double checkpointSeconds, double mtbfSeconds);

/// Expected fraction of wall time doing useful work when checkpointing
/// every `interval` seconds of computation with cost Tc, restart cost Tr,
/// and exponential failures at rate 1/MTBF (Daly's run-time model).
double efficiency(double interval, double checkpointSeconds,
                  double restartSeconds, double mtbfSeconds);

/// System MTBF for `nodes` nodes with per-node MTBF `nodeMtbfSeconds`.
double systemMtbf(int nodes, double nodeMtbfSeconds);

/// Expected wall time to complete `workSeconds` of computation under the
/// same model.
double expectedRuntime(double workSeconds, double interval,
                       double checkpointSeconds, double restartSeconds,
                       double mtbfSeconds);

}  // namespace bgckpt::analysis
