// Analytical models from the paper.
//
// Eq. (1): end-to-end production improvement of one I/O approach over
// another at checkpoint frequency nc (checkpoint every nc compute steps):
//
//     improvement = (Ratio_base + nc) / (Ratio_new + nc),
//
// where Ratio = T(checkpoint) / T(computation step) — Fig. 7's quantity.
//
// Eqs. (2)-(7), Section V-C2: total processor-time blocked by I/O.
//
//     T_coIO = np * S / BW_coIO                                       (3)
//     T_rbIO = (np-ng) * (S/BW_p + lambda * S/BW_rbIO)
//              + ng * S/BW_rbIO                                       (4)
//     Speedup = T_coIO / T_rbIO                                       (2)
//             ~ 1 / ((lambda + ng/np (1-lambda)) * BW_coIO/BW_rbIO)   (6)
//             ~ (np/ng) * (BW_rbIO / BW_coIO)      for lambda -> 0    (7)
#pragma once

namespace bgckpt::analysis {

/// Eq. (1).
double productionImprovement(double ratioBase, double ratioNew, double nc);

struct SpeedupParams {
  double np = 0;            ///< total processors
  double ng = 0;            ///< writers (aggregator processors)
  double fileBytes = 0;     ///< S, bytes per checkpoint
  double bwCoIo = 0;        ///< coIO raw write bandwidth (B/s)
  double bwRbIo = 0;        ///< rbIO raw write bandwidth (B/s)
  double bwPerceived = 0;   ///< worker-perceived handoff bandwidth (B/s)
  double lambda = 0;        ///< fraction of writer write time workers block
};

/// Eq. (3): processor-seconds blocked under coIO.
double blockedTimeCoIo(const SpeedupParams& p);

/// Eq. (4): processor-seconds blocked under rbIO.
double blockedTimeRbIo(const SpeedupParams& p);

/// Eq. (2)/(5): exact ratio of the two.
double speedupExact(const SpeedupParams& p);

/// Eq. (6): the paper's simplification (drops the perceived-bandwidth
/// term, np-ng ~= np).
double speedupApprox(const SpeedupParams& p);

/// Eq. (7): the lambda -> 0 limit, (np/ng) * BW_rbIO/BW_coIO.
double speedupLimit(const SpeedupParams& p);

}  // namespace bgckpt::analysis
