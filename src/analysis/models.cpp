#include "analysis/models.hpp"

#include "simcore/simcheck.hpp"


namespace bgckpt::analysis {

double productionImprovement(double ratioBase, double ratioNew, double nc) {
  SIM_CHECK(nc > 0, "production model needs at least one checkpoint");
  return (ratioBase + nc) / (ratioNew + nc);
}

double blockedTimeCoIo(const SpeedupParams& p) {
  return p.np * p.fileBytes / p.bwCoIo;
}

double blockedTimeRbIo(const SpeedupParams& p) {
  const double workerTerm =
      (p.np - p.ng) * (p.fileBytes / p.bwPerceived +
                       p.lambda * p.fileBytes / p.bwRbIo);
  const double writerTerm = p.ng * p.fileBytes / p.bwRbIo;
  return workerTerm + writerTerm;
}

double speedupExact(const SpeedupParams& p) {
  return blockedTimeCoIo(p) / blockedTimeRbIo(p);
}

double speedupApprox(const SpeedupParams& p) {
  // Eq. (6): (np-ng)/np ~= 1 and BW_coIO/BW_p ~= 0.
  const double denom =
      (p.lambda + (p.ng / p.np) * (1.0 - p.lambda)) * (p.bwCoIo / p.bwRbIo);
  return 1.0 / denom;
}

double speedupLimit(const SpeedupParams& p) {
  return (p.np / p.ng) * (p.bwRbIo / p.bwCoIo);
}

}  // namespace bgckpt::analysis
