// Terminal rendering helpers for the figure benches: horizontal bar charts
// (optionally log-scaled), scatter grids (the per-rank I/O time figures),
// and multi-series columns (the nf sweep).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bgckpt::analysis {

struct Bar {
  std::string label;
  double value = 0;
};

/// Horizontal bar chart. Values must be positive for logScale.
std::string barChart(const std::vector<Bar>& bars, const std::string& unit,
                     int width = 52, bool logScale = false);

/// Scatter of (x, y) points on a character grid; used for the Fig. 9-11
/// per-rank I/O time distributions.
std::string scatter(const std::vector<double>& xs,
                    const std::vector<double>& ys, int width = 72,
                    int height = 20, const std::string& xLabel = "x",
                    const std::string& yLabel = "y");

/// Time-binned activity strip (Fig. 12): one row per series, column
/// intensity from counts.
std::string activityStrip(const std::vector<std::string>& names,
                          const std::vector<std::vector<int>>& series,
                          double binSeconds);

/// Generic utilization heatmap (trace_report --timeline): one row per
/// resource instance, shade = the row's value in that time bin relative to
/// the maximum across the whole grid. Rows wider than `width` columns are
/// resampled by averaging; `binSeconds` is the bin width BEFORE resampling
/// (the footer reports the effective per-column span). `valueLabel` names
/// the quantity (e.g. "mean queue depth").
std::string heatmap(const std::vector<std::string>& rowLabels,
                    const std::vector<std::vector<double>>& rows,
                    double binSeconds, const std::string& valueLabel,
                    int width = 72);

/// One span row of a request waterfall (trace_report --waterfall).
struct WaterfallSpan {
  std::string label;
  double start = 0;  // absolute simulated seconds
  double dur = 0;
  std::uint64_t bytes = 0;
};

/// Hop waterfall for one traced request: one row per span, with a bar
/// positioned inside the request's [t0, t1] window so queueing gaps and
/// overlap are visible at a glance. Spans render in start order; zero-width
/// spans mark their position with a single tick.
std::string waterfall(const std::vector<WaterfallSpan>& spans, double t0,
                      double t1, int width = 56);

}  // namespace bgckpt::analysis
