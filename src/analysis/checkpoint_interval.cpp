#include "analysis/checkpoint_interval.hpp"

#include "simcore/simcheck.hpp"

#include <cmath>

namespace bgckpt::analysis {

double youngInterval(double checkpointSeconds, double mtbfSeconds) {
  SIM_CHECK(checkpointSeconds > 0 && mtbfSeconds > 0,
            "checkpoint time and MTBF must be positive");
  return std::sqrt(2.0 * checkpointSeconds * mtbfSeconds);
}

double dalyInterval(double checkpointSeconds, double mtbfSeconds) {
  SIM_CHECK(checkpointSeconds > 0 && mtbfSeconds > 0,
            "checkpoint time and MTBF must be positive");
  const double tc = checkpointSeconds;
  const double m = mtbfSeconds;
  if (tc >= 2.0 * m) return m;  // Daly's fallback regime
  const double x = tc / (2.0 * m);
  return std::sqrt(2.0 * tc * m) *
             (1.0 + std::sqrt(x) / 3.0 + x / 9.0) -
         tc;
}

double efficiency(double interval, double checkpointSeconds,
                  double restartSeconds, double mtbfSeconds) {
  SIM_CHECK(interval > 0 && mtbfSeconds > 0,
            "interval and MTBF must be positive");
  // Daly's expected-runtime model: a segment of `interval` useful seconds
  // costs interval + Tc; failures arrive Poisson(1/M) and each costs the
  // restart plus (on average) half a segment of lost work.
  const double segment = interval + checkpointSeconds;
  const double failureRate = 1.0 / mtbfSeconds;
  const double lostPerFailure = restartSeconds + segment / 2.0;
  const double wallPerSegment =
      segment * (1.0 + failureRate * lostPerFailure);
  return interval / wallPerSegment;
}

double systemMtbf(int nodes, double nodeMtbfSeconds) {
  SIM_CHECK(nodes > 0 && nodeMtbfSeconds > 0,
            "node count and node MTBF must be positive");
  return nodeMtbfSeconds / nodes;
}

double expectedRuntime(double workSeconds, double interval,
                       double checkpointSeconds, double restartSeconds,
                       double mtbfSeconds) {
  const double eff =
      efficiency(interval, checkpointSeconds, restartSeconds, mtbfSeconds);
  return workSeconds / eff;
}

}  // namespace bgckpt::analysis
