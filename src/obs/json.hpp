// Minimal recursive-descent JSON parser.
//
// Just enough JSON for this repo's own emitters: tools/trace_report parses
// the JSONL event log and the metrics JSON, and the obs tests validate that
// ChromeTraceSink's output is well-formed. Supports objects, arrays,
// strings (with the standard escapes; \uXXXX decodes the BMP, and
// surrogate pairs decode to astral-plane code points), numbers, booleans,
// and null. Not a general-purpose validator: it accepts some malformed
// numbers that strtod tolerates, and lone surrogates pass through.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bgckpt::obs::json {

class Value;
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::shared_ptr<Array> array;    // shared: Value stays cheaply copyable
  std::shared_ptr<Object> object;

  bool isNull() const { return type == Type::kNull; }
  bool isObject() const { return type == Type::kObject; }
  bool isArray() const { return type == Type::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  /// Convenience accessors with defaults.
  double numberOr(std::string_view key, double fallback) const;
  std::string stringOr(std::string_view key, const std::string& fallback) const;
};

/// Parse a complete document. Returns nullopt on any syntax error or
/// trailing garbage; `error`, when given, receives a description.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

}  // namespace bgckpt::obs::json
