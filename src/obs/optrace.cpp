#include "obs/optrace.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <vector>

#include "simcore/simcheck.hpp"

namespace bgckpt::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void appendNum(std::string& out, double v) { appendf(out, "%.9g", v); }

double quantileOr(const sim::Sample& s, double q) {
  return s.empty() ? 0.0 : s.quantile(q);
}

}  // namespace

const char* hopName(Hop hop) {
  switch (hop) {
    case Hop::kHandoffSend: return "handoff_send";
    case Hop::kHandoffRecv: return "handoff_recv";
    case Hop::kNetInject: return "net_inject";
    case Hop::kNetFlight: return "net_flight";
    case Hop::kNetEject: return "net_eject";
    case Hop::kNetLocal: return "net_local";
    case Hop::kCollective: return "collective";
    case Hop::kFsCreate: return "fs_create";
    case Hop::kFsOpen: return "fs_open";
    case Hop::kFsClose: return "fs_close";
    case Hop::kTokenWait: return "token_wait";
    case Hop::kIonQueue: return "ion_queue";
    case Hop::kIonForward: return "ion_forward";
    case Hop::kServerQueue: return "server_queue";
    case Hop::kServerService: return "server_service";
    case Hop::kArrayQueue: return "array_queue";
    case Hop::kDdnCommit: return "ddn_commit";
    case Hop::kLocalWrite: return "local_write";
    case Hop::kHostWrite: return "host_write";
    case Hop::kCount: break;
  }
  return "?";
}

OpTracer::OpTracer(std::uint32_t sampleEvery, int tailN)
    : sampleEvery_(sampleEvery > 0 ? sampleEvery : 1),
      tailN_(tailN >= 0 ? tailN : 0) {}

OpTraceContext OpTracer::mint(int rank, const char* op, std::uint64_t offset,
                              sim::Bytes bytes, sim::SimTime now) {
  const auto id = static_cast<std::uint32_t>(minted_++);
  Request req;
  req.id = id;
  req.rank = rank;
  req.op = op;
  req.offset = offset;
  req.bytes = bytes;
  req.t0 = now;
  req.sampled = (id % sampleEvery_) == 0;
  open_.emplace(id, std::move(req));
  return OpTraceContext{this, id};
}

void OpTracer::recordHop(std::uint32_t id, Hop h, sim::SimTime start,
                         sim::SimTime end, sim::Bytes bytes) {
  auto it = open_.find(id);
  if (it == open_.end()) return;  // request already completed: late hop
  Span s;
  s.t0 = start;
  s.dur = end - start;
  s.bytes = bytes;
  s.hop = h;
  it->second.spans.push_back(s);
}

void OpTracer::linkChild(std::uint32_t parent, std::uint32_t child) {
  if (parent == child) return;
  auto it = open_.find(parent);
  if (it == open_.end()) return;
  Request& req = it->second;
  ++req.fanIn;
  ++edges_;
  if (req.children.size() < kMaxChildrenStored)
    req.children.push_back(child);
  else
    req.childrenTruncated = true;
  auto cit = open_.find(child);
  if (cit != open_.end()) cit->second.parent = parent;
}

void OpTracer::completeRequest(std::uint32_t id, sim::SimTime end) {
  auto it = open_.find(id);
  if (it == open_.end()) return;  // double-complete is harmless
  Request req = std::move(it->second);
  open_.erase(it);
  req.t1 = end;
  // A linked child still open completes with its aggregate: the block's
  // journey ends when the write that swallowed it hits the array.
  for (const std::uint32_t c : req.children) completeRequest(c, end);
  aggregate(std::move(req));
}

void OpTracer::aggregate(Request&& req) {
  ++completed_;
  if (req.unfinished) ++unfinished_;
  const double e2e = req.t1 - req.t0;
  std::array<double, kNumHops> totals{};
  std::array<bool, kNumHops> touched{};
  for (const Span& s : req.spans) {
    totals[static_cast<std::size_t>(s.hop)] += s.dur;
    touched[static_cast<std::size_t>(s.hop)] = true;
  }
  const auto feed = [&](OpAgg& agg) {
    ++agg.requests;
    agg.e2eAll.add(e2e);
    if (req.sampled) agg.e2eSampled.add(e2e);
    for (int h = 0; h < kNumHops; ++h) {
      if (!touched[static_cast<std::size_t>(h)]) continue;
      HopAgg& ha = agg.hops[static_cast<std::size_t>(h)];
      ++ha.requests;
      ha.totalSeconds += totals[static_cast<std::size_t>(h)];
      if (req.sampled)
        ha.sampledTotals.add(totals[static_cast<std::size_t>(h)]);
    }
  };
  feed(global_);
  feed(ops_[req.op]);
  if (req.fanIn > 0) fanIn_.add(static_cast<double>(req.fanIn));
  if (req.sampled) ++sampledCount_;

  // Always-capture tail: a min-heap on e2e keeps the N slowest waterfalls
  // regardless of the sampling decision.
  const auto slower = [](const Request& a, const Request& b) {
    return (a.t1 - a.t0) > (b.t1 - b.t0);  // min-heap on e2e
  };
  if (tailN_ > 0) {
    if (tail_.size() < static_cast<std::size_t>(tailN_)) {
      tail_.push_back(req);
      std::push_heap(tail_.begin(), tail_.end(), slower);
    } else if (e2e > tail_.front().t1 - tail_.front().t0) {
      std::pop_heap(tail_.begin(), tail_.end(), slower);
      tail_.back() = req;
      std::push_heap(tail_.begin(), tail_.end(), slower);
    }
  }
  if (req.sampled) {
    if (sampled_.size() < kMaxSampledKept)
      sampled_.push_back(std::move(req));
    else
      ++sampledDropped_;
  }
}

void OpTracer::closeOut(sim::SimTime horizon) {
  if (closed_) return;
  closed_ = true;
  horizon_ = horizon;
  // Complete leftovers in ascending id order: draining the unordered map
  // via begin() would feed the float accumulators and the tail heap in
  // hash-table order, which is not stable across runs — and the exported
  // percentile tables must stay byte-identical.
  std::vector<std::uint32_t> ids;
  ids.reserve(open_.size());
  for (auto& [id, req] : open_) {
    req.unfinished = true;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (std::uint32_t id : ids) completeRequest(id, horizon);
}

OpTracer::HopStat OpTracer::hopStat(Hop h) const {
  const HopAgg& ha = global_.hops[static_cast<std::size_t>(h)];
  return HopStat{ha.requests, ha.totalSeconds,
                 quantileOr(ha.sampledTotals, 0.50),
                 quantileOr(ha.sampledTotals, 0.95),
                 quantileOr(ha.sampledTotals, 0.99),
                 quantileOr(ha.sampledTotals, 1.0)};
}

OpTracer::HopStat OpTracer::hopStat(const char* op, Hop h) const {
  const auto it = ops_.find(op);
  if (it == ops_.end()) return HopStat{};
  const HopAgg& ha = it->second.hops[static_cast<std::size_t>(h)];
  return HopStat{ha.requests, ha.totalSeconds,
                 quantileOr(ha.sampledTotals, 0.50),
                 quantileOr(ha.sampledTotals, 0.95),
                 quantileOr(ha.sampledTotals, 0.99),
                 quantileOr(ha.sampledTotals, 1.0)};
}

double OpTracer::e2eQuantile(double q) const {
  return quantileOr(global_.e2eSampled, q);
}

void OpTracer::writeHopTable(std::string& out, const OpAgg& agg,
                             const char* indent) {
  out += "[";
  bool first = true;
  for (int h = 0; h < kNumHops; ++h) {
    const HopAgg& ha = agg.hops[static_cast<std::size_t>(h)];
    if (ha.requests == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += indent;
    appendf(out, "{\"hop\": \"%s\", \"requests\": %llu, \"total_seconds\": ",
            hopName(static_cast<Hop>(h)),
            static_cast<unsigned long long>(ha.requests));
    appendNum(out, ha.totalSeconds);
    out += ", \"p50\": ";
    appendNum(out, quantileOr(ha.sampledTotals, 0.50));
    out += ", \"p95\": ";
    appendNum(out, quantileOr(ha.sampledTotals, 0.95));
    out += ", \"p99\": ";
    appendNum(out, quantileOr(ha.sampledTotals, 0.99));
    out += ", \"max\": ";
    appendNum(out, quantileOr(ha.sampledTotals, 1.0));
    out += "}";
  }
  out += "]";
}

namespace {

void writeE2e(std::string& out, std::uint64_t requests,
              const sim::Accumulator& all, const sim::Sample& sampled) {
  appendf(out, "{\"requests\": %llu, \"mean\": ",
          static_cast<unsigned long long>(requests));
  appendNum(out, all.mean());
  out += ", \"p50\": ";
  appendNum(out, quantileOr(sampled, 0.50));
  out += ", \"p95\": ";
  appendNum(out, quantileOr(sampled, 0.95));
  out += ", \"p99\": ";
  appendNum(out, quantileOr(sampled, 0.99));
  out += ", \"max\": ";
  appendNum(out, all.max());
  out += "}";
}

}  // namespace

void OpTracer::writeRequest(std::string& out, const Request& req,
                            const char* indent) {
  appendf(out, "{\"id\": %u, \"rank\": %d, \"op\": \"%s\", \"offset\": %llu, "
               "\"bytes\": %llu, \"t0\": ",
          req.id, req.rank, req.op,
          static_cast<unsigned long long>(req.offset),
          static_cast<unsigned long long>(req.bytes));
  appendNum(out, req.t0);
  out += ", \"e2e\": ";
  appendNum(out, req.t1 - req.t0);
  if (req.parent != kNoParent) appendf(out, ", \"parent\": %u", req.parent);
  if (req.fanIn > 0) appendf(out, ", \"fan_in\": %u", req.fanIn);
  if (req.unfinished) out += ", \"unfinished\": true";
  if (!req.children.empty()) {
    out += ", \"children\": [";
    for (std::size_t i = 0; i < req.children.size(); ++i)
      appendf(out, "%s%u", i ? "," : "", req.children[i]);
    out += "]";
    if (req.childrenTruncated) out += ", \"children_truncated\": true";
  }
  out += ",\n";
  out += indent;
  out += " \"spans\": [";
  for (std::size_t i = 0; i < req.spans.size(); ++i) {
    const Span& s = req.spans[i];
    if (i) out += ",";
    out += "\n";
    out += indent;
    appendf(out, "  {\"hop\": \"%s\", \"t0\": ", hopName(s.hop));
    appendNum(out, s.t0);
    out += ", \"dur\": ";
    appendNum(out, s.dur);
    if (s.bytes != 0)
      appendf(out, ", \"bytes\": %llu",
              static_cast<unsigned long long>(s.bytes));
    out += "}";
  }
  if (!req.spans.empty()) {
    out += "\n";
    out += indent;
    out += " ";
  }
  out += "]}";
}

std::string OpTracer::toJson() const {
  SIM_CHECK(closed_, "OpTracer::toJson requires closeOut first");
  std::string out;
  out.reserve(1 << 16);
  out += "{\n  \"schema\": \"";
  out += kSchemaVersion;
  appendf(out, "\",\n  \"sample_every\": %u,\n  \"tail_n\": %d,\n"
               "  \"horizon\": ",
          sampleEvery_, tailN_);
  appendNum(out, horizon_);
  appendf(out, ",\n  \"requests\": {\"minted\": %llu, \"completed\": %llu, "
               "\"unfinished\": %llu, \"sampled\": %llu},\n  \"e2e\": ",
          static_cast<unsigned long long>(minted_),
          static_cast<unsigned long long>(completed_),
          static_cast<unsigned long long>(unfinished_),
          static_cast<unsigned long long>(sampledCount_));
  writeE2e(out, global_.requests, global_.e2eAll, global_.e2eSampled);
  out += ",\n  \"hops\": ";
  writeHopTable(out, global_, "    ");
  out += ",\n  \"ops\": [";
  bool firstOp = true;
  for (const auto& [op, agg] : ops_) {
    if (!firstOp) out += ",";
    firstOp = false;
    out += "\n    {\"op\": \"" + op + "\", \"e2e\": ";
    writeE2e(out, agg.requests, agg.e2eAll, agg.e2eSampled);
    out += ",\n     \"hops\": ";
    writeHopTable(out, agg, "      ");
    out += "}";
  }
  out += "\n  ],\n  \"lineage\": {\"aggregates\": ";
  appendf(out, "%zu, \"edges\": %llu, \"fan_in\": {\"min\": ",
          fanIn_.size(), static_cast<unsigned long long>(edges_));
  appendNum(out, quantileOr(fanIn_, 0.0));
  out += ", \"p50\": ";
  appendNum(out, quantileOr(fanIn_, 0.50));
  out += ", \"max\": ";
  appendNum(out, quantileOr(fanIn_, 1.0));
  out += "}},\n  \"tail\": [";
  // Slowest first: the heap order is an implementation detail.
  std::vector<const Request*> tail;
  tail.reserve(tail_.size());
  for (const Request& r : tail_) tail.push_back(&r);
  std::sort(tail.begin(), tail.end(), [](const Request* a, const Request* b) {
    const double ea = a->t1 - a->t0;
    const double eb = b->t1 - b->t0;
    if (ea != eb) return ea > eb;
    return a->id < b->id;
  });
  for (std::size_t i = 0; i < tail.size(); ++i) {
    if (i) out += ",";
    out += "\n    ";
    writeRequest(out, *tail[i], "    ");
  }
  appendf(out, "\n  ],\n  \"sampled_kept\": %zu, \"sampled_dropped\": %llu,"
               "\n  \"sampled\": [",
          sampled_.size(), static_cast<unsigned long long>(sampledDropped_));
  for (std::size_t i = 0; i < sampled_.size(); ++i) {
    if (i) out += ",";
    out += "\n    ";
    writeRequest(out, sampled_[i], "    ");
  }
  out += "\n  ]\n}\n";
  return out;
}

void OpTraceSink::exportTo(std::string jsonPath) {
  if (!jsonPath.empty()) jsonPath_ = std::move(jsonPath);
}

void OpTraceSink::finalize(sim::SimTime horizon) {
  if (finalized_) return;
  finalized_ = true;
  tracer_->closeOut(horizon);
  if (!jsonPath_.empty()) {
    std::ofstream out(jsonPath_);
    if (out) out << tracer_->toJson();
  }
}

}  // namespace bgckpt::obs
