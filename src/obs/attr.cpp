#include "obs/attr.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>

#include "simcore/simcheck.hpp"

namespace bgckpt::obs {

const char* phaseName(Phase p) {
  switch (p) {
    case Phase::kCompute: return "compute";
    case Phase::kHandoffSend: return "handoff_send";
    case Phase::kHandoffRecv: return "handoff_recv";
    case Phase::kBarrier: return "barrier";
    case Phase::kTokenWait: return "token_wait";
    case Phase::kMetadata: return "metadata";
    case Phase::kWrite: return "write";
    case Phase::kClose: return "close";
    case Phase::kOther: return "other";
  }
  return "?";
}

bool AttributionEngine::classify(const TraceEvent& ev, Phase* phase,
                                 int* depth) {
  const char* n = ev.name;
  switch (ev.layer) {
    case Layer::kApp:
      // The checkpoint envelope: everything inside it that no deeper span
      // explains is "other" (library bookkeeping, phase gaps).
      if (std::strcmp(n, "checkpoint") == 0) {
        *phase = Phase::kOther;
        *depth = 1;
        return true;
      }
      return false;
    case Layer::kIo:
      // Leaf ops emitted by iolib. The rbIO grouping spans
      // (handoff/aggregate/commit) arrive as B/E and are skipped by
      // addEvent; their leaf ops carry the signal.
      if (std::strcmp(n, "send") == 0) {
        *phase = Phase::kHandoffSend;
      } else if (std::strcmp(n, "recv") == 0) {
        *phase = Phase::kHandoffRecv;
      } else if (std::strcmp(n, "create") == 0 ||
                 std::strcmp(n, "open") == 0) {
        *phase = Phase::kMetadata;
      } else if (std::strcmp(n, "write") == 0) {
        *phase = Phase::kWrite;
      } else if (std::strcmp(n, "close") == 0) {
        *phase = Phase::kClose;
      } else {
        return false;
      }
      *depth = 2;
      return true;
    case Layer::kMpi:
      // Collective wait spans nest inside kIo ops (a coIO write_all spends
      // most of its "write" span rendezvousing), so they classify deeper.
      // Point-to-point "message" spans describe the network, not the
      // blocked sender — a nonblocking isend returns immediately — so they
      // carry no attribution signal.
      if (std::strcmp(n, "barrier") == 0 || std::strcmp(n, "collective") == 0) {
        *phase = Phase::kBarrier;
        *depth = 3;
        return true;
      }
      return false;
    case Layer::kFilesystem:
      // The fs layer mirrors kIo's create/open/write/close per client;
      // counting both would double-cover. Only the token-negotiation wait,
      // which has no kIo counterpart, classifies — deepest of all: it can
      // sit inside a write which sits inside a collective window.
      if (std::strcmp(n, "token_wait") == 0) {
        *phase = Phase::kTokenWait;
        *depth = 4;
        return true;
      }
      return false;
    default:
      return false;
  }
}

void AttributionEngine::addEvent(const TraceEvent& ev) {
  if (ev.layer == Layer::kApp && std::strcmp(ev.name, "checkpoint") == 0 &&
      (ev.phase == 'B' || ev.phase == 'E')) {
    if (ev.phase == 'B') {
      openEnvelopes_.emplace_back(ev.tid, ev.ts);
      return;
    }
    // 'E': close this rank's most recent open envelope.
    for (auto it = openEnvelopes_.rbegin(); it != openEnvelopes_.rend();
         ++it) {
      if (it->first != ev.tid) continue;
      spans_.push_back(Span{ev.tid, static_cast<std::int8_t>(Phase::kOther),
                            1, it->second, ev.ts});
      openEnvelopes_.erase(std::next(it).base());
      return;
    }
    return;  // unmatched E: drop
  }
  if (ev.phase != 'X') return;
  Phase phase;
  int depth;
  if (!classify(ev, &phase, &depth)) return;
  spans_.push_back(Span{ev.tid, static_cast<std::int8_t>(phase),
                        static_cast<std::int8_t>(depth), ev.ts,
                        ev.ts + ev.dur});
}

double AttributionEngine::RankSlice::total() const {
  double t = 0;
  for (double s : seconds) t += s;
  return t;
}

double AttributionEngine::RankSlice::blocked() const {
  return total() - seconds[static_cast<int>(Phase::kCompute)];
}

double AttributionEngine::Report::blockedSeconds() const {
  double t = 0;
  for (int p = 0; p < kNumPhases; ++p)
    if (p != static_cast<int>(Phase::kCompute)) t += totals[p];
  return t;
}

double AttributionEngine::Report::partitionDefect() const {
  double worst = 0;
  for (const RankSlice& r : ranks)
    worst = std::max(worst, std::abs(r.total() - horizon));
  return worst;
}

AttributionEngine::Report AttributionEngine::compute(
    sim::SimTime horizon) const {
  struct Indexed {
    Span span;
    std::size_t idx;  // arrival order: last tie-break
  };
  std::vector<Indexed> all;
  all.reserve(spans_.size() + openEnvelopes_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i)
    all.push_back(Indexed{spans_[i], i});
  // A run cut off mid-checkpoint leaves envelopes open; they extend to the
  // horizon so their ranks still partition exactly.
  for (std::size_t i = 0; i < openEnvelopes_.size(); ++i)
    all.push_back(Indexed{Span{openEnvelopes_[i].first,
                               static_cast<std::int8_t>(Phase::kOther), 1,
                               openEnvelopes_[i].second, horizon},
                          spans_.size() + i});
  // Clamp to [0, horizon] and drop empty spans.
  std::erase_if(all, [horizon](const Indexed& s) {
    return s.span.t0 >= horizon || s.span.t1 <= s.span.t0;
  });
  for (Indexed& s : all) s.span.t1 = std::min(s.span.t1, horizon);

  std::sort(all.begin(), all.end(), [](const Indexed& a, const Indexed& b) {
    if (a.span.rank != b.span.rank) return a.span.rank < b.span.rank;
    if (a.span.t0 != b.span.t0) return a.span.t0 < b.span.t0;
    return a.idx < b.idx;
  });

  Report report;
  report.horizon = horizon;
  std::size_t lo = 0;
  while (lo < all.size()) {
    std::size_t hi = lo;
    const int rank = all[lo].span.rank;
    while (hi < all.size() && all[hi].span.rank == rank) ++hi;

    RankSlice slice;
    slice.rank = rank;
    // Boundary sweep over this rank's spans. At each elementary segment the
    // deepest covering span (ties: later start, then arrival order) names
    // the phase; uncovered segments are compute. Every instant in
    // [0, horizon] lands in exactly one bucket, so the partition is exact.
    std::vector<sim::SimTime> bounds;
    bounds.reserve(2 * (hi - lo) + 2);
    bounds.push_back(0.0);
    bounds.push_back(horizon);
    for (std::size_t i = lo; i < hi; ++i) {
      bounds.push_back(all[i].span.t0);
      bounds.push_back(all[i].span.t1);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    std::vector<const Indexed*> active;
    std::size_t next = lo;
    for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
      const sim::SimTime a = bounds[b];
      const sim::SimTime z = bounds[b + 1];
      while (next < hi && all[next].span.t0 <= a) {
        active.push_back(&all[next]);
        ++next;
      }
      std::erase_if(active,
                    [a](const Indexed* s) { return s->span.t1 <= a; });
      const Indexed* best = nullptr;
      for (const Indexed* s : active) {
        if (best == nullptr || s->span.depth > best->span.depth ||
            (s->span.depth == best->span.depth &&
             (s->span.t0 > best->span.t0 ||
              (s->span.t0 == best->span.t0 && s->idx > best->idx))))
          best = s;
      }
      const int phase =
          best ? best->span.phase : static_cast<int>(Phase::kCompute);
      slice.seconds[static_cast<std::size_t>(phase)] += z - a;
    }
    for (int p = 0; p < kNumPhases; ++p)
      report.totals[static_cast<std::size_t>(p)] +=
          slice.seconds[static_cast<std::size_t>(p)];
    report.ranks.push_back(slice);
    lo = hi;
  }
  return report;
}

std::string AttributionEngine::Report::toJson() const {
  std::string out;
  out.reserve(128 + ranks.size() * 256);
  char buf[64];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += buf;
  };
  out += "{\n  \"horizon_seconds\": ";
  num(horizon);
  out += ",\n  \"totals\": {";
  for (int p = 0; p < kNumPhases; ++p) {
    if (p) out += ", ";
    out += '"';
    out += phaseName(static_cast<Phase>(p));
    out += "\": ";
    num(totals[static_cast<std::size_t>(p)]);
  }
  out += "},\n  \"ranks\": [\n";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const RankSlice& r = ranks[i];
    out += "    {\"rank\": ";
    std::snprintf(buf, sizeof(buf), "%d", r.rank);
    out += buf;
    for (int p = 0; p < kNumPhases; ++p) {
      out += ", \"";
      out += phaseName(static_cast<Phase>(p));
      out += "\": ";
      num(r.seconds[static_cast<std::size_t>(p)]);
    }
    out += i + 1 < ranks.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string AttributionEngine::Report::toCsv() const {
  std::string out = "rank,phase,seconds\n";
  char buf[96];
  for (const RankSlice& r : ranks) {
    for (int p = 0; p < kNumPhases; ++p) {
      std::snprintf(buf, sizeof(buf), "%d,%s,%.9g\n", r.rank,
                    phaseName(static_cast<Phase>(p)),
                    r.seconds[static_cast<std::size_t>(p)]);
      out += buf;
    }
  }
  return out;
}

void AttributionSink::exportTo(std::string jsonPath, std::string csvPath) {
  jsonPath_ = std::move(jsonPath);
  csvPath_ = std::move(csvPath);
}

void AttributionSink::event(const TraceEvent& ev) { engine_.addEvent(ev); }

void AttributionSink::finalize(sim::SimTime horizon) {
  if (finalized_) return;
  finalized_ = true;
  report_ = engine_.compute(horizon);
  // The partition invariant the module exists to uphold: every rank's
  // phases sum to the horizon, down to fp rounding of the sweep.
  const double tol = 1e-9 * std::max(1.0, static_cast<double>(horizon));
  SIM_CHECK(report_.partitionDefect() <= tol,
            "attribution phases must partition [0, horizon] per rank");
  auto writeText = [](const std::string& path, const std::string& text) {
    if (path.empty()) return;
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "error: attribution: cannot write %s\n",
                   path.c_str());
      return;
    }
    f << text;
  };
  writeText(jsonPath_, report_.toJson());
  writeText(csvPath_, report_.toCsv());
}

}  // namespace bgckpt::obs
