#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <vector>

namespace bgckpt::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string csvField(const std::string& field) {
  const bool needsQuoting =
      field.find_first_of(",\"\r\n") != std::string::npos;
  if (!needsQuoting) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(name, Histogram(lo, hi, bins)).first;
  return it->second;
}

void MetricsRegistry::recordPair(int src, int dst, sim::Bytes bytes,
                                 double latency) {
  const std::uint64_t key = (static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(src))
                             << 32) |
                            static_cast<std::uint32_t>(dst);
  PairStats& p = pairs_[key];
  ++p.count;
  p.bytes += bytes;
  p.latencySum += latency;
}

std::string MetricsRegistry::toJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    appendf(out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",", name.c_str(),
            c.value());
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    appendf(out, "%s\n    \"%s\": %.9g", first ? "" : ",", name.c_str(),
            g.value());
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const auto& s = h.stats();
    appendf(out,
            "%s\n    \"%s\": {\"count\": %" PRIu64
            ", \"mean\": %.9g, \"min\": %.9g, \"max\": %.9g, "
            "\"stddev\": %.9g, \"bins\": [",
            first ? "" : ",", name.c_str(), s.count(), s.mean(), s.min(),
            s.max(), s.stddev());
    for (std::size_t i = 0; i < h.bins().bins(); ++i)
      appendf(out, "%s%" PRIu64, i ? "," : "", h.bins().binCount(i));
    out += "]}";
    first = false;
  }
  // Pairs: the full matrix can be O(ranks); keep JSON readable with the
  // top pairs by bytes and an exact total count.
  std::vector<std::pair<std::uint64_t, PairStats>> byBytes(pairs_.begin(),
                                                           pairs_.end());
  std::sort(byBytes.begin(), byBytes.end(), [](const auto& a, const auto& b) {
    return a.second.bytes > b.second.bytes;
  });
  constexpr std::size_t kTopPairs = 64;
  appendf(out, "\n  },\n  \"mpiPairsTotal\": %zu,\n  \"mpiTopPairs\": [",
          pairs_.size());
  for (std::size_t i = 0; i < byBytes.size() && i < kTopPairs; ++i) {
    const auto& [key, p] = byBytes[i];
    appendf(out,
            "%s\n    {\"src\": %d, \"dst\": %d, \"count\": %" PRIu64
            ", \"bytes\": %" PRIu64 ", \"meanLatency\": %.9g}",
            i ? "," : "", pairSrc(key), pairDst(key), p.count, p.bytes,
            p.count ? p.latencySum / static_cast<double>(p.count) : 0.0);
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string MetricsRegistry::toCsv() const {
  std::string out = "kind,name,value\n";
  for (const auto& [name, c] : counters_)
    appendf(out, "counter,%s,%" PRIu64 "\n", csvField(name).c_str(),
            c.value());
  for (const auto& [name, g] : gauges_)
    appendf(out, "gauge,%s,%.9g\n", csvField(name).c_str(), g.value());
  out += "kind,name,count,mean,min,max,stddev\n";
  for (const auto& [name, h] : histograms_) {
    const auto& s = h.stats();
    appendf(out, "histogram,%s,%" PRIu64 ",%.9g,%.9g,%.9g,%.9g\n",
            csvField(name).c_str(), s.count(), s.mean(), s.min(), s.max(),
            s.stddev());
  }
  out += "kind,name,bin_lo,bin_hi,count\n";
  for (const auto& [name, h] : histograms_)
    for (std::size_t i = 0; i < h.bins().bins(); ++i)
      if (h.bins().binCount(i))
        appendf(out, "bin,%s,%.9g,%.9g,%" PRIu64 "\n",
                csvField(name).c_str(), h.bins().binLow(i),
                h.bins().binHigh(i), h.bins().binCount(i));
  if (!pairs_.empty()) {
    out += "kind,src,dst,count,bytes,latency_sum\n";
    std::vector<std::uint64_t> keys;
    keys.reserve(pairs_.size());
    for (const auto& [key, p] : pairs_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const auto key : keys) {
      const PairStats& p = pairs_.at(key);
      appendf(out, "pair,%d,%d,%" PRIu64 ",%" PRIu64 ",%.9g\n", pairSrc(key),
              pairDst(key), p.count, p.bytes, p.latencySum);
    }
  }
  return out;
}

bool MetricsRegistry::writeJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << toJson();
  return static_cast<bool>(out);
}

bool MetricsRegistry::writeCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << toCsv();
  return static_cast<bool>(out);
}

}  // namespace bgckpt::obs
