// Named metrics: counters, gauges, and latency histograms.
//
// Instrumented layers resolve their metric handles once (a map lookup at
// construction) and then update through plain references, so the per-event
// cost is an integer add or a histogram bin increment. The registry renders
// to JSON (machine-readable, one object per metric) and CSV (one row per
// metric, histogram bins and MPI rank pairs in dedicated sections).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "simcore/stats.hpp"
#include "simcore/units.hpp"

namespace bgckpt::obs {

/// Quote one CSV field per RFC 4180: fields containing a comma, a double
/// quote, or a line break are wrapped in double quotes, with embedded
/// quotes doubled. Anything else passes through unchanged. Every obs CSV
/// exporter routes free-form name fields through this.
std::string csvField(const std::string& field);

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A gauge holds a double. `add` turns it into an accumulator (busy
/// seconds), `setMax` into a high-water mark (queue depth).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  void setMax(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Latency histogram: fixed-width bins plus streaming summary statistics.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins) : hist_(lo, hi, bins) {}

  void add(double x) {
    hist_.add(x);
    stats_.add(x);
  }

  const sim::FixedHistogram& bins() const { return hist_; }
  const sim::Accumulator& stats() const { return stats_; }

 private:
  sim::FixedHistogram hist_;
  sim::Accumulator stats_;
};

/// Per-(src, dst) message statistics for the simulated MPI layer.
struct PairStats {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  double latencySum = 0;
};

class MetricsRegistry {
 public:
  /// Handles are stable for the registry's lifetime (node-based map).
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins);

  void recordPair(int src, int dst, sim::Bytes bytes, double latency);

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::unordered_map<std::uint64_t, PairStats>& pairs() const {
    return pairs_;
  }
  static int pairSrc(std::uint64_t key) { return static_cast<int>(key >> 32); }
  static int pairDst(std::uint64_t key) {
    return static_cast<int>(key & 0xffffffffu);
  }

  std::string toJson() const;
  std::string toCsv() const;
  /// Returns false (and writes nothing) if the file cannot be opened.
  bool writeJson(const std::string& path) const;
  bool writeCsv(const std::string& path) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::unordered_map<std::uint64_t, PairStats> pairs_;
};

}  // namespace bgckpt::obs
