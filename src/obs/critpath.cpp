#include "obs/critpath.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

namespace bgckpt::obs {

namespace {

/// File-path labels (delay edges default to the scheduling site's file)
/// shrink to their basename; primitive labels pass through.
const char* trimLabel(const char* label) {
  if (label == nullptr) return "?";
  const char* slash = std::strrchr(label, '/');
  return slash != nullptr ? slash + 1 : label;
}

void appendEscaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
}

}  // namespace

void CritPathRecorder::exportTo(std::string jsonPath) {
  jsonPath_ = std::move(jsonPath);
}

void CritPathRecorder::onEventScheduled(std::uint64_t seq,
                                        std::uint64_t parentSeq,
                                        sim::SimTime when, sim::WakeKind kind,
                                        const char* label) {
  if (!haveBase_) {
    baseSeq_ = seq;
    haveBase_ = true;
  }
  // Sequence numbers are consecutive while the hook stays installed; pad
  // any gap (hook detached and reattached) with terminator nodes so the
  // dense index never lies.
  if (seq < baseSeq_) return;  // out-of-order: cannot index densely
  const std::size_t slot = static_cast<std::size_t>(seq - baseSeq_);
  if (slot > nodes_.size()) nodes_.resize(slot);
  Node node;
  node.parent = parentSeq;
  node.time = when;
  node.kind = kind;
  node.label = label;
  if (slot == nodes_.size()) {
    nodes_.push_back(node);
  } else {
    nodes_[slot] = node;
  }
}

CritPathRecorder::Path CritPathRecorder::computePath(
    sim::SimTime horizon) const {
  Path path;
  path.horizon = horizon;
  path.eventsRecorded = nodes_.size();
  for (int k = 0; k < sim::kNumWakeKinds; ++k)
    path.byKind[static_cast<std::size_t>(k)].label =
        sim::wakeKindName(static_cast<sim::WakeKind>(k));
  if (nodes_.empty()) return path;

  // Terminal event: max (time, seq). seq grows with the index, so the last
  // slot holding the max time wins ties exactly like the dispatch order.
  std::size_t terminal = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i)
    if (nodes_[i].time >= nodes_[terminal].time) terminal = i;

  std::map<std::string, Bucket> labels;
  std::vector<Step> walked;  // terminal -> root order
  std::size_t idx = terminal;
  while (true) {
    const Node& n = nodes_[idx];
    const bool hasParent = n.parent != sim::SchedulerHooks::kNoParent &&
                           n.parent >= baseSeq_ &&
                           n.parent - baseSeq_ < nodes_.size();
    const sim::SimTime parentTime =
        hasParent ? nodes_[static_cast<std::size_t>(n.parent - baseSeq_)].time
                  : 0.0;
    Step step;
    step.seq = baseSeq_ + idx;
    step.time = n.time;
    step.edge = n.time - parentTime;
    step.kind = n.kind;
    step.label = n.label;
    walked.push_back(step);

    Bucket& k = path.byKind[static_cast<std::size_t>(n.kind)];
    k.seconds += step.edge;
    ++k.edges;
    Bucket& l = labels[trimLabel(n.label)];
    l.seconds += step.edge;
    ++l.edges;

    if (!hasParent) break;
    idx = static_cast<std::size_t>(n.parent - baseSeq_);
  }
  path.steps = walked.size();
  for (const Step& s : walked) path.pathSeconds += s.edge;

  path.byLabel.reserve(labels.size());
  for (auto& [name, bucket] : labels) {
    bucket.label = name;
    path.byLabel.push_back(bucket);
  }
  std::sort(path.byLabel.begin(), path.byLabel.end(),
            [](const Bucket& a, const Bucket& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.label < b.label;
            });

  const std::size_t tailLen = std::min(kTailSteps, walked.size());
  path.tail.assign(walked.begin(),
                   walked.begin() + static_cast<std::ptrdiff_t>(tailLen));
  std::reverse(path.tail.begin(), path.tail.end());  // chronological
  return path;
}

std::string CritPathRecorder::Path::toJson() const {
  std::string out;
  char buf[128];
  auto addf = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  out += "{\n";
  addf("  \"horizon_seconds\": %.9g,\n", static_cast<double>(horizon));
  addf("  \"events_recorded\": %llu,\n",
       static_cast<unsigned long long>(eventsRecorded));
  addf("  \"path_steps\": %zu,\n", steps);
  addf("  \"path_seconds\": %.9g,\n", static_cast<double>(pathSeconds));
  out += "  \"by_kind\": [\n";
  for (std::size_t k = 0; k < byKind.size(); ++k) {
    addf("    {\"kind\": \"%s\", \"seconds\": %.9g, \"edges\": %llu}%s\n",
         byKind[k].label.c_str(), byKind[k].seconds,
         static_cast<unsigned long long>(byKind[k].edges),
         k + 1 < byKind.size() ? "," : "");
  }
  out += "  ],\n  \"by_label\": [\n";
  for (std::size_t i = 0; i < byLabel.size(); ++i) {
    out += "    {\"label\": \"";
    appendEscaped(out, byLabel[i].label.c_str());
    addf("\", \"seconds\": %.9g, \"edges\": %llu}%s\n", byLabel[i].seconds,
         static_cast<unsigned long long>(byLabel[i].edges),
         i + 1 < byLabel.size() ? "," : "");
  }
  out += "  ],\n  \"tail\": [\n";
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const Step& s = tail[i];
    out += "    {\"seq\": ";
    addf("%llu, \"t\": %.9g, \"edge\": %.9g, \"kind\": \"%s\", \"label\": \"",
         static_cast<unsigned long long>(s.seq), static_cast<double>(s.time),
         static_cast<double>(s.edge), sim::wakeKindName(s.kind));
    appendEscaped(out, trimLabel(s.label));
    out += i + 1 < tail.size() ? "\"},\n" : "\"}\n";
  }
  out += "  ]\n}\n";
  return out;
}

void CritPathRecorder::finalize(sim::SimTime horizon) {
  if (finalized_) return;
  finalized_ = true;
  path_ = computePath(horizon);
  if (jsonPath_.empty()) return;
  std::ofstream f(jsonPath_);
  if (!f) {
    std::fprintf(stderr, "error: critpath: cannot write %s\n",
                 jsonPath_.c_str());
    return;
  }
  f << path_.toJson();
}

}  // namespace bgckpt::obs
