// Critical-path profiler: record the causal event graph, walk it backwards.
//
// Every scheduled event has exactly one causal parent: the event whose
// handler scheduled it (a task finishing a delay schedules its next step; a
// Resource::release schedules the admitted waiter; a delivered message
// schedules the matched receiver). The scheduler reports each edge through
// SchedulerHooks::onEventScheduled, annotated with a WakeKind and a label —
// the Resource name for grants, "barrier"/"channel"/"mpi-deliver" for the
// sync primitives, and the scheduling site's file name for plain delays
// (which is where simulated time actually elapses: torus.cpp for network
// hops, fabric.cpp for storage service, parallel_fs.cpp for fs costs...).
//
// Dispatch time always equals the scheduled time in this simulator, so the
// executed graph is fully determined at schedule time; no dispatch hook is
// needed. The terminal event — max (time, seq), the last thing the
// simulation did — anchors the critical path: the predecessor chain that
// bounds the makespan. Walking it and bucketing each edge's duration by
// kind and label answers "what was the slowest chain doing, layer by
// layer": e.g. under coIO the path lives in storage service and token
// waits; under rbIO nf=ng it is writer-side fabric time, and the workers'
// barrier edges vanish from it.
//
// The recorder is a TraceSink only for lifecycle (finalize/export through
// the Observability hub); it consumes no trace events (layerMask 0) — its
// input arrives through the scheduler hook fan-out in SchedulerProbe.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "simcore/scheduler.hpp"

namespace bgckpt::obs {

class CritPathRecorder final : public TraceSink {
 public:
  CritPathRecorder() = default;
  /// Request JSON export at finalize; empty path skips it.
  void exportTo(std::string jsonPath);

  /// Fed by SchedulerProbe for every event scheduled.
  void onEventScheduled(std::uint64_t seq, std::uint64_t parentSeq,
                        sim::SimTime when, sim::WakeKind kind,
                        const char* label);

  // TraceSink lifecycle: no event input, finalize computes + exports.
  void event(const TraceEvent&) override {}
  void finalize(sim::SimTime horizon) override;
  unsigned layerMask() const override { return 0; }

  struct Step {
    std::uint64_t seq = 0;
    sim::SimTime time = 0;       // dispatch time of this event
    sim::Duration edge = 0;      // time - parent's time
    sim::WakeKind kind = sim::WakeKind::kDelay;
    const char* label = nullptr;
  };
  struct Bucket {
    std::string label;
    double seconds = 0;
    std::uint64_t edges = 0;
  };
  struct Path {
    sim::SimTime horizon = 0;
    std::uint64_t eventsRecorded = 0;
    std::size_t steps = 0;               // chain length walked
    sim::SimTime pathSeconds = 0;        // sum of edge durations
    std::array<Bucket, sim::kNumWakeKinds> byKind{};  // label = kind name
    std::vector<Bucket> byLabel;         // descending seconds
    std::vector<Step> tail;              // last kTailSteps, chronological
    std::string toJson() const;
  };
  static constexpr std::size_t kTailSteps = 64;

  /// Walk the predecessor chain of the terminal event (max (time, seq)).
  /// Valid any time; finalize() caches the result in path().
  Path computePath(sim::SimTime horizon) const;

  bool finalized() const { return finalized_; }
  const Path& path() const { return path_; }  // valid after finalize()
  std::uint64_t eventsRecorded() const { return nodes_.size(); }

 private:
  struct Node {
    // Absolute parent seq; kNoParent for events scheduled outside the
    // event loop (also the padding value for hook-gap slots).
    std::uint64_t parent = sim::SchedulerHooks::kNoParent;
    sim::SimTime time = 0;
    sim::WakeKind kind = sim::WakeKind::kDelay;
    const char* label = nullptr;
  };
  // Dense by seq: the scheduler hands out consecutive sequence numbers, so
  // nodes_[seq - baseSeq_]. Events scheduled before the recorder attached
  // (parent < baseSeq_) terminate the walk.
  std::vector<Node> nodes_;
  std::uint64_t baseSeq_ = 0;
  bool haveBase_ = false;
  bool finalized_ = false;
  Path path_;
  std::string jsonPath_;
};

}  // namespace bgckpt::obs
