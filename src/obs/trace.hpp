// Trace event model and sinks.
//
// Every instrumented layer of the simulated stack emits TraceEvents through
// an Observability hub (obs.hpp). A sink decides what to do with them:
//
//  * NullSink        - drops everything; layerMask() == 0 means producers
//                      skip event construction entirely, so a stack with no
//                      sink attached pays only a masked branch per site.
//  * ChromeTraceSink - streams trace_event-format JSON (one "process" per
//                      simulated layer, one "thread" per rank) loadable in
//                      Perfetto / chrome://tracing, plus an optional JSONL
//                      event log consumed by tools/trace_report.
//
// Conventions: `ts`/`dur` are simulated seconds (the Chrome stream converts
// to microseconds, as the trace_event spec requires); `tid` is the rank (or
// root-task id for scheduler spans); span begin/end events ('B'/'E') must
// nest per (layer, tid); ops with a known duration at emit time use
// complete events ('X').
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_set>

#include "simcore/units.hpp"

namespace bgckpt::obs {

/// One Chrome-trace "process" per simulated layer of the stack.
enum class Layer : int {
  kScheduler = 0,  // discrete-event kernel: root-task spans
  kNetwork = 1,    // torus + ION forwarding
  kStorage = 2,    // file servers + DDN arrays
  kFilesystem = 3, // GPFS/PVFS client-visible operations
  kMpi = 4,        // simulated MPI messages
  kIo = 5,         // checkpoint library ops + rbIO phase spans
  kApp = 6,        // per-rank application spans (checkpoint envelope)
};
inline constexpr int kNumLayers = 7;

const char* layerName(Layer layer);

constexpr unsigned layerBit(Layer layer) {
  return 1u << static_cast<unsigned>(layer);
}
inline constexpr unsigned kAllLayers = (1u << kNumLayers) - 1;

struct TraceEvent {
  Layer layer = Layer::kApp;
  char phase = 'X';  // 'B' begin, 'E' end, 'X' complete, 'C' counter
  int tid = 0;       // rank (or root-task id on the scheduler layer)
  const char* name = "";  // must point at storage outliving the emit call
  sim::SimTime ts = 0;    // seconds of simulated time
  sim::Duration dur = 0;  // 'X' only
  // Optional args (negative / hasX=false means "absent").
  bool hasBytes = false;
  sim::Bytes bytes = 0;
  int src = -1;  // mpi message source rank
  int dst = -1;  // mpi message destination rank
  bool hasValue = false;
  double value = 0;  // 'C' counter sample
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void event(const TraceEvent& ev) = 0;
  virtual void flush() {}
  /// End of run: the horizon is the final simulated time. Sinks that
  /// aggregate (attribution, flight recorder) finish their computation and
  /// write any requested exports here. Called exactly once, before the
  /// final flush(), by Observability::finalize.
  virtual void finalize(sim::SimTime /*horizon*/) {}
  /// OR of layerBit() for the layers this sink consumes. Producers skip
  /// emission entirely when no attached sink wants their layer.
  virtual unsigned layerMask() const { return kAllLayers; }
};

/// Zero-overhead sink: wants no layers, drops anything it is handed anyway.
class NullSink final : public TraceSink {
 public:
  void event(const TraceEvent&) override {}
  unsigned layerMask() const override { return 0; }
};

/// Streams Chrome trace_event JSON and (optionally) a JSONL event log.
///
/// The Chrome stream is a JSON array of trace_event objects with process /
/// thread metadata emitted lazily the first time a layer or (layer, rank)
/// appears. The JSONL stream holds one JSON object per line with timestamps
/// kept in simulated seconds — the lossless form tools/trace_report reads.
class ChromeTraceSink final : public TraceSink {
 public:
  /// Borrow streams owned by the caller (tests pass ostringstreams).
  explicit ChromeTraceSink(std::ostream& chrome, std::ostream* jsonl = nullptr);
  /// Own freshly opened file streams; throws std::runtime_error on failure.
  /// An empty jsonlPath disables the JSONL log.
  static std::unique_ptr<ChromeTraceSink> toFiles(const std::string& chromePath,
                                                  const std::string& jsonlPath);
  ~ChromeTraceSink() override;

  void event(const TraceEvent& ev) override;
  void flush() override;
  /// Terminate the Chrome JSON array. Idempotent; called by the destructor.
  void close();

  std::uint64_t eventsWritten() const { return eventsWritten_; }

 private:
  ChromeTraceSink(std::unique_ptr<std::ostream> chrome,
                  std::unique_ptr<std::ostream> jsonl);
  void writeChrome(const TraceEvent& ev);
  void writeJsonl(const TraceEvent& ev);
  void ensureMetadata(Layer layer, int tid);
  void writeSeparator();

  std::unique_ptr<std::ostream> ownedChrome_;
  std::unique_ptr<std::ostream> ownedJsonl_;
  std::ostream* chrome_ = nullptr;
  std::ostream* jsonl_ = nullptr;
  bool anyWritten_ = false;
  bool closed_ = false;
  std::uint64_t eventsWritten_ = 0;
  unsigned layersSeen_ = 0;
  std::unordered_set<std::uint64_t> threadsSeen_;  // (layer << 32) | tid
};

}  // namespace bgckpt::obs
