#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <string_view>

#include "obs/metrics.hpp"
#include "simcore/simcheck.hpp"

namespace bgckpt::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

void appendNum(std::string& out, double v) {
  // %.12g is lossless for the magnitudes telemetry handles and keeps the
  // export byte-stable across identical runs.
  appendf(out, "%.12g", v);
}

}  // namespace

const char* probeKindName(ProbeKind k) {
  switch (k) {
    case ProbeKind::kGauge: return "gauge";
    case ProbeKind::kCounter: return "counter";
    case ProbeKind::kRate: return "rate";
  }
  return "?";
}

// ---------------------------------------------------------------- Probe --

Probe::Probe(Telemetry& owner, std::string name, ProbeKind kind,
             int instances)
    : owner_(owner), name_(std::move(name)), kind_(kind) {
  SIM_CHECK(instances > 0, "telemetry probe needs at least one instance");
  series_.resize(static_cast<std::size_t>(instances));
  if (owner_.enabled_) {
    live_ = true;
    const sim::SimTime t = owner_.now();
    for (auto& s : series_) start(s, t);
  }
}

void Probe::start(Series& s, sim::SimTime t) {
  s.startT = s.lastT = t;
  s.firstBucket = s.bucket =
      static_cast<std::int64_t>(std::floor(t / owner_.dt_ + 1e-9));
  s.buckets.assign(1, Bucket{s.cur, s.cur, 0.0, s.cur});
}

void Probe::advance(Series& s, sim::SimTime t) {
  const double dt = owner_.dt_;
  for (;;) {
    const double bEnd = static_cast<double>(s.bucket + 1) * dt;
    Bucket& b = s.buckets.back();
    if (t < bEnd) {
      if (t > s.lastT) {
        b.integral += s.cur * (t - s.lastT);
        s.lastT = t;
      }
      return;
    }
    if (bEnd > s.lastT) b.integral += s.cur * (bEnd - s.lastT);
    b.last = s.cur;
    s.lastT = bEnd;
    ++s.bucket;
    s.buckets.push_back(Bucket{s.cur, s.cur, 0.0, s.cur});
  }
}

void Probe::record(int instance, double v, bool delta) {
  SIM_DCHECK(instance >= 0 &&
                 instance < static_cast<int>(series_.size()),
             "telemetry probe instance out of range");
  Series& s = series_[static_cast<std::size_t>(instance)];
  advance(s, owner_.now());
  s.cur = delta ? s.cur + v : v;
  Bucket& b = s.buckets.back();
  b.min = std::min(b.min, s.cur);
  b.max = std::max(b.max, s.cur);
  b.last = s.cur;
}

double Probe::bucketMean(const Series& s, std::size_t i, double dt) {
  const double bStart =
      static_cast<double>(s.firstBucket + static_cast<std::int64_t>(i)) * dt;
  const double covStart = std::max(bStart, static_cast<double>(s.startT));
  const double covEnd =
      std::min(bStart + dt, static_cast<double>(s.lastT));
  const double covered = covEnd - covStart;
  if (covered <= 0) return 0;
  return s.buckets[i].integral / covered;
}

// ------------------------------------------------------------ Telemetry --

Probe& Telemetry::probe(const std::string& name, ProbeKind kind,
                        int instances) {
  if (Probe* p = find(name)) {
    SIM_CHECK(p->kind() == kind && p->instances() == instances,
              "telemetry probe re-registered with a different shape");
    return *p;
  }
  probes_.push_back(
      std::unique_ptr<Probe>(new Probe(*this, name, kind, instances)));
  return *probes_.back();
}

Probe* Telemetry::find(const std::string& name) const {
  for (const auto& p : probes_)
    if (p->name() == name) return p.get();
  return nullptr;
}

void Telemetry::enable(const sim::Scheduler& sched, double dt) {
  if (enabled_) return;
  enabled_ = true;
  sched_ = &sched;
  dt_ = dt > 0 ? dt : kDefaultDt;
  const sim::SimTime t = sched.now();
  for (auto& p : probes_) {
    p->live_ = true;
    for (auto& s : p->series_) p->start(s, t);
  }
  queueDepth_ = &probe("sched.queue_depth", ProbeKind::kGauge, 1);
  nextSample_ = (std::floor(t / dt_) + 1.0) * dt_;
}

void Telemetry::tick(sim::SimTime nowT, std::size_t queueDepth) {
  if (!enabled_) return;
  queueDepth_->set(static_cast<double>(queueDepth));
  if (nowT < nextSample_) return;
  // Cadence sample: close buckets on every series so resources that went
  // quiet still report their (flat) level for this window.
  for (auto& p : probes_)
    for (auto& s : p->series_) p->advance(s, nowT);
  nextSample_ = (std::floor(nowT / dt_) + 1.0) * dt_;
}

void Telemetry::closeOut(sim::SimTime horizon) {
  if (!enabled_) return;
  horizon_ = std::max(horizon_, horizon);
  for (auto& p : probes_)
    for (auto& s : p->series_)
      if (horizon_ > s.lastT) p->advance(s, horizon_);
}

// ------------------------------------------------------------ Imbalance --

ImbalanceStats computeImbalance(
    const std::vector<double>& totals,
    const std::vector<std::vector<double>>& bucketLoad, double dt) {
  ImbalanceStats st;
  st.instances = static_cast<int>(totals.size());
  if (totals.empty()) return st;
  double sum = 0, sumSq = 0, best = -1;
  for (std::size_t i = 0; i < totals.size(); ++i) {
    const double v = totals[i];
    sum += v;
    sumSq += v * v;
    if (v > best) {
      best = v;
      st.busiest = static_cast<int>(i);
    }
  }
  st.totalLoad = sum;
  if (sum > 0 && sumSq > 0) {
    st.maxShare = best / sum;
    st.maxOverMean = best / (sum / static_cast<double>(totals.size()));
    st.jain = (sum * sum) / (static_cast<double>(totals.size()) * sumSq);
  }
  // Bucket-wise: every instance idle in a window where some peer was busy
  // contributes dt instance-seconds of provable imbalance.
  std::size_t buckets = 0;
  for (const auto& row : bucketLoad) buckets = std::max(buckets, row.size());
  for (std::size_t b = 0; b < buckets; ++b) {
    int active = 0, idle = 0;
    for (const auto& row : bucketLoad) {
      const double v = b < row.size() ? row[b] : 0.0;
      if (v > 0)
        ++active;
      else
        ++idle;
    }
    if (active > 0) st.idleWhileBusySeconds += static_cast<double>(idle) * dt;
  }
  return st;
}

// -------------------------------------------------------- TelemetrySink --

void TelemetrySink::exportTo(std::string jsonPath, std::string csvPath) {
  if (!jsonPath.empty()) jsonPath_ = std::move(jsonPath);
  if (!csvPath.empty()) csvPath_ = std::move(csvPath);
}

void TelemetrySink::event(const TraceEvent& ev) {
  if (ev.layer != Layer::kApp || ev.tid < 0) return;
  if (std::string_view(ev.name) != "checkpoint") return;
  const auto rank = static_cast<std::size_t>(ev.tid);
  if (rank >= busy_.size()) {
    busy_.resize(rank + 1, 0.0);
    open_.resize(rank + 1, -1.0);
  }
  if (activeRanks_ == nullptr)
    activeRanks_ = &reg_->probe("app.active_ranks", ProbeKind::kGauge, 1);
  if (ev.phase == 'B') {
    sawEnvelopes_ = true;
    open_[rank] = ev.ts;
    activeRanks_->add(1.0);
  } else if (ev.phase == 'E') {
    if (open_[rank] >= 0) {
      busy_[rank] += ev.ts - open_[rank];
      open_[rank] = -1.0;
    }
    activeRanks_->add(-1.0);
  }
}

void TelemetrySink::finalize(sim::SimTime horizon) {
  if (finalized_) return;
  finalized_ = true;
  horizon_ = horizon;
  // A rank still inside its envelope at the horizon was busy to the end;
  // the active_ranks level already integrates it the same way.
  for (std::size_t r = 0; r < open_.size(); ++r) {
    if (open_[r] >= 0) {
      busy_[r] += horizon - open_[r];
      open_[r] = -1.0;
    }
  }
  reg_->closeOut(horizon);
  if (!jsonPath_.empty()) {
    std::ofstream out(jsonPath_);
    if (out) out << toJson();
  }
  if (!csvPath_.empty()) {
    std::ofstream out(csvPath_);
    if (out) out << toCsv();
  }
}

namespace {

/// Export row for one bucket: gauge -> [min, mean, max, last];
/// counter/rate -> [delta, rate]. `prevLast` threads the cumulative level.
std::vector<double> exportRow(const Probe& p, const Probe::Series& s,
                              std::size_t i, double dt, double* prevLast) {
  const Probe::Bucket& b = s.buckets[i];
  if (p.kind() == ProbeKind::kGauge)
    return {b.min, Probe::bucketMean(s, i, dt), b.max, b.last};
  const double delta = b.last - *prevLast;
  *prevLast = b.last;
  return {delta, dt > 0 ? delta / dt : 0.0};
}

bool allZero(const std::vector<double>& row) {
  for (double v : row)
    if (v != 0.0) return false;
  return true;
}

struct SeriesExport {
  std::int64_t first = 0;  // global index of rows[0]
  double total = 0;        // gauge: integral; counter/rate: final level
  std::vector<std::vector<double>> rows;
};

SeriesExport exportSeries(const Probe& p, const Probe::Series& s, double dt) {
  SeriesExport ex;
  double prevLast = 0;
  std::vector<std::vector<double>> rows;
  rows.reserve(s.buckets.size());
  for (std::size_t i = 0; i < s.buckets.size(); ++i) {
    // Drop the zero-width bucket opened exactly at the horizon.
    const double bStart =
        static_cast<double>(s.firstBucket + static_cast<std::int64_t>(i)) *
        dt;
    if (i + 1 == s.buckets.size() && s.lastT <= bStart) break;
    rows.push_back(exportRow(p, s, i, dt, &prevLast));
  }
  if (p.kind() == ProbeKind::kGauge) {
    for (const auto& b : s.buckets) ex.total += b.integral;
  } else {
    ex.total = s.cur;
  }
  // Trim leading/trailing all-zero rows; `first` keeps the alignment.
  std::size_t lead = 0;
  while (lead < rows.size() && allZero(rows[lead])) ++lead;
  std::size_t tail = rows.size();
  while (tail > lead && allZero(rows[tail - 1])) --tail;
  ex.first = s.firstBucket + static_cast<std::int64_t>(lead);
  ex.rows.assign(rows.begin() + static_cast<std::ptrdiff_t>(lead),
                 rows.begin() + static_cast<std::ptrdiff_t>(tail));
  return ex;
}

}  // namespace

std::vector<std::vector<double>> TelemetrySink::loadMatrix(
    const Probe& p) const {
  const double dt = reg_->bucketDt();
  const auto buckets = static_cast<std::size_t>(
      std::ceil(horizon_ / dt - 1e-9));
  std::vector<std::vector<double>> rows;
  rows.reserve(static_cast<std::size_t>(p.instances()));
  for (int i = 0; i < p.instances(); ++i) {
    const Probe::Series& s = p.seriesAt(i);
    std::vector<double> row(buckets, 0.0);
    double prevLast = 0;
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      const auto gi = static_cast<std::size_t>(
          s.firstBucket + static_cast<std::int64_t>(b));
      double v;
      if (p.kind() == ProbeKind::kGauge) {
        v = Probe::bucketMean(s, b, dt);
      } else {
        v = s.buckets[b].last - prevLast;
        prevLast = s.buckets[b].last;
      }
      if (gi < buckets) row[gi] = v;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string TelemetrySink::toJson() const {
  const double dt = reg_->bucketDt();
  std::string out;
  out.reserve(1 << 16);
  out += "{\n  \"schema\": \"";
  out += Telemetry::kSchemaVersion;
  out += "\",\n  \"bucket_dt\": ";
  appendNum(out, dt);
  out += ",\n  \"horizon\": ";
  appendNum(out, horizon_);
  out += ",\n  \"buckets\": ";
  appendf(out, "%lld",
          static_cast<long long>(std::ceil(horizon_ / dt - 1e-9)));
  out += ",\n  \"series\": [";
  bool firstSeries = true;
  for (const auto& p : reg_->probes()) {
    if (!firstSeries) out += ",";
    firstSeries = false;
    out += "\n    {\"name\": \"" + p->name() + "\", \"kind\": \"";
    out += probeKindName(p->kind());
    appendf(out, "\", \"instances\": %d", p->instances());
    std::vector<SeriesExport> exports;
    exports.reserve(static_cast<std::size_t>(p->instances()));
    for (int i = 0; i < p->instances(); ++i)
      exports.push_back(exportSeries(*p, p->seriesAt(i), dt));
    if (p->instances() > 1) {
      std::vector<double> totals;
      totals.reserve(exports.size());
      for (const auto& ex : exports) totals.push_back(ex.total);
      const ImbalanceStats st = computeImbalance(totals, loadMatrix(*p), dt);
      out += ",\n     \"imbalance\": {\"total_load\": ";
      appendNum(out, st.totalLoad);
      out += ", \"max_share\": ";
      appendNum(out, st.maxShare);
      out += ", \"max_over_mean\": ";
      appendNum(out, st.maxOverMean);
      out += ", \"jain\": ";
      appendNum(out, st.jain);
      out += ", \"idle_while_busy_seconds\": ";
      appendNum(out, st.idleWhileBusySeconds);
      appendf(out, ", \"busiest\": %d}", st.busiest);
    }
    out += ",\n     \"per_instance\": [";
    for (std::size_t i = 0; i < exports.size(); ++i) {
      const SeriesExport& ex = exports[i];
      if (i) out += ",";
      appendf(out, "\n      {\"i\": %zu, \"total\": ", i);
      appendNum(out, ex.total);
      appendf(out, ", \"first\": %lld, \"buckets\": [",
              static_cast<long long>(ex.first));
      for (std::size_t r = 0; r < ex.rows.size(); ++r) {
        if (r) out += ",";
        out += "[";
        for (std::size_t c = 0; c < ex.rows[r].size(); ++c) {
          if (c) out += ",";
          appendNum(out, ex.rows[r][c]);
        }
        out += "]";
      }
      out += "]}";
    }
    out += "\n    ]}";
  }
  out += "\n  ],\n  \"rank_busy\": {\"ranks\": ";
  appendf(out, "%zu", busy_.size());
  out += ", \"busy_seconds\": [";
  for (std::size_t r = 0; r < busy_.size(); ++r) {
    if (r) out += ",";
    appendNum(out, busy_[r]);
  }
  out += "]}\n}\n";
  return out;
}

std::string TelemetrySink::toCsv() const {
  const double dt = reg_->bucketDt();
  std::string out = "series,kind,instance,bucket,t0,v0,v1,v2,v3\n";
  for (const auto& p : reg_->probes()) {
    for (int i = 0; i < p->instances(); ++i) {
      const SeriesExport ex = exportSeries(*p, p->seriesAt(i), dt);
      for (std::size_t r = 0; r < ex.rows.size(); ++r) {
        const auto gi = ex.first + static_cast<std::int64_t>(r);
        appendf(out, "%s,%s,%d,%lld,", csvField(p->name()).c_str(),
                probeKindName(p->kind()), i, static_cast<long long>(gi));
        appendNum(out, static_cast<double>(gi) * dt);
        for (double v : ex.rows[r]) {
          out += ",";
          appendNum(out, v);
        }
        if (ex.rows[r].size() == 2) out += ",,";  // counter/rate rows
        out += "\n";
      }
    }
  }
  return out;
}

void TelemetrySink::crossCheckAttribution(
    const AttributionEngine::Report& report) const {
  if (!sawEnvelopes_ || !finalized_) return;
  // The envelope integration is event-exact; attribution may additionally
  // count the microsecond-scale collective spans bracketing the envelope.
  // One bucket width is the documented agreement contract.
  const double tol = reg_->bucketDt() + 1e-9;
  for (const auto& r : report.ranks) {
    if (r.rank < 0 || r.rank >= static_cast<int>(busy_.size())) continue;
    const double sampled = busy_[static_cast<std::size_t>(r.rank)];
    if (sampled <= 0) continue;
    SIM_CHECK(std::fabs(sampled - r.blocked()) <= tol,
              "telemetry per-rank busy time diverges from the attribution "
              "partition by more than one bucket width");
  }
  if (activeRanks_ != nullptr && reg_->enabled()) {
    double sum = 0;
    for (double b : busy_) sum += b;
    const Probe::Series& s = activeRanks_->seriesAt(0);
    double integral = 0;
    for (const auto& b : s.buckets) integral += b.integral;
    SIM_CHECK(std::fabs(integral - sum) <=
                  1e-6 * std::max(1.0, sum) + reg_->bucketDt(),
              "active_ranks integral diverges from per-rank busy totals");
  }
}

}  // namespace bgckpt::obs
