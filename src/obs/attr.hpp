// Blocked-time attribution: classify every rank's simulated time into
// exclusive phases.
//
// The paper's perceived-performance argument (Eqs. 1-7) is about *blocked
// processor time*: how long each worker is held inside the checkpoint
// instead of computing. The trace stream already records what every layer
// did; this module turns those overlapping spans into an exclusive
// partition of [0, horizon] per rank:
//
//   compute       - time covered by no instrumented span at all
//   handoff_send  - rbIO worker shipping its block to a writer (kIo "send")
//   handoff_recv  - rbIO writer draining worker blocks (kIo "recv")
//   barrier       - held inside an MPI barrier/collective (kMpi spans)
//   token_wait    - GPFS byte-range/size token negotiation (kFilesystem)
//   metadata      - file create/open (kIo "create"/"open")
//   write         - data path of a write op (kIo "write" minus inner waits)
//   close         - kIo "close"
//   other         - inside the checkpoint envelope but in none of the above
//
// Overlaps resolve by specificity: the kApp checkpoint envelope (depth 1)
// loses to kIo ops (depth 2), which lose to MPI collective waits (depth 3),
// which lose to filesystem token waits (depth 4). The deepest span covering
// an instant names its phase — e.g. a coIO rank inside MPI_File_write_all
// spends its "write" span mostly inside collective barriers, and those
// instants are barrier wait, not write. By construction the phases
// partition [0, horizon] exactly (checked with a SIM_CHECK-style invariant
// in AttributionSink::finalize).
//
// AttributionEngine is the pure computation (also reused offline by
// tools/trace_report on JSONL logs); AttributionSink adapts it as a
// TraceSink attached to a live Observability hub.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace bgckpt::obs {

enum class Phase : int {
  kCompute = 0,
  kHandoffSend,
  kHandoffRecv,
  kBarrier,
  kTokenWait,
  kMetadata,
  kWrite,
  kClose,
  kOther,
};
inline constexpr int kNumPhases = 9;

const char* phaseName(Phase p);

class AttributionEngine {
 public:
  /// Layers the classification consumes; everything else is noise here.
  static constexpr unsigned kMask = layerBit(Layer::kApp) |
                                    layerBit(Layer::kIo) |
                                    layerBit(Layer::kMpi) |
                                    layerBit(Layer::kFilesystem);

  /// Map one trace event to a (phase, specificity depth) contribution.
  /// Returns false for events that carry no attribution signal (counter
  /// samples, kMpi point-to-point messages, kFilesystem op mirrors of kIo
  /// ops, the rbIO phase-grouping B/E spans).
  static bool classify(const TraceEvent& ev, Phase* phase, int* depth);

  /// Feed events in emission order (B/E checkpoint envelopes must nest).
  void addEvent(const TraceEvent& ev);

  struct RankSlice {
    int rank = 0;
    std::array<double, kNumPhases> seconds{};
    double total() const;
    /// Everything except compute: the rank was inside checkpoint machinery.
    double blocked() const;
  };

  struct Report {
    sim::SimTime horizon = 0;
    std::vector<RankSlice> ranks;  // ascending rank; only ranks seen
    std::array<double, kNumPhases> totals{};
    double blockedSeconds() const;
    /// Max |sum(phases) - horizon| across ranks — the partition defect.
    /// Exactly 0 by construction; exported so tests can assert it.
    double partitionDefect() const;
    std::string toJson() const;
    std::string toCsv() const;
  };

  /// Sweep all recorded spans into the exclusive partition. Spans are
  /// clamped to [0, horizon]; instants covered by several spans go to the
  /// deepest (ties: later start, then later arrival). `const`: callable
  /// repeatedly / at several horizons.
  Report compute(sim::SimTime horizon) const;

  std::size_t spanCount() const { return spans_.size(); }

 private:
  struct Span {
    int rank;
    std::int8_t phase;
    std::int8_t depth;
    sim::SimTime t0;
    sim::SimTime t1;
  };
  std::vector<Span> spans_;
  // Open kApp "checkpoint" envelope per rank (B seen, E pending).
  std::vector<std::pair<int, sim::SimTime>> openEnvelopes_;
};

/// TraceSink adaptor: collects events during the run, computes the report
/// at Observability::finalize(horizon), optionally writes JSON/CSV files,
/// and keeps the report readable in-process (the eq7 bench reads measured
/// blocked time from here).
class AttributionSink final : public TraceSink {
 public:
  AttributionSink() = default;
  /// Request file export at finalize; empty path skips that format.
  void exportTo(std::string jsonPath, std::string csvPath);

  void event(const TraceEvent& ev) override;
  void finalize(sim::SimTime horizon) override;
  unsigned layerMask() const override { return AttributionEngine::kMask; }

  bool finalized() const { return finalized_; }
  /// Valid after finalize().
  const AttributionEngine::Report& report() const { return report_; }
  const AttributionEngine& engine() const { return engine_; }

 private:
  AttributionEngine engine_;
  AttributionEngine::Report report_;
  bool finalized_ = false;
  std::string jsonPath_;
  std::string csvPath_;
};

}  // namespace bgckpt::obs
