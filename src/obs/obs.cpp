#include "obs/obs.hpp"

#include "obs/attr.hpp"
#include "obs/critpath.hpp"
#include "obs/optrace.hpp"
#include "obs/telemetry.hpp"

namespace bgckpt::obs {

SchedulerProbe::SchedulerProbe(Observability& obs)
    : obs_(obs),
      events_(obs.metrics().counter("sched.events")),
      roots_(obs.metrics().counter("sched.roots")),
      queueDepthMax_(obs.metrics().gauge("sched.queue_depth.max")) {}

void SchedulerProbe::onDispatch(sim::SimTime now, std::size_t queueDepth) {
  events_.add();
  queueDepthMax_.setMax(static_cast<double>(queueDepth));
  if (telemetry_ != nullptr) telemetry_->tick(now, queueDepth);
}

void SchedulerProbe::onRootSpawned(std::uint64_t rootId, sim::SimTime now) {
  roots_.add();
  obs_.begin(Layer::kScheduler, static_cast<int>(rootId), "root", now);
}

void SchedulerProbe::onRootDone(std::uint64_t rootId, sim::SimTime now) {
  obs_.end(Layer::kScheduler, static_cast<int>(rootId), "root", now);
}

void SchedulerProbe::onEventScheduled(std::uint64_t seq,
                                      std::uint64_t parentSeq,
                                      sim::SimTime when, sim::WakeKind kind,
                                      const char* label) {
  if (critPath_ != nullptr)
    critPath_->onEventScheduled(seq, parentSeq, when, kind, label);
}

Observability::Observability() = default;

Observability::~Observability() {
  const sim::SimTime horizon = observedSched_ ? observedSched_->now() : 0.0;
  releaseScheduler();
  // Aggregating sinks (attribution, critpath) must always get their
  // finalize, even without a metrics export request; finalize() is
  // idempotent, so a stack already finalized by hand skips the work.
  finalize(horizon);
  if (!metricsJsonPath_.empty()) metrics_.writeJson(metricsJsonPath_);
  if (!metricsCsvPath_.empty()) metrics_.writeCsv(metricsCsvPath_);
}

void Observability::addSink(std::shared_ptr<TraceSink> sink) {
  if (!sink) return;
  mask_ |= sink->layerMask();
  sinks_.push_back(std::move(sink));
}

void Observability::emit(const TraceEvent& ev) {
  const unsigned bit = layerBit(ev.layer);
  for (const auto& sink : sinks_)
    if (sink->layerMask() & bit) sink->event(ev);
}

void Observability::begin(Layer layer, int tid, const char* name,
                          sim::SimTime ts) {
  if (!tracing(layer)) return;
  TraceEvent ev;
  ev.layer = layer;
  ev.phase = 'B';
  ev.tid = tid;
  ev.name = name;
  ev.ts = ts;
  emit(ev);
}

void Observability::end(Layer layer, int tid, const char* name,
                        sim::SimTime ts) {
  if (!tracing(layer)) return;
  TraceEvent ev;
  ev.layer = layer;
  ev.phase = 'E';
  ev.tid = tid;
  ev.name = name;
  ev.ts = ts;
  emit(ev);
}

void Observability::complete(Layer layer, int tid, const char* name,
                             sim::SimTime start, sim::SimTime end) {
  if (!tracing(layer)) return;
  TraceEvent ev;
  ev.layer = layer;
  ev.phase = 'X';
  ev.tid = tid;
  ev.name = name;
  ev.ts = start;
  ev.dur = end - start;
  emit(ev);
}

void Observability::completeBytes(Layer layer, int tid, const char* name,
                                  sim::SimTime start, sim::SimTime end,
                                  sim::Bytes bytes) {
  if (!tracing(layer)) return;
  TraceEvent ev;
  ev.layer = layer;
  ev.phase = 'X';
  ev.tid = tid;
  ev.name = name;
  ev.ts = start;
  ev.dur = end - start;
  ev.hasBytes = true;
  ev.bytes = bytes;
  emit(ev);
}

void Observability::message(int src, int dst, sim::Bytes bytes,
                            sim::SimTime sendTime, sim::SimTime deliverTime) {
  metrics_.recordPair(src, dst, bytes, deliverTime - sendTime);
  if (!tracing(Layer::kMpi)) return;
  TraceEvent ev;
  ev.layer = Layer::kMpi;
  ev.phase = 'X';
  ev.tid = src;
  ev.name = "message";
  ev.ts = sendTime;
  ev.dur = deliverTime - sendTime;
  ev.hasBytes = true;
  ev.bytes = bytes;
  ev.src = src;
  ev.dst = dst;
  emit(ev);
}

void Observability::counterSample(Layer layer, const char* name,
                                  sim::SimTime ts, double value) {
  if (!tracing(layer)) return;
  TraceEvent ev;
  ev.layer = layer;
  ev.phase = 'C';
  ev.tid = 0;
  ev.name = name;
  ev.ts = ts;
  ev.hasValue = true;
  ev.value = value;
  emit(ev);
}

void Observability::observeScheduler(sim::Scheduler& sched) {
  if (schedProbe_) return;
  schedProbe_ = std::make_unique<SchedulerProbe>(*this);
  observedSched_ = &sched;
  sched.setHooks(schedProbe_.get());
}

void Observability::releaseScheduler() {
  if (observedSched_) {
    observedSched_->setHooks(nullptr);
    observedSched_ = nullptr;
  }
  if (schedProbe_) {
    schedProbe_->setCritPath(nullptr);
    schedProbe_->setTelemetry(nullptr);
  }
  schedProbe_.reset();
}

Telemetry& Observability::telemetry() {
  if (!telemetry_) telemetry_ = std::make_unique<Telemetry>();
  return *telemetry_;
}

TelemetrySink& Observability::attachTelemetry(sim::Scheduler& sched,
                                              double bucketDt,
                                              std::string jsonPath,
                                              std::string csvPath) {
  if (!telemetrySink_) {
    Telemetry& reg = telemetry();
    reg.enable(sched, bucketDt);
    observeScheduler(sched);
    schedProbe_->setTelemetry(&reg);
    telemetrySink_ = std::make_shared<TelemetrySink>(reg);
    addSink(telemetrySink_);
  }
  if (!jsonPath.empty() || !csvPath.empty())
    telemetrySink_->exportTo(std::move(jsonPath), std::move(csvPath));
  return *telemetrySink_;
}

OpTraceSink& Observability::attachOpTrace(std::uint32_t sampleEvery,
                                          int tailN, std::string jsonPath) {
  if (!opTracer_) {
    opTracer_ = std::make_unique<OpTracer>(
        sampleEvery > 0 ? sampleEvery : OpTracer::kDefaultSampleEvery,
        tailN >= 0 ? tailN : OpTracer::kDefaultTailN);
    opTraceSink_ = std::make_shared<OpTraceSink>(*opTracer_);
    addSink(opTraceSink_);
  }
  if (!jsonPath.empty()) opTraceSink_->exportTo(std::move(jsonPath));
  return *opTraceSink_;
}

CritPathRecorder& Observability::attachCritPath(sim::Scheduler& sched,
                                                std::string jsonPath) {
  if (!critPath_) {
    critPath_ = std::make_shared<CritPathRecorder>();
    observeScheduler(sched);
    schedProbe_->setCritPath(critPath_.get());
    // Refresh the scheduler's cached wantsScheduleEvents() decision.
    sched.setHooks(schedProbe_.get());
    addSink(critPath_);
  }
  if (!jsonPath.empty()) critPath_->exportTo(std::move(jsonPath));
  return *critPath_;
}

void Observability::finalize(sim::SimTime horizon) {
  if (finalized_) {
    // Already derived and finalized (manual call before the exportOnDestroy
    // teardown, say): deriving again would divide busy-seconds by a new
    // horizon and double-count nothing but still overwrite — skip, just
    // re-flush so late events reach disk.
    for (const auto& sink : sinks_) sink->flush();
    return;
  }
  finalized_ = true;
  if (horizon > 0) {
    // Derive `<prefix>.utilization` from accumulated busy seconds: mean
    // fraction of the horizon each link/server/stream-slot was busy.
    for (const auto& [name, g] : metrics_.gauges()) {
      const auto pos = name.rfind(".busy_seconds");
      if (pos == std::string::npos ||
          pos + 13 != name.size())
        continue;
      const std::string prefix = name.substr(0, pos);
      const double links = metrics_.gauge(prefix + ".links").value();
      if (links <= 0) continue;
      metrics_.gauge(prefix + ".utilization")
          .set(g.value() / (horizon * links));
    }
    metrics_.gauge("sim.horizon_seconds").set(horizon);
  }
  for (const auto& sink : sinks_) sink->finalize(horizon);
  // Tie the sampled view to the exact event view: whenever both sinks are
  // attached, their independently integrated busy times must agree.
  if (telemetrySink_ && telemetrySink_->finalized()) {
    for (const auto& sink : sinks_) {
      const auto* attr = dynamic_cast<const AttributionSink*>(sink.get());
      if (attr != nullptr && attr->finalized())
        telemetrySink_->crossCheckAttribution(attr->report());
    }
  }
  for (const auto& sink : sinks_) sink->flush();
}

void Observability::exportOnDestroy(std::string metricsJsonPath,
                                    std::string metricsCsvPath) {
  metricsJsonPath_ = std::move(metricsJsonPath);
  metricsCsvPath_ = std::move(metricsCsvPath);
}

}  // namespace bgckpt::obs
