#include "obs/runtimeprof.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

namespace bgckpt::obs {

namespace {

// The one place in src/ that reads a host clock (srclint allowlists this
// file): the profiler measures the engine, it never feeds the model.
std::uint64_t nowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void writeEscaped(std::FILE* f, const std::string& s) {
  std::fputc('"', f);
  for (char c : s) {
    switch (c) {
      case '"': std::fputs("\\\"", f); break;
      case '\\': std::fputs("\\\\", f); break;
      case '\n': std::fputs("\\n", f); break;
      case '\t': std::fputs("\\t", f); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          std::fprintf(f, "\\u%04x", c);
        else
          std::fputc(c, f);
    }
  }
  std::fputc('"', f);
}

const char* phaseName(sim::WindowPhase p) noexcept {
  switch (p) {
    case sim::WindowPhase::kSetup: return "setup";
    case sim::WindowPhase::kDrain: return "drain";
    case sim::WindowPhase::kReduce: return "reduce";
    case sim::WindowPhase::kBarrier: return "barrier";
    case sim::WindowPhase::kExec: return "exec";
  }
  return "?";
}

void writeHistogram(std::FILE* f, const char* key, const LogHistogram& h) {
  // Sparse emission: [[bucket, count], ...]. Bucket 32 is "about 1x" —
  // bucket i covers ratios in [2^(i-32), 2^(i-31)); bucket 0 is x <= 0.
  std::fprintf(f, "\"%s\": [", key);
  bool first = true;
  for (int i = 0; i < LogHistogram::kBuckets; ++i) {
    if (h.counts[i] == 0) continue;
    std::fprintf(f, "%s[%d, %llu]", first ? "" : ", ", i,
                 static_cast<unsigned long long>(h.counts[i]));
    first = false;
  }
  std::fputs("]", f);
}

}  // namespace

void LogHistogram::add(double ratio) noexcept {
  int bucket = 0;
  if (ratio > 0.0 && std::isfinite(ratio)) {
    bucket = 32 + std::ilogb(ratio);
    if (bucket < 1) bucket = 1;
    if (bucket > kBuckets - 1) bucket = kBuckets - 1;
  }
  ++counts[bucket];
}

std::uint64_t LogHistogram::total() const noexcept {
  std::uint64_t t = 0;
  for (std::uint64_t c : counts) t += c;
  return t;
}

// ---------------------------------------------------------------------------
// Per-run recorder: implements the ShardRunObserver callbacks. Accumulator
// slots are cache-line-aligned and written only by the owning worker
// thread (shard phases run on shard i's pinned worker; barrier slots are
// per worker; reduce/window run single-threaded inside the barrier
// completion), so the hot path takes no locks and no atomics.
class RuntimeProfiler::RunRecorder final : public sim::ShardRunObserver {
 public:
  RunRecorder(ShardRunProfile* profile, std::size_t maxSpans,
              std::uint64_t startNs)
      : profile_(profile), startNs_(startNs), maxSpans_(maxSpans) {
    const unsigned s = profile->shards;
    const unsigned t = profile->threads;
    profile_->perShard.resize(s);
    profile_->perWorker.resize(t);
    shardScratch_.resize(s);
    workerScratch_.resize(t);
    if (maxSpans_ > 0) {
      workerSpans_.resize(t);
      const std::size_t perWorker = maxSpans_ / t + 1;
      for (auto& v : workerSpans_) v.reserve(perWorker < 4096 ? perWorker : 4096);
    }
  }

  void phaseBegin(sim::WindowPhase phase, unsigned idx) noexcept override {
    const std::uint64_t t = nowNs();
    switch (phase) {
      case sim::WindowPhase::kBarrier:
        workerScratch_[idx].beginNs = t;
        break;
      case sim::WindowPhase::kReduce:
        reduceBeginNs_ = t;
        break;
      default:
        shardScratch_[idx].beginNs = t;
    }
  }

  void phaseEnd(sim::WindowPhase phase, unsigned idx,
                std::uint64_t items) noexcept override {
    const std::uint64_t t = nowNs();
    std::uint64_t begin = 0;
    unsigned worker = 0;
    switch (phase) {
      case sim::WindowPhase::kBarrier:
        begin = workerScratch_[idx].beginNs;
        worker = idx;
        profile_->perWorker[idx].barrierNs += t - begin;
        break;
      case sim::WindowPhase::kReduce:
        begin = reduceBeginNs_;
        profile_->reduceNs += t - begin;
        break;
      case sim::WindowPhase::kSetup:
        begin = shardScratch_[idx].beginNs;
        worker = idx % profile_->threads;
        profile_->perShard[idx].setupNs += t - begin;
        break;
      case sim::WindowPhase::kDrain:
        begin = shardScratch_[idx].beginNs;
        worker = idx % profile_->threads;
        profile_->perShard[idx].drainNs += t - begin;
        profile_->perShard[idx].delivered += items;
        break;
      case sim::WindowPhase::kExec:
        begin = shardScratch_[idx].beginNs;
        worker = idx % profile_->threads;
        profile_->perShard[idx].execNs += t - begin;
        profile_->perShard[idx].events += items;
        break;
    }
    if (maxSpans_ > 0) recordSpan(phase, idx, worker, begin, t);
  }

  void window(std::uint64_t index, const sim::SimTime* nextTimes,
              unsigned shards, sim::SimTime minNext, sim::SimTime horizon,
              bool done) noexcept override {
    (void)index;
    (void)horizon;
    // Runs single-threaded inside the barrier completion: every worker's
    // writes for the previous window happen-before this point.
    std::uint64_t eventsTotal = 0;
    for (unsigned i = 0; i < shards; ++i)
      eventsTotal += profile_->perShard[i].events;
    if (windowsSeen_ > 0)
      profile_->eventsHist.add(
          static_cast<double>(eventsTotal - prevEventsTotal_));
    prevEventsTotal_ = eventsTotal;
    if (done) return;
    ++windowsSeen_;
    profile_->windows = windowsSeen_;
    // Critical shard: the argmin of the nextTime reduction — the shard
    // whose clock set this window's horizon.
    unsigned critical = 0;
    for (unsigned i = 0; i < shards; ++i) {
      if (nextTimes[i] == minNext) {
        critical = i;
        break;
      }
    }
    ++profile_->perShard[critical].criticalWindows;
    const double la = profile_->lookahead;
    if (la > 0.0) {
      if (havePrevMin_)
        profile_->advanceHist.add((minNext - prevMinNext_) / la);
      for (unsigned i = 0; i < shards; ++i)
        if (std::isfinite(nextTimes[i]))
          profile_->slackHist.add((nextTimes[i] - minNext) / la);
    }
    prevMinNext_ = minNext;
    havePrevMin_ = true;
  }

  void finished(const sim::ShardGroup::Stats& stats) noexcept override {
    profile_->stats = stats;
    profile_->windows = stats.windows;
    profile_->wallNs = nowNs() - startNs_;
    if (maxSpans_ > 0) {
      for (auto& v : workerSpans_) {
        profile_->spans.insert(profile_->spans.end(), v.begin(), v.end());
        v.clear();
      }
      profile_->spans.insert(profile_->spans.end(), reduceSpans_.begin(),
                             reduceSpans_.end());
      reduceSpans_.clear();
      std::sort(profile_->spans.begin(), profile_->spans.end(),
                [](const ShardRunProfile::PhaseSpan& a,
                   const ShardRunProfile::PhaseSpan& b) {
                  return a.beginNs < b.beginNs;
                });
      profile_->droppedSpans = droppedSpans_;
    }
  }

 private:
  struct alignas(64) Scratch {
    std::uint64_t beginNs = 0;
  };

  void recordSpan(sim::WindowPhase phase, unsigned idx, unsigned worker,
                  std::uint64_t begin, std::uint64_t end) noexcept {
    auto& dst = phase == sim::WindowPhase::kReduce ? reduceSpans_
                                                   : workerSpans_[worker];
    if (spanCount(worker) >= maxSpans_ / profile_->threads + 1) {
      ++droppedSpans_;  // racy increment is fine: diagnostic counter
      return;
    }
    dst.push_back(ShardRunProfile::PhaseSpan{phase, idx, worker, begin, end});
  }

  std::size_t spanCount(unsigned worker) const noexcept {
    return workerSpans_[worker].size() + (worker == 0 ? reduceSpans_.size() : 0);
  }

  ShardRunProfile* profile_;
  std::uint64_t startNs_ = 0;
  std::size_t maxSpans_ = 0;
  std::vector<Scratch> shardScratch_;
  std::vector<Scratch> workerScratch_;
  std::uint64_t reduceBeginNs_ = 0;
  // window()-only state (single-threaded).
  std::uint64_t windowsSeen_ = 0;
  std::uint64_t prevEventsTotal_ = 0;
  double prevMinNext_ = 0.0;
  bool havePrevMin_ = false;
  // Span buffers: one per worker plus the single-threaded reduce buffer.
  std::vector<std::vector<ShardRunProfile::PhaseSpan>> workerSpans_;
  std::vector<ShardRunProfile::PhaseSpan> reduceSpans_;
  std::uint64_t droppedSpans_ = 0;
};

struct RuntimeProfiler::RegionState {
  ParallelRegionProfile* profile = nullptr;
  std::uint64_t id = 0;
  std::uint64_t beginNs = 0;
  // Indexed by job; each job is claimed by exactly one worker, so slots
  // are written lock-free by distinct threads.
  std::vector<std::uint64_t> jobBeginNs;
};

RuntimeProfiler::RuntimeProfiler(const Config& config) : config_(config) {}

RuntimeProfiler::~RuntimeProfiler() { uninstall(); }

void RuntimeProfiler::install() {
  sim::setRuntimeObserver(this);
  installed_ = true;
}

void RuntimeProfiler::uninstall() {
  if (!installed_) return;
  installed_ = false;
  if (sim::runtimeObserver() == this) sim::setRuntimeObserver(nullptr);
}

void RuntimeProfiler::setPointLabels(std::vector<std::string> labels) {
  std::lock_guard<std::mutex> lock(mu_);
  pendingLabels_ = std::move(labels);
}

void RuntimeProfiler::recordPoint(const std::string& label, double wallSeconds,
                                  std::uint64_t events, unsigned threads) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.push_back(PointRecord{label, wallSeconds, events, threads});
}

sim::ShardRunObserver* RuntimeProfiler::beginShardRun(
    const sim::ShardRunInfo& info) noexcept {
  try {
    std::lock_guard<std::mutex> lock(mu_);
    if (runs_.size() >= config_.maxShardRuns) {
      ++droppedRuns_;
      return nullptr;
    }
    auto profile = std::make_unique<ShardRunProfile>();
    profile->shards = info.shards;
    profile->threads = info.threads;
    profile->lookahead = info.lookahead;
    auto recorder = std::make_unique<RunRecorder>(
        profile.get(), config_.maxSpansPerRun, nowNs());
    runs_.push_back(std::move(profile));
    recorders_.push_back(std::move(recorder));
    return recorders_.back().get();
  } catch (...) {
    return nullptr;  // allocation failure: skip profiling this run
  }
}

void RuntimeProfiler::parallelForBegin(std::uint64_t id, std::size_t jobs,
                                       unsigned threads) noexcept {
  try {
    std::lock_guard<std::mutex> lock(mu_);
    if (regions_.size() >= config_.maxRegions) {
      ++droppedRegions_;
      pendingLabels_.clear();
      return;
    }
    auto profile = std::make_unique<ParallelRegionProfile>();
    profile->id = id;
    profile->jobs = jobs;
    profile->threads = threads;
    profile->perJob.resize(jobs);
    if (pendingLabels_.size() == jobs) {
      for (std::size_t i = 0; i < jobs; ++i)
        profile->perJob[i].label = std::move(pendingLabels_[i]);
    }
    pendingLabels_.clear();
    auto state = std::make_unique<RegionState>();
    state->profile = profile.get();
    state->id = id;
    state->beginNs = nowNs();
    state->jobBeginNs.resize(jobs);
    regions_.push_back(std::move(profile));
    liveRegions_.push_back(std::move(state));
  } catch (...) {
  }
}

void RuntimeProfiler::jobBegin(std::uint64_t id, std::size_t job,
                               unsigned worker) noexcept {
  (void)worker;
  RegionState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : liveRegions_)
      if (s->id == id) { state = s.get(); break; }
  }
  if (!state || job >= state->jobBeginNs.size()) return;
  state->jobBeginNs[job] = nowNs();
}

void RuntimeProfiler::jobEnd(std::uint64_t id, std::size_t job,
                             unsigned worker) noexcept {
  const std::uint64_t t = nowNs();
  RegionState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : liveRegions_)
      if (s->id == id) { state = s.get(); break; }
  }
  if (!state || job >= state->jobBeginNs.size()) return;
  auto& slot = state->profile->perJob[job];
  slot.ns = t - state->jobBeginNs[job];
  slot.worker = worker;
}

void RuntimeProfiler::parallelForEnd(std::uint64_t id) noexcept {
  const std::uint64_t t = nowNs();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = liveRegions_.begin(); it != liveRegions_.end(); ++it) {
    if ((*it)->id == id) {
      (*it)->profile->wallNs = t - (*it)->beginNs;
      liveRegions_.erase(it);
      return;
    }
  }
}

bool RuntimeProfiler::writeJson(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n  \"schema\": \"%s\",\n  \"clock\": \"steady\",\n",
               kRuntimeProfSchemaVersion);
  std::fprintf(f, "  \"dropped_shard_runs\": %llu,\n",
               static_cast<unsigned long long>(droppedRuns_));
  std::fprintf(f, "  \"dropped_regions\": %llu,\n",
               static_cast<unsigned long long>(droppedRegions_));

  std::fputs("  \"shard_runs\": [", f);
  for (std::size_t r = 0; r < runs_.size(); ++r) {
    const ShardRunProfile& run = *runs_[r];
    std::fprintf(f, "%s\n    {\"shards\": %u, \"threads\": %u, "
                 "\"lookahead\": %.17g, \"windows\": %llu, \"wall_ns\": %llu,\n",
                 r == 0 ? "" : ",", run.shards, run.threads, run.lookahead,
                 static_cast<unsigned long long>(run.windows),
                 static_cast<unsigned long long>(run.wallNs));
    std::uint64_t setup = 0, drain = 0, exec = 0, barrier = 0;
    for (const auto& sh : run.perShard) {
      setup += sh.setupNs;
      drain += sh.drainNs;
      exec += sh.execNs;
    }
    for (const auto& w : run.perWorker) barrier += w.barrierNs;
    std::fprintf(f, "     \"phase_ns\": {\"setup\": %llu, \"drain\": %llu, "
                 "\"reduce\": %llu, \"barrier\": %llu, \"exec\": %llu},\n",
                 static_cast<unsigned long long>(setup),
                 static_cast<unsigned long long>(drain),
                 static_cast<unsigned long long>(run.reduceNs),
                 static_cast<unsigned long long>(barrier),
                 static_cast<unsigned long long>(exec));
    std::fprintf(f, "     \"events\": %llu, \"messages\": %llu, "
                 "\"overflow\": %llu,\n",
                 static_cast<unsigned long long>(run.stats.events),
                 static_cast<unsigned long long>(run.stats.messages),
                 static_cast<unsigned long long>(run.stats.overflow));
    std::fputs("     \"per_shard\": [", f);
    for (std::size_t i = 0; i < run.perShard.size(); ++i) {
      const auto& sh = run.perShard[i];
      std::fprintf(f, "%s\n      {\"shard\": %zu, \"setup_ns\": %llu, "
                   "\"drain_ns\": %llu, \"exec_ns\": %llu, \"events\": %llu, "
                   "\"delivered\": %llu, \"critical_windows\": %llu}",
                   i == 0 ? "" : ",", i,
                   static_cast<unsigned long long>(sh.setupNs),
                   static_cast<unsigned long long>(sh.drainNs),
                   static_cast<unsigned long long>(sh.execNs),
                   static_cast<unsigned long long>(sh.events),
                   static_cast<unsigned long long>(sh.delivered),
                   static_cast<unsigned long long>(sh.criticalWindows));
    }
    std::fputs("],\n     \"per_worker\": [", f);
    for (std::size_t i = 0; i < run.perWorker.size(); ++i)
      std::fprintf(f, "%s{\"worker\": %zu, \"barrier_ns\": %llu}",
                   i == 0 ? "" : ", ", i,
                   static_cast<unsigned long long>(run.perWorker[i].barrierNs));
    std::fputs("],\n     \"channels\": [", f);
    for (std::size_t i = 0; i < run.stats.channels.size(); ++i) {
      const auto& ch = run.stats.channels[i];
      std::fprintf(f, "%s{\"src\": %u, \"dst\": %u, \"overflow\": %llu, "
                   "\"ring_high_water\": %llu}",
                   i == 0 ? "" : ", ", ch.src, ch.dst,
                   static_cast<unsigned long long>(ch.overflow),
                   static_cast<unsigned long long>(ch.ringHighWater));
    }
    std::fputs("],\n     ", f);
    writeHistogram(f, "window_advance_hist", run.advanceHist);
    std::fputs(",\n     ", f);
    writeHistogram(f, "slack_hist", run.slackHist);
    std::fputs(",\n     ", f);
    writeHistogram(f, "window_events_hist", run.eventsHist);
    std::fprintf(f, ",\n     \"dropped_spans\": %llu}",
                 static_cast<unsigned long long>(run.droppedSpans));
  }
  std::fputs("],\n", f);

  std::fputs("  \"parallel_regions\": [", f);
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const ParallelRegionProfile& reg = *regions_[r];
    std::uint64_t sum = 0, maxJob = 0;
    for (const auto& j : reg.perJob) {
      sum += j.ns;
      maxJob = std::max(maxJob, j.ns);
    }
    std::fprintf(f, "%s\n    {\"id\": %llu, \"jobs\": %zu, \"threads\": %u, "
                 "\"wall_ns\": %llu, \"sum_job_ns\": %llu, "
                 "\"max_job_ns\": %llu,\n     \"jobs_detail\": [",
                 r == 0 ? "" : ",",
                 static_cast<unsigned long long>(reg.id), reg.jobs,
                 reg.threads, static_cast<unsigned long long>(reg.wallNs),
                 static_cast<unsigned long long>(sum),
                 static_cast<unsigned long long>(maxJob));
    for (std::size_t i = 0; i < reg.perJob.size(); ++i) {
      const auto& j = reg.perJob[i];
      std::fprintf(f, "%s\n      {\"job\": %zu, \"worker\": %u, \"ns\": %llu, "
                   "\"label\": ",
                   i == 0 ? "" : ",", i, j.worker,
                   static_cast<unsigned long long>(j.ns));
      writeEscaped(f, j.label);
      std::fputs("}", f);
    }
    std::fputs("]}", f);
  }
  std::fputs("],\n", f);

  std::fputs("  \"points\": [", f);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const PointRecord& p = points_[i];
    std::fprintf(f, "%s\n    {\"label\": ", i == 0 ? "" : ",");
    writeEscaped(f, p.label);
    std::fprintf(f, ", \"wall_s\": %.17g, \"events\": %llu, \"threads\": %u}",
                 p.wallSeconds, static_cast<unsigned long long>(p.events),
                 p.threads);
  }
  std::fputs("]\n}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool RuntimeProfiler::writeChromeTrace(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fputs("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n", f);
  bool first = true;
  for (std::size_t r = 0; r < runs_.size(); ++r) {
    const ShardRunProfile& run = *runs_[r];
    for (const auto& sp : run.spans) {
      std::fprintf(f,
                   "%s{\"ph\": \"X\", \"pid\": %zu, \"tid\": %u, "
                   "\"name\": \"%s/%u\", \"cat\": \"runtime\", "
                   "\"ts\": %.3f, \"dur\": %.3f}",
                   first ? "" : ",\n", r, sp.worker, phaseName(sp.phase),
                   sp.idx, static_cast<double>(sp.beginNs) / 1e3,
                   static_cast<double>(sp.endNs - sp.beginNs) / 1e3);
      first = false;
    }
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace bgckpt::obs
