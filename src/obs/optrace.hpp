// Per-request causal tracing: span-context propagation from the rank that
// issues a checkpoint write down to the DDN commit.
//
// The aggregate views (metrics, attribution, telemetry) answer "how busy was
// each layer"; this subsystem answers "where did *this* request spend its
// time". An iolib strategy mints an OpTraceContext per checkpoint write
// operation (trace id, rank, block offset/size) and the context is then
// propagated *by value* — never re-minted — through every layer the request
// crosses: the rbIO handoff rides the mpi::Message, the torus records
// inject/flight/eject hops, the ION its queue and forward, the filesystem
// its metadata and token waits, and the storage fabric the fs-server queue
// and the DDN commit. Each hop appends a timestamped span; aggregation
// points (the rbIO writer, the mpiio collective aggregator) link child
// contexts into their own, recording the 64:1 fan-in lineage.
//
// Cost model: a dormant stack carries one null-pointer branch per hop site
// (contexts default to null; nothing allocates). With tracing on, hop spans
// are recorded for every in-flight request, but full waterfalls are only
// *retained* for a deterministic 1-in-N sample plus the N slowest requests
// (always-capture tail), which bounds memory. Per-hop latency percentiles
// are computed over the sampled population; exact counts and sums cover all
// requests. The tracer never schedules events and never consumes RNG, so
// simulation results are bit-identical with tracing on or off.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"
#include "simcore/stats.hpp"
#include "simcore/units.hpp"

namespace bgckpt::obs {

class OpTracer;

/// The fixed vocabulary of hops a checkpoint request can cross, in rough
/// path order. Per-request hop *totals* (sum of all spans of one hop inside
/// one request) are the unit the percentile tables aggregate, so a request's
/// end-to-end latency decomposes over its hop totals.
enum class Hop : std::uint8_t {
  kHandoffSend = 0,  // rbIO worker: nonblocking send call (perceived cost)
  kHandoffRecv,      // rbIO writer: recv + reorder window (raw handoff)
  kNetInject,        // torus: injection queue + serialisation
  kNetFlight,        // torus: per-hop link latency
  kNetEject,         // torus: ejection queue + drain
  kNetLocal,         // torus: intra-node memory copy
  kCollective,       // mpiio: offset/size exchange + closing barrier
  kFsCreate,         // filesystem: create (dir queue + metadata cost)
  kFsOpen,           // filesystem: open lookup
  kFsClose,          // filesystem: close / flush
  kTokenWait,        // filesystem: byte-range token negotiation
  kIonQueue,         // ION: wait for an uplink slot
  kIonForward,       // ION: forwarding busy time
  kServerQueue,      // fs server: FIFO queue wait
  kServerService,    // fs server: request ingest + service
  kArrayQueue,       // DDN: wait for the array port
  kDdnCommit,        // DDN: seek + media commit
  kLocalWrite,       // multilevel: node-local (ramdisk) write
  kHostWrite,        // hostio backend: real file write syscalls
  kCount
};
inline constexpr int kNumHops = static_cast<int>(Hop::kCount);

const char* hopName(Hop hop);

/// By-value span context. A default-constructed context is null (untraced):
/// every member function is then a single branch. Copying is free — the
/// context is a (tracer, request-id) pair — which is what lets it ride
/// mpi::Message payloads across ranks and coroutine frames by value.
struct OpTraceContext {
  OpTracer* tracer = nullptr;
  std::uint32_t id = 0;

  bool live() const { return tracer != nullptr; }

  /// Append one timestamped hop span to the request.
  void hop(Hop h, sim::SimTime start, sim::SimTime end,
           sim::Bytes bytes = 0) const;
  /// Record `child` as a block merged into this (aggregate) request.
  /// Fan-in lineage: the rbIO writer links the 63 worker handoffs plus its
  /// own block; the mpiio aggregator links the exchanged pieces.
  void link(const OpTraceContext& child) const;
  /// Mark the request finished at `end`. Linked children still open are
  /// completed at the same instant: a handed-off block's journey ends when
  /// the aggregate that swallowed it commits.
  void complete(sim::SimTime end) const;
};

/// Registry of in-flight and retained requests. Owned by Observability;
/// layers receive contexts, never the tracer itself.
class OpTracer {
 public:
  static constexpr const char* kSchemaVersion = "bgckpt-optrace-1";
  static constexpr std::uint32_t kDefaultSampleEvery = 64;
  static constexpr int kDefaultTailN = 8;

  explicit OpTracer(std::uint32_t sampleEvery = kDefaultSampleEvery,
                    int tailN = kDefaultTailN);

  /// Mint a new request context. Only strategy-level code (src/iolib, the
  /// hostio backend) mints; everything downstream propagates. `op` must
  /// point at storage outliving the tracer (string literals).
  OpTraceContext mint(int rank, const char* op, std::uint64_t offset,
                      sim::Bytes bytes, sim::SimTime now);

  void recordHop(std::uint32_t id, Hop h, sim::SimTime start, sim::SimTime end,
                 sim::Bytes bytes);
  void linkChild(std::uint32_t parent, std::uint32_t child);
  void completeRequest(std::uint32_t id, sim::SimTime end);

  /// Complete every still-open request at the horizon (flagged unfinished)
  /// and freeze the aggregates. Idempotent.
  void closeOut(sim::SimTime horizon);

  /// Versioned JSON export (schema kSchemaVersion); call after closeOut.
  std::string toJson() const;

  // -- accessors for tests and in-process consumers -----------------------
  struct HopStat {
    std::uint64_t requests = 0;  // requests that crossed this hop (all)
    double totalSeconds = 0;     // sum of hop totals over all requests
    double p50 = 0, p95 = 0, p99 = 0, max = 0;  // sampled population
  };
  std::uint64_t minted() const { return minted_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t sampled() const { return sampledCount_; }
  std::uint32_t sampleEvery() const { return sampleEvery_; }
  HopStat hopStat(Hop h) const;            // across all ops
  HopStat hopStat(const char* op, Hop h) const;
  double e2eQuantile(double q) const;      // sampled population
  const sim::Sample& fanIn() const { return fanIn_; }
  std::uint64_t lineageEdges() const { return edges_; }

 private:
  struct Span {
    double t0 = 0;
    double dur = 0;
    std::uint64_t bytes = 0;
    Hop hop = Hop::kCount;
  };
  struct Request {
    std::uint32_t id = 0;
    int rank = 0;
    const char* op = "";
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    double t0 = 0;
    double t1 = -1;
    std::uint32_t parent = kNoParent;
    std::uint32_t fanIn = 0;
    bool sampled = false;
    bool unfinished = false;
    bool childrenTruncated = false;
    std::vector<Span> spans;
    std::vector<std::uint32_t> children;
  };
  struct HopAgg {
    std::uint64_t requests = 0;
    double totalSeconds = 0;
    sim::Sample sampledTotals;
  };
  struct OpAgg {
    std::uint64_t requests = 0;
    sim::Accumulator e2eAll;
    sim::Sample e2eSampled;
    std::array<HopAgg, kNumHops> hops;
  };

  static constexpr std::uint32_t kNoParent = 0xffffffffu;
  // Children ids stored per aggregate are capped (the fan-in *count* stays
  // exact); retained sampled waterfalls are capped so a pathological rate
  // cannot balloon the export.
  static constexpr std::size_t kMaxChildrenStored = 1024;
  static constexpr std::size_t kMaxSampledKept = 4096;

  void aggregate(Request&& req);
  static void writeRequest(std::string& out, const Request& req,
                           const char* indent);
  static void writeHopTable(std::string& out, const OpAgg& agg,
                            const char* indent);

  std::uint32_t sampleEvery_;
  int tailN_;
  std::uint64_t minted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t sampledCount_ = 0;
  std::uint64_t unfinished_ = 0;
  std::uint64_t edges_ = 0;
  std::uint64_t sampledDropped_ = 0;
  bool closed_ = false;
  double horizon_ = 0;
  std::unordered_map<std::uint32_t, Request> open_;
  OpAgg global_;
  std::map<std::string, OpAgg> ops_;  // ordered: deterministic export
  sim::Sample fanIn_;                 // fan-in of every aggregate request
  std::vector<Request> sampled_;      // retained waterfalls, 1-in-N
  std::vector<Request> tail_;         // min-heap on e2e, the N slowest
};

inline void OpTraceContext::hop(Hop h, sim::SimTime start, sim::SimTime end,
                                sim::Bytes bytes) const {
  if (tracer != nullptr) tracer->recordHop(id, h, start, end, bytes);
}

inline void OpTraceContext::link(const OpTraceContext& child) const {
  if (tracer != nullptr && child.tracer == tracer)
    tracer->linkChild(id, child.id);
}

inline void OpTraceContext::complete(sim::SimTime end) const {
  if (tracer != nullptr) tracer->completeRequest(id, end);
}

/// The one sanctioned way to start a trace. srclint enforces that this is
/// only called from strategy-level code (src/obs, src/iolib, or an
/// explicitly allowed backend): everything below the strategy propagates an
/// existing context instead of minting a fresh one mid-path.
inline OpTraceContext mintOpTrace(OpTracer* tracer, int rank, const char* op,
                                  std::uint64_t offset, sim::Bytes bytes,
                                  sim::SimTime now) {
  if (tracer == nullptr) return {};
  return tracer->mint(rank, op, offset, bytes, now);
}

/// Sink adapter: consumes no TraceEvents (layerMask 0) but hooks the
/// Observability finalize/flush cycle to close out the tracer and write the
/// JSON artifact next to the other obs exports.
class OpTraceSink final : public TraceSink {
 public:
  explicit OpTraceSink(OpTracer& tracer) : tracer_(&tracer) {}

  void exportTo(std::string jsonPath);
  void event(const TraceEvent&) override {}
  unsigned layerMask() const override { return 0; }
  void finalize(sim::SimTime horizon) override;
  bool finalized() const { return finalized_; }

  const OpTracer& tracer() const { return *tracer_; }

 private:
  OpTracer* tracer_;
  std::string jsonPath_;
  bool finalized_ = false;
};

}  // namespace bgckpt::obs
