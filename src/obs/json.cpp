#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace bgckpt::obs::json {

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject || !object) return nullptr;
  for (const auto& [k, v] : *object)
    if (k == key) return &v;
  return nullptr;
}

double Value::numberOr(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v && v->type == Type::kNumber ? v->number : fallback;
}

std::string Value::stringOr(std::string_view key,
                            const std::string& fallback) const {
  const Value* v = find(key);
  return v && v->type == Type::kString ? v->string : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    std::optional<Value> v = parseValue();
    if (v) {
      skipWs();
      if (pos_ != text_.size()) {
        fail("trailing characters");
        v.reset();
      }
    }
    if (!v && error) *error = error_ + " at offset " + std::to_string(pos_);
    return v;
  }

 private:
  void fail(const char* what) {
    if (error_.empty()) error_ = what;
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Value> parseValue() {
    skipWs();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return parseString();
      case 't':
        if (literal("true")) return makeBool(true);
        fail("bad literal");
        return std::nullopt;
      case 'f':
        if (literal("false")) return makeBool(false);
        fail("bad literal");
        return std::nullopt;
      case 'n':
        if (literal("null")) return Value{};
        fail("bad literal");
        return std::nullopt;
      default: return parseNumber();
    }
  }

  static Value makeBool(bool b) {
    Value v;
    v.type = Value::Type::kBool;
    v.boolean = b;
    return v;
  }

  std::optional<Value> parseNumber() {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double d = std::strtod(begin, &end);
    if (end == begin) {
      fail("bad number");
      return std::nullopt;
    }
    pos_ += static_cast<std::size_t>(end - begin);
    Value v;
    v.type = Value::Type::kNumber;
    v.number = d;
    return v;
  }

  std::optional<Value> parseString() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    Value v;
    v.type = Value::Type::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string += '"'; break;
        case '\\': v.string += '\\'; break;
        case '/': v.string += '/'; break;
        case 'b': v.string += '\b'; break;
        case 'f': v.string += '\f'; break;
        case 'n': v.string += '\n'; break;
        case 'r': v.string += '\r'; break;
        case 't': v.string += '\t'; break;
        case 'u': {
          auto readHex4 = [this]() -> std::optional<unsigned> {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                cp |= static_cast<unsigned>(h - 'A' + 10);
              else
                return std::nullopt;
            }
            return cp;
          };
          const std::optional<unsigned> hi = readHex4();
          if (!hi) {
            fail("bad \\u escape");
            return std::nullopt;
          }
          unsigned cp = *hi;
          // Surrogate pair: a high surrogate followed by "\uDC00".."\uDFFF"
          // combines into one astral code point. A lone surrogate passes
          // through UTF-8-encoded as-is (lenient, like the BMP path always
          // was — we parse our own emitters, not adversarial input).
          if (cp >= 0xD800 && cp < 0xDC00 && pos_ + 2 <= text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            const std::size_t rewind = pos_;
            pos_ += 2;
            const std::optional<unsigned> lo = readHex4();
            if (lo && *lo >= 0xDC00 && *lo < 0xE000)
              cp = 0x10000 + ((cp - 0xD800) << 10) + (*lo - 0xDC00);
            else
              pos_ = rewind;  // not a low surrogate: leave it for the loop
          }
          if (cp < 0x80) {
            v.string += static_cast<char>(cp);
          } else if (cp < 0x800) {
            v.string += static_cast<char>(0xC0 | (cp >> 6));
            v.string += static_cast<char>(0x80 | (cp & 0x3F));
          } else if (cp < 0x10000) {
            v.string += static_cast<char>(0xE0 | (cp >> 12));
            v.string += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            v.string += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            v.string += static_cast<char>(0xF0 | (cp >> 18));
            v.string += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            v.string += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            v.string += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parseArray() {
    consume('[');
    Value v;
    v.type = Value::Type::kArray;
    v.array = std::make_shared<Array>();
    skipWs();
    if (consume(']')) return v;
    while (true) {
      std::optional<Value> elem = parseValue();
      if (!elem) return std::nullopt;
      v.array->push_back(std::move(*elem));
      if (consume(',')) continue;
      if (consume(']')) return v;
      fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  std::optional<Value> parseObject() {
    consume('{');
    Value v;
    v.type = Value::Type::kObject;
    v.object = std::make_shared<Object>();
    skipWs();
    if (consume('}')) return v;
    while (true) {
      std::optional<Value> key = parseString();
      if (!key) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      std::optional<Value> val = parseValue();
      if (!val) return std::nullopt;
      v.object->emplace_back(std::move(key->string), std::move(*val));
      if (consume(',')) {
        skipWs();
        continue;
      }
      if (consume('}')) return v;
      fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace bgckpt::obs::json
