// Sampled time-resolved telemetry: utilization timeseries for every layer.
//
// The trace/attribution/critpath stack answers "what happened and who
// waited", but not "what was the queue depth / token occupancy / per-server
// bandwidth at time t" — the lens the paper uses for the rbIO/coIO long
// tails (GPFS server imbalance, ION funneling, aggregation buffering).
// This module adds that lens without touching the event stream:
//
//   Probe       lightweight handle a layer publishes (gauge / counter /
//               rate, optionally per-instance: one series per file server,
//               pset, ...). Updates are a single branch on a cached `live`
//               flag until telemetry is attached, so instrumented layers
//               cost nothing in ordinary runs.
//   Telemetry   the registry (owned by Observability). Layers resolve
//               probes once at construction; `--telemetry` flips every
//               probe live and installs a sampling cadence driven by the
//               SchedulerProbe dispatch hook (never by injected events, so
//               figure output stays byte-identical).
//   TelemetrySink  TraceSink adaptor: integrates exact per-rank busy time
//               from the kApp checkpoint envelopes, closes all series at
//               finalize, computes per-series imbalance analytics, and
//               writes the JSON/CSV exports read by `trace_report
//               --timeline`.
//
// Sampling model: every series is a piecewise-constant level (counters and
// rates accumulate into a cumulative level). Updates integrate the level
// into fixed-width buckets of `dt` simulated seconds (min/mean/max/last
// per bucket); the scheduler-hook cadence closes buckets for idle series
// so a quiet resource still reports its level. Mid-run registration is
// legal: a series simply starts at its first bucket, and exports carry a
// `first` offset instead of leading zeros.
//
// Cross-check invariant: the per-rank busy seconds integrated here from
// the kApp envelope must agree with the AttributionSink's exclusive
// partition (horizon - compute) within one bucket width. Observability::
// finalize runs the check (SIM_CHECK) whenever both sinks are attached,
// tying the sampled view to the exact event view.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/attr.hpp"
#include "obs/trace.hpp"
#include "simcore/scheduler.hpp"

namespace bgckpt::obs {

class Telemetry;

// The `<artifact>.manifest.json` sidecar schema (kManifestSchemaVersion)
// moved to obs/runstore.hpp, which owns cross-run provenance.

enum class ProbeKind : int { kGauge = 0, kCounter = 1, kRate = 2 };
const char* probeKindName(ProbeKind k);

/// One named timeseries family, possibly multi-instance (instance = file
/// server index, pset index, ...). Obtain via Telemetry::probe(); pointers
/// are stable for the life of the registry.
class Probe {
 public:
  struct Bucket {
    double min = 0;       // lowest level seen while the bucket was open
    double max = 0;       // highest level
    double integral = 0;  // time integral of the level over the bucket
    double last = 0;      // level at bucket close (or now, if still open)
  };

  struct Series {
    double cur = 0;             // current level (cumulative for counters)
    sim::SimTime startT = 0;    // when sampling of this series began
    sim::SimTime lastT = 0;     // integration frontier
    std::int64_t firstBucket = 0;  // global index of buckets[0]
    std::int64_t bucket = 0;       // global index of the open bucket
    std::vector<Bucket> buckets;   // [firstBucket .. bucket]
  };

  // Hot path: a no-op branch until telemetry is attached.
  void set(double v) {
    if (live_) record(0, v, false);
  }
  void set(int instance, double v) {
    if (live_) record(instance, v, false);
  }
  void add(double dv) {
    if (live_) record(0, dv, true);
  }
  void add(int instance, double dv) {
    if (live_) record(instance, dv, true);
  }

  const std::string& name() const { return name_; }
  ProbeKind kind() const { return kind_; }
  int instances() const { return static_cast<int>(series_.size()); }
  bool live() const { return live_; }
  double current(int instance = 0) const { return series_[instance].cur; }
  const Series& seriesAt(int instance) const { return series_[instance]; }

  /// Mean level of one closed-or-open bucket (integral / covered width).
  static double bucketMean(const Series& s, std::size_t i, double dt);

 private:
  friend class Telemetry;
  Probe(Telemetry& owner, std::string name, ProbeKind kind, int instances);
  void record(int instance, double v, bool delta);
  void advance(Series& s, sim::SimTime t);
  void start(Series& s, sim::SimTime t);

  Telemetry& owner_;
  std::string name_;
  ProbeKind kind_;
  bool live_ = false;
  std::vector<Series> series_;
};

/// Probe registry + sampling cadence. Owned by Observability so layers can
/// resolve probes at construction time (before bench flags attach a sink).
class Telemetry {
 public:
  static constexpr double kDefaultDt = 0.25;  // seconds of simulated time
  static constexpr const char* kSchemaVersion = "bgckpt-telemetry-1";

  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Find-or-create. Kind and instance count must match on reuse
  /// (SIM_CHECK'd); the returned reference is stable.
  Probe& probe(const std::string& name, ProbeKind kind, int instances = 1);
  Probe* find(const std::string& name) const;
  const std::vector<std::unique_ptr<Probe>>& probes() const { return probes_; }

  /// Flip every probe (current and future) live and start bucketing at
  /// `sched.now()` with bucket width `dt` (<=0 picks kDefaultDt).
  void enable(const sim::Scheduler& sched, double dt);
  bool enabled() const { return enabled_; }
  double bucketDt() const { return dt_; }
  sim::SimTime now() const { return sched_ ? sched_->now() : 0.0; }

  /// Scheduler-dispatch hook: tracks the event-queue depth gauge and, on
  /// the sampling cadence, advances every series so idle resources still
  /// close their buckets.
  void tick(sim::SimTime nowT, std::size_t queueDepth);

  /// Integrate every series up to `horizon` (finalize path; idempotent for
  /// a fixed horizon).
  void closeOut(sim::SimTime horizon);
  sim::SimTime horizon() const { return horizon_; }

 private:
  friend class Probe;
  std::vector<std::unique_ptr<Probe>> probes_;  // registration order
  bool enabled_ = false;
  const sim::Scheduler* sched_ = nullptr;
  double dt_ = kDefaultDt;
  double nextSample_ = 0;
  sim::SimTime horizon_ = 0;
  Probe* queueDepth_ = nullptr;  // "sched.queue_depth", created at enable
};

/// Per-series load-imbalance analytics over the bucketized loads (gauge:
/// mean level per bucket; counter/rate: per-bucket delta).
struct ImbalanceStats {
  int instances = 0;
  double totalLoad = 0;
  double maxShare = 0;     // busiest instance's share of the total load
  double maxOverMean = 0;  // skew: busiest / mean (1.0 = perfectly even)
  double jain = 1.0;       // Jain's fairness index: (sum L)^2 / (n sum L^2)
  // Instance-seconds a member sat idle while some peer was active: the
  // "servers waiting on the stragglers" number behind the fig9/fig11 tails.
  double idleWhileBusySeconds = 0;
  int busiest = -1;
};

ImbalanceStats computeImbalance(
    const std::vector<double>& totals,
    const std::vector<std::vector<double>>& bucketLoad, double dt);

/// TraceSink adaptor: kApp envelope integration, finalize-time export, and
/// the attribution cross-check.
class TelemetrySink final : public TraceSink {
 public:
  explicit TelemetrySink(Telemetry& reg) : reg_(&reg) {}

  /// Request file export at finalize; empty path skips that format.
  void exportTo(std::string jsonPath, std::string csvPath);

  void event(const TraceEvent& ev) override;
  void finalize(sim::SimTime horizon) override;
  unsigned layerMask() const override { return layerBit(Layer::kApp); }

  bool finalized() const { return finalized_; }
  /// Exact per-rank checkpoint-envelope seconds (index = rank). Valid any
  /// time; closed against the horizon after finalize().
  const std::vector<double>& rankBusySeconds() const { return busy_; }
  bool sawEnvelopes() const { return sawEnvelopes_; }

  /// Per-series bucket "load" rows as exported (gauge: mean; counter/rate:
  /// delta), aligned to global bucket 0. Valid after finalize().
  std::vector<std::vector<double>> loadMatrix(const Probe& p) const;

  std::string toJson() const;  // valid after finalize()
  std::string toCsv() const;

  /// SIM_CHECK that every rank's sampled busy time matches the exclusive
  /// attribution partition within one bucket width.
  void crossCheckAttribution(const AttributionEngine::Report& report) const;

 private:
  Telemetry* reg_;
  std::string jsonPath_;
  std::string csvPath_;
  std::vector<double> busy_;
  std::vector<sim::SimTime> open_;  // open envelope start per rank, or -1
  Probe* activeRanks_ = nullptr;    // "app.active_ranks" gauge
  bool sawEnvelopes_ = false;
  bool finalized_ = false;
  sim::SimTime horizon_ = 0;
};

}  // namespace bgckpt::obs
