#include "obs/runstore.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/optrace.hpp"
#include "obs/runtimeprof.hpp"
#include "obs/telemetry.hpp"

namespace bgckpt::obs {

namespace {

namespace fs = std::filesystem;

void escapeInto(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

void canonicalInto(std::string& out, const json::Value& v) {
  using Type = json::Value::Type;
  switch (v.type) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += v.boolean ? "true" : "false";
      break;
    case Type::kNumber: {
      // Integral values print as integers so 256 and 256.0 hash alike;
      // %.12g keeps enough digits for any measurement this repo stores
      // while staying locale-independent.
      const double n = v.number;
      if (std::isfinite(n) && n == std::floor(n) && std::abs(n) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(n));
        out += buf;
      } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", n);
        out += buf;
      }
      break;
    }
    case Type::kString:
      out.push_back('"');
      escapeInto(out, v.string);
      out.push_back('"');
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      if (v.array)
        for (const json::Value& e : *v.array) {
          if (!first) out.push_back(',');
          first = false;
          canonicalInto(out, e);
        }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      // Sort members by key; duplicate keys keep their relative order
      // (stable sort) so canonicalization is total, not partial.
      std::vector<const std::pair<std::string, json::Value>*> members;
      if (v.object)
        for (const auto& kv : *v.object) members.push_back(&kv);
      std::stable_sort(members.begin(), members.end(),
                       [](const auto* a, const auto* b) {
                         return a->first < b->first;
                       });
      out.push_back('{');
      bool first = true;
      for (const auto* kv : members) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('"');
        escapeInto(out, kv->first);
        out += "\":";
        canonicalInto(out, kv->second);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

bool manifestSchemaSupported(std::string_view version) {
  return version == kManifestSchemaVersion || version == kManifestSchemaV1;
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex16(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return buf;
}

std::string canonicalJson(const json::Value& value) {
  std::string out;
  canonicalInto(out, value);
  return out;
}

std::string artifactSchemasFingerprint() {
  std::string fp = kManifestSchemaVersion;
  fp += ',';
  fp += Telemetry::kSchemaVersion;
  fp += ',';
  fp += OpTracer::kSchemaVersion;
  fp += ',';
  fp += kRuntimeProfSchemaVersion;
  fp += ',';
  fp += kLedgerSchemaVersion;
  return fp;
}

std::string ledgerKey(const json::Value& config, const std::string& gitRev,
                      const std::string& schemas) {
  std::string material = canonicalJson(config);
  material += '\n';
  material += gitRev;
  material += '\n';
  material += schemas;
  return hex16(fnv1a64(material));
}

std::string LedgerEntry::derivedKey() const {
  return ledgerKey(config, gitRev, schemas);
}

std::string RunStore::entryPath(const std::string& key) const {
  return dir_ + "/" + key + ".json";
}

bool RunStore::contains(const std::string& key) const {
  LedgerEntry entry;
  std::string err;
  return load(key, &entry, &err);
}

bool RunStore::put(const LedgerEntry& entry, std::string* err) const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    if (err) *err = "cannot create " + dir_ + ": " + ec.message();
    return false;
  }
  const std::string path = entryPath(entry.key);
  std::ofstream out(path);
  if (!out) {
    if (err) *err = "cannot write " + path;
    return false;
  }
  const std::string perfText = canonicalJson(entry.perf);
  std::string configText = canonicalJson(entry.config);
  out << "{\n";
  out << "  \"schema\": \"" << kLedgerSchemaVersion << "\",\n";
  out << "  \"key\": \"" << entry.key << "\",\n";
  out << "  \"config_hash\": \"" << entry.configHash << "\",\n";
  std::string rev;
  escapeInto(rev, entry.gitRev);
  out << "  \"git_rev\": \"" << rev << "\",\n";
  out << "  \"schemas\": \"" << entry.schemas << "\",\n";
  out << "  \"config\": " << configText << ",\n";
  out << "  \"exit_code\": " << entry.exitCode << ",\n";
  char wall[40];
  std::snprintf(wall, sizeof(wall), "%.6f", entry.wallSeconds);
  out << "  \"wall_seconds\": " << wall << ",\n";
  out << "  \"payload_hash\": \"" << hex16(fnv1a64(perfText)) << "\",\n";
  out << "  \"perf\": " << perfText << "\n";
  out << "}\n";
  out.flush();
  if (!out) {
    if (err) *err = "write failed: " + path;
    return false;
  }
  return true;
}

bool RunStore::load(const std::string& key, LedgerEntry* out,
                    std::string* err) const {
  const std::string path = entryPath(key);
  std::ifstream in(path);
  if (!in) {
    if (err) *err = "no entry " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string parseErr;
  const auto doc = json::parse(ss.str(), &parseErr);
  if (!doc || !doc->isObject()) {
    if (err)
      *err = path + ": " +
             (parseErr.empty() ? "not a JSON object" : parseErr);
    return false;
  }
  const std::string schema = doc->stringOr("schema", "(none)");
  if (schema != kLedgerSchemaVersion) {
    if (err)
      *err = path + ": ledger schema \"" + schema +
             "\" not supported (this build reads \"" + kLedgerSchemaVersion +
             "\")";
    return false;
  }
  LedgerEntry e;
  e.key = doc->stringOr("key", "");
  e.configHash = doc->stringOr("config_hash", "");
  e.gitRev = doc->stringOr("git_rev", "");
  e.schemas = doc->stringOr("schemas", "");
  e.exitCode = static_cast<int>(doc->numberOr("exit_code", 0));
  e.wallSeconds = doc->numberOr("wall_seconds", 0);
  if (const json::Value* cfg = doc->find("config")) e.config = *cfg;
  if (const json::Value* perf = doc->find("perf")) e.perf = *perf;
  // Integrity: the filename key, the stored key, and the key re-derived
  // from the stored identity fields must all agree (an entry whose config
  // or provenance was edited reads as corrupt, not as a cache hit) ...
  if (e.key != key || e.derivedKey() != key) {
    if (err) *err = path + ": key mismatch (corrupt or tampered entry)";
    return false;
  }
  // ... and the perf payload must hash to the recorded value.
  const std::string payloadHash = doc->stringOr("payload_hash", "");
  if (payloadHash != hex16(fnv1a64(canonicalJson(e.perf)))) {
    if (err) *err = path + ": payload hash mismatch (corrupt entry)";
    return false;
  }
  if (e.configHash != hex16(fnv1a64(canonicalJson(e.config)))) {
    if (err) *err = path + ": config hash mismatch (corrupt entry)";
    return false;
  }
  *out = std::move(e);
  return true;
}

std::vector<LedgerEntry> RunStore::loadAll(
    std::vector<std::string>* errors) const {
  std::vector<LedgerEntry> entries;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) {
    if (errors) errors->push_back("cannot read " + dir_ + ": " + ec.message());
    return entries;
  }
  std::vector<std::string> keys;
  for (const auto& de : it) {
    if (!de.is_regular_file()) continue;
    const std::string name = de.path().filename().string();
    if (name.size() <= 5 || name.compare(name.size() - 5, 5, ".json") != 0)
      continue;
    keys.push_back(name.substr(0, name.size() - 5));
  }
  std::sort(keys.begin(), keys.end());
  for (const std::string& key : keys) {
    LedgerEntry e;
    std::string err;
    if (load(key, &e, &err)) {
      entries.push_back(std::move(e));
    } else if (errors) {
      errors->push_back(err);
    }
  }
  return entries;
}

bool writeArtifactManifest(const std::string& artifactPath,
                           const ManifestInfo& info) {
  const std::string path = artifactPath + ".manifest.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const auto str = [](const std::string& s) {
    std::string out;
    escapeInto(out, s);
    return out;
  };
  std::fprintf(f, "{\n  \"schema_version\": \"%s\",\n",
               kManifestSchemaVersion);
  std::fprintf(f, "  \"artifact\": \"%s\",\n", str(info.artifact).c_str());
  std::fprintf(f, "  \"bench\": \"%s\",\n", str(info.bench).c_str());
  std::fprintf(f, "  \"git_rev\": \"%s\",\n", str(info.gitRev).c_str());
  std::fprintf(f, "  \"config_hash\": \"%s\",\n",
               str(info.configHash).c_str());
  std::fprintf(f, "  \"np\": %d,\n", info.np);
  std::fprintf(f, "  \"stack\": %d,\n", info.stack);
  std::fprintf(f, "  \"bucket_dt\": %.6g,\n", info.bucketDt);
  std::fprintf(f, "  \"flags\": [");
  for (std::size_t i = 0; i < info.flags.size(); ++i)
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 str(info.flags[i]).c_str());
  std::fprintf(f, "],\n  \"args\": [");
  for (std::size_t i = 0; i < info.args.size(); ++i)
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 str(info.args[i]).c_str());
  std::fprintf(f, "]\n}\n");
  return std::fclose(f) == 0;
}

}  // namespace bgckpt::obs
