#include "obs/flightrec.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "obs/attr.hpp"

namespace bgckpt::obs {

namespace {

// Registration happens from bench prefetch workers concurrently; the lock
// covers every registry access (each recorder itself stays single-stack).
std::mutex& registryMu() {
  static std::mutex mu;
  return mu;
}

std::vector<std::weak_ptr<FlightRecorder>>& registry() {
  static std::vector<std::weak_ptr<FlightRecorder>> recs;
  return recs;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t perLayer)
    : perLayer_(perLayer == 0 ? 1 : perLayer) {
  for (auto& ring : rings_) ring.reserve(perLayer_);
}

std::shared_ptr<FlightRecorder> FlightRecorder::create(std::size_t perLayer) {
  auto rec = std::make_shared<FlightRecorder>(perLayer);
  registerFlightRecorder(rec);
  return rec;
}

void FlightRecorder::event(const TraceEvent& ev) {
  const auto layer = static_cast<std::size_t>(ev.layer);
  if (layer >= rings_.size()) return;
  std::vector<Rec>& ring = rings_[layer];
  const Rec rec{ev, eventsSeen_++};
  if (ring.size() < perLayer_) {
    ring.push_back(rec);
    return;
  }
  std::size_t& slot = next_[layer];
  ring[slot] = rec;
  slot = (slot + 1) % perLayer_;
}

void FlightRecorder::dump(std::ostream& os) const {
  char buf[256];
  std::uint64_t retained = 0;
  for (const auto& ring : rings_) retained += ring.size();
  std::snprintf(buf, sizeof(buf),
                "--- flight recorder: %llu events seen, last %llu retained "
                "(<= %zu per layer) ---\n",
                static_cast<unsigned long long>(eventsSeen_),
                static_cast<unsigned long long>(retained), perLayer_);
  os << buf;
  for (std::size_t layer = 0; layer < rings_.size(); ++layer) {
    const std::vector<Rec>& ring = rings_[layer];
    if (ring.empty()) continue;
    // Restore arrival order: the ring overwrites oldest-first from next_.
    std::vector<const Rec*> ordered;
    ordered.reserve(ring.size());
    for (const Rec& r : ring) ordered.push_back(&r);
    std::sort(ordered.begin(), ordered.end(),
              [](const Rec* a, const Rec* b) { return a->arrival < b->arrival; });
    os << "[" << layerName(static_cast<Layer>(layer)) << "]\n";
    for (const Rec* r : ordered) {
      const TraceEvent& ev = r->ev;
      std::snprintf(buf, sizeof(buf), "  t=%-12.6f %c tid=%-6d %-12s", ev.ts,
                    ev.phase, ev.tid, ev.name);
      os << buf;
      if (ev.phase == 'X') {
        std::snprintf(buf, sizeof(buf), " dur=%.6f", ev.dur);
        os << buf;
      }
      if (ev.hasBytes) {
        std::snprintf(buf, sizeof(buf), " bytes=%llu",
                      static_cast<unsigned long long>(ev.bytes));
        os << buf;
      }
      if (ev.src >= 0) {
        std::snprintf(buf, sizeof(buf), " %d->%d", ev.src, ev.dst);
        os << buf;
      }
      if (ev.hasValue) {
        std::snprintf(buf, sizeof(buf), " value=%g", ev.value);
        os << buf;
      }
      Phase phase;
      int depth;
      if (AttributionEngine::classify(ev, &phase, &depth)) {
        os << " phase=" << phaseName(phase);
      }
      os << "\n";
    }
  }
}

void registerFlightRecorder(const std::shared_ptr<FlightRecorder>& rec) {
  if (!rec) return;
  std::lock_guard<std::mutex> lock(registryMu());
  registry().push_back(rec);
}

std::size_t dumpFlightRecorders(std::ostream& os) {
  std::vector<std::shared_ptr<FlightRecorder>> live;
  {
    std::lock_guard<std::mutex> lock(registryMu());
    auto& recs = registry();
    std::erase_if(recs, [](const std::weak_ptr<FlightRecorder>& w) {
      return w.expired();
    });
    for (const auto& w : recs)
      if (auto rec = w.lock()) live.push_back(std::move(rec));
  }
  for (const auto& rec : live) rec->dump(os);
  return live.size();
}

}  // namespace bgckpt::obs
