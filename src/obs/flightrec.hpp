// Crash flight recorder: a bounded ring of the most recent trace events.
//
// Always cheap — event() copies one TraceEvent into a preallocated ring
// (names are string literals, so the copy is shallow and safe) and never
// allocates after construction. The payoff comes when something goes wrong:
// a SimChecker violation (SimStack wires this into the checker's report
// path) or a failed bench SHAPE CHECK (bench/common) dumps the last N
// events per layer, classified by the attribution engine, so the report
// shows *what the simulation was doing* right before the invariant broke —
// without the cost or disk traffic of full tracing at 16K ranks.
//
// Recorders register in a process-global registry (weak, auto-pruned) so
// failure paths can dump every live stack's recorder without plumbing a
// pointer through each layer. Single-threaded by design, like the
// simulator itself.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "obs/trace.hpp"

namespace bgckpt::obs {

class FlightRecorder final : public TraceSink {
 public:
  static constexpr std::size_t kDefaultEvents = 256;

  /// `perLayer` = ring capacity for each layer (total memory is
  /// kNumLayers * perLayer * sizeof(TraceEvent), ~128 KiB at the default).
  explicit FlightRecorder(std::size_t perLayer = kDefaultEvents);

  /// Construct and add to the global registry in one step.
  static std::shared_ptr<FlightRecorder> create(
      std::size_t perLayer = kDefaultEvents);

  void event(const TraceEvent& ev) override;
  unsigned layerMask() const override { return kAllLayers; }

  /// Pretty-print the retained events, oldest first per layer, each line
  /// tagged with its attribution phase when the classifier recognises it.
  void dump(std::ostream& os) const;

  std::uint64_t eventsSeen() const { return eventsSeen_; }
  std::size_t capacityPerLayer() const { return perLayer_; }

 private:
  struct Rec {
    TraceEvent ev;
    std::uint64_t arrival = 0;  // global order across layers
  };
  std::size_t perLayer_;
  std::uint64_t eventsSeen_ = 0;
  std::array<std::vector<Rec>, static_cast<std::size_t>(kNumLayers)> rings_;
  std::array<std::size_t, static_cast<std::size_t>(kNumLayers)> next_{};
};

/// Add a recorder to the process-global registry (weak reference; expired
/// entries are pruned on the next dump).
void registerFlightRecorder(const std::shared_ptr<FlightRecorder>& rec);

/// Dump every live registered recorder to `os`; returns how many were
/// dumped. Safe to call with none registered (prints nothing).
std::size_t dumpFlightRecorders(std::ostream& os);

}  // namespace bgckpt::obs
