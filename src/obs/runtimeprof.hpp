// Runtime execution profiler: wall-clock observability for the parallel
// engine (ShardGroup windows and sim::parallelFor regions).
//
// Every other obs layer records *simulated* time. This one records *real*
// time — where a threaded run actually spends its wall clock: which shard
// is critical per window, how much of each worker's wall is barrier wait
// vs drain vs execute, whether mailboxes spill, and which parallelFor job
// (i.e. which fig5 point) pins the region's makespan. It implements the
// sim::RuntimeObserver seam from simcore/shard.hpp; simcore itself never
// reads a clock, so determinism and figure stdout are untouched — the
// profiler observes the execution, it never schedules events.
//
// Deliberately process-global rather than hung off the per-stack
// Observability hub: real time cuts across stacks (one worker thread
// interleaves many simulations under prefetchSims), so there is exactly
// one profiler per process, installed with install() and exported with
// writeJson()/writeChromeTrace(). bench/common wires it to
// --runtime-profile[=FILE].
//
// Memory is bounded by construction: per-shard / per-worker accumulators
// (cache-line-slotted, each written only by its owning thread), fixed
// 64-bucket log2 histograms, capped run and span counts. Windows are
// *not* stored individually.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "simcore/shard.hpp"

namespace bgckpt::obs {

/// JSON schema tag for the exported profile.
inline constexpr const char* kRuntimeProfSchemaVersion = "bgckpt-runtimeprof-1";

/// Fixed log2 histogram: bucket 0 holds x <= 0, bucket i (1..63) holds
/// ratios in [2^(i-32), 2^(i-31)). Bucket 32 is therefore "about 1x".
struct LogHistogram {
  static constexpr int kBuckets = 64;
  std::uint64_t counts[kBuckets] = {};
  void add(double ratio) noexcept;
  std::uint64_t total() const noexcept;
};

/// One recorded ShardGroup::run.
struct ShardRunProfile {
  unsigned shards = 0;
  unsigned threads = 0;
  double lookahead = 0.0;
  std::uint64_t wallNs = 0;  ///< beginShardRun -> finished

  struct ShardSlot {
    std::uint64_t setupNs = 0;
    std::uint64_t drainNs = 0;
    std::uint64_t execNs = 0;
    std::uint64_t events = 0;     ///< events run (from exec phase ends)
    std::uint64_t delivered = 0;  ///< mailbox arrivals injected
    std::uint64_t criticalWindows = 0;  ///< windows where this shard set minNext
  };
  struct WorkerSlot {
    std::uint64_t barrierNs = 0;
  };

  std::vector<ShardSlot> perShard;
  std::vector<WorkerSlot> perWorker;
  std::uint64_t reduceNs = 0;
  std::uint64_t windows = 0;

  /// Simulated-time shape of the run (deterministic): window advance and
  /// per-shard slack, both in units of the lookahead; plus events per
  /// window.
  LogHistogram advanceHist;
  LogHistogram slackHist;
  LogHistogram eventsHist;

  /// Aggregate Stats from the group (per-pair channel pressure included).
  sim::ShardGroup::Stats stats;

  /// Real-time phase spans for the Chrome trace (collected only when
  /// Config::maxSpansPerRun > 0; capped, drops counted). Timestamps are
  /// nanoseconds since profiler construction.
  struct PhaseSpan {
    sim::WindowPhase phase{};
    unsigned idx = 0;     ///< shard (setup/drain/exec) or worker (barrier)
    unsigned worker = 0;  ///< worker thread the span ran on
    std::uint64_t beginNs = 0;
    std::uint64_t endNs = 0;
  };
  std::vector<PhaseSpan> spans;
  std::uint64_t droppedSpans = 0;
};

/// One recorded parallelFor region.
struct ParallelRegionProfile {
  std::uint64_t id = 0;
  std::size_t jobs = 0;
  unsigned threads = 0;
  std::uint64_t wallNs = 0;
  struct Job {
    std::uint64_t ns = 0;
    unsigned worker = 0;
    std::string label;  ///< point label when the caller provided one
  };
  std::vector<Job> perJob;
};

/// A labelled measurement fed from bench perfRecord (one per figure
/// point), so serial runs — which never enter parallelFor — still produce
/// a per-point wall table for trace_report --runtime --diff.
struct PointRecord {
  std::string label;
  double wallSeconds = 0.0;
  std::uint64_t events = 0;
  unsigned threads = 0;
};

class RuntimeProfiler final : public sim::RuntimeObserver {
 public:
  struct Config {
    /// Keep at most this many ShardGroup runs (benchmark loops can start
    /// thousands); later runs are counted in droppedRuns, not stored.
    std::size_t maxShardRuns = 256;
    /// Keep at most this many parallelFor regions.
    std::size_t maxRegions = 256;
    /// Cap on Chrome-trace phase spans per shard run (0 = don't collect).
    std::size_t maxSpansPerRun = 0;
  };

  RuntimeProfiler() : RuntimeProfiler(Config{}) {}
  explicit RuntimeProfiler(const Config& config);
  ~RuntimeProfiler() override;

  RuntimeProfiler(const RuntimeProfiler&) = delete;
  RuntimeProfiler& operator=(const RuntimeProfiler&) = delete;

  /// Install as the process-wide sim::RuntimeObserver / remove again.
  /// uninstall() only clears the hook if this profiler still owns it.
  void install();
  void uninstall();

  /// Labels for the jobs of the *next* parallelFor region (job i gets
  /// labels[i]) — bench/common calls this right before prefetchSims fans
  /// out, so the region's job table names figure points, not indices.
  void setPointLabels(std::vector<std::string> labels);

  /// Record one figure point (called from bench perfRecord).
  void recordPoint(const std::string& label, double wallSeconds,
                   std::uint64_t events, unsigned threads);

  // sim::RuntimeObserver ----------------------------------------------------
  sim::ShardRunObserver* beginShardRun(const sim::ShardRunInfo& info)
      noexcept override;
  void parallelForBegin(std::uint64_t id, std::size_t jobs,
                        unsigned threads) noexcept override;
  void jobBegin(std::uint64_t id, std::size_t job,
                unsigned worker) noexcept override;
  void jobEnd(std::uint64_t id, std::size_t job,
              unsigned worker) noexcept override;
  void parallelForEnd(std::uint64_t id) noexcept override;

  /// Export the profile as JSON (schema bgckpt-runtimeprof-1). Returns
  /// false on I/O failure.
  bool writeJson(const std::string& path) const;
  /// Export real-time worker spans as a Chrome trace (chrome://tracing,
  /// "displayTimeUnit": "ms"; tid = worker thread, spans = window phases).
  /// Only has content when Config::maxSpansPerRun > 0.
  bool writeChromeTrace(const std::string& path) const;

  // Introspection for tests and reports.
  const std::vector<std::unique_ptr<ShardRunProfile>>& shardRuns() const {
    return runs_;
  }
  const std::vector<std::unique_ptr<ParallelRegionProfile>>& regions() const {
    return regions_;
  }
  const std::vector<PointRecord>& points() const { return points_; }
  std::uint64_t droppedRuns() const { return droppedRuns_; }

 private:
  class RunRecorder;
  struct RegionState;

  Config config_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<RunRecorder>> recorders_;
  std::vector<std::unique_ptr<ShardRunProfile>> runs_;
  std::vector<std::unique_ptr<ParallelRegionProfile>> regions_;
  std::vector<std::unique_ptr<RegionState>> liveRegions_;
  std::vector<PointRecord> points_;
  std::vector<std::string> pendingLabels_;
  std::uint64_t droppedRuns_ = 0;
  std::uint64_t droppedRegions_ = 0;
  bool installed_ = false;
};

}  // namespace bgckpt::obs
