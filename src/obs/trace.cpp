#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace bgckpt::obs {

const char* layerName(Layer layer) {
  switch (layer) {
    case Layer::kScheduler: return "scheduler";
    case Layer::kNetwork: return "network";
    case Layer::kStorage: return "storage";
    case Layer::kFilesystem: return "filesystem";
    case Layer::kMpi: return "mpi";
    case Layer::kIo: return "io";
    case Layer::kApp: return "app";
  }
  return "?";
}

ChromeTraceSink::ChromeTraceSink(std::ostream& chrome, std::ostream* jsonl)
    : chrome_(&chrome), jsonl_(jsonl) {
  *chrome_ << "[\n";
}

ChromeTraceSink::ChromeTraceSink(std::unique_ptr<std::ostream> chrome,
                                 std::unique_ptr<std::ostream> jsonl)
    : ownedChrome_(std::move(chrome)),
      ownedJsonl_(std::move(jsonl)),
      chrome_(ownedChrome_.get()),
      jsonl_(ownedJsonl_.get()) {
  *chrome_ << "[\n";
}

std::unique_ptr<ChromeTraceSink> ChromeTraceSink::toFiles(
    const std::string& chromePath, const std::string& jsonlPath) {
  auto chrome = std::make_unique<std::ofstream>(chromePath);
  if (!*chrome)
    throw std::runtime_error("ChromeTraceSink: cannot open " + chromePath);
  std::unique_ptr<std::ofstream> jsonl;
  if (!jsonlPath.empty()) {
    jsonl = std::make_unique<std::ofstream>(jsonlPath);
    if (!*jsonl)
      throw std::runtime_error("ChromeTraceSink: cannot open " + jsonlPath);
  }
  return std::unique_ptr<ChromeTraceSink>(
      new ChromeTraceSink(std::move(chrome), std::move(jsonl)));
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  *chrome_ << "\n]\n";
  chrome_->flush();
  if (jsonl_) jsonl_->flush();
}

void ChromeTraceSink::flush() {
  chrome_->flush();
  if (jsonl_) jsonl_->flush();
}

void ChromeTraceSink::writeSeparator() {
  if (anyWritten_) *chrome_ << ",\n";
  anyWritten_ = true;
}

void ChromeTraceSink::ensureMetadata(Layer layer, int tid) {
  const auto pid = static_cast<unsigned>(layer);
  char buf[160];
  if (!(layersSeen_ & layerBit(layer))) {
    layersSeen_ |= layerBit(layer);
    writeSeparator();
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                  pid, layerName(layer));
    *chrome_ << buf;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(pid) << 32) | static_cast<std::uint32_t>(tid);
  if (threadsSeen_.insert(key).second) {
    writeSeparator();
    const char* role = layer == Layer::kScheduler ? "root" : "rank";
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s %d\"}}",
                  pid, tid, role, tid);
    *chrome_ << buf;
  }
}

void ChromeTraceSink::writeChrome(const TraceEvent& ev) {
  ensureMetadata(ev.layer, ev.tid);
  writeSeparator();
  char buf[384];
  int n = std::snprintf(
      buf, sizeof(buf),
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":%d,"
      "\"tid\":%d,\"ts\":%.3f",
      ev.name, layerName(ev.layer), ev.phase, static_cast<int>(ev.layer),
      ev.tid, ev.ts * 1e6);
  if (ev.phase == 'X')
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       ",\"dur\":%.3f", ev.dur * 1e6);
  // Args block: only what the event actually carries.
  if (ev.hasBytes || ev.src >= 0 || ev.hasValue) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       ",\"args\":{");
    bool first = true;
    if (ev.hasBytes) {
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                         "\"bytes\":%" PRIu64, ev.bytes);
      first = false;
    }
    if (ev.src >= 0) {
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                         "%s\"src\":%d,\"dst\":%d", first ? "" : ",", ev.src,
                         ev.dst);
      first = false;
    }
    if (ev.hasValue)
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                         "%s\"value\":%.9g", first ? "" : ",", ev.value);
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       "}");
  }
  std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n), "}");
  *chrome_ << buf;
}

void ChromeTraceSink::writeJsonl(const TraceEvent& ev) {
  char buf[384];
  int n = std::snprintf(
      buf, sizeof(buf),
      "{\"ph\":\"%c\",\"cat\":\"%s\",\"name\":\"%s\",\"tid\":%d,"
      "\"ts\":%.9f,\"dur\":%.9f",
      ev.phase, layerName(ev.layer), ev.name, ev.tid, ev.ts, ev.dur);
  if (ev.hasBytes)
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       ",\"bytes\":%" PRIu64, ev.bytes);
  if (ev.src >= 0)
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       ",\"src\":%d,\"dst\":%d", ev.src, ev.dst);
  if (ev.hasValue)
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       ",\"value\":%.9g", ev.value);
  std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n), "}");
  *jsonl_ << buf << '\n';
}

void ChromeTraceSink::event(const TraceEvent& ev) {
  if (closed_) return;
  ++eventsWritten_;
  writeChrome(ev);
  if (jsonl_) writeJsonl(ev);
}

}  // namespace bgckpt::obs
