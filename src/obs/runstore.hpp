// Content-addressed run ledger: the cross-run observability substrate.
//
// Every other obs layer (attr, telemetry, optrace, runtimeprof) sees one
// run. The ledger sees campaigns: tools/sweep executes a declarative config
// sweep and files each run under a content-addressed key, and
// `trace_report --campaign` rolls the stored perf records up into
// strategy-comparison and regression views. The key is
//
//   key = fnv1a64( canonicalJson(config) "\n" git_rev "\n" schemas )
//
// where `config` is the run's identity (bench basename, user args,
// repetition ordinal), `git_rev` pins the code that produced it, and
// `schemas` is the fingerprint of every artifact schema version this build
// writes. Re-running an unchanged config is a cache hit; a new git rev or
// a schema bump changes the key and naturally invalidates. `config_hash`
// (the config-only fnv) is the cross-rev identity used by
// `--campaign --diff` to line the same config up across two ledgers.
//
// This header also owns the `<artifact>.manifest.json` sidecar contract.
// PR 10 bumps it to bgckpt-manifest-2, which adds `git_rev` and
// `config_hash` so every artifact in the repo is ledger-addressable;
// readers keep accepting v1 (manifestSchemaSupported). All manifest
// writing goes through writeArtifactManifest — srclint's "manifest-stamp"
// rule holds src/ and bench/ to that.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace bgckpt::obs {

/// Schema tag written into every `<artifact>.manifest.json` sidecar.
/// Version 2 adds "git_rev" and "config_hash" (the ledger address of the
/// producing run); tools keep reading version 1 sidecars, which simply
/// lack the provenance fields.
inline constexpr const char* kManifestSchemaVersion = "bgckpt-manifest-2";
inline constexpr const char* kManifestSchemaV1 = "bgckpt-manifest-1";

/// True for every manifest schema version this build can read.
bool manifestSchemaSupported(std::string_view version);

/// Schema tag of one ledger entry file (RunStore::put output).
inline constexpr const char* kLedgerSchemaVersion = "bgckpt-ledger-1";

/// Schema tag of a tools/sweep spec document.
inline constexpr const char* kSweepSchemaVersion = "bgckpt-sweep-1";

/// FNV-1a, 64-bit: the repo-wide content hash (stable, dependency-free,
/// good enough for addressing a few thousand configs, not for security).
std::uint64_t fnv1a64(std::string_view data);

/// 16-digit lowercase hex of a 64-bit hash: the ledger key format.
std::string hex16(std::uint64_t value);

/// Serialize a parsed JSON value canonically: object keys sorted
/// recursively, no whitespace, integral numbers as integers and the rest
/// as %.12g. Two spec files that differ only in key order or formatting
/// canonicalize — and therefore hash — identically.
std::string canonicalJson(const json::Value& value);

/// Comma-joined schema versions of every artifact this build writes
/// (manifest, telemetry, optrace, runtimeprof, ledger). Part of the ledger
/// key: bumping any schema invalidates cached runs that embed it.
std::string artifactSchemasFingerprint();

/// One stored run: the unit tools/sweep writes and --campaign reads.
struct LedgerEntry {
  std::string key;         // hex16 content address (file is <key>.json)
  std::string configHash;  // hex16 over the canonical config alone
  std::string gitRev;      // revision that produced the run
  std::string schemas;     // artifactSchemasFingerprint() at store time
  json::Value config;      // {"bench": ..., "args": [...], "rep": N}
  json::Value perf;        // the bench's --perf-json document, verbatim
  int exitCode = 0;
  double wallSeconds = 0;  // driver-observed wall time of the child

  /// Recompute this entry's content address from its own stored fields.
  std::string derivedKey() const;
};

/// Derive the ledger key for a config about to run under this build.
std::string ledgerKey(const json::Value& config, const std::string& gitRev,
                      const std::string& schemas);

/// A directory of `<key>.json` ledger entries. No index file: the key IS
/// the filename, so concurrent writers never contend and a partial write
/// is rejected by the integrity check on load instead of corrupting a
/// shared structure.
class RunStore {
 public:
  explicit RunStore(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }
  std::string entryPath(const std::string& key) const;

  /// True when an intact entry for `key` exists (the cache-hit probe:
  /// corrupt or tampered entries read as missing so they are re-run).
  bool contains(const std::string& key) const;

  /// Write one entry (creating the directory on first use). Returns false
  /// with a message in `err` on I/O failure.
  bool put(const LedgerEntry& entry, std::string* err) const;

  /// Load one entry and verify it: ledger schema, key == derivedKey()
  /// (config/rev/schemas tamper check), and payload hash (perf tamper
  /// check). Returns false with a message in `err` on any mismatch.
  bool load(const std::string& key, LedgerEntry* out, std::string* err) const;

  /// Load every intact `*.json` entry in the directory, sorted by key.
  /// Unreadable or corrupt entries are reported into `errors` and skipped.
  std::vector<LedgerEntry> loadAll(std::vector<std::string>* errors) const;

 private:
  std::string dir_;
};

/// Everything a manifest sidecar records about the run that produced an
/// artifact. `gitRev`/`configHash` are the v2 provenance fields: benches
/// inherit them from the sweep driver via BGCKPT_GIT_REV /
/// BGCKPT_CONFIG_HASH, or self-derive (see bench/common).
struct ManifestInfo {
  std::string artifact;  // "trace", "telemetry", "optrace", ...
  std::string bench;
  int np = 0;
  int stack = 0;
  double bucketDt = 0;
  std::vector<std::string> flags;
  std::vector<std::string> args;
  std::string gitRev;
  std::string configHash;
};

/// Write `<artifactPath>.manifest.json` (schema bgckpt-manifest-2). The
/// single sanctioned manifest-writing site: srclint's "manifest-stamp"
/// rule flags any other src/ or bench/ code touching manifest sidecars.
/// Returns false when the file cannot be written.
bool writeArtifactManifest(const std::string& artifactPath,
                           const ManifestInfo& info);

}  // namespace bgckpt::obs
