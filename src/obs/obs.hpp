// Observability hub: one per simulated stack.
//
// Owns the MetricsRegistry and a set of TraceSinks, and caches the OR of
// the sinks' layer masks so producers can guard emission with a single
// bit test: `if (obs && obs->tracing(Layer::kFilesystem)) ...`. Every
// instrumented layer (scheduler, torus/ION, storage fabric, filesystem,
// MPI runtime, checkpoint strategies) takes an optional `Observability*`
// and is exactly as fast as before when handed nullptr.
//
// iolib::SimStack always attaches prof::IoProfileSink (profiling/profile.hpp)
// so the legacy IoProfile keeps filling from the same event stream; a
// ChromeTraceSink is attached only when the user asks for a trace file.
#pragma once

#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simcore/scheduler.hpp"

namespace bgckpt::obs {

class Observability;
class CritPathRecorder;
class Telemetry;
class TelemetrySink;
class OpTracer;
class OpTraceSink;

/// sim::SchedulerHooks implementation: counts dispatched events, tracks the
/// event-queue high-water mark, and emits one span per root task on the
/// scheduler layer (tid = root id). When a CritPathRecorder is attached it
/// also forwards every causal scheduling edge (the scheduler caches
/// wantsScheduleEvents() at setHooks time, so the forwarding branch costs
/// nothing until Observability::attachCritPath re-installs the hooks).
class SchedulerProbe final : public sim::SchedulerHooks {
 public:
  explicit SchedulerProbe(Observability& obs);
  void onDispatch(sim::SimTime now, std::size_t queueDepth) override;
  void onRootSpawned(std::uint64_t rootId, sim::SimTime now) override;
  void onRootDone(std::uint64_t rootId, sim::SimTime now) override;
  bool wantsScheduleEvents() const override { return critPath_ != nullptr; }
  void onEventScheduled(std::uint64_t seq, std::uint64_t parentSeq,
                        sim::SimTime when, sim::WakeKind kind,
                        const char* label) override;

  void setCritPath(CritPathRecorder* critPath) { critPath_ = critPath; }
  /// Hand the probe a live Telemetry registry: every dispatch then drives
  /// the sampling cadence (queue-depth gauge + bucket close-out). Nullptr
  /// (the default) keeps dispatch at one extra branch.
  void setTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

 private:
  Observability& obs_;
  Counter& events_;
  Counter& roots_;
  Gauge& queueDepthMax_;
  CritPathRecorder* critPath_ = nullptr;
  Telemetry* telemetry_ = nullptr;
};

class Observability {
 public:
  Observability();  // out of line: members of forward-declared types
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;
  ~Observability();

  /// Attach a sink; its layerMask() joins the cached tracing mask.
  void addSink(std::shared_ptr<TraceSink> sink);

  /// True when some attached sink wants events from `layer`.
  bool tracing(Layer layer) const { return (mask_ & layerBit(layer)) != 0; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Fan an event out to every sink whose mask covers its layer.
  void emit(const TraceEvent& ev);

  // ------- typed emission helpers (no-ops unless a sink wants the layer) --
  void begin(Layer layer, int tid, const char* name, sim::SimTime ts);
  void end(Layer layer, int tid, const char* name, sim::SimTime ts);
  void complete(Layer layer, int tid, const char* name, sim::SimTime start,
                sim::SimTime end);
  void completeBytes(Layer layer, int tid, const char* name,
                     sim::SimTime start, sim::SimTime end, sim::Bytes bytes);
  /// MPI message delivery: complete event on the sender's row plus the
  /// per-pair metrics entry.
  void message(int src, int dst, sim::Bytes bytes, sim::SimTime sendTime,
               sim::SimTime deliverTime);
  void counterSample(Layer layer, const char* name, sim::SimTime ts,
                     double value);

  /// Install a SchedulerProbe on `sched` (kept alive by this object).
  /// Safe to call more than once; only the first call installs.
  void observeScheduler(sim::Scheduler& sched);
  /// Remove the probe before the scheduler goes away (SimStack's teardown
  /// order already guarantees this; tests use it directly).
  void releaseScheduler();

  /// Start recording the causal event graph of `sched` (installing the
  /// scheduler probe if necessary) and register the recorder as a sink so
  /// it finalizes/exports with everything else. `jsonPath` (optional)
  /// receives the critical-path report at finalize. Returns the recorder
  /// for in-process queries; repeated calls return the existing one.
  CritPathRecorder& attachCritPath(sim::Scheduler& sched,
                                   std::string jsonPath = "");
  CritPathRecorder* critPath() const { return critPath_.get(); }

  /// The sampled-telemetry probe registry (obs/telemetry.hpp). Layers
  /// resolve Probe handles here at construction; probes stay dormant (one
  /// branch per update) until attachTelemetry flips them live.
  Telemetry& telemetry();

  /// Start sampled telemetry on `sched`: enables the registry at bucket
  /// width `bucketDt` (<=0 = default), wires the sampling cadence into the
  /// scheduler probe, and registers a TelemetrySink so series close and
  /// export (optional JSON/CSV paths) at finalize. Repeated calls return
  /// the existing sink. Finalize cross-checks the sampled busy time
  /// against any attached AttributionSink.
  TelemetrySink& attachTelemetry(sim::Scheduler& sched, double bucketDt = 0.0,
                                 std::string jsonPath = "",
                                 std::string csvPath = "");
  TelemetrySink* telemetrySink() const { return telemetrySink_.get(); }

  /// Start per-request causal tracing (obs/optrace.hpp): creates the
  /// OpTracer (1-in-`sampleEvery` waterfall retention, `tailN` slowest
  /// always kept) and registers an OpTraceSink so the tracer closes out and
  /// exports its JSON (optional path) at finalize. Repeated calls return
  /// the existing sink; a non-empty path on a later call updates the
  /// export destination.
  OpTraceSink& attachOpTrace(std::uint32_t sampleEvery = 0, int tailN = -1,
                             std::string jsonPath = "");
  /// The tracer for strategy-level minting; nullptr until attachOpTrace.
  /// Layers never call this — they receive contexts by value.
  OpTracer* opTracer() const { return opTracer_.get(); }
  OpTraceSink* opTraceSink() const { return opTraceSink_.get(); }

  /// Convert accumulated busy-seconds gauges into utilization gauges over
  /// [0, horizon] and finalize + flush all sinks. Idempotent: the first
  /// call wins (later calls — e.g. the exportOnDestroy teardown after a
  /// manual finalize — only re-flush, so gauges are never derived twice).
  void finalize(sim::SimTime horizon);

  /// Ask the destructor to call finalize(scheduler.now()) and write the
  /// metrics files (empty path = skip that format). Used by bench/common
  /// so every harness exports on exit without bespoke teardown code.
  void exportOnDestroy(std::string metricsJsonPath, std::string metricsCsvPath);

 private:
  MetricsRegistry metrics_;
  std::vector<std::shared_ptr<TraceSink>> sinks_;
  unsigned mask_ = 0;
  std::unique_ptr<SchedulerProbe> schedProbe_;
  sim::Scheduler* observedSched_ = nullptr;
  std::shared_ptr<CritPathRecorder> critPath_;
  std::unique_ptr<Telemetry> telemetry_;
  std::shared_ptr<TelemetrySink> telemetrySink_;
  std::unique_ptr<OpTracer> opTracer_;
  std::shared_ptr<OpTraceSink> opTraceSink_;
  bool finalized_ = false;
  std::string metricsJsonPath_;
  std::string metricsCsvPath_;
};

/// RAII span for one I/O operation on the kIo layer: emits a complete
/// event at stop() (with bytes) or at destruction (without), so an op
/// abandoned by an exception or early co_return is still recorded instead
/// of silently dropped. Null `obs` disables it.
class IoOpSpan {
 public:
  IoOpSpan(Observability* obs, const sim::Scheduler& sched, int rank,
           const char* name)
      : obs_(obs), sched_(sched), rank_(rank), name_(name),
        start_(sched.now()) {}
  IoOpSpan(const IoOpSpan&) = delete;
  IoOpSpan& operator=(const IoOpSpan&) = delete;
  ~IoOpSpan() {
    if (!done_ && obs_)
      obs_->complete(Layer::kIo, rank_, name_, start_, sched_.now());
  }

  void stop(sim::Bytes bytes = 0) {
    done_ = true;
    if (obs_)
      obs_->completeBytes(Layer::kIo, rank_, name_, start_, sched_.now(),
                          bytes);
  }

 private:
  Observability* obs_;
  const sim::Scheduler& sched_;
  int rank_;
  const char* name_;
  sim::SimTime start_;
  bool done_ = false;
};

}  // namespace bgckpt::obs
